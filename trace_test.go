package socyield_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"socyield"
)

// TestFlightRecorderESENTrace runs the flight recorder over a real
// parallel ESEN8x2 build and checks the Chrome trace export carries
// the pipeline's phase spans, per-worker build tracks and sampled
// counter series — the Perfetto-loadable artifact -trace-out produces.
func TestFlightRecorderESENTrace(t *testing.T) {
	sys, err := socyield.ESEN(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := socyield.NewNegativeBinomial(2, 3.4)
	if err != nil {
		t.Fatal(err)
	}

	rec := socyield.NewMetrics()
	tracer := socyield.NewTracer(0)
	sampler := socyield.NewSampler(rec, time.Millisecond, 0)
	sampler.Start()
	// ε = 2e-2 keeps the truncation point small enough for a test while
	// still exercising the full multi-phase parallel build.
	_, err = socyield.Evaluate(sys, socyield.Options{
		Defects: dist, Epsilon: 2e-2,
		BuildWorkers: 4,
		Recorder:     rec,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	sampler.Stop()

	var buf bytes.Buffer
	if err := socyield.WriteChromeTrace(&buf, rec.Snapshot(), sampler.Samples(), tracer.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	phases := map[string]bool{}
	workerTracks := map[string]bool{}
	workerEvents := 0
	counterPoints := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Fatalf("event %q has negative ts %v (base-time bug)", ev.Name, ev.Ts)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid > 0:
			workerTracks[ev.Args["name"].(string)] = true
		case ev.Ph == "X" && ev.Cat == "phase":
			phases[ev.Name] = true
		case ev.Ph == "X" && ev.Tid > 0:
			workerEvents++
		case ev.Ph == "C":
			counterPoints++
		}
	}

	if len(phases) < 3 {
		t.Errorf("trace has %d distinct phase spans %v, want at least 3", len(phases), phases)
	}
	for _, want := range []string{"compile", "convert", "eval"} {
		if !phases[want] {
			t.Errorf("phase span %q missing (have %v)", want, phases)
		}
	}
	// The 4-worker build must produce more than one worker track, each
	// announced by a thread_name metadata row.
	if len(workerTracks) < 2 {
		t.Errorf("trace has worker tracks %v, want at least 2 (parallel build)", workerTracks)
	}
	if workerEvents == 0 {
		t.Error("no per-worker build events in the trace")
	}
	if counterPoints == 0 {
		t.Error("no sampled counter points in the trace")
	}
	if sampler.Dropped() != 0 && len(sampler.Samples()) == 0 {
		t.Error("sampler dropped everything")
	}
}
