// Command calib3 calibrates the OCR-lost ESEN weight ratios
// (b = P_IPB/P_IPA, se = P_SE/P_IPA, cc = P_C/P_IPA) against the
// paper's Table 4 yields, for a given clustering α (flag).
package main

import (
	"flag"
	"fmt"
	"math"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/yield"
)

func weightsFor(sys *yield.System, b, se, cc float64) []float64 {
	ps := make([]float64, len(sys.Components))
	total := 0.0
	for i, comp := range sys.Components {
		var w float64
		switch {
		case comp.Name[:3] == "IPA":
			w = 1
		case comp.Name[:3] == "IPB":
			w = b
		case comp.Name[:2] == "SE":
			w = se
		default: // CIN/COUT
			w = cc
		}
		ps[i] = w
		total += w
	}
	for i := range ps {
		ps[i] /= total
	}
	return ps
}

func qtab(lambda, alpha float64, m int) ([]float64, float64) {
	d := defects.NegativeBinomial{Lambda: lambda, Alpha: alpha}
	q := make([]float64, m+1)
	s := 0.0
	for k := 0; k <= m; k++ {
		q[k] = d.PMF(k)
		s += q[k]
	}
	return q, 1 - s
}

func main() {
	alpha := flag.Float64("alpha", 2, "NB clustering parameter")
	flag.Parse()
	d1, _ := defects.NewNegativeBinomial(2, 2)
	d2, _ := defects.NewNegativeBinomial(4, 2)
	e41, _ := benchmarks.ESEN(4, 1)
	e42, _ := benchmarks.ESEN(4, 2)
	e44, _ := benchmarks.ESEN(4, 4)
	r411, _ := yield.NewReevaluator(e41, yield.Options{Defects: d1, Epsilon: 5e-3})
	r412, _ := yield.NewReevaluator(e41, yield.Options{Defects: d2, Epsilon: 5e-3})
	r421, _ := yield.NewReevaluator(e42, yield.Options{Defects: d1, Epsilon: 5e-3})
	r422, _ := yield.NewReevaluator(e42, yield.Options{Defects: d2, Epsilon: 5e-3})
	r441, _ := yield.NewReevaluator(e44, yield.Options{Defects: d1, Epsilon: 5e-3})
	r442, err := yield.NewReevaluator(e44, yield.Options{Defects: d2, Epsilon: 5e-3})
	if err != nil {
		panic(err)
	}
	q1, t1 := qtab(1, *alpha, 6)
	q2, t2 := qtab(2, *alpha, 10)
	targets := []float64{0.910, 0.756, 0.848, 0.642, 0.829, 0.605}
	best := math.Inf(1)
	var bb, bse, bcc float64
	for b := 0.1; b <= 1.5005; b += 0.05 {
		for se := 0.02; se <= 0.8005; se += 0.02 {
			for cc := 0.01; cc <= 0.6005; cc += 0.02 {
				p41 := weightsFor(e41, b, se, cc)
				p42 := weightsFor(e42, b, se, cc)
				y1, _ := r411.YieldRaw(p41, q1, t1)
				e := math.Abs(y1 - targets[0])
				if e > best {
					continue
				}
				y2, _ := r412.YieldRaw(p41, q2, t2)
				y3, _ := r421.YieldRaw(p42, q1, t1)
				y4, _ := r422.YieldRaw(p42, q2, t2)
				p44 := weightsFor(e44, b, se, cc)
				y5, _ := r441.YieldRaw(p44, q1, t1)
				y6, _ := r442.YieldRaw(p44, q2, t2)
				e += math.Abs(y2-targets[1]) + math.Abs(y3-targets[2]) + math.Abs(y4-targets[3]) + math.Abs(y5-targets[4]) + math.Abs(y6-targets[5])
				if e < best {
					best = e
					bb, bse, bcc = b, se, cc
				}
			}
		}
	}
	fmt.Printf("coarse best b=%.3f se=%.3f cc=%.3f err=%.5f\n", bb, bse, bcc, best)
	// refine
	for b := bb - 0.06; b <= bb+0.0605; b += 0.01 {
		for se := bse - 0.025; se <= bse+0.02505; se += 0.005 {
			for cc := bcc - 0.025; cc <= bcc+0.02505; cc += 0.005 {
				if b <= 0 || se <= 0 || cc <= 0 {
					continue
				}
				p41 := weightsFor(e41, b, se, cc)
				p42 := weightsFor(e42, b, se, cc)
				p44 := weightsFor(e44, b, se, cc)
				y1, _ := r411.YieldRaw(p41, q1, t1)
				y2, _ := r412.YieldRaw(p41, q2, t2)
				y3, _ := r421.YieldRaw(p42, q1, t1)
				y4, _ := r422.YieldRaw(p42, q2, t2)
				y5, _ := r441.YieldRaw(p44, q1, t1)
				y6, _ := r442.YieldRaw(p44, q2, t2)
				e := math.Abs(y1-targets[0]) + math.Abs(y2-targets[1]) + math.Abs(y3-targets[2]) + math.Abs(y4-targets[3]) + math.Abs(y5-targets[4]) + math.Abs(y6-targets[5])
				if e < best {
					best = e
					bb, bse, bcc = b, se, cc
				}
			}
		}
	}
	p41 := weightsFor(e41, bb, bse, bcc)
	p42 := weightsFor(e42, bb, bse, bcc)
	p44 := weightsFor(e44, bb, bse, bcc)
	y1, _ := r411.YieldRaw(p41, q1, t1)
	y2, _ := r412.YieldRaw(p41, q2, t2)
	y3, _ := r421.YieldRaw(p42, q1, t1)
	y4, _ := r422.YieldRaw(p42, q2, t2)
	y5, _ := r441.YieldRaw(p44, q1, t1)
	y6, _ := r442.YieldRaw(p44, q2, t2)
	fmt.Printf("fine best b=%.3f se=%.3f cc=%.3f err=%.5f\n", bb, bse, bcc, best)
	fmt.Printf("ESEN4x1: %.4f/%.4f (0.910/0.756)  ESEN4x2: %.4f/%.4f (0.848/0.642)  ESEN4x4: %.4f/%.4f (0.829/0.605)\n", y1, y2, y3, y4, y5, y6)
}
