// Command calib2 jointly calibrates the OCR-lost constants (NB
// clustering α, MS weight ratios s = P_IPS/P_IPM and c = P_C/P_IPM)
// against the paper's Table 4 yields, under the constraint that the
// truncation points remain M = 6 (λ'=1) and M = 10 (λ'=2) for some ε.
package main

import (
	"fmt"
	"math"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/yield"
)

func weightsFor(sys *yield.System, s, c float64) []float64 {
	ps := make([]float64, len(sys.Components))
	total := 0.0
	for i, comp := range sys.Components {
		var w float64
		switch {
		case comp.Name[:3] == "IPM":
			w = 1
		case comp.Name[:3] == "IPS":
			w = s
		default:
			w = c
		}
		ps[i] = w
		total += w
	}
	for i := range ps {
		ps[i] *= 0.5 / total
	}
	return ps
}

func tail(d defects.Distribution, m int) float64 {
	s := 0.0
	for k := 0; k <= m; k++ {
		s += d.PMF(k)
	}
	return 1 - s
}

// mOK reports whether some ε yields M=6 at λ'=1 and M=10 at λ'=2.
func mOK(alpha float64) bool {
	d1 := defects.NegativeBinomial{Lambda: 1, Alpha: alpha}
	d2 := defects.NegativeBinomial{Lambda: 2, Alpha: alpha}
	lo := math.Max(tail(d1, 6), tail(d2, 10))
	hi := math.Min(tail(d1, 5), tail(d2, 9))
	return lo < hi
}

func qtab(lambda, alpha float64, m int) ([]float64, float64) {
	d := defects.NegativeBinomial{Lambda: lambda, Alpha: alpha}
	q := make([]float64, m+1)
	for k := 0; k <= m; k++ {
		q[k] = d.PMF(k)
	}
	return q, tail(d, m)
}

func main() {
	dRef, _ := defects.NewNegativeBinomial(2, 2)
	dRef2, _ := defects.NewNegativeBinomial(4, 2)
	ms2, _ := benchmarks.MS(2)
	ms6, _ := benchmarks.MS(6)
	r21, err := yield.NewReevaluator(ms2, yield.Options{Defects: dRef, Epsilon: 5e-3})
	if err != nil {
		panic(err)
	}
	r22, err := yield.NewReevaluator(ms2, yield.Options{Defects: dRef2, Epsilon: 5e-3})
	if err != nil {
		panic(err)
	}
	r61, err := yield.NewReevaluator(ms6, yield.Options{Defects: dRef, Epsilon: 5e-3})
	if err != nil {
		panic(err)
	}
	best := math.Inf(1)
	var bA, bS, bC float64
	for alpha := 0.3; alpha <= 6.001; alpha += 0.1 {
		if !mOK(alpha) {
			continue
		}
		q1, t1 := qtab(1, alpha, 6)
		q2, t2 := qtab(2, alpha, 10)
		for s := 0.05; s <= 1.5005; s += 0.05 {
			for c := 0.02; c <= 0.4005; c += 0.01 {
				p2 := weightsFor(ms2, s, c)
				pp2 := normalize(p2)
				y21, err := r21.YieldRaw(pp2, q1, t1)
				if err != nil {
					panic(err)
				}
				e := math.Abs(y21 - 0.944)
				if e > best {
					continue
				}
				y22, _ := r22.YieldRaw(pp2, q2, t2)
				p6 := weightsFor(ms6, s, c)
				y61, _ := r61.YieldRaw(normalize(p6), q1, t1)
				e += math.Abs(y22-0.830) + math.Abs(y61-0.975)
				if e < best {
					best = e
					bA, bS, bC = alpha, s, c
				}
			}
		}
	}
	fmt.Printf("coarse best α=%.2f s=%.3f c=%.3f err=%.5f\n", bA, bS, bC, best)
	// Refine around the best.
	cb := best
	fA, fS, fC := bA, bS, bC
	for alpha := bA - 0.12; alpha <= bA+0.12; alpha += 0.02 {
		if alpha <= 0 || !mOK(alpha) {
			continue
		}
		q1, t1 := qtab(1, alpha, 6)
		q2, t2 := qtab(2, alpha, 10)
		for s := bS - 0.06; s <= bS+0.0605; s += 0.005 {
			if s <= 0 {
				continue
			}
			for c := bC - 0.012; c <= bC+0.01205; c += 0.001 {
				if c <= 0 {
					continue
				}
				p2 := normalize(weightsFor(ms2, s, c))
				p6 := normalize(weightsFor(ms6, s, c))
				y21, _ := r21.YieldRaw(p2, q1, t1)
				y22, _ := r22.YieldRaw(p2, q2, t2)
				y61, _ := r61.YieldRaw(p6, q1, t1)
				e := math.Abs(y21-0.944) + math.Abs(y22-0.830) + math.Abs(y61-0.975)
				if e < cb {
					cb = e
					fA, fS, fC = alpha, s, c
				}
			}
		}
	}
	q1, t1 := qtab(1, fA, 6)
	q2, t2 := qtab(2, fA, 10)
	p2 := normalize(weightsFor(ms2, fS, fC))
	p6 := normalize(weightsFor(ms6, fS, fC))
	y21, _ := r21.YieldRaw(p2, q1, t1)
	y22, _ := r22.YieldRaw(p2, q2, t2)
	y61, _ := r61.YieldRaw(p6, q1, t1)
	fmt.Printf("fine best α=%.2f s=%.3f c=%.3f err=%.5f\n", fA, fS, fC, cb)
	fmt.Printf("MS2 %.4f/%.4f (0.944/0.830)  MS6 %.4f (0.975)\n", y21, y22, y61)
}

func normalize(ps []float64) []float64 {
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p / sum
	}
	return out
}
