// Package tools holds the calibration commands used to recover the
// numeric constants lost in the archival copy of the paper (the
// negative-binomial clustering parameter α and the per-class component
// weight ratios of the MSn and ESENnxm benchmarks). They are
// development tools, not part of the library API; EXPERIMENTS.md
// records their results.
//
//   - calib2 fits α and the MS ratios to the paper's MS2/MS6 yields
//     under the constraint that the truncation points stay at M = 6
//     (λ′ = 1) and M = 10 (λ′ = 2);
//   - calib3 fits the ESEN ratios at the calibrated α to the paper's
//     ESEN yields.
//
// Both exploit yield.Reevaluator: the decision diagrams are built once
// and each candidate constant assignment costs only a probability
// traversal.
package tools
