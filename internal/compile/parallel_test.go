package compile

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/logic"
)

var workerCounts = []int{1, 2, 4, 8}

// checkParallelAgainstSerial compiles n both ways and requires the
// same function (every assignment), the same diagram size, and a
// leak-free shared arena.
func checkParallelAgainstSerial(t *testing.T, n *logic.Netlist, k int, levels []int, workers int) {
	t.Helper()
	m := bdd.New(k)
	sroot, err := Netlist(m, n, levels)
	if err != nil {
		t.Fatalf("serial Netlist: %v", err)
	}
	defer m.Deref(sroot)

	s := bdd.NewShared(k, 0)
	proot, st, err := NetlistParallel(s, n, levels, workers)
	if err != nil {
		t.Fatalf("NetlistParallel(workers=%d): %v", workers, err)
	}
	if st.Workers < 1 || st.Workers > workers || st.Tasks < 1 {
		t.Fatalf("implausible stats %+v (requested %d workers)", st, workers)
	}
	byLevel := make([]bool, k)
	in := make([]bool, k)
	for mask := 0; mask < 1<<k; mask++ {
		for i := 0; i < k; i++ {
			in[i] = mask&(1<<i) != 0
			byLevel[levels[i]] = in[i]
		}
		want, err := n.Eval(in)
		if err != nil {
			t.Fatalf("netlist Eval: %v", err)
		}
		if got := s.Eval(proot, byLevel); got != want {
			t.Fatalf("workers=%d mask=%b: parallel %v, netlist %v", workers, mask, got, want)
		}
	}
	if ss, ps := m.Size(sroot), s.Size(proot); ss != ps {
		t.Fatalf("workers=%d: diagram size %d (parallel) != %d (serial)", workers, ps, ss)
	}
	s.Deref(proot)
	s.GC()
	if live := s.Live(); live != 1 {
		t.Fatalf("workers=%d: %d live nodes after root Deref + GC, want 1 (reference leak)", workers, live)
	}
}

func TestParallelMatchesSerialRandom(t *testing.T) {
	const k = 5
	rng := rand.New(rand.NewSource(20260808))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := randomNetlist(rng, k)
		levels := rng.Perm(k)
		for _, workers := range workerCounts {
			checkParallelAgainstSerial(t, n, k, levels, workers)
		}
	}
}

// TestParallelWideFanin exercises the reduceWide splitting: fan-ins
// far beyond fanChunk, including duplicate operands, on And/Or/Nand
// and a threshold built from wide gates.
func TestParallelWideFanin(t *testing.T) {
	const k = 10
	n := logic.New()
	xs := make([]logic.GateID, 0, 3*fanChunk+5)
	ins := make([]logic.GateID, k)
	for i := range ins {
		ins[i] = n.Input(fmt.Sprintf("x%d", i))
	}
	for i := 0; i < cap(xs); i++ {
		xs = append(xs, ins[i%k]) // duplicates on purpose
	}
	wideOr := n.Or(xs...)
	wideAnd := n.And(xs...)
	n.SetOutput(n.Xor(n.Nand(xs...), n.And(wideOr, n.AtLeast(k/2, ins...), n.Not(wideAnd))))
	for _, workers := range workerCounts {
		checkParallelAgainstSerial(t, n, k, identityLevels(k), workers)
	}
}

func TestParallelNodeLimit(t *testing.T) {
	n := logic.New()
	const k = 12
	xs := make([]logic.GateID, k)
	for i := range xs {
		xs[i] = n.Input(fmt.Sprintf("x%d", i))
	}
	n.SetOutput(n.AtLeast(k/2, xs...))
	for _, workers := range workerCounts {
		s := bdd.NewShared(k, 10)
		_, _, err := NetlistParallel(s, n, identityLevels(k), workers)
		if !errors.Is(err, bdd.ErrNodeLimit) {
			t.Fatalf("workers=%d: err = %v, want ErrNodeLimit", workers, err)
		}
	}
}

func TestParallelErrors(t *testing.T) {
	n := logic.New()
	n.Input("a")
	s := bdd.NewShared(1, 0)
	if _, _, err := NetlistParallel(s, n, identityLevels(1), 4); err != logic.ErrNoOutput {
		t.Errorf("no output: err = %v", err)
	}
	n.SetOutput(n.Input("a"))
	if _, _, err := NetlistParallel(s, n, nil, 4); err == nil {
		t.Error("short levels accepted")
	}
	if _, _, err := NetlistParallel(s, n, []int{5}, 4); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestParallelConstOutput(t *testing.T) {
	n := logic.New()
	a := n.Input("a")
	n.SetOutput(n.Or(a, n.Not(a))) // tautology
	s := bdd.NewShared(1, 0)
	root, _, err := NetlistParallel(s, n, identityLevels(1), 4)
	if err != nil {
		t.Fatalf("NetlistParallel: %v", err)
	}
	if root != bdd.True {
		t.Errorf("tautology compiled to %d, want True", root)
	}
}

// TestParallelGCUnderPressure forces many in-build collections by
// keeping the auto-GC threshold at its initial value relative to a
// model that needs far more transient nodes.
func TestParallelGCUnderPressure(t *testing.T) {
	n := logic.New()
	const k = 16
	xs := make([]logic.GateID, k)
	for i := range xs {
		xs[i] = n.Input(fmt.Sprintf("x%d", i))
	}
	n.SetOutput(n.Xor(n.AtLeast(k/2, xs...), n.AtLeast(k/3, xs...)))
	m := bdd.New(k)
	sroot, err := Netlist(m, n, identityLevels(k))
	if err != nil {
		t.Fatal(err)
	}
	want := m.Size(sroot)
	for _, workers := range workerCounts {
		s := bdd.NewShared(k, 0)
		root, _, err := NetlistParallel(s, n, identityLevels(k), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := s.Size(root); got != want {
			t.Fatalf("workers=%d: size %d, want %d", workers, got, want)
		}
	}
}
