package compile

import (
	"socyield/internal/obs"
)

// Option configures optional instrumentation of a compile run. The
// zero configuration is free: both hooks are nil-receiver no-ops, so
// un-instrumented callers pay only nil checks.
type Option func(*options)

type options struct {
	state  *obs.BuildState
	tracer *obs.Tracer
}

// WithBuildState attaches a live progress tracker: the compiler
// publishes the task total once the work is known and counts finished
// tasks and live nodes as it goes, so /v1/builds and the flight
// recorder can report gates-done/total mid-compile.
func WithBuildState(b *obs.BuildState) Option {
	return func(o *options) { o.state = b }
}

// WithTracer attaches a flight-recorder tracer: each compiled task
// becomes one timed event on its worker's track in the Chrome trace
// export.
func WithTracer(t *obs.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

func applyOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// taskKindName names a parallel task kind for trace events.
func taskKindName(kind int8) string {
	switch kind {
	case tkVar:
		return "var"
	case tkConst:
		return "const"
	case tkNot:
		return "not"
	case tkAnd:
		return "and"
	case tkOr:
		return "or"
	case tkXor:
		return "xor"
	default:
		return "task"
	}
}
