// Work-stealing parallel netlist compilation on the concurrent
// bdd.Shared engine.
//
// The netlist becomes a task DAG: one task per gate, plus extra tasks
// splitting wide And/Or fan-ins into balanced reduction subtrees (the
// parallel counterpart of the serial engine's in-gate pairwise
// rounds — safe because the diagrams are canonical, so re-associating
// a conjunction cannot change the resulting node). Each pool worker
// owns a deque: it pushes tasks it makes ready and pops them LIFO for
// locality, stealing FIFO from other deques when its own runs dry.
//
// Reference counting mirrors the serial compiler per occurrence: a
// finished task takes one reference per consumer ins-slot (plus one
// for the root), and a consumer dereferences each of its ins after
// use, so the shared arena's live set — and therefore its GC behavior
// — matches the serial cone-by-cone discipline.
//
// Garbage collection needs the arena quiescent, so workers poll
// Shared.NeedGC between tasks and rendezvous at a barrier: every
// worker is either parked idle, finished, or paused in the barrier;
// the last one to arrive runs Shared.GC and releases the rest.
package compile

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/logic"
	"socyield/internal/obs"
)

// ParallelStats reports what the work-stealing pool did during one
// NetlistParallel run.
type ParallelStats struct {
	// Workers is the number of pool workers actually started (the
	// requested count capped by the task count).
	Workers int
	// Tasks is the total number of DAG tasks (gates plus wide-fan-in
	// reduction subtasks).
	Tasks int
	// Steals counts tasks taken from another worker's deque.
	Steals int64
}

// fanChunk bounds the operand count handed to one n-ary apply task;
// wider fan-ins are split into a tree of part-tasks so independent
// subtrees reduce on different workers.
const fanChunk = 16

const (
	tkVar int8 = iota
	tkConst
	tkNot
	tkAnd
	tkOr
	tkXor
)

type ptask struct {
	kind   int8
	negate bool
	level  int32 // variable level (tkVar) or constant value (tkConst)
	ins    []int32
	outs   []int32
	// pending is the number of unfinished producers (atomic).
	pending int32
	result  bdd.Node
}

type deque struct {
	mu  sync.Mutex
	buf []int32
}

func (d *deque) push(tis ...int32) {
	d.mu.Lock()
	d.buf = append(d.buf, tis...)
	d.mu.Unlock()
}

func (d *deque) popTail() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.buf)
	if n == 0 {
		return 0, false
	}
	ti := d.buf[n-1]
	d.buf = d.buf[:n-1]
	return ti, true
}

func (d *deque) popHead() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return 0, false
	}
	ti := d.buf[0]
	d.buf = d.buf[1:]
	return ti, true
}

func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

type cpool struct {
	s          *bdd.Shared
	tasks      []ptask
	root       int32
	deques     []deque
	operandBuf [][]bdd.Node
	steals     atomic.Int64
	remaining  atomic.Int64
	state      *obs.BuildState
	tracer     *obs.Tracer

	mu     sync.Mutex
	cond   *sync.Cond
	done   bool
	err    error
	gcWant bool
	gcGen  int
	paused int
	idle   int
	alive  int
}

type taskBuilder struct {
	tasks  []ptask
	byGate map[logic.GateID]int32
}

func (tb *taskBuilder) add(kind int8, negate bool, level int32, ins []int32) int32 {
	tb.tasks = append(tb.tasks, ptask{kind: kind, negate: negate, level: level, ins: ins})
	return int32(len(tb.tasks) - 1)
}

func (tb *taskBuilder) gather(fanin []logic.GateID) []int32 {
	ins := make([]int32, len(fanin))
	for i, f := range fanin {
		ins[i] = tb.byGate[f]
	}
	return ins
}

// reduceWide builds a balanced tree of part-tasks over a wide fan-in.
// Canonicity makes the re-association safe: every grouping computes
// the same function, hence the same canonical diagram.
func (tb *taskBuilder) reduceWide(kind int8, negate bool, ins []int32) int32 {
	for len(ins) > fanChunk {
		next := make([]int32, 0, (len(ins)+fanChunk-1)/fanChunk)
		for i := 0; i < len(ins); i += fanChunk {
			j := i + fanChunk
			if j > len(ins) {
				j = len(ins)
			}
			if j-i == 1 {
				next = append(next, ins[i])
				continue
			}
			sub := make([]int32, j-i)
			copy(sub, ins[i:j])
			next = append(next, tb.add(kind, false, 0, sub))
		}
		ins = next
	}
	return tb.add(kind, negate, 0, ins)
}

// NetlistParallel compiles the output cone of n into an ROBDD on the
// shared arena s, dispatching independent gates (and the reduction
// rounds inside wide fan-ins) across a pool of workers. levels has
// the same contract as Netlist. The returned root carries one external
// reference. The result is the exact node Netlist would produce on a
// serial manager with the same variable order — only arena slot
// numbering differs.
//
// On error the arena is left with the in-flight intermediates still
// referenced; callers discard the whole Shared, as the serial pipeline
// discards its Manager.
func NetlistParallel(s *bdd.Shared, n *logic.Netlist, levels []int, workers int, opts ...Option) (bdd.Node, ParallelStats, error) {
	cfg := applyOptions(opts)
	out, ok := n.Output()
	if !ok {
		return bdd.False, ParallelStats{}, logic.ErrNoOutput
	}
	if len(levels) < n.NumInputs() {
		return bdd.False, ParallelStats{}, fmt.Errorf("compile: levels has %d entries, want %d", len(levels), n.NumInputs())
	}
	tb := &taskBuilder{byGate: make(map[logic.GateID]int32, n.NumNodes())}
	var verr error
	err := n.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		if verr != nil {
			return
		}
		var ti int32
		switch g.Kind {
		case logic.InputKind:
			lv := levels[n.InputOrdinal(id)]
			if lv < 0 || lv >= s.NumVars() {
				verr = fmt.Errorf("compile: input level %d out of range [0,%d)", lv, s.NumVars())
				return
			}
			ti = tb.add(tkVar, false, int32(lv), nil)
		case logic.ConstKind:
			var v int32
			if g.Value {
				v = 1
			}
			ti = tb.add(tkConst, false, v, nil)
		case logic.NotKind:
			ti = tb.add(tkNot, false, 0, tb.gather(g.Fanin))
		case logic.AndKind, logic.NandKind:
			ti = tb.reduceWide(tkAnd, g.Kind == logic.NandKind, tb.gather(g.Fanin))
		case logic.OrKind, logic.NorKind:
			ti = tb.reduceWide(tkOr, g.Kind == logic.NorKind, tb.gather(g.Fanin))
		case logic.XorKind, logic.XnorKind:
			ti = tb.add(tkXor, g.Kind == logic.XnorKind, 0, tb.gather(g.Fanin))
		default:
			verr = fmt.Errorf("compile: gate %d has unknown kind %v", id, g.Kind)
			return
		}
		tb.byGate[id] = ti
	})
	if err != nil {
		return bdd.False, ParallelStats{}, err
	}
	if verr != nil {
		return bdd.False, ParallelStats{}, verr
	}

	tasks := tb.tasks
	for ti := range tasks {
		t := &tasks[ti]
		t.pending = int32(len(t.ins))
		for _, in := range t.ins {
			tasks[in].outs = append(tasks[in].outs, int32(ti))
		}
	}

	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	cfg.state.SetTotal(int64(len(tasks)))
	p := &cpool{
		s:          s,
		tasks:      tasks,
		root:       tb.byGate[out],
		deques:     make([]deque, workers),
		operandBuf: make([][]bdd.Node, workers),
		alive:      workers,
		state:      cfg.state,
		tracer:     cfg.tracer,
	}
	p.cond = sync.NewCond(&p.mu)
	p.remaining.Store(int64(len(tasks)))
	seed := 0
	for ti := range tasks {
		if tasks[ti].pending == 0 {
			p.deques[seed%workers].push(int32(ti))
			seed++
		}
	}

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go p.run(wi, &wg)
	}
	wg.Wait()

	st := ParallelStats{Workers: workers, Tasks: len(tasks), Steals: p.steals.Load()}
	if p.err != nil {
		return bdd.False, st, p.err
	}
	return p.tasks[p.root].result, st, nil
}

func (p *cpool) run(wi int, wg *sync.WaitGroup) {
	defer wg.Done()
	w := p.s.NewWorker()
	defer w.Close()
	for {
		ti := p.acquire(wi)
		if ti < 0 {
			break
		}
		var err error
		func() {
			defer bdd.RecoverLimit(&err)
			p.exec(wi, w, ti)
		}()
		if err != nil {
			p.fail(err)
			break
		}
		if p.s.NeedGC() {
			p.requestGC()
		}
	}
	p.mu.Lock()
	p.alive--
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *cpool) exec(wi int, w *bdd.Worker, ti int32) {
	t := &p.tasks[ti]
	var t0 time.Time
	if p.tracer != nil {
		t0 = time.Now()
	}
	var r bdd.Node
	switch t.kind {
	case tkVar:
		r = w.Var(int(t.level))
	case tkConst:
		r = bdd.False
		if t.level != 0 {
			r = bdd.True
		}
	case tkNot:
		r = w.Not(p.tasks[t.ins[0]].result)
	case tkAnd, tkOr:
		ops := p.operandBuf[wi][:0]
		for _, in := range t.ins {
			ops = append(ops, p.tasks[in].result)
		}
		p.operandBuf[wi] = ops
		if t.kind == tkAnd {
			r = w.And(ops...)
		} else {
			r = w.Or(ops...)
		}
	case tkXor:
		r = bdd.False
		for _, in := range t.ins {
			r = w.Xor(r, p.tasks[in].result)
		}
	}
	if t.negate {
		r = w.Not(r)
	}
	// One reference per consumer ins-slot (duplicate fan-ins count per
	// occurrence), plus one the driver hands to the caller for the root.
	rc := int32(len(t.outs))
	if ti == p.root {
		rc++
	}
	p.s.RefN(r, rc)
	t.result = r
	for _, in := range t.ins {
		p.s.Deref(p.tasks[in].result)
	}
	var ready []int32
	for _, o := range t.outs {
		if atomic.AddInt32(&p.tasks[o].pending, -1) == 0 {
			ready = append(ready, o)
		}
	}
	if len(ready) > 0 {
		p.deques[wi].push(ready...)
		p.mu.Lock()
		if p.idle > 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
	if p.remaining.Add(-1) == 0 {
		p.mu.Lock()
		p.done = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	p.state.Add(1)
	p.state.SetLive(int64(p.s.Live()))
	if p.tracer != nil {
		p.tracer.Event(taskKindName(t.kind), "compile", wi, t0, time.Since(t0))
	}
}

// acquire returns the next task index for worker wi, parking the
// worker when no work is available anywhere, or -1 once the pool is
// done (all tasks finished, or failed).
func (p *cpool) acquire(wi int) int32 {
	for {
		p.mu.Lock()
		done, gcw := p.done, p.gcWant
		p.mu.Unlock()
		if done {
			return -1
		}
		if gcw {
			p.barrier()
			continue
		}
		if ti, ok := p.deques[wi].popTail(); ok {
			return ti
		}
		for off := 1; off < len(p.deques); off++ {
			if ti, ok := p.deques[(wi+off)%len(p.deques)].popHead(); ok {
				p.steals.Add(1)
				return ti
			}
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			return -1
		}
		if p.gcWant {
			p.mu.Unlock()
			p.barrier()
			continue
		}
		if p.anyWork() {
			p.mu.Unlock()
			continue
		}
		p.idle++
		p.cond.Wait()
		p.idle--
		p.mu.Unlock()
	}
}

// anyWork rechecks every deque under p.mu so a push that raced with
// the lock-free scan cannot be missed: pushers broadcast under p.mu
// after pushing, and we hold p.mu from this check through cond.Wait.
func (p *cpool) anyWork() bool {
	for i := range p.deques {
		if p.deques[i].size() > 0 {
			return true
		}
	}
	return false
}

func (p *cpool) requestGC() {
	p.mu.Lock()
	if !p.done {
		p.gcWant = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.barrier()
}

// barrier is the quiescent rendezvous for garbage collection. A
// worker is quiesced when it is paused here, parked idle (it holds no
// operation in flight and cannot leave the idle wait without taking
// p.mu, which the collector holds throughout), or exited. The worker
// completing that census runs the collection itself and releases the
// generation.
func (p *cpool) barrier() {
	p.mu.Lock()
	if !p.gcWant || p.done {
		p.mu.Unlock()
		return
	}
	gen := p.gcGen
	p.paused++
	for p.gcGen == gen && p.gcWant && !p.done {
		if p.paused+p.idle == p.alive {
			p.s.GC()
			p.gcWant = false
			p.gcGen++
			p.cond.Broadcast()
			break
		}
		p.cond.Wait()
	}
	p.paused--
	p.mu.Unlock()
}

func (p *cpool) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.done = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
