// Package compile builds ROBDDs from gate-level netlists.
//
// The netlist is processed gate by gate in topological (depth-first
// leftmost) order, exactly as the paper processes the generalized
// fault tree with the CMU BDD library: every gate's diagram is kept
// referenced while later gates still use it and dereferenced after its
// last fan-out is consumed, with garbage collection allowed to run
// between gates. The manager's peak-live counter therefore measures
// the paper's "peak number of ROBDD nodes".
package compile

import (
	"fmt"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/logic"
)

// Netlist compiles the output cone of n into an ROBDD in m. levels
// maps each input declaration ordinal to its BDD variable level; it
// must be injective over the inputs in the cone, and every level must
// be valid in m. The returned root carries one external reference; the
// caller is responsible for m.Deref when done.
func Netlist(m *bdd.Manager, n *logic.Netlist, levels []int, opts ...Option) (bdd.Node, error) {
	cfg := applyOptions(opts)
	out, ok := n.Output()
	if !ok {
		return bdd.False, logic.ErrNoOutput
	}
	if len(levels) < n.NumInputs() {
		return bdd.False, fmt.Errorf("compile: levels has %d entries, want %d", len(levels), n.NumInputs())
	}
	// Count fan-outs within the cone so intermediate diagrams can be
	// dereferenced as soon as their last consumer is compiled.
	fanout := make(map[logic.GateID]int, n.NumNodes())
	var topo []logic.GateID
	if err := n.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		topo = append(topo, id)
		for _, f := range g.Fanin {
			fanout[f]++
		}
	}); err != nil {
		return bdd.False, err
	}
	fanout[out]++ // the caller is a consumer of the output
	cfg.state.SetTotal(int64(len(topo)))

	results := make(map[logic.GateID]bdd.Node, len(topo))
	var operands []bdd.Node // scratch for n-ary gate fan-ins
	release := func(id logic.GateID) {
		fanout[id]--
		if fanout[id] == 0 {
			m.Deref(results[id])
			delete(results, id)
		}
	}
	// On error, drop every still-referenced intermediate.
	cleanup := func() {
		for _, node := range results {
			m.Deref(node)
		}
	}

	for _, id := range topo {
		g := n.Gate(id)
		var t0 time.Time
		if cfg.tracer != nil {
			t0 = time.Now()
		}
		var r bdd.Node
		var err error
		switch g.Kind {
		case logic.InputKind:
			lv := levels[n.InputOrdinal(id)]
			r, err = m.Var(lv)
		case logic.ConstKind:
			r = bdd.False
			if g.Value {
				r = bdd.True
			}
		case logic.NotKind:
			r, err = m.Not(results[g.Fanin[0]])
		case logic.AndKind, logic.NandKind:
			// Hand the whole fan-in to the n-ary apply: it dedupes,
			// short-circuits, and reduces pairwise in balanced rounds
			// instead of folding a deep left spine of binary ITEs.
			operands = operands[:0]
			for _, f := range g.Fanin {
				operands = append(operands, results[f])
			}
			r, err = m.And(operands...)
			if err == nil && g.Kind == logic.NandKind {
				r, err = m.Not(r)
			}
		case logic.OrKind, logic.NorKind:
			operands = operands[:0]
			for _, f := range g.Fanin {
				operands = append(operands, results[f])
			}
			r, err = m.Or(operands...)
			if err == nil && g.Kind == logic.NorKind {
				r, err = m.Not(r)
			}
		case logic.XorKind, logic.XnorKind:
			r = bdd.False
			for _, f := range g.Fanin {
				r, err = m.Xor(r, results[f])
				if err != nil {
					break
				}
			}
			if err == nil && g.Kind == logic.XnorKind {
				r, err = m.Not(r)
			}
		default:
			err = fmt.Errorf("compile: gate %d has unknown kind %v", id, g.Kind)
		}
		if err != nil {
			cleanup()
			return bdd.False, err
		}
		results[id] = m.Ref(r)
		for _, f := range g.Fanin {
			release(f)
		}
		m.MaybeGC()
		cfg.state.Add(1)
		cfg.state.SetLive(int64(m.Live()))
		if cfg.tracer != nil {
			cfg.tracer.Event("gate", "compile", 0, t0, time.Since(t0))
		}
	}
	root := results[out]
	// Transfer ownership of the single remaining reference to the
	// caller (fanout[out] was padded by one above, so exactly one
	// reference remains).
	delete(results, out)
	cleanup()
	return root, nil
}
