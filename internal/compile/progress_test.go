package compile

import (
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/logic"
	"socyield/internal/obs"
)

// progressNetlist builds a small multi-gate netlist for the
// instrumentation tests.
func progressNetlist() (*logic.Netlist, int) {
	n := logic.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	n.SetOutput(n.Or(n.And(a, b), n.Xor(c, d), n.Not(a)))
	return n, 4
}

func TestCompileReportsProgress(t *testing.T) {
	n, k := progressNetlist()
	bs := obs.NewBuildState()
	bs.StartPhase(obs.BuildCompile, 0)
	tr := obs.NewTracer(64)

	m := bdd.New(k)
	root, err := Netlist(m, n, identityLevels(k), WithBuildState(bs), WithTracer(tr))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	defer m.Deref(root)

	st := bs.Snapshot()
	if st.PhaseTotal == 0 {
		t.Fatal("compile did not publish the gate total")
	}
	if st.PhaseDone != st.PhaseTotal {
		t.Errorf("done = %d, total = %d; want equal after completion", st.PhaseDone, st.PhaseTotal)
	}
	if st.LiveNodes <= 0 {
		t.Errorf("live nodes = %d, want > 0", st.LiveNodes)
	}
	evs := tr.Events()
	if int64(len(evs)) != st.PhaseTotal {
		t.Errorf("tracer recorded %d events, want one per gate (%d)", len(evs), st.PhaseTotal)
	}
	for _, ev := range evs {
		if ev.Cat != "compile" || ev.Worker != 0 {
			t.Errorf("serial event %+v, want cat=compile worker=0", ev)
		}
	}
}

func TestCompileParallelReportsProgress(t *testing.T) {
	n, k := progressNetlist()
	bs := obs.NewBuildState()
	bs.StartPhase(obs.BuildCompile, 0)
	tr := obs.NewTracer(256)

	s := bdd.NewShared(k, 0)
	root, pst, err := NetlistParallel(s, n, identityLevels(k), 4, WithBuildState(bs), WithTracer(tr))
	if err != nil {
		t.Fatalf("NetlistParallel: %v", err)
	}
	defer s.Deref(root)

	st := bs.Snapshot()
	if st.PhaseTotal != int64(pst.Tasks) {
		t.Errorf("published total %d != executed tasks %d", st.PhaseTotal, pst.Tasks)
	}
	if st.PhaseDone != st.PhaseTotal {
		t.Errorf("done = %d, total = %d; want equal after completion", st.PhaseDone, st.PhaseTotal)
	}
	evs := tr.Events()
	if len(evs) != pst.Tasks {
		t.Errorf("tracer recorded %d events, want one per task (%d)", len(evs), pst.Tasks)
	}
	for _, ev := range evs {
		if ev.Worker < 0 || ev.Worker >= pst.Workers {
			t.Errorf("event worker %d outside [0,%d)", ev.Worker, pst.Workers)
		}
	}
}

// TestCompileUninstrumented pins the no-op discipline: nil options
// change nothing about the result.
func TestCompileUninstrumented(t *testing.T) {
	n, k := progressNetlist()
	m1 := bdd.New(k)
	plain, err := Netlist(m1, n, identityLevels(k))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	m2 := bdd.New(k)
	traced, err := Netlist(m2, n, identityLevels(k), WithBuildState(nil), WithTracer(nil))
	if err != nil {
		t.Fatalf("Netlist with nil options: %v", err)
	}
	if m1.Size(plain) != m2.Size(traced) {
		t.Errorf("instrumentation changed the diagram: %d vs %d nodes", m1.Size(plain), m2.Size(traced))
	}
	m1.Deref(plain)
	m2.Deref(traced)
}
