package compile

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"socyield/internal/bdd"
	"socyield/internal/logic"
)

func identityLevels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCompileMatchesEvalExhaustive(t *testing.T) {
	n := logic.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	n.SetOutput(n.Or(n.And(a, n.Not(b)), n.Xor(c, d), n.Nand(a, c)))
	m := bdd.New(4)
	root, err := Netlist(m, n, identityLevels(4))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	defer m.Deref(root)
	for mask := 0; mask < 16; mask++ {
		assign := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0, mask&8 != 0}
		want, err := n.Eval(assign)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if got := m.Eval(root, assign); got != want {
			t.Errorf("mask %04b: BDD %v, netlist %v", mask, got, want)
		}
	}
}

func TestCompileWithPermutedLevels(t *testing.T) {
	// Level permutation must not change the function, only the
	// diagram shape: Eval consumes assignments by level, so rewire.
	n := logic.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	n.SetOutput(n.Or(n.And(a, b), c))
	levels := []int{2, 0, 1} // a→2, b→0, c→1
	m := bdd.New(3)
	root, err := Netlist(m, n, levels)
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	defer m.Deref(root)
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0} // by ordinal
		byLevel := make([]bool, 3)
		for ord, lv := range levels {
			byLevel[lv] = in[ord]
		}
		want, _ := n.Eval(in)
		if got := m.Eval(root, byLevel); got != want {
			t.Errorf("mask %03b: got %v, want %v", mask, got, want)
		}
	}
}

func TestCompileAllGateKinds(t *testing.T) {
	n := logic.New()
	a, b := n.Input("a"), n.Input("b")
	n.SetOutput(n.Xnor(n.Nor(a, b), n.Or(n.Const(false), n.And(a, n.Const(true), b))))
	m := bdd.New(2)
	root, err := Netlist(m, n, identityLevels(2))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	defer m.Deref(root)
	for mask := 0; mask < 4; mask++ {
		assign := []bool{mask&1 != 0, mask&2 != 0}
		want, _ := n.Eval(assign)
		if got := m.Eval(root, assign); got != want {
			t.Errorf("mask %02b: got %v, want %v", mask, got, want)
		}
	}
}

func TestCompileReleasesIntermediates(t *testing.T) {
	// Compile a long chain; after compilation and a GC with only the
	// root referenced, the live count must be close to the root size —
	// all intermediate gate diagrams must have been dereferenced.
	n := logic.New()
	const k = 16
	acc := n.Input("x0")
	for i := 1; i < k; i++ {
		acc = n.Xor(acc, n.Input(fmt.Sprintf("x%d", i)))
	}
	n.SetOutput(acc)
	m := bdd.New(k)
	root, err := Netlist(m, n, identityLevels(k))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	m.GC()
	if live, size := m.Live(), m.Size(root); live != size {
		t.Errorf("after GC live = %d, root size = %d: intermediates leaked", live, size)
	}
	m.Deref(root)
	m.GC()
	if m.Live() != 1 {
		t.Errorf("after releasing root, live = %d, want the 1 stored terminal", m.Live())
	}
}

func TestCompileNodeLimitError(t *testing.T) {
	// A dense majority-ish function over many vars with a tiny limit
	// must fail with ErrNodeLimit and leak no references.
	n := logic.New()
	const k = 12
	xs := make([]logic.GateID, k)
	for i := range xs {
		xs[i] = n.Input(fmt.Sprintf("x%d", i))
	}
	n.SetOutput(n.AtLeast(k/2, xs...))
	m := bdd.New(k, bdd.WithNodeLimit(10))
	_, err := Netlist(m, n, identityLevels(k))
	if err != bdd.ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
	// All intermediates must have been dereferenced: a GC now must
	// collect everything but the terminals.
	m.GC()
	if m.Live() != 1 {
		t.Errorf("after failed compile + GC, live = %d, want 1", m.Live())
	}
}

func TestCompileErrors(t *testing.T) {
	n := logic.New()
	n.Input("a")
	m := bdd.New(1)
	if _, err := Netlist(m, n, identityLevels(1)); err != logic.ErrNoOutput {
		t.Errorf("no output: err = %v", err)
	}
	n.SetOutput(n.Input("a"))
	if _, err := Netlist(m, n, nil); err == nil {
		t.Error("short levels accepted")
	}
}

func TestCompileConstOutput(t *testing.T) {
	n := logic.New()
	a := n.Input("a")
	n.SetOutput(n.Or(a, n.Not(a))) // tautology
	m := bdd.New(1)
	root, err := Netlist(m, n, identityLevels(1))
	if err != nil {
		t.Fatalf("Netlist: %v", err)
	}
	if root != bdd.True {
		t.Errorf("tautology compiled to %d, want True", root)
	}
}

// randomNetlist builds a random netlist over k inputs.
func randomNetlist(rng *rand.Rand, k int) *logic.Netlist {
	n := logic.New()
	pool := make([]logic.GateID, 0, 64)
	for i := 0; i < k; i++ {
		pool = append(pool, n.Input(fmt.Sprintf("x%d", i)))
	}
	ops := 5 + rng.Intn(20)
	for i := 0; i < ops; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var g logic.GateID
		switch rng.Intn(5) {
		case 0:
			g = n.And(a, b)
		case 1:
			g = n.Or(a, b)
		case 2:
			g = n.Xor(a, b)
		case 3:
			g = n.Not(a)
		default:
			g = n.Nand(a, b)
		}
		pool = append(pool, g)
	}
	n.SetOutput(pool[len(pool)-1])
	return n
}

// Property: compiled BDD agrees with netlist evaluation on every
// assignment for random netlists and random level permutations.
func TestQuickCompileSemantics(t *testing.T) {
	const k = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, k)
		levels := rng.Perm(k)
		m := bdd.New(k)
		root, err := Netlist(m, n, levels)
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<k; mask++ {
			in := make([]bool, k)
			byLevel := make([]bool, k)
			for i := 0; i < k; i++ {
				in[i] = mask&(1<<i) != 0
				byLevel[levels[i]] = in[i]
			}
			want, err := n.Eval(in)
			if err != nil {
				return false
			}
			if m.Eval(root, byLevel) != want {
				return false
			}
		}
		m.Deref(root)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: no reference leaks — after Deref of the root and GC, only
// the stored terminal remains, whatever the netlist.
func TestQuickCompileNoLeaks(t *testing.T) {
	const k = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, k)
		m := bdd.New(k)
		root, err := Netlist(m, n, identityLevels(k))
		if err != nil {
			return false
		}
		m.Deref(root)
		m.GC()
		return m.Live() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
