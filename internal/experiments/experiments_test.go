package experiments

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaperInventory(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Components != r.PaperC {
			t.Errorf("%s: C = %d, paper %d", r.Benchmark, r.Components, r.PaperC)
		}
		if r.Gates <= 0 {
			t.Errorf("%s: no gates", r.Benchmark)
		}
	}
}

// TestTable2ReproducesPaperSizes is the central reproduction check:
// for the fast rows, the regenerated ROMDD sizes must match the
// paper's published Table 2 digit for digit (the MS2/vrw cell is
// checked against both our value and the paper's printed value, which
// differ by an adjacent-digit transposition in the archival copy).
func TestTable2ReproducesPaperSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long: exercises vrw blow-up cells")
	}
	cases := []Case{{"MS2", 1}, {"ESEN4x1", 1}}
	rows, err := Table2(cases, Config{})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	for _, r := range rows {
		for _, mv := range Table2MVOrderings() {
			name := mv.String()
			got, want := r.Sizes[name], r.Paper[name]
			if got.Failed != want.Failed {
				t.Errorf("%v/%s: failed=%v, paper %v", r.Case, name, got.Failed, want.Failed)
				continue
			}
			if got.Failed {
				continue
			}
			diff := got.Size - want.Size
			if diff < 0 {
				diff = -diff
			}
			// MS2's vrw cell is printed as 73,405 in the paper while
			// every other cell of the row matches us exactly; our
			// 73,045 strongly suggests a digit transposition there.
			if name == "vrw" && r.Case.Benchmark == "MS2" {
				if got.Size != 73045 && got.Size != 73405 {
					t.Errorf("%v/vrw: %d, want 73045 (or paper's printed 73405)", r.Case, got.Size)
				}
				continue
			}
			if diff > 1 {
				t.Errorf("%v/%s: size %d, paper %d", r.Case, name, got.Size, want.Size)
			}
		}
	}
}

func TestTable2QuickSubsetShape(t *testing.T) {
	// Fast shape check on a single small case: w/wvr best and equal-ish,
	// vrw worst — the paper's headline ordering result.
	rows, err := Table2([]Case{{"ESEN4x1", 1}}, Config{})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	r := rows[0]
	w, wvr, wv, vrw := r.Sizes["w"], r.Sizes["wvr"], r.Sizes["wv"], r.Sizes["vrw"]
	if w.Failed || wvr.Failed || wv.Failed {
		t.Fatal("small case failed")
	}
	if w.Size != wvr.Size {
		t.Errorf("w (%d) and wvr (%d) differ — paper finds them identical", w.Size, wvr.Size)
	}
	if w.Size >= wv.Size {
		t.Errorf("w (%d) not better than wv (%d)", w.Size, wv.Size)
	}
	if !vrw.Failed && vrw.Size <= 10*w.Size {
		t.Errorf("vrw (%d) not dramatically worse than w (%d)", vrw.Size, w.Size)
	}
}

func TestTable3ReproducesPaperSizes(t *testing.T) {
	cases := []Case{{"MS2", 1}, {"ESEN4x1", 1}}
	rows, err := Table3(cases, Config{})
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	for _, r := range rows {
		for _, bk := range Table3BitOrderings() {
			name := bk.String()
			got, want := r.Sizes[name], r.Paper[name]
			if got.Failed {
				t.Errorf("%v/%s failed", r.Case, name)
				continue
			}
			diff := got.Size - want.Size
			if diff < 0 {
				diff = -diff
			}
			// Unlike the ROMDD (which matches the paper digit for
			// digit), the coded ROBDD depends on the exact binary
			// layout of the authors' generator; ours tracks theirs
			// within a few percent (see EXPERIMENTS.md).
			if float64(diff) > 0.05*float64(want.Size) {
				t.Errorf("%v/%s: size %d, paper %d (>5%% off)", r.Case, name, got.Size, want.Size)
			}
		}
		// lm and w must agree exactly (the paper's observation).
		if r.Sizes["lm"] != r.Sizes["w"] {
			t.Errorf("%v: lm %v != w %v", r.Case, r.Sizes["lm"], r.Sizes["w"])
		}
	}
}

func TestTable4ShapeAndYields(t *testing.T) {
	cases := []Case{{"MS2", 1}, {"ESEN4x1", 1}, {"ESEN4x1", 2}}
	rows, err := Table4(cases, Config{})
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	for _, r := range rows {
		if r.Failed {
			t.Fatalf("%v failed", r.Case)
		}
		if !r.HavePaper {
			t.Fatalf("%v: no paper row", r.Case)
		}
		if r.Peak < r.ROBDD {
			t.Errorf("%v: peak %d below final size %d", r.Case, r.Peak, r.ROBDD)
		}
		if ratio := float64(r.ROBDD) / float64(r.ROMDD); ratio < 3 {
			t.Errorf("%v: ROBDD/ROMDD ratio %.1f — paper reports ≈10×", r.Case, ratio)
		}
		// Truncation points of the calibration.
		wantM := 6
		if r.Case.LambdaPrime == 2 {
			wantM = 10
		}
		if r.M != wantM {
			t.Errorf("%v: M = %d, want %d", r.Case, r.M, wantM)
		}
		// Yields track the paper within the weight-calibration slack.
		if diff := abs(r.Yield - r.PaperRow.Yield); diff > 0.05 {
			t.Errorf("%v: yield %.4f vs paper %.3f", r.Case, r.Yield, r.PaperRow.Yield)
		}
	}
	// λ'=2 must yield lower than λ'=1 on the same system.
	if rows[2].Yield >= rows[1].Yield {
		t.Errorf("λ'=2 yield %.4f not below λ'=1 %.4f", rows[2].Yield, rows[1].Yield)
	}
}

func TestAblationDirectMDDAgreement(t *testing.T) {
	rows, err := AblationDirectMDD([]Case{{"MS2", 1}}, Config{})
	if err != nil {
		t.Fatalf("AblationDirectMDD: %v", err)
	}
	r := rows[0]
	if r.DirectFailed {
		t.Fatal("direct route failed on MS2")
	}
	if !r.SizesAgree || !r.YieldsAgree {
		t.Error("routes disagree — canonicity bug")
	}
}

func TestBaselineMonteCarloConsistent(t *testing.T) {
	rows, err := BaselineMonteCarlo([]Case{{"MS2", 1}}, 50000, Config{})
	if err != nil {
		t.Fatalf("BaselineMonteCarlo: %v", err)
	}
	if !rows[0].WithinThree {
		t.Errorf("MC %v vs exact %v beyond 3σ+ε", rows[0].MC, rows[0].Exact)
	}
}

func TestBaselineImportanceConsistent(t *testing.T) {
	rows, err := BaselineImportance([]Case{{"MS2", 1}}, 50000, Config{})
	if err != nil {
		t.Fatalf("BaselineImportance: %v", err)
	}
	r := rows[0]
	if !r.WithinThree {
		t.Errorf("IS %v vs exact %v beyond 3σ+ε", r.IS, r.Exact)
	}
	if r.ESS <= 0 || r.ESS > float64(r.Samples) {
		t.Errorf("ESS %v out of (0, %d]", r.ESS, r.Samples)
	}
	if r.Tilt < 0 {
		t.Errorf("negative tilt %v", r.Tilt)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Table2([]Case{{"NOPE", 1}}, Config{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPaperDataAccessors(t *testing.T) {
	for _, c := range PaperCases() {
		if _, ok := PaperTable2(c); !ok {
			t.Errorf("no paper Table 2 row for %v", c)
		}
		if _, ok := PaperTable3(c); !ok {
			t.Errorf("no paper Table 3 row for %v", c)
		}
		if _, ok := PaperTable4(c); !ok {
			t.Errorf("no paper Table 4 row for %v", c)
		}
	}
	if _, ok := PaperTable4(Case{"NOPE", 1}); ok {
		t.Error("paper row for unknown case")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a     long-header") {
		t.Errorf("header misaligned: %q", lines[0])
	}
}

func TestSortCases(t *testing.T) {
	cases := []Case{{"ESEN4x1", 2}, {"MS2", 1}, {"ZZZ", 9}, {"MS4", 1}}
	SortCases(cases)
	if cases[0] != (Case{"MS2", 1}) || cases[1] != (Case{"MS4", 1}) {
		t.Errorf("order: %v", cases)
	}
	if cases[3] != (Case{"ZZZ", 9}) {
		t.Errorf("unknown case not last: %v", cases)
	}
}

func TestCellString(t *testing.T) {
	if (Cell{Size: 42}).String() != "42" {
		t.Error("size cell")
	}
	if (Cell{Failed: true}).String() != "—" {
		t.Error("failed cell")
	}
}

func TestQuickAndPaperCaseSets(t *testing.T) {
	if len(PaperCases()) != 15 {
		t.Errorf("paper cases = %d, want 15", len(PaperCases()))
	}
	seen := map[Case]bool{}
	for _, c := range PaperCases() {
		if seen[c] {
			t.Errorf("duplicate case %v", c)
		}
		seen[c] = true
	}
	for _, c := range QuickCases() {
		if !seen[c] {
			t.Errorf("quick case %v not in paper set", c)
		}
	}
}

// TestROMDDSizesPinnedToPaper pins the digit-exact ROMDD reproduction
// on the fast benchmarks — the strongest regression guard for the
// whole pipeline (encoder, orderings, compiler, converter): any change
// that perturbs the canonical diagrams breaks these equalities.
func TestROMDDSizesPinnedToPaper(t *testing.T) {
	want := map[Case]int{
		{"MS2", 1}:     2034,
		{"ESEN4x1", 1}: 3046,
		{"ESEN4x2", 1}: 6995,
		{"MS2", 2}:     7534,
		{"ESEN4x1", 2}: 11666,
	}
	rows, err := Table4([]Case{
		{"MS2", 1}, {"ESEN4x1", 1}, {"ESEN4x2", 1}, {"MS2", 2}, {"ESEN4x1", 2},
	}, Config{})
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	for _, r := range rows {
		if r.Failed {
			t.Fatalf("%v failed", r.Case)
		}
		if r.ROMDD != want[r.Case] {
			t.Errorf("%v: ROMDD = %d, want the paper's %d", r.Case, r.ROMDD, want[r.Case])
		}
	}
}

// TestTablesParallelMatchSerial runs the table drivers with Workers 1
// and 4 on the fast cases; every row must be identical apart from
// wall-clock timings, which the comparison masks out.
func TestTablesParallelMatchSerial(t *testing.T) {
	cases := []Case{{"MS2", 1}, {"ESEN4x1", 1}}
	serialCfg := Config{Workers: 1}
	parallelCfg := Config{Workers: 4}

	t2s, err := Table2(cases, serialCfg)
	if err != nil {
		t.Fatalf("Table2 serial: %v", err)
	}
	t2p, err := Table2(cases, parallelCfg)
	if err != nil {
		t.Fatalf("Table2 parallel: %v", err)
	}
	for i := range t2s {
		if t2s[i].Case != t2p[i].Case {
			t.Fatalf("Table2 row %d: case order differs (%v vs %v)", i, t2s[i].Case, t2p[i].Case)
		}
		for k, v := range t2s[i].Sizes {
			if t2p[i].Sizes[k] != v {
				t.Errorf("Table2 %v/%s: serial %v, parallel %v", t2s[i].Case, k, v, t2p[i].Sizes[k])
			}
		}
	}

	t3s, err := Table3(cases, serialCfg)
	if err != nil {
		t.Fatalf("Table3 serial: %v", err)
	}
	t3p, err := Table3(cases, parallelCfg)
	if err != nil {
		t.Fatalf("Table3 parallel: %v", err)
	}
	for i := range t3s {
		for k, v := range t3s[i].Sizes {
			if t3p[i].Sizes[k] != v {
				t.Errorf("Table3 %v/%s: serial %v, parallel %v", t3s[i].Case, k, v, t3p[i].Sizes[k])
			}
		}
	}

	t4s, err := Table4(cases, serialCfg)
	if err != nil {
		t.Fatalf("Table4 serial: %v", err)
	}
	t4p, err := Table4(cases, parallelCfg)
	if err != nil {
		t.Fatalf("Table4 parallel: %v", err)
	}
	for i := range t4s {
		s, p := t4s[i], t4p[i]
		if s.Case != p.Case || s.Yield != p.Yield || s.ROBDD != p.ROBDD || s.ROMDD != p.ROMDD ||
			s.Peak != p.Peak || s.M != p.M || s.Failed != p.Failed {
			t.Errorf("Table4 row %d differs beyond timing: serial %+v, parallel %+v", i, s, p)
		}
	}

	mcS, err := BaselineMonteCarlo(cases, 5000, serialCfg)
	if err != nil {
		t.Fatalf("BaselineMonteCarlo serial: %v", err)
	}
	mcP, err := BaselineMonteCarlo(cases, 5000, parallelCfg)
	if err != nil {
		t.Fatalf("BaselineMonteCarlo parallel: %v", err)
	}
	for i := range mcS {
		s, p := mcS[i], mcP[i]
		if s.Case != p.Case || s.Exact != p.Exact || s.MC != p.MC || s.MCStdErr != p.MCStdErr {
			t.Errorf("Baseline row %d differs beyond timing: serial %+v, parallel %+v", i, s, p)
		}
	}

	isS, err := BaselineImportance(cases, 5000, serialCfg)
	if err != nil {
		t.Fatalf("BaselineImportance serial: %v", err)
	}
	isP, err := BaselineImportance(cases, 5000, parallelCfg)
	if err != nil {
		t.Fatalf("BaselineImportance parallel: %v", err)
	}
	for i := range isS {
		s, p := isS[i], isP[i]
		if s.Case != p.Case || s.Exact != p.Exact || s.IS != p.IS || s.ISStdErr != p.ISStdErr ||
			s.Tilt != p.Tilt || s.ESS != p.ESS {
			t.Errorf("IS baseline row %d differs beyond timing: serial %+v, parallel %+v", i, s, p)
		}
	}
}

// TestAblationParallel exercises the ablation driver through the
// worker pool (result fields are timing-dominated, so only the
// structural agreements are compared).
func TestAblationParallel(t *testing.T) {
	cases := []Case{{"MS2", 1}, {"ESEN4x1", 1}}
	rows, err := AblationDirectMDD(cases, Config{Workers: 2})
	if err != nil {
		t.Fatalf("AblationDirectMDD: %v", err)
	}
	if len(rows) != len(cases) {
		t.Fatalf("%d rows for %d cases", len(rows), len(cases))
	}
	for i, r := range rows {
		if r.Case != cases[i] {
			t.Errorf("row %d: case %v, want %v (order must be stable)", i, r.Case, cases[i])
		}
		if !r.DirectFailed && (!r.SizesAgree || !r.YieldsAgree) {
			t.Errorf("%v: construction routes disagree", r.Case)
		}
	}
}
