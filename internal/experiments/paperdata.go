package experiments

// The paper's published numbers (Tables 2–4 of Munteanu et al., DSN
// 2003), embedded so regenerated tables print measured-vs-paper side
// by side. Values are transcribed from the archival copy as printed;
// where the copy is internally inconsistent (e.g. the MS4 coded-ROBDD
// size appears as 243,254 in Table 3 and 243,154 in Table 4) both are
// kept in their respective tables.

func cell(n int) Cell { return Cell{Size: n} }
func failed() Cell    { return Cell{Failed: true} }

// paperTable2: ROMDD sizes per MV ordering (ε as in the paper; our
// runs use the calibrated ε = 5e-3 giving the same M values).
var paperTable2 = map[Case]map[string]Cell{
	{"MS2", 1}:     {"wv": cell(3202), "wvr": cell(2034), "vw": cell(2035), "vrw": cell(73405), "t": cell(3202), "w": cell(2034), "h": cell(3202)},
	{"MS4", 1}:     {"wv": cell(28392), "wvr": cell(22760), "vw": cell(22761), "vrw": cell(882505), "t": cell(28392), "w": cell(22760), "h": cell(28392)},
	{"MS6", 1}:     {"wv": cell(119260), "wvr": cell(103228), "vw": cell(103229), "vrw": cell(3989917), "t": cell(119260), "w": cell(103228), "h": cell(119260)},
	{"MS8", 1}:     {"wv": cell(344320), "wvr": cell(309136), "vw": cell(309137), "vrw": failed(), "t": cell(344320), "w": cell(309136), "h": cell(344320)},
	{"MS10", 1}:    {"wv": cell(797908), "wvr": cell(731748), "vw": cell(731749), "vrw": failed(), "t": cell(797908), "w": cell(731748), "h": cell(797908)},
	{"MS2", 2}:     {"wv": cell(25038), "wvr": cell(7534), "vw": cell(7535), "vrw": failed(), "t": cell(25038), "w": cell(7534), "h": cell(25038)},
	{"MS4", 2}:     {"wv": cell(1345390), "wvr": failed(), "vw": failed(), "vrw": failed(), "t": cell(1345350), "w": cell(635530), "h": cell(1345350)},
	{"ESEN4x1", 1}: {"wv": cell(5090), "wvr": cell(3046), "vw": cell(3047), "vrw": cell(190059), "t": cell(5090), "w": cell(3046), "h": cell(5090)},
	{"ESEN4x2", 1}: {"wv": cell(11031), "wvr": cell(6995), "vw": cell(6996), "vrw": cell(486205), "t": cell(11031), "w": cell(6995), "h": cell(11031)},
	{"ESEN4x4", 1}: {"wv": cell(29391), "wvr": cell(19547), "vw": cell(19548), "vrw": cell(1469685), "t": cell(29391), "w": cell(19547), "h": cell(29391)},
	{"ESEN8x1", 1}: {"wv": cell(169764), "wvr": cell(134512), "vw": cell(134513), "vrw": failed(), "t": cell(169764), "w": cell(134512), "h": cell(169764)},
	{"ESEN8x2", 1}: {"wv": cell(373117), "wvr": cell(303657), "vw": cell(303658), "vrw": failed(), "t": cell(373117), "w": cell(303657), "h": cell(373117)},
	{"ESEN4x1", 2}: {"wv": cell(38594), "wvr": cell(11666), "vw": cell(11667), "vrw": failed(), "t": cell(38594), "w": cell(11666), "h": cell(38594)},
	{"ESEN4x2", 2}: {"wv": cell(97671), "wvr": cell(30783), "vw": cell(30784), "vrw": failed(), "t": cell(67671), "w": cell(30783), "h": cell(97671)},
	{"ESEN4x4", 2}: {"wv": cell(296175), "wvr": cell(96231), "vw": cell(96232), "vrw": failed(), "t": failed(), "w": cell(96231), "h": failed()},
}

// paperTable3: coded-ROBDD sizes per bit-group ordering under the
// weight MV ordering.
var paperTable3 = map[Case]map[string]Cell{
	{"MS2", 1}:     {"ml": cell(24237), "lm": cell(28418), "w": cell(28418)},
	{"MS4", 1}:     {"ml": cell(243254), "lm": cell(236915), "w": cell(236915)},
	{"MS6", 1}:     {"ml": cell(1120255), "lm": cell(1290274), "w": cell(1290274)},
	{"MS8", 1}:     {"ml": cell(3154056), "lm": cell(3283401), "w": cell(3283401)},
	{"MS10", 1}:    {"ml": cell(7954261), "lm": cell(10019092), "w": cell(10019092)},
	{"MS2", 2}:     {"ml": cell(361428), "lm": cell(439700), "w": cell(439700)},
	{"MS4", 2}:     {"ml": cell(11885214), "lm": cell(11492704), "w": cell(11492704)},
	{"ESEN4x1", 1}: {"ml": cell(19338), "lm": cell(20721), "w": cell(20721)},
	{"ESEN4x2", 1}: {"ml": cell(54705), "lm": cell(65208), "w": cell(65208)},
	{"ESEN4x4", 1}: {"ml": cell(184332), "lm": cell(283338), "w": cell(283338)},
	{"ESEN8x1", 1}: {"ml": cell(904777), "lm": cell(972506), "w": cell(972506)},
	{"ESEN8x2", 1}: {"ml": cell(2244340), "lm": cell(2796165), "w": cell(2796165)},
	{"ESEN4x1", 2}: {"ml": cell(105511), "lm": cell(109692), "w": cell(109692)},
	{"ESEN4x2", 2}: {"ml": cell(378686), "lm": cell(414939), "w": cell(414939)},
	{"ESEN4x4", 2}: {"ml": cell(1513441), "lm": cell(2117587), "w": cell(2117587)},
}

// paperTable4: CPU seconds (Sun-Blade-1000), ROBDD peak, final coded
// ROBDD, ROMDD, and yield, for MV ordering w and bit ordering ml.
var paperTable4 = map[Case]PaperPerf{
	{"MS2", 1}:     {CPUSeconds: 0.98, Peak: 30987, ROBDD: 24237, ROMDD: 2034, Yield: 0.944},
	{"MS4", 1}:     {CPUSeconds: 6.23, Peak: 427130, ROBDD: 243154, ROMDD: 22760, Yield: 0.965},
	{"MS6", 1}:     {CPUSeconds: 66.4, Peak: 2564600, ROBDD: 1120255, ROMDD: 103228, Yield: 0.975},
	{"MS8", 1}:     {CPUSeconds: 262.1, Peak: 7518549, ROBDD: 3154056, ROMDD: 309136, Yield: 0.980},
	{"MS10", 1}:    {CPUSeconds: 862.2, Peak: 20344432, ROBDD: 7954261, ROMDD: 731748, Yield: 0.984},
	{"MS2", 2}:     {CPUSeconds: 3.59, Peak: 124067, ROBDD: 116960, ROMDD: 7534, Yield: 0.830},
	{"MS4", 2}:     {CPUSeconds: 827.7, Peak: 14175238, ROBDD: 11885214, ROMDD: 635530, Yield: 0.885},
	{"ESEN4x1", 1}: {CPUSeconds: 0.86, Peak: 37231, ROBDD: 19338, ROMDD: 3046, Yield: 0.910},
	{"ESEN4x2", 1}: {CPUSeconds: 2.72, Peak: 200272, ROBDD: 54705, ROMDD: 6995, Yield: 0.848},
	{"ESEN4x4", 1}: {CPUSeconds: 14.64, Peak: 368815, ROBDD: 184332, ROMDD: 19547, Yield: 0.829},
	{"ESEN8x1", 1}: {CPUSeconds: 172.85, Peak: 6544206, ROBDD: 904777, ROMDD: 134512, Yield: 0.881},
	{"ESEN8x2", 1}: {CPUSeconds: 1060.7, Peak: 29926091, ROBDD: 2244340, ROMDD: 303657, Yield: 0.835},
	{"ESEN4x1", 2}: {CPUSeconds: 3.47, Peak: 143633, ROBDD: 105511, ROMDD: 11666, Yield: 0.756},
	{"ESEN4x2", 2}: {CPUSeconds: 18.34, Peak: 757529, ROBDD: 378686, ROMDD: 30783, Yield: 0.642},
	{"ESEN4x4", 2}: {CPUSeconds: 108.52, Peak: 3027309, ROBDD: 1513441, ROMDD: 96231, Yield: 0.605},
}

// PaperTable2 exposes the published Table 2 row for a case.
func PaperTable2(c Case) (map[string]Cell, bool) { v, ok := paperTable2[c]; return v, ok }

// PaperTable3 exposes the published Table 3 row for a case.
func PaperTable3(c Case) (map[string]Cell, bool) { v, ok := paperTable3[c]; return v, ok }

// PaperTable4 exposes the published Table 4 row for a case.
func PaperTable4(c Case) (PaperPerf, bool) { v, ok := paperTable4[c]; return v, ok }
