// Package experiments regenerates the evaluation artifacts of the
// paper: Table 1 (benchmark inventory), Table 2 (ROMDD size under the
// seven multiple-valued orderings), Table 3 (coded-ROBDD size under the
// bit-group orderings), Table 4 (end-to-end performance of the chosen
// heuristics), the Figure 2 worked example, plus the reproduction-only
// ablations (direct-MDD construction, Monte-Carlo baseline).
//
// The paper's own numbers are embedded so every regenerated table
// prints measured-vs-paper side by side; EXPERIMENTS.md is the frozen
// record of one full run.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/montecarlo"
	"socyield/internal/obs"
	"socyield/internal/order"
	"socyield/internal/store"
	"socyield/internal/yield"
)

// Case identifies one experimental row: a benchmark at a lethal-defect
// intensity λ′ ∈ {1, 2}.
type Case struct {
	Benchmark   string
	LambdaPrime int
}

// String returns the paper's row label, e.g. "MS4, λ'=2".
func (c Case) String() string { return fmt.Sprintf("%s, λ'=%d", c.Benchmark, c.LambdaPrime) }

// PaperCases returns the fifteen rows of Tables 2–4 in the paper's
// order.
func PaperCases() []Case {
	return []Case{
		{"MS2", 1}, {"MS4", 1}, {"MS6", 1}, {"MS8", 1}, {"MS10", 1},
		{"MS2", 2}, {"MS4", 2},
		{"ESEN4x1", 1}, {"ESEN4x2", 1}, {"ESEN4x4", 1}, {"ESEN8x1", 1}, {"ESEN8x2", 1},
		{"ESEN4x1", 2}, {"ESEN4x2", 2}, {"ESEN4x4", 2},
	}
}

// QuickCases returns the subset of rows that complete in seconds,
// for iterative runs and the Go benchmarks.
func QuickCases() []Case {
	return []Case{
		{"MS2", 1}, {"MS4", 1}, {"MS2", 2},
		{"ESEN4x1", 1}, {"ESEN4x2", 1}, {"ESEN4x1", 2},
	}
}

// Config sets shared experiment parameters. The zero value is replaced
// by the calibrated reproduction defaults.
type Config struct {
	// Alpha is the negative binomial clustering parameter (default
	// 3.4, the joint calibration with the benchmark weight ratios that
	// reproduces the paper's published yields — see
	// internal/tools/calib2 and calib3 — while keeping the truncation
	// points at the paper's M = 6 for λ′ = 1 and M = 10 for λ′ = 2).
	Alpha float64
	// Epsilon is the yield error requirement (default 2e-3, inside
	// the window that yields exactly those truncation points at the
	// default Alpha).
	Epsilon float64
	// NodeLimit bounds decision-diagram nodes; configurations
	// exceeding it are reported as failures, reproducing the paper's
	// "—" (memory exhaustion on 4 GB) entries. When 0, Table 2 uses
	// 30,000,000 — which empirically reproduces the paper's failure
	// pattern — and the performance tables use 100,000,000, enough
	// headroom for the largest successful rows (our GC cadence lets
	// roughly 2× the paper's peak accumulate between collections).
	NodeLimit int
	// Workers is the number of cases evaluated concurrently by the
	// table drivers (each case builds its own decision diagrams, so
	// cases are independent); ≤ 0 means runtime.GOMAXPROCS(0). Row
	// order and row contents are unaffected by the worker count —
	// only wall-clock time is. Note that per-row CPU timings (Table 4)
	// measure contended wall-clock when Workers > 1; pass Workers: 1
	// when timing fidelity matters more than throughput, and mind the
	// node budget: it applies per case, so W concurrent cases can hold
	// W × NodeLimit nodes at peak.
	Workers int
	// BuildWorkers is the worker count for each case's decision-diagram
	// build (yield.Options.BuildWorkers): 0 defaults to GOMAXPROCS, 1
	// forces the serial reference engine. Every row is bit-identical
	// for every value; it composes with Workers (W cases × B build
	// workers can keep W×B goroutines busy).
	BuildWorkers int
	// Recorder, when non-nil, instruments every evaluation the table
	// drivers run: engine counters accumulate across cases, gauges
	// reflect the last case finished. The registry is concurrency-safe,
	// so it composes with Workers > 1.
	Recorder *obs.Registry
	// Tracer, when non-nil, records per-work-unit build events from
	// every evaluation into the flight recorder's trace ring. Like the
	// Recorder it is concurrency-safe and shared across cases.
	Tracer *obs.Tracer
	// Store, when non-nil, is a persistent compiled-model store (the
	// same artifacts yieldd -store-dir serves): benchmark drivers that
	// support it load compiled models from the store instead of
	// rebuilding, and write fresh builds through.
	Store *store.Store
}

const (
	defaultOrderingNodeLimit = 30_000_000
	defaultPerfNodeLimit     = 100_000_000
)

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 3.4
	}
	if c.Epsilon == 0 {
		c.Epsilon = 2e-3
	}
	return c
}

// limit returns the node budget for an experiment family.
func (c Config) limit(def int) int {
	if c.NodeLimit != 0 {
		return c.NodeLimit
	}
	return def
}

// workers resolves the configured case concurrency.
func (c Config) workers(cases int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cases {
		w = cases
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachCase evaluates fn for every case on a bounded worker pool and
// returns the results in case order. Cases are independent — each
// builds its own managers — so this is the embarrassingly parallel
// outer loop of every table driver. On error the first failing case
// (in case order, for determinism) is reported.
func forEachCase[T any](cases []Case, cfg Config, fn func(cs Case) (T, error)) ([]T, error) {
	out := make([]T, len(cases))
	if len(cases) == 0 {
		return out, nil
	}
	errs := make([]error, len(cases))
	workers := cfg.workers(len(cases))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cases) {
					return
				}
				out[i], errs[i] = fn(cases[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildSystem instantiates a named benchmark.
func buildSystem(name string) (*yield.System, error) {
	for _, e := range benchmarks.PaperBenchmarks() {
		if e.Name == name {
			return e.Build()
		}
	}
	return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// distribution returns the defect distribution of a case: negative
// binomial with mean 2·λ′ (P_L = 0.5 makes the lethal mean λ′).
func distribution(c Case, cfg Config) (defects.Distribution, error) {
	return defects.NewNegativeBinomial(2*float64(c.LambdaPrime), cfg.Alpha)
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Benchmark  string
	Components int
	Gates      int // our reconstructed netlist
	PaperC     int
	PaperGates int
}

// Table1 regenerates the benchmark inventory.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, e := range benchmarks.PaperBenchmarks() {
		sys, err := e.Build()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Benchmark:  e.Name,
			Components: len(sys.Components),
			Gates:      sys.FaultTree.NumGates(),
			PaperC:     benchmarks.PaperComponentCounts[e.Name],
			PaperGates: benchmarks.PaperGateCounts[e.Name],
		})
	}
	return rows, nil
}

// Cell is one measurement that may have failed on the node budget.
type Cell struct {
	Size   int
	Failed bool
}

func (c Cell) String() string {
	if c.Failed {
		return "—"
	}
	return fmt.Sprintf("%d", c.Size)
}

// Table2Row is one row of Table 2: ROMDD sizes per MV ordering.
type Table2Row struct {
	Case  Case
	Sizes map[string]Cell // keyed by ordering name (wv, wvr, …)
	Paper map[string]Cell
}

// Table2MVOrderings lists the column orderings of Table 2.
func Table2MVOrderings() []order.MVKind {
	return []order.MVKind{
		order.MVWV, order.MVWVR, order.MVVW, order.MVVRW,
		order.MVTopology, order.MVWeight, order.MVH4,
	}
}

// Table2 regenerates the MV-ordering comparison for the given cases,
// evaluating Config.Workers cases concurrently.
func Table2(cases []Case, cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	return forEachCase(cases, cfg, func(cs Case) (Table2Row, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return Table2Row{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{Case: cs, Sizes: make(map[string]Cell), Paper: paperTable2[cs]}
		for _, mv := range Table2MVOrderings() {
			res, err := yield.Evaluate(sys, yield.Options{
				Defects: dist, Epsilon: cfg.Epsilon,
				MVOrder: mv, BitOrder: order.BitML,
				NodeLimit: cfg.limit(defaultOrderingNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
			})
			switch {
			case err == nil:
				row.Sizes[mv.String()] = Cell{Size: res.ROMDDSize}
			case isLimit(err):
				row.Sizes[mv.String()] = Cell{Failed: true}
			default:
				return Table2Row{}, fmt.Errorf("%v/%v: %w", cs, mv, err)
			}
		}
		return row, nil
	})
}

// Table3Row is one row of Table 3: coded-ROBDD sizes per bit-group
// ordering under the weight MV ordering.
type Table3Row struct {
	Case  Case
	Sizes map[string]Cell // keyed by ml, lm, w
	Paper map[string]Cell
}

// Table3BitOrderings lists the column orderings of Table 3.
func Table3BitOrderings() []order.BitKind {
	return []order.BitKind{order.BitML, order.BitLM, order.BitWeight}
}

// Table3 regenerates the bit-ordering comparison, evaluating
// Config.Workers cases concurrently.
func Table3(cases []Case, cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	return forEachCase(cases, cfg, func(cs Case) (Table3Row, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return Table3Row{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return Table3Row{}, err
		}
		row := Table3Row{Case: cs, Sizes: make(map[string]Cell), Paper: paperTable3[cs]}
		for _, bk := range Table3BitOrderings() {
			res, err := yield.Evaluate(sys, yield.Options{
				Defects: dist, Epsilon: cfg.Epsilon,
				MVOrder: order.MVWeight, BitOrder: bk,
				NodeLimit: cfg.limit(defaultPerfNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
			})
			switch {
			case err == nil:
				row.Sizes[bk.String()] = Cell{Size: res.CodedROBDDSize}
			case isLimit(err):
				row.Sizes[bk.String()] = Cell{Failed: true}
			default:
				return Table3Row{}, fmt.Errorf("%v/%v: %w", cs, bk, err)
			}
		}
		return row, nil
	})
}

// Table4Row is one row of Table 4: the end-to-end method with the
// paper's chosen heuristics (w for MV variables, ml for bit groups).
type Table4Row struct {
	Case      Case
	CPU       time.Duration
	Peak      int
	ROBDD     int
	ROMDD     int
	Yield     float64
	M         int
	Failed    bool
	PaperCPU  float64 // seconds
	PaperRow  PaperPerf
	HavePaper bool
}

// PaperPerf is the paper's Table 4 row.
type PaperPerf struct {
	CPUSeconds float64
	Peak       int
	ROBDD      int
	ROMDD      int
	Yield      float64
}

// Table4 regenerates the end-to-end performance table, evaluating
// Config.Workers cases concurrently (per-row CPU times then measure
// contended wall-clock; use Workers: 1 for clean timings).
func Table4(cases []Case, cfg Config) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	return forEachCase(cases, cfg, func(cs Case) (Table4Row, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return Table4Row{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return Table4Row{}, err
		}
		start := time.Now()
		res, err := yield.Evaluate(sys, yield.Options{
			Defects: dist, Epsilon: cfg.Epsilon,
			MVOrder: order.MVWeight, BitOrder: order.BitML,
			NodeLimit: cfg.limit(defaultPerfNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
		})
		row := Table4Row{Case: cs, CPU: time.Since(start)}
		if paper, ok := paperTable4[cs]; ok {
			row.PaperRow = paper
			row.HavePaper = true
		}
		switch {
		case err == nil:
			row.Peak = res.ROBDDPeak
			row.ROBDD = res.CodedROBDDSize
			row.ROMDD = res.ROMDDSize
			row.Yield = res.Yield
			row.M = res.M
		case isLimit(err):
			row.Failed = true
			if res != nil {
				row.Peak = res.ROBDDPeak
			}
		default:
			return Table4Row{}, fmt.Errorf("%v: %w", cs, err)
		}
		return row, nil
	})
}

// AblationRow compares the coded-ROBDD route against direct ROMDD
// construction by MDD apply (the paper's Section 2 consensus claim).
type AblationRow struct {
	Case         Case
	CodedTime    time.Duration
	DirectTime   time.Duration
	ROMDD        int
	SizesAgree   bool
	YieldsAgree  bool
	DirectFailed bool
}

// AblationDirectMDD runs both construction routes on the given cases,
// evaluating Config.Workers cases concurrently.
func AblationDirectMDD(cases []Case, cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	return forEachCase(cases, cfg, func(cs Case) (AblationRow, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return AblationRow{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return AblationRow{}, err
		}
		opts := yield.Options{
			Defects: dist, Epsilon: cfg.Epsilon,
			MVOrder: order.MVWeight, BitOrder: order.BitML,
			NodeLimit: cfg.limit(defaultPerfNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
		}
		start := time.Now()
		viaCoded, err := yield.Evaluate(sys, opts)
		if err != nil {
			return AblationRow{}, fmt.Errorf("%v coded route: %w", cs, err)
		}
		codedTime := time.Since(start)
		start = time.Now()
		direct, err := yield.EvaluateDirectMDD(sys, opts)
		row := AblationRow{Case: cs, CodedTime: codedTime, ROMDD: viaCoded.ROMDDSize}
		if err != nil {
			if !isLimit(err) {
				return AblationRow{}, fmt.Errorf("%v direct route: %w", cs, err)
			}
			row.DirectFailed = true
		} else {
			row.DirectTime = time.Since(start)
			row.SizesAgree = direct.ROMDDSize == viaCoded.ROMDDSize
			row.YieldsAgree = abs(direct.Yield-viaCoded.Yield) < 1e-9
		}
		return row, nil
	})
}

// BaselineRow compares the combinatorial method with Monte-Carlo
// simulation at a matched time budget.
type BaselineRow struct {
	Case        Case
	Exact       float64
	ExactTime   time.Duration
	MC          float64
	MCStdErr    float64
	MCSamples   int
	MCTime      time.Duration
	WithinThree bool // |MC − exact| ≤ 3σ
}

// BaselineMonteCarlo runs the simulation baseline with the given
// sample count per case, evaluating Config.Workers cases concurrently
// (the simulator itself stays single-worker per case then, so the
// machine is not oversubscribed; with one case it fans the samples
// out instead).
func BaselineMonteCarlo(cases []Case, samples int, cfg Config) ([]BaselineRow, error) {
	cfg = cfg.withDefaults()
	caseWorkers := cfg.workers(len(cases))
	mcWorkers := 1
	if caseWorkers == 1 {
		mcWorkers = cfg.Workers // ≤ 0 lets the simulator pick GOMAXPROCS
	}
	return forEachCase(cases, cfg, func(cs Case) (BaselineRow, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return BaselineRow{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return BaselineRow{}, err
		}
		start := time.Now()
		exact, err := yield.Evaluate(sys, yield.Options{
			Defects: dist, Epsilon: cfg.Epsilon, NodeLimit: cfg.limit(defaultPerfNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
		})
		if err != nil {
			return BaselineRow{}, fmt.Errorf("%v: %w", cs, err)
		}
		exactTime := time.Since(start)
		start = time.Now()
		mc, err := montecarlo.Estimate(sys, montecarlo.Options{
			Defects: dist, Samples: samples, Seed: 20030622, // DSN'03 conference date
			Workers: mcWorkers,
		})
		if err != nil {
			return BaselineRow{}, fmt.Errorf("%v MC: %w", cs, err)
		}
		diff := abs(mc.Yield - exact.Yield)
		return BaselineRow{
			Case: cs, Exact: exact.Yield, ExactTime: exactTime,
			MC: mc.Yield, MCStdErr: mc.StdErr, MCSamples: samples,
			MCTime: time.Since(start),
			// The combinatorial result is pessimistic by ≤ ε, so allow
			// the truncation slack on top of the sampling noise.
			WithinThree: diff <= 3*mc.StdErr+cfg.Epsilon,
		}, nil
	})
}

// ISBaselineRow compares the combinatorial method with the
// importance-sampling simulator on the same case, carrying the
// estimator's diagnostics (chosen tilt, effective sample size,
// relative error on the failure probability) alongside the agreement
// verdict.
type ISBaselineRow struct {
	Case        Case
	Exact       float64
	ExactTime   time.Duration
	IS          float64
	ISStdErr    float64
	Tilt        float64
	ESS         float64
	RelErr      float64
	Samples     int
	ISTime      time.Duration
	WithinThree bool // |IS − exact| ≤ 3σ + ε
}

// BaselineImportance runs the importance-sampling baseline with the
// given sample budget per case (pilot included), with the same
// worker-allocation rule as BaselineMonteCarlo: concurrent cases keep
// the simulator single-worker, a lone case fans its samples out.
func BaselineImportance(cases []Case, samples int, cfg Config) ([]ISBaselineRow, error) {
	cfg = cfg.withDefaults()
	caseWorkers := cfg.workers(len(cases))
	isWorkers := 1
	if caseWorkers == 1 {
		isWorkers = cfg.Workers // ≤ 0 lets the simulator pick GOMAXPROCS
	}
	return forEachCase(cases, cfg, func(cs Case) (ISBaselineRow, error) {
		sys, err := buildSystem(cs.Benchmark)
		if err != nil {
			return ISBaselineRow{}, err
		}
		dist, err := distribution(cs, cfg)
		if err != nil {
			return ISBaselineRow{}, err
		}
		start := time.Now()
		exact, err := yield.Evaluate(sys, yield.Options{
			Defects: dist, Epsilon: cfg.Epsilon, NodeLimit: cfg.limit(defaultPerfNodeLimit), BuildWorkers: cfg.BuildWorkers, Recorder: cfg.Recorder, Tracer: cfg.Tracer,
		})
		if err != nil {
			return ISBaselineRow{}, fmt.Errorf("%v: %w", cs, err)
		}
		exactTime := time.Since(start)
		start = time.Now()
		is, err := montecarlo.EstimateIS(sys, montecarlo.ISOptions{
			Defects: dist, Samples: samples, Seed: 20030622, // DSN'03 conference date
			Workers: isWorkers,
		})
		if err != nil {
			return ISBaselineRow{}, fmt.Errorf("%v IS: %w", cs, err)
		}
		diff := abs(is.Yield - exact.Yield)
		return ISBaselineRow{
			Case: cs, Exact: exact.Yield, ExactTime: exactTime,
			IS: is.Yield, ISStdErr: is.StdErr,
			Tilt: is.Tilt, ESS: is.ESS, RelErr: is.RelErr,
			Samples: samples, ISTime: time.Since(start),
			// Same slack rule as the naive baseline: truncation
			// pessimism on top of the sampling noise.
			WithinThree: diff <= 3*is.StdErr+cfg.Epsilon,
		}, nil
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func isLimit(err error) bool {
	return err != nil && strings.Contains(err.Error(), "node limit")
}

// FormatTable renders rows of named columns as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, cell := range r {
			if n := len([]rune(cell)); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len([]rune(cell)); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	total := len(header) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// SortCases orders cases as the paper's tables do (already the
// PaperCases order); it is exposed for callers assembling subsets.
func SortCases(cases []Case) {
	rank := make(map[Case]int, len(PaperCases()))
	for i, c := range PaperCases() {
		rank[c] = i
	}
	sort.SliceStable(cases, func(a, b int) bool {
		ra, oka := rank[cases[a]]
		rb, okb := rank[cases[b]]
		switch {
		case oka && okb:
			return ra < rb
		case oka:
			return true
		case okb:
			return false
		default:
			return cases[a].String() < cases[b].String()
		}
	})
}
