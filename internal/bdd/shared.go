// Concurrent build engine: a Shared arena plus per-goroutine Worker
// handles, safe for parallel mk/ITE from any number of workers.
//
// The serial Manager remains the reference engine (and the oracle the
// equivalence tests compare against); Shared exists so the one-time
// build — netlist compilation and ROMDD conversion — can use every
// core. The two engines are canonical for the same variable order, so
// they represent every function by a structurally identical diagram:
// results derived from the diagram's structure (function values, sizes,
// probabilities) are bit-identical regardless of the worker count or
// scheduling, even though arena slot numbers differ run to run.
//
// Layout:
//
//   - The node arena is paged: a lock-free atomic pointer to a slice of
//     fixed-size pages. Growth appends pages behind a mutex and
//     republishes the slice; readers never block and existing nodes
//     never move. Workers allocate slots in chunks (one atomic add per
//     chunk), so slot allocation is contention-free.
//   - The unique table is sharded: the node hash selects one of
//     numShards independently locked shards, each with its own bucket
//     array (chained through node.next, as in the serial engine) that
//     grows independently. mk holds exactly one shard lock.
//   - The ITE operation cache is one shared 2-way set-associative
//     array; sets are striped over numStripes mutexes. A wrong cache
//     hit would silently corrupt results, so lookups are fully locked —
//     contention is counted (CacheContention) rather than raced away.
//   - Reference counts are adjusted atomically (Ref/Deref), and
//     live/limit accounting uses shared atomics.
//   - Per-worker state (allocation chunk, free-slot batch, n-ary apply
//     scratch, instrumentation counters) lives in the Worker handle —
//     the concurrent replacement for the serial engine's global
//     stamp/scratch slices.
//
// Garbage collection is stop-the-world at caller-provided quiescent
// points: the driver (package compile's work-stealing pool) guarantees
// no worker is inside an operation, then calls GC from one goroutine.
// Worker chunks survive collection because unused slots carry
// freeLevel from the moment a chunk is grabbed.
package bdd

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

const (
	pageShift = 16
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	numShards  = 256
	numStripes = 512

	allocChunk = 2048
	freeBatch  = 1024

	// maxSlots keeps idx<<1|complement representable in the int32 Node.
	maxSlots = 1 << 30
)

// page is one fixed-size block of the shared arena. Pages never move
// once published, so a *node stays valid across growth.
type page struct {
	nodes [pageSize]node
	refs  [pageSize]int32
}

// uniqShard is one lock of the striped unique table. count and growths
// are guarded by mu.
type uniqShard struct {
	mu      sync.Mutex
	buckets []int32
	count   int64
	growths int64
	_       [16]byte // keep hot shards off each other's cache lines
}

// cacheStripe is one lock of the striped ITE cache.
type cacheStripe struct {
	mu sync.Mutex
	_  [56]byte
}

// Shared is a concurrent ROBDD build arena. Operations go through
// Worker handles (NewWorker), one per goroutine; the read-only
// accessors (Level, Lo, Hi, Eval, ...) are safe from any goroutine at
// any time, and the bookkeeping entry points (GC, Stats, Size,
// ResetPeakLive) require all workers to be quiescent.
//
// Shared always uses complement edges; the classic engine variant
// exists only on the serial Manager.
type Shared struct {
	numVars int32
	limit   int64

	pages    atomic.Pointer[[]*page]
	growMu   sync.Mutex
	nextSlot atomic.Int64

	live     atomic.Int64
	peakLive atomic.Int64
	limitHit atomic.Bool

	shards  [numShards]uniqShard
	stripes [numStripes]cacheStripe

	// cache and cacheMask are mutated only at quiescent points.
	cache     []cacheEntry
	cacheMask uint32

	freeMu   sync.Mutex
	freeList []int32

	autoGCAt atomic.Int64
	gcCount  int
	gcFreed  int64
	markBits []uint64 // GC scratch, reused across collections

	agg sharedTotals
}

// workerTotals are a worker's private counters: plain ints bumped with
// no synchronization on the hot path, flushed into the arena's atomic
// totals at refill points and at Close.
type workerTotals struct {
	cacheHits    int64
	cacheMisses  int64
	uniqueHits   int64
	nodesCreated int64
	shardWaits   int64
	cacheWaits   int64
}

// sharedTotals accumulates flushed worker counters. The fields are
// atomics so that an observer (the flight-recorder sampler) can read
// running totals mid-build without racing the workers.
type sharedTotals struct {
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	uniqueHits   atomic.Int64
	nodesCreated atomic.Int64
	shardWaits   atomic.Int64
	cacheWaits   atomic.Int64
}

// NewShared creates a concurrent build arena for numVars boolean
// variables. nodeLimit bounds simultaneously live stored nodes as in
// WithNodeLimit; 0 means unlimited.
func NewShared(numVars, nodeLimit int) *Shared {
	if numVars < 0 {
		panic(fmt.Sprintf("bdd: negative variable count %d", numVars))
	}
	s := &Shared{numVars: int32(numVars), limit: int64(nodeLimit)}
	pages := []*page{new(page)}
	s.pages.Store(&pages)
	// Slot 0 is the single stored terminal, as in the serial engine.
	pages[0].nodes[0] = node{level: s.numVars, next: nilIdx}
	pages[0].refs[0] = 1
	s.nextSlot.Store(1)
	s.live.Store(1)
	s.peakLive.Store(1)
	for i := range s.shards {
		b := make([]int32, 64)
		for j := range b {
			b[j] = nilIdx
		}
		s.shards[i].buckets = b
	}
	s.cache = make([]cacheEntry, 1<<14)
	s.cacheMask = uint32(len(s.cache)/2 - 1)
	s.autoGCAt.Store(1 << 16)
	return s
}

// nodeAt returns the arena slot idx. The pages pointer is loaded
// atomically, so the slot stays valid across concurrent growth.
func (s *Shared) nodeAt(idx int32) *node {
	pgs := *s.pages.Load()
	return &pgs[idx>>pageShift].nodes[idx&pageMask]
}

// refAt returns the refcount cell of slot idx (adjust atomically).
func (s *Shared) refAt(idx int32) *int32 {
	pgs := *s.pages.Load()
	return &pgs[idx>>pageShift].refs[idx&pageMask]
}

// ensureCapacity grows the page list until it covers slot upTo-1.
func (s *Shared) ensureCapacity(upTo int64) {
	if upTo > maxSlots {
		panic(fmt.Sprintf("bdd: arena would exceed %d nodes", maxSlots))
	}
	if cur := *s.pages.Load(); int64(len(cur))<<pageShift >= upTo {
		return
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	cur := *s.pages.Load()
	need := int((upTo + pageMask) >> pageShift)
	if len(cur) >= need {
		return
	}
	next := make([]*page, need)
	copy(next, cur)
	for i := len(cur); i < need; i++ {
		next[i] = new(page)
	}
	s.pages.Store(&next)
}

// NumVars returns the number of variables the arena was created with.
func (s *Shared) NumVars() int { return int(s.numVars) }

// Level returns the variable level of n, or NumVars() for terminals.
func (s *Shared) Level(n Node) int { return int(s.nodeAt(int32(n >> 1)).level) }

// Lo returns the else-cofactor of n, resolving the handle's polarity.
func (s *Shared) Lo(n Node) Node { return s.nodeAt(int32(n>>1)).lo ^ (n & 1) }

// Hi returns the then-cofactor of n, resolving the handle's polarity.
func (s *Shared) Hi(n Node) Node { return s.nodeAt(int32(n>>1)).hi ^ (n & 1) }

// IsTerminal reports whether n is False or True.
func (s *Shared) IsTerminal(n Node) bool { return n <= True }

// NodeBound returns an exclusive upper bound on the integer value of
// every handle issued so far, for handle-indexed scratch slices.
func (s *Shared) NodeBound() int { return int(2 * s.nextSlot.Load()) }

// Live returns the number of live stored nodes (including the
// terminal).
func (s *Shared) Live() int { return int(s.live.Load()) }

// LimitExceeded reports whether any operation failed with ErrNodeLimit.
func (s *Shared) LimitExceeded() bool { return s.limitHit.Load() }

// PeakLive returns the live-node high-water mark. Live only decreases
// at quiescent-point collections, so the peak is maintained there (and
// on demand here) instead of on the allocation fast path.
func (s *Shared) PeakLive() int {
	s.bumpPeak()
	return int(s.peakLive.Load())
}

// ResetPeakLive returns the current peak and restarts tracking from
// the current live count. Quiescent callers only.
func (s *Shared) ResetPeakLive() int {
	s.bumpPeak()
	p := s.peakLive.Load()
	s.peakLive.Store(s.live.Load())
	return int(p)
}

func (s *Shared) bumpPeak() {
	if l := s.live.Load(); l > s.peakLive.Load() {
		s.peakLive.Store(l)
	}
}

// Ref adds an external reference to n (atomic; safe from any worker).
func (s *Shared) Ref(n Node) Node {
	if n > True {
		atomic.AddInt32(s.refAt(int32(n>>1)), 1)
	}
	return n
}

// RefN adds k external references to n in one atomic step.
func (s *Shared) RefN(n Node, k int32) Node {
	if n > True && k > 0 {
		atomic.AddInt32(s.refAt(int32(n>>1)), k)
	}
	return n
}

// Deref removes one external reference.
func (s *Shared) Deref(n Node) {
	if n > True {
		if atomic.AddInt32(s.refAt(int32(n>>1)), -1) < 0 {
			panic(fmt.Sprintf("bdd: Deref of unreferenced node %d", n))
		}
	}
}

// Eval evaluates f under the assignment (as Manager.Eval).
func (s *Shared) Eval(f Node, assign []bool) bool {
	for !s.IsTerminal(f) {
		c := f & 1
		nd := s.nodeAt(int32(f >> 1))
		if int(nd.level) < len(assign) && assign[nd.level] {
			f = nd.hi ^ c
		} else {
			f = nd.lo ^ c
		}
	}
	return f == True
}

// Size returns the number of stored nodes reachable from f, including
// the terminal. Quiescent callers only (it walks the arena unlocked).
func (s *Shared) Size(f Node) int {
	bits := make([]uint64, (s.nextSlot.Load()+63)/64)
	return s.sizeRec(int32(f>>1), bits)
}

func (s *Shared) sizeRec(idx int32, bits []uint64) int {
	if bits[idx>>6]&(1<<(uint(idx)&63)) != 0 {
		return 0
	}
	bits[idx>>6] |= 1 << (uint(idx) & 63)
	if idx == 0 {
		return 1
	}
	nd := s.nodeAt(idx)
	return 1 + s.sizeRec(int32(nd.lo>>1), bits) + s.sizeRec(int32(nd.hi>>1), bits)
}

// NeedGC reports whether the live count has crossed the automatic
// collection threshold. Drivers check it between tasks and, when true,
// quiesce all workers and call GC from one goroutine.
func (s *Shared) NeedGC() bool { return s.live.Load() >= s.autoGCAt.Load() }

// GC reclaims every node without an external reference, exactly as the
// serial engine's collector: mark from refcount roots, sweep to the
// free list, rebuild the shard chains, clear the operation cache. All
// workers must be quiescent. It also applies the serial engine's
// back-off (the threshold doubles while most of the arena stays live)
// and grows the shared ITE cache toward the live size.
func (s *Shared) GC() int {
	bound := int32(s.nextSlot.Load())
	s.bumpPeak()
	words := (int(bound) + 63) / 64
	if cap(s.markBits) < words {
		s.markBits = make([]uint64, words)
	} else {
		s.markBits = s.markBits[:words]
		clear(s.markBits)
	}
	bits := s.markBits
	for i := int32(1); i < bound; i++ {
		if s.nodeAt(i).level != freeLevel && atomic.LoadInt32(s.refAt(i)) > 0 {
			s.markShared(i, bits)
		}
	}
	freed := 0
	s.freeMu.Lock()
	for i := int32(1); i < bound; i++ {
		nd := s.nodeAt(i)
		if nd.level == freeLevel || bits[i>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		*nd = node{level: freeLevel, next: nilIdx}
		s.freeList = append(s.freeList, i)
		freed++
	}
	s.freeMu.Unlock()
	if freed > 0 {
		s.live.Add(int64(-freed))
		s.gcFreed += int64(freed)
		s.rebuildShards(bound, bits)
	}
	clear(s.cache)
	s.gcCount++
	if l := s.live.Load(); l*2 > s.autoGCAt.Load() {
		s.autoGCAt.Store(l * 2)
	}
	s.growCacheToward(int(s.live.Load()))
	return freed
}

func (s *Shared) markShared(idx int32, bits []uint64) {
	if bits[idx>>6]&(1<<(uint(idx)&63)) != 0 {
		return
	}
	bits[idx>>6] |= 1 << (uint(idx) & 63)
	if idx == 0 {
		return
	}
	nd := s.nodeAt(idx)
	s.markShared(int32(nd.lo>>1), bits)
	s.markShared(int32(nd.hi>>1), bits)
}

// rebuildShards rechains every live node after a sweep (dead nodes
// would otherwise linger in bucket chains). Quiescent, single-threaded.
func (s *Shared) rebuildShards(bound int32, marked []uint64) {
	for i := range s.shards {
		sh := &s.shards[i]
		for j := range sh.buckets {
			sh.buckets[j] = nilIdx
		}
		sh.count = 0
	}
	for i := int32(1); i < bound; i++ {
		if marked[i>>6]&(1<<(uint(i)&63)) == 0 {
			continue
		}
		nd := s.nodeAt(i)
		if nd.level == freeLevel {
			continue
		}
		h := mix(uint32(nd.level), uint32(nd.lo), uint32(nd.hi))
		sh := &s.shards[h&(numShards-1)]
		b := (h >> 8) & uint32(len(sh.buckets)-1)
		nd.next = sh.buckets[b]
		sh.buckets[b] = i
		sh.count++
	}
}

// growCacheToward doubles the shared ITE cache while it is smaller
// than the live node count, capped so the cache cannot dwarf the
// diagrams it serves. Quiescent callers only.
func (s *Shared) growCacheToward(live int) {
	const maxCache = 1 << 23
	n := len(s.cache)
	for n < live && n < maxCache {
		n *= 2
	}
	if n != len(s.cache) {
		s.cache = make([]cacheEntry, n)
		s.cacheMask = uint32(n/2 - 1)
	}
}

// Stats returns the aggregate instrumentation snapshot. Counters of
// still-open workers are not included — close all workers (or call
// only after the build) for exact totals.
func (s *Shared) Stats() Stats {
	s.bumpPeak()
	var buckets int
	var growths int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		buckets += len(sh.buckets)
		growths += sh.growths
		sh.mu.Unlock()
	}
	return Stats{
		Live:               int(s.live.Load()),
		PeakLive:           int(s.peakLive.Load()),
		ArenaNodes:         int(s.nextSlot.Load()),
		UniqueTableBuckets: buckets,
		UniqueTableGrowths: growths,
		UniqueTableHits:    s.agg.uniqueHits.Load(),
		NodesCreated:       s.agg.nodesCreated.Load(),
		ApplyCacheHits:     s.agg.cacheHits.Load(),
		ApplyCacheMisses:   s.agg.cacheMisses.Load(),
		ApplyCacheSize:     len(s.cache),
		GCs:                s.gcCount,
		GCFreed:            s.gcFreed,
		ShardContention:    s.agg.shardWaits.Load(),
		CacheContention:    s.agg.cacheWaits.Load(),
	}
}

// LiveStats is the subset of Stats that is safe to read while a build
// is running: every field is backed by an atomic, so a sampler
// goroutine can poll it concurrently with the workers. Counters lag
// reality by at most one worker flush interval (a refill chunk of
// allocations); structural fields that require quiescence (cache size,
// shard bucket counts, GC totals) are deliberately absent.
type LiveStats struct {
	Live             int
	ArenaNodes       int
	UniqueTableHits  int64
	NodesCreated     int64
	ApplyCacheHits   int64
	ApplyCacheMisses int64
	ShardContention  int64
	CacheContention  int64
}

// LiveStats returns the race-safe running totals. Unlike Stats, it is
// safe to call from any goroutine at any time during a build.
func (s *Shared) LiveStats() LiveStats {
	return LiveStats{
		Live:             int(s.live.Load()),
		ArenaNodes:       int(s.nextSlot.Load()),
		UniqueTableHits:  s.agg.uniqueHits.Load(),
		NodesCreated:     s.agg.nodesCreated.Load(),
		ApplyCacheHits:   s.agg.cacheHits.Load(),
		ApplyCacheMisses: s.agg.cacheMisses.Load(),
		ShardContention:  s.agg.shardWaits.Load(),
		CacheContention:  s.agg.cacheWaits.Load(),
	}
}

// Worker is a per-goroutine handle on a Shared arena. Workers are not
// goroutine-safe themselves — one goroutine per Worker — and must be
// closed so their counters flush into the arena totals. Operations
// panic with the internal node-limit sentinel when the arena budget is
// exceeded; drivers recover it with RecoverLimit.
type Worker struct {
	s        *Shared
	chunk    int32
	chunkEnd int32
	free     []int32
	naryBuf  []Node
	workerTotals
}

// NewWorker returns a fresh worker handle.
func (s *Shared) NewWorker() *Worker { return &Worker{s: s} }

// Close flushes the worker's counters into the arena totals and
// returns its unused slots to the shared free list.
func (w *Worker) Close() {
	s := w.s
	s.freeMu.Lock()
	s.freeList = append(s.freeList, w.free...)
	for i := w.chunk; i < w.chunkEnd; i++ {
		s.freeList = append(s.freeList, i)
	}
	s.freeMu.Unlock()
	w.free, w.chunk, w.chunkEnd = nil, 0, 0
	w.flushTotals()
}

// flushTotals moves the worker's private counters into the arena's
// atomic totals. Called at refill points (so live observers see
// near-current totals during a build) and at Close (for exactness).
func (w *Worker) flushTotals() {
	agg := &w.s.agg
	if w.cacheHits != 0 {
		agg.cacheHits.Add(w.cacheHits)
	}
	if w.cacheMisses != 0 {
		agg.cacheMisses.Add(w.cacheMisses)
	}
	if w.uniqueHits != 0 {
		agg.uniqueHits.Add(w.uniqueHits)
	}
	if w.nodesCreated != 0 {
		agg.nodesCreated.Add(w.nodesCreated)
	}
	if w.shardWaits != 0 {
		agg.shardWaits.Add(w.shardWaits)
	}
	if w.cacheWaits != 0 {
		agg.cacheWaits.Add(w.cacheWaits)
	}
	w.workerTotals = workerTotals{}
}

// RecoverLimit converts the engine's internal node-limit panic into
// ErrNodeLimit; any other panic is re-raised. Use it as a deferred
// call around Worker operations:
//
//	var err error
//	func() {
//		defer bdd.RecoverLimit(&err)
//		r = w.And(fs...)
//	}()
func RecoverLimit(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(errLimitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// allocSlot returns a fresh arena slot: the worker's recycled batch
// first, then its bump chunk, refilling from the shared free list or
// the bump allocator when both run dry.
func (w *Worker) allocSlot() int32 {
	if n := len(w.free); n > 0 {
		idx := w.free[n-1]
		w.free = w.free[:n-1]
		return idx
	}
	if w.chunk < w.chunkEnd {
		idx := w.chunk
		w.chunk++
		return idx
	}
	w.refill()
	return w.allocSlot()
}

func (w *Worker) refill() {
	// Refill is the worker's natural coarse-grained sync point (once
	// per allocation chunk), so piggyback the counter flush here.
	w.flushTotals()
	s := w.s
	s.freeMu.Lock()
	if n := len(s.freeList); n > 0 {
		take := freeBatch
		if take > n {
			take = n
		}
		w.free = append(w.free, s.freeList[n-take:]...)
		s.freeList = s.freeList[:n-take]
		s.freeMu.Unlock()
		return
	}
	s.freeMu.Unlock()
	lo := s.nextSlot.Add(allocChunk) - allocChunk
	s.ensureCapacity(lo + allocChunk)
	// Pre-mark the chunk as free so a quiescent-point sweep skips slots
	// the worker has claimed but not yet used.
	for i := lo; i < lo+allocChunk; i++ {
		s.nodeAt(int32(i)).level = freeLevel
	}
	w.chunk, w.chunkEnd = int32(lo), int32(lo+allocChunk)
}

// mk returns the canonical node (level, lo, hi), creating it if
// needed, under exactly one unique-table shard lock. Canonical form is
// identical to the serial engine's (regular then-edge).
func (w *Worker) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	var out Node
	if hi&1 != 0 {
		lo ^= 1
		hi ^= 1
		out = 1
	}
	s := w.s
	h := mix(uint32(level), uint32(lo), uint32(hi))
	sh := &s.shards[h&(numShards-1)]
	if !sh.mu.TryLock() {
		w.shardWaits++
		sh.mu.Lock()
	}
	b := (h >> 8) & uint32(len(sh.buckets)-1)
	for i := sh.buckets[b]; i != nilIdx; i = s.nodeAt(i).next {
		nd := s.nodeAt(i)
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			sh.mu.Unlock()
			w.uniqueHits++
			return Node(i<<1) | out
		}
	}
	if s.limit > 0 && s.live.Load() >= s.limit {
		sh.mu.Unlock()
		s.limitHit.Store(true)
		panic(errLimitPanic{})
	}
	idx := w.allocSlot()
	nd := s.nodeAt(idx)
	nd.level, nd.lo, nd.hi, nd.next = level, lo, hi, sh.buckets[b]
	*s.refAt(idx) = 0
	sh.buckets[b] = idx
	sh.count++
	if sh.count > int64(len(sh.buckets)) {
		sh.grow(s)
	}
	sh.mu.Unlock()
	w.nodesCreated++
	s.live.Add(1)
	return Node(idx<<1) | out
}

// grow doubles one shard's bucket array, rechaining its nodes. Called
// with the shard lock held.
func (sh *uniqShard) grow(s *Shared) {
	old := sh.buckets
	nb := make([]int32, len(old)*2)
	for i := range nb {
		nb[i] = nilIdx
	}
	for _, head := range old {
		for i := head; i != nilIdx; {
			nd := s.nodeAt(i)
			next := nd.next
			h := mix(uint32(nd.level), uint32(nd.lo), uint32(nd.hi))
			b := (h >> 8) & uint32(len(nb)-1)
			nd.next = nb[b]
			nb[b] = i
			i = next
		}
	}
	sh.buckets = nb
	sh.growths++
}

func (s *Shared) cofactorShared(n Node, level int32) (lo, hi Node) {
	nd := s.nodeAt(int32(n >> 1))
	if nd.level == level {
		c := n & 1
		return nd.lo ^ c, nd.hi ^ c
	}
	return n, n
}

// ite mirrors Manager.ite (complement-edge branch) against the shared
// cache and unique table. The normalizations pick representatives by
// handle value, which differs between engines and runs — but every
// choice computes the same canonical function, which is all the
// equivalence guarantee needs.
func (w *Worker) ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	}
	if g == f {
		g = True
	}
	if h == f {
		h = False
	}
	if g == f^1 {
		g = False
	}
	if h == f^1 {
		h = True
	}
	switch {
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return f ^ 1
	}
	if g == True { // f ∨ h = ITE(h, 1, f)
		if regIdx(f) > regIdx(h) {
			f, h = h, f
		}
	} else if h == False { // f ∧ g = ITE(g, f, 0)
		if regIdx(f) > regIdx(g) {
			f, g = g, f
		}
	} else {
		switch {
		case h == True: // f → g = ITE(¬g, ¬f, 1)
			if regIdx(f) > regIdx(g) {
				f, g = g^1, f^1
			}
		case g == False: // ¬f ∧ h = ITE(¬h, 0, ¬f)
			if regIdx(f) > regIdx(h) {
				f, h = h^1, f^1
			}
		case g == h^1: // f ≡ g = ITE(g, f, ¬f)
			if regIdx(f) > regIdx(g) {
				f, g = g, f
				h = g ^ 1
			}
		}
	}
	var out Node
	if f&1 != 0 {
		f ^= 1
		g, h = h, g
	}
	if g&1 != 0 {
		g ^= 1
		h ^= 1
		out = 1
	}
	s := w.s
	set := (mix(uint32(f), uint32(g), uint32(h)) & s.cacheMask) * 2
	st := &s.stripes[(set>>1)&(numStripes-1)]
	if !st.mu.TryLock() {
		w.cacheWaits++
		st.mu.Lock()
	}
	s0, s1 := &s.cache[set], &s.cache[set+1]
	if s0.op == opITE && s0.f == f && s0.g == g && s0.h == h {
		r := s0.result
		st.mu.Unlock()
		w.cacheHits++
		return r ^ out
	}
	if s1.op == opITE && s1.f == f && s1.g == g && s1.h == h {
		*s0, *s1 = *s1, *s0
		r := s0.result
		st.mu.Unlock()
		w.cacheHits++
		return r ^ out
	}
	st.mu.Unlock()
	w.cacheMisses++
	top := min3(s.nodeAt(int32(f>>1)).level, s.nodeAt(int32(g>>1)).level, s.nodeAt(int32(h>>1)).level)
	f0, f1 := s.cofactorShared(f, top)
	g0, g1 := s.cofactorShared(g, top)
	h0, h1 := s.cofactorShared(h, top)
	lo := w.ite(f0, g0, h0)
	hi := w.ite(f1, g1, h1)
	r := w.mk(top, lo, hi)
	if !st.mu.TryLock() {
		w.cacheWaits++
		st.mu.Lock()
	}
	*s1 = *s0
	*s0 = cacheEntry{f: f, g: g, h: h, result: r, op: opITE}
	st.mu.Unlock()
	return r ^ out
}

// Var returns the function of the variable at the given level. The
// level must be valid (drivers validate once up front).
func (w *Worker) Var(level int) Node {
	if level < 0 || int32(level) >= w.s.numVars {
		panic(fmt.Sprintf("bdd: variable level %d out of range [0,%d)", level, w.s.numVars))
	}
	return w.mk(int32(level), False, True)
}

// Not returns the complement of f (a bit flip; never allocates).
func (w *Worker) Not(f Node) Node { return f ^ 1 }

// ITE returns if-then-else(f, g, h).
func (w *Worker) ITE(f, g, h Node) Node { return w.ite(f, g, h) }

// Xor returns the exclusive-or of f and g.
func (w *Worker) Xor(f, g Node) Node { return w.ite(f, g^1, g) }

// And returns the conjunction of the arguments (True when empty) via
// the same balanced n-ary apply as the serial engine, using the
// worker's private operand scratch.
func (w *Worker) And(fs ...Node) Node { return w.applyNaryShared(fs, naryAnd) }

// Or returns the disjunction of the arguments (False when empty).
func (w *Worker) Or(fs ...Node) Node { return w.applyNaryShared(fs, naryOr) }

// prepNaryShared is Manager.prepNary for the (always complement-edge)
// shared engine.
func prepNaryShared(buf []Node, op int) ([]Node, bool) {
	neutral, dominant := Node(True), Node(False)
	if op == naryOr {
		neutral, dominant = False, True
	}
	k := 0
	for _, f := range buf {
		if f == dominant {
			return buf[:0], false
		}
		if f == neutral {
			continue
		}
		buf[k] = f
		k++
	}
	buf = buf[:k]
	slices.Sort(buf)
	buf = slices.Compact(buf)
	for i := 0; i+1 < len(buf); i++ {
		if buf[i]^buf[i+1] == 1 {
			return buf[:0], false // x ∧ ¬x = 0,  x ∨ ¬x = 1
		}
	}
	return buf, true
}

func (w *Worker) applyNaryShared(fs []Node, op int) Node {
	neutral, dominant := Node(True), Node(False)
	if op == naryOr {
		neutral, dominant = False, True
	}
	buf := w.naryBuf[:0]
	buf = append(buf, fs...)
	var ok bool
	for {
		if buf, ok = prepNaryShared(buf, op); !ok {
			w.naryBuf = buf
			return dominant
		}
		switch len(buf) {
		case 0:
			w.naryBuf = buf
			return neutral
		case 1:
			r := buf[0]
			w.naryBuf = buf
			return r
		}
		k := 0
		for i := 0; i+1 < len(buf); i += 2 {
			var r Node
			if op == naryAnd {
				r = w.ite(buf[i], buf[i+1], False)
			} else {
				r = w.ite(buf[i], True, buf[i+1])
			}
			if r == dominant {
				w.naryBuf = buf[:0]
				return dominant
			}
			buf[k] = r
			k++
		}
		if len(buf)%2 == 1 {
			buf[k] = buf[len(buf)-1]
			k++
		}
		buf = buf[:k]
	}
}
