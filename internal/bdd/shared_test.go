package bdd

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// randomFormula returns a closure building a random formula over nv
// variables from a fixed op script, so it can be replayed on any
// engine. ops: 0=And2 1=Or2 2=Xor 3=Not 4=And3.
type formulaStep struct {
	op      int
	a, b, c int
}

func randomScript(rng *rand.Rand, nv, steps int) []formulaStep {
	sc := make([]formulaStep, steps)
	for i := range sc {
		pool := nv + i // variables plus previous steps
		sc[i] = formulaStep{
			op: rng.Intn(5),
			a:  rng.Intn(pool),
			b:  rng.Intn(pool),
			c:  rng.Intn(pool),
		}
	}
	return sc
}

func runScriptManager(t *testing.T, m *Manager, sc []formulaStep, nv int) Node {
	t.Helper()
	vals := make([]Node, 0, nv+len(sc))
	for i := 0; i < nv; i++ {
		v, err := m.Var(i)
		if err != nil {
			t.Fatalf("Var(%d): %v", i, err)
		}
		vals = append(vals, v)
	}
	for _, st := range sc {
		var r Node
		var err error
		switch st.op {
		case 0:
			r, err = m.And(vals[st.a], vals[st.b])
		case 1:
			r, err = m.Or(vals[st.a], vals[st.b])
		case 2:
			r, err = m.Xor(vals[st.a], vals[st.b])
		case 3:
			r, err = m.Not(vals[st.a])
		default:
			r, err = m.And(vals[st.a], vals[st.b], vals[st.c])
		}
		if err != nil {
			t.Fatalf("script op %d: %v", st.op, err)
		}
		vals = append(vals, r)
	}
	return vals[len(vals)-1]
}

func runScriptWorker(w *Worker, sc []formulaStep, nv int) Node {
	vals := make([]Node, 0, nv+len(sc))
	for i := 0; i < nv; i++ {
		vals = append(vals, w.Var(i))
	}
	for _, st := range sc {
		var r Node
		switch st.op {
		case 0:
			r = w.And(vals[st.a], vals[st.b])
		case 1:
			r = w.Or(vals[st.a], vals[st.b])
		case 2:
			r = w.Xor(vals[st.a], vals[st.b])
		case 3:
			r = w.Not(vals[st.a])
		default:
			r = w.And(vals[st.a], vals[st.b], vals[st.c])
		}
		vals = append(vals, r)
	}
	return vals[len(vals)-1]
}

// TestSharedMatchesManager replays random op scripts on the serial
// engine and on a Shared arena hammered by several concurrent workers
// running the same script. Canonicity requires every worker to end at
// the exact same handle, and the function must agree with the serial
// engine on every assignment.
func TestSharedMatchesManager(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const nv = 8
	for trial := 0; trial < 30; trial++ {
		sc := randomScript(rng, nv, 3+rng.Intn(40))
		m := New(nv)
		want := runScriptManager(t, m, sc, nv)

		s := NewShared(nv, 0)
		const workers = 8
		got := make([]Node, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := s.NewWorker()
				defer w.Close()
				got[wi] = runScriptWorker(w, sc, nv)
			}(wi)
		}
		wg.Wait()
		for wi := 1; wi < workers; wi++ {
			if got[wi] != got[0] {
				t.Fatalf("trial %d: workers disagree on canonical handle: %d vs %d", trial, got[wi], got[0])
			}
		}
		assign := make([]bool, nv)
		for a := 0; a < 1<<nv; a++ {
			for i := range assign {
				assign[i] = a&(1<<i) != 0
			}
			if m.Eval(want, assign) != s.Eval(got[0], assign) {
				t.Fatalf("trial %d: engines disagree at assignment %b", trial, a)
			}
		}
		if ms, ss := m.Size(want), s.Size(got[0]); ms != ss {
			t.Fatalf("trial %d: Size mismatch serial=%d shared=%d", trial, ms, ss)
		}
	}
}

// TestSharedGC verifies quiescent-point collection: dereferenced
// diagrams are reclaimed, referenced ones survive and still evaluate,
// and the unique table stays canonical after the rebuild.
func TestSharedGC(t *testing.T) {
	const nv = 10
	s := NewShared(nv, 0)
	w := s.NewWorker()

	keep := w.Var(0)
	for i := 1; i < nv; i++ {
		keep = w.Xor(keep, w.Var(i))
	}
	s.Ref(keep)

	// Build garbage: a chain of conjunctions, never referenced.
	g := w.Var(0)
	for i := 1; i < nv; i++ {
		g = w.And(g, w.Or(w.Var(i), w.Var((i+3)%nv)))
	}
	liveBefore := s.Live()
	w.Close() // quiesce the only worker
	freed := s.GC()
	if freed <= 0 {
		t.Fatalf("GC freed %d, want > 0 (live before: %d)", freed, liveBefore)
	}
	if got := s.Live(); got != s.Size(keep) {
		t.Fatalf("live %d after GC, want exactly the kept diagram %d", got, s.Size(keep))
	}

	// The kept parity function must still evaluate, and recreating it
	// must hit the surviving nodes (canonical handles equal).
	w2 := s.NewWorker()
	defer w2.Close()
	re := w2.Var(0)
	for i := 1; i < nv; i++ {
		re = w2.Xor(re, w2.Var(i))
	}
	if re != keep {
		t.Fatalf("recreated function got handle %d, want %d", re, keep)
	}
	assign := make([]bool, nv)
	for a := 0; a < 1<<nv; a += 37 {
		par := false
		for i := range assign {
			assign[i] = a&(1<<i) != 0
			par = par != assign[i]
		}
		if s.Eval(keep, assign) != par {
			t.Fatalf("kept diagram corrupted at assignment %b", a)
		}
	}
}

// TestSharedNodeLimit checks that a worker operation overflowing the
// node budget panics with the sentinel RecoverLimit converts to
// ErrNodeLimit, from any of several concurrent workers.
func TestSharedNodeLimit(t *testing.T) {
	const nv = 16
	s := NewShared(nv, 40)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for wi := range errs {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := s.NewWorker()
			defer w.Close()
			defer RecoverLimit(&errs[wi])
			f := w.Var(0)
			for i := 1; i < nv; i++ {
				f = w.Xor(f, w.Var(i))
			}
		}(wi)
	}
	wg.Wait()
	var n int
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, ErrNodeLimit) {
				t.Fatalf("got %v, want ErrNodeLimit", err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no worker hit the 40-node budget building 16-var parity")
	}
	if !s.LimitExceeded() {
		t.Fatal("LimitExceeded() = false after ErrNodeLimit")
	}
}

// TestSharedNaryEdgeCases pins the n-ary normalization rules on the
// worker API against the serial semantics.
func TestSharedNaryEdgeCases(t *testing.T) {
	s := NewShared(4, 0)
	w := s.NewWorker()
	defer w.Close()
	a, b := w.Var(0), w.Var(1)
	if got := w.And(); got != True {
		t.Fatalf("And() = %d, want True", got)
	}
	if got := w.Or(); got != False {
		t.Fatalf("Or() = %d, want False", got)
	}
	if got := w.And(a, w.Not(a)); got != False {
		t.Fatalf("And(a,¬a) = %d, want False", got)
	}
	if got := w.Or(b, w.Not(b)); got != True {
		t.Fatalf("Or(b,¬b) = %d, want True", got)
	}
	if got := w.And(a, a, b, True); got != w.And(a, b) {
		t.Fatalf("duplicate/neutral operands not collapsed")
	}
	if got := w.Or(a, False, b, a); got != w.Or(a, b) {
		t.Fatalf("duplicate/neutral operands not collapsed (Or)")
	}
	if got := w.Xor(a, a); got != False {
		t.Fatalf("Xor(a,a) = %d, want False", got)
	}
}
