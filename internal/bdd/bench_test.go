package bdd

import (
	"fmt"
	"testing"
)

// BenchmarkITEAdder measures ITE throughput on a carry chain: the
// canonical dense-sharing workload.
func BenchmarkITEAdder(b *testing.B) {
	const n = 24
	for b.Loop() {
		m := New(2 * n)
		carry := False
		for i := 0; i < n; i++ {
			x, _ := m.Var(2 * i)
			y, _ := m.Var(2*i + 1)
			xy, err := m.And(x, y)
			if err != nil {
				b.Fatal(err)
			}
			xOrY, _ := m.Or(x, y)
			t, _ := m.And(xOrY, carry)
			carry, _ = m.Or(xy, t)
		}
		if carry == False {
			b.Fatal("carry collapsed")
		}
	}
}

// wideOperands builds k operands over n variables, each a small
// product (and=true) or sum (and=false) of literals, with a
// deterministic LCG choosing variables and polarities — the shape of a
// wide gate fan-in in the compiled G netlists.
func wideOperands(b *testing.B, m *Manager, k int, and bool) []Node {
	b.Helper()
	const n = 28
	seed := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(bound))
	}
	ops := make([]Node, k)
	for i := range ops {
		lits := make([]Node, 3)
		for j := range lits {
			v, err := m.Var(next(n))
			if err != nil {
				b.Fatal(err)
			}
			if next(2) == 1 {
				v, _ = m.Not(v)
			}
			lits[j] = v
		}
		var err error
		if and {
			// Operands for a wide Or: small products.
			ops[i], err = m.And(lits...)
		} else {
			ops[i], err = m.Or(lits...)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return ops
}

// BenchmarkWideFanin compares the n-ary apply against the left fold of
// binary ITEs it replaced in internal/compile, on a 64-operand gate
// fan-in (sum of products for Or, product of sums for And).
func BenchmarkWideFanin(b *testing.B) {
	const (
		n = 28
		k = 64
	)
	bench := func(b *testing.B, and, nary bool) {
		for b.Loop() {
			m := New(n)
			ops := wideOperands(b, m, k, !and)
			var r Node
			var err error
			switch {
			case nary && and:
				r, err = m.And(ops...)
			case nary:
				r, err = m.Or(ops...)
			case and:
				r = True
				for _, f := range ops {
					if r, err = m.ITE(f, r, False); err != nil {
						break
					}
				}
			default:
				r = False
				for _, f := range ops {
					if r, err = m.ITE(f, True, r); err != nil {
						break
					}
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			if m.IsTerminal(r) {
				b.Fatal("fan-in collapsed to a terminal")
			}
		}
	}
	b.Run("and/nary", func(b *testing.B) { bench(b, true, true) })
	b.Run("and/folded-ite", func(b *testing.B) { bench(b, true, false) })
	b.Run("or/nary", func(b *testing.B) { bench(b, false, true) })
	b.Run("or/folded-ite", func(b *testing.B) { bench(b, false, false) })
}

// BenchmarkGC measures mark-sweep cost with a half-garbage arena.
func BenchmarkGC(b *testing.B) {
	const n = 18
	build := func(m *Manager) Node {
		f := False
		for i := 0; i < n; i++ {
			v, _ := m.Var(i)
			f, _ = m.Xor(f, v)
		}
		return f
	}
	for b.Loop() {
		m := New(n)
		keep := m.Ref(build(m))
		for i := 0; i < 4; i++ {
			v, _ := m.Var(i)
			g, _ := m.And(keep, v)
			_ = g // garbage
		}
		m.GC()
		m.Deref(keep)
	}
}

// BenchmarkSatFraction measures the probability-style traversal.
func BenchmarkSatFraction(b *testing.B) {
	const n = 30
	m := New(n)
	f := False
	for i := 0; i < n; i++ {
		v, _ := m.Var(i)
		f, _ = m.Xor(f, v)
	}
	b.ResetTimer()
	for b.Loop() {
		if got := m.SatFraction(f); got != 0.5 {
			b.Fatalf("parity fraction %v", got)
		}
	}
}

// BenchmarkUniqueTableChurn exercises mk with many distinct small
// functions (hash-table stress).
func BenchmarkUniqueTableChurn(b *testing.B) {
	const n = 16
	for b.Loop() {
		m := New(n)
		acc := True
		for i := 0; i+2 < n; i++ {
			x, _ := m.Var(i)
			y, _ := m.Var(i + 1)
			z, _ := m.Var(i + 2)
			t1, _ := m.ITE(x, y, z)
			t2, _ := m.ITE(y, z, x)
			o, err := m.Or(t1, t2)
			if err != nil {
				b.Fatal(err)
			}
			acc, err = m.And(acc, o)
			if err != nil {
				b.Fatal(err)
			}
		}
		_ = fmt.Sprint(acc == False)
	}
}
