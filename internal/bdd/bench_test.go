package bdd

import (
	"fmt"
	"testing"
)

// BenchmarkITEAdder measures ITE throughput on a carry chain: the
// canonical dense-sharing workload.
func BenchmarkITEAdder(b *testing.B) {
	const n = 24
	for b.Loop() {
		m := New(2 * n)
		carry := False
		for i := 0; i < n; i++ {
			x, _ := m.Var(2 * i)
			y, _ := m.Var(2*i + 1)
			xy, err := m.And(x, y)
			if err != nil {
				b.Fatal(err)
			}
			xOrY, _ := m.Or(x, y)
			t, _ := m.And(xOrY, carry)
			carry, _ = m.Or(xy, t)
		}
		if carry == False {
			b.Fatal("carry collapsed")
		}
	}
}

// BenchmarkGC measures mark-sweep cost with a half-garbage arena.
func BenchmarkGC(b *testing.B) {
	const n = 18
	build := func(m *Manager) Node {
		f := False
		for i := 0; i < n; i++ {
			v, _ := m.Var(i)
			f, _ = m.Xor(f, v)
		}
		return f
	}
	for b.Loop() {
		m := New(n)
		keep := m.Ref(build(m))
		for i := 0; i < 4; i++ {
			v, _ := m.Var(i)
			g, _ := m.And(keep, v)
			_ = g // garbage
		}
		m.GC()
		m.Deref(keep)
	}
}

// BenchmarkSatFraction measures the probability-style traversal.
func BenchmarkSatFraction(b *testing.B) {
	const n = 30
	m := New(n)
	f := False
	for i := 0; i < n; i++ {
		v, _ := m.Var(i)
		f, _ = m.Xor(f, v)
	}
	b.ResetTimer()
	for b.Loop() {
		if got := m.SatFraction(f); got != 0.5 {
			b.Fatalf("parity fraction %v", got)
		}
	}
}

// BenchmarkUniqueTableChurn exercises mk with many distinct small
// functions (hash-table stress).
func BenchmarkUniqueTableChurn(b *testing.B) {
	const n = 16
	for b.Loop() {
		m := New(n)
		acc := True
		for i := 0; i+2 < n; i++ {
			x, _ := m.Var(i)
			y, _ := m.Var(i + 1)
			z, _ := m.Var(i + 2)
			t1, _ := m.ITE(x, y, z)
			t2, _ := m.ITE(y, z, x)
			o, err := m.Or(t1, t2)
			if err != nil {
				b.Fatal(err)
			}
			acc, err = m.And(acc, o)
			if err != nil {
				b.Fatal(err)
			}
		}
		_ = fmt.Sprint(acc == False)
	}
}
