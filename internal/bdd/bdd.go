// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) in the style of Brace–Rudell–Bryant and of the CMU BDD
// library the paper builds on: complement edges with a single terminal
// and the canonical "regular then-edge" form, a node arena with an
// embedded-chain unique table, a two-way set-associative ITE operation
// cache, an n-ary apply for wide conjunctions/disjunctions, external
// reference counting, mark-sweep garbage collection with free-list
// reuse, a configurable node limit, and peak-occupancy tracking (the
// paper's "ROBDD peak" column).
//
// # Complement edges
//
// A Node handle packs an arena index and a complement bit: the handle
// idx<<1|1 denotes the pointwise negation of the function stored at
// idx<<1. Only one terminal node is stored (the constant-false
// function); True is its complemented handle, so Not is a single bit
// flip and a function and its negation share every node. Canonical
// form follows CUDD: a stored node's then-edge (Hi) is always regular
// (complement bits are pushed onto the else-edge and the handle), so
// for a fixed order equivalent functions are represented by the same
// handle. The accessors (Lo, Hi, Level, Eval, ...) resolve polarity
// transparently; callers never need to inspect the complement bit.
// WithoutComplementEdges selects a classic two-terminal-style engine
// (used by equivalence tests and ablation benchmarks); its handles
// keep the complement bit only on the True terminal.
//
// Variables are identified by their level in the fixed total order,
// 0 .. NumVars-1; mapping from named problem variables to levels is the
// caller's concern (package order computes such orders). All
// operations keep diagrams canonical: for a fixed order, equivalent
// functions are represented by the same Node.
package bdd

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Node is a handle to a BDD node owned by a Manager: an arena index in
// the high bits and a complement bit in bit 0. Handles are only
// meaningful with the Manager that produced them. The zero Node is the
// False terminal.
type Node int32

// Terminal nodes, shared by every manager. The arena stores a single
// terminal (the constant-false function); True is its complement.
const (
	False Node = 0
	True  Node = 1
)

// ErrNodeLimit is returned when an operation would grow the manager
// past its configured node limit. It reproduces the memory-exhaustion
// failures ("—" entries) of the paper under a portable budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// node is one arena slot. lo is the cofactor handle for the level
// variable at 0, hi at 1; hi is always regular (canonical form). next
// chains the unique-table bucket. A free slot has level == freeLevel
// and lo chaining the free list (as a raw arena index).
type node struct {
	level int32
	lo    Node
	hi    Node
	next  int32
}

const (
	nilIdx    = int32(-1)
	freeLevel = int32(-2)
)

// Manager owns an ROBDD arena for a fixed number of variables.
type Manager struct {
	nodes      []node
	refs       []int32
	buckets    []int32
	numVars    int32
	complement bool // CUDD-style complement edges (default on)
	free       int32
	freeCount  int
	live       int
	peakLive   int
	limit      int
	cache      []cacheEntry // 2-way set-associative: entries 2i, 2i+1 form one set
	cacheMask  uint32       // number of sets - 1
	gcCount    int
	autoGCAt   int
	stamp      []int32 // per-arena-index visitation stamps for traversals
	stampGen   int32
	memoNode   []Node    // per-arena-index result memo (Restrict)
	memoFrac   []float64 // per-arena-index result memo (SatFraction)
	naryBuf    []Node    // operand scratch for the n-ary apply
	limitHit   bool
	// Instrumentation totals, maintained as plain fields because
	// construction is single-threaded by contract; Stats snapshots them.
	cacheHits    int64
	cacheMisses  int64
	uniqueHits   int64
	nodesCreated int64
	tableGrowths int64
	gcFreed      int64
}

type cacheEntry struct {
	f, g, h Node
	result  Node
	op      int32
}

const (
	opNone int32 = 0
	opITE  int32 = 1
)

// Option configures a Manager.
type Option func(*Manager)

// WithNodeLimit bounds the number of simultaneously live stored nodes.
// When an operation would exceed it, the operation fails with
// ErrNodeLimit. A limit of 0 (the default) means unlimited.
func WithNodeLimit(n int) Option {
	return func(m *Manager) { m.limit = n }
}

// WithInitialCapacity pre-sizes the arena.
func WithInitialCapacity(n int) Option {
	return func(m *Manager) {
		if n > len(m.nodes) {
			m.nodes = append(make([]node, 0, n), m.nodes...)
			m.refs = append(make([]int32, 0, n), m.refs...)
		}
	}
}

// WithoutComplementEdges disables complement-edge canonicalization:
// every internal node handle is regular and Not rebuilds the diagram
// recursively, as in a classic two-terminal engine. Results are
// function-identical to the default engine (both are canonical); node
// counts and construction cost differ. Intended for equivalence tests
// and ablation benchmarks.
func WithoutComplementEdges() Option {
	return func(m *Manager) { m.complement = false }
}

// New creates a manager for numVars boolean variables at levels
// 0 .. numVars-1.
func New(numVars int, opts ...Option) *Manager {
	if numVars < 0 {
		panic(fmt.Sprintf("bdd: negative variable count %d", numVars))
	}
	m := &Manager{
		numVars:    int32(numVars),
		complement: true,
		free:       nilIdx,
	}
	// The single terminal occupies arena slot 0. Terminal level is
	// numVars so that every internal level compares below it.
	m.nodes = append(m.nodes, node{level: m.numVars, next: nilIdx})
	m.refs = append(m.refs, 1) // permanently referenced
	m.live = 1
	m.peakLive = 1
	m.resizeBuckets(1 << 10)
	m.resizeCache(1 << 12)
	m.autoGCAt = 1 << 16
	for _, o := range opts {
		o(m)
	}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return int(m.numVars) }

// Live returns the number of live (allocated, not freed) stored nodes,
// including the terminal.
func (m *Manager) Live() int { return m.live }

// PeakLive returns the high-water mark of Live since the manager was
// created or ResetPeakLive was last called: the paper's "peak number
// of ROBDD nodes".
func (m *Manager) PeakLive() int { return m.peakLive }

// ResetPeakLive returns the current peak and restarts peak tracking
// from the current live count. Callers use it to attribute the
// high-water mark to pipeline phases (compile vs convert) instead of
// one number per manager lifetime.
func (m *Manager) ResetPeakLive() int {
	p := m.peakLive
	m.peakLive = m.live
	return p
}

// GCs returns the number of garbage collections performed.
func (m *Manager) GCs() int { return m.gcCount }

// NodeBound returns an exclusive upper bound on the integer value of
// every Node handle this manager has issued (including complemented
// handles). Callers use it to size handle-indexed scratch slices for
// map-free memoization of traversals.
func (m *Manager) NodeBound() int { return 2 * len(m.nodes) }

// Stats is a point-in-time snapshot of the manager's internal
// instrumentation: the ITE operation cache, the unique table, node
// occupancy, and garbage collection. Counting uses plain (non-atomic)
// fields on the construction path, so it is effectively free; Stats
// must be called from the constructing goroutine or after construction
// has finished.
type Stats struct {
	// Live and PeakLive are current and peak live stored-node counts
	// (including the terminal).
	Live     int
	PeakLive int
	// ArenaNodes is the arena length (live + free-listed slots).
	ArenaNodes int
	// UniqueTableBuckets is the current unique-table bucket count;
	// UniqueTableGrowths how many times it doubled.
	UniqueTableBuckets int
	UniqueTableGrowths int64
	// UniqueTableHits counts mk calls answered by an existing node;
	// NodesCreated counts fresh node allocations.
	UniqueTableHits int64
	NodesCreated    int64
	// ApplyCacheHits/Misses count ITE operation-cache lookups. The
	// cache is lossy, so Misses includes evictions.
	ApplyCacheHits   int64
	ApplyCacheMisses int64
	ApplyCacheSize   int
	// GCs counts garbage collections, GCFreed the total nodes freed.
	GCs     int
	GCFreed int64
	// ShardContention and CacheContention count lock acquisitions that
	// found a unique-table shard (resp. an operation-cache stripe)
	// already held by another worker of the concurrent engine. Always
	// zero for the serial engine.
	ShardContention int64
	CacheContention int64
}

// Stats returns the current instrumentation snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Live:               m.live,
		PeakLive:           m.peakLive,
		ArenaNodes:         len(m.nodes),
		UniqueTableBuckets: len(m.buckets),
		UniqueTableGrowths: m.tableGrowths,
		UniqueTableHits:    m.uniqueHits,
		NodesCreated:       m.nodesCreated,
		ApplyCacheHits:     m.cacheHits,
		ApplyCacheMisses:   m.cacheMisses,
		ApplyCacheSize:     len(m.cache),
		GCs:                m.gcCount,
		GCFreed:            m.gcFreed,
	}
}

func (m *Manager) resizeBuckets(n int) {
	m.buckets = make([]int32, n)
	for i := range m.buckets {
		m.buckets[i] = nilIdx
	}
	for i := 1; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if nd.level == freeLevel {
			continue
		}
		b := m.bucketOf(nd.level, nd.lo, nd.hi)
		nd.next = m.buckets[b]
		m.buckets[b] = int32(i)
	}
}

// resizeCache sizes the ITE cache to n entries (n/2 two-way sets).
func (m *Manager) resizeCache(n int) {
	m.cache = make([]cacheEntry, n)
	m.cacheMask = uint32(n/2 - 1)
}

func mix(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca77 ^ c*0xc2b2ae3d
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

func (m *Manager) bucketOf(level int32, lo, hi Node) uint32 {
	return mix(uint32(level), uint32(lo), uint32(hi)) & uint32(len(m.buckets)-1)
}

// mk returns the canonical node (level, lo, hi) over child handles,
// creating it if needed. With complement edges it enforces the
// regular-then-edge form: a complemented hi is pushed onto both
// children and the returned handle. It panics with errLimitPanic when
// the node limit is exceeded; the exported entry points recover that
// into ErrNodeLimit.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	var out Node
	if m.complement && hi&1 != 0 {
		lo ^= 1
		hi ^= 1
		out = 1
	}
	b := m.bucketOf(level, lo, hi)
	for i := m.buckets[b]; i != nilIdx; i = m.nodes[i].next {
		nd := &m.nodes[i]
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			m.uniqueHits++
			return Node(i<<1) | out
		}
	}
	if m.limit > 0 && m.live >= m.limit {
		m.limitHit = true
		panic(errLimitPanic{})
	}
	var idx int32
	if m.free != nilIdx {
		idx = m.free
		m.free = int32(m.nodes[idx].lo)
		m.freeCount--
	} else {
		idx = int32(len(m.nodes))
		m.nodes = append(m.nodes, node{})
		m.refs = append(m.refs, 0)
		if len(m.nodes) > len(m.buckets) {
			m.tableGrowths++
			m.resizeBuckets(len(m.buckets) * 2)
			if len(m.cache) < len(m.buckets) {
				m.resizeCache(len(m.buckets))
			}
			b = m.bucketOf(level, lo, hi)
		}
	}
	m.nodes[idx] = node{level: level, lo: lo, hi: hi, next: m.buckets[b]}
	m.refs[idx] = 0
	m.buckets[b] = idx
	m.nodesCreated++
	m.live++
	if m.live > m.peakLive {
		m.peakLive = m.live
	}
	return Node(idx<<1) | out
}

type errLimitPanic struct{}

// guard converts the internal node-limit panic into ErrNodeLimit.
func (m *Manager) guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(errLimitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// Var returns the function of the single variable at the given level.
func (m *Manager) Var(level int) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.mk(int32(level), False, True)
	}()
	return out, err
}

// NVar returns the negation of the variable at the given level.
func (m *Manager) NVar(level int) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.mk(int32(level), True, False)
	}()
	return out, err
}

// Level returns the variable level of n, or NumVars() for terminals.
func (m *Manager) Level(n Node) int { return int(m.nodes[n>>1].level) }

// Lo returns the cofactor of n with its top variable set to 0,
// resolving the handle's polarity. n must not be a terminal.
func (m *Manager) Lo(n Node) Node { return m.nodes[n>>1].lo ^ (n & 1) }

// Hi returns the cofactor of n with its top variable set to 1,
// resolving the handle's polarity. n must not be a terminal.
func (m *Manager) Hi(n Node) Node { return m.nodes[n>>1].hi ^ (n & 1) }

// IsTerminal reports whether n is False or True.
func (m *Manager) IsTerminal(n Node) bool { return n <= True }

// Ref adds an external reference to n, protecting it (and everything
// reachable from it) across garbage collections. References are held
// on the stored node, so a function and its complement share them. It
// returns n for chaining.
func (m *Manager) Ref(n Node) Node {
	if n > True {
		m.refs[n>>1]++
	}
	return n
}

// Deref removes an external reference added by Ref.
func (m *Manager) Deref(n Node) {
	if n > True {
		if m.refs[n>>1] == 0 {
			panic(fmt.Sprintf("bdd: Deref of unreferenced node %d", n))
		}
		m.refs[n>>1]--
	}
}

func (m *Manager) cofactor(n Node, level int32) (lo, hi Node) {
	nd := &m.nodes[n>>1]
	if nd.level == level {
		c := n & 1
		return nd.lo ^ c, nd.hi ^ c
	}
	return n, n
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// regIdx orders handles by stored node, ignoring polarity — the
// deterministic tie-break used by the ITE argument normalizations.
func regIdx(n Node) Node { return n >> 1 }

// ite computes if-then-else(f, g, h) with the standard
// Brace–Rudell–Bryant normalizations. With complement edges the cache
// key is fully canonical: equivalent argument orders collapse, the
// first argument and the then-argument are regular, and the output
// complement is carried outside the cache.
func (m *Manager) ite(f, g, h Node) Node {
	// Terminal and identity simplifications.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	}
	// Replace arguments equal to f (or its complement) by constants.
	if g == f {
		g = True
	}
	if h == f {
		h = False
	}
	if m.complement {
		if g == f^1 {
			g = False
		}
		if h == f^1 {
			h = True
		}
	}
	switch {
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if m.complement && g == False && h == True {
		return f ^ 1 // O(1) negation
	}
	// Commutative normalizations: pick one representative among the
	// equivalent argument orders (compare by stored node so both
	// polarities of a pair normalize identically).
	if g == True { // f ∨ h = ITE(h, 1, f)
		if regIdx(f) > regIdx(h) {
			f, h = h, f
		}
	} else if h == False { // f ∧ g = ITE(g, f, 0)
		if regIdx(f) > regIdx(g) {
			f, g = g, f
		}
	} else if m.complement {
		switch {
		case h == True: // f → g = ITE(¬g, ¬f, 1)
			if regIdx(f) > regIdx(g) {
				f, g = g^1, f^1
			}
		case g == False: // ¬f ∧ h = ITE(¬h, 0, ¬f)
			if regIdx(f) > regIdx(h) {
				f, h = h^1, f^1
			}
		case g == h^1: // f ≡ g = ITE(g, f, ¬f)
			if regIdx(f) > regIdx(g) {
				f, g = g, f
				h = g ^ 1
			}
		}
	}
	var out Node
	if m.complement {
		// Canonical polarity: regular first argument, regular
		// then-argument; the output complement rides on the result.
		if f&1 != 0 {
			f ^= 1
			g, h = h, g
		}
		if g&1 != 0 {
			g ^= 1
			h ^= 1
			out = 1
		}
	}
	set := (mix(uint32(f), uint32(g), uint32(h)) & m.cacheMask) * 2
	s0, s1 := &m.cache[set], &m.cache[set+1]
	if s0.op == opITE && s0.f == f && s0.g == g && s0.h == h {
		m.cacheHits++
		return s0.result ^ out
	}
	if s1.op == opITE && s1.f == f && s1.g == g && s1.h == h {
		m.cacheHits++
		// Promote the hit to the primary way.
		*s0, *s1 = *s1, *s0
		return s0.result ^ out
	}
	m.cacheMisses++
	top := min3(m.nodes[f>>1].level, m.nodes[g>>1].level, m.nodes[h>>1].level)
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	lo := m.ite(f0, g0, h0)
	hi := m.ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	// Insert into the primary way, demoting its previous occupant.
	*s1 = *s0
	*s0 = cacheEntry{f: f, g: g, h: h, result: r, op: opITE}
	return r ^ out
}

// ITE returns if-then-else(f, g, h) = (f∧g) ∨ (¬f∧h).
func (m *Manager) ITE(f, g, h Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.ite(f, g, h)
	}()
	return out, err
}

// Not returns the complement of f. With complement edges this is a
// single bit flip; without them the diagram is rebuilt via ITE.
func (m *Manager) Not(f Node) (Node, error) {
	if m.complement {
		return f ^ 1, nil
	}
	return m.ITE(f, False, True)
}

const (
	naryAnd = iota
	naryOr
)

// prepNary normalizes an operand list for the n-ary apply in place:
// dominant and neutral terminals are resolved, duplicates collapse,
// and (with complement edges) a complementary pair short-circuits the
// whole operation. It returns the compacted list and ok=false when the
// result is already the dominant terminal.
func (m *Manager) prepNary(buf []Node, op int) ([]Node, bool) {
	neutral, dominant := Node(True), Node(False)
	if op == naryOr {
		neutral, dominant = False, True
	}
	k := 0
	for _, f := range buf {
		if f == dominant {
			return buf[:0], false
		}
		if f == neutral {
			continue
		}
		buf[k] = f
		k++
	}
	buf = buf[:k]
	slices.Sort(buf)
	buf = slices.Compact(buf)
	if m.complement {
		for i := 0; i+1 < len(buf); i++ {
			// Sorted handles place a function next to its complement.
			if buf[i]^buf[i+1] == 1 {
				return buf[:0], false // x ∧ ¬x = 0,  x ∨ ¬x = 1
			}
		}
	}
	return buf, true
}

// applyNary conjoins (or disjoins) the operands by balanced pairwise
// reduction through the ITE cache, renormalizing between rounds and
// terminating early as soon as the dominant terminal appears. Compared
// with a left fold this keeps intermediate results shallow (log-depth)
// and lets absorbed or duplicate partial products collapse between
// rounds — the n-ary apply used for wide gate fan-ins.
func (m *Manager) applyNary(fs []Node, op int) Node {
	neutral, dominant := Node(True), Node(False)
	if op == naryOr {
		neutral, dominant = False, True
	}
	buf := m.naryBuf[:0]
	buf = append(buf, fs...)
	var ok bool
	for {
		if buf, ok = m.prepNary(buf, op); !ok {
			m.naryBuf = buf
			return dominant
		}
		switch len(buf) {
		case 0:
			m.naryBuf = buf
			return neutral
		case 1:
			r := buf[0]
			m.naryBuf = buf
			return r
		}
		k := 0
		for i := 0; i+1 < len(buf); i += 2 {
			var r Node
			if op == naryAnd {
				r = m.ite(buf[i], buf[i+1], False)
			} else {
				r = m.ite(buf[i], True, buf[i+1])
			}
			if r == dominant {
				m.naryBuf = buf[:0]
				return dominant
			}
			buf[k] = r
			k++
		}
		if len(buf)%2 == 1 {
			buf[k] = buf[len(buf)-1]
			k++
		}
		buf = buf[:k]
	}
}

// And returns the conjunction of the arguments (True when empty) via
// the n-ary apply.
func (m *Manager) And(fs ...Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.applyNary(fs, naryAnd)
	}()
	if err != nil {
		return False, err
	}
	return out, nil
}

// Or returns the disjunction of the arguments (False when empty) via
// the n-ary apply.
func (m *Manager) Or(fs ...Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.applyNary(fs, naryOr)
	}()
	if err != nil {
		return False, err
	}
	return out, nil
}

// Xor returns the exclusive-or of f and g.
func (m *Manager) Xor(f, g Node) (Node, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// Implies returns f → g.
func (m *Manager) Implies(f, g Node) (Node, error) { return m.ITE(f, g, True) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) (Node, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, g, ng)
}

// Restrict returns f with the variable at the given level fixed to val.
func (m *Manager) Restrict(f Node, level int, val bool) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		// Arena-indexed memo over the nodes that exist on entry; the
		// recursion only descends into those, so nodes mk creates along
		// the way never index the scratch slices.
		gen := m.nextStamp()
		if len(m.memoNode) < len(m.stamp) {
			m.memoNode = make([]Node, len(m.stamp))
		}
		out = m.restrict(f, int32(level), val, gen)
	}()
	return out, err
}

// restrict memoizes per stored node and re-applies the handle's
// polarity on the way out: restrict(¬f) = ¬restrict(f).
func (m *Manager) restrict(f Node, level int32, val bool, gen int32) Node {
	nd := &m.nodes[f>>1]
	if nd.level > level {
		return f
	}
	c := f & 1
	if nd.level == level {
		if val {
			return nd.hi ^ c
		}
		return nd.lo ^ c
	}
	idx := f >> 1
	if m.stamp[idx] == gen {
		return m.memoNode[idx] ^ c
	}
	r := m.mk(nd.level, m.restrict(nd.lo, level, val, gen), m.restrict(nd.hi, level, val, gen))
	m.stamp[idx] = gen
	m.memoNode[idx] = r
	return r ^ c
}

// Exists existentially quantifies the variables at the given levels
// out of f.
func (m *Manager) Exists(f Node, levels ...int) (Node, error) {
	out := f
	for _, lv := range levels {
		lo, err := m.Restrict(out, lv, false)
		if err != nil {
			return False, err
		}
		hi, err := m.Restrict(out, lv, true)
		if err != nil {
			return False, err
		}
		out, err = m.Or(lo, hi)
		if err != nil {
			return False, err
		}
	}
	return out, nil
}

// Eval evaluates f under the assignment (assign[level] is the value of
// the variable at that level; missing trailing levels read as false).
func (m *Manager) Eval(f Node, assign []bool) bool {
	for !m.IsTerminal(f) {
		c := f & 1
		nd := &m.nodes[f>>1]
		if int(nd.level) < len(assign) && assign[nd.level] {
			f = nd.hi ^ c
		} else {
			f = nd.lo ^ c
		}
	}
	return f == True
}

func (m *Manager) nextStamp() int32 {
	if len(m.stamp) < len(m.nodes) {
		m.stamp = make([]int32, len(m.nodes))
		m.stampGen = 0
	}
	m.stampGen++
	return m.stampGen
}

// Size returns the number of stored nodes in the diagram rooted at f,
// including the terminal when it is reached. A function and its
// complement share all nodes, so Size(f) == Size(¬f).
func (m *Manager) Size(f Node) int {
	gen := m.nextStamp()
	return m.sizeRec(f>>1, gen)
}

// SizeShared returns the number of distinct stored nodes reachable
// from any of the given roots (diagram sharing counted once).
func (m *Manager) SizeShared(roots []Node) int {
	gen := m.nextStamp()
	total := 0
	for _, r := range roots {
		total += m.sizeRec(r>>1, gen)
	}
	return total
}

func (m *Manager) sizeRec(idx Node, gen int32) int {
	if m.stamp[idx] == gen {
		return 0
	}
	m.stamp[idx] = gen
	if idx == 0 {
		return 1
	}
	nd := &m.nodes[idx]
	return 1 + m.sizeRec(nd.lo>>1, gen) + m.sizeRec(nd.hi>>1, gen)
}

// Support returns the sorted levels of the variables f depends on.
func (m *Manager) Support(f Node) []int {
	gen := m.nextStamp()
	seen := make([]bool, m.numVars)
	m.supportRec(f>>1, gen, seen)
	out := make([]int, 0, len(seen))
	for lv, s := range seen {
		if s {
			out = append(out, lv)
		}
	}
	return out
}

func (m *Manager) supportRec(idx Node, gen int32, seen []bool) {
	if idx == 0 || m.stamp[idx] == gen {
		return
	}
	m.stamp[idx] = gen
	nd := &m.nodes[idx]
	seen[nd.level] = true
	m.supportRec(nd.lo>>1, gen, seen)
	m.supportRec(nd.hi>>1, gen, seen)
}

// SatFraction returns the fraction of the 2^NumVars assignments that
// satisfy f. It is exact up to float64 rounding.
func (m *Manager) SatFraction(f Node) float64 {
	gen := m.nextStamp()
	if len(m.memoFrac) < len(m.stamp) {
		m.memoFrac = make([]float64, len(m.stamp))
	}
	return m.satFrac(f, gen)
}

// satFrac memoizes the density of each stored node and resolves the
// handle's polarity on the way out: density(¬f) = 1 − density(f).
func (m *Manager) satFrac(f Node, gen int32) float64 {
	idx := f >> 1
	var v float64
	switch {
	case idx == 0:
		v = 0 // stored terminal is constant false
	case m.stamp[idx] == gen:
		v = m.memoFrac[idx]
	default:
		nd := &m.nodes[idx]
		v = 0.5*m.satFrac(nd.lo, gen) + 0.5*m.satFrac(nd.hi, gen)
		m.stamp[idx] = gen
		m.memoFrac[idx] = v
	}
	if f&1 != 0 {
		return 1 - v
	}
	return v
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(f Node) float64 {
	return m.SatFraction(f) * math.Pow(2, float64(m.numVars))
}

// GC reclaims every node not reachable from an externally referenced
// node. It returns the number of nodes freed. Operation caches are
// cleared. GC is also run automatically when the arena grows large;
// nodes held only by in-flight operations are never collected because
// operations do not trigger GC internally.
func (m *Manager) GC() int {
	gen := m.nextStamp()
	// Mark phase: roots are nodes with a positive external refcount.
	for i := 1; i < len(m.nodes); i++ {
		if m.refs[i] > 0 && m.nodes[i].level != freeLevel {
			m.markRec(int32(i), gen)
		}
	}
	m.stamp[0] = gen
	// Sweep phase.
	freed := 0
	for i := 1; i < len(m.nodes); i++ {
		if m.nodes[i].level == freeLevel || m.stamp[i] == gen {
			continue
		}
		m.nodes[i] = node{level: freeLevel, lo: Node(m.free), next: nilIdx}
		m.free = int32(i)
		m.freeCount++
		freed++
	}
	if freed > 0 {
		m.live -= freed
		m.gcFreed += int64(freed)
		m.resizeBuckets(len(m.buckets))
	}
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}
	m.gcCount++
	return freed
}

func (m *Manager) markRec(idx int32, gen int32) {
	if m.stamp[idx] == gen {
		return
	}
	m.stamp[idx] = gen
	if idx == 0 {
		return
	}
	nd := &m.nodes[idx]
	m.markRec(int32(nd.lo>>1), gen)
	m.markRec(int32(nd.hi>>1), gen)
}

// MaybeGC runs GC if the arena has grown substantially since the last
// collection. It is intended to be called at safe points (between
// top-level operations, e.g. after compiling each gate).
func (m *Manager) MaybeGC() int {
	if m.live < m.autoGCAt {
		return 0
	}
	freed := m.GC()
	// Back off: grow the threshold so GC amortizes, but collect again
	// soon if most of the arena stayed live.
	if m.live*2 > m.autoGCAt {
		m.autoGCAt = m.live * 2
	}
	return freed
}

// LimitExceeded reports whether any operation has failed with
// ErrNodeLimit since the manager was created.
func (m *Manager) LimitExceeded() bool { return m.limitHit }
