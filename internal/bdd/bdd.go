// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) in the style of Bryant (1986) and of the CMU BDD library the
// paper builds on: a node arena with an embedded-chain unique table,
// a lossy ITE operation cache, external reference counting, mark-sweep
// garbage collection with free-list reuse, a configurable node limit,
// and peak-occupancy tracking (the paper's "ROBDD peak" column).
//
// Variables are identified by their level in the fixed total order,
// 0 .. NumVars-1; mapping from named problem variables to levels is the
// caller's concern (package order computes such orders). Nodes are
// referred to by opaque Node handles; the two terminals are False and
// True. All operations keep diagrams canonical: for a fixed order,
// equivalent functions are represented by the same Node.
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Node is a handle to a BDD node owned by a Manager. Handles are only
// meaningful with the Manager that produced them. The zero Node is the
// False terminal.
type Node int32

// Terminal nodes, shared by every manager.
const (
	False Node = 0
	True  Node = 1
)

// ErrNodeLimit is returned when an operation would grow the manager
// past its configured node limit. It reproduces the memory-exhaustion
// failures ("—" entries) of the paper under a portable budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// node is one arena slot. lo is the cofactor for the level variable at
// 0, hi at 1. next chains the unique-table bucket. A free slot has
// level == freeLevel and lo chaining the free list.
type node struct {
	level int32
	lo    Node
	hi    Node
	next  int32
}

const (
	nilIdx    = int32(-1)
	freeLevel = int32(-2)
)

// Manager owns an ROBDD arena for a fixed number of variables.
type Manager struct {
	nodes     []node
	refs      []int32
	buckets   []int32
	numVars   int32
	free      int32 // head of free list, nilIdx if empty
	freeCount int
	live      int
	peakLive  int
	limit     int
	cache     []cacheEntry
	cacheMask uint32
	gcCount   int
	autoGCAt  int
	stamp     []int32 // visitation stamps for traversals
	stampGen  int32
	limitHit  bool
	// Instrumentation totals, maintained as plain fields because
	// construction is single-threaded by contract; Stats snapshots them.
	cacheHits    int64
	cacheMisses  int64
	uniqueHits   int64
	nodesCreated int64
	tableGrowths int64
	gcFreed      int64
}

type cacheEntry struct {
	f, g, h Node
	result  Node
	op      int32 // opITE or negative sentinel when empty
}

const (
	opNone int32 = 0
	opITE  int32 = 1
)

// Option configures a Manager.
type Option func(*Manager)

// WithNodeLimit bounds the number of simultaneously live nodes. When
// an operation would exceed it, the operation fails with ErrNodeLimit.
// A limit of 0 (the default) means unlimited.
func WithNodeLimit(n int) Option {
	return func(m *Manager) { m.limit = n }
}

// WithInitialCapacity pre-sizes the arena.
func WithInitialCapacity(n int) Option {
	return func(m *Manager) {
		if n > len(m.nodes) {
			m.nodes = append(make([]node, 0, n), m.nodes...)
			m.refs = append(make([]int32, 0, n), m.refs...)
		}
	}
}

// New creates a manager for numVars boolean variables at levels
// 0 .. numVars-1.
func New(numVars int, opts ...Option) *Manager {
	if numVars < 0 {
		panic(fmt.Sprintf("bdd: negative variable count %d", numVars))
	}
	m := &Manager{
		numVars: int32(numVars),
		free:    nilIdx,
	}
	// Terminal slots 0 and 1. Terminal level is numVars so that every
	// internal level compares below it.
	m.nodes = append(m.nodes, node{level: m.numVars, next: nilIdx}, node{level: m.numVars, next: nilIdx})
	m.refs = append(m.refs, 1, 1) // terminals are permanently referenced
	m.live = 2
	m.peakLive = 2
	m.resizeBuckets(1 << 10)
	m.resizeCache(1 << 12)
	m.autoGCAt = 1 << 16
	for _, o := range opts {
		o(m)
	}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return int(m.numVars) }

// Live returns the number of live (allocated, not freed) nodes,
// including the two terminals.
func (m *Manager) Live() int { return m.live }

// PeakLive returns the high-water mark of Live over the manager's
// lifetime: the paper's "peak number of ROBDD nodes".
func (m *Manager) PeakLive() int { return m.peakLive }

// GCs returns the number of garbage collections performed.
func (m *Manager) GCs() int { return m.gcCount }

// Stats is a point-in-time snapshot of the manager's internal
// instrumentation: the ITE operation cache, the unique table, node
// occupancy, and garbage collection. Counting uses plain (non-atomic)
// fields on the construction path, so it is effectively free; Stats
// must be called from the constructing goroutine or after construction
// has finished.
type Stats struct {
	// Live and PeakLive are current and peak live node counts
	// (including the two terminals).
	Live     int
	PeakLive int
	// ArenaNodes is the arena length (live + free-listed slots).
	ArenaNodes int
	// UniqueTableBuckets is the current unique-table bucket count;
	// UniqueTableGrowths how many times it doubled.
	UniqueTableBuckets int
	UniqueTableGrowths int64
	// UniqueTableHits counts mk calls answered by an existing node;
	// NodesCreated counts fresh node allocations.
	UniqueTableHits int64
	NodesCreated    int64
	// ApplyCacheHits/Misses count ITE operation-cache lookups. The
	// cache is lossy, so Misses includes evictions.
	ApplyCacheHits   int64
	ApplyCacheMisses int64
	ApplyCacheSize   int
	// GCs counts garbage collections, GCFreed the total nodes freed.
	GCs     int
	GCFreed int64
}

// Stats returns the current instrumentation snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Live:               m.live,
		PeakLive:           m.peakLive,
		ArenaNodes:         len(m.nodes),
		UniqueTableBuckets: len(m.buckets),
		UniqueTableGrowths: m.tableGrowths,
		UniqueTableHits:    m.uniqueHits,
		NodesCreated:       m.nodesCreated,
		ApplyCacheHits:     m.cacheHits,
		ApplyCacheMisses:   m.cacheMisses,
		ApplyCacheSize:     len(m.cache),
		GCs:                m.gcCount,
		GCFreed:            m.gcFreed,
	}
}

func (m *Manager) resizeBuckets(n int) {
	m.buckets = make([]int32, n)
	for i := range m.buckets {
		m.buckets[i] = nilIdx
	}
	for i := range m.nodes {
		nd := &m.nodes[i]
		if nd.level == freeLevel || nd.level == m.numVars {
			continue
		}
		b := m.bucketOf(nd.level, nd.lo, nd.hi)
		nd.next = m.buckets[b]
		m.buckets[b] = int32(i)
	}
}

func (m *Manager) resizeCache(n int) {
	m.cache = make([]cacheEntry, n)
	m.cacheMask = uint32(n - 1)
}

func mix(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca77 ^ c*0xc2b2ae3d
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

func (m *Manager) bucketOf(level int32, lo, hi Node) uint32 {
	return mix(uint32(level), uint32(lo), uint32(hi)) & uint32(len(m.buckets)-1)
}

// mk returns the canonical node (level, lo, hi), creating it if needed.
// It panics with errLimitPanic when the node limit is exceeded; the
// exported entry points recover that into ErrNodeLimit.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	b := m.bucketOf(level, lo, hi)
	for i := m.buckets[b]; i != nilIdx; i = m.nodes[i].next {
		nd := &m.nodes[i]
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			m.uniqueHits++
			return Node(i)
		}
	}
	if m.limit > 0 && m.live >= m.limit {
		m.limitHit = true
		panic(errLimitPanic{})
	}
	var idx int32
	if m.free != nilIdx {
		idx = m.free
		m.free = int32(m.nodes[idx].lo)
		m.freeCount--
	} else {
		idx = int32(len(m.nodes))
		m.nodes = append(m.nodes, node{})
		m.refs = append(m.refs, 0)
		if len(m.nodes) > 2*len(m.buckets) {
			m.tableGrowths++
			m.resizeBuckets(len(m.buckets) * 2)
			if len(m.cache) < len(m.buckets) {
				m.resizeCache(len(m.buckets))
			}
			b = m.bucketOf(level, lo, hi)
		}
	}
	m.nodes[idx] = node{level: level, lo: lo, hi: hi, next: m.buckets[b]}
	m.refs[idx] = 0
	m.buckets[b] = idx
	m.nodesCreated++
	m.live++
	if m.live > m.peakLive {
		m.peakLive = m.live
	}
	return Node(idx)
}

type errLimitPanic struct{}

// guard converts the internal node-limit panic into ErrNodeLimit.
func (m *Manager) guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(errLimitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// Var returns the function of the single variable at the given level.
func (m *Manager) Var(level int) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.mk(int32(level), False, True)
	}()
	return out, err
}

// NVar returns the negation of the variable at the given level.
func (m *Manager) NVar(level int) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.mk(int32(level), True, False)
	}()
	return out, err
}

// Level returns the variable level of n, or NumVars() for terminals.
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// Lo returns the cofactor of n with its top variable set to 0.
// n must not be a terminal.
func (m *Manager) Lo(n Node) Node { return m.nodes[n].lo }

// Hi returns the cofactor of n with its top variable set to 1.
// n must not be a terminal.
func (m *Manager) Hi(n Node) Node { return m.nodes[n].hi }

// IsTerminal reports whether n is False or True.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Ref adds an external reference to n, protecting it (and everything
// reachable from it) across garbage collections. It returns n for
// chaining.
func (m *Manager) Ref(n Node) Node {
	if n > True {
		m.refs[n]++
	}
	return n
}

// Deref removes an external reference added by Ref.
func (m *Manager) Deref(n Node) {
	if n > True {
		if m.refs[n] == 0 {
			panic(fmt.Sprintf("bdd: Deref of unreferenced node %d", n))
		}
		m.refs[n]--
	}
}

func (m *Manager) cofactor(n Node, level int32) (lo, hi Node) {
	nd := &m.nodes[n]
	if nd.level == level {
		return nd.lo, nd.hi
	}
	return n, n
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// ite computes if-then-else(f, g, h) recursively.
func (m *Manager) ite(f, g, h Node) Node {
	// Terminal and identity simplifications.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	// Normalize ITE(f, g, f) = ITE(f, g, 0) and ITE(f, f, h) = ITE(f, 1, h)
	// to improve cache hit rates.
	if h == f {
		h = False
	}
	if g == f {
		g = True
	}
	// Commutative normalizations: AND and OR arguments sorted.
	if h == False && f > g { // f∧g
		f, g = g, f
	}
	if g == True && f > h { // f∨h
		f, h = h, f
	}
	slot := &m.cache[mix(uint32(f), uint32(g), uint32(h))&m.cacheMask]
	if slot.op == opITE && slot.f == f && slot.g == g && slot.h == h {
		m.cacheHits++
		return slot.result
	}
	m.cacheMisses++
	top := min3(m.nodes[f].level, m.nodes[g].level, m.nodes[h].level)
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	lo := m.ite(f0, g0, h0)
	hi := m.ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	*slot = cacheEntry{f: f, g: g, h: h, result: r, op: opITE}
	return r
}

// ITE returns if-then-else(f, g, h) = (f∧g) ∨ (¬f∧h).
func (m *Manager) ITE(f, g, h Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.ite(f, g, h)
	}()
	return out, err
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) (Node, error) { return m.ITE(f, False, True) }

// And returns the conjunction of the arguments (True when empty).
func (m *Manager) And(fs ...Node) (Node, error) {
	out := True
	for _, f := range fs {
		r, err := m.ITE(out, f, False)
		if err != nil {
			return False, err
		}
		out = r
	}
	return out, nil
}

// Or returns the disjunction of the arguments (False when empty).
func (m *Manager) Or(fs ...Node) (Node, error) {
	out := False
	for _, f := range fs {
		r, err := m.ITE(out, True, f)
		if err != nil {
			return False, err
		}
		out = r
	}
	return out, nil
}

// Xor returns the exclusive-or of f and g.
func (m *Manager) Xor(f, g Node) (Node, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// Implies returns f → g.
func (m *Manager) Implies(f, g Node) (Node, error) { return m.ITE(f, g, True) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) (Node, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, g, ng)
}

// Restrict returns f with the variable at the given level fixed to val.
func (m *Manager) Restrict(f Node, level int, val bool) (Node, error) {
	if level < 0 || int32(level) >= m.numVars {
		return False, fmt.Errorf("bdd: variable level %d out of range [0,%d)", level, m.numVars)
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		memo := map[Node]Node{}
		out = m.restrict(f, int32(level), val, memo)
	}()
	return out, err
}

func (m *Manager) restrict(f Node, level int32, val bool, memo map[Node]Node) Node {
	nd := &m.nodes[f]
	if nd.level > level {
		return f
	}
	if nd.level == level {
		if val {
			return nd.hi
		}
		return nd.lo
	}
	if r, ok := memo[f]; ok {
		return r
	}
	r := m.mk(nd.level, m.restrict(nd.lo, level, val, memo), m.restrict(nd.hi, level, val, memo))
	memo[f] = r
	return r
}

// Exists existentially quantifies the variables at the given levels
// out of f.
func (m *Manager) Exists(f Node, levels ...int) (Node, error) {
	out := f
	for _, lv := range levels {
		lo, err := m.Restrict(out, lv, false)
		if err != nil {
			return False, err
		}
		hi, err := m.Restrict(out, lv, true)
		if err != nil {
			return False, err
		}
		out, err = m.Or(lo, hi)
		if err != nil {
			return False, err
		}
	}
	return out, nil
}

// Eval evaluates f under the assignment (assign[level] is the value of
// the variable at that level; missing trailing levels read as false).
func (m *Manager) Eval(f Node, assign []bool) bool {
	for !m.IsTerminal(f) {
		nd := &m.nodes[f]
		if int(nd.level) < len(assign) && assign[nd.level] {
			f = nd.hi
		} else {
			f = nd.lo
		}
	}
	return f == True
}

func (m *Manager) nextStamp() int32 {
	if len(m.stamp) < len(m.nodes) {
		m.stamp = make([]int32, len(m.nodes))
		m.stampGen = 0
	}
	m.stampGen++
	return m.stampGen
}

// Size returns the number of nodes in the diagram rooted at f,
// including the terminals it reaches.
func (m *Manager) Size(f Node) int {
	gen := m.nextStamp()
	return m.sizeRec(f, gen)
}

// SizeShared returns the number of distinct nodes reachable from any
// of the given roots (diagram sharing counted once).
func (m *Manager) SizeShared(roots []Node) int {
	gen := m.nextStamp()
	total := 0
	for _, r := range roots {
		total += m.sizeRec(r, gen)
	}
	return total
}

func (m *Manager) sizeRec(f Node, gen int32) int {
	if m.stamp[f] == gen {
		return 0
	}
	m.stamp[f] = gen
	if m.IsTerminal(f) {
		return 1
	}
	nd := &m.nodes[f]
	return 1 + m.sizeRec(nd.lo, gen) + m.sizeRec(nd.hi, gen)
}

// Support returns the sorted levels of the variables f depends on.
func (m *Manager) Support(f Node) []int {
	gen := m.nextStamp()
	seen := make(map[int]bool)
	m.supportRec(f, gen, seen)
	out := make([]int, 0, len(seen))
	for lv := int32(0); lv < m.numVars; lv++ {
		if seen[int(lv)] {
			out = append(out, int(lv))
		}
	}
	return out
}

func (m *Manager) supportRec(f Node, gen int32, seen map[int]bool) {
	if m.IsTerminal(f) || m.stamp[f] == gen {
		return
	}
	m.stamp[f] = gen
	nd := &m.nodes[f]
	seen[int(nd.level)] = true
	m.supportRec(nd.lo, gen, seen)
	m.supportRec(nd.hi, gen, seen)
}

// SatFraction returns the fraction of the 2^NumVars assignments that
// satisfy f. It is exact up to float64 rounding.
func (m *Manager) SatFraction(f Node) float64 {
	memo := make(map[Node]float64)
	return m.satFrac(f, memo)
}

func (m *Manager) satFrac(f Node, memo map[Node]float64) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if v, ok := memo[f]; ok {
		return v
	}
	nd := &m.nodes[f]
	v := 0.5*m.satFrac(nd.lo, memo) + 0.5*m.satFrac(nd.hi, memo)
	memo[f] = v
	return v
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(f Node) float64 {
	return m.SatFraction(f) * math.Pow(2, float64(m.numVars))
}

// GC reclaims every node not reachable from an externally referenced
// node. It returns the number of nodes freed. Operation caches are
// cleared. GC is also run automatically when the arena grows large;
// nodes held only by in-flight operations are never collected because
// operations do not trigger GC internally.
func (m *Manager) GC() int {
	gen := m.nextStamp()
	// Mark phase: roots are nodes with a positive external refcount.
	for i := 2; i < len(m.nodes); i++ {
		if m.refs[i] > 0 && m.nodes[i].level != freeLevel {
			m.markRec(Node(i), gen)
		}
	}
	m.stamp[False] = gen
	m.stamp[True] = gen
	// Sweep phase.
	freed := 0
	for i := 2; i < len(m.nodes); i++ {
		if m.nodes[i].level == freeLevel || m.stamp[i] == gen {
			continue
		}
		m.nodes[i] = node{level: freeLevel, lo: Node(m.free), next: nilIdx}
		m.free = int32(i)
		m.freeCount++
		freed++
	}
	if freed > 0 {
		m.live -= freed
		m.gcFreed += int64(freed)
		m.resizeBuckets(len(m.buckets))
	}
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}
	m.gcCount++
	return freed
}

func (m *Manager) markRec(f Node, gen int32) {
	if m.stamp[f] == gen {
		return
	}
	m.stamp[f] = gen
	if m.IsTerminal(f) {
		return
	}
	nd := &m.nodes[f]
	m.markRec(nd.lo, gen)
	m.markRec(nd.hi, gen)
}

// MaybeGC runs GC if the arena has grown substantially since the last
// collection. It is intended to be called at safe points (between
// top-level operations, e.g. after compiling each gate).
func (m *Manager) MaybeGC() int {
	if m.live < m.autoGCAt {
		return 0
	}
	freed := m.GC()
	// Back off: grow the threshold so GC amortizes, but collect again
	// soon if most of the arena stayed live.
	if m.live*2 > m.autoGCAt {
		m.autoGCAt = m.live * 2
	}
	return freed
}

// LimitExceeded reports whether any operation has failed with
// ErrNodeLimit since the manager was created.
func (m *Manager) LimitExceeded() bool { return m.limitHit }
