package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Restrict agrees with semantic cofactoring on random
// formulas — f|x=v evaluated anywhere equals f evaluated with x := v.
func TestQuickRestrictSemantics(t *testing.T) {
	const nvars = 5
	f := func(seed int64, lvRaw uint8, val bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		lv := int(lvRaw) % nvars
		r, err := m.Restrict(root, lv, val)
		if err != nil {
			return false
		}
		// The restricted function must not depend on lv.
		for _, s := range m.Support(r) {
			if s == lv {
				return false
			}
		}
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			forced := make([]bool, nvars)
			copy(forced, assign)
			forced[lv] = val
			if m.Eval(r, assign) != eval(forced) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ∃x.f is the disjunction of the two cofactors, and is
// implied by f.
func TestQuickExistsSemantics(t *testing.T) {
	const nvars = 5
	f := func(seed int64, lvRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		lv := int(lvRaw) % nvars
		ex, err := m.Exists(root, lv)
		if err != nil {
			return false
		}
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			a0 := make([]bool, nvars)
			copy(a0, assign)
			a0[lv] = false
			a1 := make([]bool, nvars)
			copy(a1, assign)
			a1[lv] = true
			want := eval(a0) || eval(a1)
			if m.Eval(ex, assign) != want {
				return false
			}
			// f ⇒ ∃x.f
			if eval(assign) && !m.Eval(ex, assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Size is invariant under re-derivation, and SizeShared of a
// function with itself equals Size.
func TestQuickSizeInvariants(t *testing.T) {
	const nvars = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, _, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		s1 := m.Size(root)
		s2 := m.Size(root)
		if s1 != s2 {
			return false
		}
		return m.SizeShared([]Node{root, root}) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExistsMultipleLevels(t *testing.T) {
	m := New(3)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	c := mustVar(t, m, 2)
	ab, _ := m.And(a, b)
	f, _ := m.Or(ab, c)
	// ∃a,b. (a∧b)∨c = True (choose a=b=1).
	ex, err := m.Exists(f, 0, 1)
	if err != nil {
		t.Fatalf("Exists: %v", err)
	}
	if ex != True {
		t.Errorf("∃a,b.(a∧b)∨c = %d, want True", ex)
	}
	// ∃c. (a∧b)∨c = True.
	ex2, _ := m.Exists(f, 2)
	if ex2 != True {
		t.Errorf("∃c.(a∧b)∨c = %d, want True", ex2)
	}
	andOnly, _ := m.Exists(ab, 2) // c not in support: no-op
	if andOnly != ab {
		t.Errorf("∃c.(a∧b) changed the function")
	}
}

func TestWithInitialCapacity(t *testing.T) {
	m := New(4, WithInitialCapacity(1024))
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	ab, err := m.And(a, b)
	if err != nil {
		t.Fatalf("And: %v", err)
	}
	if !m.Eval(ab, []bool{true, true}) {
		t.Error("semantics broken under pre-sized arena")
	}
}

func TestNewNegativeVarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestMaybeGCThreshold(t *testing.T) {
	m := New(20)
	// Small arenas: MaybeGC must be a no-op.
	if freed := m.MaybeGC(); freed != 0 {
		t.Errorf("MaybeGC freed %d on a tiny arena", freed)
	}
	if m.GCs() != 0 {
		t.Errorf("GC ran prematurely")
	}
}
