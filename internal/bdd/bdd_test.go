package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, m *Manager, lv int) Node {
	t.Helper()
	n, err := m.Var(lv)
	if err != nil {
		t.Fatalf("Var(%d): %v", lv, err)
	}
	return n
}

func TestTerminals(t *testing.T) {
	m := New(3)
	if !m.IsTerminal(False) || !m.IsTerminal(True) {
		t.Fatal("terminals not recognized")
	}
	if m.Level(True) != 3 || m.Level(False) != 3 {
		t.Errorf("terminal level = %d/%d, want 3", m.Level(False), m.Level(True))
	}
	if m.Eval(True, nil) != true || m.Eval(False, nil) != false {
		t.Error("terminal evaluation wrong")
	}
}

func TestVarBasics(t *testing.T) {
	m := New(3)
	x := mustVar(t, m, 1)
	if m.Level(x) != 1 {
		t.Errorf("Level = %d, want 1", m.Level(x))
	}
	if m.Lo(x) != False || m.Hi(x) != True {
		t.Errorf("Var cofactors = %d,%d; want False,True", m.Lo(x), m.Hi(x))
	}
	x2 := mustVar(t, m, 1)
	if x != x2 {
		t.Error("Var not canonical")
	}
	nx, err := m.NVar(1)
	if err != nil {
		t.Fatalf("NVar: %v", err)
	}
	notx, err := m.Not(x)
	if err != nil {
		t.Fatalf("Not: %v", err)
	}
	if nx != notx {
		t.Error("NVar(1) != Not(Var(1)): canonicity violated")
	}
	if _, err := m.Var(3); err == nil {
		t.Error("Var(3) of 3-var manager: want range error")
	}
	if _, err := m.NVar(-1); err == nil {
		t.Error("NVar(-1): want range error")
	}
}

func TestCanonicityOfEquivalentFormulas(t *testing.T) {
	m := New(4)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	// (a∧b)∨(a∧c) == a∧(b∨c)
	ab, _ := m.And(a, b)
	ac, _ := m.And(a, c)
	lhs, _ := m.Or(ab, ac)
	bc, _ := m.Or(b, c)
	rhs, _ := m.And(a, bc)
	if lhs != rhs {
		t.Error("distributivity: equivalent functions got different nodes")
	}
	// De Morgan.
	nab, _ := m.Not(ab)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	naOrNb, _ := m.Or(na, nb)
	if nab != naOrNb {
		t.Error("De Morgan: equivalent functions got different nodes")
	}
	// Xor expansion.
	x1, _ := m.Xor(a, b)
	anb, _ := m.And(a, nb)
	nab2, _ := m.And(na, b)
	x2, _ := m.Or(anb, nab2)
	if x1 != x2 {
		t.Error("xor expansion: equivalent functions got different nodes")
	}
}

func TestEvalMatchesSemantics(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	ab, _ := m.And(a, b)
	f, _ := m.Or(ab, c) // a∧b ∨ c
	for mask := 0; mask < 8; mask++ {
		assign := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := (assign[0] && assign[1]) || assign[2]
		if got := m.Eval(f, assign); got != want {
			t.Errorf("Eval mask %03b = %v, want %v", mask, got, want)
		}
	}
}

func TestITEIdentities(t *testing.T) {
	m := New(3)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	if r, _ := m.ITE(True, a, b); r != a {
		t.Error("ITE(1,a,b) != a")
	}
	if r, _ := m.ITE(False, a, b); r != b {
		t.Error("ITE(0,a,b) != b")
	}
	if r, _ := m.ITE(a, b, b); r != b {
		t.Error("ITE(a,b,b) != b")
	}
	if r, _ := m.ITE(a, True, False); r != a {
		t.Error("ITE(a,1,0) != a")
	}
	na, _ := m.Not(a)
	if r, _ := m.ITE(a, False, True); r != na {
		t.Error("ITE(a,0,1) != ¬a")
	}
	r, _ := m.ITE(a, b, a)
	r2, _ := m.And(a, b)
	if r != r2 {
		t.Error("ITE(a,b,a) != a∧b")
	}
	r, _ = m.ITE(a, a, b)
	r2, _ = m.Or(a, b)
	if r != r2 {
		t.Error("ITE(a,a,b) != a∨b")
	}
}

func TestImpliesEquiv(t *testing.T) {
	m := New(2)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	imp, _ := m.Implies(a, b)
	eqv, _ := m.Equiv(a, b)
	for mask := 0; mask < 4; mask++ {
		assign := []bool{mask&1 != 0, mask&2 != 0}
		if got, want := m.Eval(imp, assign), !assign[0] || assign[1]; got != want {
			t.Errorf("Implies mask %02b = %v, want %v", mask, got, want)
		}
		if got, want := m.Eval(eqv, assign), assign[0] == assign[1]; got != want {
			t.Errorf("Equiv mask %02b = %v, want %v", mask, got, want)
		}
	}
}

func TestRestrictAndExists(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	ab, _ := m.And(a, b)
	f, _ := m.Or(ab, c)
	r1, err := m.Restrict(f, 0, true) // b ∨ c
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	bc, _ := m.Or(b, c)
	if r1 != bc {
		t.Error("Restrict(f, a=1) != b∨c")
	}
	r0, _ := m.Restrict(f, 0, false) // c
	if r0 != c {
		t.Error("Restrict(f, a=0) != c")
	}
	ex, err := m.Exists(f, 0) // ∃a. f = b∨c
	if err != nil {
		t.Fatalf("Exists: %v", err)
	}
	if ex != bc {
		t.Error("Exists(f, a) != b∨c")
	}
	exAll, _ := m.Exists(f, 0, 1, 2)
	if exAll != True {
		t.Error("Exists over all variables of a satisfiable f != True")
	}
	if _, err := m.Restrict(f, 9, true); err == nil {
		t.Error("Restrict with out-of-range level: want error")
	}
}

func TestSizeAndSupport(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	ab, _ := m.And(a, b)
	f, _ := m.Or(ab, c)
	// Diagram: node(a) -> node(b) -> node(c) plus the single stored
	// terminal (complement edges merge True and False) = 4 nodes.
	if got := m.Size(f); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
	if got := m.Size(True); got != 1 {
		t.Errorf("Size(True) = %d, want 1", got)
	}
	sup := m.Support(f)
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 1 || sup[2] != 2 {
		t.Errorf("Support = %v, want [0 1 2]", sup)
	}
	if got := m.Support(c); len(got) != 1 || got[0] != 2 {
		t.Errorf("Support(c) = %v, want [2]", got)
	}
	// c's node is a subgraph of f (it is f's lo-cofactor), so sharing
	// makes the joint size equal Size(f).
	if shared := m.SizeShared([]Node{f, c}); shared != m.Size(f) {
		t.Errorf("SizeShared(f,c) = %d, want %d", shared, m.Size(f))
	}
	// ab is NOT a subgraph of f (its b-node has different cofactors),
	// so the joint size is Size(f) plus ab's two fresh internal nodes.
	if shared := m.SizeShared([]Node{f, ab}); shared != m.Size(f)+2 {
		t.Errorf("SizeShared(f,ab) = %d, want %d", shared, m.Size(f)+2)
	}
}

func TestSatFractionAndCount(t *testing.T) {
	m := New(3)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	ab, _ := m.And(a, b)
	if got := m.SatFraction(ab); got != 0.25 {
		t.Errorf("SatFraction(a∧b) = %v, want 0.25", got)
	}
	if got := m.SatCount(ab); got != 2 { // 2 of 8 assignments
		t.Errorf("SatCount(a∧b) = %v, want 2", got)
	}
	if got := m.SatFraction(True); got != 1 {
		t.Errorf("SatFraction(True) = %v, want 1", got)
	}
	if got := m.SatFraction(False); got != 0 {
		t.Errorf("SatFraction(False) = %v, want 0", got)
	}
	x, _ := m.Xor(a, b)
	if got := m.SatFraction(x); got != 0.5 {
		t.Errorf("SatFraction(a⊕b) = %v, want 0.5", got)
	}
}

func TestGCReclaimsUnreferenced(t *testing.T) {
	m := New(8)
	var keep Node
	{
		a, b := mustVar(t, m, 0), mustVar(t, m, 1)
		k, _ := m.And(a, b)
		keep = m.Ref(k)
	}
	// Build lots of garbage.
	for i := 0; i < 6; i++ {
		x := mustVar(t, m, i)
		y := mustVar(t, m, i+1)
		xy, _ := m.Xor(x, y)
		o, _ := m.Or(xy, keep)
		_ = o
	}
	before := m.Live()
	freed := m.GC()
	if freed == 0 {
		t.Fatal("GC freed nothing despite garbage present")
	}
	if m.Live() != before-freed {
		t.Errorf("Live = %d, want %d", m.Live(), before-freed)
	}
	// keep must have survived and still be correct.
	if !m.Eval(keep, []bool{true, true}) || m.Eval(keep, []bool{true, false}) {
		t.Error("referenced node corrupted by GC")
	}
	// Canonicity must survive GC: rebuilding a∧b finds the same node.
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	k2, _ := m.And(a, b)
	if k2 != keep {
		t.Error("unique table broken after GC: a∧b rebuilt as a different node")
	}
	m.Deref(keep)
	if g := m.GCs(); g != 1 {
		t.Errorf("GCs = %d, want 1", g)
	}
}

func TestGCFreeSlotReuse(t *testing.T) {
	m := New(4)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	g, _ := m.And(a, b)
	_ = g
	live := m.Live()
	m.GC() // g is garbage (vars a,b too unless referenced — they are not)
	if m.Live() >= live {
		t.Fatalf("GC did not reduce live count: %d -> %d", live, m.Live())
	}
	// New allocations must reuse freed slots, not grow the arena.
	nodesBefore := len(m.nodes)
	c, _ := m.Var(2)
	d, _ := m.Var(3)
	cd, _ := m.And(c, d)
	_ = cd
	if len(m.nodes) != nodesBefore {
		t.Errorf("arena grew from %d to %d despite free slots", nodesBefore, len(m.nodes))
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(16, WithNodeLimit(8))
	var err error
	var f Node = True
	for i := 0; i < 16 && err == nil; i++ {
		var v Node
		v, err = m.Var(i)
		if err != nil {
			break
		}
		f, err = m.Xor(f, v) // xor chains grow linearly, hits limit fast
	}
	if err != ErrNodeLimit {
		t.Fatalf("expected ErrNodeLimit, got %v", err)
	}
	if !m.LimitExceeded() {
		t.Error("LimitExceeded() = false after a limit failure")
	}
	// The manager must remain usable for reads after a limit failure.
	if m.Eval(True, nil) != true {
		t.Error("manager unusable after limit hit")
	}
}

func TestPeakLiveMonotone(t *testing.T) {
	m := New(6)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	ab, _ := m.And(a, b)
	_ = ab
	p1 := m.PeakLive()
	if p1 < m.Live() {
		t.Errorf("PeakLive %d < Live %d", p1, m.Live())
	}
	m.GC()
	if m.PeakLive() < p1 {
		t.Errorf("PeakLive decreased across GC: %d -> %d", p1, m.PeakLive())
	}
}

func TestRefDerefProtection(t *testing.T) {
	m := New(4)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	f, _ := m.And(a, b)
	m.Ref(f)
	m.Ref(f)
	m.Deref(f)
	m.GC()
	// Still one ref: must survive.
	if !m.Eval(f, []bool{true, true}) {
		t.Error("node with remaining ref collected")
	}
	m.Deref(f)
	defer func() {
		if recover() == nil {
			t.Error("Deref of unreferenced node did not panic")
		}
	}()
	m.Deref(f)
}

func TestRefTerminalsNoop(t *testing.T) {
	m := New(2)
	m.Ref(True)
	m.Ref(False)
	m.Deref(True)
	m.Deref(False) // must not panic
}

// randomFormula builds the same random function in the BDD manager and
// as an evaluable closure, driven by a seeded generator.
func randomFormula(m *Manager, rng *rand.Rand, depth int, nvars int) (Node, func([]bool) bool, error) {
	if depth == 0 || rng.Intn(4) == 0 {
		lv := rng.Intn(nvars)
		v, err := m.Var(lv)
		return v, func(a []bool) bool { return a[lv] }, err
	}
	l, fl, err := randomFormula(m, rng, depth-1, nvars)
	if err != nil {
		return False, nil, err
	}
	r, fr, err := randomFormula(m, rng, depth-1, nvars)
	if err != nil {
		return False, nil, err
	}
	switch rng.Intn(4) {
	case 0:
		n, err := m.And(l, r)
		return n, func(a []bool) bool { return fl(a) && fr(a) }, err
	case 1:
		n, err := m.Or(l, r)
		return n, func(a []bool) bool { return fl(a) || fr(a) }, err
	case 2:
		n, err := m.Xor(l, r)
		return n, func(a []bool) bool { return fl(a) != fr(a) }, err
	default:
		n, err := m.Not(l)
		return n, func(a []bool) bool { return !fl(a) }, err
	}
}

// Property: BDD evaluation agrees with direct formula evaluation on
// every assignment, for random formulas.
func TestQuickRandomFormulaSemantics(t *testing.T) {
	const nvars = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			if m.Eval(root, assign) != eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: canonicity — two structurally different constructions of
// the same random function always return the identical node.
func TestQuickCanonicity(t *testing.T) {
	const nvars = 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		// Rebuild from the truth table as a sum of minterms.
		rebuilt := False
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			if !eval(assign) {
				continue
			}
			term := True
			for i := 0; i < nvars; i++ {
				var lit Node
				if assign[i] {
					lit, err = m.Var(i)
				} else {
					lit, err = m.NVar(i)
				}
				if err != nil {
					return false
				}
				term, err = m.And(term, lit)
				if err != nil {
					return false
				}
			}
			rebuilt, err = m.Or(rebuilt, term)
			if err != nil {
				return false
			}
		}
		return rebuilt == root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SatFraction equals the truth-table density.
func TestQuickSatFraction(t *testing.T) {
	const nvars = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 4, nvars)
		if err != nil {
			return false
		}
		count := 0
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			if eval(assign) {
				count++
			}
		}
		want := float64(count) / float64(int(1)<<nvars)
		return math.Abs(m.SatFraction(root)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: GC preserves referenced functions and canonicity under
// random interleavings of construction and collection.
func TestQuickGCPreservation(t *testing.T) {
	const nvars = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nvars)
		root, eval, err := randomFormula(m, rng, 5, nvars)
		if err != nil {
			return false
		}
		m.Ref(root)
		// Garbage rounds interleaved with GC.
		for i := 0; i < 3; i++ {
			if _, _, err := randomFormula(m, rng, 5, nvars); err != nil {
				return false
			}
			m.GC()
		}
		assign := make([]bool, nvars)
		for mask := 0; mask < 1<<nvars; mask++ {
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			if m.Eval(root, assign) != eval(assign) {
				return false
			}
		}
		m.Deref(root)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargeXorChainSizeIsLinear(t *testing.T) {
	// Parity of n variables has a BDD of 2n+... nodes (2 per level + 2
	// terminals with this construction) — a classic sanity check that
	// the unique table shares aggressively.
	const n = 24
	m := New(n)
	f := False
	for i := 0; i < n; i++ {
		v := mustVar(t, m, i)
		var err error
		f, err = m.Xor(f, v)
		if err != nil {
			t.Fatalf("Xor: %v", err)
		}
	}
	size := m.Size(f)
	if size > 2*n+2 {
		t.Errorf("parity BDD size = %d, want ≤ %d", size, 2*n+2)
	}
	if got := m.SatFraction(f); got != 0.5 {
		t.Errorf("parity SatFraction = %v, want 0.5", got)
	}
}

func TestManyVariablesStress(t *testing.T) {
	// Interleaved conjunction x0∧x2∧… ∨ x1∧x3∧… exercises bucket
	// resizing and the cache without blowing up.
	const n = 40
	m := New(n)
	even, odd := True, True
	for i := 0; i < n; i++ {
		v := mustVar(t, m, i)
		var err error
		if i%2 == 0 {
			even, err = m.And(even, v)
		} else {
			odd, err = m.And(odd, v)
		}
		if err != nil {
			t.Fatalf("And: %v", err)
		}
	}
	f, err := m.Or(even, odd)
	if err != nil {
		t.Fatalf("Or: %v", err)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if !m.Eval(f, all) {
		t.Error("f(1..1) = false, want true")
	}
	if m.Eval(f, make([]bool, n)) {
		t.Error("f(0..0) = true, want false")
	}
}
