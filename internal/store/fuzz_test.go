package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/yield"
)

// FuzzFrozenDecode hammers Decode with arbitrary bytes. The contract
// under fuzzing:
//
//   - never panic, never allocate unbounded by the input;
//   - fail only with one of the typed sentinels;
//   - when Decode accepts the bytes, the snapshot must be fully
//     usable — restorable to a Reevaluator that evaluates without
//     error, and re-encodable to bytes Decode accepts again.
//
// The seed corpus is real encoded models (so coverage reaches deep
// into the arena parsing) plus checksum-refitted mutations of them
// (so the fuzzer starts beyond the checksum wall instead of spending
// its budget rediscovering CRC-32C).
func FuzzFrozenDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		sys := randomSystem(rng)
		d, err := defects.NewNegativeBinomial(1+rng.Float64(), 2+rng.Float64())
		if err != nil {
			f.Fatalf("NewNegativeBinomial: %v", err)
		}
		key, m, err := yield.ModelKey(sys, yield.Options{Defects: d, Epsilon: 2e-3})
		if err != nil {
			f.Fatalf("ModelKey: %v", err)
		}
		re, err := yield.NewReevaluator(sys, yield.Options{Defects: d, Epsilon: 2e-3, ForceM: m, ForceMSet: true})
		if err != nil {
			f.Fatalf("NewReevaluator: %v", err)
		}
		snap := re.Snapshot()
		snap.ModelKey = key
		enc, err := Encode(snap)
		if err != nil {
			f.Fatalf("Encode: %v", err)
		}
		f.Add(enc)
		// Refitted single-byte mutations: structurally interesting,
		// checksum-valid starting points.
		for j := 0; j < 8; j++ {
			mut := append([]byte(nil), enc...)
			mut[rng.Intn(len(mut)-trailerLen)] ^= byte(1 << rng.Intn(8))
			body := mut[:len(mut)-trailerLen]
			binary.LittleEndian.PutUint32(mut[len(mut)-trailerLen:], crc32.Checksum(body, castagnoli))
			f.Add(mut)
		}
		// Refitted truncations crossing section boundaries.
		for _, frac := range []int{4, 2, 3} {
			cut := len(enc) * (frac - 1) / frac
			if cut < headerLen+trailerLen {
				continue
			}
			mut := append([]byte(nil), enc[:cut]...)
			body := mut[:len(mut)-trailerLen]
			binary.LittleEndian.PutUint32(mut[len(mut)-trailerLen:], crc32.Checksum(body, castagnoli))
			f.Add(mut)
		}
	}
	f.Add([]byte(nil))
	f.Add([]byte(magic))
	f.Add([]byte("SYCM\x01\x00\x00\x00"))

	typed := []error{ErrTruncated, ErrBadMagic, ErrVersion, ErrChecksum, ErrEngineRevision, ErrCorrupt}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			for _, want := range typed {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// Accepted bytes must round all the way: restore, evaluate,
		// re-encode, re-decode.
		re, err := yield.RestoreReevaluator(snap)
		if err != nil {
			t.Fatalf("Decode accepted bytes RestoreReevaluator rejects: %v", err)
		}
		ps := make([]float64, snap.Components)
		for i := range ps {
			ps[i] = 0.1
		}
		if _, _, err := re.Yield(ps, defects.Deterministic{N: 1}); err != nil {
			t.Fatalf("restored model cannot evaluate: %v", err)
		}
		enc, err := Encode(snap)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if _, err := Decode(enc); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
	})
}
