package store

import (
	"errors"

	"socyield/internal/yield"
)

// LoadOrBuild returns a Reevaluator for the model (sys, opts)
// describe, serving it from the persistent store when possible:
//
//   - store hit → decode + restore, no compile (fromStore = true);
//   - miss, corruption or revision skew → compile with the truncation
//     point pinned to the model key's M, then write through.
//
// A nil store just compiles — callers can thread an optional store
// without branching. Corrupt entries are evicted so the next call
// takes the clean path; store write failures are swallowed (the caller
// has its model, persistence is an optimization). This is the
// batch-side counterpart of the yieldd cache's second tier and uses
// the same on-disk artifacts.
func LoadOrBuild(st *Store, sys *yield.System, opts yield.Options) (re *yield.Reevaluator, fromStore bool, err error) {
	key, m, err := yield.ModelKey(sys, opts)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		if data, gerr := st.Get(key); gerr == nil {
			snap, derr := Decode(data)
			if derr == nil && snap.ModelKey != key {
				derr = errors.New("store: stored model key does not match its address")
			}
			if derr == nil {
				if re, rerr := yield.RestoreReevaluator(snap); rerr == nil {
					return re, true, nil
				}
			}
			st.Evict(key)
		}
	}
	buildOpts := opts
	buildOpts.ForceM, buildOpts.ForceMSet = m, true
	re, err = yield.NewReevaluator(sys, buildOpts)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		snap := re.Snapshot()
		snap.ModelKey = key
		if data, eerr := Encode(snap); eerr == nil {
			st.Put(key, data)
		}
	}
	return re, false, nil
}
