package store

import (
	"fmt"
	"math/rand"
	"testing"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/yield"
)

// buildSnapshot compiles a model and returns its keyed snapshot, the
// live Reevaluator it came from, and the system (for per-request
// inputs).
func buildSnapshot(t *testing.T, sys *yield.System, opts yield.Options) (*yield.Snapshot, *yield.Reevaluator) {
	t.Helper()
	key, m, err := yield.ModelKey(sys, opts)
	if err != nil {
		t.Fatalf("ModelKey: %v", err)
	}
	opts.ForceM, opts.ForceMSet = m, true
	re, err := yield.NewReevaluator(sys, opts)
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	snap := re.Snapshot()
	snap.ModelKey = key
	return snap, re
}

// benchSnapshot compiles a named benchmark under the reproduction
// defaults.
func benchSnapshot(t *testing.T, name string) (*yield.Snapshot, *yield.Reevaluator, *yield.System) {
	t.Helper()
	sys, err := benchmarks.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	dist, err := defects.NewNegativeBinomial(2, 3.4)
	if err != nil {
		t.Fatalf("NewNegativeBinomial: %v", err)
	}
	snap, re := buildSnapshot(t, sys, yield.Options{Defects: dist, Epsilon: 2e-3})
	return snap, re, sys
}

// randomSystem builds a small random monotone fault tree (the same
// family the yield oracle battery uses) so the round-trip property
// test covers diverse diagram shapes, not just the benchmarks.
func randomSystem(rng *rand.Rand) *yield.System {
	c := 3 + rng.Intn(4)
	f := logic.New()
	pool := make([]logic.GateID, 0, 32)
	comps := make([]yield.Component, c)
	total := 0.0
	for i := 0; i < c; i++ {
		pool = append(pool, f.Input(fmt.Sprintf("x%d", i+1)))
		comps[i].Name = fmt.Sprintf("x%d", i+1)
		comps[i].P = 0.02 + 0.1*rng.Float64()
		total += comps[i].P
	}
	target := 0.2 + 0.6*rng.Float64()
	for i := range comps {
		comps[i].P *= target / total
	}
	for i := 0; i < 5+rng.Intn(8); i++ {
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			pool = append(pool, f.And(a, b))
		} else {
			pool = append(pool, f.Or(a, b))
		}
	}
	f.SetOutput(pool[len(pool)-1])
	return &yield.System{Name: "random", Components: comps, FaultTree: f}
}

// lethalities extracts the per-component P_i vector.
func lethalities(sys *yield.System) []float64 {
	ps := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		ps[i] = c.P
	}
	return ps
}
