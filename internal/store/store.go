package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"socyield/internal/obs"
)

// ErrNotFound reports that a key has no entry in the store.
var ErrNotFound = errors.New("store: model not found")

// ext is the on-disk suffix of one compiled model ("socyield compiled
// model").
const ext = ".scm"

// Store is a disk-backed cache of encoded compiled models,
// content-addressed by model key: entry k lives at <dir>/<k>.scm.
// Writes are atomic (temp file in the same directory, then rename), so
// a crash mid-Put leaves either the old entry or the new one, never a
// torn file; readers on other replicas sharing the directory see only
// complete files.
//
// The store is a size-capped LRU: when the total size exceeds
// MaxBytes after a Put, the least recently used entries are evicted
// until it fits (recency = file modification time, refreshed by Get).
// All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	hits       *obs.Counter
	misses     *obs.Counter
	puts       *obs.Counter
	getBytes   *obs.Counter
	putBytes   *obs.Counter
	evictions  *obs.Counter
	errCount   *obs.Counter
	entryGauge *obs.Gauge
	byteGauge  *obs.Gauge

	mu sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir. maxBytes
// caps the total size of the stored models (≤ 0 = unlimited; the most
// recently written entry is never evicted, so one oversized model
// still persists alone). The registry receives the store.* instruments
// (nil disables metrics — obs instruments are nil-safe).
func Open(dir string, maxBytes int64, rec *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:        dir,
		maxBytes:   maxBytes,
		hits:       rec.Counter("store.hits"),
		misses:     rec.Counter("store.misses"),
		puts:       rec.Counter("store.puts"),
		getBytes:   rec.Counter("store.get_bytes"),
		putBytes:   rec.Counter("store.put_bytes"),
		evictions:  rec.Counter("store.evictions"),
		errCount:   rec.Counter("store.errors"),
		entryGauge: rec.Gauge("store.entries"),
		byteGauge:  rec.Gauge("store.bytes"),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.publish(entries)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Entry describes one stored model.
type Entry struct {
	// Key is the model key the entry is addressed by.
	Key string
	// Bytes is the encoded size on disk.
	Bytes int64
	// LastUsed is the LRU recency stamp (write or last Get).
	LastUsed time.Time
}

// validKey guards the content-addressed namespace (and with it the
// filesystem): keys are the hex model hashes plus the odd test key —
// never path separators, dots or anything else the filesystem could
// interpret.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("store: invalid key length %d", len(key))
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return fmt.Errorf("store: invalid key %q", key)
		}
	}
	return nil
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+ext) }

// Put atomically writes the encoded model under key and then enforces
// the size cap, evicting least-recently-used entries (never the one
// just written).
func (s *Store) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.errCount.Inc()
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.errCount.Inc()
		return fmt.Errorf("store: %w", werr)
	}
	s.puts.Inc()
	s.putBytes.Add(int64(len(data)))
	return s.enforceCap(key)
}

// Get returns the encoded model stored under key (ErrNotFound when
// absent) and refreshes its LRU recency.
func (s *Store) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Inc()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		s.errCount.Inc()
		return nil, fmt.Errorf("store: %w", err)
	}
	now := time.Now()
	os.Chtimes(s.path(key), now, now) // best-effort recency bump
	s.hits.Inc()
	s.getBytes.Add(int64(len(data)))
	return data, nil
}

// Evict removes the entry stored under key (no error when absent).
func (s *Store) Evict(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.errCount.Inc()
		return fmt.Errorf("store: %w", err)
	}
	entries, err := s.scan()
	if err != nil {
		return err
	}
	s.publish(entries)
	return nil
}

// List returns the stored entries, most recently used first.
func (s *Store) List() ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.publish(entries)
	return entries, nil
}

// scan reads the directory into Entry records, most recently used
// first (ties broken by key for determinism). Caller holds s.mu.
func (s *Store) scan() ([]Entry, error) {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		s.errCount.Inc()
		return nil, fmt.Errorf("store: %w", err)
	}
	entries := make([]Entry, 0, len(dirents))
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		key := strings.TrimSuffix(name, ext)
		if validKey(key) != nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with an eviction
		}
		entries = append(entries, Entry{Key: key, Bytes: info.Size(), LastUsed: info.ModTime()})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].LastUsed.Equal(entries[j].LastUsed) {
			return entries[i].LastUsed.After(entries[j].LastUsed)
		}
		return entries[i].Key < entries[j].Key
	})
	return entries, nil
}

// enforceCap evicts least-recently-used entries until the store fits
// MaxBytes, sparing keep (the entry just written). Caller holds s.mu.
func (s *Store) enforceCap(keep string) error {
	entries, err := s.scan()
	if err != nil {
		return err
	}
	if s.maxBytes > 0 {
		total := int64(0)
		for _, e := range entries {
			total += e.Bytes
		}
		for i := len(entries) - 1; i >= 0 && total > s.maxBytes; i-- {
			if entries[i].Key == keep {
				continue
			}
			if err := os.Remove(s.path(entries[i].Key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				s.errCount.Inc()
				return fmt.Errorf("store: %w", err)
			}
			total -= entries[i].Bytes
			s.evictions.Inc()
			entries = append(entries[:i], entries[i+1:]...)
		}
	}
	s.publish(entries)
	return nil
}

// publish refreshes the size gauges from a scan result.
func (s *Store) publish(entries []Entry) {
	total := int64(0)
	for _, e := range entries {
		total += e.Bytes
	}
	s.entryGauge.Set(int64(len(entries)))
	s.byteGauge.Set(total)
}
