package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"sync"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/yield"
)

var fixtureOnce struct {
	sync.Once
	enc []byte
}

// fixture returns one small encoded model, compiled once per test
// binary. Tests must not mutate the returned slice — clone first.
func fixture(t *testing.T) []byte {
	t.Helper()
	fixtureOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		sys := randomSystem(rng)
		d, err := defects.NewNegativeBinomial(1.5, 2.5)
		if err != nil {
			t.Fatalf("NewNegativeBinomial: %v", err)
		}
		snap, _ := buildSnapshot(t, sys, yield.Options{Defects: d, Epsilon: 2e-3})
		enc, err := Encode(snap)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		fixtureOnce.enc = enc
	})
	if fixtureOnce.enc == nil {
		t.Fatal("fixture build failed in an earlier test")
	}
	return fixtureOnce.enc
}

// refit recomputes the trailer checksum in place so structural
// mutations are tested on their own, not shadowed by ErrChecksum.
func refit(data []byte) []byte {
	if len(data) < trailerLen {
		return data
	}
	body := data[:len(data)-trailerLen]
	binary.LittleEndian.PutUint32(data[len(data)-trailerLen:], crc32.Checksum(body, castagnoli))
	return data
}

// TestDecodeCorruptionBattery checks that each distinct failure mode
// surfaces as its own typed error, so callers can tell an incompatible
// store (version/revision skew: expected in rolling upgrades) from a
// damaged one.
func TestDecodeCorruptionBattery(t *testing.T) {
	base := fixture(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty input", func(d []byte) []byte { return nil }, ErrTruncated},
		{"below minimum length", func(d []byte) []byte { return d[:headerLen+trailerLen-1] }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"future format version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], FormatVersion+1)
			return refit(d)
		}, ErrVersion},
		{"flipped body byte", func(d []byte) []byte { d[headerLen+3] ^= 0x40; return d }, ErrChecksum},
		{"flipped checksum byte", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }, ErrChecksum},
		// The engine revision is the first body field; the fixture's
		// value (6) fits one varint byte, so patching that byte and
		// refitting the checksum yields a well-formed file from a
		// "different pipeline".
		{"wrong engine revision", func(d []byte) []byte {
			d[headerLen] = byte(yield.EngineRevision + 1)
			return refit(d)
		}, ErrEngineRevision},
		{"trailing bytes after root", func(d []byte) []byte {
			d = append(d[:len(d)-trailerLen], 0x00, 0, 0, 0, 0)
			return refit(d)
		}, ErrCorrupt},
		{"inflated string length", func(d []byte) []byte {
			// The model-key length prefix follows the 1-byte revision;
			// 0xFF 0xFF 0x7F declares ~2M bytes — over maxStringLen.
			d = append(d[:headerLen+1],
				append([]byte{0xFF, 0xFF, 0x7F}, d[headerLen+2:]...)...)
			return refit(d)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), base...))
		snap, err := Decode(data)
		if err == nil {
			t.Errorf("%s: Decode accepted the mutation (snapshot %+v)", tc.name, snap)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeTruncationEverywhere cuts the encoding at every possible
// length — crossing every section boundary and every mid-varint
// position — refits the checksum so the cut is structural rather than
// a checksum miss, and requires a clean typed error each time. This is
// the "no panic, no unbounded allocation" guarantee exercised
// exhaustively rather than sampled.
func TestDecodeTruncationEverywhere(t *testing.T) {
	base := fixture(t)
	for cut := 0; cut < len(base); cut++ {
		data := append([]byte(nil), base[:cut]...)
		if cut >= headerLen+trailerLen {
			refit(data)
		}
		snap, err := Decode(data)
		if err == nil {
			t.Fatalf("cut at %d of %d: Decode accepted a truncation (snapshot %+v)", cut, len(base), snap)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d of %d: got %v, want ErrTruncated or ErrCorrupt", cut, len(base), err)
		}
	}
}

// TestDecodeStructuralMutations flips individual body bytes (with the
// checksum refitted) across the whole file and requires Decode to
// either reject with a typed error or produce a snapshot that passed
// full validation — never panic, never return garbage silently.
func TestDecodeStructuralMutations(t *testing.T) {
	base := fixture(t)
	rng := rand.New(rand.NewSource(99))
	typed := []error{ErrTruncated, ErrBadMagic, ErrVersion, ErrEngineRevision, ErrCorrupt}
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), base...)
		for flips := 1 + rng.Intn(3); flips > 0; flips-- {
			data[rng.Intn(len(data)-trailerLen)] ^= byte(1 << rng.Intn(8))
		}
		refit(data)
		snap, err := Decode(data)
		if err == nil {
			// The mutation happened to keep every invariant (e.g. it
			// only touched a float or a name byte); the snapshot must
			// then be fully usable.
			if _, rerr := yield.RestoreReevaluator(snap); rerr != nil {
				t.Fatalf("trial %d: Decode accepted bytes RestoreReevaluator rejects: %v", trial, rerr)
			}
			continue
		}
		ok := false
		for _, want := range typed {
			if errors.Is(err, want) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("trial %d: untyped decode error %v", trial, err)
		}
	}
}
