// Package store persists compiled models: a versioned binary codec
// for yield.Snapshot (the frozen ROMDD arena plus model metadata) and
// a disk-backed, size-capped LRU store content-addressed by
// yield.ModelKey. Together they turn the expensive one-time build
// into a write-once artifact: every yieldd replica and every restart
// loads a compiled model in milliseconds instead of recompiling it.
//
// # Format (version 1)
//
//	offset 0  magic "SYCM" (4 bytes)
//	offset 4  format version, uint32 little-endian
//	offset 8  body — one contiguous varint stream:
//	            engine revision          uvarint
//	            model key                uvarint length + bytes
//	            system name              uvarint length + bytes
//	            components C             uvarint
//	            truncation point M       uvarint
//	            build summary            4 × float64 bits (8-byte LE):
//	                                       yield, error bound, P_L, λ'
//	                                     4 × uvarint:
//	                                       G gates, binary vars,
//	                                       coded-ROBDD size, ROMDD size
//	            group sequence           uvarint count + uvarint each
//	            ROMDD domains            uvarint count + uvarint each
//	            ROMDD node levels        uvarint count + uvarint each
//	                                     (internal nodes only; the two
//	                                     terminals are implicit)
//	            ROMDD child arrays       uvarint count + uvarint each
//	                                     (struct-of-arrays: offsets are
//	                                     recomputed from the levels)
//	            ROMDD root               uvarint
//	trailer   CRC-32C (Castagnoli) of everything before it, uint32 LE
//
// # Decoding discipline
//
// Decode must survive arbitrary hostile bytes: it never panics and
// never allocates memory unbounded by the input length. Every count
// read from the stream is checked against the bytes remaining (each
// element costs at least one byte) before any slice is allocated, all
// index arithmetic is bounds-checked, and the reconstructed arena goes
// through mdd.FrozenFromData and yield.Snapshot.Validate, which
// re-verify every structural invariant evaluation relies on. The
// checksum is verified before the body is parsed, so random corruption
// is caught up front; the structural checks exist for the adversarial
// case where the checksum itself was recomputed.
//
// Failures are distinct typed errors (ErrTruncated, ErrBadMagic,
// ErrVersion, ErrChecksum, ErrEngineRevision, ErrCorrupt) so callers
// can tell an incompatible store from a damaged one — and the server
// can fall back to a clean rebuild either way.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"socyield/internal/mdd"
	"socyield/internal/yield"
)

// Typed decode failures. Decode errors always wrap exactly one of
// these sentinels (ErrNotFound belongs to the disk store).
var (
	// ErrTruncated: the input ends before the structure it declares.
	ErrTruncated = errors.New("store: compiled model truncated")
	// ErrBadMagic: the input is not a compiled-model file at all.
	ErrBadMagic = errors.New("store: not a compiled-model file")
	// ErrVersion: the format version is not one this decoder reads.
	ErrVersion = errors.New("store: unsupported compiled-model format version")
	// ErrChecksum: the whole-file checksum does not match.
	ErrChecksum = errors.New("store: compiled model checksum mismatch")
	// ErrEngineRevision: the model was built by a different pipeline
	// revision; its diagrams may not match what this engine would build.
	ErrEngineRevision = errors.New("store: compiled model from a different engine revision")
	// ErrCorrupt: the bytes parse but violate a structural invariant.
	ErrCorrupt = errors.New("store: compiled model corrupt")
)

const (
	magic = "SYCM"
	// FormatVersion is the codec version Encode writes and Decode
	// accepts. Bump on any layout change; Decode rejects everything
	// else with ErrVersion.
	FormatVersion uint32 = 1

	// headerLen is magic + version; trailerLen the checksum.
	headerLen  = 8
	trailerLen = 4

	// maxStringLen bounds the key and name fields; maxCount bounds
	// every array (the per-element ≥ 1 byte rule bounds them tighter
	// for any real input).
	maxStringLen = 4096
	maxCount     = 1<<31 - 1
	// maxComponents is a format limit on the component count. Unlike
	// the arrays, C is a bare scalar the input pays nothing for, yet
	// restoring a model allocates O(C) — so a hostile file could
	// otherwise declare 2³⁰ components in five bytes. A million is far
	// beyond any SoC model and keeps the worst-case restore bounded.
	maxComponents = 1 << 20
)

// castagnoli is the CRC-32C table (the polynomial with hardware
// support on amd64/arm64, the conventional choice for storage
// checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes a snapshot. The output is deterministic: equal
// snapshots encode to equal bytes, which is what makes golden fixtures
// and content addressing meaningful.
func Encode(snap *yield.Snapshot) ([]byte, error) {
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("store: refusing to encode invalid snapshot: %w", err)
	}
	if len(snap.ModelKey) > maxStringLen {
		return nil, fmt.Errorf("store: model key of %d bytes exceeds %d", len(snap.ModelKey), maxStringLen)
	}
	if len(snap.SystemName) > maxStringLen {
		return nil, fmt.Errorf("store: system name of %d bytes exceeds %d", len(snap.SystemName), maxStringLen)
	}
	if snap.Components > maxComponents {
		return nil, fmt.Errorf("store: %d components exceeds the format limit %d", snap.Components, maxComponents)
	}
	data := snap.Frozen.Data()

	buf := make([]byte, 0, 64+len(snap.ModelKey)+len(snap.SystemName)+
		binary.MaxVarintLen32*(len(snap.GroupSeq)+len(data.Domains)+len(data.Levels)+len(data.Kids)))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, uint64(snap.EngineRevision))
	buf = appendString(buf, snap.ModelKey)
	buf = appendString(buf, snap.SystemName)
	buf = binary.AppendUvarint(buf, uint64(snap.Components))
	buf = binary.AppendUvarint(buf, uint64(snap.M))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(snap.Build.Yield))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(snap.Build.ErrorBound))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(snap.Build.PL))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(snap.Build.LambdaPrime))
	buf = binary.AppendUvarint(buf, uint64(snap.Build.GGates))
	buf = binary.AppendUvarint(buf, uint64(snap.Build.BinaryVars))
	buf = binary.AppendUvarint(buf, uint64(snap.Build.CodedROBDDSize))
	buf = binary.AppendUvarint(buf, uint64(snap.Build.ROMDDSize))
	buf = binary.AppendUvarint(buf, uint64(len(snap.GroupSeq)))
	for _, gi := range snap.GroupSeq {
		buf = binary.AppendUvarint(buf, uint64(gi))
	}
	buf = binary.AppendUvarint(buf, uint64(len(data.Domains)))
	for _, d := range data.Domains {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	// Internal nodes only — the two terminal slots are implied.
	buf = binary.AppendUvarint(buf, uint64(len(data.Levels)-2))
	for _, lv := range data.Levels[2:] {
		buf = binary.AppendUvarint(buf, uint64(lv))
	}
	buf = binary.AppendUvarint(buf, uint64(len(data.Kids)))
	for _, k := range data.Kids {
		buf = binary.AppendUvarint(buf, uint64(k))
	}
	buf = binary.AppendUvarint(buf, uint64(data.Root))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a bounds-checked cursor over the body bytes. Every read
// reports ErrTruncated instead of slicing past the end.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		return 0, fmt.Errorf("%w: %s varint overflows", ErrCorrupt, what)
	}
	r.off += n
	return v, nil
}

// count reads an array length and checks it against both the absolute
// cap and the bytes remaining (each element needs ≥ 1 byte), so a
// hostile length can never trigger an allocation larger than the
// input itself.
func (r *reader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("%w: %s count %d exceeds %d", ErrCorrupt, what, v, max)
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("%w: %s count %d exceeds %d bytes of input", ErrTruncated, what, v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) bytes(what string, n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("%w: %s", ErrTruncated, what)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) float64(what string) (float64, error) {
	b, err := r.bytes(what, 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) string(what string) (string, error) {
	n, err := r.count(what, maxStringLen)
	if err != nil {
		return "", err
	}
	b, err := r.bytes(what, n)
	return string(b), err
}

func (r *reader) int32Array(what string, maxElem uint64) ([]int32, error) {
	n, err := r.count(what, maxCount)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		v, err := r.uvarint(what)
		if err != nil {
			return nil, err
		}
		if v > maxElem {
			return nil, fmt.Errorf("%w: %s[%d] = %d exceeds %d", ErrCorrupt, what, i, v, maxElem)
		}
		out[i] = int32(v)
	}
	return out, nil
}

// Decode parses a compiled model. The returned snapshot has passed
// every structural cross-check (mdd arena validation plus
// yield.Snapshot.Validate), so it is safe to hand to
// yield.RestoreReevaluator. The error, when non-nil, wraps exactly one
// of the typed sentinels above.
func Decode(data []byte) (*yield.Snapshot, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, need ≥ %d", ErrTruncated, len(data), headerLen+trailerLen)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file version %d, decoder reads %d", ErrVersion, v, FormatVersion)
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	r := &reader{data: body, off: headerLen}

	rev, err := r.uvarint("engine revision")
	if err != nil {
		return nil, err
	}
	if rev > math.MaxUint32 {
		return nil, fmt.Errorf("%w: engine revision %d", ErrCorrupt, rev)
	}
	if uint32(rev) != yield.EngineRevision {
		return nil, fmt.Errorf("%w: model revision %d, engine revision %d", ErrEngineRevision, rev, yield.EngineRevision)
	}
	snap := &yield.Snapshot{EngineRevision: uint32(rev)}
	if snap.ModelKey, err = r.string("model key"); err != nil {
		return nil, err
	}
	if snap.SystemName, err = r.string("system name"); err != nil {
		return nil, err
	}
	var fields = []struct {
		what string
		dst  *int
		max  uint64
	}{
		{"components", &snap.Components, maxComponents},
		{"truncation point", &snap.M, maxCount},
	}
	for _, f := range fields {
		v, err := r.uvarint(f.what)
		if err != nil {
			return nil, err
		}
		if v > f.max {
			return nil, fmt.Errorf("%w: %s = %d", ErrCorrupt, f.what, v)
		}
		*f.dst = int(v)
	}
	for _, f := range []struct {
		what string
		dst  *float64
	}{
		{"yield", &snap.Build.Yield},
		{"error bound", &snap.Build.ErrorBound},
		{"P_L", &snap.Build.PL},
		{"lambda prime", &snap.Build.LambdaPrime},
	} {
		if *f.dst, err = r.float64(f.what); err != nil {
			return nil, err
		}
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{
		{"G gates", &snap.Build.GGates},
		{"binary vars", &snap.Build.BinaryVars},
		{"coded-ROBDD size", &snap.Build.CodedROBDDSize},
		{"ROMDD size", &snap.Build.ROMDDSize},
	} {
		v, err := r.uvarint(f.what)
		if err != nil {
			return nil, err
		}
		if v > maxCount {
			return nil, fmt.Errorf("%w: %s = %d", ErrCorrupt, f.what, v)
		}
		*f.dst = int(v)
	}
	nseq, err := r.count("group sequence", maxCount)
	if err != nil {
		return nil, err
	}
	snap.GroupSeq = make([]int, nseq)
	for i := range snap.GroupSeq {
		v, err := r.uvarint("group sequence")
		if err != nil {
			return nil, err
		}
		if v > maxCount {
			return nil, fmt.Errorf("%w: group sequence[%d] = %d", ErrCorrupt, i, v)
		}
		snap.GroupSeq[i] = int(v)
	}
	var fd mdd.FrozenData
	if fd.Domains, err = r.int32Array("domains", maxCount); err != nil {
		return nil, err
	}
	nlevels, err := r.count("node levels", maxCount-2)
	if err != nil {
		return nil, err
	}
	// Reattach the implicit terminal slots at level len(Domains).
	fd.Levels = make([]int32, nlevels+2)
	fd.Levels[0] = int32(len(fd.Domains))
	fd.Levels[1] = int32(len(fd.Domains))
	for i := 2; i < len(fd.Levels); i++ {
		v, err := r.uvarint("node levels")
		if err != nil {
			return nil, err
		}
		if v > maxCount {
			return nil, fmt.Errorf("%w: node level %d", ErrCorrupt, v)
		}
		fd.Levels[i] = int32(v)
	}
	if fd.Kids, err = r.int32Array("child arrays", maxCount); err != nil {
		return nil, err
	}
	root, err := r.uvarint("root")
	if err != nil {
		return nil, err
	}
	if root > maxCount {
		return nil, fmt.Errorf("%w: root %d", ErrCorrupt, root)
	}
	fd.Root = int32(root)
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the root", ErrCorrupt, r.remaining())
	}
	if snap.Frozen, err = mdd.FrozenFromData(fd); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, nil
}
