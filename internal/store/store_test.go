package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"socyield/internal/obs"
)

func openStore(t *testing.T, maxBytes int64) (*Store, *obs.Registry) {
	t.Helper()
	rec := obs.NewRegistry()
	s, err := Open(t.TempDir(), maxBytes, rec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

// stamp backdates an entry's LRU recency to a fixed offset so
// eviction order is deterministic regardless of filesystem timestamp
// granularity.
func stamp(t *testing.T, s *Store, key string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(filepath.Join(s.Dir(), key+ext), when, when); err != nil {
		t.Fatalf("Chtimes(%s): %v", key, err)
	}
}

func TestStorePutGetEvictList(t *testing.T) {
	s, rec := openStore(t, 0)
	if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := s.Put("alpha", []byte("aaaa")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("beta", []byte("bb")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("alpha")
	if err != nil || string(got) != "aaaa" {
		t.Fatalf("Get(alpha) = %q, %v", got, err)
	}
	// Overwrite replaces in place.
	if err := s.Put("alpha", []byte("a2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, err = s.Get("alpha")
	if err != nil || string(got) != "a2" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	entries, err := s.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("List = %v, %v", entries, err)
	}
	if err := s.Evict("alpha"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if err := s.Evict("alpha"); err != nil {
		t.Fatalf("Evict of absent key: %v", err)
	}
	if _, err := s.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Evict = %v, want ErrNotFound", err)
	}
	if got := rec.Counter("store.hits").Load(); got != 2 {
		t.Errorf("store.hits = %d, want 2", got)
	}
	if got := rec.Counter("store.misses").Load(); got != 2 {
		t.Errorf("store.misses = %d, want 2", got)
	}
	if got := rec.Counter("store.puts").Load(); got != 3 {
		t.Errorf("store.puts = %d, want 3", got)
	}
	if got := rec.Gauge("store.entries").Load(); got != 1 {
		t.Errorf("store.entries = %d, want 1", got)
	}
	if got := rec.Gauge("store.bytes").Load(); got != 2 {
		t.Errorf("store.bytes = %d, want 2", got)
	}
}

func TestStoreKeyValidation(t *testing.T) {
	s, _ := openStore(t, 0)
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	for _, key := range []string{"", "../escape", "a/b", "a.b", "a b", "a\x00b", string(long)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, err := s.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q): want a validation error, got %v", key, err)
		}
	}
	// Non-model files in the directory are ignored, not served.
	if err := os.WriteFile(filepath.Join(s.Dir(), "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil || len(entries) != 0 {
		t.Fatalf("List with stray file = %v, %v", entries, err)
	}
}

func TestStoreLRUCap(t *testing.T) {
	s, rec := openStore(t, 10)
	payload := []byte("xxx") // 3 bytes each; three fit under the cap
	for i, key := range []string{"old", "mid", "new"} {
		if err := s.Put(key, payload); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		stamp(t, s, key, time.Duration(3-i)*time.Hour)
	}
	// Touch "old" so "mid" becomes the least recently used.
	if _, err := s.Get("old"); err != nil {
		t.Fatalf("Get(old): %v", err)
	}
	// The fourth entry pushes the total to 12 > 10: exactly one
	// eviction, and it must take "mid", not the freshly used "old".
	if err := s.Put("fresh", payload); err != nil {
		t.Fatalf("Put(fresh): %v", err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	keys := map[string]bool{}
	for _, e := range entries {
		keys[e.Key] = true
	}
	if len(keys) != 3 || !keys["fresh"] || !keys["old"] || !keys["new"] {
		t.Fatalf("after cap enforcement: %v, want {fresh, old, new}", keys)
	}
	if got := rec.Counter("store.evictions").Load(); got != 1 {
		t.Errorf("store.evictions = %d, want 1", got)
	}
	if got := rec.Gauge("store.bytes").Load(); got != 9 {
		t.Errorf("store.bytes = %d, want 9", got)
	}
}

// TestStoreOversizedEntrySurvivesAlone: the just-written entry is never
// evicted, even when it alone exceeds the cap.
func TestStoreOversizedEntrySurvivesAlone(t *testing.T) {
	s, _ := openStore(t, 4)
	if err := s.Put("small", []byte("xx")); err != nil {
		t.Fatalf("Put(small): %v", err)
	}
	stamp(t, s, "small", time.Hour)
	if err := s.Put("huge", []byte("0123456789")); err != nil {
		t.Fatalf("Put(huge): %v", err)
	}
	entries, err := s.List()
	if err != nil || len(entries) != 1 || entries[0].Key != "huge" {
		t.Fatalf("List = %v, %v; want just huge", entries, err)
	}
}

// TestStoreReopenSeesEntries: the store is plain files; a new process
// (here: a second Open on the same directory) inherits everything.
func TestStoreReopenSeesEntries(t *testing.T) {
	rec := obs.NewRegistry()
	dir := t.TempDir()
	s1, err := Open(dir, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s1.Put("persisted", []byte("data")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s2, err := Open(dir, 0, rec)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.Get("persisted")
	if err != nil || string(got) != "data" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
	if got := rec.Gauge("store.entries").Load(); got != 1 {
		t.Errorf("store.entries after reopen = %d, want 1", got)
	}
}

// TestStoreNoTempLeftovers: every Put, including overwrites, cleans up
// its temp file (atomicity means rename, not copy).
func TestStoreNoTempLeftovers(t *testing.T) {
	s, _ := openStore(t, 0)
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte("payload")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	dirents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.Name() != "k"+ext {
			t.Errorf("unexpected file %q in store directory", de.Name())
		}
	}
}

// TestStoreConcurrent hammers one store from many goroutines; the race
// detector plus the absence of decode errors is the assertion.
func TestStoreConcurrent(t *testing.T) {
	s, _ := openStore(t, 1<<20)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := keys[(g+i)%len(keys)]
				switch i % 3 {
				case 0:
					if err := s.Put(key, []byte(key)); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					if data, err := s.Get(key); err == nil && string(data) != key {
						t.Errorf("Get(%s) = %q", key, data)
					}
				default:
					if _, err := s.List(); err != nil {
						t.Errorf("List: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
