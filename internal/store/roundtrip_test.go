package store

import (
	"bytes"
	"math/rand"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/order"
	"socyield/internal/yield"
)

// dist returns the trial's defect distribution, cycling through every
// supported family.
func dist(t *testing.T, trial int, rng *rand.Rand) defects.Distribution {
	t.Helper()
	switch trial % 4 {
	case 0:
		d, err := defects.NewNegativeBinomial(0.5+2*rng.Float64(), 0.5+3*rng.Float64())
		if err != nil {
			t.Fatalf("NewNegativeBinomial: %v", err)
		}
		return d
	case 1:
		d, err := defects.NewPoisson(0.3 + 1.5*rng.Float64())
		if err != nil {
			t.Fatalf("NewPoisson: %v", err)
		}
		return d
	case 2:
		return defects.Geometric{Lambda: 0.5 + rng.Float64()}
	default:
		return defects.Deterministic{N: 1 + rng.Intn(3)}
	}
}

// TestEncodeDecodeRoundTrip is the headline property test: 50 random
// fault trees, all four defect families, both ordering combinations —
// encode → decode → restore must reproduce the compiled model exactly.
// "Exactly" is `==` on every build scalar and on every evaluation the
// restored model performs, including concurrent sweeps.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	orderings := []struct {
		mv  order.MVKind
		bit order.BitKind
	}{
		{order.MVWeight, order.BitML},
		{order.MVWV, order.BitLM},
	}
	for trial := 0; trial < 50; trial++ {
		sys := randomSystem(rng)
		ord := orderings[trial%len(orderings)]
		opts := yield.Options{
			Defects:  dist(t, trial, rng),
			Epsilon:  1e-3 * (0.5 + rng.Float64()),
			MVOrder:  ord.mv,
			BitOrder: ord.bit,
		}
		snap, re := buildSnapshot(t, sys, opts)

		enc, err := Encode(snap)
		if err != nil {
			t.Fatalf("trial %d: Encode: %v", trial, err)
		}
		enc2, err := Encode(snap)
		if err != nil {
			t.Fatalf("trial %d: re-Encode: %v", trial, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("trial %d: Encode is not deterministic", trial)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}

		if got.EngineRevision != snap.EngineRevision || got.ModelKey != snap.ModelKey ||
			got.SystemName != snap.SystemName || got.Components != snap.Components ||
			got.M != snap.M || got.Build != snap.Build {
			t.Fatalf("trial %d: decoded metadata differs:\n got %+v\nwant %+v", trial, got, snap)
		}
		if len(got.GroupSeq) != len(snap.GroupSeq) {
			t.Fatalf("trial %d: group seq length %d vs %d", trial, len(got.GroupSeq), len(snap.GroupSeq))
		}
		for i := range got.GroupSeq {
			if got.GroupSeq[i] != snap.GroupSeq[i] {
				t.Fatalf("trial %d: group seq[%d] = %d, want %d", trial, i, got.GroupSeq[i], snap.GroupSeq[i])
			}
		}
		if got.Frozen.Size() != snap.Frozen.Size() {
			t.Fatalf("trial %d: arena size %d vs %d", trial, got.Frozen.Size(), snap.Frozen.Size())
		}

		loaded, err := yield.RestoreReevaluator(got)
		if err != nil {
			t.Fatalf("trial %d: RestoreReevaluator: %v", trial, err)
		}
		ps := lethalities(sys)
		dists := []defects.Distribution{
			dist(t, trial, rng), dist(t, trial+1, rng), dist(t, trial+2, rng), dist(t, trial+3, rng),
		}
		for _, d := range dists {
			y1, b1, err1 := re.Yield(ps, d)
			y2, b2, err2 := loaded.Yield(ps, d)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: Yield errors: %v / %v", trial, err1, err2)
			}
			if y1 != y2 || b1 != b2 {
				t.Fatalf("trial %d: %v: loaded model evaluates %v/%v, fresh %v/%v", trial, d, y2, b2, y1, b1)
			}
		}
		points := yield.LambdaGrid(ps, dists)
		fresh := re.Sweep(points, yield.SweepOptions{Workers: 2})
		warm := loaded.Sweep(points, yield.SweepOptions{Workers: 3})
		for i := range fresh {
			if fresh[i] != warm[i] {
				t.Fatalf("trial %d: sweep point %d: loaded %+v, fresh %+v", trial, i, warm[i], fresh[i])
			}
		}
	}
}

// TestRoundTripBenchmark round-trips a real benchmark model (the kind
// the store will actually hold) and spot-checks the restored build
// summary against the live one.
func TestRoundTripBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark compile in -short mode")
	}
	snap, re, sys := benchSnapshot(t, "MS2")
	enc, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	loaded, err := yield.RestoreReevaluator(got)
	if err != nil {
		t.Fatalf("RestoreReevaluator: %v", err)
	}
	if loaded.Result.Yield != re.Result.Yield || loaded.Result.ErrorBound != re.Result.ErrorBound ||
		loaded.Result.ROMDDSize != re.Result.ROMDDSize || loaded.M() != re.M() {
		t.Fatalf("restored benchmark differs: %+v vs %+v", loaded.Result, re.Result)
	}
	d, err := defects.NewNegativeBinomial(1.5, 2.0)
	if err != nil {
		t.Fatalf("NewNegativeBinomial: %v", err)
	}
	ps := lethalities(sys)
	y1, b1, err1 := re.Yield(ps, d)
	y2, b2, err2 := loaded.Yield(ps, d)
	if err1 != nil || err2 != nil || y1 != y2 || b1 != b2 {
		t.Fatalf("benchmark reevaluation differs: %v/%v (%v) vs %v/%v (%v)", y2, b2, err2, y1, b1, err1)
	}
}
