package store

import (
	"flag"
	"math"
	"os"
	"testing"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/yield"
)

var update = flag.Bool("update", false, "regenerate the golden compiled-model fixture")

const goldenPath = "testdata/esen4x2.scm"

// Pinned provenance of the golden fixture: ESEN 4×2 under the paper's
// reproduction defaults (negative binomial λ=2, α=3.4, ε=2·10⁻³).
// The integer structure is exact; the yield gets a 1e-12 tolerance
// because Go permits FMA contraction on some architectures, so the
// last bits of a float pipeline are not portable even though each
// single host is deterministic.
const (
	goldenComponents = 26
	goldenM          = 6
	goldenGGates     = 624
	goldenROMDDSize  = 6995
	goldenYield      = 0.8478291396599813
	goldenBound      = 0.001104478751628335
)

// TestGoldenFixtureCompat decodes a fixture encoded by a past build of
// this engine. It is the cross-version compatibility gate: if an
// innocent-looking codec change alters the wire layout, this fails
// before a deploy mixes new binaries with old store directories. On a
// deliberate layout change, bump FormatVersion and regenerate with
// `go test ./internal/store -run TestGoldenFixture -update`.
func TestGoldenFixtureCompat(t *testing.T) {
	sys, opts := goldenModel(t)
	if *update {
		snap, _ := buildSnapshot(t, sys, opts)
		enc, err := Encode(snap)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s: %d bytes, yield %.17g, bound %.17g, M=%d, ROMDD %d nodes",
			goldenPath, len(enc), snap.Build.Yield, snap.Build.ErrorBound, snap.M, snap.Build.ROMDDSize)
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update): %v", err)
	}
	snap, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.SystemName != "ESEN4x2" || snap.Components != goldenComponents || snap.M != goldenM ||
		snap.Build.GGates != goldenGGates || snap.Build.ROMDDSize != goldenROMDDSize {
		t.Fatalf("fixture structure drifted: %+v", snap)
	}
	if math.Abs(snap.Build.Yield-goldenYield) > 1e-12 || math.Abs(snap.Build.ErrorBound-goldenBound) > 1e-12 {
		t.Fatalf("fixture yield drifted: %.17g / %.17g", snap.Build.Yield, snap.Build.ErrorBound)
	}

	// The stored key must be the key this engine computes for the same
	// inputs — otherwise content addressing breaks silently and every
	// lookup misses.
	key, m, err := yield.ModelKey(sys, opts)
	if err != nil {
		t.Fatalf("ModelKey: %v", err)
	}
	if key != snap.ModelKey {
		t.Fatalf("fixture key %s, engine computes %s — ModelKey drifted without an EngineRevision bump?", snap.ModelKey, key)
	}
	if m != snap.M {
		t.Fatalf("fixture M %d, engine computes %d", snap.M, m)
	}

	// A model loaded from a years-old file must still evaluate: restore
	// and reproduce its own build-time yield.
	re, err := yield.RestoreReevaluator(snap)
	if err != nil {
		t.Fatalf("RestoreReevaluator: %v", err)
	}
	y, b, err := re.Yield(lethalities(sys), opts.Defects)
	if err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if math.Abs(y-snap.Build.Yield) > 1e-12 || math.Abs(b-snap.Build.ErrorBound) > 1e-12 {
		t.Fatalf("restored fixture evaluates %.17g/%.17g, build recorded %.17g/%.17g",
			y, b, snap.Build.Yield, snap.Build.ErrorBound)
	}
}

func goldenModel(t *testing.T) (*yield.System, yield.Options) {
	t.Helper()
	sys, err := benchmarks.ByName("ESEN4x2")
	if err != nil {
		t.Fatalf("ESEN4x2: %v", err)
	}
	dist, err := defects.NewNegativeBinomial(2, 3.4)
	if err != nil {
		t.Fatalf("NewNegativeBinomial: %v", err)
	}
	return sys, yield.Options{Defects: dist, Epsilon: 2e-3}
}
