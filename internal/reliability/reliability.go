// Package reliability implements the extension the paper's conclusion
// announces as future work: evaluating the operational reliability of
// a fault-tolerant system-on-chip taking manufacturing defects into
// account.
//
// Model. A die leaves the fab with a random set of defective
// components, distributed exactly as in the yield model (lethal-defect
// count W ~ Q', hits V_l ~ P'). In the field, every component i fails
// independently by time t with probability 1 − R_i(t) (exponential or
// Weibull lifetimes). The system is operational at time t iff the
// fault tree evaluates to 0 on the union of manufacturing-defective
// and field-failed components, so
//
//	R(t) = 1 − P( G(W, V_1..V_M) ∨-composed with field failures = 1 ).
//
// Construction: every fault-tree input x_i is replaced by x_i ∨ b_i,
// where b_i is a fresh independent Bernoulli("field failure of i by
// t") variable; the defect part is encoded exactly as in the yield
// method (Theorem 1) and the b_i remain free binary variables ordered
// after the defect groups. One coded ROBDD is built once; each time
// point costs a single probability traversal in which group layers are
// walked per domain value and b_i levels are weighted by 1 − R_i(t).
// R(0) equals the manufacturing yield Y_M, and every point inherits
// the truncation error bound ≤ ε.
package reliability

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/defects"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/order"
	"socyield/internal/yield"
)

// Lifetime models a component's field-failure process.
type Lifetime interface {
	// Unreliability returns P(component failed by time t), t ≥ 0.
	Unreliability(t float64) float64
	String() string
}

// Exponential is a constant-failure-rate lifetime.
type Exponential struct {
	// Rate is the failure rate λ (per unit time), ≥ 0.
	Rate float64
}

// Unreliability returns 1 − e^(−λt).
func (e Exponential) Unreliability(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * t)
}

func (e Exponential) String() string { return fmt.Sprintf("Exponential(λ=%g)", e.Rate) }

// Weibull is a shape-parameterized lifetime (β > 1: wear-out; β < 1:
// infant mortality).
type Weibull struct {
	Scale float64 // η > 0
	Shape float64 // β > 0
}

// Unreliability returns 1 − e^(−(t/η)^β).
func (w Weibull) Unreliability(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/w.Scale, w.Shape))
}

func (w Weibull) String() string { return fmt.Sprintf("Weibull(η=%g, β=%g)", w.Scale, w.Shape) }

// Options configure a reliability evaluation.
type Options struct {
	// Defects is the manufacturing defect distribution (required).
	Defects defects.Distribution
	// Epsilon is the truncation error requirement on the manufacturing
	// layer (default 1e-4). The reported reliability is pessimistic by
	// at most this much at every time point.
	Epsilon float64
	// Lifetimes gives each component's field-failure model, indexed
	// like System.Components (required, same length).
	Lifetimes []Lifetime
	// MVOrder / BitOrder order the defect variables as in yield.
	MVOrder  order.MVKind
	BitOrder order.BitKind
	// NodeLimit bounds ROBDD nodes (0 = unlimited).
	NodeLimit int
}

// Point is the reliability at one time.
type Point struct {
	T           float64
	Reliability float64 // pessimistic estimate, error ≤ ErrorBound
	ErrorBound  float64
}

// Result is a reliability curve.
type Result struct {
	Points []Point
	// YieldAtZero is R(0), which equals the manufacturing yield Y_M.
	YieldAtZero float64
	// M is the manufacturing truncation point; stats mirror yield.Result.
	M              int
	CodedROBDDSize int
	ROBDDPeak      int
	BuildTime      time.Duration
}

// Curve evaluates the operational reliability at the given time
// points. The construction (one coded ROBDD over defect variables and
// one Bernoulli variable per component) is done once; each time point
// is a probability traversal.
func Curve(sys *yield.System, opts Options, times []float64) (*Result, error) {
	if opts.Defects == nil {
		return nil, errors.New("reliability: Options.Defects is required")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	c := len(sys.Components)
	if len(opts.Lifetimes) != c {
		return nil, fmt.Errorf("reliability: %d lifetimes for %d components", len(opts.Lifetimes), c)
	}
	for i, lt := range opts.Lifetimes {
		if lt == nil {
			return nil, fmt.Errorf("reliability: nil lifetime for component %d", i)
		}
	}
	if len(times) == 0 {
		return nil, errors.New("reliability: no time points")
	}
	for _, t := range times {
		if t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("reliability: invalid time point %v", t)
		}
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-4
	}
	mv := opts.MVOrder
	if mv == 0 {
		mv = order.MVWeight
	}
	bits := opts.BitOrder
	if bits == 0 {
		bits = order.BitML
	}
	if !order.Compatible(mv, bits) {
		return nil, fmt.Errorf("reliability: MV ordering %v incompatible with bit ordering %v", mv, bits)
	}

	pl := sys.PL()
	lethal, err := defects.Thin(opts.Defects, pl)
	if err != nil {
		return nil, err
	}
	m, _, err := defects.TruncationPoint(lethal, eps)
	if err != nil {
		return nil, err
	}
	qprime, tail, err := defects.PMFTable(lethal, m)
	if err != nil {
		return nil, err
	}

	// Extend the fault tree: x_i becomes x_i ∨ b_i where b_i is the
	// component's field-failure indicator, a fresh input declared
	// AFTER the original ones so the defect encoding is untouched.
	ft := sys.FaultTree
	ext := logic.New()
	orig := make([]logic.GateID, c)
	for i, name := range ft.InputNames() {
		orig[i] = ext.Input(name)
	}
	field := make([]logic.GateID, c)
	for i, name := range ft.InputNames() {
		field[i] = ext.Input("field." + name)
	}
	sub := make(map[logic.GateID]logic.GateID, ft.NumNodes())
	var copyGate func(id logic.GateID) logic.GateID
	copyGate = func(id logic.GateID) logic.GateID {
		if to, ok := sub[id]; ok {
			return to
		}
		g := ft.Gate(id)
		var to logic.GateID
		switch g.Kind {
		case logic.InputKind:
			ordI := ft.InputOrdinal(id)
			to = ext.Or(orig[ordI], field[ordI])
		case logic.ConstKind:
			to = ext.Const(g.Value)
		default:
			fan := make([]logic.GateID, len(g.Fanin))
			for j, f := range g.Fanin {
				fan[j] = copyGate(f)
			}
			switch g.Kind {
			case logic.NotKind:
				to = ext.Not(fan[0])
			case logic.AndKind:
				to = ext.And(fan...)
			case logic.OrKind:
				to = ext.Or(fan...)
			case logic.NandKind:
				to = ext.Nand(fan...)
			case logic.NorKind:
				to = ext.Nor(fan...)
			case logic.XorKind:
				to = ext.Xor(fan...)
			case logic.XnorKind:
				to = ext.Xnor(fan...)
			default:
				panic(fmt.Sprintf("reliability: unknown gate kind %v", g.Kind))
			}
		}
		sub[id] = to
		return to
	}
	ext.SetOutput(copyGate(ft.MustOutput()))

	// Synthesize G over the extended tree: only the first c inputs are
	// defect-addressable (keeping the v-domain at C); the field bits
	// pass through as free binary variables.
	gfun, err := encode.BuildGPartial(ext, c, m)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	plan, err := order.Assemble(gfun.Netlist, gfun.Groups, mv, bits)
	if err != nil {
		return nil, err
	}
	// Field bits are not members of any group; Assemble only orders
	// group bits, so place field bits after all groups.
	levels := plan.BinaryLevels
	next := len(plan.BitAtLevel)
	fieldOrds := make([]int, 0, c)
	for ordI, lv := range levels {
		if lv == -1 {
			levels[ordI] = next
			next++
			fieldOrds = append(fieldOrds, ordI)
		}
	}
	bm := bdd.New(gfun.Netlist.NumInputs(), bdd.WithNodeLimit(opts.NodeLimit))
	root, err := compile.Netlist(bm, gfun.Netlist, levels)
	if err != nil {
		return nil, fmt.Errorf("reliability: compiling ROBDD: %w", err)
	}
	res := &Result{
		M:              m,
		CodedROBDDSize: bm.Size(root),
		ROBDDPeak:      bm.PeakLive(),
		BuildTime:      time.Since(start),
	}

	// Probability data per binary level.
	pprime := make([]float64, c)
	for i, comp := range sys.Components {
		pprime[i] = comp.P / pl
	}
	wRow := make([]float64, m+2)
	copy(wRow, qprime)
	wRow[m+1] = tail

	// For the traversal we need, per BDD level, either (a) membership
	// of a defect group with bit significance, or (b) a direct
	// Bernoulli probability (field bits).
	type levelInfo struct {
		group int // -1 for field bits
		bit   uint
		comp  int // component index for field bits
	}
	info := make([]levelInfo, gfun.Netlist.NumInputs())
	for gi, grp := range gfun.Groups {
		nb := len(grp.Bits)
		for j, ordI := range grp.Bits {
			info[levels[ordI]] = levelInfo{group: gi, bit: uint(nb - 1 - j)}
		}
	}
	names := gfun.Netlist.InputNames()
	ftNames := ft.InputNames()
	nameToComp := make(map[string]int, c)
	for i, nm := range ftNames {
		nameToComp[nm] = i
	}
	for _, ordI := range fieldOrds {
		nm := names[ordI]
		ci, ok := nameToComp[nm[len("field."):]]
		if !ok {
			return nil, fmt.Errorf("reliability: cannot map field input %q", nm)
		}
		info[levels[ordI]] = levelInfo{group: -1, comp: ci}
	}
	groupProb := func(gi, val int) float64 {
		if gi == 0 {
			return wRow[val]
		}
		return pprime[val]
	}
	domains := gfun.Domains()

	// One traversal per time point; memoized on (node), probabilities
	// of field bits fixed per t.
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	for _, t := range sorted {
		unrel := make([]float64, c)
		for i, lt := range opts.Lifetimes {
			u := lt.Unreliability(t)
			if u < 0 || u > 1 || math.IsNaN(u) {
				return nil, fmt.Errorf("reliability: lifetime %d returned %v at t=%v", i, u, t)
			}
			unrel[i] = u
		}
		// Handle-indexed memo (the ROBDD is read-only here, so handle
		// values are bounded by NodeBound) — same map-free pattern as
		// convert.Prob.
		memo := make([]float64, bm.NodeBound())
		seen := make([]bool, bm.NodeBound())
		var walk func(n bdd.Node) float64
		walk = func(n bdd.Node) float64 {
			if n == bdd.False {
				return 0
			}
			if n == bdd.True {
				return 1
			}
			if seen[n] {
				return memo[n]
			}
			li := info[bm.Level(n)]
			var total float64
			if li.group == -1 {
				u := unrel[li.comp]
				total = (1-u)*walk(bm.Lo(n)) + u*walk(bm.Hi(n))
			} else {
				// Walk the group's bit layer per domain value.
				for val := 0; val < domains[li.group]; val++ {
					p := groupProb(li.group, val)
					if p == 0 {
						continue
					}
					cur := n
					for !bm.IsTerminal(cur) && info[bm.Level(cur)].group == li.group {
						if val&(1<<info[bm.Level(cur)].bit) != 0 {
							cur = bm.Hi(cur)
						} else {
							cur = bm.Lo(cur)
						}
					}
					total += p * walk(cur)
				}
			}
			memo[n] = total
			seen[n] = true
			return total
		}
		rel := 1 - walk(root)
		res.Points = append(res.Points, Point{T: t, Reliability: rel, ErrorBound: tail})
	}
	res.YieldAtZero = res.Points[0].Reliability
	if sorted[0] != 0 {
		// Recompute R(0) = yield for the caller's convenience.
		y, err := yield.Evaluate(sys, yield.Options{
			Defects: opts.Defects, Epsilon: eps, MVOrder: mv, BitOrder: bits,
			NodeLimit: opts.NodeLimit, ForceM: m, ForceMSet: true,
		})
		if err == nil {
			res.YieldAtZero = y.Yield
		}
	}
	return res, nil
}
