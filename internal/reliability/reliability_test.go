package reliability

import (
	"math"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/yield"
)

func tmr(p1, p2, p3 float64) *yield.System {
	f := logic.New()
	a, b, c := f.Input("a"), f.Input("b"), f.Input("c")
	f.SetOutput(f.Or(f.And(a, b), f.And(a, c), f.And(b, c)))
	return &yield.System{
		Name:       "tmr",
		Components: []yield.Component{{Name: "a", P: p1}, {Name: "b", P: p2}, {Name: "c", P: p3}},
		FaultTree:  f,
	}
}

func expLifetimes(rates ...float64) []Lifetime {
	out := make([]Lifetime, len(rates))
	for i, r := range rates {
		out[i] = Exponential{Rate: r}
	}
	return out
}

// refReliability enumerates the exact R(t): all sequences of k ≤ M
// lethal defect hits and all field-failure subsets.
func refReliability(t *testing.T, sys *yield.System, dist defects.Distribution, eps, tt float64, lts []Lifetime) float64 {
	t.Helper()
	c := len(sys.Components)
	pl := sys.PL()
	lethal, err := defects.Thin(dist, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := defects.TruncationPoint(lethal, eps)
	if err != nil {
		t.Fatal(err)
	}
	qprime, _, err := defects.PMFTable(lethal, m)
	if err != nil {
		t.Fatal(err)
	}
	pprime := make([]float64, c)
	for i, comp := range sys.Components {
		pprime[i] = comp.P / pl
	}
	unrel := make([]float64, c)
	for i, lt := range lts {
		unrel[i] = lt.Unreliability(tt)
	}
	// P(functioning | defect mask D) over field subsets.
	condOK := make([]float64, 1<<c)
	for d := 0; d < 1<<c; d++ {
		total := 0.0
		for b := 0; b < 1<<c; b++ {
			p := 1.0
			assign := make([]bool, c)
			for i := 0; i < c; i++ {
				if b&(1<<i) != 0 {
					p *= unrel[i]
				} else {
					p *= 1 - unrel[i]
				}
				assign[i] = d&(1<<i) != 0 || b&(1<<i) != 0
			}
			down, err := sys.FaultTree.Eval(assign)
			if err != nil {
				t.Fatal(err)
			}
			if !down {
				total += p
			}
		}
		condOK[d] = total
	}
	// Enumerate defect hit sequences per k.
	rel := 0.0
	for k := 0; k <= m; k++ {
		var rec func(l, mask int, prob float64) float64
		rec = func(l, mask int, prob float64) float64 {
			if l == k {
				return prob * condOK[mask]
			}
			total := 0.0
			for i := 0; i < c; i++ {
				total += rec(l+1, mask|(1<<i), prob*pprime[i])
			}
			return total
		}
		rel += qprime[k] * rec(0, 0, 1.0)
	}
	return rel
}

func TestCurveMatchesEnumeration(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist, _ := defects.NewNegativeBinomial(2, 2)
	lts := expLifetimes(0.01, 0.02, 0.015)
	times := []float64{0, 1, 5, 20, 100}
	res, err := Curve(sys, Options{Defects: dist, Epsilon: 5e-3, Lifetimes: lts}, times)
	if err != nil {
		t.Fatalf("Curve: %v", err)
	}
	if len(res.Points) != len(times) {
		t.Fatalf("%d points, want %d", len(res.Points), len(times))
	}
	for _, pt := range res.Points {
		want := refReliability(t, sys, dist, 5e-3, pt.T, lts)
		if math.Abs(pt.Reliability-want) > 1e-10 {
			t.Errorf("R(%v) = %v, want %v", pt.T, pt.Reliability, want)
		}
	}
}

func TestCurveAtZeroEqualsYield(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist, _ := defects.NewNegativeBinomial(2, 2)
	res, err := Curve(sys, Options{
		Defects: dist, Epsilon: 5e-3,
		Lifetimes: expLifetimes(0.1, 0.1, 0.1),
	}, []float64{0})
	if err != nil {
		t.Fatalf("Curve: %v", err)
	}
	y, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(res.Points[0].Reliability-y.Yield) > 1e-12 {
		t.Errorf("R(0) = %v, yield = %v", res.Points[0].Reliability, y.Yield)
	}
	if math.Abs(res.YieldAtZero-y.Yield) > 1e-12 {
		t.Errorf("YieldAtZero = %v, yield = %v", res.YieldAtZero, y.Yield)
	}
}

func TestCurveMonotoneNonIncreasing(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist := defects.Poisson{Lambda: 1}
	times := []float64{0, 0.5, 1, 2, 4, 8, 16, 32, 64}
	res, err := Curve(sys, Options{
		Defects: dist, Lifetimes: expLifetimes(0.05, 0.03, 0.04),
	}, times)
	if err != nil {
		t.Fatalf("Curve: %v", err)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Reliability > res.Points[i-1].Reliability+1e-12 {
			t.Errorf("R increased: %v at t=%v after %v", res.Points[i].Reliability,
				res.Points[i].T, res.Points[i-1].Reliability)
		}
	}
	// With positive rates reliability must eventually drop strictly.
	if res.Points[len(res.Points)-1].Reliability >= res.Points[0].Reliability {
		t.Error("reliability did not decrease over time")
	}
}

func TestCurveZeroRatesStayAtYield(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist := defects.Poisson{Lambda: 1}
	res, err := Curve(sys, Options{
		Defects: dist, Lifetimes: expLifetimes(0, 0, 0),
	}, []float64{0, 10, 1000})
	if err != nil {
		t.Fatalf("Curve: %v", err)
	}
	for _, pt := range res.Points[1:] {
		if math.Abs(pt.Reliability-res.Points[0].Reliability) > 1e-12 {
			t.Errorf("zero-rate R(%v) = %v, want %v", pt.T, pt.Reliability, res.Points[0].Reliability)
		}
	}
}

func TestWeibullLifetime(t *testing.T) {
	w := Weibull{Scale: 10, Shape: 2}
	if got := w.Unreliability(0); got != 0 {
		t.Errorf("Unreliability(0) = %v", got)
	}
	want := 1 - math.Exp(-1) // t = scale
	if got := w.Unreliability(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Unreliability(scale) = %v, want %v", got, want)
	}
	// Must be usable in a curve.
	sys := tmr(0.2, 0.15, 0.15)
	dist := defects.Poisson{Lambda: 1}
	if _, err := Curve(sys, Options{
		Defects:   dist,
		Lifetimes: []Lifetime{w, w, Exponential{Rate: 0.01}},
	}, []float64{0, 5}); err != nil {
		t.Errorf("Curve with Weibull: %v", err)
	}
	if (Exponential{Rate: 1}).String() == "" || w.String() == "" {
		t.Error("empty Stringers")
	}
}

func TestCurveValidation(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist := defects.Poisson{Lambda: 1}
	lts := expLifetimes(0.1, 0.1, 0.1)
	if _, err := Curve(sys, Options{Lifetimes: lts}, []float64{0}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := Curve(sys, Options{Defects: dist, Lifetimes: lts[:2]}, []float64{0}); err == nil {
		t.Error("wrong lifetime count accepted")
	}
	if _, err := Curve(sys, Options{Defects: dist, Lifetimes: []Lifetime{nil, nil, nil}}, []float64{0}); err == nil {
		t.Error("nil lifetime accepted")
	}
	if _, err := Curve(sys, Options{Defects: dist, Lifetimes: lts}, nil); err == nil {
		t.Error("empty time list accepted")
	}
	if _, err := Curve(sys, Options{Defects: dist, Lifetimes: lts}, []float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestCurveStatsPopulated(t *testing.T) {
	sys := tmr(0.2, 0.15, 0.15)
	dist, _ := defects.NewNegativeBinomial(2, 2)
	res, err := Curve(sys, Options{
		Defects: dist, Epsilon: 5e-3, Lifetimes: expLifetimes(0.01, 0.01, 0.01),
	}, []float64{0, 1})
	if err != nil {
		t.Fatalf("Curve: %v", err)
	}
	if res.M != 6 {
		t.Errorf("M = %d, want 6", res.M)
	}
	if res.CodedROBDDSize <= 0 || res.ROBDDPeak < res.CodedROBDDSize {
		t.Errorf("sizes: robdd=%d peak=%d", res.CodedROBDDSize, res.ROBDDPeak)
	}
	for _, pt := range res.Points {
		if pt.ErrorBound <= 0 || pt.ErrorBound > 5e-3 {
			t.Errorf("ErrorBound = %v", pt.ErrorBound)
		}
	}
}
