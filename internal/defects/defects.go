// Package defects models the production of manufacturing defects.
//
// The paper's defect model has two ingredients: a distribution Q_k of
// the number of defects on the die (arbitrary; in practice compound
// Poisson, most often negative binomial) and per-component lethality
// probabilities P_i (probability that a given defect lands on component
// i and is lethal). This package provides the distributions, the
// binomial-thinning transform to the lethal-defect distribution Q'_k
// (equation (1) of the paper, with the closed forms for the negative
// binomial and Poisson families), and the truncation-point selection
// M(ε) that gives the method its strict error control.
package defects

import (
	"errors"
	"fmt"
	"math"
)

// Distribution is a probability distribution over the number of
// defects, k = 0, 1, 2, …
type Distribution interface {
	// PMF returns P(number of defects = k). PMF(k) for k < 0 is 0.
	PMF(k int) float64
	// Mean returns the expected number of defects.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Thinner is implemented by distributions with a closed-form
// binomial-thinning transform: keeping each defect independently with
// probability p yields another distribution of the same family.
type Thinner interface {
	Thin(p float64) Distribution
}

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("defects: invalid parameter")

// NegativeBinomial is the widely used compound-Poisson yield model
// (equation (2) of the paper): mean Lambda and clustering parameter
// Alpha (clustering increases as Alpha decreases). Geometric is the
// special case Alpha = 1; the Poisson limit is Alpha → ∞.
type NegativeBinomial struct {
	Lambda float64 // expected number of defects, > 0
	Alpha  float64 // clustering parameter, > 0
}

// NewNegativeBinomial validates the parameters.
func NewNegativeBinomial(lambda, alpha float64) (NegativeBinomial, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return NegativeBinomial{}, fmt.Errorf("%w: negative binomial lambda = %v, need > 0", ErrBadParam, lambda)
	}
	if !(alpha > 0) || math.IsInf(alpha, 0) {
		return NegativeBinomial{}, fmt.Errorf("%w: negative binomial alpha = %v, need > 0", ErrBadParam, alpha)
	}
	return NegativeBinomial{Lambda: lambda, Alpha: alpha}, nil
}

// PMF returns Γ(α+k)/(k!Γ(α)) · (λ/α)^k / (1+λ/α)^(α+k).
func (d NegativeBinomial) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	r := d.Lambda / d.Alpha
	lg1, _ := math.Lgamma(d.Alpha + float64(k))
	lg2, _ := math.Lgamma(float64(k) + 1)
	lg3, _ := math.Lgamma(d.Alpha)
	logp := lg1 - lg2 - lg3 + float64(k)*math.Log(r) - (d.Alpha+float64(k))*math.Log1p(r)
	return math.Exp(logp)
}

// Mean returns Lambda.
func (d NegativeBinomial) Mean() float64 { return d.Lambda }

// Thin returns the lethal-defect distribution: negative binomial with
// mean p·Lambda and the same clustering parameter (Koren, Koren &
// Stapper 1993, as used by the paper).
func (d NegativeBinomial) Thin(p float64) Distribution {
	return NegativeBinomial{Lambda: p * d.Lambda, Alpha: d.Alpha}
}

func (d NegativeBinomial) String() string {
	return fmt.Sprintf("NegativeBinomial(λ=%g, α=%g)", d.Lambda, d.Alpha)
}

// Poisson is the no-clustering defect model.
type Poisson struct {
	Lambda float64 // expected number of defects, > 0
}

// NewPoisson validates the parameter.
func NewPoisson(lambda float64) (Poisson, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return Poisson{}, fmt.Errorf("%w: poisson lambda = %v, need > 0", ErrBadParam, lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// PMF returns e^-λ λ^k / k!.
func (d Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(d.Lambda) - d.Lambda - lg)
}

// Mean returns Lambda.
func (d Poisson) Mean() float64 { return d.Lambda }

// Thin returns Poisson(p·Lambda): Poisson thinning.
func (d Poisson) Thin(p float64) Distribution { return Poisson{Lambda: p * d.Lambda} }

func (d Poisson) String() string { return fmt.Sprintf("Poisson(λ=%g)", d.Lambda) }

// Geometric is the negative binomial with clustering parameter 1,
// parameterized by its mean.
type Geometric struct {
	Lambda float64 // mean, > 0
}

// PMF returns (1-p)p^k with p = λ/(1+λ).
func (d Geometric) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	p := d.Lambda / (1 + d.Lambda)
	return (1 - p) * math.Pow(p, float64(k))
}

// Mean returns Lambda.
func (d Geometric) Mean() float64 { return d.Lambda }

// Thin returns Geometric(p·Lambda).
func (d Geometric) Thin(p float64) Distribution { return Geometric{Lambda: p * d.Lambda} }

func (d Geometric) String() string { return fmt.Sprintf("Geometric(λ=%g)", d.Lambda) }

// Deterministic places all mass on exactly N defects; useful for
// what-if analyses ("yield given exactly k defects") and tests.
type Deterministic struct {
	N int
}

// PMF is the indicator of k == N.
func (d Deterministic) PMF(k int) float64 {
	if k == d.N {
		return 1
	}
	return 0
}

// Mean returns N.
func (d Deterministic) Mean() float64 { return float64(d.N) }

// Thin returns Binomial(N, p).
func (d Deterministic) Thin(p float64) Distribution { return Binomial{N: d.N, P: p} }

func (d Deterministic) String() string { return fmt.Sprintf("Deterministic(%d)", d.N) }

// Binomial is the distribution of surviving defects after thinning a
// deterministic count.
type Binomial struct {
	N int
	P float64
}

// PMF returns C(N,k) P^k (1-P)^(N-k).
func (d Binomial) PMF(k int) float64 {
	if k < 0 || k > d.N {
		return 0
	}
	return math.Exp(logChoose(d.N, k) + float64(k)*math.Log(d.P) + float64(d.N-k)*math.Log1p(-d.P))
}

// Mean returns N·P.
func (d Binomial) Mean() float64 { return float64(d.N) * d.P }

// Thin composes thinnings: Binomial(N, P·p).
func (d Binomial) Thin(p float64) Distribution { return Binomial{N: d.N, P: d.P * p} }

func (d Binomial) String() string { return fmt.Sprintf("Binomial(n=%d, p=%g)", d.N, d.P) }

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n) + 1)
	b, _ := math.Lgamma(float64(k) + 1)
	c, _ := math.Lgamma(float64(n-k) + 1)
	return a - b - c
}

// numericThinned implements equation (1) of the paper for arbitrary
// defect distributions without a closed-form thinning:
//
//	Q'_k = Σ_{m≥k} Q_m · C(m,k) · p^k (1-p)^(m-k)
//
// The outer sum is truncated once the base distribution's mass is
// covered to within covTol.
type numericThinned struct {
	base   Distribution
	p      float64
	covTol float64
	maxM   int
}

func (d numericThinned) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	total := 0.0
	covered := 0.0
	lp, lq := math.Log(d.p), math.Log1p(-d.p)
	for m := 0; m <= d.maxM; m++ {
		qm := d.base.PMF(m)
		covered += qm
		if m >= k && qm > 0 {
			var term float64
			if d.p == 1 {
				if m == k {
					term = qm
				}
			} else {
				term = qm * math.Exp(logChoose(m, k)+float64(k)*lp+float64(m-k)*lq)
			}
			total += term
		}
		if covered >= 1-d.covTol && m >= k {
			break
		}
	}
	return total
}

func (d numericThinned) Mean() float64 { return d.p * d.base.Mean() }

func (d numericThinned) String() string {
	return fmt.Sprintf("Thinned(%v, p=%g)", d.base, d.p)
}

// Thin returns the distribution of lethal defects when each defect is
// independently lethal-on-some-component with probability pL (the
// paper's P_L = Σ_i P_i). Distributions implementing Thinner use their
// closed form; any other distribution is thinned numerically via
// equation (1).
func Thin(d Distribution, pL float64) (Distribution, error) {
	if !(pL > 0 && pL <= 1) {
		return nil, fmt.Errorf("%w: thinning probability %v outside (0,1]", ErrBadParam, pL)
	}
	if pL == 1 {
		return d, nil
	}
	if t, ok := d.(Thinner); ok {
		return t.Thin(pL), nil
	}
	return numericThinned{base: d, p: pL, covTol: 1e-12, maxM: 100000}, nil
}

// maxTruncation bounds the truncation search; distributions needing a
// larger M make the combinatorial method intractable anyway.
const maxTruncation = 100000

// ErrNoTruncation is returned when no truncation point satisfying the
// error requirement is found within the search bound.
var ErrNoTruncation = errors.New("defects: no truncation point found (tail too heavy or eps too small)")

// TruncationPoint returns the paper's M = min{ m ≥ 0 : Σ_{k≤m} Q'_k ≥
// 1−eps } together with the actual tail mass 1 − Σ_{k≤M} Q'_k, which
// bounds the absolute yield error from below-truncation.
func TruncationPoint(d Distribution, eps float64) (m int, tail float64, err error) {
	if !(eps > 0 && eps < 1) {
		return 0, 0, fmt.Errorf("%w: eps = %v outside (0,1)", ErrBadParam, eps)
	}
	covered := 0.0
	for k := 0; k <= maxTruncation; k++ {
		covered += d.PMF(k)
		if covered >= 1-eps {
			t := 1 - covered
			if t < 0 {
				t = 0
			}
			return k, t, nil
		}
	}
	return 0, 0, ErrNoTruncation
}

// PMFTable returns [Q'_0 … Q'_M] and the tail mass 1 − ΣQ'_k. This is
// the distribution of the paper's random variable W, whose value M+1
// carries the tail.
func PMFTable(d Distribution, m int) (pmf []float64, tail float64, err error) {
	if m < 0 {
		return nil, 0, fmt.Errorf("%w: truncation point %d < 0", ErrBadParam, m)
	}
	pmf = make([]float64, m+1)
	sum := 0.0
	for k := 0; k <= m; k++ {
		pmf[k] = d.PMF(k)
		sum += pmf[k]
	}
	tail = 1 - sum
	if tail < 0 {
		tail = 0
	}
	return pmf, tail, nil
}
