package defects

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLogarithmicBasics(t *testing.T) {
	d, err := NewLogarithmic(0.6)
	if err != nil {
		t.Fatalf("NewLogarithmic: %v", err)
	}
	if d.PMF(0) != 0 {
		t.Error("PMF(0) != 0")
	}
	// PMF(1) = -θ/ln(1-θ).
	want := -0.6 / math.Log(0.4)
	if got := d.PMF(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(1) = %v, want %v", got, want)
	}
	if s := pmfSum(d, 500); math.Abs(s-1) > 1e-12 {
		t.Errorf("sum = %v", s)
	}
	if m := pmfMean(d, 500); math.Abs(m-d.Mean()) > 1e-9 {
		t.Errorf("empirical mean %v vs Mean() %v", m, d.Mean())
	}
	for _, th := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewLogarithmic(th); !errors.Is(err, ErrBadParam) {
			t.Errorf("theta=%v accepted", th)
		}
	}
}

// TestCompoundPoissonEqualsNegativeBinomial checks the classical
// identity the paper's model family rests on: Poisson-many logarithmic
// clusters form a negative binomial.
func TestCompoundPoissonEqualsNegativeBinomial(t *testing.T) {
	lambda, alpha := 2.0, 0.5
	r := lambda / alpha
	theta := r / (1 + r)
	logd, err := NewLogarithmic(theta)
	if err != nil {
		t.Fatalf("NewLogarithmic: %v", err)
	}
	cp, err := NewCompoundPoisson(alpha*math.Log(1+r), logd)
	if err != nil {
		t.Fatalf("NewCompoundPoisson: %v", err)
	}
	nb, _ := NewNegativeBinomial(lambda, alpha)
	for k := 0; k < 30; k++ {
		if diff := math.Abs(cp.PMF(k) - nb.PMF(k)); diff > 1e-10 {
			t.Errorf("k=%d: compound %v vs NB %v", k, cp.PMF(k), nb.PMF(k))
		}
	}
	if math.Abs(cp.Mean()-lambda) > 1e-9 {
		t.Errorf("Mean = %v, want %v", cp.Mean(), lambda)
	}
}

func TestCompoundPoissonConstantClusters(t *testing.T) {
	// Clusters of exactly 1 defect: plain Poisson.
	cp, err := NewCompoundPoisson(1.5, Deterministic{N: 1})
	if err != nil {
		t.Fatalf("NewCompoundPoisson: %v", err)
	}
	pois := Poisson{Lambda: 1.5}
	for k := 0; k < 20; k++ {
		if diff := math.Abs(cp.PMF(k) - pois.PMF(k)); diff > 1e-12 {
			t.Errorf("k=%d: %v vs %v", k, cp.PMF(k), pois.PMF(k))
		}
	}
	// Clusters of exactly 2: only even counts.
	cp2, _ := NewCompoundPoisson(1, Deterministic{N: 2})
	if cp2.PMF(3) > 1e-15 {
		t.Errorf("odd count with size-2 clusters: %v", cp2.PMF(3))
	}
	if cp2.PMF(2) <= 0 {
		t.Error("PMF(2) = 0")
	}
	if math.Abs(cp2.Mean()-2) > 1e-9 {
		t.Errorf("Mean = %v, want 2", cp2.Mean())
	}
}

func TestCompoundPoissonValidation(t *testing.T) {
	if _, err := NewCompoundPoisson(0, Deterministic{N: 1}); !errors.Is(err, ErrBadParam) {
		t.Error("rate 0 accepted")
	}
	if _, err := NewCompoundPoisson(1, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil cluster size accepted")
	}
	cp, _ := NewCompoundPoisson(1, Deterministic{N: 1})
	if cp.PMF(-1) != 0 {
		t.Error("PMF(-1) != 0")
	}
}

// TestCompoundPoissonThinningClosure: thinning a compound Poisson must
// equal the numerically thinned total-count distribution — verified
// against the NB closed form through the logarithmic representation.
func TestCompoundPoissonThinningClosure(t *testing.T) {
	lambda, alpha, p := 2.0, 1.0, 0.5
	r := lambda / alpha
	logd, _ := NewLogarithmic(r / (1 + r))
	cp, _ := NewCompoundPoisson(alpha*math.Log(1+r), logd)
	thinned, err := Thin(cp, p)
	if err != nil {
		t.Fatalf("Thin: %v", err)
	}
	nbThinned := NegativeBinomial{Lambda: p * lambda, Alpha: alpha}
	for k := 0; k < 20; k++ {
		if diff := math.Abs(thinned.PMF(k) - nbThinned.PMF(k)); diff > 1e-8 {
			t.Errorf("k=%d: thinned compound %v vs thinned NB %v", k, thinned.PMF(k), nbThinned.PMF(k))
		}
	}
	if math.Abs(thinned.Mean()-p*lambda) > 1e-6 {
		t.Errorf("thinned mean = %v, want %v", thinned.Mean(), p*lambda)
	}
}

// Property: compound Poisson PMFs are proper distributions for random
// parameters.
func TestQuickCompoundPoissonProper(t *testing.T) {
	f := func(r8, t8 uint8) bool {
		rate := 0.2 + 2*float64(r8)/255
		theta := 0.05 + 0.6*float64(t8)/255
		logd, err := NewLogarithmic(theta)
		if err != nil {
			return false
		}
		cp, err := NewCompoundPoisson(rate, logd)
		if err != nil {
			return false
		}
		sum := 0.0
		for k := 0; k < 80; k++ {
			p := cp.PMF(k)
			if p < -1e-15 {
				return false
			}
			sum += p
		}
		return sum > 0.995 && sum < 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestCompoundPoissonUsableInEvaluate(t *testing.T) {
	// The truncation machinery must accept it end to end.
	logd, _ := NewLogarithmic(0.5)
	cp, _ := NewCompoundPoisson(1, logd)
	m, tail, err := TruncationPoint(cp, 1e-3)
	if err != nil {
		t.Fatalf("TruncationPoint: %v", err)
	}
	if m <= 0 || tail > 1e-3 {
		t.Errorf("M=%d tail=%v", m, tail)
	}
}
