package defects

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func pmfSum(d Distribution, upTo int) float64 {
	s := 0.0
	for k := 0; k <= upTo; k++ {
		s += d.PMF(k)
	}
	return s
}

func pmfMean(d Distribution, upTo int) float64 {
	s := 0.0
	for k := 0; k <= upTo; k++ {
		s += float64(k) * d.PMF(k)
	}
	return s
}

func TestNegativeBinomialPMF(t *testing.T) {
	d, err := NewNegativeBinomial(2, 0.25)
	if err != nil {
		t.Fatalf("NewNegativeBinomial: %v", err)
	}
	// Q_0 = (1+λ/α)^-α = 9^-0.25.
	want := math.Pow(9, -0.25)
	if got := d.PMF(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(0) = %v, want %v", got, want)
	}
	// Q_1 = α·(λ/α)/(1+λ/α)^(α+1) = 0.25·8/9^1.25.
	want1 := 0.25 * 8 / math.Pow(9, 1.25)
	if got := d.PMF(1); math.Abs(got-want1) > 1e-12 {
		t.Errorf("PMF(1) = %v, want %v", got, want1)
	}
	if d.PMF(-1) != 0 {
		t.Error("PMF(-1) != 0")
	}
	if s := pmfSum(d, 5000); math.Abs(s-1) > 1e-9 {
		t.Errorf("PMF does not sum to 1: %v", s)
	}
	if m := pmfMean(d, 5000); math.Abs(m-2) > 1e-6 {
		t.Errorf("empirical mean = %v, want 2", m)
	}
}

func TestNegativeBinomialValidation(t *testing.T) {
	cases := []struct{ lambda, alpha float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.Inf(1), 1}, {1, math.Inf(1)}, {math.NaN(), 1},
	}
	for _, c := range cases {
		if _, err := NewNegativeBinomial(c.lambda, c.alpha); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewNegativeBinomial(%v,%v): err = %v, want ErrBadParam", c.lambda, c.alpha, err)
		}
	}
}

func TestPoissonPMF(t *testing.T) {
	d, err := NewPoisson(1.5)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	if got, want := d.PMF(0), math.Exp(-1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(0) = %v, want %v", got, want)
	}
	if got, want := d.PMF(2), math.Exp(-1.5)*1.5*1.5/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(2) = %v, want %v", got, want)
	}
	if s := pmfSum(d, 200); math.Abs(s-1) > 1e-12 {
		t.Errorf("sum = %v", s)
	}
	if _, err := NewPoisson(0); !errors.Is(err, ErrBadParam) {
		t.Error("NewPoisson(0) accepted")
	}
}

func TestGeometricMatchesNB1(t *testing.T) {
	g := Geometric{Lambda: 1.7}
	nb := NegativeBinomial{Lambda: 1.7, Alpha: 1}
	for k := 0; k < 40; k++ {
		if math.Abs(g.PMF(k)-nb.PMF(k)) > 1e-12 {
			t.Errorf("geometric(%d) = %v, NB(α=1) = %v", k, g.PMF(k), nb.PMF(k))
		}
	}
	if s := pmfSum(g, 2000); math.Abs(s-1) > 1e-9 {
		t.Errorf("sum = %v", s)
	}
}

func TestDeterministicAndBinomial(t *testing.T) {
	d := Deterministic{N: 3}
	if d.PMF(3) != 1 || d.PMF(2) != 0 || d.Mean() != 3 {
		t.Error("deterministic pmf/mean wrong")
	}
	th, err := Thin(d, 0.5)
	if err != nil {
		t.Fatalf("Thin: %v", err)
	}
	b, ok := th.(Binomial)
	if !ok {
		t.Fatalf("Thin(Deterministic) = %T, want Binomial", th)
	}
	if b.Mean() != 1.5 {
		t.Errorf("Binomial mean = %v, want 1.5", b.Mean())
	}
	// Binomial(3, 0.5): PMF(k) = C(3,k)/8.
	wants := []float64{1.0 / 8, 3.0 / 8, 3.0 / 8, 1.0 / 8}
	for k, w := range wants {
		if got := b.PMF(k); math.Abs(got-w) > 1e-12 {
			t.Errorf("Binomial PMF(%d) = %v, want %v", k, got, w)
		}
	}
	if b.PMF(4) != 0 || b.PMF(-1) != 0 {
		t.Error("Binomial out-of-support PMF != 0")
	}
	// Composition of thinnings.
	th2, _ := Thin(th, 0.5)
	if got := th2.(Binomial).P; got != 0.25 {
		t.Errorf("composed thinning P = %v, want 0.25", got)
	}
}

func TestThinClosedForms(t *testing.T) {
	nb, _ := NewNegativeBinomial(4, 0.25)
	th, err := Thin(nb, 0.5)
	if err != nil {
		t.Fatalf("Thin: %v", err)
	}
	got, ok := th.(NegativeBinomial)
	if !ok {
		t.Fatalf("Thin(NB) = %T, want NegativeBinomial", th)
	}
	if got.Lambda != 2 || got.Alpha != 0.25 {
		t.Errorf("thinned NB = %+v, want λ=2 α=0.25", got)
	}
	p, _ := NewPoisson(3)
	tp, _ := Thin(p, 1.0/3)
	if got := tp.(Poisson).Lambda; math.Abs(got-1) > 1e-15 {
		t.Errorf("thinned Poisson λ = %v, want 1", got)
	}
}

func TestThinValidation(t *testing.T) {
	nb, _ := NewNegativeBinomial(1, 1)
	for _, p := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := Thin(nb, p); !errors.Is(err, ErrBadParam) {
			t.Errorf("Thin(p=%v): err = %v, want ErrBadParam", p, err)
		}
	}
	th, err := Thin(nb, 1)
	if err != nil || th != Distribution(nb) {
		t.Errorf("Thin(p=1) should be identity, got %v, %v", th, err)
	}
}

// plainDist hides the Thinner implementation to exercise the numeric
// thinning path of equation (1).
type plainDist struct{ d Distribution }

func (p plainDist) PMF(k int) float64 { return p.d.PMF(k) }
func (p plainDist) Mean() float64     { return p.d.Mean() }
func (p plainDist) String() string    { return "plain(" + p.d.String() + ")" }

func TestNumericThinningMatchesClosedForm(t *testing.T) {
	// Thinning an NB numerically must agree with the closed form —
	// this is precisely the consistency statement of equation (1) and
	// the Koren–Koren–Stapper result the paper invokes.
	for _, alpha := range []float64{0.25, 1, 4} {
		for _, pL := range []float64{0.1, 0.5, 0.9} {
			nb, _ := NewNegativeBinomial(2, alpha)
			closed, _ := Thin(nb, pL)
			numeric, err := Thin(plainDist{nb}, pL)
			if err != nil {
				t.Fatalf("Thin: %v", err)
			}
			for k := 0; k < 25; k++ {
				c, n := closed.PMF(k), numeric.PMF(k)
				if math.Abs(c-n) > 1e-9 {
					t.Errorf("α=%v pL=%v k=%d: closed %v vs numeric %v", alpha, pL, k, c, n)
				}
			}
			if math.Abs(numeric.Mean()-pL*2) > 1e-12 {
				t.Errorf("numeric mean = %v, want %v", numeric.Mean(), pL*2)
			}
		}
	}
}

func TestTruncationPoint(t *testing.T) {
	p, _ := NewPoisson(1)
	m, tail, err := TruncationPoint(p, 1e-4)
	if err != nil {
		t.Fatalf("TruncationPoint: %v", err)
	}
	// Poisson(1): Σ_{k≤5} ≈ 0.999406 < 1-1e-4, Σ_{k≤6} ≈ 0.999917 ≥.
	if m != 6 {
		t.Errorf("M = %d, want 6", m)
	}
	if tail <= 0 || tail > 1e-4 {
		t.Errorf("tail = %v, want in (0, 1e-4]", tail)
	}
	// M is minimal: removing a term must violate the requirement.
	if got := pmfSum(p, m-1); got >= 1-1e-4 {
		t.Errorf("M not minimal: Σ_{k≤%d} = %v", m-1, got)
	}
	for _, eps := range []float64{0, 1, -0.1, math.NaN()} {
		if _, _, err := TruncationPoint(p, eps); !errors.Is(err, ErrBadParam) {
			t.Errorf("eps=%v: err = %v, want ErrBadParam", eps, err)
		}
	}
}

// TestPaperTruncationCalibration pins the reproduction constants: with
// α = 2 and ε = 5e-3, λ′ = 1 gives M = 6 and λ′ = 2 gives M = 10 —
// the truncation points Section 4 of the paper reports.
func TestPaperTruncationCalibration(t *testing.T) {
	for _, tc := range []struct {
		lambdaPrime float64
		wantM       int
	}{{1, 6}, {2, 10}} {
		nb, _ := NewNegativeBinomial(tc.lambdaPrime, 2)
		m, tail, err := TruncationPoint(nb, 5e-3)
		if err != nil {
			t.Fatalf("TruncationPoint: %v", err)
		}
		if m != tc.wantM {
			t.Errorf("λ'=%v: M = %d, want %d", tc.lambdaPrime, m, tc.wantM)
		}
		if tail > 5e-3 {
			t.Errorf("λ'=%v: tail %v exceeds ε", tc.lambdaPrime, tail)
		}
	}
}

func TestPMFTable(t *testing.T) {
	p, _ := NewPoisson(1)
	pmf, tail, err := PMFTable(p, 3)
	if err != nil {
		t.Fatalf("PMFTable: %v", err)
	}
	if len(pmf) != 4 {
		t.Fatalf("len = %d, want 4", len(pmf))
	}
	sum := tail
	for _, q := range pmf {
		sum += q
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf+tail = %v, want 1", sum)
	}
	if _, _, err := PMFTable(p, -1); !errors.Is(err, ErrBadParam) {
		t.Error("negative M accepted")
	}
}

func TestHeavyTailTruncationFails(t *testing.T) {
	// An extremely clustered NB cannot be truncated at tiny eps within
	// the bound... actually NB always has geometric-ish tails, so use
	// eps below achievable precision instead.
	nb, _ := NewNegativeBinomial(10000, 0.01)
	if _, _, err := TruncationPoint(nb, 1e-300); !errors.Is(err, ErrNoTruncation) {
		t.Errorf("want ErrNoTruncation, got %v", err)
	}
}

// Property: thinning preserves total mass and scales the mean by p for
// random NB parameters.
func TestQuickThinningInvariants(t *testing.T) {
	f := func(l8, a8, p8 uint8) bool {
		lambda := 0.1 + float64(l8%40)/10 // 0.1 .. 4.0
		alpha := 0.25 + float64(a8%16)/4  // 0.25 .. 4.0
		p := 0.05 + 0.9*float64(p8)/255   // 0.05 .. 0.95
		nb, err := NewNegativeBinomial(lambda, alpha)
		if err != nil {
			return false
		}
		th, err := Thin(nb, p)
		if err != nil {
			return false
		}
		if math.Abs(th.Mean()-p*lambda) > 1e-12 {
			return false
		}
		return math.Abs(pmfSum(th, 4000)-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the truncation point is minimal and its tail honours eps.
func TestQuickTruncationMinimality(t *testing.T) {
	f := func(l8, e8 uint8) bool {
		lambda := 0.2 + float64(l8%30)/10
		eps := math.Pow(10, -1-float64(e8%5)) // 1e-1 .. 1e-5
		nb, err := NewNegativeBinomial(lambda, 2)
		if err != nil {
			return false
		}
		m, tail, err := TruncationPoint(nb, eps)
		if err != nil {
			return false
		}
		if tail > eps {
			return false
		}
		if m > 0 && pmfSum(nb, m-1) >= 1-eps {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	nb, _ := NewNegativeBinomial(2, 0.25)
	for _, s := range []string{
		nb.String(),
		Poisson{Lambda: 1}.String(),
		Geometric{Lambda: 1}.String(),
		Deterministic{N: 2}.String(),
		Binomial{N: 2, P: 0.5}.String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
	th, _ := Thin(plainDist{nb}, 0.5)
	if th.String() == "" {
		t.Error("numericThinned String empty")
	}
}
