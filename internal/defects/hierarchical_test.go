package defects

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMultilevelValidation(t *testing.T) {
	cases := []struct {
		lambda float64
		alphas []float64
	}{
		{0, []float64{1}},
		{-1, []float64{1}},
		{math.Inf(1), []float64{1}},
		{1, nil},
		{1, []float64{0}},
		{1, []float64{2, -1}},
		{1, []float64{2, math.Inf(1)}},
		{1, []float64{1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		if _, err := NewMultilevel(c.lambda, c.alphas...); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewMultilevel(%v, %v): err = %v, want ErrBadParam", c.lambda, c.alphas, err)
		}
	}
	if _, err := NewHierarchical(1, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Error("NewHierarchical(1,0,1) accepted")
	}
}

// TestMultilevelSingleLevelIsNB pins the L = 1 boundary: one level of
// clustering mixes nothing, so the PMF is the negative binomial's
// closed form exactly (same float operations, not just close).
func TestMultilevelSingleLevelIsNB(t *testing.T) {
	for _, alpha := range []float64{0.25, 1, 3.4} {
		ml, err := NewMultilevel(2, alpha)
		if err != nil {
			t.Fatalf("NewMultilevel: %v", err)
		}
		nb, _ := NewNegativeBinomial(2, alpha)
		for k := 0; k < 50; k++ {
			if got, want := ml.PMF(k), nb.PMF(k); math.Abs(got-want) > 1e-15 {
				t.Errorf("α=%v k=%d: multilevel %v vs NB %v", alpha, k, got, want)
			}
		}
	}
}

// TestHierarchicalDegeneratesToNB checks both boundary directions of
// the two-level model: a huge wafer-level β concentrates its gamma
// factor at 1 and leaves NB(λ, α); a huge chip-level α turns the inner
// NB into a Poisson, whose wafer-gamma mixture is NB(λ, β).
func TestHierarchicalDegeneratesToNB(t *testing.T) {
	const big = 1e7
	lambda := 1.5
	h1, err := NewHierarchical(lambda, 2, big)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	nbAlpha, _ := NewNegativeBinomial(lambda, 2)
	h2, err := NewHierarchical(lambda, big, 3)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	nbBeta, _ := NewNegativeBinomial(lambda, 3)
	for k := 0; k < 30; k++ {
		if got, want := h1.PMF(k), nbAlpha.PMF(k); math.Abs(got-want) > 1e-6 {
			t.Errorf("β→∞ k=%d: hierarchical %v vs NB(λ,α) %v", k, got, want)
		}
		if got, want := h2.PMF(k), nbBeta.PMF(k); math.Abs(got-want) > 1e-6 {
			t.Errorf("α→∞ k=%d: hierarchical %v vs NB(λ,β) %v", k, got, want)
		}
	}
}

// TestMultilevelDegeneratesToCompoundPoisson closes the loop with the
// other clustering family in the package: NB(λ, α) — the single-level
// boundary of Multilevel — must equal the compound Poisson with
// logarithmic cluster sizes, CompoundPoisson(α·ln(1+λ/α), Log(θ)),
// θ = (λ/α)/(1+λ/α).
func TestMultilevelDegeneratesToCompoundPoisson(t *testing.T) {
	lambda, alpha := 1.8, 1.25
	ml, err := NewMultilevel(lambda, alpha)
	if err != nil {
		t.Fatalf("NewMultilevel: %v", err)
	}
	r := lambda / alpha
	log, err := NewLogarithmic(r / (1 + r))
	if err != nil {
		t.Fatalf("NewLogarithmic: %v", err)
	}
	cp, err := NewCompoundPoisson(alpha*math.Log1p(r), log)
	if err != nil {
		t.Fatalf("NewCompoundPoisson: %v", err)
	}
	for k := 0; k < 25; k++ {
		if got, want := ml.PMF(k), cp.PMF(k); math.Abs(got-want) > 1e-10 {
			t.Errorf("k=%d: multilevel %v vs compound Poisson %v", k, got, want)
		}
	}
}

// TestMultilevelPMFIsDistribution: the PMF is nonnegative, sums to 1
// and reproduces the declared mean for representative parameter sets,
// including deep nesting and strong clustering.
func TestMultilevelPMFIsDistribution(t *testing.T) {
	cases := []struct {
		lambda float64
		alphas []float64
	}{
		{1, []float64{2, 3}},
		{2, []float64{0.5, 1.5}},
		{0.5, []float64{3.4, 2, 1}},
		{1.2, []float64{1, 1, 1, 1}},
	}
	for _, c := range cases {
		d, err := NewMultilevel(c.lambda, c.alphas...)
		if err != nil {
			t.Fatalf("NewMultilevel(%v, %v): %v", c.lambda, c.alphas, err)
		}
		sum, mean := 0.0, 0.0
		for k := 0; k <= 4000; k++ {
			p := d.PMF(k)
			if p < 0 {
				t.Fatalf("%v: PMF(%d) = %v < 0", d, k, p)
			}
			sum += p
			mean += float64(k) * p
			if 1-sum < 1e-12 {
				break
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: PMF sums to %v", d, sum)
		}
		if math.Abs(mean-c.lambda) > 1e-5*c.lambda {
			t.Errorf("%v: empirical mean %v, want %v", d, mean, c.lambda)
		}
		if d.PMF(-1) != 0 {
			t.Errorf("%v: PMF(-1) != 0", d)
		}
	}
}

// TestHierarchicalThinCommutesWithMeanScaling: Thin(p) is closed-form
// (Poisson thinning commutes with the gamma mixing), scales the mean
// by exactly p, preserves total mass, and agrees with the generic
// numeric thinning of equation (1).
func TestHierarchicalThinCommutesWithMeanScaling(t *testing.T) {
	h, err := NewHierarchical(2, 2, 3)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	for _, p := range []float64{0.2, 0.5, 0.9} {
		th, err := Thin(h, p)
		if err != nil {
			t.Fatalf("Thin: %v", err)
		}
		if _, ok := th.(Hierarchical); !ok {
			t.Fatalf("Thin(Hierarchical) = %T, want Hierarchical", th)
		}
		if got := th.Mean(); math.Abs(got-p*2) > 1e-12 {
			t.Errorf("p=%v: thinned mean %v, want %v", p, got, p*2)
		}
		if s := pmfSum(th, 3000); math.Abs(s-1) > 1e-9 {
			t.Errorf("p=%v: thinned mass %v", p, s)
		}
		numeric, err := Thin(plainDist{h}, p)
		if err != nil {
			t.Fatalf("numeric Thin: %v", err)
		}
		for k := 0; k < 20; k++ {
			c, n := th.PMF(k), numeric.PMF(k)
			if math.Abs(c-n) > 1e-8 {
				t.Errorf("p=%v k=%d: closed %v vs numeric %v", p, k, c, n)
			}
		}
	}
	// Thinnings compose: Thin(Thin(d, a), b) = Thin(d, a·b).
	t1, _ := Thin(h, 0.5)
	t2, _ := Thin(t1, 0.4)
	if got := t2.(Hierarchical).Lambda; math.Abs(got-0.4) > 1e-15 {
		t.Errorf("composed thinning λ = %v, want 0.4", got)
	}
}

// TestMultilevelHeavierTailThanNB: the point of the hierarchy — at the
// same mean and innermost α, each extra clustering level pushes mass
// from the bulk into P(0) and the deep tail (the variance grows by the
// outer factors' variance), so zero-defect yield rises while large
// counts get likelier.
func TestMultilevelHeavierTailThanNB(t *testing.T) {
	nb, _ := NewNegativeBinomial(2, 2)
	ml, err := NewMultilevel(2, 2, 2)
	if err != nil {
		t.Fatalf("NewMultilevel: %v", err)
	}
	if ml.PMF(0) <= nb.PMF(0) {
		t.Errorf("P(0): multilevel %v ≤ NB %v", ml.PMF(0), nb.PMF(0))
	}
	tailNB, tailML := 1-pmfSum(nb, 12), 1-pmfSum(ml, 12)
	if tailML <= tailNB {
		t.Errorf("tail beyond 12: multilevel %v ≤ NB %v", tailML, tailNB)
	}
}

// TestMultilevelTruncationAndPMFTable drives the new families through
// the generic numeric pipeline the combinatorial method consumes:
// TruncationPoint honours ε and is minimal, and the PMFTable/tail
// invariants hold monotonically in the truncation point.
func TestMultilevelTruncationAndPMFTable(t *testing.T) {
	h, err := NewHierarchical(2, 2, 1.5)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	lethal, err := Thin(h, 0.5)
	if err != nil {
		t.Fatalf("Thin: %v", err)
	}
	m, tail, err := TruncationPoint(lethal, 1e-3)
	if err != nil {
		t.Fatalf("TruncationPoint: %v", err)
	}
	if tail > 1e-3 || tail < 0 {
		t.Errorf("tail = %v, want in [0, 1e-3]", tail)
	}
	if m > 0 && pmfSum(lethal, m-1) >= 1-1e-3 {
		t.Errorf("M = %d not minimal", m)
	}
	// Monotone-tail invariant: growing the table can only shrink the
	// tail, each table sums to 1−tail, and the tail is nonnegative.
	prevTail := math.Inf(1)
	for _, mm := range []int{0, 1, m, m + 3, m + 10} {
		pmf, tl, err := PMFTable(lethal, mm)
		if err != nil {
			t.Fatalf("PMFTable(%d): %v", mm, err)
		}
		if tl < 0 || tl > prevTail {
			t.Errorf("PMFTable(%d): tail %v not monotone (prev %v)", mm, tl, prevTail)
		}
		prevTail = tl
		s := 0.0
		for _, q := range pmf {
			if q < 0 {
				t.Fatalf("PMFTable(%d): negative entry", mm)
			}
			s += q
		}
		if math.Abs(s+tl-1) > 1e-9 {
			t.Errorf("PMFTable(%d): Σpmf+tail = %v", mm, s+tl)
		}
	}
}

// Property: random two-level models behave as distributions and thin
// correctly — mirrors TestQuickThinningInvariants for the new family.
func TestQuickHierarchicalInvariants(t *testing.T) {
	f := func(l8, a8, b8, p8 uint8) bool {
		lambda := 0.2 + float64(l8%30)/10 // 0.2 .. 3.1
		alpha := 0.5 + float64(a8%12)/4   // 0.5 .. 3.25
		beta := 0.5 + float64(b8%12)/4    // 0.5 .. 3.25
		p := 0.1 + 0.8*float64(p8)/255    // 0.1 .. 0.9
		h, err := NewHierarchical(lambda, alpha, beta)
		if err != nil {
			return false
		}
		th, err := Thin(h, p)
		if err != nil {
			return false
		}
		if math.Abs(th.Mean()-p*lambda) > 1e-12 {
			return false
		}
		return math.Abs(pmfSum(th, 4000)-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalStringers(t *testing.T) {
	h, _ := NewHierarchical(1, 2, 3)
	ml, _ := NewMultilevel(1, 2, 3, 4)
	for _, s := range []string{h.String(), ml.String()} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}

// Zero-value literals (no constructor, no cached quadrature) must
// still evaluate correctly — the mixture is rebuilt on the fly.
func TestMultilevelLiteralFallback(t *testing.T) {
	lit := Multilevel{Lambda: 1.5, Alphas: []float64{2, 3}}
	built, _ := NewMultilevel(1.5, 2, 3)
	for k := 0; k < 15; k++ {
		if got, want := lit.PMF(k), built.PMF(k); math.Abs(got-want) > 1e-15 {
			t.Errorf("k=%d: literal %v vs constructed %v", k, got, want)
		}
	}
	hl := Hierarchical{Lambda: 1.5, Alpha: 2, Beta: 3}
	for k := 0; k < 15; k++ {
		if got, want := hl.PMF(k), built.PMF(k); math.Abs(got-want) > 1e-15 {
			t.Errorf("k=%d: hierarchical literal %v vs multilevel %v", k, got, want)
		}
	}
}
