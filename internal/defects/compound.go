package defects

import (
	"fmt"
	"math"
)

// CompoundPoisson is the general defect-clustering family the paper's
// model is consistent with: clusters arrive as a Poisson process with
// rate Rate, and each cluster independently contains a random number
// of defects drawn from ClusterSize (a distribution on {0, 1, 2, …}).
// The negative binomial is the special case of logarithmic cluster
// sizes; Poisson is the case of constant cluster size 1.
//
// Thinning closure (the property the paper relies on): keeping each
// defect independently with probability p yields another compound
// Poisson whose cluster-size distribution is the binomial thinning of
// ClusterSize — implemented here numerically, with the cluster rate
// adjusted for clusters that lose all their defects.
type CompoundPoisson struct {
	// Rate is the expected number of defect clusters, > 0.
	Rate float64
	// ClusterSize is the distribution of defects per cluster.
	ClusterSize Distribution
	// maxTerms bounds the Poisson mixture expansion (default 512).
	maxTerms int
}

// NewCompoundPoisson validates the parameters.
func NewCompoundPoisson(rate float64, clusterSize Distribution) (CompoundPoisson, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return CompoundPoisson{}, fmt.Errorf("%w: compound Poisson rate = %v, need > 0", ErrBadParam, rate)
	}
	if clusterSize == nil {
		return CompoundPoisson{}, fmt.Errorf("%w: compound Poisson needs a cluster-size distribution", ErrBadParam)
	}
	return CompoundPoisson{Rate: rate, ClusterSize: clusterSize}, nil
}

func (d CompoundPoisson) terms() int {
	if d.maxTerms > 0 {
		return d.maxTerms
	}
	return 512
}

// PMF evaluates P(total defects = k) by conditioning on the number of
// clusters n ~ Poisson(Rate) and convolving n copies of ClusterSize.
// The n-fold convolutions are built incrementally up to the point
// where the Poisson weight becomes negligible.
func (d CompoundPoisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	// conv[j] = P(sum of n cluster sizes = j) for the current n,
	// truncated at k (larger sums cannot contribute to PMF(k)).
	base := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		base[j] = d.ClusterSize.PMF(j)
	}
	conv := make([]float64, k+1)
	conv[0] = 1 // n = 0 clusters
	total := math.Exp(-d.Rate) * conv[k]
	poisW := math.Exp(-d.Rate)
	next := make([]float64, k+1)
	for n := 1; n <= d.terms(); n++ {
		poisW *= d.Rate / float64(n)
		for j := 0; j <= k; j++ {
			s := 0.0
			for i := 0; i <= j; i++ {
				if conv[i] != 0 && base[j-i] != 0 {
					s += conv[i] * base[j-i]
				}
			}
			next[j] = s
		}
		conv, next = next, conv
		total += poisW * conv[k]
		if poisW < 1e-18 && float64(n) > d.Rate {
			break
		}
	}
	return total
}

// Mean returns Rate · E[ClusterSize].
func (d CompoundPoisson) Mean() float64 {
	return d.Rate * d.ClusterSize.Mean()
}

// Thin applies the thinning closure: clusters keep their Poisson
// arrivals, each cluster's size is binomially thinned.
func (d CompoundPoisson) Thin(p float64) Distribution {
	thinned := numericThinned{base: d.ClusterSize, p: p, covTol: 1e-12, maxM: 100000}
	return CompoundPoisson{Rate: d.Rate, ClusterSize: thinned, maxTerms: d.maxTerms}
}

func (d CompoundPoisson) String() string {
	return fmt.Sprintf("CompoundPoisson(rate=%g, cluster=%v)", d.Rate, d.ClusterSize)
}

// Logarithmic is the logarithmic series distribution on {1, 2, …},
// the cluster-size law that makes a compound Poisson exactly negative
// binomial: CompoundPoisson(α·ln(1+λ/α), Logarithmic(θ)) with
// θ = (λ/α)/(1+λ/α) equals NegativeBinomial(λ, α).
type Logarithmic struct {
	// Theta ∈ (0,1) is the series parameter.
	Theta float64
}

// NewLogarithmic validates the parameter.
func NewLogarithmic(theta float64) (Logarithmic, error) {
	if !(theta > 0 && theta < 1) {
		return Logarithmic{}, fmt.Errorf("%w: logarithmic theta = %v outside (0,1)", ErrBadParam, theta)
	}
	return Logarithmic{Theta: theta}, nil
}

// PMF returns −θ^k / (k·ln(1−θ)) for k ≥ 1.
func (d Logarithmic) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return -math.Pow(d.Theta, float64(k)) / (float64(k) * math.Log(1-d.Theta))
}

// Mean returns −θ / ((1−θ)·ln(1−θ)).
func (d Logarithmic) Mean() float64 {
	return -d.Theta / ((1 - d.Theta) * math.Log(1-d.Theta))
}

func (d Logarithmic) String() string { return fmt.Sprintf("Logarithmic(θ=%g)", d.Theta) }
