package defects

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements the hierarchical / multilevel clustering
// compound distributions of Bogdanov, Bogdanova & Dshkhunyan
// ("Statistical Yield Modeling for IC Manufacture: Hierarchical Fault
// Distributions") and Bogdanov, Bogdanova & Rudnev ("Multilevel
// Clustering Fault Model for IC Manufacture"): the defect count is
// Poisson, but its mean is modulated by a product of independent
// unit-mean gamma factors, one per clustering scale (process lot,
// wafer, chip region, …):
//
//	k | x_1..x_L ~ Poisson(λ · x_1 ⋯ x_L),  x_j ~ Gamma(α_j, 1/α_j)
//
// One level is exactly the negative binomial (the classical
// Poisson-gamma mixture); every additional level thickens the tail
// beyond what any single negative binomial can express. A level
// degenerates away as its α_j → ∞ (its gamma factor concentrates at
// 1), recovering the model one level shorter.
//
// The PMF has no closed form for L ≥ 2; it is evaluated by collapsing
// the outer L−1 gamma factors into a fixed quadrature mixture and
// using the closed negative-binomial form for the innermost level:
//
//	P(k) = Σ_i w_i · NB(k; λ·s_i, α_1)
//
// with (s_i, w_i) the tensor product of per-level gamma quadratures.
// The weights are normalized to Σ w_i = 1, so the PMF is an exact
// finite mixture of negative binomials — it sums to 1 and is
// everywhere nonnegative by construction, whatever the quadrature
// error. Because Poisson thinning commutes with mixing, the thinning
// closure is the same as the negative binomial's: scale λ, keep every
// clustering parameter — so these models drop into the generic
// Thin/TruncationPoint/PMFTable pipeline with closed-form thinning.

// maxClusterLevels bounds the nesting depth; each extra level
// multiplies the quadrature mixture size.
const maxClusterLevels = 4

// gammaQuadNodes is the per-level quadrature resolution and
// maxMixComponents the size the collapsed cross-product mixture is
// recompressed to after each level.
const (
	gammaQuadNodes   = 256
	maxMixComponents = 4096
)

// mixNode is one component of the collapsed outer-level mixture: the
// inner negative binomial's mean is scaled by scale with probability
// weight.
type mixNode struct {
	scale, weight float64
}

// gammaQuadRange brackets where the log-substituted Gamma(α, 1/α)
// integrand carries mass: in y = ln x the (unnormalized) log-density
// is α(y − e^y), maximal at y = 0, and the returned [yLo, yHi] are the
// two roots of y − e^y + 1 = −T with T = 38/α — the points where the
// integrand has fallen e⁻³⁸ below its peak. Solving the exact
// exponent (rather than a small-x or Gaussian approximation) keeps
// the bracket tight for every α, from heavy clustering (α ≪ 1, a
// hundred-decade x range) to near-degenerate levels (α ≫ 1, a peak of
// width 1/√α around x = 1).
func gammaQuadRange(alpha float64) (yLo, yHi float64) {
	T := 38 / alpha
	g := func(y float64) float64 { return y - math.Exp(y) + 1 + T }
	// g is increasing on y < 0 and decreasing on y > 0 with g(0) = T > 0.
	bisect := func(lo, hi float64, rising bool) float64 {
		for i := 0; i < 200 && hi-lo > 1e-12*(1+math.Abs(lo)); i++ {
			mid := (lo + hi) / 2
			if (g(mid) < 0) == rising {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	yLo = bisect(-T-2, 0, true)
	yHi = bisect(0, math.Log(2*T+4), false)
	return yLo, yHi
}

// gammaQuad discretizes the unit-mean Gamma(α, 1/α) mixing factor into
// (node, weight) pairs by trapezoid quadrature in log space: the
// substitution x = e^y removes the x^(α-1) endpoint singularity for
// α < 1 and gives doubly-exponential tails, so the fixed grid
// converges fast for every α. Weights are normalized to sum to 1.
func gammaQuad(alpha float64) []mixNode {
	yLo, yHi := gammaQuadRange(alpha)
	n := gammaQuadNodes
	h := (yHi - yLo) / float64(n-1)
	nodes := make([]mixNode, 0, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		y := yLo + float64(i)*h
		x := math.Exp(y)
		// The substituted density is g(x)·x = α^α x^α e^{-αx} / Γ(α);
		// relative to its peak at x = 1 that is e^{α(y − x + 1)} — the
		// normalizing constant and the constant grid step h cancel in
		// the normalization, and the peak-relative form cannot
		// overflow for any α.
		w := math.Exp(alpha * (y - x + 1))
		if w == 0 {
			continue
		}
		nodes = append(nodes, mixNode{scale: x, weight: w})
		sum += w
	}
	for i := range nodes {
		nodes[i].weight /= sum
	}
	return nodes
}

// compressMix re-bins a scale-sorted mixture down to at most max
// components by merging runs of adjacent nodes, preserving each bin's
// total weight and weighted mean scale — so the mixture's mass and
// mean are exact under compression and only the within-bin spread
// (tiny, since neighbours have near-equal scales) is lost.
func compressMix(mix []mixNode, max int) []mixNode {
	if len(mix) <= max {
		return mix
	}
	per := (len(mix) + max - 1) / max
	out := make([]mixNode, 0, max)
	for i := 0; i < len(mix); i += per {
		end := i + per
		if end > len(mix) {
			end = len(mix)
		}
		var w, ws float64
		for _, m := range mix[i:end] {
			w += m.weight
			ws += m.weight * m.scale
		}
		if w > 0 {
			out = append(out, mixNode{scale: ws / w, weight: w})
		}
	}
	return out
}

// buildMix collapses the outer clustering levels (alphas[1:]) into one
// flat mixture of mean scales. A single-level model mixes nothing:
// the result is the unit mixture and the PMF is exactly the negative
// binomial.
func buildMix(alphas []float64) []mixNode {
	mix := []mixNode{{scale: 1, weight: 1}}
	if len(alphas) <= 1 {
		return mix
	}
	for _, a := range alphas[1:] {
		level := gammaQuad(a)
		next := make([]mixNode, 0, len(mix)*len(level))
		for _, m := range mix {
			for _, l := range level {
				w := m.weight * l.weight
				if w < 1e-18 {
					continue // negligible joint mass; renormalized below
				}
				next = append(next, mixNode{scale: m.scale * l.scale, weight: w})
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].scale < next[j].scale })
		mix = compressMix(next, maxMixComponents)
	}
	sum := 0.0
	for _, m := range mix {
		sum += m.weight
	}
	for i := range mix {
		mix[i].weight /= sum
	}
	return mix
}

// Multilevel is the L-level clustering compound distribution described
// above: Lambda is the mean defect count, Alphas[0] the innermost
// (chip-level) clustering parameter, and each further entry the
// clustering of one coarser scale. Multilevel(λ, [α]) is exactly
// NegativeBinomial(λ, α).
type Multilevel struct {
	Lambda float64   // mean defect count, > 0
	Alphas []float64 // per-level clustering parameters, innermost first

	// mix caches the collapsed outer-level quadrature; it depends only
	// on Alphas, so thinned copies share it. Built by NewMultilevel;
	// a zero-value literal rebuilds it on every PMF call.
	mix []mixNode
}

// NewMultilevel validates the parameters and precomputes the
// outer-level quadrature.
func NewMultilevel(lambda float64, alphas ...float64) (Multilevel, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return Multilevel{}, fmt.Errorf("%w: multilevel lambda = %v, need > 0", ErrBadParam, lambda)
	}
	if len(alphas) == 0 {
		return Multilevel{}, fmt.Errorf("%w: multilevel needs at least one clustering parameter", ErrBadParam)
	}
	if len(alphas) > maxClusterLevels {
		return Multilevel{}, fmt.Errorf("%w: multilevel supports at most %d levels, got %d", ErrBadParam, maxClusterLevels, len(alphas))
	}
	for i, a := range alphas {
		if !(a > 0) || math.IsInf(a, 0) {
			return Multilevel{}, fmt.Errorf("%w: multilevel alpha[%d] = %v, need > 0", ErrBadParam, i, a)
		}
	}
	as := append([]float64(nil), alphas...)
	return Multilevel{Lambda: lambda, Alphas: as, mix: buildMix(as)}, nil
}

// PMF evaluates the mixture Σ_i w_i · NB(k; λ·s_i, α_1). The
// k-dependent gamma-function terms are hoisted out of the mixture
// loop, so one call costs one Lgamma triple plus two logs and an exp
// per mixture component.
func (d Multilevel) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if len(d.Alphas) == 0 {
		return Poisson{Lambda: d.Lambda}.PMF(k)
	}
	mix := d.mix
	if mix == nil {
		mix = buildMix(d.Alphas)
	}
	a := d.Alphas[0]
	lg1, _ := math.Lgamma(a + float64(k))
	lg2, _ := math.Lgamma(float64(k) + 1)
	lg3, _ := math.Lgamma(a)
	ck := lg1 - lg2 - lg3
	fk := float64(k)
	total := 0.0
	for _, m := range mix {
		r := d.Lambda * m.scale / a
		total += m.weight * math.Exp(ck+fk*math.Log(r)-(a+fk)*math.Log1p(r))
	}
	return total
}

// Mean returns Lambda: every gamma factor has unit mean.
func (d Multilevel) Mean() float64 { return d.Lambda }

// Thin returns the same clustering hierarchy with mean p·Lambda:
// Poisson thinning commutes with the gamma mixing, exactly as in the
// negative binomial's closed form.
func (d Multilevel) Thin(p float64) Distribution {
	return Multilevel{Lambda: p * d.Lambda, Alphas: d.Alphas, mix: d.mix}
}

func (d Multilevel) String() string {
	parts := make([]string, len(d.Alphas))
	for i, a := range d.Alphas {
		parts[i] = fmt.Sprintf("%g", a)
	}
	return fmt.Sprintf("Multilevel(λ=%g, α=[%s])", d.Lambda, strings.Join(parts, " "))
}

// Hierarchical is the two-level special case of Bogdanov, Bogdanova &
// Dshkhunyan: chip-level clustering Alpha modulated by one coarser
// (wafer-level) gamma factor with clustering Beta. Beta → ∞ recovers
// NegativeBinomial(Lambda, Alpha); Alpha → ∞ recovers
// NegativeBinomial(Lambda, Beta).
type Hierarchical struct {
	Lambda float64 // mean defect count, > 0
	Alpha  float64 // chip-level clustering, > 0
	Beta   float64 // wafer-level clustering, > 0

	mix []mixNode // cached outer quadrature, as in Multilevel
}

// NewHierarchical validates the parameters and precomputes the
// wafer-level quadrature.
func NewHierarchical(lambda, alpha, beta float64) (Hierarchical, error) {
	ml, err := NewMultilevel(lambda, alpha, beta)
	if err != nil {
		return Hierarchical{}, err
	}
	return Hierarchical{Lambda: lambda, Alpha: alpha, Beta: beta, mix: ml.mix}, nil
}

func (d Hierarchical) multilevel() Multilevel {
	return Multilevel{Lambda: d.Lambda, Alphas: []float64{d.Alpha, d.Beta}, mix: d.mix}
}

// PMF evaluates the two-level mixture.
func (d Hierarchical) PMF(k int) float64 { return d.multilevel().PMF(k) }

// Mean returns Lambda.
func (d Hierarchical) Mean() float64 { return d.Lambda }

// Thin returns Hierarchical with mean p·Lambda and the same clustering
// parameters.
func (d Hierarchical) Thin(p float64) Distribution {
	return Hierarchical{Lambda: p * d.Lambda, Alpha: d.Alpha, Beta: d.Beta, mix: d.mix}
}

func (d Hierarchical) String() string {
	return fmt.Sprintf("Hierarchical(λ=%g, α=%g, β=%g)", d.Lambda, d.Alpha, d.Beta)
}
