// Package logic provides gate-level combinational netlists.
//
// Netlists are the common substrate of the yield method: fault-tree
// functions F(x_1..x_C) are described as netlists, the generalized
// function G(w, v_1..v_M) is synthesized as a netlist over binary
// variables, the variable-ordering heuristics walk netlists, and the
// coded ROBDD is compiled gate by gate from a netlist.
//
// A netlist is a DAG of gates built incrementally through the builder
// methods (Input, And, Or, Not, ...). Construction enforces acyclicity:
// a gate may only reference gates that already exist. Identical gates
// (same kind, same fan-in in the same order) are structurally shared.
// Fan-in order is preserved exactly as given, because the ordering
// heuristics of Bouissou et al. and Minato et al. are sensitive to it.
package logic

import (
	"errors"
	"fmt"
	"strings"
)

// Kind identifies the logical function computed by a gate.
type Kind uint8

// Gate kinds. InputKind gates are the free variables of the function;
// ConstKind gates are the two boolean constants.
const (
	InputKind Kind = iota + 1
	ConstKind
	NotKind
	AndKind
	OrKind
	NandKind
	NorKind
	XorKind
	XnorKind
)

// String returns the conventional lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case InputKind:
		return "input"
	case ConstKind:
		return "const"
	case NotKind:
		return "not"
	case AndKind:
		return "and"
	case OrKind:
		return "or"
	case NandKind:
		return "nand"
	case NorKind:
		return "nor"
	case XorKind:
		return "xor"
	case XnorKind:
		return "xnor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// GateID names a gate within its netlist. IDs are dense, start at 0,
// and increase in construction order, so any fan-in ID is smaller than
// the ID of the gate that references it.
type GateID int32

// Gate is one node of the netlist DAG.
type Gate struct {
	Kind  Kind
	Fanin []GateID // empty for inputs and constants
	Name  string   // input name, or empty
	Value bool     // constant value for ConstKind
	Ord   int32    // input declaration ordinal for InputKind, else 0
}

// Netlist is a combinational circuit with named inputs and a single
// output. The zero value is an empty netlist ready for use.
type Netlist struct {
	gates   []Gate
	inputs  []GateID // in declaration order
	byName  map[string]GateID
	cse     map[string]GateID
	output  GateID
	hasOut  bool
	counts  map[Kind]int
	evalBuf []bool
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{
		byName: make(map[string]GateID),
		cse:    make(map[string]GateID),
		counts: make(map[Kind]int),
	}
}

func (n *Netlist) add(g Gate) GateID {
	id := GateID(len(n.gates))
	n.gates = append(n.gates, g)
	n.counts[g.Kind]++
	return id
}

func cseKey(kind Kind, fanin []GateID) string {
	var sb strings.Builder
	sb.Grow(2 + 8*len(fanin))
	sb.WriteByte(byte(kind))
	for _, f := range fanin {
		fmt.Fprintf(&sb, ",%d", f)
	}
	return sb.String()
}

// Input declares (or retrieves) the input gate with the given name.
// Declaring the same name twice returns the same gate.
func (n *Netlist) Input(name string) GateID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := n.add(Gate{Kind: InputKind, Name: name, Ord: int32(len(n.inputs))})
	n.byName[name] = id
	n.inputs = append(n.inputs, id)
	return id
}

// Const returns the constant gate with the given value. Both constants
// are shared.
func (n *Netlist) Const(v bool) GateID {
	key := "c0"
	if v {
		key = "c1"
	}
	if id, ok := n.cse[key]; ok {
		return id
	}
	id := n.add(Gate{Kind: ConstKind, Value: v})
	n.cse[key] = id
	return id
}

func (n *Netlist) gate(kind Kind, fanin ...GateID) GateID {
	for _, f := range fanin {
		if int(f) < 0 || int(f) >= len(n.gates) {
			panic(fmt.Sprintf("logic: fan-in %d out of range (have %d gates)", f, len(n.gates)))
		}
	}
	key := cseKey(kind, fanin)
	if id, ok := n.cse[key]; ok {
		return id
	}
	own := make([]GateID, len(fanin))
	copy(own, fanin)
	id := n.add(Gate{Kind: kind, Fanin: own})
	n.cse[key] = id
	return id
}

// Not returns the negation of a.
func (n *Netlist) Not(a GateID) GateID { return n.gate(NotKind, a) }

// And returns the conjunction of the arguments. With no arguments it
// returns the constant true; with one, the argument itself.
func (n *Netlist) And(xs ...GateID) GateID {
	switch len(xs) {
	case 0:
		return n.Const(true)
	case 1:
		return xs[0]
	}
	return n.gate(AndKind, xs...)
}

// Or returns the disjunction of the arguments. With no arguments it
// returns the constant false; with one, the argument itself.
func (n *Netlist) Or(xs ...GateID) GateID {
	switch len(xs) {
	case 0:
		return n.Const(false)
	case 1:
		return xs[0]
	}
	return n.gate(OrKind, xs...)
}

// Nand returns ¬(a ∧ b ∧ …). It requires at least two arguments.
func (n *Netlist) Nand(xs ...GateID) GateID { return n.gate(NandKind, xs...) }

// Nor returns ¬(a ∨ b ∨ …). It requires at least two arguments.
func (n *Netlist) Nor(xs ...GateID) GateID { return n.gate(NorKind, xs...) }

// Xor returns the exclusive-or (odd parity) of the arguments.
func (n *Netlist) Xor(xs ...GateID) GateID {
	if len(xs) == 1 {
		return xs[0]
	}
	return n.gate(XorKind, xs...)
}

// Xnor returns the even-parity function of the arguments.
func (n *Netlist) Xnor(xs ...GateID) GateID { return n.gate(XnorKind, xs...) }

// AtLeast returns a gate tree computing "at least k of xs are true",
// expanded into AND/OR gates with the standard Shannon recursion on the
// first argument. k ≤ 0 yields the constant true; k > len(xs) the
// constant false. For the common k = len(xs)−1 case it emits the
// compact ⋁_i ⋀_{j≠i} x_j form.
func (n *Netlist) AtLeast(k int, xs ...GateID) GateID {
	switch {
	case k <= 0:
		return n.Const(true)
	case k > len(xs):
		return n.Const(false)
	case k == len(xs):
		return n.And(xs...)
	case k == len(xs)-1:
		terms := make([]GateID, 0, len(xs))
		rest := make([]GateID, 0, len(xs)-1)
		for i := range xs {
			rest = rest[:0]
			for j, x := range xs {
				if j != i {
					rest = append(rest, x)
				}
			}
			terms = append(terms, n.And(rest...))
		}
		return n.Or(terms...)
	}
	with := n.And(xs[0], n.AtLeast(k-1, xs[1:]...))
	without := n.AtLeast(k, xs[1:]...)
	return n.Or(with, without)
}

// SetOutput designates the output gate of the netlist.
func (n *Netlist) SetOutput(id GateID) {
	if int(id) < 0 || int(id) >= len(n.gates) {
		panic(fmt.Sprintf("logic: output %d out of range", id))
	}
	n.output = id
	n.hasOut = true
}

// Output returns the output gate. It reports false if none was set.
func (n *Netlist) Output() (GateID, bool) { return n.output, n.hasOut }

// MustOutput returns the output gate and panics if none was set; it is
// intended for generators that always produce complete netlists.
func (n *Netlist) MustOutput() GateID {
	if !n.hasOut {
		panic("logic: netlist has no output")
	}
	return n.output
}

// NumGates returns the total number of gates, excluding inputs and
// constants. This is the quantity Table 1 of the paper reports.
func (n *Netlist) NumGates() int {
	return len(n.gates) - n.counts[InputKind] - n.counts[ConstKind]
}

// NumNodes returns the total number of nodes including inputs and
// constants.
func (n *Netlist) NumNodes() int { return len(n.gates) }

// NumInputs returns the number of declared inputs.
func (n *Netlist) NumInputs() int { return len(n.inputs) }

// Inputs returns the input gates in declaration order. The slice is a
// copy and may be modified by the caller.
func (n *Netlist) Inputs() []GateID {
	out := make([]GateID, len(n.inputs))
	copy(out, n.inputs)
	return out
}

// InputNames returns the input names in declaration order.
func (n *Netlist) InputNames() []string {
	out := make([]string, len(n.inputs))
	for i, id := range n.inputs {
		out[i] = n.gates[id].Name
	}
	return out
}

// InputByName returns the gate of the named input.
func (n *Netlist) InputByName(name string) (GateID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Gate returns the gate record for id. The returned value shares the
// fan-in slice with the netlist; callers must not modify it.
func (n *Netlist) Gate(id GateID) Gate { return n.gates[id] }

// InputOrdinal returns the position of the given input gate in
// declaration order, or -1 if id is not an input.
func (n *Netlist) InputOrdinal(id GateID) int {
	if int(id) >= len(n.gates) || n.gates[id].Kind != InputKind {
		return -1
	}
	return int(n.gates[id].Ord)
}

// ErrNoOutput is returned by operations requiring a completed netlist.
var ErrNoOutput = errors.New("logic: netlist has no output")

// Eval evaluates the netlist output under the given assignment, which
// maps input declaration ordinals to values (assign[i] is the value of
// the i-th declared input). Missing trailing inputs default to false.
//
// Eval reuses one scratch buffer cached on the netlist, so concurrent
// Eval calls on the same netlist race; concurrent callers must use
// EvalWith with per-goroutine buffers instead.
func (n *Netlist) Eval(assign []bool) (bool, error) {
	if cap(n.evalBuf) < len(n.gates) {
		n.evalBuf = make([]bool, len(n.gates))
	}
	return n.EvalWith(assign, &n.evalBuf)
}

// EvalWith is Eval using caller-owned scratch space (grown as needed
// and reusable across calls). The netlist itself is only read, so any
// number of goroutines may call EvalWith concurrently, each with its
// own buffer.
func (n *Netlist) EvalWith(assign []bool, scratch *[]bool) (bool, error) {
	if !n.hasOut {
		return false, ErrNoOutput
	}
	if cap(*scratch) < len(n.gates) {
		*scratch = make([]bool, len(n.gates))
	}
	vals := (*scratch)[:len(n.gates)]
	for i, g := range n.gates {
		switch g.Kind {
		case InputKind:
			vals[i] = int(g.Ord) < len(assign) && assign[g.Ord]
		case ConstKind:
			vals[i] = g.Value
		case NotKind:
			vals[i] = !vals[g.Fanin[0]]
		case AndKind, NandKind:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			if g.Kind == NandKind {
				v = !v
			}
			vals[i] = v
		case OrKind, NorKind:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			if g.Kind == NorKind {
				v = !v
			}
			vals[i] = v
		case XorKind, XnorKind:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			if g.Kind == XnorKind {
				v = !v
			}
			vals[i] = v
		default:
			return false, fmt.Errorf("logic: gate %d has unknown kind %v", i, g.Kind)
		}
	}
	return vals[n.output], nil
}

// EvalNamed evaluates the output under a name→value assignment.
// Unmentioned inputs default to false.
func (n *Netlist) EvalNamed(assign map[string]bool) (bool, error) {
	vec := make([]bool, len(n.inputs))
	for i, id := range n.inputs {
		vec[i] = assign[n.gates[id].Name]
	}
	return n.Eval(vec)
}

// VisitDepthFirst walks the cone of the output depth-first, leftmost
// (fan-in visited in stored order before the gate itself), calling fn
// exactly once per reachable gate in post-order. It is the traversal
// the ordering heuristics of the paper are defined on.
func (n *Netlist) VisitDepthFirst(fn func(id GateID, g Gate)) error {
	if !n.hasOut {
		return ErrNoOutput
	}
	n.visitFrom(n.output, make([]bool, len(n.gates)), fn)
	return nil
}

func (n *Netlist) visitFrom(id GateID, seen []bool, fn func(GateID, Gate)) {
	if seen[id] {
		return
	}
	seen[id] = true
	for _, f := range n.gates[id].Fanin {
		n.visitFrom(f, seen, fn)
	}
	fn(id, n.gates[id])
}

// ReachableInputs returns the inputs in the cone of the output, in
// depth-first leftmost discovery order (the paper's "topology" order
// before any fan-in re-sorting).
func (n *Netlist) ReachableInputs() ([]GateID, error) {
	var out []GateID
	err := n.VisitDepthFirst(func(id GateID, g Gate) {
		if g.Kind == InputKind {
			out = append(out, id)
		}
	})
	return out, err
}

// Stats summarizes a netlist.
type Stats struct {
	Inputs    int
	Gates     int // excluding inputs and constants
	ByKind    map[Kind]int
	MaxFanin  int
	Depth     int // longest input→output path counting gates, 0 for bare input
	Reachable int // gates in the output cone (excluding inputs/constants)
}

// ComputeStats returns structural statistics for the netlist.
func (n *Netlist) ComputeStats() (Stats, error) {
	if !n.hasOut {
		return Stats{}, ErrNoOutput
	}
	s := Stats{
		Inputs: len(n.inputs),
		Gates:  n.NumGates(),
		ByKind: make(map[Kind]int, len(n.counts)),
	}
	for k, c := range n.counts {
		s.ByKind[k] = c
	}
	depth := make([]int, len(n.gates))
	err := n.VisitDepthFirst(func(id GateID, g Gate) {
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
		d := 0
		for _, f := range g.Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		switch g.Kind {
		case InputKind, ConstKind:
			depth[id] = 0
		default:
			depth[id] = d + 1
			s.Reachable++
		}
	})
	if err != nil {
		return Stats{}, err
	}
	s.Depth = depth[n.output]
	return s, nil
}

// DOT renders the output cone in Graphviz dot syntax, for debugging
// and documentation.
func (n *Netlist) DOT(name string) (string, error) {
	if !n.hasOut {
		return "", ErrNoOutput
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	err := n.VisitDepthFirst(func(id GateID, g Gate) {
		label := g.Kind.String()
		shape := "box"
		switch g.Kind {
		case InputKind:
			label = g.Name
			shape = "ellipse"
		case ConstKind:
			label = fmt.Sprintf("%v", g.Value)
			shape = "ellipse"
		}
		fmt.Fprintf(&sb, "  g%d [label=%q shape=%s];\n", id, label, shape)
		for _, f := range g.Fanin {
			fmt.Fprintf(&sb, "  g%d -> g%d;\n", f, id)
		}
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  out [shape=plaintext label=\"F\"];\n  g%d -> out;\n}\n", n.output)
	return sb.String(), nil
}
