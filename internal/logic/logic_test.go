package logic

import (
	"math/bits"
	"strings"
	"testing"
	"testing/quick"
)

func TestInputDeclarationAndLookup(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	if a == b {
		t.Fatalf("distinct inputs share a gate: %d", a)
	}
	if got := n.Input("a"); got != a {
		t.Errorf("re-declaring input a: got %d, want %d", got, a)
	}
	if n.NumInputs() != 2 {
		t.Errorf("NumInputs = %d, want 2", n.NumInputs())
	}
	id, ok := n.InputByName("b")
	if !ok || id != b {
		t.Errorf("InputByName(b) = %d,%v; want %d,true", id, ok, b)
	}
	if _, ok := n.InputByName("zzz"); ok {
		t.Error("InputByName(zzz) reported ok for missing input")
	}
	names := n.InputNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("InputNames = %v, want [a b]", names)
	}
	if ord := n.InputOrdinal(b); ord != 1 {
		t.Errorf("InputOrdinal(b) = %d, want 1", ord)
	}
	g := n.And(a, b)
	if ord := n.InputOrdinal(g); ord != -1 {
		t.Errorf("InputOrdinal(non-input) = %d, want -1", ord)
	}
}

func TestStructuralSharing(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	g1 := n.And(a, b)
	g2 := n.And(a, b)
	if g1 != g2 {
		t.Errorf("identical AND gates not shared: %d vs %d", g1, g2)
	}
	g3 := n.And(b, a)
	if g3 == g1 {
		t.Error("AND(b,a) shared with AND(a,b): fan-in order must be preserved")
	}
	if n.Not(a) != n.Not(a) {
		t.Error("identical NOT gates not shared")
	}
	if n.Const(true) != n.Const(true) {
		t.Error("constant true not shared")
	}
	if n.Const(true) == n.Const(false) {
		t.Error("constants true and false aliased")
	}
}

func TestDegenerateVariadicForms(t *testing.T) {
	n := New()
	a := n.Input("a")
	if got := n.And(a); got != a {
		t.Errorf("And(a) = %d, want %d", got, a)
	}
	if got := n.Or(a); got != a {
		t.Errorf("Or(a) = %d, want %d", got, a)
	}
	if got := n.Xor(a); got != a {
		t.Errorf("Xor(a) = %d, want %d", got, a)
	}
	if got := n.And(); got != n.Const(true) {
		t.Errorf("And() = %d, want const true", got)
	}
	if got := n.Or(); got != n.Const(false) {
		t.Errorf("Or() = %d, want const false", got)
	}
}

// evalTruth evaluates the netlist output on every assignment of its
// declared inputs and returns the truth table as a bitmask.
func evalTruth(t *testing.T, n *Netlist) uint64 {
	t.Helper()
	k := n.NumInputs()
	if k > 6 {
		t.Fatalf("evalTruth supports at most 6 inputs, got %d", k)
	}
	var table uint64
	assign := make([]bool, k)
	for m := 0; m < 1<<k; m++ {
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		v, err := n.Eval(assign)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if v {
			table |= 1 << m
		}
	}
	return table
}

func TestEvalAllKinds(t *testing.T) {
	tests := []struct {
		name  string
		build func(n *Netlist) GateID
		want  func(a, b, c bool) bool
	}{
		{"and", func(n *Netlist) GateID {
			return n.And(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return a && b && c }},
		{"or", func(n *Netlist) GateID {
			return n.Or(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return a || b || c }},
		{"not", func(n *Netlist) GateID {
			n.Input("a")
			n.Input("b")
			n.Input("c")
			id, _ := n.InputByName("a")
			return n.Not(id)
		}, func(a, b, c bool) bool { return !a }},
		{"nand", func(n *Netlist) GateID {
			return n.Nand(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return !(a && b && c) }},
		{"nor", func(n *Netlist) GateID {
			return n.Nor(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return !(a || b || c) }},
		{"xor", func(n *Netlist) GateID {
			return n.Xor(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return a != (b != c) }},
		{"xnor", func(n *Netlist) GateID {
			return n.Xnor(n.Input("a"), n.Input("b"), n.Input("c"))
		}, func(a, b, c bool) bool { return !(a != (b != c)) }},
		{"nested", func(n *Netlist) GateID {
			a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
			return n.Or(n.And(a, b), n.Not(c))
		}, func(a, b, c bool) bool { return (a && b) || !c }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n := New()
			n.SetOutput(tc.build(n))
			for m := 0; m < 8; m++ {
				a, b, c := m&1 != 0, m&2 != 0, m&4 != 0
				got, err := n.Eval([]bool{a, b, c})
				if err != nil {
					t.Fatalf("Eval: %v", err)
				}
				if got != tc.want(a, b, c) {
					t.Errorf("assign (%v,%v,%v): got %v, want %v", a, b, c, got, tc.want(a, b, c))
				}
			}
		})
	}
}

func TestEvalNamed(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	n.SetOutput(n.And(a, n.Not(b)))
	got, err := n.EvalNamed(map[string]bool{"a": true})
	if err != nil {
		t.Fatalf("EvalNamed: %v", err)
	}
	if !got {
		t.Error("a ∧ ¬b with a=1, b unset(=0): got false, want true")
	}
	got, err = n.EvalNamed(map[string]bool{"a": true, "b": true})
	if err != nil {
		t.Fatalf("EvalNamed: %v", err)
	}
	if got {
		t.Error("a ∧ ¬b with a=1, b=1: got true, want false")
	}
}

func TestEvalNoOutput(t *testing.T) {
	n := New()
	n.Input("a")
	if _, err := n.Eval([]bool{true}); err != ErrNoOutput {
		t.Errorf("Eval without output: err = %v, want ErrNoOutput", err)
	}
	if _, err := n.ReachableInputs(); err != ErrNoOutput {
		t.Errorf("ReachableInputs without output: err = %v, want ErrNoOutput", err)
	}
	if _, err := n.ComputeStats(); err != ErrNoOutput {
		t.Errorf("ComputeStats without output: err = %v, want ErrNoOutput", err)
	}
	if _, err := n.DOT("x"); err != ErrNoOutput {
		t.Errorf("DOT without output: err = %v, want ErrNoOutput", err)
	}
}

func TestAtLeastMatchesPopcount(t *testing.T) {
	for nvars := 1; nvars <= 5; nvars++ {
		for k := 0; k <= nvars+1; k++ {
			n := New()
			xs := make([]GateID, nvars)
			for i := range xs {
				xs[i] = n.Input(string(rune('a' + i)))
			}
			n.SetOutput(n.AtLeast(k, xs...))
			assign := make([]bool, nvars)
			for m := 0; m < 1<<nvars; m++ {
				for i := range assign {
					assign[i] = m&(1<<i) != 0
				}
				got, err := n.Eval(assign)
				if err != nil {
					t.Fatalf("Eval: %v", err)
				}
				want := bits.OnesCount(uint(m)) >= k
				if got != want {
					t.Errorf("AtLeast(%d of %d), mask %b: got %v, want %v", k, nvars, m, got, want)
				}
			}
		}
	}
}

func TestVisitDepthFirstOrder(t *testing.T) {
	// Build f = (a ∧ b) ∨ c. Post-order leftmost visit must be
	// a, b, and, c, or.
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	and := n.And(a, b)
	or := n.Or(and, c)
	n.SetOutput(or)
	var seq []GateID
	if err := n.VisitDepthFirst(func(id GateID, _ Gate) { seq = append(seq, id) }); err != nil {
		t.Fatalf("VisitDepthFirst: %v", err)
	}
	want := []GateID{a, b, and, c, or}
	if len(seq) != len(want) {
		t.Fatalf("visit sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("visit sequence %v, want %v", seq, want)
		}
	}
}

func TestVisitDepthFirstVisitsSharedOnce(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	shared := n.And(a, b)
	n.SetOutput(n.Or(shared, n.Not(shared)))
	count := 0
	if err := n.VisitDepthFirst(func(id GateID, g Gate) {
		if id == shared {
			count++
		}
	}); err != nil {
		t.Fatalf("VisitDepthFirst: %v", err)
	}
	if count != 1 {
		t.Errorf("shared gate visited %d times, want 1", count)
	}
}

func TestReachableInputsSkipsUnreachable(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.Input("unused")
	c := n.Input("c")
	n.SetOutput(n.Or(c, a)) // c discovered before a
	got, err := n.ReachableInputs()
	if err != nil {
		t.Fatalf("ReachableInputs: %v", err)
	}
	if len(got) != 2 || got[0] != c || got[1] != a {
		t.Errorf("ReachableInputs = %v, want [%d %d]", got, c, a)
	}
}

func TestComputeStats(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	and := n.And(a, b, c)
	n.SetOutput(n.Or(and, n.Not(a)))
	s, err := n.ComputeStats()
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if s.Inputs != 3 {
		t.Errorf("Inputs = %d, want 3", s.Inputs)
	}
	if s.Gates != 3 {
		t.Errorf("Gates = %d, want 3 (and, not, or)", s.Gates)
	}
	if s.MaxFanin != 3 {
		t.Errorf("MaxFanin = %d, want 3", s.MaxFanin)
	}
	if s.Depth != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth)
	}
	if s.Reachable != 3 {
		t.Errorf("Reachable = %d, want 3", s.Reachable)
	}
	if s.ByKind[AndKind] != 1 || s.ByKind[OrKind] != 1 || s.ByKind[NotKind] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
}

func TestNumGatesExcludesInputsAndConstants(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.Const(true)
	n.SetOutput(n.Not(a))
	if g := n.NumGates(); g != 1 {
		t.Errorf("NumGates = %d, want 1", g)
	}
	if nn := n.NumNodes(); nn != 3 {
		t.Errorf("NumNodes = %d, want 3", nn)
	}
}

func TestDOTContainsAllNodes(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	n.SetOutput(n.And(a, b))
	dot, err := n.DOT("tiny")
	if err != nil {
		t.Fatalf("DOT: %v", err)
	}
	for _, frag := range []string{"digraph", `label="a"`, `label="b"`, `label="and"`, "-> out"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

// Property: De Morgan — ¬(a ∧ b) ≡ ¬a ∨ ¬b, checked by comparing truth
// tables of independently built netlists over random gate structures.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b, c bool) bool {
		n1 := New()
		x, y, z := n1.Input("x"), n1.Input("y"), n1.Input("z")
		n1.SetOutput(n1.Not(n1.And(x, n1.Or(y, z))))
		v1, err := n1.Eval([]bool{a, b, c})
		if err != nil {
			return false
		}
		n2 := New()
		x2, y2, z2 := n2.Input("x"), n2.Input("y"), n2.Input("z")
		n2.SetOutput(n2.Or(n2.Not(x2), n2.And(n2.Not(y2), n2.Not(z2))))
		v2, err := n2.Eval([]bool{a, b, c})
		if err != nil {
			return false
		}
		return v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: structural sharing never changes semantics — building the
// same expression twice through different call sequences yields gates
// that evaluate identically.
func TestQuickSharingSemantics(t *testing.T) {
	f := func(m uint8) bool {
		n := New()
		a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
		g1 := n.Or(n.And(a, b), c)
		_ = n.Xor(a, b, c) // interleave unrelated construction
		g2 := n.Or(n.And(a, b), c)
		if g1 != g2 {
			return false
		}
		n.SetOutput(g1)
		assign := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		v, err := n.Eval(assign)
		if err != nil {
			return false
		}
		return v == ((assign[0] && assign[1]) || assign[2])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalTruthHelper(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	n.SetOutput(n.Xor(a, b))
	if got := evalTruth(t, n); got != 0b0110 {
		t.Errorf("xor truth table = %04b, want 0110", got)
	}
}
