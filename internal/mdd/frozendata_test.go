package mdd

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFrozenDataRoundTrip: Data → FrozenFromData reproduces the
// snapshot bit for bit — Prob, Eval, Size and ComputeStats all agree
// exactly with the original.
func TestFrozenDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		m, root := randomDiagram(t, rng)
		f := m.Freeze(root)
		g, err := FrozenFromData(f.Data())
		if err != nil {
			t.Fatalf("trial %d: FrozenFromData: %v", trial, err)
		}
		if g.NumNodes() != f.NumNodes() || g.Size() != f.Size() {
			t.Fatalf("trial %d: sizes differ: %d/%d vs %d/%d", trial, g.NumNodes(), g.Size(), f.NumNodes(), f.Size())
		}
		probs := randomProbs(m, rng)
		pf, err := f.Prob(probs)
		if err != nil {
			t.Fatalf("trial %d: orig Prob: %v", trial, err)
		}
		pg, err := g.Prob(probs)
		if err != nil {
			t.Fatalf("trial %d: rebuilt Prob: %v", trial, err)
		}
		if pf != pg {
			t.Fatalf("trial %d: Prob differs: %v vs %v", trial, pg, pf)
		}
		assign := make([]int, m.NumVars())
		for k := 0; k < 32; k++ {
			for l := range assign {
				assign[l] = rng.Intn(m.Domain(l))
			}
			vf, err := f.Eval(assign)
			if err != nil {
				t.Fatalf("trial %d: orig Eval: %v", trial, err)
			}
			vg, err := g.Eval(assign)
			if err != nil {
				t.Fatalf("trial %d: rebuilt Eval: %v", trial, err)
			}
			if vf != vg {
				t.Fatalf("trial %d: Eval differs on %v", trial, assign)
			}
		}
		sf, sg := f.ComputeStats(), g.ComputeStats()
		if sf.Nodes != sg.Nodes || sf.MaxWidth != sg.MaxWidth || sf.AvgDegree != sg.AvgDegree {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, sg, sf)
		}
	}
}

// TestFrozenDataTerminalRoot covers snapshots whose root is a bare
// terminal (no internal nodes at all).
func TestFrozenDataTerminalRoot(t *testing.T) {
	m := MustNew([]int{2, 3})
	for _, root := range []Node{False, True} {
		f := m.Freeze(root)
		g, err := FrozenFromData(f.Data())
		if err != nil {
			t.Fatalf("root %v: %v", root, err)
		}
		got, err := g.Eval([]int{0, 0})
		if err != nil {
			t.Fatalf("root %v: Eval: %v", root, err)
		}
		if got != (root == True) {
			t.Fatalf("root %v: Eval = %v", root, got)
		}
	}
}

// TestFrozenDataRejects drives every validation clause of
// FrozenFromData with a minimal violating input.
func TestFrozenDataRejects(t *testing.T) {
	// A valid baseline: one node at level 0 over domains {2,2},
	// children False and True.
	valid := func() FrozenData {
		return FrozenData{
			Domains: []int32{2, 2},
			Levels:  []int32{2, 2, 0},
			Kids:    []int32{0, 1},
			Root:    2,
		}
	}
	if _, err := FrozenFromData(valid()); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*FrozenData)
		errPart string
	}{
		{"domain too small", func(d *FrozenData) { d.Domains[1] = 1 }, "need ≥ 2"},
		{"missing terminals", func(d *FrozenData) { d.Levels = d.Levels[:1] }, "terminals"},
		{"bad terminal level", func(d *FrozenData) { d.Levels[1] = 0 }, "terminal levels"},
		{"level out of range", func(d *FrozenData) { d.Levels[2] = 5 }, "outside"},
		{"negative level", func(d *FrozenData) { d.Levels[2] = -1 }, "outside"},
		{"kids too short", func(d *FrozenData) { d.Kids = d.Kids[:1] }, "Kids has"},
		{"kids too long", func(d *FrozenData) { d.Kids = append(d.Kids, 0) }, "Kids has"},
		{"child is self", func(d *FrozenData) { d.Kids[0] = 2 }, "child"},
		{"child negative", func(d *FrozenData) { d.Kids[1] = -3 }, "child"},
		{"root out of range", func(d *FrozenData) { d.Root = 3 }, "root"},
		{"root negative", func(d *FrozenData) { d.Root = -1 }, "root"},
	}
	for _, tc := range cases {
		d := valid()
		tc.mutate(&d)
		_, err := FrozenFromData(d)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

// TestFrozenDataOrderingViolation: an internal child at a level not
// strictly deeper than its parent is rejected (the ordered-diagram
// property), even though indices alone are topological.
func TestFrozenDataOrderingViolation(t *testing.T) {
	d := FrozenData{
		Domains: []int32{2, 2},
		// Node 2 at level 1, node 3 at level 1 with node 2 as a child:
		// topological by index but not ordered by level.
		Levels: []int32{2, 2, 1, 1},
		Kids:   []int32{0, 1, 2, 1},
		Root:   3,
	}
	if _, err := FrozenFromData(d); err == nil || !strings.Contains(err.Error(), "deeper") {
		t.Fatalf("ordering violation not rejected: %v", err)
	}
}
