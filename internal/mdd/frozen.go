package mdd

import "fmt"

// Frozen is an immutable compact snapshot of one rooted diagram,
// produced by Manager.Freeze. It owns its own node arrays — only the
// nodes reachable from the root, renumbered in topological (children
// before parents) order — and shares nothing with the manager, so it
// is safe to evaluate from any number of goroutines with no external
// synchronization, even while the original manager keeps growing.
//
// Beyond safety, the compaction pays for itself: Prob becomes a single
// forward pass over a dense array (no recursion, no hash lookups, good
// locality), which is the hot loop of every yield sweep.
type Frozen struct {
	domains []int32
	// levels[i] is the level of compact node i; terminals keep indices
	// 0 (False) and 1 (True) with level == len(domains).
	levels []int32
	// kidsOff[i] points into kids; node i's children are
	// kids[kidsOff[i] : kidsOff[i]+domains[levels[i]]].
	kidsOff []int32
	kids    []int32
	// root is the compact index of the frozen root. Children precede
	// parents, so the root is always the last node (or a terminal).
	root int32
}

// Freeze extracts the diagram rooted at n into an immutable snapshot.
// The manager is only read; it may be discarded or mutated afterwards
// without affecting the snapshot.
func (m *Manager) Freeze(n Node) *Frozen {
	f := &Frozen{
		domains: append([]int32(nil), m.domains...),
		levels:  []int32{int32(len(m.domains)), int32(len(m.domains))},
		kidsOff: []int32{0, 0},
		root:    int32(n),
	}
	if m.IsTerminal(n) {
		return f
	}
	// Post-order DFS assigns compact indices so that children precede
	// parents; remap[] carries old → new indices.
	remap := make([]int32, len(m.nodes))
	for i := range remap {
		remap[i] = nilIdx
	}
	remap[False], remap[True] = 0, 1
	var walk func(Node) int32
	walk = func(x Node) int32 {
		if remap[x] != nilIdx {
			return remap[x]
		}
		lv := int(m.nodes[x].level)
		old := m.Kids(x)
		mapped := make([]int32, len(old))
		for i, k := range old {
			mapped[i] = walk(k)
		}
		idx := int32(len(f.levels))
		f.levels = append(f.levels, int32(lv))
		f.kidsOff = append(f.kidsOff, int32(len(f.kids)))
		f.kids = append(f.kids, mapped...)
		remap[x] = idx
		return idx
	}
	f.root = walk(n)
	return f
}

// FrozenData is the raw arena content of a Frozen snapshot, exposed
// for serialization. Levels covers every node including the two
// terminal slots (indices 0 and 1, whose level is len(Domains)); Kids
// concatenates the child arrays of the internal nodes in node order.
// The per-node child offsets are deliberately absent: they are a
// prefix sum of the domain sizes along Levels, so FrozenFromData
// recomputes them, removing a whole class of inconsistent input.
type FrozenData struct {
	Domains []int32
	Levels  []int32
	Kids    []int32
	Root    int32
}

// Data returns the snapshot's arena for serialization. The returned
// slices alias the snapshot's internal arrays and must not be
// modified.
func (f *Frozen) Data() FrozenData {
	return FrozenData{Domains: f.domains, Levels: f.levels, Kids: f.kids, Root: f.root}
}

// FrozenFromData reconstructs a Frozen snapshot from its raw arena,
// validating every structural invariant evaluation relies on, so that
// a snapshot built from arbitrary (even hostile) input can never make
// Prob, Eval, Size or ComputeStats read out of bounds or loop:
//
//   - every domain has ≥ 2 values (the Manager's own constraint);
//   - nodes 0 and 1 are the terminals (level == len(Domains));
//   - every internal node's level is a valid variable level;
//   - the concatenated child arrays cover Kids exactly;
//   - children strictly precede their parent (kid index < node index),
//     which both guarantees Eval terminates and gives Prob its single
//     forward pass;
//   - internal children sit at strictly deeper levels than their
//     parent (the ordered-diagram property Manager.MkNode enforces);
//   - the root is a valid node index.
//
// The function takes ownership of the slices in d; callers must not
// modify them afterwards.
func FrozenFromData(d FrozenData) (*Frozen, error) {
	const maxLen = 1<<31 - 1
	if len(d.Domains) > maxLen || len(d.Levels) > maxLen || len(d.Kids) > maxLen {
		return nil, fmt.Errorf("mdd: frozen data: arrays exceed int32 indexing")
	}
	nvars := int32(len(d.Domains))
	for l, dom := range d.Domains {
		if dom < 2 {
			return nil, fmt.Errorf("mdd: frozen data: domain of level %d has size %d, need ≥ 2", l, dom)
		}
	}
	if len(d.Levels) < 2 {
		return nil, fmt.Errorf("mdd: frozen data: %d nodes, need the 2 terminals", len(d.Levels))
	}
	if d.Levels[0] != nvars || d.Levels[1] != nvars {
		return nil, fmt.Errorf("mdd: frozen data: terminal levels (%d, %d) != %d", d.Levels[0], d.Levels[1], nvars)
	}
	kidsOff := make([]int32, len(d.Levels))
	off := int64(0)
	for i := 2; i < len(d.Levels); i++ {
		lv := d.Levels[i]
		if lv < 0 || lv >= nvars {
			return nil, fmt.Errorf("mdd: frozen data: node %d at level %d outside [0,%d)", i, lv, nvars)
		}
		if off > int64(len(d.Kids)) {
			return nil, fmt.Errorf("mdd: frozen data: child arrays need %d entries, Kids has %d", off, len(d.Kids))
		}
		kidsOff[i] = int32(off)
		off += int64(d.Domains[lv])
	}
	if off != int64(len(d.Kids)) {
		return nil, fmt.Errorf("mdd: frozen data: child arrays need %d entries, Kids has %d", off, len(d.Kids))
	}
	for i := 2; i < len(d.Levels); i++ {
		end := int64(len(d.Kids))
		if i+1 < len(d.Levels) {
			end = int64(kidsOff[i+1])
		}
		for _, k := range d.Kids[kidsOff[i]:end] {
			if k < 0 || int(k) >= i {
				return nil, fmt.Errorf("mdd: frozen data: node %d has child %d outside [0,%d)", i, k, i)
			}
			if k >= 2 && d.Levels[k] <= d.Levels[i] {
				return nil, fmt.Errorf("mdd: frozen data: node %d (level %d) has child %d at level %d, want deeper", i, d.Levels[i], k, d.Levels[k])
			}
		}
	}
	if d.Root < 0 || int(d.Root) >= len(d.Levels) {
		return nil, fmt.Errorf("mdd: frozen data: root %d outside [0,%d)", d.Root, len(d.Levels))
	}
	return &Frozen{domains: d.Domains, levels: d.Levels, kidsOff: kidsOff, kids: d.Kids, root: d.Root}, nil
}

// NumVars returns the number of variable levels.
func (f *Frozen) NumVars() int { return len(f.domains) }

// Domain returns the domain size of the variable at the given level.
func (f *Frozen) Domain(level int) int { return int(f.domains[level]) }

// NumNodes returns the node count of the snapshot including both
// terminals (the conventional diagram size counts only reached
// terminals — see Size).
func (f *Frozen) NumNodes() int { return len(f.levels) }

// Size returns the number of nodes in the frozen diagram, counting
// terminals only when the root actually reaches them — the same
// convention as Manager.Size, so sizes agree across Freeze.
func (f *Frozen) Size() int {
	if f.root == int32(False) || f.root == int32(True) {
		return 1
	}
	reached := [2]bool{}
	for i := 2; i < len(f.levels); i++ {
		d := int(f.domains[f.levels[i]])
		off := int(f.kidsOff[i])
		for _, k := range f.kids[off : off+d] {
			if k < 2 {
				reached[k] = true
			}
		}
	}
	n := len(f.levels) - 2
	if reached[0] {
		n++
	}
	if reached[1] {
		n++
	}
	return n
}

func (f *Frozen) checkProbs(probs [][]float64) error {
	if len(probs) < len(f.domains) {
		return fmt.Errorf("mdd: probability table has %d levels, need %d", len(probs), len(f.domains))
	}
	for l, p := range probs[:len(f.domains)] {
		if len(p) != int(f.domains[l]) {
			return fmt.Errorf("mdd: probability row %d has %d entries, want %d", l, len(p), f.domains[l])
		}
	}
	return nil
}

// Prob returns P(f = 1) under independent per-level value
// distributions, exactly as Manager.Prob, but as one forward pass over
// the topologically ordered node array. All scratch state is local, so
// any number of goroutines may call Prob concurrently on one snapshot.
func (f *Frozen) Prob(probs [][]float64) (float64, error) {
	if err := f.checkProbs(probs); err != nil {
		return 0, err
	}
	return f.probInto(probs, make([]float64, len(f.levels))), nil
}

// ProbBuffer is reusable scratch space for ProbWith, letting tight
// sweep loops amortize the one allocation Prob makes per call. Each
// goroutine must use its own buffer.
type ProbBuffer struct {
	vals []float64
}

// ProbWith is Prob using caller-owned scratch space.
func (f *Frozen) ProbWith(probs [][]float64, buf *ProbBuffer) (float64, error) {
	if err := f.checkProbs(probs); err != nil {
		return 0, err
	}
	if cap(buf.vals) < len(f.levels) {
		buf.vals = make([]float64, len(f.levels))
	}
	return f.probInto(probs, buf.vals[:len(f.levels)]), nil
}

func (f *Frozen) probInto(probs [][]float64, vals []float64) float64 {
	vals[False], vals[True] = 0, 1
	for i := 2; i < len(f.levels); i++ {
		lv := f.levels[i]
		row := probs[lv]
		off := int(f.kidsOff[i])
		total := 0.0
		for v, k := range f.kids[off : off+len(row)] {
			if p := row[v]; p != 0 {
				total += p * vals[k]
			}
		}
		vals[i] = total
	}
	return vals[f.root]
}

// Eval evaluates the frozen function under the assignment
// (assign[level] is the value of the variable at that level).
func (f *Frozen) Eval(assign []int) (bool, error) {
	n := f.root
	for n >= 2 {
		lv := int(f.levels[n])
		if lv >= len(assign) {
			return false, fmt.Errorf("mdd: assignment too short: need level %d, have %d values", lv, len(assign))
		}
		v := assign[lv]
		if v < 0 || v >= int(f.domains[lv]) {
			return false, fmt.Errorf("mdd: value %d outside domain of level %d (size %d)", v, lv, f.domains[lv])
		}
		n = f.kids[int(f.kidsOff[n])+v]
	}
	return n == int32(True), nil
}

// ComputeStats returns the structural statistics of the frozen
// diagram, matching Manager.ComputeStats on the original root.
func (f *Frozen) ComputeStats() Stats {
	s := Stats{PerLevel: make([]int, len(f.domains))}
	edges := 0
	for i := 2; i < len(f.levels); i++ {
		lv := int(f.levels[i])
		s.PerLevel[lv]++
		if s.PerLevel[lv] > s.MaxWidth {
			s.MaxWidth = s.PerLevel[lv]
		}
		edges += int(f.domains[lv])
	}
	s.Nodes = f.Size()
	if internal := len(f.levels) - 2; internal > 0 {
		s.AvgDegree = float64(edges) / float64(internal)
	}
	return s
}
