package mdd

import "testing"

func buildThreshold(b *testing.B, m *Manager, vars, k int) Node {
	// "at least k of the MV variables are nonzero" via apply chain.
	b.Helper()
	counts := make([]Node, k+1)
	for i := range counts {
		counts[i] = False
	}
	counts[0] = True
	for v := 0; v < vars; v++ {
		nz, err := m.LiteralGeq(v, 1)
		if err != nil {
			b.Fatal(err)
		}
		for i := k; i >= 1; i-- {
			with, err := m.And(counts[i-1], nz)
			if err != nil {
				b.Fatal(err)
			}
			counts[i], err = m.Or(counts[i], with)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return counts[k]
}

// BenchmarkApplyThreshold measures MDD apply throughput.
func BenchmarkApplyThreshold(b *testing.B) {
	domains := make([]int, 10)
	for i := range domains {
		domains[i] = 4
	}
	for b.Loop() {
		m := MustNew(domains)
		root := buildThreshold(b, m, 10, 4)
		if root == False || root == True {
			b.Fatal("degenerate threshold")
		}
	}
}

// BenchmarkProb measures the probability traversal on a reduced
// diagram with thousands of nodes.
func BenchmarkProb(b *testing.B) {
	domains := make([]int, 12)
	probs := make([][]float64, 12)
	for i := range domains {
		domains[i] = 4
		probs[i] = []float64{0.4, 0.3, 0.2, 0.1}
	}
	m := MustNew(domains)
	root := buildThreshold(b, m, 12, 5)
	b.ResetTimer()
	for b.Loop() {
		p, err := m.Prob(root, probs)
		if err != nil {
			b.Fatal(err)
		}
		if p <= 0 || p >= 1 {
			b.Fatalf("p = %v", p)
		}
	}
}
