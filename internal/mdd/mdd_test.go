package mdd

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{3, 1}); err == nil {
		t.Error("domain of size 1 accepted")
	}
	m, err := New([]int{3, 2, 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.NumVars() != 3 {
		t.Errorf("NumVars = %d, want 3", m.NumVars())
	}
	if m.Domain(2) != 4 {
		t.Errorf("Domain(2) = %d, want 4", m.Domain(2))
	}
	if m.NumNodes() != 2 {
		t.Errorf("fresh manager NumNodes = %d, want 2 terminals", m.NumNodes())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad domains did not panic")
		}
	}()
	MustNew([]int{0})
}

func TestMkNodeReduction(t *testing.T) {
	m := MustNew([]int{3, 3})
	// All children equal → reduced away.
	n, err := m.MkNode(0, []Node{True, True, True})
	if err != nil {
		t.Fatalf("MkNode: %v", err)
	}
	if n != True {
		t.Errorf("redundant node not reduced: got %d", n)
	}
	// Distinct children → real node, canonical on re-creation.
	a, err := m.MkNode(1, []Node{False, True, False})
	if err != nil {
		t.Fatalf("MkNode: %v", err)
	}
	b, _ := m.MkNode(1, []Node{False, True, False})
	if a != b {
		t.Error("identical nodes not shared")
	}
	c, _ := m.MkNode(1, []Node{False, False, True})
	if c == a {
		t.Error("different nodes aliased")
	}
}

func TestMkNodeValidation(t *testing.T) {
	m := MustNew([]int{3, 3})
	if _, err := m.MkNode(5, []Node{False, True, False}); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := m.MkNode(0, []Node{False, True}); err == nil {
		t.Error("wrong child count accepted")
	}
	if _, err := m.MkNode(0, []Node{False, True, Node(99)}); err == nil {
		t.Error("dangling child handle accepted")
	}
	// Ordering violation: child at level 0 under parent at level 1.
	low, err := m.MkNode(0, []Node{False, True, False})
	if err != nil {
		t.Fatalf("MkNode: %v", err)
	}
	if _, err := m.MkNode(1, []Node{low, False, False}); err == nil {
		t.Error("ordering violation accepted")
	}
}

func TestLiterals(t *testing.T) {
	m := MustNew([]int{4, 3})
	eq2, err := m.LiteralEq(0, 2)
	if err != nil {
		t.Fatalf("LiteralEq: %v", err)
	}
	for v := 0; v < 4; v++ {
		got, err := m.Eval(eq2, []int{v, 0})
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if got != (v == 2) {
			t.Errorf("[x0==2](%d) = %v", v, got)
		}
	}
	ge1, err := m.LiteralGeq(1, 1)
	if err != nil {
		t.Fatalf("LiteralGeq: %v", err)
	}
	for v := 0; v < 3; v++ {
		got, _ := m.Eval(ge1, []int{0, v})
		if got != (v >= 1) {
			t.Errorf("[x1>=1](%d) = %v", v, got)
		}
	}
	// Geq(0) is the constant true.
	geAll, _ := m.LiteralGeq(0, 0)
	if geAll != True {
		t.Errorf("LiteralGeq(level,0) = %d, want True", geAll)
	}
	if _, err := m.LiteralEq(0, 7); err == nil {
		t.Error("LiteralEq with out-of-domain value accepted")
	}
	if _, err := m.LiteralGeq(9, 0); err == nil {
		t.Error("LiteralGeq with bad level accepted")
	}
}

func TestBooleanOps(t *testing.T) {
	m := MustNew([]int{3, 3})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralGeq(1, 2)
	and, err := m.And(a, b)
	if err != nil {
		t.Fatalf("And: %v", err)
	}
	or, err := m.Or(a, b)
	if err != nil {
		t.Fatalf("Or: %v", err)
	}
	xor, err := m.Xor(a, b)
	if err != nil {
		t.Fatalf("Xor: %v", err)
	}
	na, err := m.Not(a)
	if err != nil {
		t.Fatalf("Not: %v", err)
	}
	for v0 := 0; v0 < 3; v0++ {
		for v1 := 0; v1 < 3; v1++ {
			assign := []int{v0, v1}
			va, vb := v0 == 1, v1 >= 2
			if got, _ := m.Eval(and, assign); got != (va && vb) {
				t.Errorf("and(%d,%d) = %v", v0, v1, got)
			}
			if got, _ := m.Eval(or, assign); got != (va || vb) {
				t.Errorf("or(%d,%d) = %v", v0, v1, got)
			}
			if got, _ := m.Eval(xor, assign); got != (va != vb) {
				t.Errorf("xor(%d,%d) = %v", v0, v1, got)
			}
			if got, _ := m.Eval(na, assign); got != !va {
				t.Errorf("not(%d) = %v", v0, got)
			}
		}
	}
	// Variadic identities.
	if r, _ := m.And(); r != True {
		t.Error("And() != True")
	}
	if r, _ := m.Or(); r != False {
		t.Error("Or() != False")
	}
}

func TestCanonicityAcrossConstructions(t *testing.T) {
	m := MustNew([]int{3, 4})
	a, _ := m.LiteralEq(0, 0)
	b, _ := m.LiteralEq(1, 3)
	// ¬(a ∨ b) == ¬a ∧ ¬b
	or, _ := m.Or(a, b)
	lhs, _ := m.Not(or)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	rhs, _ := m.And(na, nb)
	if lhs != rhs {
		t.Error("De Morgan over MDDs: different nodes for equivalent functions")
	}
	// Double negation.
	nn, _ := m.Not(lhs)
	if nn != or {
		t.Error("double negation not canonical")
	}
}

func TestEvalErrors(t *testing.T) {
	m := MustNew([]int{3, 3})
	a, _ := m.LiteralEq(1, 1)
	if _, err := m.Eval(a, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := m.Eval(a, []int{0, 9}); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestSize(t *testing.T) {
	m := MustNew([]int{3, 3})
	if got := m.Size(True); got != 1 {
		t.Errorf("Size(True) = %d, want 1", got)
	}
	a, _ := m.LiteralEq(0, 1)
	// One internal node plus both terminals.
	if got := m.Size(a); got != 3 {
		t.Errorf("Size(literal) = %d, want 3", got)
	}
	b, _ := m.LiteralEq(1, 2)
	and, _ := m.And(a, b)
	// x0-node → x1-node → terminals: 4 nodes.
	if got := m.Size(and); got != 4 {
		t.Errorf("Size(and) = %d, want 4", got)
	}
}

func TestProb(t *testing.T) {
	m := MustNew([]int{3, 3})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralGeq(1, 1)
	and, _ := m.And(a, b)
	probs := [][]float64{
		{0.5, 0.3, 0.2},
		{0.1, 0.4, 0.5},
	}
	got, err := m.Prob(and, probs)
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	want := 0.3 * (0.4 + 0.5)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Prob = %v, want %v", got, want)
	}
	// Terminals.
	if p, _ := m.Prob(True, probs); p != 1 {
		t.Errorf("Prob(True) = %v", p)
	}
	if p, _ := m.Prob(False, probs); p != 0 {
		t.Errorf("Prob(False) = %v", p)
	}
	// Validation.
	if _, err := m.Prob(and, [][]float64{{1}}); err == nil {
		t.Error("short probability table accepted")
	}
	if _, err := m.Prob(and, [][]float64{{0.5, 0.5}, {0.1, 0.4, 0.5}}); err == nil {
		t.Error("wrong row width accepted")
	}
}

func TestProbSkippedVariableIntegratesOut(t *testing.T) {
	// f depends only on x1; x0's distribution must not matter as long
	// as it sums to 1 (skipped levels contribute factor 1).
	m := MustNew([]int{3, 2})
	b, _ := m.LiteralEq(1, 1)
	p1, _ := m.Prob(b, [][]float64{{1, 0, 0}, {0.25, 0.75}})
	p2, _ := m.Prob(b, [][]float64{{0.2, 0.3, 0.5}, {0.25, 0.75}})
	if math.Abs(p1-0.75) > 1e-15 || math.Abs(p2-0.75) > 1e-15 {
		t.Errorf("Prob with skipped level: %v / %v, want 0.75", p1, p2)
	}
}

func TestNodeLimit(t *testing.T) {
	m := MustNew([]int{4, 4, 4, 4, 4, 4}, WithNodeLimit(6))
	var err error
	f := False
	for lv := 0; lv < 6 && err == nil; lv++ {
		var lit Node
		lit, err = m.LiteralEq(lv, 1)
		if err != nil {
			break
		}
		f, err = m.Xor(f, lit)
	}
	if err != ErrNodeLimit {
		t.Fatalf("want ErrNodeLimit, got %v", err)
	}
}

func TestDOT(t *testing.T) {
	m := MustNew([]int{3, 2})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralEq(1, 1)
	f, _ := m.Or(a, b)
	dot := m.DOT(f, "test", []string{"w", "v1"})
	for _, frag := range []string{"digraph", `label="w"`, `label="v1"`, "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	// Values sharing a child must be grouped on one edge label.
	if !strings.Contains(dot, `label="0,2"`) && !strings.Contains(dot, `label="0"`) {
		t.Errorf("DOT edge labels unexpected:\n%s", dot)
	}
}

func TestComputeStats(t *testing.T) {
	m := MustNew([]int{3, 3})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralEq(1, 2)
	and, _ := m.And(a, b)
	s := m.ComputeStats(and)
	if s.Nodes != 4 {
		t.Errorf("Nodes = %d, want 4", s.Nodes)
	}
	if s.PerLevel[0] != 1 || s.PerLevel[1] != 1 {
		t.Errorf("PerLevel = %v, want [1 1]", s.PerLevel)
	}
	if s.MaxWidth != 1 {
		t.Errorf("MaxWidth = %d, want 1", s.MaxWidth)
	}
}

// randomMDD builds a random boolean function over MV variables both as
// an MDD and as a closure.
func randomMDD(m *Manager, rng *rand.Rand, depth int) (Node, func([]int) bool, error) {
	if depth == 0 || rng.Intn(4) == 0 {
		lv := rng.Intn(m.NumVars())
		val := rng.Intn(m.Domain(lv))
		if rng.Intn(2) == 0 {
			n, err := m.LiteralEq(lv, val)
			return n, func(a []int) bool { return a[lv] == val }, err
		}
		n, err := m.LiteralGeq(lv, val)
		return n, func(a []int) bool { return a[lv] >= val }, err
	}
	l, fl, err := randomMDD(m, rng, depth-1)
	if err != nil {
		return False, nil, err
	}
	r, fr, err := randomMDD(m, rng, depth-1)
	if err != nil {
		return False, nil, err
	}
	switch rng.Intn(4) {
	case 0:
		n, err := m.And(l, r)
		return n, func(a []int) bool { return fl(a) && fr(a) }, err
	case 1:
		n, err := m.Or(l, r)
		return n, func(a []int) bool { return fl(a) || fr(a) }, err
	case 2:
		n, err := m.Xor(l, r)
		return n, func(a []int) bool { return fl(a) != fr(a) }, err
	default:
		n, err := m.Not(l)
		return n, func(a []int) bool { return !fl(a) }, err
	}
}

func forEachAssign(domains []int, fn func([]int)) {
	assign := make([]int, len(domains))
	var rec func(int)
	rec = func(i int) {
		if i == len(domains) {
			fn(assign)
			return
		}
		for v := 0; v < domains[i]; v++ {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// Property: MDD evaluation matches the defining closure everywhere.
func TestQuickRandomSemantics(t *testing.T) {
	domains := []int{3, 4, 2, 3}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(domains)
		root, eval, err := randomMDD(m, rng, 4)
		if err != nil {
			return false
		}
		ok := true
		forEachAssign(domains, func(a []int) {
			got, err := m.Eval(root, a)
			if err != nil || got != eval(a) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Prob equals the exhaustive expectation under any product
// distribution.
func TestQuickProbMatchesEnumeration(t *testing.T) {
	domains := []int{3, 2, 3}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(domains)
		root, eval, err := randomMDD(m, rng, 4)
		if err != nil {
			return false
		}
		probs := make([][]float64, len(domains))
		for l, d := range domains {
			row := make([]float64, d)
			sum := 0.0
			for v := range row {
				row[v] = rng.Float64() + 0.01
				sum += row[v]
			}
			for v := range row {
				row[v] /= sum
			}
			probs[l] = row
		}
		want := 0.0
		forEachAssign(domains, func(a []int) {
			if eval(a) {
				p := 1.0
				for l, v := range a {
					p *= probs[l][v]
				}
				want += p
			}
		})
		got, err := m.Prob(root, probs)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: reduction invariant — no reachable node has all children
// equal, and no two distinct reachable nodes at the same level have
// identical child vectors.
func TestQuickReducedness(t *testing.T) {
	domains := []int{3, 3, 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(domains)
		root, _, err := randomMDD(m, rng, 5)
		if err != nil {
			return false
		}
		seen := map[Node]bool{}
		type sig struct {
			level int
			kids  string
		}
		sigs := map[sig]Node{}
		ok := true
		var walk func(Node)
		walk = func(n Node) {
			if seen[n] || m.IsTerminal(n) {
				return
			}
			seen[n] = true
			kids := m.Kids(n)
			allEq := true
			var sb strings.Builder
			for _, k := range kids {
				if k != kids[0] {
					allEq = false
				}
				sb.WriteString(string(rune(k)) + ",")
				if m.Level(k) <= m.Level(n) {
					ok = false // ordering violated
				}
			}
			if allEq {
				ok = false
			}
			key := sig{m.Level(n), sb.String()}
			if prev, dup := sigs[key]; dup && prev != n {
				ok = false
			}
			sigs[key] = n
			for _, k := range kids {
				walk(k)
			}
		}
		walk(root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
