package mdd

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomDiagram builds a pseudo-random diagram over mixed domains for
// structural comparisons between the manager and its frozen snapshot.
func randomDiagram(t *testing.T, rng *rand.Rand) (*Manager, Node) {
	t.Helper()
	domains := []int{3, 2, 4, 2, 3}
	m := MustNew(domains)
	root := False
	for i := 0; i < 12; i++ {
		lv := rng.Intn(len(domains))
		v := rng.Intn(domains[lv])
		lit, err := m.LiteralEq(lv, v)
		if err != nil {
			t.Fatalf("LiteralEq: %v", err)
		}
		if rng.Intn(2) == 0 {
			root, err = m.Or(root, lit)
		} else {
			term, e2 := m.And(lit, root)
			if e2 != nil {
				t.Fatalf("And: %v", e2)
			}
			root, err = m.Xor(root, term)
		}
		if err != nil {
			t.Fatalf("combine: %v", err)
		}
	}
	return m, root
}

func randomProbs(m *Manager, rng *rand.Rand) [][]float64 {
	probs := make([][]float64, m.NumVars())
	for l := range probs {
		row := make([]float64, m.Domain(l))
		sum := 0.0
		for v := range row {
			row[v] = rng.Float64()
			sum += row[v]
		}
		for v := range row {
			row[v] /= sum
		}
		probs[l] = row
	}
	return probs
}

func TestFrozenMatchesManager(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m, root := randomDiagram(t, rng)
		f := m.Freeze(root)
		if got, want := f.Size(), m.Size(root); got != want {
			t.Fatalf("trial %d: frozen size %d, manager %d", trial, got, want)
		}
		probs := randomProbs(m, rng)
		want, err := m.Prob(root, probs)
		if err != nil {
			t.Fatalf("Manager.Prob: %v", err)
		}
		got, err := f.Prob(probs)
		if err != nil {
			t.Fatalf("Frozen.Prob: %v", err)
		}
		// The frozen pass visits nodes in a fixed topological order and
		// the recursive pass in DFS order; both sum the same terms per
		// node, so the results agree exactly.
		if got != want {
			t.Fatalf("trial %d: frozen prob %v, manager %v", trial, got, want)
		}
		var buf ProbBuffer
		got2, err := f.ProbWith(probs, &buf)
		if err != nil || got2 != got {
			t.Fatalf("ProbWith: %v, %v (want %v)", got2, err, got)
		}
		ms, fs := m.ComputeStats(root), f.ComputeStats()
		if ms.Nodes != fs.Nodes || ms.MaxWidth != fs.MaxWidth || math.Abs(ms.AvgDegree-fs.AvgDegree) > 1e-12 {
			t.Fatalf("trial %d: stats differ: manager %+v, frozen %+v", trial, ms, fs)
		}
		for l := range ms.PerLevel {
			if ms.PerLevel[l] != fs.PerLevel[l] {
				t.Fatalf("trial %d: level %d width %d vs %d", trial, l, ms.PerLevel[l], fs.PerLevel[l])
			}
		}
		// Random assignments evaluate identically.
		for i := 0; i < 20; i++ {
			assign := make([]int, m.NumVars())
			for l := range assign {
				assign[l] = rng.Intn(m.Domain(l))
			}
			mv, err := m.Eval(root, assign)
			if err != nil {
				t.Fatalf("Manager.Eval: %v", err)
			}
			fv, err := f.Eval(assign)
			if err != nil {
				t.Fatalf("Frozen.Eval: %v", err)
			}
			if mv != fv {
				t.Fatalf("assign %v: manager %v, frozen %v", assign, mv, fv)
			}
		}
	}
}

func TestFrozenTerminals(t *testing.T) {
	m := MustNew([]int{2, 3})
	for _, root := range []Node{False, True} {
		f := m.Freeze(root)
		if f.Size() != 1 {
			t.Errorf("Freeze(%v).Size() = %d, want 1", root, f.Size())
		}
		p, err := f.Prob([][]float64{{0.5, 0.5}, {0.2, 0.3, 0.5}})
		if err != nil {
			t.Fatalf("Prob: %v", err)
		}
		want := 0.0
		if root == True {
			want = 1
		}
		if p != want {
			t.Errorf("Freeze(%v).Prob = %v, want %v", root, p, want)
		}
		got, err := f.Eval([]int{0, 0})
		if err != nil || got != (root == True) {
			t.Errorf("Freeze(%v).Eval = %v, %v", root, got, err)
		}
	}
}

func TestFrozenValidation(t *testing.T) {
	m := MustNew([]int{2, 2})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralEq(1, 1)
	root, _ := m.And(a, b)
	f := m.Freeze(root)
	if _, err := f.Prob([][]float64{{0.5, 0.5}}); err == nil {
		t.Error("short probability table accepted")
	}
	if _, err := f.Prob([][]float64{{0.5, 0.5}, {0.1, 0.2, 0.7}}); err == nil {
		t.Error("wrong row width accepted")
	}
	if _, err := f.Eval([]int{1}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := f.Eval([]int{2, 0}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if f.NumVars() != 2 || f.Domain(0) != 2 {
		t.Errorf("shape accessors: vars %d, domain(0) %d", f.NumVars(), f.Domain(0))
	}
}

// TestFrozenDetachedFromManager freezes, then keeps building on the
// manager; the snapshot must be unaffected.
func TestFrozenDetachedFromManager(t *testing.T) {
	m := MustNew([]int{2, 2, 2})
	a, _ := m.LiteralEq(0, 1)
	b, _ := m.LiteralEq(1, 1)
	root, _ := m.Or(a, b)
	f := m.Freeze(root)
	probs := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	before, _ := f.Prob(probs)
	// Grow the manager substantially.
	for v := 0; v < 2; v++ {
		c, _ := m.LiteralEq(2, v)
		if _, err := m.Xor(root, c); err != nil {
			t.Fatalf("Xor: %v", err)
		}
	}
	after, _ := f.Prob(probs)
	if before != after {
		t.Errorf("snapshot changed after manager growth: %v vs %v", before, after)
	}
}

// TestFrozenConcurrentReads hammers one snapshot (and the read-only
// manager paths) from many goroutines; run under -race this is the
// concurrency contract test for the evaluation engine's lowest layer.
func TestFrozenConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, root := randomDiagram(t, rng)
	f := m.Freeze(root)
	probs := randomProbs(m, rng)
	want, err := f.Prob(probs)
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	wantSize := m.Size(root)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf ProbBuffer
			for i := 0; i < 200; i++ {
				got, err := f.ProbWith(probs, &buf)
				if err != nil || got != want {
					errs <- err
					return
				}
				if mp, err := m.Prob(root, probs); err != nil || mp != want {
					errs <- err
					return
				}
				if m.Size(root) != wantSize || f.Size() != wantSize {
					errs <- nil
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent read mismatch (err=%v)", e)
	}
}
