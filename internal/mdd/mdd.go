// Package mdd implements reduced ordered multiple-value decision
// diagrams (ROMDDs) with boolean terminals: the data structure on which
// the paper's yield computation runs, and — through Apply — the direct
// construction route of Srinivasan et al. and Miller & Drechsler that
// the paper compares the coded-ROBDD route against.
//
// Each variable level has a fixed finite domain {0..d-1}. A
// non-terminal node at level l has exactly d(l) outgoing edges, one per
// domain value (the "edge labeled by a subset of values" view of the
// paper corresponds to several values sharing a child). Diagrams are
// reduced (no node has all children equal; no two nodes are identical)
// and ordered, hence canonical for a fixed level order.
//
// # Concurrency
//
// Construction (MkNode, And, Or, Xor, Not, Literal*) mutates the
// manager and must be serialized by the caller. Read-only operations
// (Prob, Size, Eval, ComputeStats, DOT, Kid, Kids, Level) allocate any
// scratch state per call, so once construction is finished any number
// of goroutines may run them concurrently on the same manager. For
// long-lived evaluation services, Freeze extracts an immutable compact
// snapshot ([Frozen]) of one rooted diagram that is safe to share
// unconditionally and evaluates faster than the manager's recursive
// traversals.
package mdd

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Node is a handle to an MDD node owned by a Manager. The zero Node is
// the False terminal.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

// ErrNodeLimit is returned when an operation would exceed the
// configured node limit.
var ErrNodeLimit = errors.New("mdd: node limit exceeded")

const nilIdx = int32(-1)

type mnode struct {
	level   int32
	kidsOff int32
	next    int32
}

// Manager owns an ROMDD arena over a fixed sequence of variable
// domains.
type Manager struct {
	domains []int32
	nodes   []mnode
	kids    []Node
	buckets []int32
	limit   int
	// Instrumentation totals, maintained as plain fields because
	// construction is single-threaded by contract; BuildStats snapshots
	// them.
	uniqueHits   int64
	nodesCreated int64
	reduced      int64
	memoHits     int64
	memoMisses   int64
}

// Option configures a Manager.
type Option func(*Manager)

// WithNodeLimit bounds the number of nodes; operations exceeding it
// fail with ErrNodeLimit. 0 means unlimited.
func WithNodeLimit(n int) Option { return func(m *Manager) { m.limit = n } }

// New creates a manager for variables at levels 0..len(domains)-1,
// where the variable at level l takes values in {0..domains[l]-1}.
// Every domain must have at least two values.
func New(domains []int, opts ...Option) (*Manager, error) {
	m := &Manager{domains: make([]int32, len(domains))}
	for i, d := range domains {
		if d < 2 {
			return nil, fmt.Errorf("mdd: domain of level %d has size %d, need ≥ 2", i, d)
		}
		m.domains[i] = int32(d)
	}
	// Terminals at level len(domains).
	m.nodes = append(m.nodes, mnode{level: int32(len(domains)), next: nilIdx}, mnode{level: int32(len(domains)), next: nilIdx})
	m.resizeBuckets(1 << 10)
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// MustNew is New for statically valid domains; it panics on error.
func MustNew(domains []int, opts ...Option) *Manager {
	m, err := New(domains, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// NumVars returns the number of variable levels.
func (m *Manager) NumVars() int { return len(m.domains) }

// Domain returns the domain size of the variable at the given level.
func (m *Manager) Domain(level int) int { return int(m.domains[level]) }

// NumNodes returns the total number of nodes allocated, including the
// two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// BuildStats is a point-in-time snapshot of the manager's construction
// instrumentation. (Stats, by contrast, describes the structure of one
// rooted diagram.) It must be read from the constructing goroutine or
// after construction has finished.
type BuildStats struct {
	// Nodes is the total node count including terminals.
	Nodes int
	// UniqueTableHits counts mk calls answered by an existing node,
	// NodesCreated fresh allocations, and Reductions mk calls collapsed
	// by the all-children-equal reduction rule.
	UniqueTableHits int64
	NodesCreated    int64
	Reductions      int64
	// ApplyMemoHits/Misses count lookups in the per-operation memo
	// tables of And/Or/Xor.
	ApplyMemoHits   int64
	ApplyMemoMisses int64
}

// BuildStats returns the current construction instrumentation.
func (m *Manager) BuildStats() BuildStats {
	return BuildStats{
		Nodes:           len(m.nodes),
		UniqueTableHits: m.uniqueHits,
		NodesCreated:    m.nodesCreated,
		Reductions:      m.reduced,
		ApplyMemoHits:   m.memoHits,
		ApplyMemoMisses: m.memoMisses,
	}
}

// Level returns the level of n, or NumVars() for terminals.
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// IsTerminal reports whether n is False or True.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Kid returns the child of n for the given domain value.
// n must not be a terminal.
func (m *Manager) Kid(n Node, value int) Node {
	nd := &m.nodes[n]
	return m.kids[int(nd.kidsOff)+value]
}

// Kids returns the children of n in domain-value order. The returned
// slice aliases manager storage and must not be modified.
func (m *Manager) Kids(n Node) []Node {
	nd := &m.nodes[n]
	return m.kids[nd.kidsOff : int(nd.kidsOff)+int(m.domains[nd.level])]
}

func (m *Manager) resizeBuckets(n int) {
	m.buckets = make([]int32, n)
	for i := range m.buckets {
		m.buckets[i] = nilIdx
	}
	for i := 2; i < len(m.nodes); i++ {
		b := m.hashNode(m.nodes[i].level, m.kidsAt(int32(i)))
		m.nodes[i].next = m.buckets[b]
		m.buckets[b] = int32(i)
	}
}

func (m *Manager) kidsAt(idx int32) []Node {
	nd := &m.nodes[idx]
	return m.kids[nd.kidsOff : int(nd.kidsOff)+int(m.domains[nd.level])]
}

func (m *Manager) hashNode(level int32, kids []Node) uint32 {
	h := uint32(level)*0x9e3779b1 + 0x85ebca77
	for _, k := range kids {
		h ^= uint32(k) + 0x9e3779b9 + (h << 6) + (h >> 2)
	}
	return h & uint32(len(m.buckets)-1)
}

type errLimitPanic struct{}

func (m *Manager) guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(errLimitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// mk returns the canonical node at level with the given children,
// applying the MDD reduction rule.
func (m *Manager) mk(level int32, kids []Node) Node {
	allEq := true
	for _, k := range kids[1:] {
		if k != kids[0] {
			allEq = false
			break
		}
	}
	if allEq {
		m.reduced++
		return kids[0]
	}
	b := m.hashNode(level, kids)
	for i := m.buckets[b]; i != nilIdx; i = m.nodes[i].next {
		nd := &m.nodes[i]
		if nd.level != level {
			continue
		}
		have := m.kidsAt(i)
		same := true
		for j := range kids {
			if have[j] != kids[j] {
				same = false
				break
			}
		}
		if same {
			m.uniqueHits++
			return Node(i)
		}
	}
	if m.limit > 0 && len(m.nodes) >= m.limit {
		panic(errLimitPanic{})
	}
	m.nodesCreated++
	off := int32(len(m.kids))
	m.kids = append(m.kids, kids...)
	idx := int32(len(m.nodes))
	m.nodes = append(m.nodes, mnode{level: level, kidsOff: off, next: m.buckets[b]})
	m.buckets[b] = idx
	if len(m.nodes) > 2*len(m.buckets) {
		m.resizeBuckets(2 * len(m.buckets))
	}
	return Node(idx)
}

// MkNode returns the canonical node for the given level and children
// (one child per domain value). It applies the reduction rule, so the
// result may be one of the children itself.
func (m *Manager) MkNode(level int, kids []Node) (Node, error) {
	if level < 0 || level >= len(m.domains) {
		return False, fmt.Errorf("mdd: level %d out of range [0,%d)", level, len(m.domains))
	}
	if len(kids) != int(m.domains[level]) {
		return False, fmt.Errorf("mdd: level %d wants %d children, got %d", level, m.domains[level], len(kids))
	}
	for _, k := range kids {
		if int(k) < 0 || int(k) >= len(m.nodes) {
			return False, fmt.Errorf("mdd: child handle %d out of range", k)
		}
		if k > True && m.nodes[k].level <= int32(level) {
			return False, fmt.Errorf("mdd: child at level %d violates ordering under parent level %d", m.nodes[k].level, level)
		}
	}
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.mk(int32(level), kids)
	}()
	return out, err
}

// LiteralEq returns the boolean function [x_level == value].
func (m *Manager) LiteralEq(level, value int) (Node, error) {
	if level < 0 || level >= len(m.domains) {
		return False, fmt.Errorf("mdd: level %d out of range [0,%d)", level, len(m.domains))
	}
	if value < 0 || value >= int(m.domains[level]) {
		return False, fmt.Errorf("mdd: value %d outside domain of level %d (size %d)", value, level, m.domains[level])
	}
	kids := make([]Node, m.domains[level])
	kids[value] = True
	return m.MkNode(level, kids)
}

// LiteralGeq returns the boolean function [x_level >= value].
func (m *Manager) LiteralGeq(level, value int) (Node, error) {
	if level < 0 || level >= len(m.domains) {
		return False, fmt.Errorf("mdd: level %d out of range [0,%d)", level, len(m.domains))
	}
	if value < 0 || value >= int(m.domains[level]) {
		return False, fmt.Errorf("mdd: value %d outside domain of level %d (size %d)", value, level, m.domains[level])
	}
	kids := make([]Node, m.domains[level])
	for v := value; v < int(m.domains[level]); v++ {
		kids[v] = True
	}
	return m.MkNode(level, kids)
}

type opKind uint8

const (
	opAnd opKind = iota + 1
	opOr
	opXor
)

type applyKey struct {
	op   opKind
	a, b Node
}

// apply computes the binary boolean combination of two MDDs.
func (m *Manager) apply(op opKind, a, b Node, memo map[applyKey]Node) Node {
	// Terminal short-cuts.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
	}
	if a > b && (op == opAnd || op == opOr || op == opXor) {
		a, b = b, a
	}
	key := applyKey{op: op, a: a, b: b}
	if r, ok := memo[key]; ok {
		m.memoHits++
		return r
	}
	m.memoMisses++
	la, lb := m.nodes[a].level, m.nodes[b].level
	top := la
	if lb < top {
		top = lb
	}
	d := int(m.domains[top])
	kids := make([]Node, d)
	for v := 0; v < d; v++ {
		ca, cb := a, b
		if la == top {
			ca = m.Kid(a, v)
		}
		if lb == top {
			cb = m.Kid(b, v)
		}
		kids[v] = m.apply(op, ca, cb, memo)
	}
	r := m.mk(top, kids)
	memo[key] = r
	// XOR of a==True cases handled by short-cuts; nothing else to do.
	return r
}

func (m *Manager) binop(op opKind, a, b Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.apply(op, a, b, make(map[applyKey]Node))
	}()
	return out, err
}

// And returns the conjunction of the arguments (True when empty).
func (m *Manager) And(xs ...Node) (Node, error) {
	out := True
	for _, x := range xs {
		r, err := m.binop(opAnd, out, x)
		if err != nil {
			return False, err
		}
		out = r
	}
	return out, nil
}

// Or returns the disjunction of the arguments (False when empty).
func (m *Manager) Or(xs ...Node) (Node, error) {
	out := False
	for _, x := range xs {
		r, err := m.binop(opOr, out, x)
		if err != nil {
			return False, err
		}
		out = r
	}
	return out, nil
}

// Xor returns the exclusive-or of a and b.
func (m *Manager) Xor(a, b Node) (Node, error) { return m.binop(opXor, a, b) }

// Not returns the complement of a.
func (m *Manager) Not(a Node) (Node, error) {
	var out Node
	var err error
	func() {
		defer m.guard(&err)
		out = m.notRec(a, make(map[Node]Node))
	}()
	return out, err
}

func (m *Manager) notRec(a Node, memo map[Node]Node) Node {
	if a == False {
		return True
	}
	if a == True {
		return False
	}
	if r, ok := memo[a]; ok {
		return r
	}
	old := m.Kids(a)
	kids := make([]Node, len(old))
	for i, k := range old {
		kids[i] = m.notRec(k, memo)
	}
	r := m.mk(m.nodes[a].level, kids)
	memo[a] = r
	return r
}

// Eval evaluates the boolean function rooted at n under the assignment
// (assign[level] is the value of the variable at that level).
func (m *Manager) Eval(n Node, assign []int) (bool, error) {
	for !m.IsTerminal(n) {
		nd := &m.nodes[n]
		lv := int(nd.level)
		if lv >= len(assign) {
			return false, fmt.Errorf("mdd: assignment too short: need level %d, have %d values", lv, len(assign))
		}
		v := assign[lv]
		if v < 0 || v >= int(m.domains[lv]) {
			return false, fmt.Errorf("mdd: value %d outside domain of level %d (size %d)", v, lv, m.domains[lv])
		}
		n = m.Kid(n, v)
	}
	return n == True, nil
}

// Size returns the number of nodes in the diagram rooted at n,
// including the terminals it reaches. The visited set is allocated per
// call, so concurrent Size calls on a fully built manager are safe.
func (m *Manager) Size(n Node) int {
	return m.sizeRec(n, make([]bool, len(m.nodes)))
}

func (m *Manager) sizeRec(n Node, seen []bool) int {
	if seen[n] {
		return 0
	}
	seen[n] = true
	if m.IsTerminal(n) {
		return 1
	}
	total := 1
	for _, k := range m.Kids(n) {
		total += m.sizeRec(k, seen)
	}
	return total
}

// Prob returns P(f = 1) when the variables are independent and the
// variable at level l takes value v with probability probs[l][v]
// (probs[l] must have one entry per domain value and sum to 1; the sum
// is not checked so that sub-distributions can be integrated too).
// This is the depth-first traversal of Section 2 of the paper.
func (m *Manager) Prob(n Node, probs [][]float64) (float64, error) {
	if len(probs) < len(m.domains) {
		return 0, fmt.Errorf("mdd: probability table has %d levels, need %d", len(probs), len(m.domains))
	}
	for l, p := range probs[:len(m.domains)] {
		if len(p) != int(m.domains[l]) {
			return 0, fmt.Errorf("mdd: probability row %d has %d entries, want %d", l, len(p), m.domains[l])
		}
	}
	memo := make([]float64, len(m.nodes))
	done := make([]bool, len(m.nodes))
	memo[True] = 1
	done[False], done[True] = true, true
	return m.probRec(n, probs, memo, done), nil
}

func (m *Manager) probRec(n Node, probs [][]float64, memo []float64, done []bool) float64 {
	if done[n] {
		return memo[n]
	}
	lv := int(m.nodes[n].level)
	var total float64
	for v, k := range m.Kids(n) {
		if p := probs[lv][v]; p != 0 {
			total += p * m.probRec(k, probs, memo, done)
		}
	}
	memo[n] = total
	done[n] = true
	return total
}

// DOT renders the diagram rooted at n in Graphviz dot syntax. Variable
// names are taken from names when provided (indexed by level).
func (m *Manager) DOT(n Node, title string, names []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	m.dotRec(n, make([]bool, len(m.nodes)), names, &sb)
	sb.WriteString("}\n")
	return sb.String()
}

func (m *Manager) dotRec(n Node, seen []bool, names []string, sb *strings.Builder) {
	if seen[n] {
		return
	}
	seen[n] = true
	if m.IsTerminal(n) {
		fmt.Fprintf(sb, "  n%d [shape=box label=\"%d\"];\n", n, n)
		return
	}
	lv := int(m.nodes[n].level)
	label := fmt.Sprintf("x%d", lv)
	if lv < len(names) && names[lv] != "" {
		label = names[lv]
	}
	fmt.Fprintf(sb, "  n%d [shape=circle label=%q];\n", n, label)
	// Group values sharing a child on one edge, as the paper draws them.
	byKid := make(map[Node][]int)
	for v, k := range m.Kids(n) {
		byKid[k] = append(byKid[k], v)
	}
	for _, k := range m.Kids(n) {
		vals, ok := byKid[k]
		if !ok {
			continue
		}
		delete(byKid, k)
		lbl := make([]string, len(vals))
		for i, v := range vals {
			lbl[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(sb, "  n%d -> n%d [label=%q];\n", n, k, strings.Join(lbl, ","))
		m.dotRec(k, seen, names, sb)
	}
}

// Stats summarizes the diagram rooted at n.
type Stats struct {
	Nodes     int // total nodes including terminals
	PerLevel  []int
	MaxWidth  int // widest level
	AvgDegree float64
}

// ComputeStats returns structural statistics for the diagram rooted
// at n.
func (m *Manager) ComputeStats(n Node) Stats {
	s := Stats{PerLevel: make([]int, len(m.domains))}
	seen := make([]bool, len(m.nodes))
	edges := 0
	var walk func(Node)
	var nodes int
	walk = func(x Node) {
		if seen[x] {
			return
		}
		seen[x] = true
		nodes++
		if m.IsTerminal(x) {
			return
		}
		lv := int(m.nodes[x].level)
		s.PerLevel[lv]++
		if s.PerLevel[lv] > s.MaxWidth {
			s.MaxWidth = s.PerLevel[lv]
		}
		for _, k := range m.Kids(x) {
			edges++
			walk(k)
		}
	}
	walk(n)
	s.Nodes = nodes
	internal := nodes
	if n != False && n != True {
		internal = nodes - countTerminalsReached(m, n)
	}
	if internal > 0 {
		s.AvgDegree = float64(edges) / math.Max(1, float64(internal))
	}
	return s
}

func countTerminalsReached(m *Manager, n Node) int {
	seen := make([]bool, len(m.nodes))
	count := 0
	var walk func(Node)
	walk = func(x Node) {
		if seen[x] {
			return
		}
		seen[x] = true
		if m.IsTerminal(x) {
			count++
			return
		}
		for _, k := range m.Kids(x) {
			walk(k)
		}
	}
	walk(n)
	return count
}
