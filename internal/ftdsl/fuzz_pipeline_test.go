package ftdsl

import (
	"strings"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/yield"
)

// FuzzPipeline drives every accepted ftdsl system through the full
// combinatorial pipeline — parse, encode G, order, compile the coded
// ROBDD, convert to the ROMDD, traverse — and checks the method's
// invariants on whatever the fuzzer constructs: no panics anywhere,
// Y_M ∈ [0, 1], and the truncation error bound within the requested ε.
//
// The corpus seeds cover the gate vocabulary (and/or/not/xor/atleast,
// constants, named defines) and systems where components share
// sub-expressions; the system size is capped so one fuzz iteration
// stays cheap.
func FuzzPipeline(f *testing.F) {
	f.Add(tmrSrc, 1.5, 2.0, 5e-3)
	f.Add("system x\ncomponent a 0.1\ncomponent b 0.2\nfails = or(a, b)\n", 0.5, 0.25, 1e-2)
	f.Add("component a 0.1\ncomponent b 0.1\ndefine d = not(a)\nfails = and(d, b)\n", 2.0, 1.0, 1e-3)
	f.Add("component a 0.2\ncomponent b 0.2\ncomponent c 0.2\nfails = xor(a, xor(b, c))\n", 1.0, 3.4, 5e-3)
	f.Add("component a 0.3\nfails = or(a, false)\n", 4.0, 2.0, 5e-2)
	f.Add("component a 0.1\ncomponent b 0.1\ncomponent c 0.1\ncomponent d 0.1\n"+
		"define m = atleast(2, a, b, c)\nfails = and(m, not(d))\n", 1.0, 0.5, 1e-2)
	f.Fuzz(func(t *testing.T, src string, lambda, alpha, eps float64) {
		sys, err := Parse(src)
		if err != nil {
			return
		}
		// Cap the work per iteration: the pipeline is exponential in
		// the worst case, and the fuzzer will happily build huge
		// systems. Rejections are not failures.
		if len(sys.Components) > 10 || sys.FaultTree.NumGates() > 64 {
			return
		}
		dist, err := defects.NewNegativeBinomial(lambda, alpha)
		if err != nil {
			return
		}
		if !(eps > 1e-9 && eps < 1) {
			return
		}
		opts := yield.Options{Defects: dist, Epsilon: eps, NodeLimit: 1 << 18}
		res, err := yield.Evaluate(sys, opts)
		if err != nil {
			// Invalid models (e.g. P_L > 1 after parsing) and blown
			// node budgets must be reported as errors, never panics.
			return
		}
		if !(res.Yield >= 0 && res.Yield <= 1) {
			t.Fatalf("yield %v outside [0,1]\nλ=%g α=%g ε=%g\nsource:\n%s", res.Yield, lambda, alpha, eps, src)
		}
		if !(res.ErrorBound >= 0 && res.ErrorBound <= eps) {
			t.Fatalf("error bound %v outside [0, ε=%g]\nλ=%g α=%g\nsource:\n%s", res.ErrorBound, eps, lambda, alpha, src)
		}
		if res.Yield+res.ErrorBound > 1+1e-12 {
			t.Fatalf("upper bound %v exceeds 1\nsource:\n%s", res.Yield+res.ErrorBound, src)
		}
		// Small systems additionally cross-check against the
		// inclusion–exclusion reference.
		if len(sys.Components) <= 6 {
			bf, err := yield.BruteForce(sys, opts)
			if err != nil {
				t.Fatalf("BruteForce rejected what Evaluate accepted: %v\nsource:\n%s", err, src)
			}
			if diff := res.Yield - bf.Yield; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("pipeline %v vs inclusion–exclusion %v (diff %g)\nsource:\n%s", res.Yield, bf.Yield, diff, src)
			}
		}
	})
}

// TestFuzzPipelineSeeds runs the pipeline fuzz body over a few
// deterministic extra inputs so `go test` (without -fuzz) still
// exercises the full-pipeline property, including gate-heavy sources.
func TestFuzzPipelineSeeds(t *testing.T) {
	srcs := []string{
		tmrSrc,
		"component a 0.1\ncomponent b 0.1\ncomponent c 0.1\nfails = atleast(2, a, b, not(c))\n",
		"component a 0.05\ncomponent b 0.05\n" + strings.Repeat("define z = or(a, b)\n", 1) + "fails = xor(z, and(a, b))\n",
	}
	for _, src := range srcs {
		sys, err := Parse(src)
		if err != nil {
			t.Fatalf("seed did not parse: %v\n%s", err, src)
		}
		dist, err := defects.NewNegativeBinomial(1.5, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-3})
		if err != nil {
			t.Fatalf("seed did not evaluate: %v\n%s", err, src)
		}
		if !(res.Yield >= 0 && res.Yield <= 1) || res.ErrorBound > 1e-3 {
			t.Fatalf("seed invariants violated: Y=%v bound=%v\n%s", res.Yield, res.ErrorBound, src)
		}
	}
}
