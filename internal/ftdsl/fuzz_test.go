package ftdsl

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted
// systems always validate.
func FuzzParse(f *testing.F) {
	f.Add(tmrSrc)
	f.Add("system x\ncomponent a 0.1\ncomponent b 0.2\nfails = or(a, b)\n")
	f.Add("component a 0.1\ncomponent b 0.1\ndefine d = not(a)\nfails = and(d, b)\n")
	f.Add("fails = \n")
	f.Add("component a nan\ncomponent b 0.1\nfails = a")
	f.Add("component a 0.1\ncomponent b 0.1\nfails = atleast(1, a, b)")
	f.Add(strings.Repeat("component x 0.0001\n", 3))
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := Parse(src)
		if err != nil {
			return
		}
		if verr := sys.Validate(); verr != nil {
			t.Fatalf("accepted system fails validation: %v\nsource:\n%s", verr, src)
		}
		// Accepted systems must be evaluable on the all-false and
		// all-true assignments.
		all := make([]bool, len(sys.Components))
		if _, err := sys.FaultTree.Eval(all); err != nil {
			t.Fatalf("Eval(false…): %v", err)
		}
		for i := range all {
			all[i] = true
		}
		if _, err := sys.FaultTree.Eval(all); err != nil {
			t.Fatalf("Eval(true…): %v", err)
		}
	})
}
