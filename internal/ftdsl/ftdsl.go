// Package ftdsl parses a small text format describing a fault-tolerant
// system: its components with their defect-lethality probabilities and
// the fault-tree expression over them. It exists so the command-line
// tools can evaluate user systems without writing Go.
//
// Format (line oriented; '#' starts a comment):
//
//	system   <name>
//	component <name> <P_i>
//	define   <name> = <expr>        # optional named subexpressions
//	fails    = <expr>               # the fault tree: 1 ⇔ system down
//
// Expressions:
//
//	and(e, e, ...)   or(e, e, ...)   not(e)   xor(e, e, ...)
//	atleast(k, e, e, ...)            true     false
//	<component or defined name>
//
// Example (TMR):
//
//	system tmr
//	component m1 0.2
//	component m2 0.15
//	component m3 0.15
//	fails = atleast(2, m1, m2, m3)
package ftdsl

import (
	"fmt"
	"strconv"
	"strings"

	"socyield/internal/logic"
	"socyield/internal/yield"
)

// Parse reads a system description.
func Parse(src string) (*yield.System, error) {
	sys := &yield.System{FaultTree: logic.New()}
	defs := make(map[string]logic.GateID)
	compSeen := make(map[string]bool)
	haveFails := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("ftdsl: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "system "):
			sys.Name = strings.TrimSpace(strings.TrimPrefix(line, "system "))
		case strings.HasPrefix(line, "component "):
			fields := strings.Fields(strings.TrimPrefix(line, "component "))
			if len(fields) != 2 {
				return nil, fail("component wants <name> <P>, got %q", line)
			}
			name := fields[0]
			if compSeen[name] {
				return nil, fail("component %q declared twice", name)
			}
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fail("bad probability %q: %v", fields[1], err)
			}
			compSeen[name] = true
			sys.Components = append(sys.Components, yield.Component{Name: name, P: p})
			sys.FaultTree.Input(name)
		case strings.HasPrefix(line, "define "):
			rest := strings.TrimPrefix(line, "define ")
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, fail("define wants <name> = <expr>")
			}
			name := strings.TrimSpace(rest[:eq])
			if name == "" {
				return nil, fail("define wants a name")
			}
			if _, dup := defs[name]; dup || compSeen[name] {
				return nil, fail("name %q already in use", name)
			}
			id, err := parseExpr(strings.TrimSpace(rest[eq+1:]), sys.FaultTree, defs)
			if err != nil {
				return nil, fail("%v", err)
			}
			defs[name] = id
		case strings.HasPrefix(line, "fails"):
			rest := strings.TrimPrefix(line, "fails")
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, fail("fails wants = <expr>")
			}
			if haveFails {
				return nil, fail("fails declared twice")
			}
			id, err := parseExpr(strings.TrimSpace(rest[eq+1:]), sys.FaultTree, defs)
			if err != nil {
				return nil, fail("%v", err)
			}
			sys.FaultTree.SetOutput(id)
			haveFails = true
		default:
			return nil, fail("unknown directive %q", strings.Fields(line)[0])
		}
	}
	if !haveFails {
		return nil, fmt.Errorf("ftdsl: missing 'fails = <expr>'")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// parseExpr parses a single expression.
func parseExpr(s string, n *logic.Netlist, defs map[string]logic.GateID) (logic.GateID, error) {
	p := &parser{src: s, n: n, defs: defs}
	id, err := p.expr()
	if err != nil {
		return 0, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input %q", p.src[p.pos:])
	}
	return id, nil
}

type parser struct {
	src  string
	pos  int
	n    *logic.Netlist
	defs map[string]logic.GateID
}

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) expect(c byte) error {
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d of %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *parser) expr() (logic.GateID, error) {
	p.ws()
	name := p.ident()
	if name == "" {
		return 0, fmt.Errorf("expected expression at offset %d of %q", p.pos, p.src)
	}
	p.ws()
	isCall := p.pos < len(p.src) && p.src[p.pos] == '('
	if !isCall {
		switch name {
		case "true":
			return p.n.Const(true), nil
		case "false":
			return p.n.Const(false), nil
		}
		if id, ok := p.defs[name]; ok {
			return id, nil
		}
		if id, ok := p.n.InputByName(name); ok {
			return id, nil
		}
		return 0, fmt.Errorf("unknown name %q", name)
	}
	p.pos++ // consume '('
	var k int
	if name == "atleast" {
		p.ws()
		numStr := p.ident()
		var err error
		k, err = strconv.Atoi(numStr)
		if err != nil {
			return 0, fmt.Errorf("atleast wants an integer first argument, got %q", numStr)
		}
		if err := p.expect(','); err != nil {
			return 0, err
		}
	}
	var args []logic.GateID
	for {
		id, err := p.expr()
		if err != nil {
			return 0, err
		}
		args = append(args, id)
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return 0, err
	}
	switch name {
	case "and":
		return p.n.And(args...), nil
	case "or":
		return p.n.Or(args...), nil
	case "xor":
		return p.n.Xor(args...), nil
	case "not":
		if len(args) != 1 {
			return 0, fmt.Errorf("not wants exactly one argument, got %d", len(args))
		}
		return p.n.Not(args[0]), nil
	case "atleast":
		return p.n.AtLeast(k, args...), nil
	default:
		return 0, fmt.Errorf("unknown operator %q", name)
	}
}
