package ftdsl

import (
	"math"
	"strings"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/yield"
)

const tmrSrc = `
# triple modular redundancy
system tmr
component m1 0.2
component m2 0.15
component m3 0.15
fails = atleast(2, m1, m2, m3)
`

func TestParseTMR(t *testing.T) {
	sys, err := Parse(tmrSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sys.Name != "tmr" {
		t.Errorf("name = %q", sys.Name)
	}
	if len(sys.Components) != 3 {
		t.Fatalf("components = %d", len(sys.Components))
	}
	if sys.Components[0].P != 0.2 {
		t.Errorf("P(m1) = %v", sys.Components[0].P)
	}
	// Semantics: down iff ≥ 2 failed.
	down, err := sys.FaultTree.EvalNamed(map[string]bool{"m1": true, "m2": true})
	if err != nil || !down {
		t.Errorf("two failures: down=%v err=%v", down, err)
	}
	down, _ = sys.FaultTree.EvalNamed(map[string]bool{"m1": true})
	if down {
		t.Error("one failure reported as down")
	}
	// The parsed system must evaluate identically to the Go-built one.
	dist, _ := defects.NewNegativeBinomial(2, 2)
	res, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	ref, err := yield.BruteForce(sys, yield.Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if math.Abs(res.Yield-ref.Yield) > 1e-10 {
		t.Errorf("parsed system: %v vs %v", res.Yield, ref.Yield)
	}
}

func TestParseDefines(t *testing.T) {
	src := `
system bridged
component a 0.1
component b 0.1
component c 0.1
component d 0.1
define leftPath = and(not(a), not(b))
define rightPath = and(not(c), not(d))
fails = not(or(leftPath, rightPath))
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Functions iff at least one path is fully alive.
	down, _ := sys.FaultTree.EvalNamed(map[string]bool{"a": true, "c": true})
	if !down {
		t.Error("both paths broken but system up")
	}
	down, _ = sys.FaultTree.EvalNamed(map[string]bool{"a": true, "b": true, "c": false})
	if down {
		t.Error("right path intact but system down")
	}
}

func TestParseOperators(t *testing.T) {
	src := `
system ops
component a 0.1
component b 0.1
fails = xor(a, or(b, false), and(true, not(b)))
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for mask := 0; mask < 4; mask++ {
		a, b := mask&1 != 0, mask&2 != 0
		want := a != (b != !b) // xor of three terms: a, b, ¬b
		got, err := sys.FaultTree.EvalNamed(map[string]bool{"a": a, "b": b})
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		if got != want {
			t.Errorf("a=%v b=%v: got %v, want %v", a, b, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"missing fails", "system x\ncomponent a 0.1\ncomponent b 0.1\n", "missing 'fails"},
		{"bad directive", "bogus line\n", "unknown directive"},
		{"bad probability", "component a zero\ncomponent b 0.1\nfails = a\n", "bad probability"},
		{"dup component", "component a 0.1\ncomponent a 0.1\ncomponent b 0.1\nfails = a\n", "declared twice"},
		{"component fields", "component a\n", "wants <name> <P>"},
		{"unknown name", "component a 0.1\ncomponent b 0.1\nfails = q\n", "unknown name"},
		{"unknown op", "component a 0.1\ncomponent b 0.1\nfails = nandify(a, b)\n", "unknown operator"},
		{"not arity", "component a 0.1\ncomponent b 0.1\nfails = not(a, b)\n", "exactly one"},
		{"atleast int", "component a 0.1\ncomponent b 0.1\nfails = atleast(x, a, b)\n", "integer"},
		{"trailing", "component a 0.1\ncomponent b 0.1\nfails = or(a, b) junk\n", "trailing"},
		{"define dup", "component a 0.1\ncomponent b 0.1\ndefine a = b\nfails = a\n", "already in use"},
		{"define form", "component a 0.1\ndefine q\nfails = a\n", "define wants"},
		{"fails dup", "component a 0.1\ncomponent b 0.1\nfails = a\nfails = b\n", "declared twice"},
		{"unbalanced", "component a 0.1\ncomponent b 0.1\nfails = or(a, b\n", "expected"},
		{"empty expr", "component a 0.1\ncomponent b 0.1\nfails = \n", "expected expression"},
		{"one component", "component a 0.5\nfails = a\n", "components"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestParseWhitespaceAndComments(t *testing.T) {
	src := "  system   padded  \n\n # full comment line\ncomponent a 0.1 # trailing comment\ncomponent b 0.2\nfails   =   or( a ,  b )  \n"
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sys.Name != "padded" {
		t.Errorf("name = %q", sys.Name)
	}
	down, _ := sys.FaultTree.EvalNamed(map[string]bool{"b": true})
	if !down {
		t.Error("or(a,b) with b=1 must be down")
	}
}
