// Package montecarlo estimates yield by simulation — the alternative
// approach the paper's introduction weighs against the combinatorial
// method: not limited by system complexity, but expensive and without
// strict error control. It serves as the baseline benchmark and as an
// independent statistical cross-check of the combinatorial results.
//
// Simulation parallelizes trivially, so Estimate shards its samples
// into fixed-size chunks, each with its own PRNG stream seeded
// deterministically from the base seed and the chunk index, and fans
// the chunks out over a worker pool. Because the stream assignment
// depends only on (Seed, chunk index) — never on scheduling — the
// estimate is bit-identical for every worker count, including 1.
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/defects"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

// Options configure a simulation run.
type Options struct {
	// Defects is the distribution of the number of defects (required).
	Defects defects.Distribution
	// Samples is the number of simulated dies (required, > 0).
	Samples int
	// Seed seeds the deterministic PRNG family. The estimate depends
	// only on Seed and Samples, not on Workers.
	Seed int64
	// MaxDefectsPerDie caps the per-die defect count sampled from the
	// distribution's inverse CDF (default 10000).
	MaxDefectsPerDie int
	// Workers is the number of simulation goroutines; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Recorder, when non-nil, receives simulation instrumentation:
	// "mc.chunks"/"mc.samples" counters, a "mc.chunk_ns" latency
	// histogram and a "mc.samples_per_sec" gauge of the effective
	// aggregate rate. Per-chunk granularity (4096 dies), so the per-die
	// loop stays clock-free.
	Recorder *obs.Registry
	// Progress, when non-nil, is advanced by one per completed chunk.
	Progress *obs.Progress
}

// Result is a simulation estimate with a normal-approximation
// confidence interval.
type Result struct {
	// Yield is the point estimate: fraction of simulated dies that
	// function.
	Yield float64
	// StdErr is the standard error of the estimate.
	StdErr float64
	// Samples echoes the sample count.
	Samples int
	// Degenerate reports an all-pass or all-fail sample: the binomial
	// variance estimate is then exactly zero and CI collapses to a
	// vacuously tight point. Use Wilson for an interval that stays
	// honest in this regime (at p̂ = 1 its lower bound is the
	// rule-of-three analogue n/(n+z²)).
	Degenerate bool
}

// CI returns the half-width of the confidence interval at the given
// number of standard errors (1.96 ≈ 95%).
func (r Result) CI(z float64) float64 { return z * r.StdErr }

// Wilson returns the Wilson score interval for the yield at z standard
// errors. Unlike the normal-approximation interval it never collapses
// to a point on degenerate (all-pass or all-fail) samples, so it is the
// interval to quote when Result.Degenerate is set.
func (r Result) Wilson(z float64) (lo, hi float64) {
	n := float64(r.Samples)
	p := r.Yield
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// chunkSize is the shard granularity: small enough that worker loads
// balance, large enough that the per-chunk PRNG setup is noise.
const chunkSize = 4096

// chunkSeed derives the PRNG seed of one chunk from the base seed by a
// splitmix64 step, so neighbouring chunks get decorrelated streams.
func chunkSeed(base int64, chunk int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(chunk+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Estimate simulates dies: each die draws a defect count from
// Options.Defects, each defect independently lands on component i and
// is lethal with probability P_i (with probability 1-ΣP_i it is
// harmless), and the fault tree decides whether the die functions.
func Estimate(sys *yield.System, opts Options) (Result, error) {
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Defects == nil {
		return Result{}, errors.New("montecarlo: Options.Defects is required")
	}
	if opts.Samples <= 0 {
		return Result{}, fmt.Errorf("montecarlo: Samples = %d, need > 0", opts.Samples)
	}
	maxDefects := opts.MaxDefectsPerDie
	if maxDefects == 0 {
		maxDefects = 10000
	}
	// Cumulative P_i for component sampling (read-only after setup).
	c := len(sys.Components)
	cum := make([]float64, c)
	acc := 0.0
	for i, comp := range sys.Components {
		acc += comp.P
		cum[i] = acc
	}
	pl := acc
	// Tabulate the defect-count CDF once; each die then draws its
	// count by binary search instead of a fresh PMF walk. The table
	// stops once the remaining mass drops below 1e-12: families built
	// on truncated numeric expansions (compound Poisson, numeric
	// thinning) can leave a residual around 1e-15 that a tighter stop
	// would chase across the whole support at quadratic cost, and a
	// draw landing past the table (probability < 1e-12) is handled
	// below anyway.
	countCDF := make([]float64, 0, 64)
	cdf := 0.0
	for k := 0; k <= maxDefects; k++ {
		cdf += opts.Defects.PMF(k)
		countCDF = append(countCDF, cdf)
		if 1-cdf < 1e-12 {
			break
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numChunks := (opts.Samples + chunkSize - 1) / chunkSize
	if workers > numChunks {
		workers = numChunks
	}

	rec := opts.Recorder
	var chunkNS *obs.Histogram
	var chunkCnt, sampleCnt *obs.Counter
	var runStart time.Time
	if rec != nil {
		chunkNS = rec.Histogram("mc.chunk_ns")
		chunkCnt = rec.Counter("mc.chunks")
		sampleCnt = rec.Counter("mc.samples")
		rec.Gauge("mc.workers").Set(int64(workers))
		runStart = time.Now()
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var functioning atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := scratch{failed: make([]bool, c)}
			for {
				chunk := int(next.Add(1)) - 1
				if chunk >= numChunks || firstErr.Load() != nil {
					return
				}
				n := chunkSize
				if rem := opts.Samples - chunk*chunkSize; rem < n {
					n = rem
				}
				var t0 time.Time
				if rec != nil {
					t0 = time.Now()
				}
				ok, err := simulateChunk(sys, rand.New(rand.NewSource(chunkSeed(opts.Seed, chunk))), n, countCDF, cum, pl, maxDefects, &scratch)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if rec != nil {
					chunkNS.Observe(int64(time.Since(t0)))
					chunkCnt.Inc()
					sampleCnt.Add(int64(n))
				}
				opts.Progress.Add(1)
				functioning.Add(int64(ok))
			}
		}()
	}
	wg.Wait()
	if rec != nil {
		if wall := time.Since(runStart).Seconds(); wall > 0 {
			rec.FloatGauge("mc.samples_per_sec").Set(float64(sampleCnt.Load()) / wall)
		}
	}
	if err := firstErr.Load(); err != nil {
		return Result{}, err.(error)
	}
	ok := functioning.Load()
	p := float64(ok) / float64(opts.Samples)
	return Result{
		Yield:      p,
		StdErr:     math.Sqrt(p * (1 - p) / float64(opts.Samples)),
		Samples:    opts.Samples,
		Degenerate: ok == 0 || ok == int64(opts.Samples),
	}, nil
}

// scratch is one worker's reusable buffers: the per-die failed-state
// vector and the netlist evaluation values.
type scratch struct {
	failed []bool
	eval   []bool
}

// simulateChunk runs n dies on one PRNG stream and returns how many
// functioned.
func simulateChunk(sys *yield.System, rng *rand.Rand, n int, countCDF, cum []float64, pl float64, maxDefects int, sc *scratch) (int, error) {
	functioning := 0
	failed := sc.failed
	for s := 0; s < n; s++ {
		u := rng.Float64()
		k := sort.SearchFloat64s(countCDF, u)
		// SearchFloat64s finds the first index with cdf ≥ u; the die's
		// count is the first index with u < cdf, so step past ties.
		for k < len(countCDF) && countCDF[k] <= u {
			k++
		}
		if k >= len(countCDF) {
			if len(countCDF) == maxDefects+1 {
				return 0, fmt.Errorf("montecarlo: defect count sampling exceeded %d (tail too heavy)", maxDefects)
			}
			// The table stopped where the residual mass dropped below
			// its threshold; landing past it (probability < 1e-12)
			// counts as the first untabulated value.
			k = len(countCDF)
		}
		for i := range failed {
			failed[i] = false
		}
		for d := 0; d < k; d++ {
			v := rng.Float64()
			if v >= pl {
				continue // harmless defect
			}
			idx := sort.SearchFloat64s(cum, v)
			if idx < len(failed) {
				failed[idx] = true
			}
		}
		down, err := sys.FaultTree.EvalWith(failed, &sc.eval)
		if err != nil {
			return 0, err
		}
		if !down {
			functioning++
		}
	}
	return functioning, nil
}
