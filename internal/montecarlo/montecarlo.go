// Package montecarlo estimates yield by simulation — the alternative
// approach the paper's introduction weighs against the combinatorial
// method: not limited by system complexity, but expensive and without
// strict error control. It serves as the baseline benchmark and as an
// independent statistical cross-check of the combinatorial results.
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"socyield/internal/defects"
	"socyield/internal/yield"
)

// Options configure a simulation run.
type Options struct {
	// Defects is the distribution of the number of defects (required).
	Defects defects.Distribution
	// Samples is the number of simulated dies (required, > 0).
	Samples int
	// Seed seeds the deterministic PRNG.
	Seed int64
	// MaxDefectsPerDie caps the per-die defect count sampled from the
	// distribution's inverse CDF walk (default 10000).
	MaxDefectsPerDie int
}

// Result is a simulation estimate with a normal-approximation
// confidence interval.
type Result struct {
	// Yield is the point estimate: fraction of simulated dies that
	// function.
	Yield float64
	// StdErr is the standard error of the estimate.
	StdErr float64
	// Samples echoes the sample count.
	Samples int
}

// CI returns the half-width of the confidence interval at the given
// number of standard errors (1.96 ≈ 95%).
func (r Result) CI(z float64) float64 { return z * r.StdErr }

// Estimate simulates dies: each die draws a defect count from
// Options.Defects, each defect independently lands on component i and
// is lethal with probability P_i (with probability 1-ΣP_i it is
// harmless), and the fault tree decides whether the die functions.
func Estimate(sys *yield.System, opts Options) (Result, error) {
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Defects == nil {
		return Result{}, errors.New("montecarlo: Options.Defects is required")
	}
	if opts.Samples <= 0 {
		return Result{}, fmt.Errorf("montecarlo: Samples = %d, need > 0", opts.Samples)
	}
	maxDefects := opts.MaxDefectsPerDie
	if maxDefects == 0 {
		maxDefects = 10000
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	// Cumulative P_i for component sampling.
	c := len(sys.Components)
	cum := make([]float64, c)
	acc := 0.0
	for i, comp := range sys.Components {
		acc += comp.P
		cum[i] = acc
	}
	pl := acc

	sampleCount := func() (int, error) {
		u := rng.Float64()
		cdf := 0.0
		for k := 0; k <= maxDefects; k++ {
			cdf += opts.Defects.PMF(k)
			if u < cdf {
				return k, nil
			}
		}
		return 0, fmt.Errorf("montecarlo: defect count sampling exceeded %d (tail too heavy)", maxDefects)
	}

	failed := make([]bool, c)
	functioning := 0
	for s := 0; s < opts.Samples; s++ {
		k, err := sampleCount()
		if err != nil {
			return Result{}, err
		}
		for i := range failed {
			failed[i] = false
		}
		for d := 0; d < k; d++ {
			u := rng.Float64()
			if u >= pl {
				continue // harmless defect
			}
			idx := sort.SearchFloat64s(cum, u)
			if idx < c {
				failed[idx] = true
			}
		}
		down, err := sys.FaultTree.Eval(failed)
		if err != nil {
			return Result{}, err
		}
		if !down {
			functioning++
		}
	}
	p := float64(functioning) / float64(opts.Samples)
	return Result{
		Yield:   p,
		StdErr:  math.Sqrt(p * (1 - p) / float64(opts.Samples)),
		Samples: opts.Samples,
	}, nil
}
