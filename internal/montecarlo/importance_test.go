package montecarlo

import (
	"io"
	"math"
	"testing"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

// TestImportanceSharpensNearCertainYield is the acceptance criterion of
// the rare-event engine: on a seeded near-certain-yield case the
// importance-sampling CI half-width must be at least 10× smaller than
// naive Monte Carlo's at the exact same sample budget, while both the
// combinatorial value stays inside the IS 3σ interval and the estimate
// is bit-identical for every worker count.
func TestImportanceSharpensNearCertainYield(t *testing.T) {
	sys, err := benchmarks.MS(3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := defects.NewNegativeBinomial(0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 100000
	comb, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-9})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	naive, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 20030622})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	is, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 20030622, Workers: 1})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	if is.Degenerate {
		t.Fatal("IS run degenerate on the target case")
	}
	// Equal budget, ≥ 10× tighter: compare CI half-widths at 3σ. When
	// the naive sample is degenerate its normal CI is a vacuous point,
	// so its honest half-width is the Wilson interval's instead.
	naiveHW := naive.CI(3)
	if naive.Degenerate {
		lo, hi := naive.Wilson(3)
		naiveHW = (hi - lo) / 2
	}
	if ratio := naiveHW / is.CI(3); ratio < 10 {
		t.Errorf("IS CI half-width %.3g only %.1f× tighter than naive %.3g, want ≥ 10×", is.CI(3), ratio, naiveHW)
	}
	if d := math.Abs(is.Yield - comb.Yield); d > is.CI(3)+comb.ErrorBound {
		t.Errorf("combinatorial %.10f outside IS 3σ interval %.10f ± %.3g", comb.Yield, is.Yield, is.CI(3))
	}
	for _, workers := range []int{2, 4} {
		got, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 20030622, Workers: workers})
		if err != nil {
			t.Fatalf("EstimateIS(workers=%d): %v", workers, err)
		}
		if got != is {
			t.Errorf("workers=%d: %+v differs from workers=1: %+v", workers, got, is)
		}
	}
}

// TestImportanceWorkerCountInvariant extends the parallel-determinism
// contract to the two-phase IS run: pilot tallies, tilt selection and
// tilted moments must all be scheduling-free, so every Result field —
// including StdErr, ESS and Tilt — is bit-identical across worker
// counts, default included.
func TestImportanceWorkerCountInvariant(t *testing.T) {
	sys := tmr(0.12)
	dist, err := defects.NewNegativeBinomial(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 50000 // > 12 chunks of 4096
	base, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 99, Workers: workers})
		if err != nil {
			t.Fatalf("EstimateIS(workers=%d): %v", workers, err)
		}
		if got != base {
			t.Errorf("workers=%d: %+v, workers=1: %+v", workers, got, base)
		}
	}
	got, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 99})
	if err != nil {
		t.Fatalf("EstimateIS(default workers): %v", err)
	}
	if got != base {
		t.Errorf("default workers: %+v, workers=1: %+v", got, base)
	}
}

func TestImportanceSeedDeterminism(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 0.3}
	a, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	b, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	c, _ := EstimateIS(sys, ISOptions{Defects: dist, Samples: 20000, Seed: 8})
	if a.FailProb == c.FailProb {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

// TestImportanceFixedTilt pins the TiltSet path: the pilot is skipped
// (the whole budget goes to the tilted run), the requested θ is echoed,
// and the estimate agrees with the adaptive run within combined 5σ.
func TestImportanceFixedTilt(t *testing.T) {
	sys := tmr(0.15)
	dist, err := defects.NewNegativeBinomial(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 80000, Seed: 5})
	if err != nil {
		t.Fatalf("adaptive EstimateIS: %v", err)
	}
	fixed, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 80000, Seed: 5, Tilt: 2.5, TiltSet: true})
	if err != nil {
		t.Fatalf("fixed EstimateIS: %v", err)
	}
	if fixed.PilotSamples != 0 {
		t.Errorf("fixed tilt ran a pilot of %d samples", fixed.PilotSamples)
	}
	if fixed.Tilt != 2.5 {
		t.Errorf("Tilt = %v, want the requested 2.5", fixed.Tilt)
	}
	if adaptive.PilotSamples == 0 {
		t.Error("adaptive run skipped the pilot")
	}
	sigma := 5 * math.Hypot(adaptive.StdErr, fixed.StdErr)
	if d := math.Abs(adaptive.FailProb - fixed.FailProb); d > sigma {
		t.Errorf("adaptive %.4g vs fixed-tilt %.4g: diff %.3g > 5σ = %.3g",
			adaptive.FailProb, fixed.FailProb, d, sigma)
	}
}

// TestImportanceUnbiasedAcrossTilts: the likelihood-ratio identity
// makes the estimator unbiased for every θ, so wildly different fixed
// tilts must agree with each other within their own error bars.
func TestImportanceUnbiasedAcrossTilts(t *testing.T) {
	sys := tmr(0.2)
	dist := defects.Poisson{Lambda: 0.8}
	var results []ISResult
	for _, tilt := range []float64{0, 1, 3} {
		r, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 120000, Seed: 31, Tilt: tilt, TiltSet: true})
		if err != nil {
			t.Fatalf("EstimateIS(tilt=%v): %v", tilt, err)
		}
		if r.Degenerate {
			t.Fatalf("tilt=%v: degenerate run", tilt)
		}
		results = append(results, r)
	}
	for i, a := range results {
		for _, b := range results[i+1:] {
			sigma := 5 * math.Hypot(a.StdErr, b.StdErr)
			if d := math.Abs(a.FailProb - b.FailProb); d > sigma {
				t.Errorf("tilt %v vs %v: %.4g vs %.4g, diff %.3g > 5σ = %.3g",
					a.Tilt, b.Tilt, a.FailProb, b.FailProb, d, sigma)
			}
		}
	}
}

// TestImportanceDegenerate covers the flagged early-outs: a system
// whose failure probability is below float64 resolution, and a tilted
// run that sees no failure.
func TestImportanceDegenerate(t *testing.T) {
	sys := tmr(0.1)
	tiny := defects.Poisson{Lambda: 1e-16}
	r, err := EstimateIS(sys, ISOptions{Defects: tiny, Samples: 1000, Seed: 1})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	if !r.Degenerate || r.Yield != 1 {
		t.Errorf("sub-resolution failure: %+v, want Yield 1 and Degenerate", r)
	}
	// An untilted (θ = 0) run at a tiny budget on a rare-failure case
	// sees no failing die: the result must say so rather than return a
	// silently vacuous FailProb = 0 ± 0.
	r, err = EstimateIS(sys, ISOptions{Defects: defects.Poisson{Lambda: 0.001}, Samples: 2000, Seed: 1, TiltSet: true})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	if !r.Degenerate {
		t.Errorf("no-failure tilted run not flagged: %+v", r)
	}
	if !math.IsInf(r.RelErr, 1) {
		t.Errorf("RelErr = %v, want +Inf on a degenerate run", r.RelErr)
	}
}

// TestImportanceZeroFailurePilot exercises the fallback tilt: with a
// pilot too small to see any failure, θ comes from the tilted-mean
// bisection and must still produce a sound estimate (checked against
// the combinatorial value).
func TestImportanceZeroFailurePilot(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 0.02}
	comb, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-10})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	is, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 60000, Seed: 12, PilotSamples: 256})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	if is.Tilt <= 0 {
		t.Errorf("fallback tilt %v, want > 0", is.Tilt)
	}
	if is.Degenerate {
		t.Fatal("fallback run degenerate")
	}
	if d := math.Abs(is.Yield - comb.Yield); d > is.CI(5)+comb.ErrorBound {
		t.Errorf("combinatorial %.10f outside IS 5σ interval %.10f ± %.3g", comb.Yield, is.Yield, is.CI(5))
	}
}

func TestImportanceValidation(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 1}
	if _, err := EstimateIS(sys, ISOptions{Samples: 100}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: dist}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 100, PilotSamples: -1}); err == nil {
		t.Error("negative pilot accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 100, PilotSamples: 100}); err == nil {
		t.Error("pilot ≥ budget accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 100, Tilt: -1, TiltSet: true}); err == nil {
		t.Error("negative tilt accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: 100, Tilt: math.Inf(1), TiltSet: true}); err == nil {
		t.Error("infinite tilt accepted")
	}
	bad := tmr(-0.1)
	if _, err := EstimateIS(bad, ISOptions{Defects: dist, Samples: 100}); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := EstimateIS(sys, ISOptions{Defects: defects.Poisson{Lambda: 5}, Samples: 100, MaxDefectsPerDie: 1}); err == nil {
		t.Error("heavy-tail cap violation not reported")
	}
}

// TestImportanceRecorder checks the IS instrumentation: chunk/sample
// counters across both phases, the tilt/ESS/relative-error gauges, the
// progress hook, and that recording does not perturb the estimate.
func TestImportanceRecorder(t *testing.T) {
	sys := tmr(0.15)
	dist, err := defects.NewNegativeBinomial(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 20000
	plain, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 7})
	if err != nil {
		t.Fatalf("EstimateIS: %v", err)
	}
	rec := obs.NewRegistry()
	meter := obs.NewProgress(io.Discard, "is", 10, 0)
	instr, err := EstimateIS(sys, ISOptions{
		Defects: dist, Samples: samples, Seed: 7, Workers: 2,
		Recorder: rec, Progress: meter,
	})
	meter.Close()
	if err != nil {
		t.Fatalf("instrumented EstimateIS: %v", err)
	}
	if instr != plain {
		t.Errorf("recorder changed the estimate: %+v vs %+v", instr, plain)
	}
	snap := rec.Snapshot()
	if snap.Counters["mc.is.samples"] != samples {
		t.Errorf("mc.is.samples = %d, want %d", snap.Counters["mc.is.samples"], samples)
	}
	pilotChunks := (plain.PilotSamples + 4095) / 4096
	mainChunks := (samples - plain.PilotSamples + 4095) / 4096
	if want := int64(pilotChunks + mainChunks); snap.Counters["mc.is.chunks"] != want {
		t.Errorf("mc.is.chunks = %d, want %d", snap.Counters["mc.is.chunks"], want)
	}
	if meter.Done() != int64(pilotChunks+mainChunks) {
		t.Errorf("progress advanced %d chunks, want %d", meter.Done(), pilotChunks+mainChunks)
	}
	if snap.FloatGauges["mc.tilt"] != instr.Tilt {
		t.Errorf("mc.tilt = %v, want %v", snap.FloatGauges["mc.tilt"], instr.Tilt)
	}
	if snap.FloatGauges["mc.ess"] != instr.ESS {
		t.Errorf("mc.ess = %v, want %v", snap.FloatGauges["mc.ess"], instr.ESS)
	}
	if snap.FloatGauges["mc.rel_err"] != instr.RelErr {
		t.Errorf("mc.rel_err = %v, want %v", snap.FloatGauges["mc.rel_err"], instr.RelErr)
	}
	if instr.ESS <= 0 || instr.ESS > float64(samples) {
		t.Errorf("ESS = %v outside (0, %d]", instr.ESS, samples)
	}
}
