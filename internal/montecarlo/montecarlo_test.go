package montecarlo

import (
	"fmt"
	"io"
	"math"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

func tmr(p float64) *yield.System {
	f := logic.New()
	a, b, c := f.Input("a"), f.Input("b"), f.Input("c")
	f.SetOutput(f.Or(f.And(a, b), f.And(a, c), f.And(b, c)))
	return &yield.System{
		Name:       "tmr",
		Components: []yield.Component{{Name: "a", P: p}, {Name: "b", P: p}, {Name: "c", P: p}},
		FaultTree:  f,
	}
}

func TestEstimateMatchesCombinatorial(t *testing.T) {
	sys := tmr(0.15)
	dist, _ := defects.NewNegativeBinomial(2, 2)
	exact, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-7})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	est, err := Estimate(sys, Options{Defects: dist, Samples: 200000, Seed: 42})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	// 5 standard errors ≈ 1-in-3.5M false-failure rate.
	if diff := math.Abs(est.Yield - exact.Yield); diff > 5*est.StdErr+1e-7 {
		t.Errorf("MC %v vs exact %v: diff %v > 5σ = %v", est.Yield, exact.Yield, diff, 5*est.StdErr)
	}
	if est.Samples != 200000 {
		t.Errorf("Samples = %d", est.Samples)
	}
	if est.CI(1.96) <= 0 {
		t.Errorf("CI = %v", est.CI(1.96))
	}
}

func TestEstimateDeterministicSeed(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 1}
	a, err := Estimate(sys, Options{Defects: dist, Samples: 5000, Seed: 7})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	b, err := Estimate(sys, Options{Defects: dist, Samples: 5000, Seed: 7})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if a.Yield != b.Yield {
		t.Errorf("same seed, different results: %v vs %v", a.Yield, b.Yield)
	}
	c, _ := Estimate(sys, Options{Defects: dist, Samples: 5000, Seed: 8})
	if a.Yield == c.Yield {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

// TestEstimateWorkerCountInvariant is the parallel-determinism
// contract: for a fixed seed the estimate is bit-identical whatever
// the worker count, because PRNG streams are assigned per fixed-size
// chunk, never per goroutine. The sample count spans many chunks so
// chunk scheduling genuinely interleaves.
func TestEstimateWorkerCountInvariant(t *testing.T) {
	sys := tmr(0.12)
	dist, _ := defects.NewNegativeBinomial(2, 1)
	const samples = 50000 // > 12 chunks of 4096
	base, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 99, Workers: workers})
		if err != nil {
			t.Fatalf("Estimate(workers=%d): %v", workers, err)
		}
		if got.Yield != base.Yield || got.StdErr != base.StdErr {
			t.Errorf("workers=%d: %v±%v, workers=1: %v±%v",
				workers, got.Yield, got.StdErr, base.Yield, base.StdErr)
		}
	}
	// Default worker count (GOMAXPROCS) must agree too.
	got, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 99})
	if err != nil {
		t.Fatalf("Estimate(default workers): %v", err)
	}
	if got.Yield != base.Yield {
		t.Errorf("default workers: %v, workers=1: %v", got.Yield, base.Yield)
	}
}

func TestEstimateSeriesClosedForm(t *testing.T) {
	// Series system: yield = P(no lethal defect) = Q'_0.
	f := logic.New()
	f.SetOutput(f.Or(f.Input("a"), f.Input("b")))
	sys := &yield.System{
		Name:       "series",
		Components: []yield.Component{{Name: "a", P: 0.3}, {Name: "b", P: 0.2}},
		FaultTree:  f,
	}
	dist := defects.Poisson{Lambda: 1}
	lethal, _ := defects.Thin(dist, 0.5)
	want := lethal.PMF(0) // e^-0.5
	est, err := Estimate(sys, Options{Defects: dist, Samples: 300000, Seed: 1})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if diff := math.Abs(est.Yield - want); diff > 5*est.StdErr {
		t.Errorf("MC %v vs closed form %v (5σ = %v)", est.Yield, want, 5*est.StdErr)
	}
}

func TestEstimateValidation(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 1}
	if _, err := Estimate(sys, Options{Samples: 100}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := Estimate(sys, Options{Defects: dist}); err == nil {
		t.Error("zero samples accepted")
	}
	bad := tmr(-0.1)
	if _, err := Estimate(bad, Options{Defects: dist, Samples: 100}); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestEstimateHeavyTailGuard(t *testing.T) {
	sys := tmr(0.1)
	dist := defects.Poisson{Lambda: 5}
	if _, err := Estimate(sys, Options{Defects: dist, Samples: 100, Seed: 3, MaxDefectsPerDie: 1}); err == nil {
		t.Error("per-die cap violation not reported")
	}
}

func TestEstimateLargerSystem(t *testing.T) {
	// A 2-of-8 threshold system against the combinatorial method.
	f := logic.New()
	ids := make([]logic.GateID, 8)
	comps := make([]yield.Component, 8)
	for i := range ids {
		ids[i] = f.Input(fmt.Sprintf("c%d", i))
		comps[i] = yield.Component{Name: fmt.Sprintf("c%d", i), P: 0.05}
	}
	f.SetOutput(f.AtLeast(3, ids...))
	sys := &yield.System{Name: "k3of8", Components: comps, FaultTree: f}
	dist, _ := defects.NewNegativeBinomial(3, 1)
	exact, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-7})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	est, err := Estimate(sys, Options{Defects: dist, Samples: 100000, Seed: 11})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if diff := math.Abs(est.Yield - exact.Yield); diff > 5*est.StdErr+1e-7 {
		t.Errorf("MC %v vs exact %v: diff %v", est.Yield, exact.Yield, diff)
	}
}

// TestEstimateDegenerateSample pins the degenerate-sample contract:
// an all-pass (or all-fail) sample has zero binomial variance, so the
// normal CI is vacuously tight — the Result must say so, and the
// Wilson interval must stay informative where the normal one
// collapses.
func TestEstimateDegenerateSample(t *testing.T) {
	sys := tmr(0.1)
	// λ small enough that 2000 dies almost surely all pass.
	est, err := Estimate(sys, Options{Defects: defects.Poisson{Lambda: 1e-4}, Samples: 2000, Seed: 20030622})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.Yield != 1 {
		t.Skipf("seed produced a failing die (yield %v); case no longer degenerate", est.Yield)
	}
	if !est.Degenerate {
		t.Error("all-pass sample not flagged Degenerate")
	}
	if est.CI(3) != 0 {
		t.Errorf("normal CI = %v on an all-pass sample, expected the vacuous 0", est.CI(3))
	}
	lo, hi := est.Wilson(3)
	if hi != 1 {
		t.Errorf("Wilson upper = %v at p̂ = 1, want 1", hi)
	}
	// At p̂ = 1 the Wilson lower bound is n/(n+z²) — the rule-of-three
	// analogue: ~9/n of failure probability cannot be excluded.
	want := 2000.0 / (2000.0 + 9.0)
	if math.Abs(lo-want) > 1e-12 {
		t.Errorf("Wilson lower = %v, want n/(n+z²) = %v", lo, want)
	}
	// A mid-yield sample must not be flagged.
	mid, err := Estimate(sys, Options{Defects: defects.Poisson{Lambda: 2}, Samples: 2000, Seed: 20030622})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if mid.Degenerate {
		t.Errorf("mid-yield sample (yield %v) flagged Degenerate", mid.Yield)
	}
	wlo, whi := mid.Wilson(3)
	nlo, nhi := mid.Yield-mid.CI(3), mid.Yield+mid.CI(3)
	if wlo >= mid.Yield || whi <= mid.Yield {
		t.Errorf("Wilson [%v, %v] does not contain the point estimate %v", wlo, whi, mid.Yield)
	}
	// Wilson and normal intervals agree to first order away from the
	// boundary.
	if math.Abs(wlo-nlo) > 3*mid.StdErr || math.Abs(whi-nhi) > 3*mid.StdErr {
		t.Errorf("Wilson [%v, %v] far from normal [%v, %v]", wlo, whi, nlo, nhi)
	}
}

// TestEstimateRecorder checks the simulation instrumentation: chunk
// and sample counters, determinism under a recorder, and the progress
// hook advancing once per chunk.
func TestEstimateRecorder(t *testing.T) {
	sys := tmr(0.15)
	dist, _ := defects.NewNegativeBinomial(2, 2)
	const samples = 10000 // 3 chunks of 4096
	plain, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 7})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	rec := obs.NewRegistry()
	meter := obs.NewProgress(io.Discard, "mc", 3, 0)
	instr, err := Estimate(sys, Options{
		Defects: dist, Samples: samples, Seed: 7, Workers: 2,
		Recorder: rec, Progress: meter,
	})
	meter.Close()
	if err != nil {
		t.Fatalf("instrumented Estimate: %v", err)
	}
	if instr.Yield != plain.Yield {
		t.Errorf("recorder changed the estimate: %v vs %v", instr.Yield, plain.Yield)
	}
	snap := rec.Snapshot()
	wantChunks := int64((samples + 4095) / 4096)
	if snap.Counters["mc.chunks"] != wantChunks {
		t.Errorf("mc.chunks = %d, want %d", snap.Counters["mc.chunks"], wantChunks)
	}
	if snap.Counters["mc.samples"] != samples {
		t.Errorf("mc.samples = %d, want %d", snap.Counters["mc.samples"], samples)
	}
	if meter.Done() != wantChunks {
		t.Errorf("progress advanced %d chunks, want %d", meter.Done(), wantChunks)
	}
	if snap.FloatGauges["mc.samples_per_sec"] <= 0 {
		t.Error("mc.samples_per_sec not positive")
	}
}
