package montecarlo

import (
	"testing"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/yield"
)

// TestCombinatorialWithinMCInterval cross-validates the two estimation
// routes on the paper's benchmark families: the combinatorial interval
// [Y_M, Y_M + bound] must overlap the seeded Monte-Carlo estimate's
// 3σ confidence interval. With 80k samples the 3σ half-width is
// ≈ 3·√(p(1−p)/80000) ≲ 0.0053, tight enough to catch a real
// disagreement while the fixed seed keeps the test deterministic
// (false-failure probability under an honest 3σ model ≈ 0.3%, and
// zero in practice because the draw is pinned).
func TestCombinatorialWithinMCInterval(t *testing.T) {
	samples := 80000
	if testing.Short() {
		samples = 20000
	}
	cases := []struct {
		name  string
		build func() (*yield.System, error)
	}{
		{"MS3", func() (*yield.System, error) { return benchmarks.MS(3) }},
		{"ESEN4x2", func() (*yield.System, error) { return benchmarks.ESEN(4, 2) }},
	}
	dist, err := defects.NewNegativeBinomial(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		sys, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		comb, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-4})
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", tc.name, err)
		}
		mc, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 20030622})
		if err != nil {
			t.Fatalf("%s: Estimate: %v", tc.name, err)
		}
		lo, hi := mc.Yield-mc.CI(3), mc.Yield+mc.CI(3)
		// The combinatorial estimate is pessimistic: the true yield is
		// in [Yield, Yield+ErrorBound]. Overlap check against the MC
		// 3σ interval.
		if comb.Yield+comb.ErrorBound < lo || comb.Yield > hi {
			t.Errorf("%s: combinatorial [%.6f, %.6f] outside MC 3σ interval [%.6f, %.6f] (mc=%.6f ± %.6f, %d samples)",
				tc.name, comb.Yield, comb.Yield+comb.ErrorBound, lo, hi, mc.Yield, mc.CI(3), samples)
		}
		if mc.StdErr <= 0 {
			t.Errorf("%s: non-positive MC standard error %v", tc.name, mc.StdErr)
		}
	}
}
