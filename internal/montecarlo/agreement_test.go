package montecarlo

import (
	"testing"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/yield"
)

// TestCombinatorialWithinMCInterval cross-validates the two estimation
// routes on the paper's benchmark families: the combinatorial interval
// [Y_M, Y_M + bound] must overlap the seeded Monte-Carlo estimate's
// 3σ confidence interval. With 80k samples the 3σ half-width is
// ≈ 3·√(p(1−p)/80000) ≲ 0.0053, tight enough to catch a real
// disagreement while the fixed seed keeps the test deterministic
// (false-failure probability under an honest 3σ model ≈ 0.3%, and
// zero in practice because the draw is pinned).
func TestCombinatorialWithinMCInterval(t *testing.T) {
	samples := 80000
	if testing.Short() {
		samples = 20000
	}
	cases := []struct {
		name  string
		build func() (*yield.System, error)
	}{
		{"MS3", func() (*yield.System, error) { return benchmarks.MS(3) }},
		{"ESEN4x2", func() (*yield.System, error) { return benchmarks.ESEN(4, 2) }},
	}
	dist, err := defects.NewNegativeBinomial(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		sys, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		comb, err := yield.Evaluate(sys, yield.Options{Defects: dist, Epsilon: 1e-4})
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", tc.name, err)
		}
		mc, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 20030622})
		if err != nil {
			t.Fatalf("%s: Estimate: %v", tc.name, err)
		}
		lo, hi := mc.Yield-mc.CI(3), mc.Yield+mc.CI(3)
		// The combinatorial estimate is pessimistic: the true yield is
		// in [Yield, Yield+ErrorBound]. Overlap check against the MC
		// 3σ interval.
		if comb.Yield+comb.ErrorBound < lo || comb.Yield > hi {
			t.Errorf("%s: combinatorial [%.6f, %.6f] outside MC 3σ interval [%.6f, %.6f] (mc=%.6f ± %.6f, %d samples)",
				tc.name, comb.Yield, comb.Yield+comb.ErrorBound, lo, hi, mc.Yield, mc.CI(3), samples)
		}
		if mc.StdErr <= 0 {
			t.Errorf("%s: non-positive MC standard error %v", tc.name, mc.StdErr)
		}
	}
}

// TestCombinatorialWithinISInterval is the rare-event half of the
// agreement suite: near-certain-yield cases (small per-component P_i
// budgets, small λ) where naive Monte Carlo at the same budget returns
// a degenerate all-pass sample and so certifies nothing. The
// importance-sampling estimate must stay sharp — single-digit-percent
// relative error on the failure probability — and its 3σ interval must
// bracket the combinatorial interval [Yield, Yield+bound].
func TestCombinatorialWithinISInterval(t *testing.T) {
	samples := 100000
	if testing.Short() {
		samples = 30000
	}
	nb, err := defects.NewNegativeBinomial(0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := defects.NewHierarchical(0.05, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		build      func() (*yield.System, error)
		dist       defects.Distribution
		naiveDegen bool // the same-budget naive sample is all-pass
	}{
		{
			name:       "MS3/NB(0.02,2)",
			build:      func() (*yield.System, error) { return benchmarks.MS(3) },
			dist:       nb,
			naiveDegen: true,
		},
		{
			// Clustering thickens the tail enough that a stray naive
			// failure can slip through, so no all-pass assertion here.
			name:  "MS3/Hierarchical(0.05,2,3)",
			build: func() (*yield.System, error) { return benchmarks.MS(3) },
			dist:  h,
		},
		{
			name:  "ESEN4x2/Poisson(0.02)",
			build: func() (*yield.System, error) { return benchmarks.ESEN(4, 2) },
			dist:  defects.Poisson{Lambda: 0.02},
		},
	}
	for _, tc := range cases {
		sys, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		comb, err := yield.Evaluate(sys, yield.Options{Defects: tc.dist, Epsilon: 1e-12})
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", tc.name, err)
		}
		if tc.naiveDegen {
			naive, err := Estimate(sys, Options{Defects: tc.dist, Samples: samples, Seed: 20030622})
			if err != nil {
				t.Fatalf("%s: Estimate: %v", tc.name, err)
			}
			if !naive.Degenerate {
				t.Errorf("%s: naive sample not degenerate (yield %v) — the case no longer probes the rare-event regime", tc.name, naive.Yield)
			}
		}
		is, err := EstimateIS(sys, ISOptions{Defects: tc.dist, Samples: samples, Seed: 20030622})
		if err != nil {
			t.Fatalf("%s: EstimateIS: %v", tc.name, err)
		}
		if is.Degenerate {
			t.Fatalf("%s: IS run degenerate", tc.name)
		}
		lo, hi := is.Yield-is.CI(3), is.Yield+is.CI(3)
		if comb.Yield+comb.ErrorBound < lo || comb.Yield > hi {
			t.Errorf("%s: combinatorial [%.10f, %.10f] outside IS 3σ interval [%.10f, %.10f]",
				tc.name, comb.Yield, comb.Yield+comb.ErrorBound, lo, hi)
		}
		if is.RelErr > 0.1 {
			t.Errorf("%s: relative error %v, want ≤ 10%% — the tilt is not engaging", tc.name, is.RelErr)
		}
		if is.ESS <= 0 {
			t.Errorf("%s: non-positive ESS %v", tc.name, is.ESS)
		}
	}
}
