package montecarlo

import (
	"fmt"
	"math"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/yield"
)

// diffFamilies returns one representative defect model per family the
// defects package ships — the classical ones and the new hierarchical
// clustering compounds — scaled by lam so callers can steer between
// mid-yield and rare-failure regimes.
func diffFamilies(t *testing.T, lam float64) map[string]defects.Distribution {
	t.Helper()
	nb, err := defects.NewNegativeBinomial(lam, 2)
	if err != nil {
		t.Fatal(err)
	}
	logd, err := defects.NewLogarithmic(0.4)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := defects.NewCompoundPoisson(0.8*lam, logd)
	if err != nil {
		t.Fatal(err)
	}
	h, err := defects.NewHierarchical(lam, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Two levels keep the collapsed mixture small (256 components), so
	// the CDF tabulations inside the estimators stay cheap; the deeper
	// nestings are covered by the defects property tests.
	ml, err := defects.NewMultilevel(lam, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]defects.Distribution{
		"negative-binomial": nb,
		"poisson":           defects.Poisson{Lambda: lam},
		"geometric":         defects.Geometric{Lambda: lam},
		"compound-poisson":  cp,
		"hierarchical":      h,
		"multilevel":        ml,
	}
}

// k3of8 is an 8-component 3-of-8 threshold system — small enough for
// the exact enumeration oracle, rich enough that failure needs three
// coinciding lethal defects.
func k3of8() *yield.System {
	f := logic.New()
	ids := make([]logic.GateID, 8)
	comps := make([]yield.Component, 8)
	for i := range ids {
		ids[i] = f.Input(fmt.Sprintf("c%d", i))
		comps[i] = yield.Component{Name: fmt.Sprintf("c%d", i), P: 0.05}
	}
	f.SetOutput(f.AtLeast(3, ids...))
	return &yield.System{Name: "k3of8", Components: comps, FaultTree: f}
}

// TestISDifferentialNaive cross-checks the two simulation routes on
// mid-yield cases across every defect family: both estimate the same
// quantity, so the seeded runs must agree within their combined 3σ.
// Deterministic counts are exercised too — the tilt then reduces to a
// no-op over a single support point.
func TestISDifferentialNaive(t *testing.T) {
	samples := 200000
	if testing.Short() {
		samples = 50000
	}
	sys := tmr(0.15)
	fams := diffFamilies(t, 1.5)
	fams["deterministic"] = defects.Deterministic{N: 3}
	for name, dist := range fams {
		naive, err := Estimate(sys, Options{Defects: dist, Samples: samples, Seed: 20030622})
		if err != nil {
			t.Fatalf("%s: Estimate: %v", name, err)
		}
		is, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 20030622})
		if err != nil {
			t.Fatalf("%s: EstimateIS: %v", name, err)
		}
		sigma := 3 * math.Hypot(naive.StdErr, is.StdErr)
		if d := math.Abs(naive.Yield - is.Yield); d > sigma {
			t.Errorf("%s: naive %.6f vs IS %.6f, diff %.3g > 3σ = %.3g",
				name, naive.Yield, is.Yield, d, sigma)
		}
		if naive.Degenerate || is.Degenerate {
			t.Errorf("%s: unexpected degenerate run (naive=%v, IS=%v)", name, naive.Degenerate, is.Degenerate)
		}
	}
}

// TestISDifferentialExactOracle pins the IS estimator against the
// exact enumeration oracle on C ≤ 12 trees at 1e-3 absolute, across
// every defect family, in the moderately-rare regime where the tilt
// actually engages — and requires the result to be bit-identical for
// worker counts 1, 2 and 4 (run under -race in CI, this also certifies
// the two-phase pool is race-clean).
func TestISDifferentialExactOracle(t *testing.T) {
	samples := 200000
	if testing.Short() {
		samples = 50000
	}
	systems := []*yield.System{tmr(0.15), k3of8()}
	for name, dist := range diffFamilies(t, 0.4) {
		for _, sys := range systems {
			// ε = 1e-4 keeps M small enough that the 8-component
			// enumeration stays inside the oracle's assignment budget.
			exact, err := yield.ExactYield(sys, yield.Options{Defects: dist, Epsilon: 1e-4})
			if err != nil {
				t.Fatalf("%s/%s: ExactYield: %v", sys.Name, name, err)
			}
			base, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 7, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s: EstimateIS: %v", sys.Name, name, err)
			}
			// The oracle truncates: truth lies in [Yield, Yield+bound].
			if d := math.Abs(base.Yield - exact.Yield); d > 1e-3+exact.ErrorBound {
				t.Errorf("%s/%s: IS %.6f vs exact %.6f, diff %.3g > 1e-3",
					sys.Name, name, base.Yield, exact.Yield, d)
			}
			for _, workers := range []int{2, 4} {
				got, err := EstimateIS(sys, ISOptions{Defects: dist, Samples: samples, Seed: 7, Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s: EstimateIS(workers=%d): %v", sys.Name, name, workers, err)
				}
				if got != base {
					t.Errorf("%s/%s: workers=%d result differs from workers=1", sys.Name, name, workers)
				}
			}
		}
	}
}
