// Importance-sampling rare-event estimation. Naive simulation goes
// blind exactly where the combinatorial method shines: near-certain
// yields, where a realistic sample contains no failing die at all and
// the binomial confidence interval collapses to a vacuous point. The
// estimator here follows the exponential-twisting programme of rare
// event simulation (Jonsson & Lelong, "Rare event simulation for
// electronic circuit design", arXiv:2109.08393): it reweights the
// defect-count law toward the failure region and corrects each sample
// with its likelihood ratio, so a handful of thousands of draws can
// certify failure probabilities of 1e-5 and below.
//
// Concretely, a die fails only through lethal defects, so the failure
// probability is computed under the lethal count law Q' = Thin(Q, PL)
// with each lethal defect landing on component i with probability
// P_i/PL (the paper's equation (1) reformulation). Since a die with
// zero lethal defects always functions, the proposal tilts Q'
// restricted to k ≥ 1:
//
//	q̃_k ∝ q'_k·e^{θk},  k = 1..K
//
// and each sample carries the weight w_k = q'_k/q̃_k, making
// mean(1{fail}·w) an unbiased estimate of the failure probability for
// every θ. The tilt θ is chosen by an adaptive pilot phase: a short
// untilted (θ = 0, conditioned on k ≥ 1) run tallies the conditional
// failure probability p̂_k per defect count, and θ* minimizes the
// estimator's second moment Σ q'_k e^{θk} · Σ q'_k e^{-θk} p̂_k over a
// grid — the standard variance proxy for exponential twisting. If the
// pilot sees no failure at all, θ is instead chosen so the tilted
// conditional mean count lands well inside the failure region.
//
// Determinism matches Estimate: samples are sharded into fixed-size
// chunks, each chunk draws from its own (Seed, chunk)-derived PRNG
// stream, per-chunk partial sums land in a chunk-indexed slice, and
// the reduction runs serially in chunk order — so the result is
// bit-identical for every worker count. The pilot phase uses a
// disjoint stream family derived from chunkSeed(Seed, MaxInt32).
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/defects"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

// ISOptions configure an importance-sampling run.
type ISOptions struct {
	// Defects is the distribution of the number of defects (required).
	Defects defects.Distribution
	// Samples is the total simulation budget, pilot included
	// (required, > 0) — an IS run at Samples draws exactly as many dies
	// as Estimate at the same Samples, so comparisons are honest.
	Samples int
	// Seed seeds the deterministic PRNG family. The estimate depends
	// only on Seed and the option fields, never on Workers.
	Seed int64
	// MaxDefectsPerDie caps the tabulated lethal defect-count support
	// (default 10000).
	MaxDefectsPerDie int
	// Workers is the number of simulation goroutines; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// PilotSamples is the untilted pilot budget used to pick the tilt;
	// 0 means min(8192, Samples/4). Ignored when TiltSet.
	PilotSamples int
	// Tilt fixes the twisting parameter θ when TiltSet is true,
	// skipping the pilot phase entirely (the whole budget then goes to
	// the tilted run). Must be finite and ≥ 0.
	Tilt    float64
	TiltSet bool
	// Recorder, when non-nil, receives "mc.is.chunks"/"mc.is.samples"
	// counters, a "mc.is.chunk_ns" histogram, and "mc.tilt"/"mc.ess"/
	// "mc.rel_err" diagnostic gauges.
	Recorder *obs.Registry
	// Progress, when non-nil, is advanced by one per completed chunk
	// (pilot and main).
	Progress *obs.Progress
}

// ISResult is an importance-sampling estimate with its rare-event
// diagnostics.
type ISResult struct {
	// Yield is the point estimate 1 − FailProb.
	Yield float64
	// FailProb is the estimated failure probability — the quantity the
	// estimator actually targets.
	FailProb float64
	// StdErr is the standard error of FailProb (and hence of Yield).
	StdErr float64
	// Samples echoes the total budget; PilotSamples of it went to the
	// untilted pilot and the rest to the tilted run.
	Samples      int
	PilotSamples int
	// Tilt is the twisting parameter θ the tilted run used.
	Tilt float64
	// ESS is the effective sample size (Σw)²/Σw² of the tilted run — a
	// weight-degeneracy diagnostic; healthy runs keep it a sizable
	// fraction of the tilted sample count.
	ESS float64
	// RelErr is StdErr/FailProb, the figure of merit of rare-event
	// estimation; +Inf when no failure was observed.
	RelErr float64
	// Degenerate reports that the tilted run saw no failing die, so
	// FailProb, StdErr and RelErr carry no information beyond "rare".
	Degenerate bool
}

// CI returns the half-width of the confidence interval at the given
// number of standard errors (1.96 ≈ 95%).
func (r ISResult) CI(z float64) float64 { return z * r.StdErr }

// isPartial is one chunk's contribution to the tilted-run moments.
type isPartial struct {
	sumW, sumW2, sumFW, sumFW2 float64
	fails                      int
}

// isTally is one pilot chunk's per-defect-count trial/failure counts.
type isTally struct {
	trials, fails []int
}

// EstimateIS estimates yield by importance sampling as described in
// the package comment. It targets the same quantity as Estimate but
// stays sharp in near-certain-yield regimes where naive sampling
// returns a degenerate all-pass sample.
func EstimateIS(sys *yield.System, opts ISOptions) (ISResult, error) {
	if err := sys.Validate(); err != nil {
		return ISResult{}, err
	}
	if opts.Defects == nil {
		return ISResult{}, errors.New("montecarlo: ISOptions.Defects is required")
	}
	if opts.Samples <= 0 {
		return ISResult{}, fmt.Errorf("montecarlo: Samples = %d, need > 0", opts.Samples)
	}
	if opts.PilotSamples < 0 || (opts.PilotSamples > 0 && opts.PilotSamples >= opts.Samples) {
		return ISResult{}, fmt.Errorf("montecarlo: PilotSamples = %d, need in [0, Samples)", opts.PilotSamples)
	}
	if opts.TiltSet && (!(opts.Tilt >= 0) || math.IsInf(opts.Tilt, 0)) {
		return ISResult{}, fmt.Errorf("montecarlo: Tilt = %v, need finite and ≥ 0", opts.Tilt)
	}
	maxDefects := opts.MaxDefectsPerDie
	if maxDefects == 0 {
		maxDefects = 10000
	}
	// Cumulative P_i for lethal-defect placement (read-only after
	// setup); a lethal defect lands on component i with P_i/PL.
	c := len(sys.Components)
	cum := make([]float64, c)
	acc := 0.0
	for i, comp := range sys.Components {
		acc += comp.P
		cum[i] = acc
	}
	pl := acc // > 0: Validate rejects systems with P_L = 0
	lethal, err := defects.Thin(opts.Defects, pl)
	if err != nil {
		return ISResult{}, err
	}
	// Tabulate the lethal count PMF q'_k until the residual mass drops
	// below 1e-11. The threshold sits above numericThinned's internal
	// coverage tolerance (1e-12) — a numerically thinned family can
	// never sum closer to 1 than that, and a tighter stop would walk the
	// whole table at quadratic cost. The ignored tail biases the failure
	// probability by at most 1e-11, far below any reachable StdErr.
	q := make([]float64, 0, 64)
	cdf := 0.0
	for k := 0; k <= maxDefects; k++ {
		p := lethal.PMF(k)
		q = append(q, p)
		cdf += p
		if 1-cdf < 1e-11 {
			break
		}
	}
	if rem := 1 - cdf; rem > 1e-9 {
		return ISResult{}, fmt.Errorf("montecarlo: lethal defect-count tail %v beyond %d too heavy for importance sampling", rem, maxDefects)
	}
	maxK := len(q) - 1
	if maxK == 0 || 1-q[0] < 1e-15 {
		// Failure needs a lethal defect, and the probability of seeing
		// even one is below float64 resolution.
		return ISResult{Yield: 1, Samples: opts.Samples, RelErr: math.Inf(1), Degenerate: true}, nil
	}
	lq := make([]float64, maxK+1)
	for k, p := range q {
		if p > 0 {
			lq[k] = math.Log(p)
		} else {
			lq[k] = math.Inf(-1)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pilot := opts.PilotSamples
	if opts.TiltSet {
		pilot = 0
	} else if pilot == 0 {
		pilot = opts.Samples / 4
		if pilot > 8192 {
			pilot = 8192
		}
	}
	main := opts.Samples - pilot

	rec := opts.Recorder
	var chunkNS *obs.Histogram
	var chunkCnt, sampleCnt *obs.Counter
	if rec != nil {
		chunkNS = rec.Histogram("mc.is.chunk_ns")
		chunkCnt = rec.Counter("mc.is.chunks")
		sampleCnt = rec.Counter("mc.is.samples")
		rec.Gauge("mc.is.workers").Set(int64(workers))
	}
	newSc := func() *scratch { return &scratch{failed: make([]bool, c)} }

	// Pilot phase: untilted (θ = 0) sampling conditioned on k ≥ 1,
	// tallying per-count conditional failure rates. Its stream family
	// is disjoint from the main phase's so the two never share draws.
	trials := make([]int, maxK+1)
	fails := make([]int, maxK+1)
	if pilot > 0 {
		cdf0, w0 := tiltedTable(q, lq, 0)
		pilotChunks := (pilot + chunkSize - 1) / chunkSize
		tallies := make([]isTally, pilotChunks)
		pilotSeed := chunkSeed(opts.Seed, math.MaxInt32)
		err := runPhase(workers, pilotChunks, newSc, func(chunk int, sc *scratch) error {
			n := chunkSize
			if rem := pilot - chunk*chunkSize; rem < n {
				n = rem
			}
			var t0 time.Time
			if rec != nil {
				t0 = time.Now()
			}
			tally := &isTally{trials: make([]int, maxK+1), fails: make([]int, maxK+1)}
			_, err := simulateISChunk(sys, rand.New(rand.NewSource(chunkSeed(pilotSeed, chunk))), n, cdf0, w0, cum, pl, sc, tally)
			if err != nil {
				return err
			}
			tallies[chunk] = *tally
			if rec != nil {
				chunkNS.Observe(int64(time.Since(t0)))
				chunkCnt.Inc()
				sampleCnt.Add(int64(n))
			}
			opts.Progress.Add(1)
			return nil
		})
		if err != nil {
			return ISResult{}, err
		}
		for _, t := range tallies {
			for k := 1; k <= maxK; k++ {
				trials[k] += t.trials[k]
				fails[k] += t.fails[k]
			}
		}
	}
	theta := opts.Tilt
	if !opts.TiltSet {
		theta = selectTilt(lq, trials, fails)
	}

	// Main phase: tilted sampling with per-sample likelihood weights.
	cdfT, wT := tiltedTable(q, lq, theta)
	mainChunks := (main + chunkSize - 1) / chunkSize
	partials := make([]isPartial, mainChunks)
	err = runPhase(workers, mainChunks, newSc, func(chunk int, sc *scratch) error {
		n := chunkSize
		if rem := main - chunk*chunkSize; rem < n {
			n = rem
		}
		var t0 time.Time
		if rec != nil {
			t0 = time.Now()
		}
		p, err := simulateISChunk(sys, rand.New(rand.NewSource(chunkSeed(opts.Seed, chunk))), n, cdfT, wT, cum, pl, sc, nil)
		if err != nil {
			return err
		}
		partials[chunk] = p
		if rec != nil {
			chunkNS.Observe(int64(time.Since(t0)))
			chunkCnt.Inc()
			sampleCnt.Add(int64(n))
		}
		opts.Progress.Add(1)
		return nil
	})
	if err != nil {
		return ISResult{}, err
	}
	// Reduce serially in chunk order: with per-chunk partials fixed by
	// (Seed, chunk) alone, this ordered float summation makes the
	// result bit-identical across worker counts.
	var sumW, sumW2, sumFW, sumFW2 float64
	failCount := 0
	for _, p := range partials {
		sumW += p.sumW
		sumW2 += p.sumW2
		sumFW += p.sumFW
		sumFW2 += p.sumFW2
		failCount += p.fails
	}
	n := float64(main)
	fhat := sumFW / n
	variance := sumFW2/n - fhat*fhat
	if variance < 0 {
		variance = 0
	}
	stdErr := math.Sqrt(variance / n)
	ess := 0.0
	if sumW2 > 0 {
		ess = sumW * sumW / sumW2
	}
	relErr := math.Inf(1)
	if fhat > 0 {
		relErr = stdErr / fhat
	}
	if rec != nil {
		rec.FloatGauge("mc.tilt").Set(theta)
		rec.FloatGauge("mc.ess").Set(ess)
		if !math.IsInf(relErr, 0) {
			rec.FloatGauge("mc.rel_err").Set(relErr)
		}
	}
	return ISResult{
		Yield:        1 - fhat,
		FailProb:     fhat,
		StdErr:       stdErr,
		Samples:      opts.Samples,
		PilotSamples: pilot,
		Tilt:         theta,
		ESS:          ess,
		RelErr:       relErr,
		Degenerate:   failCount == 0,
	}, nil
}

// runPhase fans numChunks chunk indices out over a worker pool; do is
// called once per chunk with a worker-local scratch and must only
// write chunk-indexed state.
func runPhase(workers, numChunks int, newSc func() *scratch, do func(chunk int, sc *scratch) error) error {
	if workers > numChunks {
		workers = numChunks
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newSc()
			for {
				chunk := int(next.Add(1)) - 1
				if chunk >= numChunks || firstErr.Load() != nil {
					return
				}
				if err := do(chunk, sc); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// tiltedTable builds the θ-tilted proposal over k = 1..K: cdf[i] is
// the cumulative proposal mass of count k = i+1 and w[i] its
// likelihood ratio q'_k/q̃_k, computed directly from the two tabulated
// values so the unbiasedness identity holds in float arithmetic, not
// just in expectation. The log-domain normalization keeps the table
// finite for any θ the grid can pick.
func tiltedTable(q, lq []float64, theta float64) (cdf, w []float64) {
	maxK := len(q) - 1
	a := make([]float64, maxK)
	m := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		a[k-1] = lq[k] + theta*float64(k)
		if a[k-1] > m {
			m = a[k-1]
		}
	}
	z := 0.0
	for i := range a {
		a[i] = math.Exp(a[i] - m)
		z += a[i]
	}
	cdf = make([]float64, maxK)
	w = make([]float64, maxK)
	run := 0.0
	for i := range a {
		p := a[i] / z
		run += p
		cdf[i] = run
		if p > 0 {
			w[i] = q[i+1] / p
		}
	}
	return cdf, w
}

// simulateISChunk runs n dies on one PRNG stream under the tilted
// proposal (cdfT, wT) and returns the chunk's weight moments. When
// tally is non-nil (pilot mode) it also records per-count trials and
// failures.
func simulateISChunk(sys *yield.System, rng *rand.Rand, n int, cdfT, wT, cum []float64, pl float64, sc *scratch, tally *isTally) (isPartial, error) {
	var p isPartial
	failed := sc.failed
	for s := 0; s < n; s++ {
		u := rng.Float64()
		i := sort.SearchFloat64s(cdfT, u)
		// First index with u < cdf, stepping past ties, mirrors the
		// count sampling of simulateChunk.
		for i < len(cdfT) && cdfT[i] <= u {
			i++
		}
		if i >= len(cdfT) {
			// Only reachable when rounding leaves the last cumulative
			// value a hair under 1; the draw belongs to the top count.
			i = len(cdfT) - 1
		}
		k := i + 1
		for j := range failed {
			failed[j] = false
		}
		for d := 0; d < k; d++ {
			// Every defect here is lethal: placement draws directly
			// from the normalized P_i/PL law.
			v := rng.Float64() * pl
			idx := sort.SearchFloat64s(cum, v)
			if idx < len(failed) {
				failed[idx] = true
			}
		}
		down, err := sys.FaultTree.EvalWith(failed, &sc.eval)
		if err != nil {
			return isPartial{}, err
		}
		wk := wT[i]
		p.sumW += wk
		p.sumW2 += wk * wk
		if down {
			p.fails++
			p.sumFW += wk
			p.sumFW2 += wk * wk
			if tally != nil {
				tally.fails[k]++
			}
		}
		if tally != nil {
			tally.trials[k]++
		}
	}
	return p, nil
}

// selectTilt picks θ from the pilot tallies by minimizing the
// estimator's second moment Σ q'_k e^{θk} · Σ q'_k e^{-θk} p̂_k over a
// grid, with p̂_k the Laplace-smoothed conditional failure rate filled
// forward across counts the pilot never drew. With no pilot failure at
// all there is no signal to minimize against, so θ is instead solved
// for a tilted conditional mean count deep in the failure region.
func selectTilt(lq []float64, trials, fails []int) float64 {
	maxK := len(lq) - 1
	if maxK == 1 {
		return 0 // single support point: tilting cannot move anything
	}
	tot := 0
	for _, f := range fails {
		tot += f
	}
	if tot == 0 {
		condMean := tiltedMean(lq, 0)
		target := 4*condMean + 2
		if hi := float64(maxK) - 0.5; target > hi {
			target = hi
		}
		return bisectTiltForMean(lq, target)
	}
	lp := make([]float64, maxK+1)
	last := math.NaN()
	for k := 1; k <= maxK; k++ {
		if trials[k] > 0 {
			last = math.Log((float64(fails[k]) + 0.5) / (float64(trials[k]) + 1))
		}
		lp[k] = last
	}
	// Backfill counts below the first one the pilot drew.
	for k := maxK; k >= 1; k-- {
		if !math.IsNaN(lp[k]) {
			last = lp[k]
		}
		lp[k] = last
	}
	best := math.Inf(1)
	bestTheta := 0.0
	for i := 0; i <= 400; i++ {
		theta := float64(i) * 0.1
		v := logSumExpTilt(lq, theta, nil) + logSumExpTilt(lq, -theta, lp)
		if v < best {
			best = v
			bestTheta = theta
		}
	}
	return bestTheta
}

// logSumExpTilt computes ln Σ_{k≥1} exp(lq_k + θk + extra_k) stably;
// extra may be nil.
func logSumExpTilt(lq []float64, theta float64, extra []float64) float64 {
	maxK := len(lq) - 1
	m := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		t := lq[k] + theta*float64(k)
		if extra != nil {
			t += extra[k]
		}
		if t > m {
			m = t
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for k := 1; k <= maxK; k++ {
		t := lq[k] + theta*float64(k)
		if extra != nil {
			t += extra[k]
		}
		if !math.IsInf(t, -1) {
			s += math.Exp(t - m)
		}
	}
	return m + math.Log(s)
}

// tiltedMean is E[k] under the θ-tilted conditional (k ≥ 1) law.
func tiltedMean(lq []float64, theta float64) float64 {
	maxK := len(lq) - 1
	m := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		if a := lq[k] + theta*float64(k); a > m {
			m = a
		}
	}
	var z, s float64
	for k := 1; k <= maxK; k++ {
		e := math.Exp(lq[k] + theta*float64(k) - m)
		z += e
		s += e * float64(k)
	}
	return s / z
}

// bisectTiltForMean solves tiltedMean(θ) = target on θ ∈ [0, 40]; the
// tilted mean is increasing in θ, and if even θ = 40 cannot reach the
// target the cap is returned.
func bisectTiltForMean(lq []float64, target float64) float64 {
	lo, hi := 0.0, 40.0
	if tiltedMean(lq, hi) < target {
		return hi
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if tiltedMean(lq, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
