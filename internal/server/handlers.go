package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/ftdsl"
	"socyield/internal/order"
	"socyield/internal/yield"
)

// DefectSpec selects a defect-count distribution. Dist is one of
// "negative-binomial" (the default; uses Lambda and Alpha), "poisson"
// (Lambda), "geometric" (Lambda), "deterministic" (N), "hierarchical"
// (Lambda, Alpha, Beta — two-level clustering) or "multilevel"
// (Lambda, Alphas — innermost clustering parameter first).
type DefectSpec struct {
	Dist   string    `json:"dist,omitempty"`
	Lambda float64   `json:"lambda,omitempty"`
	Alpha  float64   `json:"alpha,omitempty"`
	Beta   float64   `json:"beta,omitempty"`
	Alphas []float64 `json:"alphas,omitempty"`
	N      int       `json:"n,omitempty"`
}

func (d *DefectSpec) distribution() (defects.Distribution, error) {
	if d == nil {
		return nil, errors.New(`missing "defects"`)
	}
	switch d.Dist {
	case "", "negative-binomial", "nb":
		return defects.NewNegativeBinomial(d.Lambda, d.Alpha)
	case "poisson":
		return defects.NewPoisson(d.Lambda)
	case "geometric":
		g := defects.Geometric{Lambda: d.Lambda}
		if !(d.Lambda > 0) {
			return nil, fmt.Errorf("geometric: lambda %v must be > 0", d.Lambda)
		}
		return g, nil
	case "deterministic":
		if d.N < 0 {
			return nil, fmt.Errorf("deterministic: n %d must be ≥ 0", d.N)
		}
		return defects.Deterministic{N: d.N}, nil
	case "hierarchical":
		return defects.NewHierarchical(d.Lambda, d.Alpha, d.Beta)
	case "multilevel":
		return defects.NewMultilevel(d.Lambda, d.Alphas...)
	default:
		return nil, fmt.Errorf("unknown distribution %q (want negative-binomial, poisson, geometric, deterministic, hierarchical or multilevel)", d.Dist)
	}
}

// ModelRequest names a system and the evaluation options that shape
// its compiled model. Exactly one of Bench and FTDSL must be set.
type ModelRequest struct {
	// Bench is a benchmark name: an entry of the paper's Table 1 or a
	// generalized MS<n> / ESEN<n>x<m>.
	Bench string `json:"bench,omitempty"`
	// FTDSL is a system description in the ftdsl text format.
	FTDSL string `json:"ftdsl,omitempty"`
	// Defects is the defect-count model (required).
	Defects *DefectSpec `json:"defects"`
	// Epsilon is the absolute yield error requirement (default 1e-4).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MVOrder / BitOrder select the ordering heuristics by their paper
	// names (default "w" and "ml").
	MVOrder  string `json:"mv_order,omitempty"`
	BitOrder string `json:"bit_order,omitempty"`
	// Lethalities overrides the per-component P_i of the system
	// description (same order as its components). The compiled model
	// does not depend on them, so overriding costs nothing.
	Lethalities []float64 `json:"lethalities,omitempty"`
}

// EvaluateRequest is the body of POST /v1/evaluate.
type EvaluateRequest struct {
	ModelRequest
	// Sensitivities additionally computes ∂Y/∂P_i per component.
	Sensitivities bool `json:"sensitivities,omitempty"`
}

// ComponentSensitivity is one component's yield derivative.
type ComponentSensitivity struct {
	Component string  `json:"component"`
	DYieldDP  float64 `json:"dyield_dp"`
}

// EvaluateResponse is the body of a successful POST /v1/evaluate.
type EvaluateResponse struct {
	System     string  `json:"system"`
	Components int     `json:"components"`
	M          int     `json:"m"`
	Yield      float64 `json:"yield"`
	// ErrorBound is the tail mass beyond M: the true yield lies in
	// [Yield, Yield+ErrorBound].
	ErrorBound float64 `json:"error_bound"`
	// ModelKey identifies the compiled model this request used;
	// CacheHit reports whether it was already compiled.
	ModelKey      string                 `json:"model_key"`
	CacheHit      bool                   `json:"cache_hit"`
	ROMDDNodes    int                    `json:"romdd_nodes"`
	Sensitivities []ComponentSensitivity `json:"sensitivities,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: the model's yield is
// reevaluated for each λ in Lambdas on one shared compiled model (the
// distribution family and its other parameters come from Defects).
type SweepRequest struct {
	ModelRequest
	Lambdas []float64 `json:"lambdas"`
	// Workers is the evaluation parallelism (capped by the server's
	// SweepWorkers; results are identical for every worker count).
	Workers int `json:"workers,omitempty"`
}

// SweepPointResponse is the yield at one λ of a sweep.
type SweepPointResponse struct {
	Lambda     float64 `json:"lambda"`
	Yield      float64 `json:"yield"`
	ErrorBound float64 `json:"error_bound"`
	Error      string  `json:"error,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	System   string               `json:"system"`
	M        int                  `json:"m"`
	ModelKey string               `json:"model_key"`
	CacheHit bool                 `json:"cache_hit"`
	Results  []SweepPointResponse `json:"results"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// badRequest wraps a client-input error for status selection.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }

// resolve turns a ModelRequest into the system, its per-component
// lethalities and the yield.Options the CLI path would use for the
// same inputs — same defaults, same validation — so server results are
// bit-identical to yield.Evaluate.
func (s *Server) resolve(req *ModelRequest) (*yield.System, []float64, yield.Options, error) {
	var opts yield.Options
	var sys *yield.System
	var err error
	switch {
	case req.Bench != "" && req.FTDSL != "":
		return nil, nil, opts, badRequest{errors.New(`give either "bench" or "ftdsl", not both`)}
	case req.Bench != "":
		if sys, err = benchmarks.ByName(req.Bench); err != nil {
			return nil, nil, opts, badRequest{err}
		}
	case req.FTDSL != "":
		if sys, err = ftdsl.Parse(req.FTDSL); err != nil {
			return nil, nil, opts, badRequest{err}
		}
	default:
		return nil, nil, opts, badRequest{errors.New(`give "bench" or "ftdsl"`)}
	}
	dist, err := req.Defects.distribution()
	if err != nil {
		return nil, nil, opts, badRequest{err}
	}
	opts = yield.Options{
		Defects:      dist,
		Epsilon:      req.Epsilon,
		NodeLimit:    s.cfg.NodeLimit,
		BuildWorkers: s.cfg.BuildWorkers,
	}
	if req.MVOrder != "" {
		if opts.MVOrder, err = order.ParseMVKind(req.MVOrder); err != nil {
			return nil, nil, opts, badRequest{err}
		}
	}
	if req.BitOrder != "" {
		if opts.BitOrder, err = order.ParseBitKind(req.BitOrder); err != nil {
			return nil, nil, opts, badRequest{err}
		}
	}
	ps := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		ps[i] = c.P
	}
	if req.Lethalities != nil {
		if len(req.Lethalities) != len(ps) {
			return nil, nil, opts, badRequest{fmt.Errorf("lethalities has %d entries, system has %d components", len(req.Lethalities), len(ps))}
		}
		copy(ps, req.Lethalities)
		for i, p := range ps {
			sys.Components[i].P = p
		}
	}
	return sys, ps, opts, nil
}

// compiled returns the cached (or freshly built) Reevaluator for the
// model, keyed by yield.ModelKey. The build pins the truncation point
// to the key's resolved M, so every user of the entry — whatever its
// distribution resolves to — evaluates on exactly the keyed model.
func (s *Server) compiled(ctx context.Context, sys *yield.System, opts yield.Options) (re *yield.Reevaluator, key string, m int, hit bool, err error) {
	key, m, err = yield.ModelKey(sys, opts)
	if err != nil {
		return nil, "", 0, false, badRequest{err}
	}
	buildOpts := opts
	buildOpts.ForceM = m
	buildOpts.ForceMSet = true
	// The build publishes into the server registry and registers its
	// BuildState with the tracker for the /v1/builds listing. The
	// request id of the triggering request labels the build's log lines
	// — later coalesced requests share the same build span.
	buildOpts.Recorder = s.cfg.Metrics
	buildOpts.Tracer = s.cfg.Tracer
	reqID := requestID(ctx)
	sysName := sys.Name
	re, hit, err = s.cache.get(ctx, key, func() (*yield.Reevaluator, error) {
		// Second tier: a model another replica (or a past life of this
		// one) already compiled loads in milliseconds. The probe sits
		// inside the single-flight slot, so coalesced requests share one
		// load-or-build across both tiers.
		if re := s.loadFromStore(key, reqID); re != nil {
			s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "model loaded from store",
				slog.String("request_id", reqID),
				slog.String("model_key", key),
				slog.String("system", sysName),
			)
			return re, nil
		}
		bs := s.builds.add(key, sysName)
		defer s.builds.remove(key)
		if s.testBuildHook != nil {
			s.testBuildHook(bs)
		}
		bo := buildOpts
		bo.BuildState = bs
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "model build started",
			slog.String("request_id", reqID),
			slog.String("model_key", key),
			slog.String("system", sysName),
		)
		t0 := time.Now()
		s.cfg.Metrics.Counter("build.compiles").Inc()
		re, err := yield.NewReevaluator(sys, bo)
		dur := time.Since(t0)
		s.cfg.Metrics.Histogram("cache.build_ns").Observe(int64(dur))
		level, msg := slog.LevelInfo, "model build finished"
		if err != nil {
			level, msg = slog.LevelWarn, "model build failed"
		}
		s.cfg.Logger.LogAttrs(context.Background(), level, msg,
			slog.String("request_id", reqID),
			slog.String("model_key", key),
			slog.Duration("duration", dur),
		)
		if err == nil {
			s.saveToStore(key, reqID, re)
		}
		return re, err
	})
	if err != nil {
		return nil, key, m, hit, err
	}
	if re.NumComponents() != len(sys.Components) {
		// Impossible unless two distinct structures collide in ModelKey.
		return nil, key, m, hit, fmt.Errorf("cached model has %d components, request has %d", re.NumComponents(), len(sys.Components))
	}
	return re, key, m, hit, nil
}

// respondError maps an evaluation error to a status code.
func respondError(w http.ResponseWriter, err error) {
	var br badRequest
	switch {
	case errors.As(err, &br):
		writeError(w, http.StatusBadRequest, br.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "evaluation exceeded the request timeout (the model keeps compiling; retry shortly)")
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "client closed request") // nginx convention
	case errors.Is(err, yield.ErrNodeLimit):
		writeError(w, http.StatusUnprocessableEntity, "model exceeds the server's decision-diagram node budget: "+err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if !decode(w, r, &req) {
		return
	}
	sys, ps, opts, err := s.resolve(&req.ModelRequest)
	if err != nil {
		respondError(w, err)
		return
	}
	re, key, m, hit, err := s.compiled(r.Context(), sys, opts)
	if err != nil {
		respondError(w, err)
		return
	}
	y, bound, err := re.Yield(ps, opts.Defects)
	if err != nil {
		respondError(w, badRequest{err})
		return
	}
	resp := EvaluateResponse{
		System:     sys.Name,
		Components: len(sys.Components),
		M:          m,
		Yield:      y,
		ErrorBound: bound,
		ModelKey:   key,
		CacheHit:   hit,
		ROMDDNodes: re.Result.ROMDDSize,
	}
	if req.Sensitivities {
		ds, err := re.Sensitivities(ps, opts.Defects, 0)
		if err != nil {
			respondError(w, badRequest{err})
			return
		}
		resp.Sensitivities = make([]ComponentSensitivity, len(ds))
		for i, d := range ds {
			resp.Sensitivities[i] = ComponentSensitivity{Component: sys.Components[i].Name, DYieldDP: d}
		}
	}
	s.cfg.Metrics.Counter("evaluate.requests").Inc()
	writeJSON(w, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Lambdas) == 0 {
		writeError(w, http.StatusBadRequest, `"lambdas" must list at least one value`)
		return
	}
	if len(req.Lambdas) > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d points exceeds the server limit of %d", len(req.Lambdas), s.cfg.MaxSweepPoints))
		return
	}
	sys, ps, opts, err := s.resolve(&req.ModelRequest)
	if err != nil {
		respondError(w, err)
		return
	}
	// Build the per-λ distributions up front so a bad grid point is a
	// 400, not a half-evaluated sweep.
	spec := DefectSpec{Dist: "negative-binomial"}
	if req.Defects != nil {
		spec = *req.Defects
	}
	points := make([]yield.SweepPoint, len(req.Lambdas))
	for i, l := range req.Lambdas {
		ds := spec
		ds.Lambda = l
		dist, err := ds.distribution()
		if err != nil {
			respondError(w, badRequest{fmt.Errorf("lambdas[%d]=%v: %w", i, l, err)})
			return
		}
		points[i] = yield.SweepPoint{PS: ps, Dist: dist}
	}
	re, key, m, hit, err := s.compiled(r.Context(), sys, opts)
	if err != nil {
		respondError(w, err)
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.SweepWorkers {
		workers = s.cfg.SweepWorkers
	}
	results := re.Sweep(points, yield.SweepOptions{
		Workers:  workers,
		Recorder: s.cfg.Metrics,
	})
	resp := SweepResponse{
		System:   sys.Name,
		M:        m,
		ModelKey: key,
		CacheHit: hit,
		Results:  make([]SweepPointResponse, len(results)),
	}
	for i, sr := range results {
		pr := SweepPointResponse{Lambda: req.Lambdas[i], Yield: sr.Yield, ErrorBound: sr.ErrorBound}
		if sr.Err != nil {
			pr.Error = sr.Err.Error()
			pr.Yield, pr.ErrorBound = 0, 0
		}
		resp.Results[i] = pr
	}
	s.cfg.Metrics.Counter("sweep.requests").Inc()
	writeJSON(w, resp)
}
