package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"socyield/internal/obs"
)

func getBuilds(t *testing.T, ts *httptest.Server) BuildsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/builds")
	if err != nil {
		t.Fatalf("GET /v1/builds: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/builds: status %d", resp.StatusCode)
	}
	var out BuildsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET /v1/builds: %v", err)
	}
	return out
}

// TestBuildsEndpoint holds a model build open with the test hook and
// checks GET /v1/builds reports it — phase, progress, live nodes,
// elapsed time — then shows an empty list once the build finishes.
func TestBuildsEndpoint(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.testBuildHook = func(bs *obs.BuildState) {
		// Simulate a build caught mid-compile: 40 of 100 gate tasks done.
		bs.StartPhase(obs.BuildCompile, 100)
		bs.Add(40)
		bs.SetLive(4242)
		close(started)
		<-release
	}

	if list := getBuilds(t, ts); len(list.Builds) != 0 {
		t.Fatalf("idle server reports %d builds", len(list.Builds))
	}

	body := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 0.25}, "epsilon": 1e-4}`
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()

	<-started
	list := getBuilds(t, ts)
	if len(list.Builds) != 1 {
		t.Fatalf("in-flight build count = %d, want 1", len(list.Builds))
	}
	b := list.Builds[0]
	if b.ModelKey == "" {
		t.Error("in-flight build has empty model key")
	}
	if b.System != "MS2" {
		t.Errorf("system = %q, want MS2", b.System)
	}
	if b.StartedAt.IsZero() {
		t.Error("started_at is zero")
	}
	if b.Status.Phase != "compile" {
		t.Errorf("phase = %q, want compile", b.Status.Phase)
	}
	if b.Status.PhaseDone != 40 || b.Status.PhaseTotal != 100 {
		t.Errorf("phase progress = %d/%d, want 40/100", b.Status.PhaseDone, b.Status.PhaseTotal)
	}
	if b.Status.LiveNodes != 4242 {
		t.Errorf("live nodes = %d, want 4242", b.Status.LiveNodes)
	}
	// Compile spans [0.01, 0.76) of the weighted build; 40% through it.
	if want := 0.01 + 0.75*0.4; b.Status.Progress < want-1e-9 || b.Status.Progress > want+1e-9 {
		t.Errorf("progress = %v, want %v", b.Status.Progress, want)
	}
	if b.Status.ElapsedSeconds < 0 {
		t.Errorf("elapsed = %v", b.Status.ElapsedSeconds)
	}

	// The inflight gauge tracks the same count.
	if snap := metricsSnapshot(t, ts); snap.Gauges["build.inflight"] != 1 {
		t.Errorf("build.inflight = %d, want 1", snap.Gauges["build.inflight"])
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("evaluate request failed: %v", err)
	}
	// The build unregisters before the cache entry becomes ready, so the
	// list is empty as soon as the request returned.
	if list := getBuilds(t, ts); len(list.Builds) != 0 {
		t.Errorf("finished build still listed: %+v", list.Builds)
	}
	if snap := metricsSnapshot(t, ts); snap.Gauges["build.inflight"] != 0 {
		t.Errorf("build.inflight after finish = %d, want 0", snap.Gauges["build.inflight"])
	}
}

// TestMetricsPrometheusFormat is the wiring check on GET /metrics: the
// text exposition parses, carries the socyield namespace, and includes
// the request-latency histogram series after a request was served.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out EvaluateResponse
	body := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 0.25}, "epsilon": 1e-4}`
	if code := post(t, ts, "/v1/evaluate", body, &out); code != http.StatusOK {
		t.Fatalf("evaluate: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	text := string(raw)

	// Every non-comment line must be "name value" or "name{le=...} value".
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
			}
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE socyield_cache_misses counter",
		"socyield_cache_misses 1",
		"# TYPE socyield_http_latency_ns_evaluate histogram",
		"socyield_http_latency_ns_evaluate_count 1",
		`socyield_http_latency_ns_evaluate_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\nfull output:\n%s", want, text)
		}
	}
}

// TestRequestIDPropagation checks the middleware honors a provided
// X-Request-Id and generates one otherwise.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("echoed request id = %q, want trace-me-42", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("no generated request id on response")
	}
}
