package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"socyield/internal/obs"
	"socyield/internal/store"
)

const quadFTDSL = `
system quad
component n1 0.1
component n2 0.1
component n3 0.15
component n4 0.15
fails = atleast(3, n1, n2, n3, n4)
`

func openTestStore(t *testing.T, dir string, maxBytes int64, rec *obs.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(dir, maxBytes, rec)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

func prometheusText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: reading body: %v", err)
	}
	return string(body)
}

// TestStoreWriteThroughAndWarmStart is the two-tier happy path: a
// compile on one server writes through to disk, and a fresh server
// sharing the directory warm-starts from it — the first request after
// a "restart" is an in-memory cache hit with zero compiles, and the
// store hit is visible in the Prometheus exposition.
func TestStoreWriteThroughAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	body := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 0.25}, "epsilon": 1e-4}`

	reg1 := obs.NewRegistry()
	_, ts1 := newTestServer(t, Config{Metrics: reg1, Store: openTestStore(t, dir, 0, reg1)})
	var first EvaluateResponse
	if code := post(t, ts1, "/v1/evaluate", body, &first); code != http.StatusOK {
		t.Fatalf("first evaluate: status %d", code)
	}
	if first.CacheHit {
		t.Error("cold request reported cache_hit=true")
	}
	snap1 := metricsSnapshot(t, ts1)
	if snap1.Counters["build.compiles"] != 1 || snap1.Counters["store.puts"] != 1 || snap1.Counters["store.misses"] != 1 {
		t.Fatalf("after cold build: compiles=%d puts=%d store_misses=%d, want 1/1/1",
			snap1.Counters["build.compiles"], snap1.Counters["store.puts"], snap1.Counters["store.misses"])
	}
	if _, err := os.Stat(filepath.Join(dir, first.ModelKey+".scm")); err != nil {
		t.Fatalf("write-through left no file for %s: %v", first.ModelKey, err)
	}

	// A fresh server over the same directory: warm start preloads the
	// model, so the request never leaves the in-memory tier.
	reg2 := obs.NewRegistry()
	_, ts2 := newTestServer(t, Config{Metrics: reg2, Store: openTestStore(t, dir, 0, reg2)})
	if snap := metricsSnapshot(t, ts2); snap.Counters["store.warm_loads"] != 1 || snap.Counters["store.hits"] != 1 {
		t.Fatalf("warm start: warm_loads=%d store_hits=%d, want 1/1",
			snap.Counters["store.warm_loads"], snap.Counters["store.hits"])
	}
	var warm EvaluateResponse
	if code := post(t, ts2, "/v1/evaluate", body, &warm); code != http.StatusOK {
		t.Fatalf("warm evaluate: status %d", code)
	}
	if !warm.CacheHit {
		t.Error("warm-started model missed the in-memory cache")
	}
	if warm.Yield != first.Yield || warm.ErrorBound != first.ErrorBound || warm.M != first.M || warm.ModelKey != first.ModelKey {
		t.Errorf("warm-started model differs: %+v vs %+v", warm, first)
	}
	snap2 := metricsSnapshot(t, ts2)
	if snap2.Counters["build.compiles"] != 0 {
		t.Errorf("build.compiles=%d after warm start, want 0", snap2.Counters["build.compiles"])
	}
	prom := prometheusText(t, ts2)
	if !strings.Contains(prom, "socyield_store_hits 1") || !strings.Contains(prom, "socyield_store_warm_loads 1") {
		t.Errorf("/metrics missing store series:\n%s", prom)
	}
}

// TestStoreSecondTierServesLRUMiss pins the store probe inside the
// build slot: with an in-memory capacity of 1 and two stored models,
// warm start registers only the newest — a request for the older one
// misses the LRU, enters the build path, and is served from disk with
// zero compiles.
func TestStoreSecondTierServesLRUMiss(t *testing.T) {
	dir := t.TempDir()
	ms2 := `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "epsilon": 1e-4}`
	tmr := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL)

	reg1 := obs.NewRegistry()
	_, ts1 := newTestServer(t, Config{Metrics: reg1, Store: openTestStore(t, dir, 0, reg1)})
	var wantMS2, wantTMR EvaluateResponse
	if code := post(t, ts1, "/v1/evaluate", ms2, &wantMS2); code != http.StatusOK {
		t.Fatalf("seed MS2: status %d", code)
	}
	if code := post(t, ts1, "/v1/evaluate", tmr, &wantTMR); code != http.StatusOK {
		t.Fatalf("seed TMR: status %d", code)
	}
	// Make the recency order unambiguous: MS2 is old, TMR is newest.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, wantMS2.ModelKey+".scm"), old, old); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	_, ts2 := newTestServer(t, Config{CacheEntries: 1, Metrics: reg2, Store: openTestStore(t, dir, 0, reg2)})
	if snap := metricsSnapshot(t, ts2); snap.Counters["store.warm_loads"] != 1 {
		t.Fatalf("warm_loads=%d with capacity 1, want 1", snap.Counters["store.warm_loads"])
	}
	// The newest model (TMR) is the one warm-started: it hits the LRU.
	var gotTMR EvaluateResponse
	if code := post(t, ts2, "/v1/evaluate", tmr, &gotTMR); code != http.StatusOK {
		t.Fatalf("TMR on warm server: status %d", code)
	}
	if !gotTMR.CacheHit || gotTMR.Yield != wantTMR.Yield {
		t.Errorf("warm TMR: cache_hit=%v yield=%.17g, want hit with %.17g", gotTMR.CacheHit, gotTMR.Yield, wantTMR.Yield)
	}
	// MS2 misses the LRU but is served from the persistent tier.
	var gotMS2 EvaluateResponse
	if code := post(t, ts2, "/v1/evaluate", ms2, &gotMS2); code != http.StatusOK {
		t.Fatalf("MS2 on warm server: status %d", code)
	}
	if gotMS2.CacheHit {
		t.Error("MS2 reported an in-memory cache hit; it should have come from the store")
	}
	if gotMS2.Yield != wantMS2.Yield || gotMS2.ErrorBound != wantMS2.ErrorBound || gotMS2.M != wantMS2.M {
		t.Errorf("store-served MS2 differs: %+v vs %+v", gotMS2, wantMS2)
	}
	snap := metricsSnapshot(t, ts2)
	if snap.Counters["build.compiles"] != 0 {
		t.Errorf("build.compiles=%d, want 0: the store must satisfy the LRU miss", snap.Counters["build.compiles"])
	}
	if snap.Counters["cache.builds"] != 1 {
		t.Errorf("cache.builds=%d, want 1: the MS2 request must enter the build slot", snap.Counters["cache.builds"])
	}
	if snap.Counters["store.hits"] != 2 { // warm start + LRU-miss probe
		t.Errorf("store.hits=%d, want 2", snap.Counters["store.hits"])
	}
}

// TestStoreCorruptionFallsBackToRebuild: a corrupt entry under a valid
// key must cost exactly one recompile — the probe detects it, evicts
// the file, the request rebuilds cleanly, and the write-through leaves
// a decodable entry in its place.
func TestStoreCorruptionFallsBackToRebuild(t *testing.T) {
	body := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL)

	// Learn the model key (and the reference bits) from a store-less server.
	_, ts0 := newTestServer(t, Config{})
	var want EvaluateResponse
	if code := post(t, ts0, "/v1/evaluate", body, &want); code != http.StatusOK {
		t.Fatalf("reference evaluate: status %d", code)
	}

	// Boot the server over an empty directory, then plant garbage under
	// the key it is about to probe.
	dir := t.TempDir()
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg, Store: openTestStore(t, dir, 0, reg)})
	path := filepath.Join(dir, want.ModelKey+".scm")
	if err := os.WriteFile(path, []byte("this is not a compiled model"), 0o644); err != nil {
		t.Fatal(err)
	}

	var got EvaluateResponse
	if code := post(t, ts, "/v1/evaluate", body, &got); code != http.StatusOK {
		t.Fatalf("evaluate over corrupt entry: status %d", code)
	}
	if got.Yield != want.Yield || got.ErrorBound != want.ErrorBound || got.M != want.M {
		t.Errorf("rebuild after corruption differs: %+v vs %+v", got, want)
	}
	snap := metricsSnapshot(t, ts)
	if snap.Counters["store.decode_errors"] != 1 {
		t.Errorf("store.decode_errors=%d, want 1", snap.Counters["store.decode_errors"])
	}
	if snap.Counters["build.compiles"] != 1 {
		t.Errorf("build.compiles=%d, want 1 (clean rebuild)", snap.Counters["build.compiles"])
	}
	// The write-through replaced the garbage with a decodable model.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("write-through left no file: %v", err)
	}
	decoded, err := store.Decode(data)
	if err != nil {
		t.Fatalf("replacement entry does not decode: %v", err)
	}
	if decoded.ModelKey != want.ModelKey {
		t.Errorf("replacement entry key %s, want %s", decoded.ModelKey, want.ModelKey)
	}
}

// TestStoreWarmStartEvictsCorruptEntries: corruption discovered during
// warm start is evicted on the spot and never fails boot.
func TestStoreWarmStartEvictsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL)

	reg1 := obs.NewRegistry()
	_, ts1 := newTestServer(t, Config{Metrics: reg1, Store: openTestStore(t, dir, 0, reg1)})
	var seeded EvaluateResponse
	if code := post(t, ts1, "/v1/evaluate", body, &seeded); code != http.StatusOK {
		t.Fatalf("seed: status %d", code)
	}
	path := filepath.Join(dir, seeded.ModelKey+".scm")
	if err := os.WriteFile(path, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	_, ts2 := newTestServer(t, Config{Metrics: reg2, Store: openTestStore(t, dir, 0, reg2)})
	snap := metricsSnapshot(t, ts2)
	if snap.Counters["store.warm_loads"] != 0 || snap.Counters["store.decode_errors"] != 1 {
		t.Errorf("warm start over corrupt entry: warm_loads=%d decode_errors=%d, want 0/1",
			snap.Counters["store.warm_loads"], snap.Counters["store.decode_errors"])
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not evicted during warm start: %v", err)
	}
	// The server still serves the model — by recompiling.
	var got EvaluateResponse
	if code := post(t, ts2, "/v1/evaluate", body, &got); code != http.StatusOK {
		t.Fatalf("evaluate after corrupt warm start: status %d", code)
	}
	if got.Yield != seeded.Yield {
		t.Errorf("yield %.17g, want %.17g", got.Yield, seeded.Yield)
	}
}

// TestStoreDiskCapEviction: with a byte cap smaller than any one
// entry, every write evicts its predecessor — the server keeps
// working, and the newest model is always the one on disk (oversized
// entries survive alone rather than thrashing to zero).
func TestStoreDiskCapEviction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg, Store: openTestStore(t, dir, 1, reg)})

	bodies := []string{
		fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL),
		fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, quadFTDSL),
	}
	var keys []string
	for i, body := range bodies {
		var r EvaluateResponse
		if code := post(t, ts, "/v1/evaluate", body, &r); code != http.StatusOK {
			t.Fatalf("model %d: status %d", i, code)
		}
		keys = append(keys, r.ModelKey)
	}
	if keys[0] == keys[1] {
		t.Fatal("test models share a key; they must differ")
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0]+".scm")); !os.IsNotExist(err) {
		t.Errorf("oldest entry survived past the byte cap: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[1]+".scm")); err != nil {
		t.Errorf("newest entry missing: %v", err)
	}
	snap := metricsSnapshot(t, ts)
	if snap.Counters["store.evictions"] != 1 {
		t.Errorf("store.evictions=%d, want 1", snap.Counters["store.evictions"])
	}
	if snap.Gauges["store.entries"] != 1 {
		t.Errorf("store.entries=%d, want 1", snap.Gauges["store.entries"])
	}
}
