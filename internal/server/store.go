package server

import (
	"context"
	"errors"
	"log/slog"

	"socyield/internal/store"
	"socyield/internal/yield"
)

// The persistent store is the second cache tier. The in-memory LRU
// holds live Reevaluators; the store holds their encoded snapshots on
// disk, keyed by the same yield.ModelKey. The flow:
//
//	LRU hit                   → serve (microseconds)
//	LRU miss, store hit       → decode + restore (milliseconds)
//	LRU miss, store miss      → compile (seconds), then write through
//
// The store probe runs inside the cache's single-flight build slot, so
// concurrent requests for an uncached model coalesce onto one
// load-or-build whichever tier ends up serving it. A store entry that
// fails to decode — torn write from a crash, version or engine-revision
// skew after an upgrade, bit rot — is evicted and the request falls
// through to a clean rebuild: corruption costs a recompile, never an
// error response.

// loadFromStore tries the persistent tier. It returns nil (never an
// error) when the model must be compiled instead: a miss, a corrupt
// entry, or revision skew all land on the build path.
func (s *Server) loadFromStore(key, reqID string) *yield.Reevaluator {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	data, err := st.Get(key)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "model store read failed",
				slog.String("request_id", reqID), slog.String("model_key", key), slog.Any("error", err))
		}
		return nil
	}
	snap, err := store.Decode(data)
	if err == nil && snap.ModelKey != key {
		// A file renamed onto the wrong key would otherwise serve the
		// wrong model forever; treat it exactly like corruption.
		err = errors.New("stored model key does not match its address")
	}
	var re *yield.Reevaluator
	if err == nil {
		re, err = yield.RestoreReevaluator(snap)
	}
	if err != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "evicting undecodable stored model",
			slog.String("request_id", reqID), slog.String("model_key", key), slog.Any("error", err))
		s.cfg.Metrics.Counter("store.decode_errors").Inc()
		st.Evict(key)
		return nil
	}
	return re
}

// saveToStore writes a freshly compiled model through to the
// persistent tier. Failures are logged, not returned: the request
// already has its model, and the store is an optimization.
func (s *Server) saveToStore(key, reqID string, re *yield.Reevaluator) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	snap := re.Snapshot()
	snap.ModelKey = key
	data, err := store.Encode(snap)
	if err == nil {
		err = st.Put(key, data)
	}
	if err != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "model store write failed",
			slog.String("request_id", reqID), slog.String("model_key", key), slog.Any("error", err))
	}
}

// warmStart preloads the most recently used stored models into the
// in-memory cache at boot, newest first, up to the cache capacity —
// the first request after a restart hits a warm cache instead of
// recompiling (or even re-decoding) anything. Undecodable entries are
// evicted on the spot; warm-start failures never fail boot.
func (s *Server) warmStart() {
	st := s.cfg.Store
	if st == nil {
		return
	}
	entries, err := st.List()
	if err != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "model store scan failed",
			slog.Any("error", err))
		return
	}
	loaded := 0
	for _, e := range entries {
		if loaded >= s.cfg.CacheEntries {
			break
		}
		if re := s.loadFromStore(e.Key, "warm-start"); re != nil {
			s.cache.putReady(e.Key, re)
			s.cfg.Metrics.Counter("store.warm_loads").Inc()
			loaded++
		}
	}
	if loaded > 0 {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "warm-started model cache",
			slog.Int("models", loaded), slog.Int("stored", len(entries)))
	}
}
