package server

import (
	"container/list"
	"context"
	"sync"

	"socyield/internal/obs"
	"socyield/internal/yield"
)

// modelCache is a keyed LRU of compiled models (Reevaluators) with
// single-flight deduplication: concurrent requests for the same model
// key trigger exactly one build, and every waiter shares its outcome.
//
// The cache holds *entries*, some of which may still be building. An
// entry carries a ready channel that the builder closes when the
// Reevaluator (or the build error) is in place; waiters select on it
// against their request context, so a slow compile never wedges a
// handler past its deadline — the build keeps running in the
// background and warms the cache for the next request.
//
// Memory is bounded twice over: the entry count by the LRU capacity
// here, and each model's decision diagrams by the node budget the
// server passes into every build (yield.Options.NodeLimit).
type modelCache struct {
	// Counters are resolved once at construction (obs instruments are
	// nil-safe, so a cache without a registry still works).
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	builds    *obs.Counter
	entries   *obs.Gauge
	waiting   *obs.Gauge

	capacity int

	mu    sync.Mutex
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used
}

// cacheEntry is one cached model. re and err may only be read after
// ready is closed.
type cacheEntry struct {
	key   string
	ready chan struct{}
	re    *yield.Reevaluator
	err   error
}

func newModelCache(capacity int, rec *obs.Registry) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		hits:      rec.Counter("cache.hits"),
		misses:    rec.Counter("cache.misses"),
		coalesced: rec.Counter("cache.coalesced"),
		evictions: rec.Counter("cache.evictions"),
		builds:    rec.Counter("cache.builds"),
		entries:   rec.Gauge("cache.entries"),
		waiting:   rec.Gauge("build.queue_depth"),
		capacity:  capacity,
		byKey:     make(map[string]*list.Element),
		lru:       list.New(),
	}
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// get returns the Reevaluator for key, building it with build on a
// miss. hit reports whether a previously requested model was reused
// (including coalescing onto a build still in flight). The context
// bounds only this caller's wait: an abandoned build still completes
// and populates the cache for the next request.
func (c *modelCache) get(ctx context.Context, key string, build func() (*yield.Reevaluator, error)) (re *yield.Reevaluator, hit bool, err error) {
	c.mu.Lock()
	var entry *cacheEntry
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		entry = el.Value.(*cacheEntry)
		hit = true
		c.hits.Inc()
		if !isClosed(entry.ready) {
			c.coalesced.Inc()
		}
		c.mu.Unlock()
	} else {
		entry = &cacheEntry{key: key, ready: make(chan struct{})}
		c.byKey[key] = c.lru.PushFront(entry)
		for c.lru.Len() > c.capacity {
			back := c.lru.Back()
			delete(c.byKey, back.Value.(*cacheEntry).key)
			c.lru.Remove(back)
			c.evictions.Inc()
		}
		c.entries.Set(int64(len(c.byKey)))
		c.misses.Inc()
		c.builds.Inc()
		c.mu.Unlock()
		// Build outside the lock and off the request's lifetime: the
		// winning requester may time out, but the compile still
		// finishes and serves everyone queued behind the entry.
		go func() {
			entry.re, entry.err = build()
			close(entry.ready)
			if entry.err != nil {
				c.remove(entry)
			}
		}()
	}

	// build.queue_depth gauges how many requests are parked on builds
	// still in flight (hit-path requests on ready entries fall through
	// without touching it).
	if !isClosed(entry.ready) {
		c.waiting.Add(1)
		defer c.waiting.Add(-1)
	}
	select {
	case <-entry.ready:
		return entry.re, hit, entry.err
	case <-ctx.Done():
		return nil, hit, ctx.Err()
	}
}

// putReady inserts an already-built model as a ready entry — the
// warm-start path, where boot loads compiled models from the
// persistent store without any request (or build) in flight. A live
// entry under the same key wins: it is either the same model (keys are
// content addresses) or a build already racing, and both beat
// replacing it.
func (c *modelCache) putReady(key string, re *yield.Reevaluator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	entry := &cacheEntry{key: key, ready: make(chan struct{}), re: re}
	close(entry.ready)
	c.byKey[key] = c.lru.PushFront(entry)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.lru.Remove(back)
		c.evictions.Inc()
	}
	c.entries.Set(int64(len(c.byKey)))
}

// remove drops a failed entry so a later identical request retries the
// build instead of replaying the error forever. Only the exact entry
// is removed — an unrelated successor under the same key stays.
func (c *modelCache) remove(entry *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[entry.key]; ok && el.Value.(*cacheEntry) == entry {
		c.lru.Remove(el)
		delete(c.byKey, entry.key)
		c.entries.Set(int64(len(c.byKey)))
	}
}

// len reports the current entry count (for tests).
func (c *modelCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
