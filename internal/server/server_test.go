package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/ftdsl"
	"socyield/internal/obs"
	"socyield/internal/order"
	"socyield/internal/yield"
)

const tmrFTDSL = `
system tmr
component m1 0.2
component m2 0.15
component m3 0.15
fails = atleast(2, m1, m2, m3)
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body to path and decodes the JSON response into out,
// returning the status code.
func post(t *testing.T, ts *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.json: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	return snap
}

// TestEvaluateBitIdenticalToLibrary is the service's core contract:
// the HTTP path (ModelKey → cached Reevaluator → Yield) returns the
// exact float64 bits the library's Evaluate produces for the same
// inputs — both for a named benchmark and for ftdsl source, on cold
// and warm cache.
func TestEvaluateBitIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name string
		body string
		sys  func() (*yield.System, error)
		opts yield.Options
	}{
		{
			name: "bench MS2",
			body: `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 0.25}, "epsilon": 1e-4}`,
			sys:  func() (*yield.System, error) { return benchmarks.ByName("MS2") },
			opts: yield.Options{Defects: mustNB(t, 2, 0.25), Epsilon: 1e-4},
		},
		{
			name: "ftdsl TMR poisson",
			body: fmt.Sprintf(`{"ftdsl": %q, "defects": {"dist": "poisson", "lambda": 1.5}, "epsilon": 1e-5, "mv_order": "wv", "bit_order": "lm"}`, tmrFTDSL),
			sys:  func() (*yield.System, error) { return ftdsl.Parse(tmrFTDSL) },
			opts: yield.Options{Defects: defects.Poisson{Lambda: 1.5}, Epsilon: 1e-5,
				MVOrder: order.MVWV, BitOrder: order.BitLM},
		},
		{
			name: "bench MS2 hierarchical",
			body: `{"bench": "MS2", "defects": {"dist": "hierarchical", "lambda": 1.5, "alpha": 2, "beta": 3}, "epsilon": 1e-4}`,
			sys:  func() (*yield.System, error) { return benchmarks.ByName("MS2") },
			opts: yield.Options{Defects: mustHierarchical(t, 1.5, 2, 3), Epsilon: 1e-4},
		},
		{
			name: "ftdsl TMR multilevel",
			body: fmt.Sprintf(`{"ftdsl": %q, "defects": {"dist": "multilevel", "lambda": 1, "alphas": [2, 3]}, "epsilon": 1e-4}`, tmrFTDSL),
			sys:  func() (*yield.System, error) { return ftdsl.Parse(tmrFTDSL) },
			opts: yield.Options{Defects: mustMultilevel(t, 1, 2, 3), Epsilon: 1e-4},
		},
	}
	for _, tc := range cases {
		sys, err := tc.sys()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := yield.Evaluate(sys, tc.opts)
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", tc.name, err)
		}
		for round := 0; round < 2; round++ { // cold, then cached
			var got EvaluateResponse
			if code := post(t, ts, "/v1/evaluate", tc.body, &got); code != http.StatusOK {
				t.Fatalf("%s round %d: status %d", tc.name, round, code)
			}
			if got.Yield != want.Yield {
				t.Errorf("%s round %d: yield %.17g, library %.17g", tc.name, round, got.Yield, want.Yield)
			}
			if got.ErrorBound != want.ErrorBound {
				t.Errorf("%s round %d: bound %.17g, library %.17g", tc.name, round, got.ErrorBound, want.ErrorBound)
			}
			if got.M != want.M {
				t.Errorf("%s round %d: M=%d, library M=%d", tc.name, round, got.M, want.M)
			}
			if hit := round == 1; got.CacheHit != hit {
				t.Errorf("%s round %d: cache_hit=%v, want %v", tc.name, round, got.CacheHit, hit)
			}
		}
	}
}

func mustNB(t *testing.T, lambda, alpha float64) defects.Distribution {
	t.Helper()
	d, err := defects.NewNegativeBinomial(lambda, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustHierarchical(t *testing.T, lambda, alpha, beta float64) defects.Distribution {
	t.Helper()
	d, err := defects.NewHierarchical(lambda, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustMultilevel(t *testing.T, lambda float64, alphas ...float64) defects.Distribution {
	t.Helper()
	d, err := defects.NewMultilevel(lambda, alphas...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCacheHitCounter is the acceptance check on /metrics: a repeated
// identical request is a cache hit visible in the cache-hit counter.
func TestCacheHitCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 2}}`

	var first, second EvaluateResponse
	if code := post(t, ts, "/v1/evaluate", body, &first); code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	if code := post(t, ts, "/v1/evaluate", body, &second); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if first.CacheHit || !second.CacheHit {
		t.Errorf("cache_hit: first %v (want false), second %v (want true)", first.CacheHit, second.CacheHit)
	}
	if first.ModelKey == "" || first.ModelKey != second.ModelKey {
		t.Errorf("model keys: %q vs %q", first.ModelKey, second.ModelKey)
	}
	snap := metricsSnapshot(t, ts)
	if snap.Counters["cache.hits"] != 1 || snap.Counters["cache.misses"] != 1 || snap.Counters["cache.builds"] != 1 {
		t.Errorf("cache counters: hits=%d misses=%d builds=%d, want 1/1/1",
			snap.Counters["cache.hits"], snap.Counters["cache.misses"], snap.Counters["cache.builds"])
	}
	if snap.Counters["http.requests"] < 2 {
		t.Errorf("http.requests=%d, want ≥ 2", snap.Counters["http.requests"])
	}
}

// TestConcurrentIdenticalRequestsCompileOnce exercises the
// single-flight path: N concurrent identical requests must trigger
// exactly one model build and all return the same bits. Run under
// -race this also validates the cache's synchronization.
func TestConcurrentIdenticalRequestsCompileOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 16})
	body := `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "epsilon": 1e-4}`

	const n = 8
	var wg sync.WaitGroup
	results := make([]EvaluateResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if results[i].Yield != results[0].Yield || results[i].M != results[0].M {
			t.Errorf("request %d: yield %.17g (M=%d) differs from request 0 (%.17g, M=%d)",
				i, results[i].Yield, results[i].M, results[0].Yield, results[0].M)
		}
	}
	snap := metricsSnapshot(t, ts)
	if snap.Counters["cache.builds"] != 1 {
		t.Errorf("cache.builds=%d, want 1 (single-flight)", snap.Counters["cache.builds"])
	}
	if got := snap.Counters["cache.hits"] + snap.Counters["cache.misses"]; got != n {
		t.Errorf("hits+misses=%d, want %d", got, n)
	}
	if s.cache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.cache.len())
	}
}

// TestSweep checks that /v1/sweep reuses the compiled model and that
// the grid point matching the base model is bit-identical to
// /v1/evaluate for the same inputs.
func TestSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var ev EvaluateResponse
	evBody := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 2}, "epsilon": 1e-4}`
	if code := post(t, ts, "/v1/evaluate", evBody, &ev); code != http.StatusOK {
		t.Fatalf("evaluate: status %d", code)
	}

	var sw SweepResponse
	swBody := `{"bench": "MS2", "defects": {"lambda": 2, "alpha": 2}, "epsilon": 1e-4,
		"lambdas": [0.5, 1, 2, 4], "workers": 4}`
	if code := post(t, ts, "/v1/sweep", swBody, &sw); code != http.StatusOK {
		t.Fatalf("sweep: status %d", code)
	}
	if !sw.CacheHit {
		t.Error("sweep after evaluate of the same model: cache_hit=false")
	}
	if sw.ModelKey != ev.ModelKey || sw.M != ev.M {
		t.Errorf("sweep model (%s, M=%d) differs from evaluate (%s, M=%d)", sw.ModelKey, sw.M, ev.ModelKey, ev.M)
	}
	if len(sw.Results) != 4 {
		t.Fatalf("sweep returned %d results, want 4", len(sw.Results))
	}
	for i, r := range sw.Results {
		if r.Error != "" {
			t.Errorf("point %d (λ=%g): %s", i, r.Lambda, r.Error)
		}
		if r.Yield < 0 || r.Yield > 1 {
			t.Errorf("point %d: yield %v outside [0,1]", i, r.Yield)
		}
	}
	// λ=2 is the base model: bit-identical to the evaluate response.
	if sw.Results[2].Yield != ev.Yield || sw.Results[2].ErrorBound != ev.ErrorBound {
		t.Errorf("sweep λ=2 (%.17g ± %.17g) differs from evaluate (%.17g ± %.17g)",
			sw.Results[2].Yield, sw.Results[2].ErrorBound, ev.Yield, ev.ErrorBound)
	}
	// Yield decreases with λ (more defects, lower yield).
	for i := 1; i < len(sw.Results); i++ {
		if sw.Results[i].Yield > sw.Results[i-1].Yield {
			t.Errorf("yield not monotone in λ: Y(%g)=%v > Y(%g)=%v",
				sw.Results[i].Lambda, sw.Results[i].Yield, sw.Results[i-1].Lambda, sw.Results[i-1].Yield)
		}
	}

	// A serial re-run of the same sweep is bit-identical.
	var sw1 SweepResponse
	if code := post(t, ts, "/v1/sweep", strings.Replace(swBody, `"workers": 4`, `"workers": 1`, 1), &sw1); code != http.StatusOK {
		t.Fatalf("serial sweep: status %d", code)
	}
	for i := range sw.Results {
		if sw.Results[i] != sw1.Results[i] {
			t.Errorf("point %d: parallel %+v != serial %+v", i, sw.Results[i], sw1.Results[i])
		}
	}
}

// TestSensitivities spot-checks the sensitivities path: the TMR
// components are interchangeable up to their P_i, and every ∂Y/∂P_i
// must be negative (more lethality, less yield).
func TestSensitivities(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}, "sensitivities": true}`, tmrFTDSL)
	var resp EvaluateResponse
	if code := post(t, ts, "/v1/evaluate", body, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Sensitivities) != 3 {
		t.Fatalf("got %d sensitivities, want 3", len(resp.Sensitivities))
	}
	for _, s := range resp.Sensitivities {
		if s.DYieldDP >= 0 {
			t.Errorf("∂Y/∂P_%s = %v, want negative", s.Component, s.DYieldDP)
		}
	}
}

// TestLethalitiesOverride: overriding P_i (at the same total P_L, so
// the truncation point is unchanged) changes the yield but not the
// compiled model — same key, cache hit.
func TestLethalitiesOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL)
	// 0.3+0.15+0.05 = 0.2+0.15+0.15 = 0.5: P_L (hence M and the model
	// key) is unchanged, but the lethality now concentrates on m1.
	override := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}, "lethalities": [0.3, 0.15, 0.05]}`, tmrFTDSL)

	var r1, r2 EvaluateResponse
	if code := post(t, ts, "/v1/evaluate", base, &r1); code != http.StatusOK {
		t.Fatalf("base: status %d", code)
	}
	if code := post(t, ts, "/v1/evaluate", override, &r2); code != http.StatusOK {
		t.Fatalf("override: status %d", code)
	}
	if r1.ModelKey != r2.ModelKey {
		t.Errorf("lethality override changed the model key: %s vs %s", r1.ModelKey, r2.ModelKey)
	}
	if !r2.CacheHit {
		t.Error("lethality override missed the cache")
	}
	if r2.Yield == r1.Yield {
		t.Error("redistributing lethality across TMR components left the yield bit-identical; expected a different value")
	}
	if r2.Yield < 0 || r2.Yield > 1 {
		t.Errorf("override yield %v outside [0,1]", r2.Yield)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 4})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/evaluate", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/evaluate", `{"bogus": 1}`, http.StatusBadRequest},
		{"no source", "/v1/evaluate", `{"defects": {"lambda": 1, "alpha": 2}}`, http.StatusBadRequest},
		{"both sources", "/v1/evaluate", `{"bench": "MS2", "ftdsl": "x", "defects": {"lambda": 1, "alpha": 2}}`, http.StatusBadRequest},
		{"unknown bench", "/v1/evaluate", `{"bench": "NOPE3", "defects": {"lambda": 1, "alpha": 2}}`, http.StatusBadRequest},
		{"bad ftdsl", "/v1/evaluate", `{"ftdsl": "system x\nfails = foo(", "defects": {"lambda": 1, "alpha": 2}}`, http.StatusBadRequest},
		{"no defects", "/v1/evaluate", `{"bench": "MS2"}`, http.StatusBadRequest},
		{"bad distribution", "/v1/evaluate", `{"bench": "MS2", "defects": {"dist": "zipf", "lambda": 1}}`, http.StatusBadRequest},
		{"bad nb params", "/v1/evaluate", `{"bench": "MS2", "defects": {"lambda": -1, "alpha": 2}}`, http.StatusBadRequest},
		{"bad hierarchical params", "/v1/evaluate", `{"bench": "MS2", "defects": {"dist": "hierarchical", "lambda": 1, "alpha": 0, "beta": 2}}`, http.StatusBadRequest},
		{"multilevel without alphas", "/v1/evaluate", `{"bench": "MS2", "defects": {"dist": "multilevel", "lambda": 1}}`, http.StatusBadRequest},
		{"bad mv order", "/v1/evaluate", `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "mv_order": "zz"}`, http.StatusBadRequest},
		{"bad lethality count", "/v1/evaluate", `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "lethalities": [0.5]}`, http.StatusBadRequest},
		{"empty lambdas", "/v1/sweep", `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "lambdas": []}`, http.StatusBadRequest},
		{"too many lambdas", "/v1/sweep", `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}, "lambdas": [1,2,3,4,5]}`, http.StatusBadRequest},
		{"get on evaluate", "/v1/evaluate", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var code int
		if tc.name == "get on evaluate" {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			resp.Body.Close()
			code = resp.StatusCode
		} else {
			var e errorResponse
			code = post(t, ts, tc.path, tc.body, &e)
			if code != http.StatusOK && e.Error == "" {
				t.Errorf("%s: error body missing", tc.name)
			}
		}
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
}

// TestNodeLimitAndRetry: a model over the node budget fails with 422,
// and — because failed builds are dropped from the cache — an
// identical retry rebuilds instead of replaying the cached error.
func TestNodeLimitAndRetry(t *testing.T) {
	_, ts := newTestServer(t, Config{NodeLimit: -1}) // negative = unlimited
	s2, ts2 := newTestServer(t, Config{NodeLimit: 8})
	body := `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}}`
	var e errorResponse
	if code := post(t, ts2, "/v1/evaluate", body, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", code, e.Error)
	}
	if s2.cache.len() != 0 {
		t.Errorf("failed build left %d cache entries", s2.cache.len())
	}
	if code := post(t, ts2, "/v1/evaluate", body, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("retry: status %d, want 422", code)
	}
	snap := metricsSnapshot(t, ts2)
	if snap.Counters["cache.builds"] != 2 {
		t.Errorf("cache.builds=%d, want 2 (failed build must not be cached)", snap.Counters["cache.builds"])
	}
	// The unlimited server still works.
	var ok EvaluateResponse
	if code := post(t, ts, "/v1/evaluate", body, &ok); code != http.StatusOK {
		t.Fatalf("unlimited server: status %d", code)
	}
}

// TestLRUEviction: with capacity 1, a second distinct model evicts the
// first, and re-requesting the first rebuilds it.
func TestLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 1})
	ms2 := `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}}`
	tmr := fmt.Sprintf(`{"ftdsl": %q, "defects": {"lambda": 1, "alpha": 2}}`, tmrFTDSL)

	for _, body := range []string{ms2, tmr, ms2} {
		var r EvaluateResponse
		if code := post(t, ts, "/v1/evaluate", body, &r); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if r.CacheHit {
			t.Error("every request should miss: capacity 1 with alternating models")
		}
	}
	if s.cache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.cache.len())
	}
	snap := metricsSnapshot(t, ts)
	if snap.Counters["cache.evictions"] != 2 {
		t.Errorf("cache.evictions=%d, want 2", snap.Counters["cache.evictions"])
	}
	if snap.Counters["cache.builds"] != 3 {
		t.Errorf("cache.builds=%d, want 3", snap.Counters["cache.builds"])
	}
}

// TestRequestTimeout: an already-expired deadline sheds the request
// with 503 before any evaluation work.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	time.Sleep(time.Millisecond) // ensure the deadline has passed once the handler runs
	var e errorResponse
	code := post(t, ts, "/v1/evaluate", `{"bench": "MS2", "defects": {"lambda": 1, "alpha": 2}}`, &e)
	if code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 503 or 504", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || buf.String() != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, buf.String())
	}
}

func TestDebugVars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("expvar did not serve JSON: %v", err)
	}
}

// TestGracefulShutdown: Serve drains and returns nil once the context
// is cancelled.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{ShutdownGrace: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
