// Package server implements yieldd, the HTTP/JSON evaluation service
// for the combinatorial yield method: clients POST a system (an ftdsl
// description or a named benchmark) together with a defect model and
// get back the yield, its error bound and optionally per-component
// sensitivities — without linking the Go library or paying the
// decision-diagram build on every call.
//
// The expensive part of a request is compiling the model: synthesizing
// G, ordering its variables, building the coded ROBDD and converting
// it to the ROMDD. That work depends only on the fault-tree structure,
// the orderings, ε and the truncation point M — not on the lethality
// values or the defect distribution — so the server keys compiled
// models by yield.ModelKey and keeps them in an LRU cache with
// single-flight deduplication. A request whose model is cached costs
// one linear ROMDD traversal (microseconds); concurrent identical
// requests compile once.
//
// Endpoints:
//
//	POST /v1/evaluate   evaluate one model (yield, bound, sensitivities)
//	POST /v1/sweep      evaluate a λ grid on one shared compiled model
//	GET  /v1/builds     in-flight model builds (phase, progress, ETA)
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition of the obs registry
//	GET  /metrics.json  obs registry snapshot as JSON
//	GET  /debug/vars    expvar (includes the registry when published)
//
// Every response carries an X-Request-Id header (client-supplied or
// generated); the same id appears in the request log line, and
// requests slower than Config.SlowRequestThreshold additionally log at
// warning level.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"socyield/internal/obs"
	"socyield/internal/store"
)

// Config configures a Server. The zero value listens on :8344 with
// sensible limits.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8344").
	Addr string
	// CacheEntries bounds the number of compiled models kept (default
	// 32; minimum 1). Each entry's decision diagrams are additionally
	// bounded by NodeLimit.
	CacheEntries int
	// NodeLimit is the decision-diagram node budget per compiled model
	// (default 8M nodes ≈ a few hundred MB peak; 0 keeps the default,
	// negative means unlimited).
	NodeLimit int
	// MaxConcurrent bounds requests evaluated simultaneously (default
	// 2×GOMAXPROCS). Excess requests wait — bounded by their timeout.
	MaxConcurrent int
	// RequestTimeout bounds one request end to end, including any
	// model compile it waits on (default 60s).
	RequestTimeout time.Duration
	// SweepWorkers caps the worker pool a /v1/sweep request may ask
	// for (default GOMAXPROCS).
	SweepWorkers int
	// BuildWorkers is the worker count for compiling a model's decision
	// diagrams (yield.Options.BuildWorkers). 0 defaults to GOMAXPROCS;
	// 1 forces the serial reference engine. Results are bit-identical
	// for every value, so this is purely a latency knob for cache
	// misses.
	BuildWorkers int
	// MaxSweepPoints bounds the grid size of one sweep request
	// (default 4096).
	MaxSweepPoints int
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// Store, when non-nil, is the persistent second cache tier: on an
	// LRU miss the server tries a stored compiled model before
	// rebuilding, writes freshly compiled models through, and
	// warm-starts the cache from the newest stored models at
	// construction. Open it with store.Open so the server, the store
	// and /metrics share one registry.
	Store *store.Store
	// Metrics receives request, cache and evaluation counters. A new
	// registry is created when nil; it is served on /metrics either
	// way.
	Metrics *obs.Registry
	// Tracer, when non-nil, records per-worker build events of every
	// model compile for the Chrome trace export (yieldd -trace-out).
	Tracer *obs.Tracer
	// SlowRequestThreshold is the duration beyond which a request is
	// additionally logged at warning level (default 10s; negative
	// disables slow-request logging).
	SlowRequestThreshold time.Duration
	// Logger receives one structured line per request. Nil discards.
	Logger *slog.Logger
	// ShutdownGrace bounds the drain on shutdown (default 10s).
	ShutdownGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8344"
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.NodeLimit == 0 {
		c.NodeLimit = 8 << 20
	} else if c.NodeLimit < 0 {
		c.NodeLimit = 0 // yield.Options: 0 = unlimited
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.SlowRequestThreshold == 0 {
		c.SlowRequestThreshold = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// Server is the yieldd HTTP service. Create with New; it is ready to
// serve immediately (Handler for embedding into an existing server,
// ListenAndServe to run standalone).
type Server struct {
	cfg    Config
	cache  *modelCache
	builds *buildTracker
	sem    chan struct{}
	mux    *http.ServeMux
	reqSeq atomic.Uint64

	requests  *obs.Counter
	errors4xx *obs.Counter
	errors5xx *obs.Counter
	slow      *obs.Counter
	inflight  *obs.Gauge
	latency   *obs.Histogram

	// testBuildHook, when set, runs at the start of every model build
	// with the build's BuildState. Tests use it to pin a build at a
	// known phase/progress and hold it there while they poll
	// /v1/builds; it must never be set in production.
	testBuildHook func(*obs.BuildState)
}

// New returns a Server for the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rec := cfg.Metrics
	s := &Server{
		cfg:       cfg,
		cache:     newModelCache(cfg.CacheEntries, rec),
		builds:    newBuildTracker(rec),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		mux:       http.NewServeMux(),
		requests:  rec.Counter("http.requests"),
		errors4xx: rec.Counter("http.errors_4xx"),
		errors5xx: rec.Counter("http.errors_5xx"),
		slow:      rec.Counter("http.slow_requests"),
		inflight:  rec.Gauge("http.inflight"),
		latency:   rec.Histogram("http.request_ns"),
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.limited(s.handleEvaluate))
	s.mux.HandleFunc("POST /v1/sweep", s.limited(s.handleSweep))
	s.mux.HandleFunc("GET /v1/builds", s.handleBuilds)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux.Handle("GET /metrics", rec.PrometheusHandler("socyield"))
	s.mux.Handle("GET /metrics.json", rec.Handler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.warmStart()
	return s
}

// Metrics returns the server's registry (the one /metrics serves).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// requestIDKey carries the request id through the handler context.
type requestIDKey struct{}

// requestID returns the id assigned to the request by Handler ("" when
// the middleware did not run).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// endpointLabel maps a request path onto the bounded label set the
// per-endpoint latency histograms use; unknown paths share "other" so
// path probing cannot grow the registry without bound.
func endpointLabel(path string) string {
	switch path {
	case "/v1/evaluate":
		return "evaluate"
	case "/v1/sweep":
		return "sweep"
	case "/v1/builds":
		return "builds"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/metrics.json":
		return "metrics_json"
	case "/debug/vars":
		return "debug_vars"
	default:
		return "other"
	}
}

// Handler returns the server's HTTP handler with request-id
// propagation, request logging and instrumentation applied — mount it
// anywhere.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Honor a client-supplied id (so the caller can correlate its
		// own logs) or mint a unique one; either way it comes back in
		// the response header, flows through the context into build
		// spans, and tags every log line for the request.
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("req-%d-%d", start.UnixNano(), s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		s.requests.Inc()
		s.inflight.Set(int64(len(s.sem)))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.latency.Observe(int64(dur))
		s.cfg.Metrics.Histogram("http.latency_ns." + endpointLabel(r.URL.Path)).Observe(int64(dur))
		switch {
		case sw.status >= 500:
			s.errors5xx.Inc()
		case sw.status >= 400:
			s.errors4xx.Inc()
		}
		level := slog.LevelInfo
		msg := "request"
		if s.cfg.SlowRequestThreshold > 0 && dur >= s.cfg.SlowRequestThreshold {
			s.slow.Inc()
			level = slog.LevelWarn
			msg = "slow request"
		}
		s.cfg.Logger.LogAttrs(r.Context(), level, msg,
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", dur),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// statusWriter records the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// limited wraps an evaluation handler with the per-request timeout and
// the concurrency limiter. Waiting for a slot counts against the
// request's deadline, so a saturated server sheds load with 503s
// instead of queueing without bound.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := ctx.Err(); err != nil {
			writeError(w, http.StatusServiceUnavailable, "request deadline expired before evaluation started")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			writeError(w, http.StatusServiceUnavailable, "server saturated: no evaluation slot within the request timeout")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r.WithContext(ctx))
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests for up to ShutdownGrace before returning. The
// returned error is nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.cfg.Logger.Info("shutting down", slog.Duration("grace", s.cfg.ShutdownGrace))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on Config.Addr and calls Serve. Cancel ctx
// (e.g. from a SIGTERM handler) for a graceful drain-and-stop.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.Logger.Info("listening", slog.String("addr", ln.Addr().String()))
	return s.Serve(ctx, ln)
}
