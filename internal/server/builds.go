package server

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"socyield/internal/obs"
)

// buildTracker is the server's registry of in-flight model builds.
// Each single-flight build closure registers its BuildState here for
// its lifetime, so GET /v1/builds can report what the server is
// compiling right now — phase, elapsed time, work-unit progress, live
// node count and the phase-weighted ETA — without touching the builds
// themselves (BuildState snapshots are atomic reads).
type buildTracker struct {
	inflight *obs.Gauge

	mu     sync.Mutex
	builds map[string]*trackedBuild
}

type trackedBuild struct {
	key     string
	system  string
	started time.Time
	state   *obs.BuildState
}

func newBuildTracker(rec *obs.Registry) *buildTracker {
	return &buildTracker{
		inflight: rec.Gauge("build.inflight"),
		builds:   make(map[string]*trackedBuild),
	}
}

// add registers a starting build under its model key and returns the
// BuildState the build pipeline should update.
func (t *buildTracker) add(key, system string) *obs.BuildState {
	bs := obs.NewBuildState()
	t.mu.Lock()
	t.builds[key] = &trackedBuild{key: key, system: system, started: time.Now(), state: bs}
	t.inflight.Set(int64(len(t.builds)))
	t.mu.Unlock()
	return bs
}

// remove unregisters a finished (or failed) build.
func (t *buildTracker) remove(key string) {
	t.mu.Lock()
	delete(t.builds, key)
	t.inflight.Set(int64(len(t.builds)))
	t.mu.Unlock()
}

// BuildInfo is one in-flight build in the GET /v1/builds response.
type BuildInfo struct {
	ModelKey string `json:"model_key"`
	System   string `json:"system,omitempty"`
	// StartedAt is the build's start time (RFC 3339).
	StartedAt time.Time `json:"started_at"`
	// Status carries phase, elapsed/phase seconds, work-unit progress,
	// live node count, phase-weighted overall progress and ETA.
	Status obs.BuildStatus `json:"status"`
}

// BuildsResponse is the body of GET /v1/builds.
type BuildsResponse struct {
	Builds []BuildInfo `json:"builds"`
}

// list snapshots the in-flight builds, oldest first.
func (t *buildTracker) list() []BuildInfo {
	t.mu.Lock()
	tracked := make([]*trackedBuild, 0, len(t.builds))
	for _, b := range t.builds {
		tracked = append(tracked, b)
	}
	t.mu.Unlock()
	sort.Slice(tracked, func(i, j int) bool {
		if !tracked[i].started.Equal(tracked[j].started) {
			return tracked[i].started.Before(tracked[j].started)
		}
		return tracked[i].key < tracked[j].key
	})
	out := make([]BuildInfo, len(tracked))
	for i, b := range tracked {
		out[i] = BuildInfo{
			ModelKey:  b.key,
			System:    b.system,
			StartedAt: b.started,
			Status:    b.state.Snapshot(),
		}
	}
	return out
}

func (s *Server) handleBuilds(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, BuildsResponse{Builds: s.builds.list()})
}
