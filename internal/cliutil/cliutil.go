// Package cliutil holds the flag plumbing shared by the socyield
// command-line tools (yieldsoc, experiments, yieldd): loading a system
// from a benchmark name or an ftdsl file, parsing comma-separated
// float lists, dumping a metrics registry, running the flight recorder
// (-trace-out, -samples-out), and serving the pprof + expvar debug
// endpoint.
package cliutil

import (
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on DefaultServeMux
	"os"
	"strconv"
	"strings"
	"time"

	"socyield/internal/benchmarks"
	"socyield/internal/ftdsl"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

// LoadSystem resolves a system from either a benchmark name (MS<n>,
// ESEN<n>x<m>) or an ftdsl description file. Exactly one of the two
// must be given.
func LoadSystem(bench, file string) (*yield.System, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("give either -bench or -f, not both")
	case bench != "":
		return benchmarks.ByName(bench)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ftdsl.Parse(string(src))
	default:
		return nil, fmt.Errorf("give -bench <name> or -f <file> (see -h)")
	}
}

// ParseFloats parses a comma-separated list of floats ("0.5, 1, 2").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteMetrics dumps the registry snapshot as JSON to path ("-" =
// stdout).
func WriteMetrics(rec *obs.Registry, path string) error {
	if path == "-" {
		return rec.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlightRecorder bundles the telemetry sinks a CLI run can carry: a
// background Sampler snapshotting the registry's scalar instruments at
// a fixed interval, and a Tracer collecting per-work-unit events from
// the build pipeline. Close stops the sampler and writes the requested
// artifacts — a Chrome trace-event file (load it at ui.perfetto.dev or
// chrome://tracing) and/or a JSONL time series.
//
// A nil *FlightRecorder is valid and inert, matching the obs
// discipline: StartFlightRecorder returns nil when no output was
// requested, and Tracer/Close on nil are no-ops.
type FlightRecorder struct {
	rec        *obs.Registry
	sampler    *obs.Sampler
	tracer     *obs.Tracer
	traceOut   string
	samplesOut string
}

// StartFlightRecorder starts sampling rec every interval (0 = the obs
// default) and returns the running recorder, or nil when both output
// paths are empty. The tracer is only created when a trace file was
// requested — per-gate events are worthless without a sink and not
// free to record.
func StartFlightRecorder(rec *obs.Registry, traceOut, samplesOut string, interval time.Duration) *FlightRecorder {
	if traceOut == "" && samplesOut == "" {
		return nil
	}
	if interval <= 0 {
		interval = obs.DefaultSampleInterval
	}
	f := &FlightRecorder{
		rec:        rec,
		sampler:    obs.NewSampler(rec, interval, 0),
		traceOut:   traceOut,
		samplesOut: samplesOut,
	}
	if traceOut != "" {
		f.tracer = obs.NewTracer(0)
	}
	f.sampler.Start()
	return f
}

// Tracer returns the build-event tracer to thread into the pipeline
// (nil when tracing was not requested — the pipeline treats that as
// "don't record").
func (f *FlightRecorder) Tracer() *obs.Tracer {
	if f == nil {
		return nil
	}
	return f.tracer
}

// Close stops sampling and writes the requested artifacts. Call it
// after the instrumented work finishes so the trace carries the
// complete phase spans.
func (f *FlightRecorder) Close() error {
	if f == nil {
		return nil
	}
	f.sampler.Stop()
	if f.samplesOut != "" {
		if err := writeTo(f.samplesOut, f.sampler.WriteJSONL); err != nil {
			return fmt.Errorf("samples: %w", err)
		}
	}
	if f.traceOut != "" {
		snap := f.rec.Snapshot()
		err := writeTo(f.traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, snap, f.sampler.Samples(), f.tracer.Events())
		})
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// writeTo streams write into path ("-" = stdout).
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ServeDebug publishes rec under the expvar name "socyield" and starts
// a background HTTP server on addr exposing /debug/pprof and
// /debug/vars for the life of the process. Startup errors are reported
// to stderr (prefixed with tool), not returned: the debug endpoint is
// an observer, never a reason to fail the run.
func ServeDebug(tool, addr string, rec *obs.Registry) {
	rec.Publish("socyield")
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", tool, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof/expvar listening on http://%s/debug/pprof/ and /debug/vars\n", addr)
}
