// Package cliutil holds the flag plumbing shared by the socyield
// command-line tools (yieldsoc, experiments, yieldd): loading a system
// from a benchmark name or an ftdsl file, parsing comma-separated
// float lists, dumping a metrics registry, and serving the pprof +
// expvar debug endpoint.
package cliutil

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on DefaultServeMux
	"os"
	"strconv"
	"strings"

	"socyield/internal/benchmarks"
	"socyield/internal/ftdsl"
	"socyield/internal/obs"
	"socyield/internal/yield"
)

// LoadSystem resolves a system from either a benchmark name (MS<n>,
// ESEN<n>x<m>) or an ftdsl description file. Exactly one of the two
// must be given.
func LoadSystem(bench, file string) (*yield.System, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("give either -bench or -f, not both")
	case bench != "":
		return benchmarks.ByName(bench)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ftdsl.Parse(string(src))
	default:
		return nil, fmt.Errorf("give -bench <name> or -f <file> (see -h)")
	}
}

// ParseFloats parses a comma-separated list of floats ("0.5, 1, 2").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteMetrics dumps the registry snapshot as JSON to path ("-" =
// stdout).
func WriteMetrics(rec *obs.Registry, path string) error {
	if path == "-" {
		return rec.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ServeDebug publishes rec under the expvar name "socyield" and starts
// a background HTTP server on addr exposing /debug/pprof and
// /debug/vars for the life of the process. Startup errors are reported
// to stderr (prefixed with tool), not returned: the debug endpoint is
// an observer, never a reason to fail the run.
func ServeDebug(tool, addr string, rec *obs.Registry) {
	rec.Publish("socyield")
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", tool, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof/expvar listening on http://%s/debug/pprof/ and /debug/vars\n", addr)
}
