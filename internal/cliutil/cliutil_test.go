package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSystem(t *testing.T) {
	if _, err := LoadSystem("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := LoadSystem("MS2", "x.ft"); err == nil {
		t.Error("both sources accepted")
	}
	sys, err := LoadSystem("MS2", "")
	if err != nil || sys.Name != "MS2" {
		t.Errorf("MS2: %v, %v", sys, err)
	}
	// Generalized names beyond Table 1.
	sys, err = LoadSystem("MS3", "")
	if err != nil || len(sys.Components) != 24 {
		t.Errorf("MS3: %v, %v", sys, err)
	}
	sys, err = LoadSystem("ESEN16x2", "")
	if err != nil || sys.Name != "ESEN16x2" {
		t.Errorf("ESEN16x2: %v", err)
	}
	if _, err := LoadSystem("ESEN16", ""); err == nil {
		t.Error("malformed ESEN name accepted")
	}
	if _, err := LoadSystem("FOO9", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := LoadSystem("", "/nonexistent.ft"); err == nil {
		t.Error("missing file accepted")
	}

	path := filepath.Join(t.TempDir(), "tmr.ft")
	src := "system tmr\ncomponent m1 0.2\ncomponent m2 0.15\ncomponent m3 0.15\nfails = atleast(2, m1, m2, m3)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err = LoadSystem("", path)
	if err != nil || sys.Name != "tmr" || len(sys.Components) != 3 {
		t.Errorf("ftdsl file: %v, %v", sys, err)
	}
}

func TestParseFloats(t *testing.T) {
	ts, err := ParseFloats("0, 1.5,3e2")
	if err != nil || len(ts) != 3 || ts[1] != 1.5 || ts[2] != 300 {
		t.Errorf("ParseFloats: %v, %v", ts, err)
	}
	if _, err := ParseFloats("1,x"); err == nil {
		t.Error("bad value accepted")
	}
}
