// Package benchmarks generates the two scalable systems-on-chip the
// paper evaluates the method on (Section 3): the master–slave SoC MSn
// of Figure 4 and the ESENnxm SoC of Figure 5, built around a
// fault-tolerant multistage interconnection network.
//
// The component inventories match Table 1 of the paper exactly (C =
// 6+6n for MSn; C = nm + n(log2 n + 3)/1... see the arithmetic in the
// functions below, matching all eleven rows). The authors' exact
// gate-level netlists are not published, so the structure functions are
// documented reconstructions; gate counts are reported alongside the
// paper's in EXPERIMENTS.md.
package benchmarks

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"socyield/internal/logic"
	"socyield/internal/yield"
)

// MSConfig sets the relative defect-lethality weights of the MSn
// component classes and the total lethality probability P_L. The
// paper fixes P_L = 0.5 and the ratios P_IPS/P_IPM and P_C/P_IPM to
// constants lost in the archival copy; the defaults below are the
// documented reproduction choices.
type MSConfig struct {
	WeightIPM float64 // relative P_i of a master IP
	WeightIPS float64 // relative P_i of a slave IP
	WeightCM  float64 // relative P_i of a communication module (CM or CS)
	PL        float64 // Σ P_i
}

// DefaultMSConfig returns the reproduction defaults, calibrated
// against the paper's Table 4 yields (internal/tools/calib2): with the
// clustering parameter α = 3.4 these ratios reproduce the published
// MS2 (both λ′) and MS6 yields to four decimal places.
func DefaultMSConfig() MSConfig {
	return MSConfig{WeightIPM: 1, WeightIPS: 0.445, WeightCM: 0.099, PL: 0.5}
}

// MS builds the master–slave SoC with n slave clusters under the
// default configuration: 2 master IPs with two communication modules
// each (one per bus), and per cluster 2 slave IPs with two
// communication modules each. Buses are defect-free. The system is
// operational iff some unfailed master can communicate directly (bus
// plus the two communication modules on it) with at least one unfailed
// slave of every cluster.
func MS(n int) (*yield.System, error) { return MSWithConfig(n, DefaultMSConfig()) }

// MSWithConfig is MS with explicit weights.
func MSWithConfig(n int, cfg MSConfig) (*yield.System, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchmarks: MS needs n ≥ 1 clusters, got %d", n)
	}
	if cfg.WeightIPM <= 0 || cfg.WeightIPS <= 0 || cfg.WeightCM <= 0 {
		return nil, fmt.Errorf("benchmarks: MS weights must be positive: %+v", cfg)
	}
	if !(cfg.PL > 0 && cfg.PL <= 1) {
		return nil, fmt.Errorf("benchmarks: P_L = %v outside (0,1]", cfg.PL)
	}
	f := logic.New()
	var comps []yield.Component
	var weights []float64
	declare := func(name string, w float64) logic.GateID {
		id := f.Input(name)
		comps = append(comps, yield.Component{Name: name})
		weights = append(weights, w)
		return id
	}
	buses := []string{"A", "B"}
	// Masters and their communication modules.
	ipm := make([]logic.GateID, 2)
	cm := make([][]logic.GateID, 2) // [master][bus]
	for mi := 0; mi < 2; mi++ {
		ipm[mi] = declare(fmt.Sprintf("IPM_%d", mi+1), cfg.WeightIPM)
		cm[mi] = make([]logic.GateID, 2)
	}
	for mi := 0; mi < 2; mi++ {
		for bi, b := range buses {
			cm[mi][bi] = declare(fmt.Sprintf("CM_%d_%s", mi+1, b), cfg.WeightCM)
		}
	}
	// Clusters: slaves and their communication modules.
	ips := make([][]logic.GateID, n)  // [cluster][slave]
	cs := make([][][]logic.GateID, n) // [cluster][slave][bus]
	for j := 0; j < n; j++ {
		ips[j] = make([]logic.GateID, 2)
		cs[j] = make([][]logic.GateID, 2)
		for k := 0; k < 2; k++ {
			ips[j][k] = declare(fmt.Sprintf("IPS_%d_%d", j+1, k+1), cfg.WeightIPS)
		}
		for k := 0; k < 2; k++ {
			cs[j][k] = make([]logic.GateID, 2)
			for bi, b := range buses {
				cs[j][k][bi] = declare(fmt.Sprintf("CS_%d_%d_%s", j+1, k+1, b), cfg.WeightCM)
			}
		}
	}
	// Structure function.
	masters := make([]logic.GateID, 2)
	for mi := 0; mi < 2; mi++ {
		clusters := make([]logic.GateID, 0, n+1)
		clusters = append(clusters, f.Not(ipm[mi]))
		for j := 0; j < n; j++ {
			terms := make([]logic.GateID, 0, 4)
			for k := 0; k < 2; k++ {
				for bi := range buses {
					terms = append(terms, f.And(
						f.Not(cm[mi][bi]),
						f.Not(cs[j][k][bi]),
						f.Not(ips[j][k]),
					))
				}
			}
			clusters = append(clusters, f.Or(terms...))
		}
		masters[mi] = f.And(clusters...)
	}
	f.SetOutput(f.Not(f.Or(masters...)))
	normalize(comps, weights, cfg.PL)
	return &yield.System{
		Name:       fmt.Sprintf("MS%d", n),
		Components: comps,
		FaultTree:  f,
	}, nil
}

// ESENConfig sets the relative weights of the ESENnxm component
// classes and P_L; defaults documented in DESIGN.md.
type ESENConfig struct {
	WeightIPA float64
	WeightIPB float64
	WeightSE  float64
	WeightC   float64 // concentrator
	PL        float64
}

// DefaultESENConfig returns the reproduction defaults, calibrated
// against the paper's six ESEN4x* yields at the calibrated clustering
// α = 3.4 (internal/tools/calib3) and validated out-of-sample on the
// ESEN8x* instances.
func DefaultESENConfig() ESENConfig {
	return ESENConfig{WeightIPA: 1, WeightIPB: 1.56, WeightSE: 0.075, WeightC: 0.04, PL: 0.5}
}

// ESEN builds the ESENnxm SoC under the default configuration:
// n·m/2 IPA cores and n·m/2 IPB cores around an enhanced
// shuffle-exchange network (SEN+: log2(n)+1 stages of n/2 2×2 switching
// elements, two disjoint-in-the-middle paths per input/output pair) in
// which every first- and last-stage switch has a redundant copy, and —
// when m > 1 — n input concentrators and n output concentrators each
// hosting m/2 IPs. Links are defect-free. The system is operational
// iff the network provides full access (every input port reaches every
// output port through its port concentrators, when present, and
// unfailed switches via at least one SEN+ path — the Rai–Oh notion)
// and at least nm/2 − 1 IPA cores and nm/2 − 1 IPB cores are unfailed.
// This formulation reproduces the paper's ESEN ROMDDs digit for digit
// on every instance.
func ESEN(n, m int) (*yield.System, error) { return ESENWithConfig(n, m, DefaultESENConfig()) }

// ESENWithConfig is ESEN with explicit weights.
func ESENWithConfig(n, m int, cfg ESENConfig) (*yield.System, error) {
	if n < 4 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("benchmarks: ESEN needs n a power of two ≥ 4, got %d", n)
	}
	if m != 1 && (m < 2 || m%2 != 0) {
		return nil, fmt.Errorf("benchmarks: ESEN needs m = 1 or an even m ≥ 2, got %d", m)
	}
	if cfg.WeightIPA <= 0 || cfg.WeightIPB <= 0 || cfg.WeightSE <= 0 || cfg.WeightC <= 0 {
		return nil, fmt.Errorf("benchmarks: ESEN weights must be positive: %+v", cfg)
	}
	if !(cfg.PL > 0 && cfg.PL <= 1) {
		return nil, fmt.Errorf("benchmarks: P_L = %v outside (0,1]", cfg.PL)
	}
	k := bits.TrailingZeros(uint(n)) // log2 n
	stages := k + 1
	nIP := n * m / 2

	f := logic.New()
	var comps []yield.Component
	var weights []float64
	declare := func(name string, w float64) logic.GateID {
		id := f.Input(name)
		comps = append(comps, yield.Component{Name: name})
		weights = append(weights, w)
		return id
	}

	ipa := make([]logic.GateID, nIP)
	for a := range ipa {
		ipa[a] = declare(fmt.Sprintf("IPA_%d", a), cfg.WeightIPA)
	}
	ipb := make([]logic.GateID, nIP)
	for b := range ipb {
		ipb[b] = declare(fmt.Sprintf("IPB_%d", b), cfg.WeightIPB)
	}
	// Switching elements; first and last stages have redundant copies.
	se := make([][]logic.GateID, stages)
	seR := make([][]logic.GateID, stages)
	for s := 0; s < stages; s++ {
		se[s] = make([]logic.GateID, n/2)
		for j := 0; j < n/2; j++ {
			se[s][j] = declare(fmt.Sprintf("SE_%d_%d", s, j), cfg.WeightSE)
		}
		if s == 0 || s == stages-1 {
			seR[s] = make([]logic.GateID, n/2)
			for j := 0; j < n/2; j++ {
				seR[s][j] = declare(fmt.Sprintf("SE_%d_%d_r", s, j), cfg.WeightSE)
			}
		}
	}
	var cin, cout []logic.GateID
	if m > 1 {
		cin = make([]logic.GateID, n)
		for p := range cin {
			cin[p] = declare(fmt.Sprintf("CIN_%d", p), cfg.WeightC)
		}
		cout = make([]logic.GateID, n)
		for q := range cout {
			cout[q] = declare(fmt.Sprintf("COUT_%d", q), cfg.WeightC)
		}
	}

	// seOK(s,j): the switch pair works (redundant in first/last stage).
	seOK := func(s, j int) logic.GateID {
		if seR[s] != nil {
			return f.Or(f.Not(se[s][j]), f.Not(seR[s][j]))
		}
		return f.Not(se[s][j])
	}

	// Full access: every input port reaches every output port through
	// at least one of its SEN+ paths.
	pairTerms := make([]logic.GateID, 0, n*n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			paths := enumeratePaths(n, k, p, q)
			alts := make([]logic.GateID, 0, len(paths))
			for _, path := range paths {
				seGates := make([]logic.GateID, 0, stages+2)
				if m > 1 {
					seGates = append(seGates, f.Not(cin[p]))
				}
				for s, j := range path {
					seGates = append(seGates, seOK(s, j))
				}
				if m > 1 {
					seGates = append(seGates, f.Not(cout[q]))
				}
				alts = append(alts, f.And(seGates...))
			}
			pairTerms = append(pairTerms, f.Or(alts...))
		}
	}
	fullAccess := f.And(pairTerms...)

	// Liveness of the IP cores.
	aliveA := make([]logic.GateID, nIP)
	for a := range aliveA {
		aliveA[a] = f.Not(ipa[a])
	}
	aliveB := make([]logic.GateID, nIP)
	for b := range aliveB {
		aliveB[b] = f.Not(ipb[b])
	}
	operational := f.And(
		fullAccess,
		f.AtLeast(nIP-1, aliveA...),
		f.AtLeast(nIP-1, aliveB...),
	)
	f.SetOutput(f.Not(operational))
	normalize(comps, weights, cfg.PL)
	return &yield.System{
		Name:       fmt.Sprintf("ESEN%dx%d", n, m),
		Components: comps,
		FaultTree:  f,
	}, nil
}

// enumeratePaths lists the SE sequences (one SE index per stage) of
// every path from input port p to output port q of the SEN+ network:
// input p enters stage 0 at line p; each 2×2 switch can route either
// input line to either of its output lines; a perfect shuffle permutes
// lines between consecutive stages; the line after the last stage is
// the output port.
func enumeratePaths(n, k, p, q int) [][]int {
	shuffle := func(l int) int { return ((l << 1) | (l >> (k - 1))) & (n - 1) }
	stages := k + 1
	var paths [][]int
	var walk func(stage, line int, acc []int)
	walk = func(stage, line int, acc []int) {
		if stage == stages {
			if line == q {
				paths = append(paths, append([]int(nil), acc...))
			}
			return
		}
		j := line >> 1
		for _, out := range []int{2 * j, 2*j + 1} {
			next := out
			if stage < stages-1 {
				next = shuffle(out)
			}
			walk(stage+1, next, append(acc, j))
		}
	}
	walk(0, p, make([]int, 0, stages))
	return paths
}

// normalize scales the collected weights so that Σ P_i = pl and writes
// them into the component slice.
func normalize(comps []yield.Component, weights []float64, pl float64) {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i := range comps {
		comps[i].P = pl * weights[i] / total
	}
}

// Entry names one paper benchmark and its generator.
type Entry struct {
	Name  string
	Build func() (*yield.System, error)
}

// ByName builds the benchmark with the given name. The eleven Table 1
// names are recognized first; beyond them, generalized "MS<n>" and
// "ESEN<n>x<m>" names instantiate the generators at any size, so the
// CLIs and the evaluation server accept the whole family.
func ByName(name string) (*yield.System, error) {
	for _, e := range PaperBenchmarks() {
		if e.Name == name {
			return e.Build()
		}
	}
	if rest, ok := strings.CutPrefix(name, "MS"); ok {
		if n, err := strconv.Atoi(rest); err == nil {
			return MS(n)
		}
	}
	if rest, ok := strings.CutPrefix(name, "ESEN"); ok {
		if ns, ms, found := strings.Cut(rest, "x"); found {
			n, err1 := strconv.Atoi(ns)
			m, err2 := strconv.Atoi(ms)
			if err1 == nil && err2 == nil {
				return ESEN(n, m)
			}
		}
	}
	return nil, fmt.Errorf("benchmarks: unknown benchmark %q (want MS<n> or ESEN<n>x<m>)", name)
}

// PaperBenchmarks returns the eleven benchmark systems of Table 1, in
// the paper's order.
func PaperBenchmarks() []Entry {
	ms := func(n int) func() (*yield.System, error) {
		return func() (*yield.System, error) { return MS(n) }
	}
	esen := func(n, m int) func() (*yield.System, error) {
		return func() (*yield.System, error) { return ESEN(n, m) }
	}
	return []Entry{
		{Name: "MS2", Build: ms(2)},
		{Name: "MS4", Build: ms(4)},
		{Name: "MS6", Build: ms(6)},
		{Name: "MS8", Build: ms(8)},
		{Name: "MS10", Build: ms(10)},
		{Name: "ESEN4x1", Build: esen(4, 1)},
		{Name: "ESEN4x2", Build: esen(4, 2)},
		{Name: "ESEN4x4", Build: esen(4, 4)},
		{Name: "ESEN8x1", Build: esen(8, 1)},
		{Name: "ESEN8x2", Build: esen(8, 2)},
		{Name: "ESEN8x4", Build: esen(8, 4)},
	}
}

// PaperComponentCounts is Table 1's C column, used to pin the
// reconstruction to the paper.
var PaperComponentCounts = map[string]int{
	"MS2": 18, "MS4": 30, "MS6": 42, "MS8": 54, "MS10": 66,
	"ESEN4x1": 14, "ESEN4x2": 26, "ESEN4x4": 34,
	"ESEN8x1": 32, "ESEN8x2": 56, "ESEN8x4": 72,
}

// PaperGateCounts is Table 1's gate column (the authors' netlists).
var PaperGateCounts = map[string]int{
	"MS2": 27, "MS4": 51, "MS6": 75, "MS8": 99, "MS10": 123,
	"ESEN4x1": 13, "ESEN4x2": 26, "ESEN4x4": 74,
	"ESEN8x1": 73, "ESEN8x2": 122, "ESEN8x4": 314,
}
