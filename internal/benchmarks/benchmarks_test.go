package benchmarks

import (
	"strings"
	"testing"

	"socyield/internal/logic"
	"socyield/internal/yield"
)

func TestPaperComponentCounts(t *testing.T) {
	for _, e := range PaperBenchmarks() {
		sys, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		want := PaperComponentCounts[e.Name]
		if got := len(sys.Components); got != want {
			t.Errorf("%s: C = %d, want %d (Table 1)", e.Name, got, want)
		}
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: invalid system: %v", e.Name, err)
		}
		if pl := sys.PL(); pl < 0.5-1e-12 || pl > 0.5+1e-12 {
			t.Errorf("%s: P_L = %v, want 0.5", e.Name, pl)
		}
		if sys.Name != e.Name {
			t.Errorf("system name %q, want %q", sys.Name, e.Name)
		}
	}
}

func TestMSWeightRatios(t *testing.T) {
	sys, err := MS(2)
	if err != nil {
		t.Fatalf("MS: %v", err)
	}
	byPrefix := func(prefix string) float64 {
		for _, c := range sys.Components {
			if strings.HasPrefix(c.Name, prefix) {
				return c.P
			}
		}
		t.Fatalf("no component with prefix %s", prefix)
		return 0
	}
	pIPM, pIPS, pCM, pCS := byPrefix("IPM"), byPrefix("IPS"), byPrefix("CM"), byPrefix("CS")
	if r := pIPS / pIPM; r < 0.444 || r > 0.446 {
		t.Errorf("P_IPS/P_IPM = %v, want 0.445", r)
	}
	if r := pCM / pIPM; r < 0.0985 || r > 0.0995 {
		t.Errorf("P_C/P_IPM = %v, want 0.099", r)
	}
	if pCM != pCS {
		t.Errorf("CM and CS weights differ: %v vs %v", pCM, pCS)
	}
}

// failSet evaluates a fault tree with the named components failed.
// It returns true iff the system is NOT functioning.
func failSet(t *testing.T, sys *yield.System, failed ...string) bool {
	t.Helper()
	assign := make(map[string]bool, len(failed))
	for _, name := range failed {
		if _, ok := sys.FaultTree.InputByName(name); !ok {
			t.Fatalf("unknown component %q", name)
		}
		assign[name] = true
	}
	v, err := sys.FaultTree.EvalNamed(assign)
	if err != nil {
		t.Fatalf("EvalNamed: %v", err)
	}
	return v
}

func TestMSStructureFunction(t *testing.T) {
	sys, err := MS(2)
	if err != nil {
		t.Fatalf("MS: %v", err)
	}
	if failSet(t, sys) {
		t.Error("defect-free MS2 not functioning")
	}
	if !failSet(t, sys, "IPM_1", "IPM_2") {
		t.Error("both masters failed: system must be down")
	}
	if failSet(t, sys, "IPM_1") {
		t.Error("one master failed: second master must carry the system")
	}
	if failSet(t, sys, "IPM_1", "CM_2_A") {
		t.Error("master 2 can still reach every cluster over bus B")
	}
	if !failSet(t, sys, "IPM_1", "CM_2_A", "CM_2_B") {
		t.Error("surviving master lost both buses: system must be down")
	}
	if !failSet(t, sys, "IPS_1_1", "IPS_1_2") {
		t.Error("both slaves of cluster 1 failed: system must be down")
	}
	if failSet(t, sys, "IPS_1_1", "IPS_2_2") {
		t.Error("one slave per cluster failed: each cluster still has one")
	}
	// A slave is unreachable when both of its communication modules
	// fail; with the other slave's modules also gone the cluster is
	// isolated.
	if !failSet(t, sys, "CS_1_1_A", "CS_1_1_B", "CS_1_2_A", "CS_1_2_B") {
		t.Error("cluster 1 fully disconnected: system must be down")
	}
	if failSet(t, sys, "CS_1_1_A", "CS_1_1_B") {
		t.Error("slave 1_2 still reachable: system must be up")
	}
	// Communication must be direct: master 1 on bus A only and slave
	// reachable on bus B only cannot talk — with master 2 fully dead.
	if !failSet(t, sys, "IPM_2", "CM_1_B", "CS_1_1_A", "CS_1_2_A") {
		t.Error("bus mismatch between master modules and slave modules must break cluster 1")
	}
}

func TestMSValidation(t *testing.T) {
	if _, err := MS(0); err == nil {
		t.Error("MS(0) accepted")
	}
	bad := DefaultMSConfig()
	bad.WeightIPM = 0
	if _, err := MSWithConfig(2, bad); err == nil {
		t.Error("zero weight accepted")
	}
	bad = DefaultMSConfig()
	bad.PL = 1.5
	if _, err := MSWithConfig(2, bad); err == nil {
		t.Error("P_L > 1 accepted")
	}
}

func TestEnumeratePaths(t *testing.T) {
	for _, n := range []int{4, 8} {
		k := 0
		for 1<<k < n {
			k++
		}
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				paths := enumeratePaths(n, k, p, q)
				if len(paths) != 2 {
					t.Fatalf("n=%d p=%d q=%d: %d paths, want 2", n, p, q, len(paths))
				}
				for _, path := range paths {
					if len(path) != k+1 {
						t.Fatalf("n=%d p=%d q=%d: path length %d, want %d", n, p, q, len(path), k+1)
					}
					if path[0] != p>>1 {
						t.Errorf("first SE %d, want %d", path[0], p>>1)
					}
					if path[len(path)-1] != q>>1 {
						t.Errorf("last SE %d, want %d", path[len(path)-1], q>>1)
					}
				}
				// The two paths must share first and last switches and
				// differ somewhere in between (SEN+ redundancy).
				same := true
				for s := range paths[0] {
					if paths[0][s] != paths[1][s] {
						same = false
					}
				}
				if same {
					t.Errorf("n=%d p=%d q=%d: duplicate paths", n, p, q)
				}
			}
		}
	}
}

func TestESENStructureFunction(t *testing.T) {
	sys, err := ESEN(4, 2) // 4 IPAs, 4 IPBs, threshold 3, concentrators
	if err != nil {
		t.Fatalf("ESEN: %v", err)
	}
	if failSet(t, sys) {
		t.Error("defect-free ESEN4x2 not functioning")
	}
	if failSet(t, sys, "IPA_0") {
		t.Error("one IPA failed (threshold 3 of 4): system must be up")
	}
	if !failSet(t, sys, "IPA_0", "IPA_1") {
		t.Error("two IPAs failed: below threshold, system must be down")
	}
	if failSet(t, sys, "IPA_0", "IPB_0") {
		t.Error("one IPA and one IPB failed: both thresholds still met")
	}
	// A failed concentrator severs its network port, breaking full
	// access (this is the formulation that reproduces the paper's
	// ESEN4x2 ROMDD exactly; for m = 4 it coincides with counting the
	// concentrator's IPs as dead, since losing m/2 = 2 IPs already
	// exceeds the one-failure tolerance).
	if !failSet(t, sys, "CIN_0") {
		t.Error("failed concentrator severs its port: full access lost, system down")
	}
	// First-stage switches are redundant: one copy may fail.
	if failSet(t, sys, "SE_0_0") {
		t.Error("primary first-stage switch failed: redundant copy must cover")
	}
	if !failSet(t, sys, "SE_0_0", "SE_0_0_r") {
		t.Error("both copies of a first-stage switch failed: full access lost")
	}
	// A single middle-stage switch failure is tolerated by the second
	// path; two middle switches of the same stage break full access.
	if failSet(t, sys, "SE_1_0") {
		t.Error("one middle switch failed: SEN+ second path must cover")
	}
	if !failSet(t, sys, "SE_1_0", "SE_1_1") {
		t.Error("whole middle stage dead: full access lost")
	}
}

func TestESENm1HasNoConcentrators(t *testing.T) {
	sys, err := ESEN(4, 1)
	if err != nil {
		t.Fatalf("ESEN: %v", err)
	}
	for _, c := range sys.Components {
		if strings.HasPrefix(c.Name, "CIN") || strings.HasPrefix(c.Name, "COUT") {
			t.Errorf("m=1 system has concentrator %s", c.Name)
		}
	}
	// 2 IPAs, threshold 1: one may fail.
	if failSet(t, sys, "IPA_0") {
		t.Error("one of two IPAs failed: threshold 1 met, system up")
	}
	if !failSet(t, sys, "IPA_0", "IPA_1") {
		t.Error("all IPAs failed: system down")
	}
}

func TestESENValidation(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{3, 1}, {2, 1}, {6, 1}, {4, 3}, {4, 0}, {4, -2}} {
		if _, err := ESEN(tc.n, tc.m); err == nil {
			t.Errorf("ESEN(%d,%d) accepted", tc.n, tc.m)
		}
	}
	bad := DefaultESENConfig()
	bad.WeightSE = -1
	if _, err := ESENWithConfig(4, 1, bad); err == nil {
		t.Error("negative weight accepted")
	}
	bad = DefaultESENConfig()
	bad.PL = 0
	if _, err := ESENWithConfig(4, 1, bad); err == nil {
		t.Error("P_L = 0 accepted")
	}
}

func TestGateCountsStable(t *testing.T) {
	// Pin our reconstructed netlist sizes so accidental generator
	// changes are caught; the paper's own counts (different netlists)
	// are in PaperGateCounts and compared in EXPERIMENTS.md.
	for _, e := range PaperBenchmarks() {
		sys, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		gates := sys.FaultTree.NumGates()
		if gates <= 0 {
			t.Errorf("%s: no gates", e.Name)
		}
		paper := PaperGateCounts[e.Name]
		if gates > 20*paper {
			t.Errorf("%s: %d gates, paper had %d — reconstruction exploded", e.Name, gates, paper)
		}
	}
}

func TestMSGrowsLinearly(t *testing.T) {
	g4, _ := MS(4)
	g8, _ := MS(8)
	c4, c8 := len(g4.Components), len(g8.Components)
	if c8-c4 != 24 { // 6 components per cluster × 4 clusters
		t.Errorf("component growth %d, want 24", c8-c4)
	}
	n4, n8 := g4.FaultTree.NumGates(), g8.FaultTree.NumGates()
	if n8 <= n4 {
		t.Errorf("gate count did not grow: %d -> %d", n4, n8)
	}
}

func TestMonotonicity(t *testing.T) {
	// Structure functions must be monotone: failing more components
	// can never repair the system. Spot-check with nested failure sets.
	sys, err := ESEN(4, 2)
	if err != nil {
		t.Fatalf("ESEN: %v", err)
	}
	sets := [][]string{
		{},
		{"SE_1_0"},
		{"SE_1_0", "IPA_0"},
		{"SE_1_0", "IPA_0", "IPB_3"},
		{"SE_1_0", "IPA_0", "IPB_3", "CIN_2"},
		{"SE_1_0", "IPA_0", "IPB_3", "CIN_2", "SE_1_1"},
	}
	prev := false
	for _, s := range sets {
		cur := failSet(t, sys, s...)
		if prev && !cur {
			t.Fatalf("monotonicity violated at failure set %v", s)
		}
		prev = cur
	}
}

func logicGateKinds(n *logic.Netlist) map[logic.Kind]int {
	s, _ := n.ComputeStats()
	return s.ByKind
}

func TestBenchmarkFaultTreesUseBasicGates(t *testing.T) {
	// The paper's netlists are AND/OR/NOT; ours must be too (no XORs).
	for _, e := range PaperBenchmarks() {
		sys, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		kinds := logicGateKinds(sys.FaultTree)
		for _, bad := range []logic.Kind{logic.XorKind, logic.XnorKind, logic.NandKind, logic.NorKind} {
			if kinds[bad] > 0 {
				t.Errorf("%s: uses %v gates", e.Name, bad)
			}
		}
	}
}
