package convert

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/order"
)

// pipeline assembles the full mini-pipeline used by the yield method:
// fault tree F → G netlist → ordering plan → coded ROBDD → Spec.
type pipeline struct {
	g    *encode.GFunc
	bm   *bdd.Manager
	root bdd.Node
	spec Spec
	plan *order.Plan
}

func buildPipeline(t *testing.T, f *logic.Netlist, m int, mv order.MVKind, bits order.BitKind) *pipeline {
	t.Helper()
	g, err := encode.BuildG(f, m)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	plan, err := order.Assemble(g.Netlist, g.Groups, mv, bits)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bm := bdd.New(g.Netlist.NumInputs())
	root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	groupOf := make([]int, g.Netlist.NumInputs())
	bitOf := make([]uint, g.Netlist.NumInputs())
	for gi, grp := range g.Groups {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits {
			groupOf[ord] = gi
			bitOf[ord] = uint(nb - 1 - j)
		}
	}
	spec, err := SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
	if err != nil {
		t.Fatalf("SpecFromPlanLevels: %v", err)
	}
	return &pipeline{g: g, bm: bm, root: root, spec: spec, plan: plan}
}

func fig2FaultTree() *logic.Netlist {
	f := logic.New()
	x1, x2, x3 := f.Input("x1"), f.Input("x2"), f.Input("x3")
	f.SetOutput(f.Or(f.And(x1, x2), x3))
	return f
}

// forAllMVNatural enumerates (w, v_1..v_M) in natural order.
func forAllMVNatural(c, m int, fn func(mv []int)) {
	mv := make([]int, m+1)
	var rec func(l int)
	rec = func(l int) {
		if l == m+1 {
			fn(mv)
			return
		}
		limit := c
		if l == 0 {
			limit = m + 2
		}
		for val := 0; val < limit; val++ {
			mv[l] = val
			rec(l + 1)
		}
	}
	rec(0)
}

// mvToMDDAssign reorders a natural-order MV assignment into MV-level
// order per the plan.
func mvToMDDAssign(plan *order.Plan, mv []int) []int {
	out := make([]int, len(mv))
	for mvLevel, gi := range plan.GroupSeq {
		out[mvLevel] = mv[gi]
	}
	return out
}

func TestToMDDMatchesNetlistAllOrderings(t *testing.T) {
	f := fig2FaultTree()
	for _, mv := range []order.MVKind{order.MVWV, order.MVWVR, order.MVVW, order.MVVRW, order.MVWeight} {
		for _, bits := range []order.BitKind{order.BitML, order.BitLM} {
			t.Run(fmt.Sprintf("%v-%v", mv, bits), func(t *testing.T) {
				p := buildPipeline(t, f, 2, mv, bits)
				domains := make([]int, len(p.spec.Domains))
				copy(domains, p.spec.Domains)
				mm := mdd.MustNew(domains)
				root, err := ToMDD(p.bm, p.root, mm, p.spec)
				if err != nil {
					t.Fatalf("ToMDD: %v", err)
				}
				forAllMVNatural(3, 2, func(mvAssign []int) {
					bin, err := p.g.DecodeAssignment(mvAssign)
					if err != nil {
						t.Fatalf("DecodeAssignment: %v", err)
					}
					want, err := p.g.Netlist.Eval(bin)
					if err != nil {
						t.Fatalf("netlist eval: %v", err)
					}
					got, err := mm.Eval(root, mvToMDDAssign(p.plan, mvAssign))
					if err != nil {
						t.Fatalf("mdd eval: %v", err)
					}
					if got != want {
						t.Fatalf("MV %v: MDD %v, netlist %v", mvAssign, got, want)
					}
				})
			})
		}
	}
}

func TestProbTriangle(t *testing.T) {
	// The three evaluators must agree: enumeration over the G netlist,
	// direct walk of the coded ROBDD, and mdd.Prob on the converted
	// ROMDD.
	f := fig2FaultTree()
	p := buildPipeline(t, f, 2, order.MVWeight, order.BitML)
	// W: Q'_0..Q'_2 and tail; V: component distribution.
	probsNatural := [][]float64{
		{0.5, 0.3, 0.15, 0.05},
		{0.2, 0.3, 0.5},
		{0.2, 0.3, 0.5},
	}
	// Reorder rows into MV-level order.
	probs := make([][]float64, len(probsNatural))
	for mvLevel, gi := range p.plan.GroupSeq {
		probs[mvLevel] = probsNatural[gi]
	}
	// Reference: exhaustive expectation.
	want := 0.0
	forAllMVNatural(3, 2, func(mv []int) {
		bin, _ := p.g.DecodeAssignment(mv)
		v, _ := p.g.Netlist.Eval(bin)
		if v {
			prob := 1.0
			for gi, val := range mv {
				prob *= probsNatural[gi][val]
			}
			want += prob
		}
	})
	got, err := Prob(p.bm, p.root, p.spec, probs)
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("coded-ROBDD Prob = %v, want %v", got, want)
	}
	mm := mdd.MustNew(p.spec.Domains)
	root, err := ToMDD(p.bm, p.root, mm, p.spec)
	if err != nil {
		t.Fatalf("ToMDD: %v", err)
	}
	got2, err := mm.Prob(root, probs)
	if err != nil {
		t.Fatalf("mdd.Prob: %v", err)
	}
	if math.Abs(got2-want) > 1e-14 {
		t.Errorf("ROMDD Prob = %v, want %v", got2, want)
	}
}

func TestToMDDPrunesUnusedCodewords(t *testing.T) {
	// C = 3 uses 2 bits per v with codeword 3 unused: conversion must
	// produce a well-formed ROMDD (domain 3) regardless, with every
	// node's kids within domain — guaranteed by construction; check
	// that evaluation never needs the phantom value and that the size
	// is sane.
	f := fig2FaultTree()
	p := buildPipeline(t, f, 2, order.MVWV, order.BitML)
	mm := mdd.MustNew(p.spec.Domains)
	root, err := ToMDD(p.bm, p.root, mm, p.spec)
	if err != nil {
		t.Fatalf("ToMDD: %v", err)
	}
	if sz := mm.Size(root); sz < 4 || sz > 40 {
		t.Errorf("Fig2-style ROMDD size = %d, outside sane bounds", sz)
	}
	st := mm.ComputeStats(root)
	for lv, cnt := range st.PerLevel {
		if cnt < 0 {
			t.Errorf("level %d count %d", lv, cnt)
		}
	}
}

func TestToMDDSmallerThanCodedROBDD(t *testing.T) {
	// The paper's headline structural observation: the coded ROBDD is
	// substantially larger than the ROMDD.
	f := logic.New()
	xs := make([]logic.GateID, 6)
	for i := range xs {
		xs[i] = f.Input(fmt.Sprintf("x%d", i+1))
	}
	f.SetOutput(f.AtLeast(2, xs...))
	for _, m := range []int{2, 3} {
		g, err := encode.BuildG(f, m)
		if err != nil {
			t.Fatalf("BuildG: %v", err)
		}
		plan, err := order.Assemble(g.Netlist, g.Groups, order.MVWeight, order.BitML)
		if err != nil {
			t.Fatalf("Assemble: %v", err)
		}
		bm := bdd.New(g.Netlist.NumInputs())
		root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		groupOf := make([]int, g.Netlist.NumInputs())
		bitOf := make([]uint, g.Netlist.NumInputs())
		for gi, grp := range g.Groups {
			nb := len(grp.Bits)
			for j, ord := range grp.Bits {
				groupOf[ord] = gi
				bitOf[ord] = uint(nb - 1 - j)
			}
		}
		spec, err := SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
		if err != nil {
			t.Fatalf("spec: %v", err)
		}
		mm := mdd.MustNew(spec.Domains)
		mroot, err := ToMDD(bm, root, mm, spec)
		if err != nil {
			t.Fatalf("ToMDD: %v", err)
		}
		if bs, ms := bm.Size(root), mm.Size(mroot); ms >= bs {
			t.Errorf("M=%d: ROMDD size %d not smaller than coded ROBDD size %d", m, ms, bs)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := Spec{
		LevelGroup: []int{0, 0, 1, 1},
		LevelBit:   []uint{1, 0, 1, 0},
		Domains:    []int{4, 3},
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Spec
	}{
		{"mismatched lengths", Spec{LevelGroup: []int{0}, LevelBit: nil, Domains: []int{2}}},
		{"no domains", Spec{LevelGroup: []int{}, LevelBit: []uint{}, Domains: nil}},
		{"group out of range", Spec{LevelGroup: []int{0, 5}, LevelBit: []uint{0, 0}, Domains: []int{2, 2}}},
		{"decreasing groups", Spec{LevelGroup: []int{1, 0}, LevelBit: []uint{0, 0}, Domains: []int{2, 2}}},
		{"skipped group", Spec{LevelGroup: []int{0, 2}, LevelBit: []uint{0, 0}, Domains: []int{2, 2, 2}}},
		{"first not zero", Spec{LevelGroup: []int{1, 1}, LevelBit: []uint{0, 0}, Domains: []int{2, 2}}},
		{"uncovered tail group", Spec{LevelGroup: []int{0, 0}, LevelBit: []uint{1, 0}, Domains: []int{4, 2}}},
		{"domain too small", Spec{LevelGroup: []int{0}, LevelBit: []uint{0}, Domains: []int{1}}},
		{"domain exceeds bits", Spec{LevelGroup: []int{0}, LevelBit: []uint{0}, Domains: []int{3}}},
		{"split group", Spec{LevelGroup: []int{0, 1, 0}, LevelBit: []uint{0, 0, 1}, Domains: []int{4, 2}}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestToMDDManagerMismatch(t *testing.T) {
	f := fig2FaultTree()
	p := buildPipeline(t, f, 1, order.MVWV, order.BitML)
	wrong := mdd.MustNew([]int{2, 2}) // wrong domain count/sizes
	if _, err := ToMDD(p.bm, p.root, wrong, p.spec); err == nil {
		t.Error("domain mismatch accepted")
	}
	short := Spec{LevelGroup: []int{0}, LevelBit: []uint{0}, Domains: []int{2}}
	mm := mdd.MustNew([]int{2})
	if _, err := ToMDD(p.bm, p.root, mm, short); err == nil {
		t.Error("spec/manager level-count mismatch accepted")
	}
}

func TestProbValidation(t *testing.T) {
	f := fig2FaultTree()
	p := buildPipeline(t, f, 1, order.MVWV, order.BitML)
	if _, err := Prob(p.bm, p.root, p.spec, [][]float64{{1}}); err == nil {
		t.Error("short prob table accepted")
	}
	bad := make([][]float64, len(p.spec.Domains))
	for i, d := range p.spec.Domains {
		bad[i] = make([]float64, d+1)
	}
	if _, err := Prob(p.bm, p.root, p.spec, bad); err == nil {
		t.Error("wrong row width accepted")
	}
}

// randomMonotoneFaultTree returns a random monotone fault tree over c
// components (realistic structure functions are monotone).
func randomMonotoneFaultTree(rng *rand.Rand, c int) *logic.Netlist {
	f := logic.New()
	pool := make([]logic.GateID, 0, 32)
	for i := 0; i < c; i++ {
		pool = append(pool, f.Input(fmt.Sprintf("x%d", i+1)))
	}
	for i := 0; i < 6+rng.Intn(8); i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			pool = append(pool, f.And(a, b))
		} else {
			pool = append(pool, f.Or(a, b))
		}
	}
	f.SetOutput(pool[len(pool)-1])
	return f
}

// Property: for random fault trees, orderings and distributions, the
// ROMDD probability equals both the coded-ROBDD walk and exhaustive
// enumeration.
func TestQuickConversionTriangle(t *testing.T) {
	mvKinds := []order.MVKind{order.MVWV, order.MVWVR, order.MVVW, order.MVVRW, order.MVTopology, order.MVWeight, order.MVH4}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 3 + rng.Intn(3) // 3..5 components
		m := 1 + rng.Intn(2) // M = 1..2
		f := randomMonotoneFaultTree(rng, c)
		mvk := mvKinds[rng.Intn(len(mvKinds))]
		bk := order.BitML
		if rng.Intn(2) == 0 {
			bk = order.BitLM
		}
		g, err := encode.BuildG(f, m)
		if err != nil {
			return false
		}
		plan, err := order.Assemble(g.Netlist, g.Groups, mvk, bk)
		if err != nil {
			return false
		}
		bm := bdd.New(g.Netlist.NumInputs())
		root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
		if err != nil {
			return false
		}
		groupOf := make([]int, g.Netlist.NumInputs())
		bitOf := make([]uint, g.Netlist.NumInputs())
		for gi, grp := range g.Groups {
			nb := len(grp.Bits)
			for j, ord := range grp.Bits {
				groupOf[ord] = gi
				bitOf[ord] = uint(nb - 1 - j)
			}
		}
		spec, err := SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
		if err != nil {
			return false
		}
		// Random distributions (natural order), reordered per plan.
		natural := make([][]float64, len(g.Domains()))
		for gi, d := range g.Domains() {
			row := make([]float64, d)
			sum := 0.0
			for v := range row {
				row[v] = rng.Float64() + 0.05
				sum += row[v]
			}
			for v := range row {
				row[v] /= sum
			}
			natural[gi] = row
		}
		probs := make([][]float64, len(natural))
		for mvLevel, gi := range plan.GroupSeq {
			probs[mvLevel] = natural[gi]
		}
		want := 0.0
		okEnum := true
		forAllMVNatural(c, m, func(mv []int) {
			bin, err := g.DecodeAssignment(mv)
			if err != nil {
				okEnum = false
				return
			}
			v, err := g.Netlist.Eval(bin)
			if err != nil {
				okEnum = false
				return
			}
			if v {
				prob := 1.0
				for gi, val := range mv {
					prob *= natural[gi][val]
				}
				want += prob
			}
		})
		if !okEnum {
			return false
		}
		p1, err := Prob(bm, root, spec, probs)
		if err != nil || math.Abs(p1-want) > 1e-12 {
			return false
		}
		mm := mdd.MustNew(spec.Domains)
		mroot, err := ToMDD(bm, root, mm, spec)
		if err != nil {
			return false
		}
		p2, err := mm.Prob(mroot, probs)
		return err == nil && math.Abs(p2-want) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
