package convert

import (
	"math/rand"
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/order"
)

// TestToMDDParallelMatchesSerial converts the same coded ROBDD with
// the serial recursion and with the layer-parallel converter at
// several worker counts — into the same MDD manager, so equal ROMDD
// structure means equal root handles — and requires identical
// per-layer statistics.
func TestToMDDParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		c := 3 + rng.Intn(4)
		f := randomMonotoneFaultTree(rng, c)
		m := 2 + rng.Intn(3)
		mvKinds := []order.MVKind{order.MVWeight, order.MVWV, order.MVTopology}
		p := buildPipeline(t, f, m, mvKinds[rng.Intn(len(mvKinds))], order.BitML)

		mm, err := mdd.New(p.spec.Domains)
		if err != nil {
			t.Fatal(err)
		}
		var sst Stats
		sroot, err := ToMDDWithStats(p.bm, p.root, mm, p.spec, &sst)
		if err != nil {
			t.Fatalf("serial ToMDD: %v", err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			var pst Stats
			proot, err := ToMDDParallel(p.bm, p.root, mm, p.spec, workers, &pst)
			if err != nil {
				t.Fatalf("ToMDDParallel(workers=%d): %v", workers, err)
			}
			if proot != sroot {
				t.Fatalf("trial %d workers=%d: parallel root %d != serial root %d", trial, workers, proot, sroot)
			}
			if len(pst.EntryNodes) != len(sst.EntryNodes) {
				t.Fatalf("EntryNodes length %d != %d", len(pst.EntryNodes), len(sst.EntryNodes))
			}
			for g := range sst.EntryNodes {
				if pst.EntryNodes[g] != sst.EntryNodes[g] {
					t.Fatalf("trial %d workers=%d: EntryNodes[%d] = %d, serial %d", trial, workers, g, pst.EntryNodes[g], sst.EntryNodes[g])
				}
			}
			if pst.SimSteps != sst.SimSteps {
				t.Fatalf("trial %d workers=%d: SimSteps = %d, serial %d", trial, workers, pst.SimSteps, sst.SimSteps)
			}
		}
	}
}

// TestToMDDParallelFromShared runs the conversion against the
// concurrent engine as Source: compile the same netlist serially and
// in parallel, convert both into one MDD manager, and require the same
// ROMDD root.
func TestToMDDParallelFromShared(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		f := randomMonotoneFaultTree(rng, 3+rng.Intn(3))
		p := buildPipeline(t, f, 3, order.MVWeight, order.BitML)

		s := bdd.NewShared(p.g.Netlist.NumInputs(), 0)
		proot, _, err := compile.NetlistParallel(s, p.g.Netlist, p.plan.BinaryLevels, 4)
		if err != nil {
			t.Fatalf("NetlistParallel: %v", err)
		}
		mm, err := mdd.New(p.spec.Domains)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ToMDD(p.bm, p.root, mm, p.spec)
		if err != nil {
			t.Fatalf("serial ToMDD: %v", err)
		}
		got, err := ToMDDParallel(s, proot, mm, p.spec, 4, nil)
		if err != nil {
			t.Fatalf("ToMDDParallel: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: ROMDD from shared engine %d != serial %d", trial, got, want)
		}
	}
}

// TestToMDDParallelTerminals covers constant roots and validation.
func TestToMDDParallelTerminals(t *testing.T) {
	f := logic.New()
	a := f.Input("a")
	f.SetOutput(f.Or(a, f.Not(a)))
	spec := Spec{LevelGroup: []int{0, 0}, LevelBit: []uint{1, 0}, Domains: []int{3}}
	bm := bdd.New(2)
	mm, err := mdd.New(spec.Domains)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []bdd.Node{bdd.False, bdd.True} {
		got, err := ToMDDParallel(bm, root, mm, spec, 4, &Stats{})
		if err != nil {
			t.Fatalf("terminal root: %v", err)
		}
		want := mdd.Node(mdd.False)
		if root == bdd.True {
			want = mdd.True
		}
		if got != want {
			t.Fatalf("terminal root %d converted to %d, want %d", root, got, want)
		}
	}
	// Mismatched manager must be rejected exactly as in ToMDD.
	bad, err := mdd.New([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToMDDParallel(bm, bdd.False, bad, spec, 4, nil); err == nil {
		t.Fatal("manager/spec mismatch accepted")
	}
}
