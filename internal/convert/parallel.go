// Layer-parallel coded-ROBDD → ROMDD conversion.
//
// The recursion in ToMDD has a natural layer structure: every entry
// node of one MV layer converts independently of the others once the
// layers below it are mapped. ToMDDParallel exploits exactly that —
// fan out over the entry nodes within one layer, barrier between
// layers — in two passes:
//
//  1. Discovery, top-down: starting from the root's layer, simulate
//     every (entry node, domain value) codeword in parallel and record
//     the distinct entry nodes it exposes in deeper layers (an atomic
//     bitset dedupes; targets always lie in strictly deeper layers, so
//     a layer's entry set is complete before the layer is processed).
//  2. Build, bottom-up: for each layer, re-run the same simulations in
//     parallel to fill a flat kids table, then create the layer's ROMDD
//     nodes. Node creation goes through the MDD unique table, which is
//     not concurrency-safe, so that final per-layer loop stays serial —
//     an acceptable Amdahl tail, since the simulations dominate.
//
// Re-simulating in pass 2 trades CPU (the simulations run twice) for
// memory: storing every pass-1 target would cost entries × domain
// words across all layers, which is prohibitive for MS19-class models.
//
// The result is the same ROMDD ToMDD builds — same structure, same
// per-layer entry counts, same root function — because both visit the
// same entry-node sets and create nodes through the same reducing
// unique table. Only the MDD manager's internal node numbering can
// differ, and nothing downstream (Prob, ComputeStats, Freeze) depends
// on it.
package convert

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/mdd"
)

// Source is the read-only coded-ROBDD view the conversion needs. Both
// the serial *bdd.Manager and the concurrent *bdd.Shared satisfy it.
type Source interface {
	NumVars() int
	Level(n bdd.Node) int
	Lo(n bdd.Node) bdd.Node
	Hi(n bdd.Node) bdd.Node
	IsTerminal(n bdd.Node) bool
	NodeBound() int
}

var (
	_ Source = (*bdd.Manager)(nil)
	_ Source = (*bdd.Shared)(nil)
)

// simulateOn is simulate for any Source.
func simulateOn(bm Source, s *Spec, n bdd.Node, g int, value int, steps *int64) bdd.Node {
	for !bm.IsTerminal(n) && s.LevelGroup[bm.Level(n)] == g {
		if steps != nil {
			*steps++
		}
		if value&(1<<s.LevelBit[bm.Level(n)]) != 0 {
			n = bm.Hi(n)
		} else {
			n = bm.Lo(n)
		}
	}
	return n
}

// parallelRanges splits [0,n) into one contiguous range per worker and
// runs fn on each concurrently. Small inputs run inline on the calling
// goroutine. Static partitioning keeps every per-worker result
// deterministic for a fixed worker count.
func parallelRanges(n, workers int, fn func(w, lo, hi int)) {
	const minPerWorker = 16
	if workers > n/minPerWorker {
		workers = n / minPerWorker
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// testAndSet atomically sets the bit for handle n, reporting whether
// this call was the one that set it.
func testAndSet(bits []uint32, n bdd.Node) bool {
	w := &bits[n>>5]
	mask := uint32(1) << (uint32(n) & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, old, old|mask) {
			return true
		}
	}
}

// ToMDDParallel converts the coded ROBDD rooted at root in bm into an
// ROMDD in mm using up to workers goroutines per layer. It builds the
// exact ROMDD ToMDD builds — identical structure, entry-node counts,
// and probabilities — for every worker count; workers ≤ 1 degrades to
// the two-pass algorithm on one goroutine. bm must not be mutated
// during the conversion. st, when non-nil, receives the same per-layer
// statistics ToMDDWithStats records: SimSteps counts the simulations
// feeding node construction (the discovery prepass re-runs the same
// simulations and is deliberately not double-counted, so the figure is
// comparable with the serial converter's).
func ToMDDParallel(bm Source, root bdd.Node, mm *mdd.Manager, spec Spec, workers int, st *Stats, opts ...Option) (mdd.Node, error) {
	cfg := applyOptions(opts)
	if err := spec.Validate(); err != nil {
		return mdd.False, err
	}
	if len(spec.LevelGroup) != bm.NumVars() {
		return mdd.False, fmt.Errorf("convert: spec covers %d binary levels, manager has %d", len(spec.LevelGroup), bm.NumVars())
	}
	if mm.NumVars() != len(spec.Domains) {
		return mdd.False, fmt.Errorf("convert: MDD manager has %d variables, spec %d", mm.NumVars(), len(spec.Domains))
	}
	for g, d := range spec.Domains {
		if mm.Domain(g) != d {
			return mdd.False, fmt.Errorf("convert: MDD domain %d is %d, spec wants %d", g, mm.Domain(g), d)
		}
	}
	if st != nil {
		st.EntryNodes = make([]int64, len(spec.Domains))
	}
	if root == bdd.False {
		return mdd.False, nil
	}
	if root == bdd.True {
		return mdd.True, nil
	}
	if workers < 1 {
		workers = 1
	}
	G := len(spec.Domains)
	bound := bm.NodeBound()

	// Pass 1: discover each layer's entry nodes top-down.
	visited := make([]uint32, (bound+31)/32)
	layers := make([][]bdd.Node, G)
	rg := spec.LevelGroup[bm.Level(root)]
	testAndSet(visited, root)
	layers[rg] = []bdd.Node{root}
	for g := rg; g < G; g++ {
		entries := layers[g]
		if len(entries) == 0 {
			continue
		}
		D := spec.Domains[g]
		nw := workers
		perWorker := make([][][]bdd.Node, nw)
		parallelRanges(len(entries), nw, func(w, lo, hi int) {
			locals := make([][]bdd.Node, G)
			for i := lo; i < hi; i++ {
				for val := 0; val < D; val++ {
					t := simulateOn(bm, &spec, entries[i], g, val, nil)
					if t == bdd.False || t == bdd.True {
						continue
					}
					if testAndSet(visited, t) {
						tg := spec.LevelGroup[bm.Level(t)]
						locals[tg] = append(locals[tg], t)
					}
				}
			}
			perWorker[w] = locals
		})
		for _, locals := range perWorker {
			for tg, nodes := range locals {
				layers[tg] = append(layers[tg], nodes...)
			}
		}
	}

	// Pass 2: build each layer bottom-up — parallel simulations into a
	// flat kids table, then serial node creation. Discovery fixed every
	// layer's entry set above, so the total work is now known.
	total := int64(0)
	for g := rg; g < G; g++ {
		total += int64(len(layers[g]))
	}
	cfg.state.SetTotal(total)
	memo := make([]mdd.Node, bound)
	stepCounts := make([]int64, workers)
	for g := G - 1; g >= rg; g-- {
		entries := layers[g]
		if len(entries) == 0 {
			continue
		}
		if st != nil {
			st.EntryNodes[g] = int64(len(entries))
		}
		D := spec.Domains[g]
		kids := make([]mdd.Node, len(entries)*D)
		parallelRanges(len(entries), workers, func(w, lo, hi int) {
			var t0 time.Time
			if cfg.tracer != nil {
				t0 = time.Now()
			}
			steps := &stepCounts[w]
			for i := lo; i < hi; i++ {
				for val := 0; val < D; val++ {
					t := simulateOn(bm, &spec, entries[i], g, val, steps)
					switch t {
					case bdd.False:
						kids[i*D+val] = mdd.False
					case bdd.True:
						kids[i*D+val] = mdd.True
					default:
						kids[i*D+val] = memo[t]
					}
				}
			}
			if cfg.tracer != nil {
				cfg.tracer.Event(fmt.Sprintf("layer %d sim [%d,%d)", g, lo, hi), "convert", w, t0, time.Since(t0))
			}
		})
		for i, n := range entries {
			r, err := mm.MkNode(g, kids[i*D:(i+1)*D])
			if err != nil {
				return mdd.False, err
			}
			memo[n] = r
		}
		cfg.state.Add(int64(len(entries)))
	}
	if st != nil {
		for _, s := range stepCounts {
			st.SimSteps += s
		}
	}
	return memo[root], nil
}
