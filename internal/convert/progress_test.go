package convert

import (
	"testing"

	"socyield/internal/mdd"
	"socyield/internal/obs"
	"socyield/internal/order"
)

func TestConvertReportsProgress(t *testing.T) {
	p := buildPipeline(t, fig2FaultTree(), 3, order.MVWeight, order.BitML)
	mm, err := mdd.New(p.spec.Domains)
	if err != nil {
		t.Fatal(err)
	}
	bs := obs.NewBuildState()
	bs.StartPhase(obs.BuildConvert, 0)
	var st Stats
	if _, err := ToMDDWithStats(p.bm, p.root, mm, p.spec, &st, WithBuildState(bs)); err != nil {
		t.Fatalf("ToMDDWithStats: %v", err)
	}
	snap := bs.Snapshot()
	// The serial path learns entry counts as it recurses, so the total
	// stays unknown, but every entry node is counted as done.
	var entries int64
	for _, n := range st.EntryNodes {
		entries += int64(n)
	}
	if snap.PhaseDone != entries {
		t.Errorf("done = %d, want the %d entry nodes", snap.PhaseDone, entries)
	}
}

func TestConvertParallelReportsProgress(t *testing.T) {
	p := buildPipeline(t, fig2FaultTree(), 3, order.MVWeight, order.BitML)
	mm, err := mdd.New(p.spec.Domains)
	if err != nil {
		t.Fatal(err)
	}
	bs := obs.NewBuildState()
	bs.StartPhase(obs.BuildConvert, 0)
	tr := obs.NewTracer(1024)
	var st Stats
	if _, err := ToMDDParallel(p.bm, p.root, mm, p.spec, 4, &st, WithBuildState(bs), WithTracer(tr)); err != nil {
		t.Fatalf("ToMDDParallel: %v", err)
	}
	snap := bs.Snapshot()
	var entries int64
	for _, n := range st.EntryNodes {
		entries += int64(n)
	}
	// The parallel path discovers every layer up front, so the total is
	// published and reached exactly.
	if snap.PhaseTotal != entries {
		t.Errorf("total = %d, want the %d entry nodes", snap.PhaseTotal, entries)
	}
	if snap.PhaseDone != snap.PhaseTotal {
		t.Errorf("done = %d, total = %d; want equal after completion", snap.PhaseDone, snap.PhaseTotal)
	}
	if len(tr.Events()) == 0 {
		t.Error("no layer-simulation trace events recorded")
	}
	for _, ev := range tr.Events() {
		if ev.Cat != "convert" {
			t.Errorf("event category %q, want convert", ev.Cat)
		}
	}
}
