package convert

import (
	"socyield/internal/obs"
)

// Option configures optional instrumentation of a conversion run; the
// zero configuration costs nothing (both hooks no-op when nil).
type Option func(*options)

type options struct {
	state  *obs.BuildState
	tracer *obs.Tracer
}

// WithBuildState attaches a live progress tracker: the converter
// counts converted entry nodes (and, in the parallel converter,
// publishes the discovered total after pass 1), so /v1/builds and the
// flight recorder can report layers-done/total mid-conversion.
func WithBuildState(b *obs.BuildState) Option {
	return func(o *options) { o.state = b }
}

// WithTracer attaches a flight-recorder tracer: each per-layer worker
// range in the parallel converter becomes one timed event on its
// worker's track in the Chrome trace export.
func WithTracer(t *obs.Tracer) Option {
	return func(o *options) { o.tracer = t }
}

func applyOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}
