// Package convert turns a coded ROBDD into the ROMDD the yield method
// needs (Section 2 of the paper) and, as a validation path, evaluates
// probabilities directly on the coded ROBDD.
//
// The conversion follows the paper's procedure: the coded ROBDD is
// viewed as a stack of layers, one per multiple-valued variable, each
// containing the nodes of the binary variables encoding that variable.
// For every entry node of a layer and every value of the variable's
// domain, the value's codeword is "simulated" through the layer's bit
// levels to find the node reached below, and the corresponding ROMDD
// node is created through the unique table. The paper processes layers
// bottom-up and prunes nodes reachable only through out-of-domain
// codewords afterwards; this implementation runs the same computation
// as a memoized depth-first recursion over entry nodes, which visits
// exactly the entry nodes the bottom-up pass would keep after pruning.
package convert

import (
	"fmt"

	"socyield/internal/bdd"
	"socyield/internal/mdd"
)

// Spec describes how the coded ROBDD's binary levels map onto the
// multiple-valued variables.
type Spec struct {
	// LevelGroup[bddLevel] is the MV level (MDD variable index) whose
	// group contains that binary level. Groups must occupy contiguous,
	// increasing ranges: the slice is non-decreasing and spans
	// 0..len(Domains)-1.
	LevelGroup []int
	// LevelBit[bddLevel] is the significance of the bit at that level
	// (0 = least significant).
	LevelBit []uint
	// Domains[mvLevel] is the domain size of the multiple-valued
	// variable at that MV level.
	Domains []int
}

// Validate checks internal consistency of the spec.
func (s Spec) Validate() error {
	if len(s.LevelGroup) != len(s.LevelBit) {
		return fmt.Errorf("convert: LevelGroup has %d entries, LevelBit %d", len(s.LevelGroup), len(s.LevelBit))
	}
	if len(s.Domains) == 0 {
		return fmt.Errorf("convert: no domains")
	}
	prev := 0
	for i, g := range s.LevelGroup {
		if g < 0 || g >= len(s.Domains) {
			return fmt.Errorf("convert: level %d maps to MV level %d outside [0,%d)", i, g, len(s.Domains))
		}
		if g < prev {
			return fmt.Errorf("convert: MV levels not contiguous/increasing at binary level %d (%d after %d)", i, g, prev)
		}
		if g > prev+1 {
			return fmt.Errorf("convert: MV level %d skipped at binary level %d", prev+1, i)
		}
		if i == 0 && g != 0 {
			return fmt.Errorf("convert: first binary level maps to MV level %d, want 0", g)
		}
		prev = g
	}
	if len(s.LevelGroup) > 0 && prev != len(s.Domains)-1 {
		return fmt.Errorf("convert: last MV level covered is %d, want %d", prev, len(s.Domains)-1)
	}
	for g, d := range s.Domains {
		if d < 2 {
			return fmt.Errorf("convert: domain of MV level %d is %d, need ≥ 2", g, d)
		}
		bits := 0
		for lv, lg := range s.LevelGroup {
			if lg == g {
				if s.LevelBit[lv] > 63 {
					return fmt.Errorf("convert: bit significance %d at level %d too large", s.LevelBit[lv], lv)
				}
				bits++
			}
		}
		if d > 1<<bits {
			return fmt.Errorf("convert: MV level %d has domain %d but only %d bits", g, d, bits)
		}
	}
	return nil
}

// simulate walks from n through the binary levels of MV group g,
// following the bits of value, and returns the first node outside the
// layer (an entry node of a lower layer or a terminal) — the paper's
// n_{s_i}. When steps is non-nil it accumulates the number of binary
// nodes traversed.
func simulate(bm *bdd.Manager, s *Spec, n bdd.Node, g int, value int, steps *int64) bdd.Node {
	for !bm.IsTerminal(n) && s.LevelGroup[bm.Level(n)] == g {
		if steps != nil {
			*steps++
		}
		if value&(1<<s.LevelBit[bm.Level(n)]) != 0 {
			n = bm.Hi(n)
		} else {
			n = bm.Lo(n)
		}
	}
	return n
}

// Stats instruments one coded-ROBDD → ROMDD conversion: how much work
// each layer (multiple-valued variable) of the coded ROBDD required.
type Stats struct {
	// EntryNodes[mvLevel] is the number of distinct layer-entry nodes
	// converted at that MV level — the paper's per-layer node front.
	EntryNodes []int64
	// SimSteps is the total number of binary-node steps taken by the
	// codeword simulations across all layers.
	SimSteps int64
}

// ToMDD converts the coded ROBDD rooted at root in bm into an ROMDD in
// mm, which must have been created with domains equal to spec.Domains.
// It returns the ROMDD root.
func ToMDD(bm *bdd.Manager, root bdd.Node, mm *mdd.Manager, spec Spec) (mdd.Node, error) {
	return ToMDDWithStats(bm, root, mm, spec, nil)
}

// ToMDDWithStats is ToMDD recording per-layer conversion statistics
// into st when st is non-nil. The conversion itself is identical.
func ToMDDWithStats(bm *bdd.Manager, root bdd.Node, mm *mdd.Manager, spec Spec, st *Stats, opts ...Option) (mdd.Node, error) {
	cfg := applyOptions(opts)
	if err := spec.Validate(); err != nil {
		return mdd.False, err
	}
	if len(spec.LevelGroup) != bm.NumVars() {
		return mdd.False, fmt.Errorf("convert: spec covers %d binary levels, manager has %d", len(spec.LevelGroup), bm.NumVars())
	}
	if mm.NumVars() != len(spec.Domains) {
		return mdd.False, fmt.Errorf("convert: MDD manager has %d variables, spec %d", mm.NumVars(), len(spec.Domains))
	}
	for g, d := range spec.Domains {
		if mm.Domain(g) != d {
			return mdd.False, fmt.Errorf("convert: MDD domain %d is %d, spec wants %d", g, mm.Domain(g), d)
		}
	}
	var steps *int64
	if st != nil {
		st.EntryNodes = make([]int64, len(spec.Domains))
		steps = &st.SimSteps
	}
	// Map-free memoization: the coded ROBDD is read-only during the
	// conversion, so handle values are bounded by NodeBound at entry and
	// a flat slice indexed by handle replaces the hash map. The key is
	// the full handle (complement bit included): a node and its
	// complement denote different functions and convert independently.
	memo := make([]mdd.Node, bm.NodeBound())
	seen := make([]bool, bm.NodeBound())
	var err error
	var conv func(n bdd.Node) mdd.Node
	conv = func(n bdd.Node) mdd.Node {
		if err != nil {
			return mdd.False
		}
		if n == bdd.False {
			return mdd.False
		}
		if n == bdd.True {
			return mdd.True
		}
		if seen[n] {
			return memo[n]
		}
		g := spec.LevelGroup[bm.Level(n)]
		if st != nil {
			st.EntryNodes[g]++
		}
		// The serial converter discovers entry nodes as it converts, so
		// the total is unknown; progress still counts nodes done.
		cfg.state.Add(1)
		kids := make([]mdd.Node, spec.Domains[g])
		for val := range kids {
			kids[val] = conv(simulate(bm, &spec, n, g, val, steps))
			if err != nil {
				return mdd.False
			}
		}
		r, mkErr := mm.MkNode(g, kids)
		if mkErr != nil {
			err = mkErr
			return mdd.False
		}
		memo[n] = r
		seen[n] = true
		return r
	}
	out := conv(root)
	if err != nil {
		return mdd.False, err
	}
	return out, nil
}

// Prob evaluates P(f = 1) directly on the coded ROBDD, walking bit
// groups with the same simulation as ToMDD: probs[mvLevel][value] is
// the probability of each multiple-valued value. This must agree
// exactly with converting to an ROMDD and calling mdd.Prob — the
// validation triangle used by the tests — and also serves as a
// baseline showing the ROMDD is not required for the probability
// computation itself, only more efficient when reused.
func Prob(bm *bdd.Manager, root bdd.Node, spec Spec, probs [][]float64) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if len(spec.LevelGroup) != bm.NumVars() {
		return 0, fmt.Errorf("convert: spec covers %d binary levels, manager has %d", len(spec.LevelGroup), bm.NumVars())
	}
	if len(probs) != len(spec.Domains) {
		return 0, fmt.Errorf("convert: probability table has %d rows, want %d", len(probs), len(spec.Domains))
	}
	for g, row := range probs {
		if len(row) != spec.Domains[g] {
			return 0, fmt.Errorf("convert: probability row %d has %d entries, want %d", g, len(row), spec.Domains[g])
		}
	}
	// Handle-indexed memo, same pattern as ToMDDWithStats.
	memo := make([]float64, bm.NodeBound())
	seen := make([]bool, bm.NodeBound())
	var walk func(n bdd.Node) float64
	walk = func(n bdd.Node) float64 {
		if n == bdd.False {
			return 0
		}
		if n == bdd.True {
			return 1
		}
		if seen[n] {
			return memo[n]
		}
		g := spec.LevelGroup[bm.Level(n)]
		total := 0.0
		for val, p := range probs[g] {
			if p == 0 {
				continue
			}
			total += p * walk(simulate(bm, &spec, n, g, val, nil))
		}
		memo[n] = total
		seen[n] = true
		return total
	}
	return walk(root), nil
}

// SpecFromPlanLevels builds a Spec from the per-ordinal level map and
// group membership produced by package order/encode: groupOf[ordinal]
// is the natural group index of each binary input, bitOf[ordinal] its
// significance, levels[ordinal] its BDD level, groupSeq the MV-level
// order of natural group indices, and domains the domain sizes in
// natural group order.
func SpecFromPlanLevels(levels []int, groupOf []int, bitOf []uint, groupSeq []int, domains []int) (Spec, error) {
	if len(levels) != len(groupOf) || len(levels) != len(bitOf) {
		return Spec{}, fmt.Errorf("convert: inconsistent metadata lengths %d/%d/%d", len(levels), len(groupOf), len(bitOf))
	}
	mvLevelOf := make([]int, len(groupSeq)) // natural group index -> MV level
	for i := range mvLevelOf {
		mvLevelOf[i] = -1
	}
	for mvLevel, gi := range groupSeq {
		if gi < 0 || gi >= len(groupSeq) {
			return Spec{}, fmt.Errorf("convert: group sequence entry %d out of range", gi)
		}
		if mvLevelOf[gi] != -1 {
			return Spec{}, fmt.Errorf("convert: group %d appears twice in sequence", gi)
		}
		mvLevelOf[gi] = mvLevel
	}
	s := Spec{
		LevelGroup: make([]int, len(levels)),
		LevelBit:   make([]uint, len(levels)),
		Domains:    make([]int, len(domains)),
	}
	for mvLevel, gi := range groupSeq {
		s.Domains[mvLevel] = domains[gi]
	}
	for ord, lv := range levels {
		if lv < 0 || lv >= len(levels) {
			return Spec{}, fmt.Errorf("convert: ordinal %d assigned level %d outside [0,%d)", ord, lv, len(levels))
		}
		if groupOf[ord] < 0 || groupOf[ord] >= len(mvLevelOf) || mvLevelOf[groupOf[ord]] == -1 {
			return Spec{}, fmt.Errorf("convert: ordinal %d in unknown group %d", ord, groupOf[ord])
		}
		s.LevelGroup[lv] = mvLevelOf[groupOf[ord]]
		s.LevelBit[lv] = bitOf[ord]
	}
	return s, s.Validate()
}
