package convert

import (
	"fmt"
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/order"
)

// benchPipeline builds the coded ROBDD of a 2-of-8 threshold system
// once, for conversion/traversal benchmarks.
func benchPipeline(b *testing.B) (*bdd.Manager, bdd.Node, Spec) {
	b.Helper()
	f := logic.New()
	xs := make([]logic.GateID, 8)
	for i := range xs {
		xs[i] = f.Input(fmt.Sprintf("x%d", i+1))
	}
	f.SetOutput(f.AtLeast(2, xs...))
	g, err := encode.BuildG(f, 4)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := order.Assemble(g.Netlist, g.Groups, order.MVWeight, order.BitML)
	if err != nil {
		b.Fatal(err)
	}
	bm := bdd.New(g.Netlist.NumInputs())
	root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
	if err != nil {
		b.Fatal(err)
	}
	groupOf := make([]int, g.Netlist.NumInputs())
	bitOf := make([]uint, g.Netlist.NumInputs())
	for gi, grp := range g.Groups {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits {
			groupOf[ord] = gi
			bitOf[ord] = uint(nb - 1 - j)
		}
	}
	spec, err := SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
	if err != nil {
		b.Fatal(err)
	}
	return bm, root, spec
}

// mapToMDD is the pre-overhaul reference conversion, memoized with a
// map[bdd.Node]mdd.Node instead of the handle-indexed slices ToMDD
// uses now. It exists only as the benchmark baseline.
func mapToMDD(bm *bdd.Manager, root bdd.Node, mm *mdd.Manager, spec Spec) (mdd.Node, error) {
	memo := make(map[bdd.Node]mdd.Node)
	var err error
	var conv func(n bdd.Node) mdd.Node
	conv = func(n bdd.Node) mdd.Node {
		if err != nil || n == bdd.False {
			return mdd.False
		}
		if n == bdd.True {
			return mdd.True
		}
		if r, ok := memo[n]; ok {
			return r
		}
		g := spec.LevelGroup[bm.Level(n)]
		kids := make([]mdd.Node, spec.Domains[g])
		for val := range kids {
			kids[val] = conv(simulate(bm, &spec, n, g, val, nil))
			if err != nil {
				return mdd.False
			}
		}
		r, mkErr := mm.MkNode(g, kids)
		if mkErr != nil {
			err = mkErr
			return mdd.False
		}
		memo[n] = r
		return r
	}
	out := conv(root)
	return out, err
}

// mapProb is the map-memoized reference for Prob, the benchmark
// baseline for the handle-indexed slice memo.
func mapProb(bm *bdd.Manager, root bdd.Node, spec Spec, probs [][]float64) float64 {
	memo := make(map[bdd.Node]float64)
	var walk func(n bdd.Node) float64
	walk = func(n bdd.Node) float64 {
		if n == bdd.False {
			return 0
		}
		if n == bdd.True {
			return 1
		}
		if p, ok := memo[n]; ok {
			return p
		}
		g := spec.LevelGroup[bm.Level(n)]
		total := 0.0
		for val, p := range probs[g] {
			if p == 0 {
				continue
			}
			total += p * walk(simulate(bm, &spec, n, g, val, nil))
		}
		memo[n] = total
		return total
	}
	return walk(root)
}

// BenchmarkToMDDMemo compares the handle-indexed slice memo of ToMDD
// against the map memo it replaced.
func BenchmarkToMDDMemo(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	b.Run("slice", func(b *testing.B) {
		for b.Loop() {
			mm, err := mdd.New(spec.Domains)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ToMDD(bm, root, mm, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for b.Loop() {
			mm, err := mdd.New(spec.Domains)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mapToMDD(bm, root, mm, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProbMemo compares the slice-memoized coded-ROBDD traversal
// against the map memo it replaced.
func BenchmarkProbMemo(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	probs := make([][]float64, len(spec.Domains))
	for g, d := range spec.Domains {
		row := make([]float64, d)
		for v := range row {
			row[v] = 1 / float64(d)
		}
		probs[g] = row
	}
	want, err := Prob(bm, root, spec, probs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("slice", func(b *testing.B) {
		for b.Loop() {
			p, err := Prob(bm, root, spec, probs)
			if err != nil {
				b.Fatal(err)
			}
			if p != want {
				b.Fatalf("p = %v, want %v", p, want)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for b.Loop() {
			if p := mapProb(bm, root, spec, probs); p != want {
				b.Fatalf("p = %v, want %v", p, want)
			}
		}
	})
}

// BenchmarkToMDD measures the coded-ROBDD → ROMDD layer conversion.
func BenchmarkToMDD(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	b.ResetTimer()
	for b.Loop() {
		mm, err := mdd.New(spec.Domains)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ToMDD(bm, root, mm, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbOnCodedROBDD measures the direct group-walk traversal.
func BenchmarkProbOnCodedROBDD(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	probs := make([][]float64, len(spec.Domains))
	for g, d := range spec.Domains {
		row := make([]float64, d)
		for v := range row {
			row[v] = 1 / float64(d)
		}
		probs[g] = row
	}
	b.ResetTimer()
	for b.Loop() {
		p, err := Prob(bm, root, spec, probs)
		if err != nil {
			b.Fatal(err)
		}
		if p < 0 || p > 1 {
			b.Fatalf("p = %v", p)
		}
	}
}
