package convert

import (
	"fmt"
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/order"
)

// benchPipeline builds the coded ROBDD of a 2-of-8 threshold system
// once, for conversion/traversal benchmarks.
func benchPipeline(b *testing.B) (*bdd.Manager, bdd.Node, Spec) {
	b.Helper()
	f := logic.New()
	xs := make([]logic.GateID, 8)
	for i := range xs {
		xs[i] = f.Input(fmt.Sprintf("x%d", i+1))
	}
	f.SetOutput(f.AtLeast(2, xs...))
	g, err := encode.BuildG(f, 4)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := order.Assemble(g.Netlist, g.Groups, order.MVWeight, order.BitML)
	if err != nil {
		b.Fatal(err)
	}
	bm := bdd.New(g.Netlist.NumInputs())
	root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
	if err != nil {
		b.Fatal(err)
	}
	groupOf := make([]int, g.Netlist.NumInputs())
	bitOf := make([]uint, g.Netlist.NumInputs())
	for gi, grp := range g.Groups {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits {
			groupOf[ord] = gi
			bitOf[ord] = uint(nb - 1 - j)
		}
	}
	spec, err := SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
	if err != nil {
		b.Fatal(err)
	}
	return bm, root, spec
}

// BenchmarkToMDD measures the coded-ROBDD → ROMDD layer conversion.
func BenchmarkToMDD(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	b.ResetTimer()
	for b.Loop() {
		mm, err := mdd.New(spec.Domains)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ToMDD(bm, root, mm, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbOnCodedROBDD measures the direct group-walk traversal.
func BenchmarkProbOnCodedROBDD(b *testing.B) {
	bm, root, spec := benchPipeline(b)
	probs := make([][]float64, len(spec.Domains))
	for g, d := range spec.Domains {
		row := make([]float64, d)
		for v := range row {
			row[v] = 1 / float64(d)
		}
		probs[g] = row
	}
	b.ResetTimer()
	for b.Loop() {
		p, err := Prob(bm, root, spec, probs)
		if err != nil {
			b.Fatal(err)
		}
		if p < 0 || p > 1 {
			b.Fatalf("p = %v", p)
		}
	}
}
