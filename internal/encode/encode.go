// Package encode synthesizes the generalized function G(w, v_1..v_M)
// of Theorem 1 as a gate-level netlist over binary variables, following
// Section 2 of the paper: the multiple-valued variable w (number of
// lethal defects, saturated at M+1) is encoded with a minimum number of
// bits, each v_l (component hit by the l-th lethal defect) encodes
// v_l − 1 with a minimum number of bits, and the "filter" gates of
// Figure 1 are expanded into the binary literal products given in the
// paper:
//
//	z_{≥M+1} = lit(w^{l-1}, M+1) · … · lit(w^0, M+1)
//	z_{≥k}   = z_{≥k+1} + lit(w^{l-1}, k) · … · lit(w^0, k)
//	z^k_l    = lit(v_l^{j-1}, k-1) · … · lit(v_l^0, k-1)
//
// and every input x_i of the fault tree F is replaced by
// ⋁_{l=1..M} ( z_{≥l} ∧ z^i_l ), with G = z_{≥M+1} ∨ F(…).
package encode

import (
	"fmt"

	"socyield/internal/logic"
	"socyield/internal/order"
)

// GFunc is the synthesized generalized function together with the
// metadata linking its binary inputs back to the multiple-valued
// variables.
type GFunc struct {
	// Netlist is G in binary logic; its inputs are the bits of w and
	// of v_1..v_M.
	Netlist *logic.Netlist
	// Groups lists the bit groups in natural order: Groups[0] is w,
	// Groups[l] is v_l. Bits are input ordinals, most significant
	// first.
	Groups []order.Group
	// C is the number of components; M the truncation point.
	C, M int
	// WBits and VBits are the code widths of w and of each v_l.
	WBits, VBits int
}

// Domains returns the domain sizes of the multiple-valued variables in
// natural group order: w has M+2 values (0..M and the saturation value
// M+1), each v_l has C values (value i-1 encodes component i).
func (g *GFunc) Domains() []int {
	out := make([]int, 1+g.M)
	out[0] = g.M + 2
	for l := 1; l <= g.M; l++ {
		out[l] = g.C
	}
	return out
}

func bitsFor(maxValue int) int {
	b := 1
	for (1 << b) <= maxValue {
		b++
	}
	return b
}

// BuildG synthesizes G from the fault tree f, whose declared inputs
// are, in declaration order, the failed-state variables x_1 … x_C of
// the C components. M ≥ 0 is the truncation point.
func BuildG(f *logic.Netlist, m int) (*GFunc, error) {
	return BuildGPartial(f, f.NumInputs(), m)
}

// BuildGPartial synthesizes G when only the first c declared inputs of
// f are defect-addressable components; any remaining inputs are copied
// into the G netlist as free binary variables (same names, declared
// after the encoding groups). This supports extensions — such as the
// operational-reliability evaluation — that mix the defect model with
// additional independent binary events.
func BuildGPartial(f *logic.Netlist, c, m int) (*GFunc, error) {
	if c < 2 {
		return nil, fmt.Errorf("encode: %d defect-addressable components, need at least 2", c)
	}
	if c > f.NumInputs() {
		return nil, fmt.Errorf("encode: %d components but fault tree has only %d inputs", c, f.NumInputs())
	}
	if m < 0 {
		return nil, fmt.Errorf("encode: negative truncation point %d", m)
	}
	if _, ok := f.Output(); !ok {
		return nil, logic.ErrNoOutput
	}
	wBits := bitsFor(m + 1)
	vBits := bitsFor(c - 1)
	g := &GFunc{
		Netlist: logic.New(),
		C:       c,
		M:       m,
		WBits:   wBits,
		VBits:   vBits,
	}
	n := g.Netlist

	// Declare inputs group by group, most significant bit first, and
	// record the groups.
	wGroup := order.Group{Name: "w", Bits: make([]int, 0, wBits)}
	wBitGates := make([]logic.GateID, wBits) // indexed by significance, 0 = LSB
	for b := wBits - 1; b >= 0; b-- {
		id := n.Input(fmt.Sprintf("w.%d", b))
		wGroup.Bits = append(wGroup.Bits, n.InputOrdinal(id))
		wBitGates[b] = id
	}
	g.Groups = append(g.Groups, wGroup)
	vBitGates := make([][]logic.GateID, m+1) // 1-based defect index
	for l := 1; l <= m; l++ {
		grp := order.Group{Name: fmt.Sprintf("v%d", l), Bits: make([]int, 0, vBits)}
		vBitGates[l] = make([]logic.GateID, vBits)
		for b := vBits - 1; b >= 0; b-- {
			id := n.Input(fmt.Sprintf("v%d.%d", l, b))
			grp.Bits = append(grp.Bits, n.InputOrdinal(id))
			vBitGates[l][b] = id
		}
		g.Groups = append(g.Groups, grp)
	}

	// minterm returns the product of literals selecting value on the
	// given bit gates (indexed by significance). The product is the
	// paper's lit(w^{l-1})·…·lit(w^0), built as a right-deep chain
	// with the least significant literal outermost: under the weight
	// heuristic each 2-input AND then ranks its literal before the
	// heavier sub-chain, so the discovery order of a group's bits is
	// exactly least-to-most significant — which is what makes the
	// paper's "w" bit ordering coincide with "lm" on every benchmark.
	minterm := func(bitGates []logic.GateID, value int) logic.GateID {
		lit := func(b int) logic.GateID {
			if value&(1<<b) != 0 {
				return bitGates[b]
			}
			return n.Not(bitGates[b])
		}
		msb := len(bitGates) - 1
		acc := lit(msb)
		for b := msb - 1; b >= 0; b-- {
			acc = n.And(lit(b), acc)
		}
		return acc
	}

	// z_{≥k} chain, built top (M+1) down as in the paper.
	zGeq := make([]logic.GateID, m+2) // zGeq[k] = [w ≥ k], k = 1..M+1
	zGeq[m+1] = minterm(wBitGates, m+1)
	for k := m; k >= 1; k-- {
		zGeq[k] = n.Or(zGeq[k+1], minterm(wBitGates, k))
	}

	// Substituted fault-tree inputs: x_i := ⋁_l z_{≥l} ∧ z^i_l. The
	// disjunction is a single M-input OR: the weight heuristic then
	// re-sorts its fan-in by ascending weight (z_{≥M} is the lightest),
	// discovering v_M first, while H4 keeps the written order on its
	// tie and discovers v_1 first — reproducing both the paper's
	// "w = wvr" and "h = wv" ROMDD-size identities simultaneously.
	xSub := make([]logic.GateID, c) // by component ordinal (0-based)
	for i := 0; i < c; i++ {
		terms := make([]logic.GateID, 0, m)
		for l := 1; l <= m; l++ {
			terms = append(terms, n.And(zGeq[l], minterm(vBitGates[l], i)))
		}
		if len(terms) == 0 { // M = 0: no defect can hit anything
			xSub[i] = n.Const(false)
		} else {
			xSub[i] = n.Or(terms...)
		}
	}

	// Copy F's gate DAG with inputs replaced by xSub.
	// Passthrough inputs (ordinals ≥ c) are declared after the groups.
	names := f.InputNames()
	passthrough := make([]logic.GateID, f.NumInputs())
	for ord := c; ord < f.NumInputs(); ord++ {
		passthrough[ord] = n.Input(names[ord])
	}

	fOut := f.MustOutput()
	mapTo := make(map[logic.GateID]logic.GateID, f.NumNodes())
	var rc func(id logic.GateID) logic.GateID
	rc = func(id logic.GateID) logic.GateID {
		if to, ok := mapTo[id]; ok {
			return to
		}
		gate := f.Gate(id)
		var to logic.GateID
		switch gate.Kind {
		case logic.InputKind:
			if ord := f.InputOrdinal(id); ord < c {
				to = xSub[ord]
			} else {
				to = passthrough[ord]
			}
		case logic.ConstKind:
			to = n.Const(gate.Value)
		default:
			fanin := make([]logic.GateID, len(gate.Fanin))
			for j, fid := range gate.Fanin {
				fanin[j] = rc(fid)
			}
			switch gate.Kind {
			case logic.NotKind:
				to = n.Not(fanin[0])
			case logic.AndKind:
				to = n.And(fanin...)
			case logic.OrKind:
				to = n.Or(fanin...)
			case logic.NandKind:
				to = n.Nand(fanin...)
			case logic.NorKind:
				to = n.Nor(fanin...)
			case logic.XorKind:
				to = n.Xor(fanin...)
			case logic.XnorKind:
				to = n.Xnor(fanin...)
			default:
				panic(fmt.Sprintf("encode: unknown gate kind %v", gate.Kind))
			}
		}
		mapTo[id] = to
		return to
	}
	fPrime := rc(fOut)
	n.SetOutput(n.Or(zGeq[m+1], fPrime))
	return g, nil
}

// DecodeAssignment maps multiple-valued values (w, v_1..v_M in natural
// order; each v given as the 0-based component index) to a binary
// assignment vector for the G netlist, for testing and simulation.
func (g *GFunc) DecodeAssignment(mv []int) ([]bool, error) {
	if len(mv) != 1+g.M {
		return nil, fmt.Errorf("encode: assignment has %d values, want %d", len(mv), 1+g.M)
	}
	out := make([]bool, g.Netlist.NumInputs())
	set := func(grp order.Group, value int) {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits { // MSB first
			bit := nb - 1 - j
			out[ord] = value&(1<<bit) != 0
		}
	}
	if mv[0] < 0 || mv[0] > g.M+1 {
		return nil, fmt.Errorf("encode: w value %d outside [0,%d]", mv[0], g.M+1)
	}
	set(g.Groups[0], mv[0])
	for l := 1; l <= g.M; l++ {
		if mv[l] < 0 || mv[l] >= g.C {
			return nil, fmt.Errorf("encode: v%d value %d outside [0,%d)", l, mv[l], g.C)
		}
		set(g.Groups[l], mv[l])
	}
	return out, nil
}
