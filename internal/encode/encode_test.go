package encode

import (
	"fmt"
	"testing"

	"socyield/internal/logic"
)

// tinyFaultTree returns F(x1,x2,x3) = x1·x2 + x3, the fault tree of
// the paper's Figure 2 example.
func tinyFaultTree() *logic.Netlist {
	f := logic.New()
	x1, x2, x3 := f.Input("x1"), f.Input("x2"), f.Input("x3")
	f.SetOutput(f.Or(f.And(x1, x2), x3))
	return f
}

// refG evaluates the defining equation (3) of the paper directly:
// G = [w ≥ M+1] ∨ F(x_1..x_C) with x_i = ⋁_{l=1..M} [w ≥ l][v_l = i].
func refG(f *logic.Netlist, c, m int, w int, v []int) (bool, error) {
	if w >= m+1 {
		return true, nil
	}
	xs := make([]bool, c)
	for i := 0; i < c; i++ {
		for l := 1; l <= m; l++ {
			if w >= l && v[l-1] == i {
				xs[i] = true
			}
		}
	}
	return f.Eval(xs)
}

func forAllMV(c, m int, fn func(w int, v []int)) {
	v := make([]int, m)
	var rec func(l int)
	for w := 0; w <= m+1; w++ {
		rec = func(l int) {
			if l == m {
				fn(w, v)
				return
			}
			for val := 0; val < c; val++ {
				v[l] = val
				rec(l + 1)
			}
		}
		rec(0)
	}
}

func TestBuildGStructure(t *testing.T) {
	f := tinyFaultTree()
	g, err := BuildG(f, 2)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	if g.C != 3 || g.M != 2 {
		t.Fatalf("C,M = %d,%d, want 3,2", g.C, g.M)
	}
	// M+1 = 3 needs 2 bits; C-1 = 2 needs 2 bits.
	if g.WBits != 2 || g.VBits != 2 {
		t.Errorf("WBits,VBits = %d,%d, want 2,2", g.WBits, g.VBits)
	}
	if len(g.Groups) != 3 {
		t.Fatalf("groups = %d, want 3 (w, v1, v2)", len(g.Groups))
	}
	if g.Groups[0].Name != "w" || g.Groups[1].Name != "v1" || g.Groups[2].Name != "v2" {
		t.Errorf("group names = %v %v %v", g.Groups[0].Name, g.Groups[1].Name, g.Groups[2].Name)
	}
	for _, grp := range g.Groups {
		if len(grp.Bits) != 2 {
			t.Errorf("group %s has %d bits, want 2", grp.Name, len(grp.Bits))
		}
	}
	doms := g.Domains()
	if len(doms) != 3 || doms[0] != 4 || doms[1] != 3 || doms[2] != 3 {
		t.Errorf("Domains = %v, want [4 3 3]", doms)
	}
	if g.Netlist.NumInputs() != 6 {
		t.Errorf("G inputs = %d, want 6", g.Netlist.NumInputs())
	}
	// Group bits must be MSB first: w.1 before w.0.
	names := g.Netlist.InputNames()
	if names[g.Groups[0].Bits[0]] != "w.1" || names[g.Groups[0].Bits[1]] != "w.0" {
		t.Errorf("w group bits = %s,%s, want w.1,w.0",
			names[g.Groups[0].Bits[0]], names[g.Groups[0].Bits[1]])
	}
}

func TestBuildGSemanticsExhaustive(t *testing.T) {
	for _, tc := range []struct{ c, m int }{{3, 2}, {2, 1}, {4, 2}, {3, 0}, {5, 3}} {
		t.Run(fmt.Sprintf("C%dM%d", tc.c, tc.m), func(t *testing.T) {
			// F = at-least-2-failed over c components (arbitrary
			// nontrivial monotone function).
			f := logic.New()
			xs := make([]logic.GateID, tc.c)
			for i := range xs {
				xs[i] = f.Input(fmt.Sprintf("x%d", i+1))
			}
			f.SetOutput(f.AtLeast(2, xs...))
			g, err := BuildG(f, tc.m)
			if err != nil {
				t.Fatalf("BuildG: %v", err)
			}
			checked := 0
			forAllMV(tc.c, tc.m, func(w int, v []int) {
				mv := append([]int{w}, v...)
				assign, err := g.DecodeAssignment(mv)
				if err != nil {
					t.Fatalf("DecodeAssignment(%v): %v", mv, err)
				}
				got, err := g.Netlist.Eval(assign)
				if err != nil {
					t.Fatalf("Eval: %v", err)
				}
				want, err := refG(f, tc.c, tc.m, w, v)
				if err != nil {
					t.Fatalf("refG: %v", err)
				}
				if got != want {
					t.Fatalf("G(w=%d, v=%v) = %v, want %v", w, v, got, want)
				}
				checked++
			})
			if want := (tc.m + 2) * pow(tc.c, tc.m); checked != want {
				t.Fatalf("checked %d assignments, want %d", checked, want)
			}
		})
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func TestBuildGFig2Example(t *testing.T) {
	// The Figure 2 system: F = x1·x2 + x3 with M = 2. Spot-check the
	// cases the paper narrates: the system is "not functioning" when
	// component 3 is hit, or when both 1 and 2 are hit, or when more
	// than M defects occur.
	g, err := BuildG(tinyFaultTree(), 2)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	eval := func(w int, v ...int) bool {
		assign, err := g.DecodeAssignment(append([]int{w}, v...))
		if err != nil {
			t.Fatalf("DecodeAssignment: %v", err)
		}
		got, err := g.Netlist.Eval(assign)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		return got
	}
	if eval(0, 0, 0) {
		t.Error("no defects: G must be 0")
	}
	if !eval(3, 0, 0) {
		t.Error("w = M+1: G must be 1 regardless of v")
	}
	if !eval(1, 2, 0) {
		t.Error("one defect on component 3: G must be 1")
	}
	if eval(1, 0, 2) {
		t.Error("one defect on component 1 (second v ignored at w=1): G must be 0")
	}
	if !eval(2, 0, 1) {
		t.Error("defects on components 1 and 2: G must be 1")
	}
	if eval(2, 0, 0) {
		t.Error("both defects on component 1: G must be 0")
	}
}

func TestBuildGErrors(t *testing.T) {
	one := logic.New()
	one.SetOutput(one.Input("x1"))
	if _, err := BuildG(one, 2); err == nil {
		t.Error("single-component fault tree accepted")
	}
	f := tinyFaultTree()
	if _, err := BuildG(f, -1); err == nil {
		t.Error("negative M accepted")
	}
	noOut := logic.New()
	noOut.Input("x1")
	noOut.Input("x2")
	if _, err := BuildG(noOut, 1); err == nil {
		t.Error("output-less fault tree accepted")
	}
}

func TestDecodeAssignmentValidation(t *testing.T) {
	g, err := BuildG(tinyFaultTree(), 2)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	if _, err := g.DecodeAssignment([]int{0}); err == nil {
		t.Error("short MV assignment accepted")
	}
	if _, err := g.DecodeAssignment([]int{4, 0, 0}); err == nil {
		t.Error("w out of range accepted")
	}
	if _, err := g.DecodeAssignment([]int{0, 3, 0}); err == nil {
		t.Error("v out of domain accepted")
	}
	if _, err := g.DecodeAssignment([]int{0, -1, 0}); err == nil {
		t.Error("negative v accepted")
	}
}

func TestBuildGZeroTruncation(t *testing.T) {
	// M = 0: no v variables; G = [w ≥ 1] ∨ F(0,…,0).
	f := tinyFaultTree() // F(0,0,0) = 0
	g, err := BuildG(f, 0)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	if len(g.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(g.Groups))
	}
	a0, _ := g.DecodeAssignment([]int{0})
	if got, _ := g.Netlist.Eval(a0); got {
		t.Error("G(w=0) = 1, want 0")
	}
	a1, _ := g.DecodeAssignment([]int{1})
	if got, _ := g.Netlist.Eval(a1); !got {
		t.Error("G(w=1) = 0, want 1")
	}
}

func TestBuildGGateCountReasonable(t *testing.T) {
	// The synthesized G must stay linear in C·M.
	f := logic.New()
	const c = 10
	xs := make([]logic.GateID, c)
	for i := range xs {
		xs[i] = f.Input(fmt.Sprintf("x%d", i+1))
	}
	f.SetOutput(f.Or(xs...))
	g, err := BuildG(f, 4)
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	if gates := g.Netlist.NumGates(); gates > 40*c*5 {
		t.Errorf("G has %d gates for C=%d M=4 — synthesis exploded", gates, c)
	}
}
