// Package yield implements the paper's combinatorial method for the
// evaluation of yield of fault-tolerant systems-on-chip, end to end:
//
//  1. map the defect model to the lethal-defect model (Q → Q', P → P'),
//  2. choose the truncation point M for the requested error bound ε,
//  3. synthesize the generalized function G(w, v_1..v_M),
//  4. order the variables (heuristics of Section 2),
//  5. compile the coded ROBDD of G gate by gate,
//  6. convert it to the ROMDD,
//  7. evaluate P(G = 1) by the probability-weighted depth-first
//     traversal, giving Y_M = 1 − P(G = 1) with Y_M ≤ Y ≤ Y_M + ε.
//
// Alternative evaluation routes (direct walk of the coded ROBDD, and
// direct ROMDD construction via MDD apply — the ablation of the
// coded-ROBDD consensus claim) and an exact brute-force reference for
// small systems are provided alongside.
package yield

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/convert"
	"socyield/internal/defects"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/obs"
	"socyield/internal/order"
)

// ErrNodeLimit reports that the decision-diagram engines exceeded the
// configured node budget — the reproduction of the paper's "—"
// (memory exhaustion) entries.
var ErrNodeLimit = bdd.ErrNodeLimit

// Component is one component of the system-on-chip.
type Component struct {
	// Name identifies the component (diagnostics only).
	Name string
	// P is the paper's P_i: the probability that a given manufacturing
	// defect affects this component and is lethal.
	P float64
}

// System describes a fault-tolerant system-on-chip: its components and
// the fault-tree function over their failed states.
type System struct {
	// Name labels the system in reports.
	Name string
	// Components lists the C components; Components[i] corresponds to
	// the i-th declared input of FaultTree.
	Components []Component
	// FaultTree computes 1 iff the system is NOT functioning, given
	// x_i = 1 iff component i is failed. Its inputs, in declaration
	// order, are the components.
	FaultTree *logic.Netlist
}

// Validate checks structural consistency of the system description.
func (s *System) Validate() error {
	if s == nil {
		return errors.New("yield: nil system")
	}
	if len(s.Components) < 2 {
		return fmt.Errorf("yield: system %q has %d components, need ≥ 2", s.Name, len(s.Components))
	}
	if s.FaultTree == nil {
		return fmt.Errorf("yield: system %q has no fault tree", s.Name)
	}
	if _, ok := s.FaultTree.Output(); !ok {
		return fmt.Errorf("yield: system %q fault tree has no output", s.Name)
	}
	if got := s.FaultTree.NumInputs(); got != len(s.Components) {
		return fmt.Errorf("yield: system %q fault tree has %d inputs for %d components", s.Name, got, len(s.Components))
	}
	pl := 0.0
	for i, c := range s.Components {
		if !(c.P >= 0) || math.IsInf(c.P, 0) {
			return fmt.Errorf("yield: component %d (%s) has P = %v", i, c.Name, c.P)
		}
		pl += c.P
	}
	if pl <= 0 {
		return fmt.Errorf("yield: system %q has P_L = %v, need > 0", s.Name, pl)
	}
	if pl > 1+1e-12 {
		return fmt.Errorf("yield: system %q has P_L = %v > 1", s.Name, pl)
	}
	return nil
}

// PL returns P_L = Σ_i P_i, the probability that a given defect is
// lethal.
func (s *System) PL() float64 {
	pl := 0.0
	for _, c := range s.Components {
		pl += c.P
	}
	return pl
}

// Options configure an evaluation.
type Options struct {
	// Defects is the distribution of the number of manufacturing
	// defects (Q_k). Required.
	Defects defects.Distribution
	// Epsilon is the absolute error requirement on the yield; the
	// truncation point M is the smallest value meeting it.
	// Defaults to 1e-4.
	Epsilon float64
	// MVOrder is the ordering of the multiple-valued variables.
	// Defaults to the weight heuristic (the paper's best).
	MVOrder order.MVKind
	// BitOrder is the ordering of the bits inside each group.
	// Defaults to most-to-least significant (the paper's best).
	BitOrder order.BitKind
	// NodeLimit bounds live ROBDD nodes (and ROMDD nodes); 0 means
	// unlimited. Exceeding it aborts with ErrNodeLimit.
	NodeLimit int
	// BuildWorkers sets the worker count for the one-time build phases
	// (coded-ROBDD compilation and ROMDD conversion). 0 defaults to
	// runtime.GOMAXPROCS(0); 1 selects the serial reference engine;
	// ≥ 2 selects the concurrent engine with that many workers.
	// Negative values are rejected. Results are bit-identical for
	// every worker count — both engines build the same canonical
	// diagrams — so BuildWorkers is excluded from ModelKey like the
	// other result-invariant knobs. The validation routes
	// (EvaluateOnCodedROBDD, EvaluateDirectMDD, BruteForce) always run
	// serially regardless of this setting.
	BuildWorkers int
	// ForceM overrides the computed truncation point when > 0 has been
	// set together with ForceMSet; used by experiments that pin M.
	ForceM    int
	ForceMSet bool
	// Recorder, when non-nil, receives the run's metrics: a span tree
	// of the pipeline phases, the decision-diagram engine counters
	// (apply-cache hits/misses, unique-table growth, GC activity), and
	// the structural gauges of the result. A nil Recorder disables all
	// metric recording at near-zero cost — hot paths guard on it.
	Recorder *obs.Registry
	// BuildState, when non-nil, receives live phase transitions and
	// work-unit progress (gates compiled, conversion entry nodes) as
	// the build runs; any goroutine may Snapshot it concurrently. This
	// is what the yieldd /v1/builds endpoint and the flight-recorder
	// sampler read. Excluded from ModelKey: it does not affect results.
	BuildState *obs.BuildState
	// Tracer, when non-nil, records per-worker timed work slices
	// (compile tasks, conversion layer ranges) for the Chrome trace
	// export. Excluded from ModelKey like Recorder and BuildState.
	Tracer *obs.Tracer
	// bddOptions carries extra engine options into the coded-ROBDD
	// manager. Unexported: it exists so the equivalence tests can run
	// the identical pipeline with bdd.WithoutComplementEdges and assert
	// bit-identical yields; it is deliberately not part of the public
	// surface (and is excluded from ModelKey like the other
	// result-invariant knobs).
	bddOptions []bdd.Option
}

// bddManagerOptions assembles the engine options for the coded-ROBDD
// manager: the node budget plus any test-only overrides.
func (o *Options) bddManagerOptions() []bdd.Option {
	return append([]bdd.Option{bdd.WithNodeLimit(o.NodeLimit)}, o.bddOptions...)
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Defects == nil {
		return out, errors.New("yield: Options.Defects is required")
	}
	if out.Epsilon == 0 {
		out.Epsilon = 1e-4
	}
	if !(out.Epsilon > 0 && out.Epsilon < 1) {
		return out, fmt.Errorf("yield: Epsilon = %v outside (0,1)", out.Epsilon)
	}
	if out.MVOrder == 0 {
		out.MVOrder = order.MVWeight
	}
	if out.BitOrder == 0 {
		out.BitOrder = order.BitML
	}
	if !order.Compatible(out.MVOrder, out.BitOrder) {
		return out, fmt.Errorf("yield: MV ordering %v cannot be combined with bit ordering %v", out.MVOrder, out.BitOrder)
	}
	if out.NodeLimit < 0 {
		return out, fmt.Errorf("yield: NodeLimit = %d < 0", out.NodeLimit)
	}
	if out.BuildWorkers < 0 {
		return out, fmt.Errorf("yield: BuildWorkers = %d < 0", out.BuildWorkers)
	}
	if out.BuildWorkers == 0 {
		out.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	return out, nil
}

// Phases records per-phase wall-clock times, covering the pipeline end
// to end: model preparation (thinning, truncation point), G-function
// synthesis, variable ordering, coded-ROBDD compilation, ROMDD
// conversion, and probability evaluation.
type Phases struct {
	Prepare time.Duration
	Encode  time.Duration
	Order   time.Duration
	Compile time.Duration
	Convert time.Duration
	Eval    time.Duration
}

// Total returns the summed phase time.
func (p Phases) Total() time.Duration {
	return p.Prepare + p.Encode + p.Order + p.Compile + p.Convert + p.Eval
}

// Result reports the outcome of an evaluation.
type Result struct {
	// Yield is the pessimistic estimate Y_M; the true yield satisfies
	// Yield ≤ Y ≤ Yield + ErrorBound.
	Yield float64
	// ErrorBound is the actual tail mass beyond M (≤ Epsilon).
	ErrorBound float64
	// M is the truncation point used.
	M int
	// PL is Σ P_i; LambdaPrime the mean number of lethal defects.
	PL          float64
	LambdaPrime float64
	// GGates is the gate count of the synthesized G netlist;
	// BinaryVars its input count.
	GGates     int
	BinaryVars int
	// CodedROBDDSize is the node count of the final coded ROBDD;
	// ROBDDPeak the peak live ROBDD nodes over the whole run — the
	// maximum of the per-phase peaks Stats.CompilePeakLive and
	// Stats.ConvertPeakLive; ROMDDSize the node count of the ROMDD.
	CodedROBDDSize int
	ROBDDPeak      int
	ROMDDSize      int
	// Phases holds per-phase timings.
	Phases Phases
	// Stats aggregates the decision-diagram engines' internal
	// instrumentation (apply caches, unique tables, GC, per-layer
	// conversion work). It is populated by every route that builds
	// diagrams, independent of Options.Recorder.
	Stats EngineStats
}

// prepared carries the model quantities shared by all routes.
type prepared struct {
	opts   Options
	live   *liveSource
	pprime []float64 // P'_i by component ordinal
	qprime []float64 // Q'_0..Q'_M
	tail   float64
	m      int
	pl     float64
	lethal defects.Distribution
}

func prepare(sys *System, opts Options) (*prepared, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	pl := sys.PL()
	lethal, err := defects.Thin(o.Defects, pl)
	if err != nil {
		return nil, err
	}
	m, _, err := defects.TruncationPoint(lethal, o.Epsilon)
	if err != nil {
		return nil, err
	}
	if o.ForceMSet {
		if o.ForceM < 0 {
			return nil, fmt.Errorf("yield: forced M = %d < 0", o.ForceM)
		}
		m = o.ForceM
	}
	qprime, tail, err := defects.PMFTable(lethal, m)
	if err != nil {
		return nil, err
	}
	pprime := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		pprime[i] = c.P / pl
	}
	return &prepared{opts: o, pprime: pprime, qprime: qprime, tail: tail, m: m, pl: pl, lethal: lethal}, nil
}

// probTable builds the per-MV-level value distributions in MV-level
// order given the plan's group sequence: row for w is [Q'_0..Q'_M,
// tail], rows for each v_l are P'.
func (p *prepared) probTable(groupSeq []int) [][]float64 {
	wRow := make([]float64, p.m+2)
	copy(wRow, p.qprime)
	wRow[p.m+1] = p.tail
	out := make([][]float64, len(groupSeq))
	for mvLevel, gi := range groupSeq {
		if gi == 0 {
			out[mvLevel] = wRow
		} else {
			out[mvLevel] = p.pprime
		}
	}
	return out
}

func (p *prepared) baseResult(g *encode.GFunc) *Result {
	return &Result{
		ErrorBound:  p.tail,
		M:           p.m,
		PL:          p.pl,
		LambdaPrime: p.lethal.Mean(),
		GGates:      g.Netlist.NumGates(),
		BinaryVars:  g.Netlist.NumInputs(),
	}
}

// groupMeta extracts the ordinal→(group, significance) maps from the
// synthesized G.
func groupMeta(g *encode.GFunc) (groupOf []int, bitOf []uint) {
	groupOf = make([]int, g.Netlist.NumInputs())
	bitOf = make([]uint, g.Netlist.NumInputs())
	for gi, grp := range g.Groups {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits {
			groupOf[ord] = gi
			bitOf[ord] = uint(nb - 1 - j)
		}
	}
	return groupOf, bitOf
}

// Evaluate runs the full method of the paper and returns the yield
// estimate with its error bound and the structural statistics of
// Table 4. When Options.Recorder is set, the phases additionally
// report as a span tree and the engine counters flush into the
// registry.
func Evaluate(sys *System, opts Options) (*Result, error) {
	rec := opts.Recorder
	bs := opts.BuildState
	// The publisher starts (and its stop handshake runs) outside the
	// root span, so live publishing does not eat into the inter-phase
	// budget the span-coverage tests bound.
	src := &liveSource{}
	stopLive := startLivePublisher(rec, bs, src)
	defer stopLive()
	evalSpan := rec.Span("evaluate")
	defer evalSpan.End()
	bs.StartPhase(obs.BuildPrepare, 0)
	defer bs.Finish()

	sp := evalSpan.Child("prepare")
	t0 := time.Now()
	p, err := prepare(sys, opts)
	prepDur := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.live = src

	sp = evalSpan.Child("encode")
	t0 = time.Now()
	g, err := encode.BuildG(sys.FaultTree, p.m)
	encDur := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)
	res.Phases.Prepare = prepDur
	res.Phases.Encode = encDur

	sp = evalSpan.Child("order")
	t0 = time.Now()
	plan, err := order.Assemble(g.Netlist, g.Groups, p.opts.MVOrder, p.opts.BitOrder)
	res.Phases.Order = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}

	mm, mroot, err := p.buildModel(evalSpan, g, plan, res)
	if err != nil {
		res.Stats.publish(rec)
		publishResult(rec, res)
		return res, err
	}

	bs.StartPhase(obs.BuildEval, 0)
	sp = evalSpan.Child("eval")
	t0 = time.Now()
	pg1, err := mm.Prob(mroot, p.probTable(plan.GroupSeq))
	res.Phases.Eval = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Yield = 1 - pg1
	res.Stats.publish(rec)
	publishResult(rec, res)
	return res, nil
}

// EvaluateOnCodedROBDD computes the same estimate without ever
// building the ROMDD, by walking bit groups directly on the coded
// ROBDD. It exists as an internal validation route and as the
// conversion-ablation baseline.
func EvaluateOnCodedROBDD(sys *System, opts Options) (*Result, error) {
	t0 := time.Now()
	p, err := prepare(sys, opts)
	prepDur := time.Since(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	g, err := encode.BuildG(sys.FaultTree, p.m)
	encDur := time.Since(t0)
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)
	res.Phases.Prepare = prepDur
	res.Phases.Encode = encDur
	t0 = time.Now()
	plan, err := order.Assemble(g.Netlist, g.Groups, p.opts.MVOrder, p.opts.BitOrder)
	res.Phases.Order = time.Since(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	bm := bdd.New(g.Netlist.NumInputs(), p.opts.bddManagerOptions()...)
	root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
	res.Phases.Compile = time.Since(t0)
	res.Stats.BDD = bm.Stats()
	res.Stats.CompilePeakLive = bm.ResetPeakLive()
	res.ROBDDPeak = res.Stats.CompilePeakLive
	if err != nil {
		return res, fmt.Errorf("yield: compiling coded ROBDD: %w", err)
	}
	res.CodedROBDDSize = bm.Size(root)
	groupOf, bitOf := groupMeta(g)
	spec, err := convert.SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	pg1, err := convert.Prob(bm, root, spec, p.probTable(plan.GroupSeq))
	if err != nil {
		return nil, err
	}
	res.Phases.Eval = time.Since(t0)
	res.Stats.ConvertPeakLive = bm.PeakLive()
	res.ROBDDPeak = max(res.ROBDDPeak, res.Stats.ConvertPeakLive)
	res.Yield = 1 - pg1
	return res, nil
}

// EvaluateDirectMDD builds the ROMDD of G directly with MDD apply
// operations (the route of the ROMDD packages [23, 29] the paper
// argues against) and evaluates on it. For a given MV ordering the
// resulting canonical ROMDD is identical to the converted one; what
// differs is the cost of construction — the quantity the ablation
// benchmark measures.
func EvaluateDirectMDD(sys *System, opts Options) (*Result, error) {
	t0 := time.Now()
	p, err := prepare(sys, opts)
	prepDur := time.Since(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	g, err := encode.BuildG(sys.FaultTree, p.m)
	encDur := time.Since(t0)
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)
	res.Phases.Prepare = prepDur
	res.Phases.Encode = encDur
	// The heuristic orderings are defined on the binary netlist, so
	// compute the plan exactly as the main route does and reuse its
	// group sequence.
	t0 = time.Now()
	plan, err := order.Assemble(g.Netlist, g.Groups, p.opts.MVOrder, p.opts.BitOrder)
	res.Phases.Order = time.Since(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	mm, mroot, err := buildDirectMDD(sys.FaultTree, p.m, len(sys.Components), plan.GroupSeq, p.opts.NodeLimit)
	if err != nil {
		return res, fmt.Errorf("yield: direct ROMDD construction: %w", err)
	}
	res.Phases.Convert = time.Since(t0)
	res.Stats.MDD = mm.BuildStats()
	res.ROMDDSize = mm.Size(mroot)
	t0 = time.Now()
	pg1, err := mm.Prob(mroot, p.probTable(plan.GroupSeq))
	if err != nil {
		return nil, err
	}
	res.Phases.Eval = time.Since(t0)
	res.Yield = 1 - pg1
	return res, nil
}

// buildDirectMDD constructs G(w, v_1..v_M) directly as an ROMDD: the
// filter gates become MDD literals and the fault tree is applied gate
// by gate.
func buildDirectMDD(f *logic.Netlist, m, c int, groupSeq []int, nodeLimit int) (*mdd.Manager, mdd.Node, error) {
	mvLevelOf := make([]int, len(groupSeq))
	domains := make([]int, len(groupSeq))
	naturalDomains := make([]int, len(groupSeq))
	naturalDomains[0] = m + 2
	for l := 1; l <= m; l++ {
		naturalDomains[l] = c
	}
	for mvLevel, gi := range groupSeq {
		mvLevelOf[gi] = mvLevel
		domains[mvLevel] = naturalDomains[gi]
	}
	mm, err := mdd.New(domains, mdd.WithNodeLimit(nodeLimit))
	if err != nil {
		return nil, mdd.False, err
	}
	wLevel := mvLevelOf[0]
	// x_i = ⋁_l [w ≥ l] ∧ [v_l = i].
	xs := make([]mdd.Node, c)
	for i := range xs {
		xs[i] = mdd.False
	}
	for l := 1; l <= m; l++ {
		geq, err := mm.LiteralGeq(wLevel, l)
		if err != nil {
			return nil, mdd.False, err
		}
		for i := 0; i < c; i++ {
			eq, err := mm.LiteralEq(mvLevelOf[l], i)
			if err != nil {
				return nil, mdd.False, err
			}
			term, err := mm.And(geq, eq)
			if err != nil {
				return nil, mdd.False, err
			}
			xs[i], err = mm.Or(xs[i], term)
			if err != nil {
				return nil, mdd.False, err
			}
		}
	}
	fOut, err := applyNetlistMDD(mm, f, xs)
	if err != nil {
		return nil, mdd.False, err
	}
	sat, err := mm.LiteralGeq(wLevel, m+1)
	if err != nil {
		return nil, mdd.False, err
	}
	root, err := mm.Or(sat, fOut)
	if err != nil {
		return nil, mdd.False, err
	}
	return mm, root, nil
}

// applyNetlistMDD evaluates a netlist over MDD-valued inputs.
func applyNetlistMDD(mm *mdd.Manager, f *logic.Netlist, inputs []mdd.Node) (mdd.Node, error) {
	out, ok := f.Output()
	if !ok {
		return mdd.False, logic.ErrNoOutput
	}
	vals := make(map[logic.GateID]mdd.Node, f.NumNodes())
	var verr error
	if err := f.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		if verr != nil {
			return
		}
		var r mdd.Node
		var err error
		switch g.Kind {
		case logic.InputKind:
			r = inputs[f.InputOrdinal(id)]
		case logic.ConstKind:
			r = mdd.False
			if g.Value {
				r = mdd.True
			}
		case logic.NotKind:
			r, err = mm.Not(vals[g.Fanin[0]])
		case logic.AndKind, logic.NandKind:
			r = mdd.True
			for _, fid := range g.Fanin {
				if r, err = mm.And(r, vals[fid]); err != nil {
					break
				}
			}
			if err == nil && g.Kind == logic.NandKind {
				r, err = mm.Not(r)
			}
		case logic.OrKind, logic.NorKind:
			r = mdd.False
			for _, fid := range g.Fanin {
				if r, err = mm.Or(r, vals[fid]); err != nil {
					break
				}
			}
			if err == nil && g.Kind == logic.NorKind {
				r, err = mm.Not(r)
			}
		case logic.XorKind, logic.XnorKind:
			r = mdd.False
			for _, fid := range g.Fanin {
				if r, err = mm.Xor(r, vals[fid]); err != nil {
					break
				}
			}
			if err == nil && g.Kind == logic.XnorKind {
				r, err = mm.Not(r)
			}
		default:
			err = fmt.Errorf("yield: unknown gate kind %v", g.Kind)
		}
		if err != nil {
			verr = err
			return
		}
		vals[id] = r
	}); err != nil {
		return mdd.False, err
	}
	if verr != nil {
		return mdd.False, verr
	}
	return vals[out], nil
}

// maxBruteForceComponents bounds the exact reference evaluator.
const maxBruteForceComponents = 20

// BruteForce computes Y_M exactly (up to float64 rounding) by
// inclusion–exclusion over failed-component sets; it is exponential in
// C and restricted to C ≤ 20. It shares the model preparation with
// Evaluate, so it validates everything downstream of the distribution
// arithmetic.
func BruteForce(sys *System, opts Options) (*Result, error) {
	p, err := prepare(sys, opts)
	if err != nil {
		return nil, err
	}
	c := len(sys.Components)
	if c > maxBruteForceComponents {
		return nil, fmt.Errorf("yield: brute force limited to %d components, system has %d", maxBruteForceComponents, c)
	}
	// subsetP[mask] = Σ_{i ∈ mask} P'_i.
	size := 1 << c
	subsetP := make([]float64, size)
	for mask := 1; mask < size; mask++ {
		low := mask & (-mask)
		i := 0
		for 1<<i != low {
			i++
		}
		subsetP[mask] = subsetP[mask^low] + p.pprime[i]
	}
	// functioning[mask]: F(mask) == 0.
	functioning := make([]bool, size)
	assign := make([]bool, c)
	for mask := 0; mask < size; mask++ {
		for i := 0; i < c; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		v, err := sys.FaultTree.Eval(assign)
		if err != nil {
			return nil, err
		}
		functioning[mask] = !v
	}
	yield := 0.0
	work := make([]float64, size)
	for k := 0; k <= p.m; k++ {
		if p.qprime[k] == 0 {
			continue
		}
		// work[mask] = P(all k lethal defects land within mask)
		// = subsetP[mask]^k; then the Möbius transform over the subset
		// lattice turns it into P(failed set == mask).
		for mask := 0; mask < size; mask++ {
			work[mask] = math.Pow(subsetP[mask], float64(k))
		}
		for bit := 0; bit < c; bit++ {
			for mask := 0; mask < size; mask++ {
				if mask&(1<<bit) != 0 {
					work[mask] -= work[mask^(1<<bit)]
				}
			}
		}
		yk := 0.0
		for mask := 0; mask < size; mask++ {
			if functioning[mask] {
				yk += work[mask]
			}
		}
		yield += p.qprime[k] * yk
	}
	g, err := encode.BuildG(sys.FaultTree, p.m)
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)
	res.Yield = yield
	return res, nil
}
