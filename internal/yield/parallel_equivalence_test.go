package yield

import (
	"fmt"
	"math/rand"
	"testing"

	"socyield/internal/order"
)

// TestParallelBuildEquivalence runs the full pipeline on randomized
// fault trees with the serial reference engine (BuildWorkers=1) and
// with the concurrent build engine at several worker counts, and
// asserts the results are identical to the last bit. Both engines are
// canonical for the same variable order, so they compile the same
// coded ROBDD function, the layer-parallel conversion builds the same
// ROMDD through the same reducing unique table, and the probability
// traversal — which depends only on the ROMDD's structure, never on
// node numbering or scheduling — performs the same float64 operations:
// yield, M, error bound and both diagram sizes must match under ==,
// not a tolerance, for every worker count.
func TestParallelBuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	mvKinds := []order.MVKind{order.MVWeight, order.MVWV, order.MVVW, order.MVTopology, order.MVH4}
	workerCounts := []int{2, 4, 8}
	trees := 25
	if testing.Short() {
		trees = 8
	}
	for i := 0; i < trees; i++ {
		c := 3 + rng.Intn(5) // 3..7 components
		sys := randomOracleSystem(rng, c)
		dist := randomDistribution(rng)
		eps := []float64{5e-2, 1e-2, 2e-3}[rng.Intn(3)]
		opts := Options{
			Defects:      dist,
			Epsilon:      eps,
			MVOrder:      mvKinds[rng.Intn(len(mvKinds))],
			BuildWorkers: 1,
		}
		name := fmt.Sprintf("tree %d (C=%d, %v, ε=%g, mv=%v)", i, c, dist, eps, opts.MVOrder)

		serial, err := Evaluate(sys, opts)
		if err != nil {
			t.Fatalf("%s: serial evaluate: %v", name, err)
		}
		if serial.Stats.BuildWorkers != 1 {
			t.Fatalf("%s: serial run reports BuildWorkers=%d", name, serial.Stats.BuildWorkers)
		}
		for _, workers := range workerCounts {
			popts := opts
			popts.BuildWorkers = workers
			par, err := Evaluate(sys, popts)
			if err != nil {
				t.Fatalf("%s: parallel evaluate (workers=%d): %v", name, workers, err)
			}
			if par.Stats.BuildWorkers != workers {
				t.Errorf("%s: parallel run reports BuildWorkers=%d, want %d", name, par.Stats.BuildWorkers, workers)
			}
			if par.M != serial.M {
				t.Errorf("%s workers=%d: truncation point differs: %d vs %d", name, workers, par.M, serial.M)
			}
			if par.Yield != serial.Yield {
				t.Errorf("%s workers=%d: Y_M differs: %.17g vs %.17g", name, workers, par.Yield, serial.Yield)
			}
			if par.ErrorBound != serial.ErrorBound {
				t.Errorf("%s workers=%d: error bound differs: %.17g vs %.17g", name, workers, par.ErrorBound, serial.ErrorBound)
			}
			// Both diagrams are canonical for the variable order, so the
			// sizes cannot depend on the engine or its scheduling.
			if par.CodedROBDDSize != serial.CodedROBDDSize {
				t.Errorf("%s workers=%d: coded ROBDD size differs: %d vs %d", name, workers, par.CodedROBDDSize, serial.CodedROBDDSize)
			}
			if par.ROMDDSize != serial.ROMDDSize {
				t.Errorf("%s workers=%d: ROMDD size differs: %d vs %d", name, workers, par.ROMDDSize, serial.ROMDDSize)
			}
			// The conversion statistics are layer-set cardinalities and
			// simulation counts over the same entry sets — deterministic.
			if par.Stats.Convert.SimSteps != serial.Stats.Convert.SimSteps {
				t.Errorf("%s workers=%d: SimSteps differ: %d vs %d", name, workers, par.Stats.Convert.SimSteps, serial.Stats.Convert.SimSteps)
			}
			for g := range serial.Stats.Convert.EntryNodes {
				if par.Stats.Convert.EntryNodes[g] != serial.Stats.Convert.EntryNodes[g] {
					t.Errorf("%s workers=%d: EntryNodes[%d] differ: %d vs %d", name, workers, g,
						par.Stats.Convert.EntryNodes[g], serial.Stats.Convert.EntryNodes[g])
				}
			}
		}
	}
}

// TestParallelBuildReevaluator checks the Reevaluator route: a sweep
// on a concurrently built model must be bit-identical to the same
// sweep on a serially built one.
func TestParallelBuildReevaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys := randomOracleSystem(rng, 5)
	dist := randomDistribution(rng)
	base := Options{Defects: dist, Epsilon: 1e-2, BuildWorkers: 1}
	rs, err := NewReevaluator(sys, base)
	if err != nil {
		t.Fatalf("serial reevaluator: %v", err)
	}
	par := base
	par.BuildWorkers = 4
	rp, err := NewReevaluator(sys, par)
	if err != nil {
		t.Fatalf("parallel reevaluator: %v", err)
	}
	if rs.Result.Yield != rp.Result.Yield || rs.Result.ROMDDSize != rp.Result.ROMDDSize {
		t.Fatalf("build results differ: yield %.17g vs %.17g, romdd %d vs %d",
			rs.Result.Yield, rp.Result.Yield, rs.Result.ROMDDSize, rp.Result.ROMDDSize)
	}
	ps := make([]float64, len(sys.Components))
	for i := range ps {
		ps[i] = 0.01 + 0.1*float64(i+1)/float64(len(ps))
	}
	ys, _, err := rs.Yield(ps, dist)
	if err != nil {
		t.Fatal(err)
	}
	yp, _, err := rp.Yield(ps, dist)
	if err != nil {
		t.Fatal(err)
	}
	if ys != yp {
		t.Fatalf("reevaluated yields differ: %.17g vs %.17g", ys, yp)
	}
}

// TestBuildWorkersValidation pins the option semantics: negative is
// rejected, zero resolves to GOMAXPROCS (≥ 1).
func TestBuildWorkersValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := randomOracleSystem(rng, 3)
	dist := randomDistribution(rng)
	if _, err := Evaluate(sys, Options{Defects: dist, BuildWorkers: -1}); err == nil {
		t.Fatal("BuildWorkers=-1 accepted")
	}
	res, err := Evaluate(sys, Options{Defects: dist})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BuildWorkers < 1 {
		t.Fatalf("default BuildWorkers resolved to %d", res.Stats.BuildWorkers)
	}
}
