package yield

import (
	"socyield/internal/bdd"
	"socyield/internal/convert"
	"socyield/internal/mdd"
	"socyield/internal/obs"
)

// EngineStats aggregates the instrumentation of one evaluation's
// decision-diagram engines: what the ROBDD apply cache and unique
// table did during compilation, what the MDD unique table did during
// conversion, and how much per-layer work the conversion itself
// performed. It is cheap to collect (plain counter snapshots), so it is
// filled in on every run; Options.Recorder additionally streams the
// same data into a metrics registry.
type EngineStats struct {
	// BDD snapshots the coded-ROBDD manager after compilation.
	BDD bdd.Stats
	// MDD snapshots the ROMDD manager after conversion (or direct
	// construction on the ablation route).
	MDD mdd.BuildStats
	// Convert carries the per-layer conversion work (entry nodes per MV
	// level, codeword simulation steps). Empty on routes that skip the
	// conversion.
	Convert convert.Stats
	// CompilePeakLive and ConvertPeakLive split the ROBDD manager's
	// live-node high-water mark by pipeline phase: the peak reached
	// while compiling the coded ROBDD, and the peak reached afterwards
	// while the conversion (or the direct coded-ROBDD evaluation) reads
	// it. Result.ROBDDPeak is their maximum.
	CompilePeakLive int
	ConvertPeakLive int
	// ROMDDPerLevel is the final ROMDD's node count per MV level;
	// ROMDDMaxWidth its widest level.
	ROMDDPerLevel []int
	ROMDDMaxWidth int
	// ROBDDToROMDDRatio is CodedROBDDSize / ROMDDSize — the paper's
	// consensus measurement that the coded ROBDD is the larger of the
	// two (0 when either size is unknown).
	ROBDDToROMDDRatio float64
	// BuildWorkers is the resolved worker count the build phases ran
	// with (1 = serial reference engine). CompileTasks and
	// CompileSteals report the work-stealing compile pool's task-DAG
	// size and cross-worker steal count; together with
	// BDD.ShardContention and BDD.CacheContention they quantify how
	// much the concurrent engine's workers got in each other's way.
	// All zero (BuildWorkers 1) on serial builds.
	BuildWorkers  int
	CompileTasks  int64
	CompileSteals int64
}

// publish flushes the engine stats into a metrics registry. Counter
// names accumulate across runs sharing one registry; gauges reflect the
// most recent run. No-op when rec is nil.
func (s *EngineStats) publish(rec *obs.Registry) {
	if rec == nil {
		return
	}
	rec.Counter("bdd.apply_cache_hits").Add(s.BDD.ApplyCacheHits)
	rec.Counter("bdd.apply_cache_misses").Add(s.BDD.ApplyCacheMisses)
	rec.Counter("bdd.unique_table_hits").Add(s.BDD.UniqueTableHits)
	rec.Counter("bdd.unique_table_growths").Add(s.BDD.UniqueTableGrowths)
	rec.Counter("bdd.nodes_created").Add(s.BDD.NodesCreated)
	rec.Counter("bdd.gc_runs").Add(int64(s.BDD.GCs))
	rec.Counter("bdd.gc_freed").Add(s.BDD.GCFreed)
	rec.Gauge("bdd.live").Set(int64(s.BDD.Live))
	rec.Gauge("bdd.peak_live").SetMax(int64(s.BDD.PeakLive))
	rec.Gauge("bdd.peak_live_compile").SetMax(int64(s.CompilePeakLive))
	rec.Gauge("bdd.peak_live_convert").SetMax(int64(s.ConvertPeakLive))
	rec.Gauge("bdd.arena_nodes").Set(int64(s.BDD.ArenaNodes))
	rec.Gauge("bdd.unique_table_buckets").Set(int64(s.BDD.UniqueTableBuckets))
	rec.Gauge("bdd.apply_cache_entries").Set(int64(s.BDD.ApplyCacheSize))
	rec.Gauge("build.workers").Set(int64(s.BuildWorkers))
	rec.Counter("compile.tasks").Add(s.CompileTasks)
	rec.Counter("compile.steals").Add(s.CompileSteals)
	rec.Counter("bdd.shard_contention").Add(s.BDD.ShardContention)
	rec.Counter("bdd.cache_contention").Add(s.BDD.CacheContention)

	rec.Counter("mdd.unique_table_hits").Add(s.MDD.UniqueTableHits)
	rec.Counter("mdd.nodes_created").Add(s.MDD.NodesCreated)
	rec.Counter("mdd.reductions").Add(s.MDD.Reductions)
	rec.Counter("mdd.apply_memo_hits").Add(s.MDD.ApplyMemoHits)
	rec.Counter("mdd.apply_memo_misses").Add(s.MDD.ApplyMemoMisses)
	rec.Gauge("mdd.nodes").Set(int64(s.MDD.Nodes))

	var entries int64
	for _, n := range s.Convert.EntryNodes {
		entries += n
	}
	rec.Counter("convert.entry_nodes").Add(entries)
	rec.Counter("convert.sim_steps").Add(s.Convert.SimSteps)
	rec.Gauge("romdd.max_width").Set(int64(s.ROMDDMaxWidth))
	if s.ROBDDToROMDDRatio > 0 {
		rec.FloatGauge("convert.robdd_to_romdd_ratio").Set(s.ROBDDToROMDDRatio)
	}
}

// publishResult records the structural outcome of one evaluation as
// gauges (last run wins on a shared registry). No-op when rec is nil.
func publishResult(rec *obs.Registry, res *Result) {
	if rec == nil || res == nil {
		return
	}
	rec.Gauge("yield.m").Set(int64(res.M))
	rec.Gauge("yield.g_gates").Set(int64(res.GGates))
	rec.Gauge("yield.binary_vars").Set(int64(res.BinaryVars))
	rec.Gauge("yield.coded_robdd_nodes").Set(int64(res.CodedROBDDSize))
	rec.Gauge("yield.robdd_peak").SetMax(int64(res.ROBDDPeak))
	rec.Gauge("yield.romdd_nodes").Set(int64(res.ROMDDSize))
	rec.FloatGauge("yield.value").Set(res.Yield)
	rec.FloatGauge("yield.error_bound").Set(res.ErrorBound)
	rec.FloatGauge("yield.lambda_prime").Set(res.LambdaPrime)
}
