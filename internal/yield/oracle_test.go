package yield

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/order"
)

// randomOracleSystem builds a random fault tree over c components: a DAG of
// and/or/not/xor/atleast gates whose operands are drawn from the
// already-built nodes, with random (positive, P_L ≤ 1) lethalities.
func randomOracleSystem(rng *rand.Rand, c int) *System {
	n := logic.New()
	pool := make([]logic.GateID, 0, 32)
	for i := 0; i < c; i++ {
		pool = append(pool, n.Input(fmt.Sprintf("x%d", i)))
	}
	if rng.Intn(8) == 0 {
		pool = append(pool, n.Const(rng.Intn(2) == 0))
	}
	gates := 1 + rng.Intn(12)
	for g := 0; g < gates; g++ {
		pick := func() logic.GateID { return pool[rng.Intn(len(pool))] }
		var id logic.GateID
		switch rng.Intn(6) {
		case 0:
			id = n.Not(pick())
		case 1:
			id = n.And(pick(), pick())
		case 2:
			id = n.Or(pick(), pick())
		case 3:
			id = n.Xor(pick(), pick())
		case 4:
			id = n.And(pick(), pick(), pick())
		default:
			id = n.AtLeast(2, pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	// Root the output in a disjunction of late nodes so it usually
	// depends on a good fraction of the inputs.
	out := n.Or(pool[len(pool)-1], pool[rng.Intn(len(pool))])
	n.SetOutput(out)

	sys := &System{Name: "random", FaultTree: n}
	budget := 0.2 + 0.75*rng.Float64() // P_L ∈ (0.2, 0.95)
	raw := make([]float64, c)
	sum := 0.0
	for i := range raw {
		raw[i] = 0.05 + rng.Float64()
		sum += raw[i]
	}
	for i := 0; i < c; i++ {
		sys.Components = append(sys.Components, Component{
			Name: fmt.Sprintf("x%d", i),
			P:    budget * raw[i] / sum,
		})
	}
	return sys
}

// randomDistribution draws a defect model from every family the
// package ships, parameterized to keep truncation points small.
func randomDistribution(rng *rand.Rand) defects.Distribution {
	switch rng.Intn(4) {
	case 0:
		d, _ := defects.NewNegativeBinomial(0.25+2*rng.Float64(), 0.25+3*rng.Float64())
		return d
	case 1:
		d, _ := defects.NewPoisson(0.25 + 2*rng.Float64())
		return d
	case 2:
		return defects.Geometric{Lambda: 0.25 + 1.5*rng.Float64()}
	default:
		return defects.Deterministic{N: 1 + rng.Intn(4)}
	}
}

// TestOracleDifferential compares the full ROMDD pipeline against the
// exact-enumeration oracle on randomized fault trees across defect
// families, orderings and ε. The oracle shares only the model
// preparation and the G synthesis with the pipeline (and exhaustively
// cross-checks the synthesis against the raw fault tree on every
// assignment), so agreement here certifies the ordering, compilation,
// conversion and traversal stages end to end.
func TestOracleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20030622))
	mvKinds := []order.MVKind{order.MVWeight, order.MVWV, order.MVVW, order.MVTopology, order.MVH4}
	trees := 50
	if testing.Short() {
		trees = 12
	}
	for i := 0; i < trees; i++ {
		c := 3 + rng.Intn(4) // 3..6 components
		sys := randomOracleSystem(rng, c)
		dist := randomDistribution(rng)
		eps := []float64{5e-2, 1e-2, 2e-3}[rng.Intn(3)]
		opts := Options{
			Defects: dist,
			Epsilon: eps,
			MVOrder: mvKinds[rng.Intn(len(mvKinds))],
		}
		name := fmt.Sprintf("tree %d (C=%d, %v, ε=%g, mv=%v)", i, c, dist, eps, opts.MVOrder)

		exact, err := ExactYield(sys, opts)
		if err != nil {
			t.Fatalf("%s: ExactYield: %v", name, err)
		}
		got, err := Evaluate(sys, opts)
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", name, err)
		}
		if got.M != exact.M {
			t.Fatalf("%s: pipeline M=%d, oracle M=%d", name, got.M, exact.M)
		}
		if diff := math.Abs(got.Yield - exact.Yield); diff > 1e-12 {
			t.Errorf("%s: pipeline yield %.17g, oracle %.17g (diff %.3g)", name, got.Yield, exact.Yield, diff)
		}
		if got.Yield < 0 || got.Yield > 1 {
			t.Errorf("%s: yield %v outside [0,1]", name, got.Yield)
		}
		// Every fourth tree, check the secondary evaluation routes and
		// the small-system inclusion–exclusion reference too.
		if i%4 == 0 {
			onBDD, err := EvaluateOnCodedROBDD(sys, opts)
			if err != nil {
				t.Fatalf("%s: EvaluateOnCodedROBDD: %v", name, err)
			}
			if diff := math.Abs(onBDD.Yield - exact.Yield); diff > 1e-12 {
				t.Errorf("%s: coded-ROBDD walk yield %.17g, oracle %.17g (diff %.3g)", name, onBDD.Yield, exact.Yield, diff)
			}
			bf, err := BruteForce(sys, opts)
			if err != nil {
				t.Fatalf("%s: BruteForce: %v", name, err)
			}
			if diff := math.Abs(bf.Yield - exact.Yield); diff > 1e-11 {
				t.Errorf("%s: inclusion–exclusion yield %.17g, oracle %.17g (diff %.3g)", name, bf.Yield, exact.Yield, diff)
			}
		}
	}
}

// TestOracleMatchesBruteForceTMR pins the oracle on the documented TMR
// example where the closed form is easy to trust.
func TestOracleMatchesBruteForceTMR(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	for _, eps := range []float64{5e-2, 5e-3, 1e-4} {
		opts := Options{Defects: dist, Epsilon: eps}
		exact, err := ExactYield(sys, opts)
		if err != nil {
			t.Fatalf("ExactYield(ε=%g): %v", eps, err)
		}
		bf, err := BruteForce(sys, opts)
		if err != nil {
			t.Fatalf("BruteForce(ε=%g): %v", eps, err)
		}
		if diff := math.Abs(exact.Yield - bf.Yield); diff > 1e-12 {
			t.Errorf("ε=%g: oracle %.17g, brute force %.17g (diff %.3g)", eps, exact.Yield, bf.Yield, diff)
		}
		if exact.ErrorBound > eps {
			t.Errorf("ε=%g: error bound %v exceeds ε", eps, exact.ErrorBound)
		}
	}
}

// TestOracleGuards exercises the component and assignment budgets.
func TestOracleGuards(t *testing.T) {
	big := &System{Name: "big", FaultTree: logic.New()}
	var ins []logic.GateID
	for i := 0; i < 13; i++ {
		ins = append(ins, big.FaultTree.Input(fmt.Sprintf("x%d", i)))
		big.Components = append(big.Components, Component{Name: fmt.Sprintf("x%d", i), P: 0.05})
	}
	big.FaultTree.SetOutput(big.FaultTree.Or(ins...))
	if _, err := ExactYield(big, Options{Defects: defects.Poisson{Lambda: 1}}); err == nil {
		t.Error("expected component-count guard to fire for C=13")
	}

	sys := tmrSystem(0.2, 0.15, 0.15)
	// ε small enough to force an M whose 3^M enumeration exceeds 2^24.
	if _, err := ExactYield(sys, Options{Defects: defects.Deterministic{N: 60}, Epsilon: 1e-6}); err == nil {
		t.Error("expected assignment-budget guard to fire")
	}
}
