package yield

import (
	"testing"

	"socyield/internal/defects"
	"socyield/internal/obs"
)

// TestEvaluateRecorder drives one full evaluation with a recorder
// attached and checks the instrumentation contract the CLI's
// -metrics-json output depends on: nonzero apply-cache activity, the
// truncation point M published as a gauge, engine stats mirrored in
// Result.Stats, and a span tree whose phase children cover (nearly all
// of) the root evaluation span.
func TestEvaluateRecorder(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist, err := defects.NewNegativeBinomial(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRegistry()
	res, err := Evaluate(sys, Options{Defects: dist, Epsilon: 1e-4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	snap := rec.Snapshot()
	hits := snap.Counters["bdd.apply_cache_hits"]
	misses := snap.Counters["bdd.apply_cache_misses"]
	if misses <= 0 {
		t.Errorf("bdd.apply_cache_misses = %d, want > 0", misses)
	}
	if hits < 0 {
		t.Errorf("bdd.apply_cache_hits = %d, want ≥ 0", hits)
	}
	if created := snap.Counters["bdd.nodes_created"]; created <= 0 {
		t.Errorf("bdd.nodes_created = %d, want > 0", created)
	}
	if n := snap.Counters["mdd.nodes_created"]; n <= 0 {
		t.Errorf("mdd.nodes_created = %d, want > 0", n)
	}
	if m := snap.Gauges["yield.m"]; m != int64(res.M) {
		t.Errorf("yield.m gauge = %d, want %d", m, res.M)
	}
	if y := snap.FloatGauges["yield.value"]; y != res.Yield {
		t.Errorf("yield.value gauge = %v, want %v", y, res.Yield)
	}
	if b := snap.FloatGauges["yield.error_bound"]; b != res.ErrorBound {
		t.Errorf("yield.error_bound gauge = %v, want %v", b, res.ErrorBound)
	}

	// Result.Stats must mirror what was published.
	if res.Stats.BDD.ApplyCacheMisses != misses {
		t.Errorf("Result.Stats misses = %d, registry %d", res.Stats.BDD.ApplyCacheMisses, misses)
	}
	if res.Stats.MDD.Nodes <= 0 {
		t.Errorf("Result.Stats.MDD.Nodes = %d, want > 0", res.Stats.MDD.Nodes)
	}
	if len(res.Stats.Convert.EntryNodes) == 0 {
		t.Error("Result.Stats.Convert.EntryNodes empty")
	}
	if res.Stats.ROBDDToROMDDRatio <= 0 {
		t.Errorf("ROBDDToROMDDRatio = %v, want > 0", res.Stats.ROBDDToROMDDRatio)
	}

	// Span tree: one ended root named "evaluate" whose phase children
	// cover ≥ 95% of its duration.
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(snap.Spans))
	}
	root := snap.Spans[0]
	if root.Name != "evaluate" || root.Running {
		t.Fatalf("root span = %+v, want ended 'evaluate'", root)
	}
	want := map[string]bool{
		"prepare": false, "encode": false, "order": false,
		"compile": false, "convert": false, "eval": false,
	}
	covered := 0.0
	for _, c := range root.Children {
		if _, ok := want[c.Name]; !ok {
			t.Errorf("unexpected phase span %q", c.Name)
			continue
		}
		want[c.Name] = true
		covered += c.Seconds
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("phase span %q missing", name)
		}
	}
	if root.Seconds > 0 && covered < 0.95*root.Seconds {
		t.Errorf("phase spans cover %.1f%% of the root span, want ≥ 95%%", 100*covered/root.Seconds)
	}

	// Phases durations must be consistent with the span totals.
	if res.Phases.Total() <= 0 {
		t.Error("Phases.Total() not positive")
	}
}

// TestEvaluateNilRecorder checks the disabled path end to end: nil
// recorder, identical numeric result, zeroed registry interactions.
func TestEvaluateNilRecorder(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist, err := defects.NewNegativeBinomial(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Evaluate(sys, Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRegistry()
	instr, err := Evaluate(sys, Options{Defects: dist, Epsilon: 1e-4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Yield != instr.Yield || plain.ErrorBound != instr.ErrorBound || plain.M != instr.M {
		t.Errorf("instrumented run changed the result: %v/%v vs %v/%v",
			plain.Yield, plain.ErrorBound, instr.Yield, instr.ErrorBound)
	}
	// Stats are collected even without a recorder (plain snapshots).
	if plain.Stats.BDD.NodesCreated <= 0 {
		t.Errorf("nil-recorder run lost engine stats: %+v", plain.Stats.BDD)
	}
}

// TestReevaluatorRecorder checks the build-once path fills Phases (the
// -bench-json split) and streams sweep metrics.
func TestReevaluatorRecorder(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist, err := defects.NewNegativeBinomial(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRegistry()
	re, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 1e-4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if re.Result.Phases.Total() <= 0 {
		t.Error("reevaluator build did not fill Result.Phases")
	}
	if re.Result.Stats.BDD.NodesCreated <= 0 {
		t.Error("reevaluator build did not fill Result.Stats")
	}

	dists := make([]defects.Distribution, 8)
	for i := range dists {
		d, err := defects.NewNegativeBinomial(0.5+0.25*float64(i), 2)
		if err != nil {
			t.Fatal(err)
		}
		dists[i] = d
	}
	ps := []float64{0.2, 0.15, 0.15}
	out := re.Sweep(LambdaGrid(ps, dists), SweepOptions{Workers: 2, Recorder: rec})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("sweep point %d: %v", i, r.Err)
		}
	}
	snap := rec.Snapshot()
	if n := snap.Counters["sweep.points"]; n != int64(len(dists)) {
		t.Errorf("sweep.points = %d, want %d", n, len(dists))
	}
	if snap.Histograms["sweep.point_ns"].Count != int64(len(dists)) {
		t.Errorf("sweep.point_ns count = %d, want %d", snap.Histograms["sweep.point_ns"].Count, len(dists))
	}
	if busy := snap.Counters["sweep.busy_ns"]; busy <= 0 {
		t.Errorf("sweep.busy_ns = %d, want > 0", busy)
	}
	if w := snap.Gauges["sweep.workers"]; w != 2 {
		t.Errorf("sweep.workers = %d, want 2", w)
	}

	// An uninstrumented sweep must agree bit for bit.
	plain := re.Sweep(LambdaGrid(ps, dists), SweepOptions{Workers: 1})
	for i := range out {
		if out[i] != plain[i] {
			t.Errorf("instrumented sweep point %d differs: %+v vs %+v", i, out[i], plain[i])
		}
	}
}
