package yield

import (
	"math"
	"testing"

	"socyield/internal/defects"
)

func TestReevaluatorMatchesEvaluate(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	opts := Options{Defects: dist, Epsilon: 5e-3}
	r, err := NewReevaluator(sys, opts)
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	base, err := Evaluate(sys, opts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(r.Result.Yield-base.Yield) > 1e-14 {
		t.Errorf("construction yield %v != Evaluate %v", r.Result.Yield, base.Yield)
	}
	if r.M() != base.M {
		t.Errorf("M = %d, want %d", r.M(), base.M)
	}
	// Reevaluating the identical model reproduces the yield.
	ps := []float64{0.2, 0.15, 0.15}
	y, bound, err := r.Yield(ps, dist)
	if err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if math.Abs(y-base.Yield) > 1e-14 {
		t.Errorf("reevaluated %v, want %v", y, base.Yield)
	}
	if math.Abs(bound-base.ErrorBound) > 1e-14 {
		t.Errorf("bound %v, want %v", bound, base.ErrorBound)
	}
}

func TestReevaluatorSweepsMatchEvaluate(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	r, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	// Sweep component weights; each point must match a fresh Evaluate
	// forced to the same truncation point.
	for _, ps := range [][]float64{
		{0.1, 0.1, 0.1},
		{0.3, 0.1, 0.05},
		{0.05, 0.25, 0.2},
	} {
		y, _, err := r.Yield(ps, dist)
		if err != nil {
			t.Fatalf("Yield(%v): %v", ps, err)
		}
		fresh := &System{Name: "sweep", FaultTree: sys.FaultTree, Components: []Component{
			{Name: "m1", P: ps[0]}, {Name: "m2", P: ps[1]}, {Name: "m3", P: ps[2]},
		}}
		want, err := Evaluate(fresh, Options{Defects: dist, Epsilon: 5e-3, ForceM: r.M(), ForceMSet: true})
		if err != nil {
			t.Fatalf("Evaluate(%v): %v", ps, err)
		}
		if math.Abs(y-want.Yield) > 1e-12 {
			t.Errorf("ps=%v: reeval %v, fresh %v", ps, y, want.Yield)
		}
	}
	// Sweeping the distribution too.
	y, _, err := r.Yield([]float64{0.2, 0.15, 0.15}, defects.Poisson{Lambda: 1})
	if err != nil {
		t.Fatalf("Yield with Poisson: %v", err)
	}
	want, err := Evaluate(sys, Options{Defects: defects.Poisson{Lambda: 1}, Epsilon: 5e-3, ForceM: r.M(), ForceMSet: true})
	if err != nil {
		t.Fatalf("Evaluate Poisson: %v", err)
	}
	if math.Abs(y-want.Yield) > 1e-12 {
		t.Errorf("Poisson sweep: reeval %v, fresh %v", y, want.Yield)
	}
}

func TestReevaluatorValidation(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	r, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	if _, _, err := r.Yield([]float64{0.1}, dist); err == nil {
		t.Error("short ps accepted")
	}
	if _, _, err := r.Yield([]float64{-0.1, 0.1, 0.1}, dist); err == nil {
		t.Error("negative P accepted")
	}
	if _, _, err := r.Yield([]float64{0, 0, 0}, dist); err == nil {
		t.Error("P_L = 0 accepted")
	}
	if _, _, err := r.Yield([]float64{0.9, 0.9, 0.9}, dist); err == nil {
		t.Error("P_L > 1 accepted")
	}
	if _, err := r.YieldRaw([]float64{1, 0, 0}, []float64{1}, 0); err == nil {
		t.Error("wrong qprime length accepted")
	}
	if _, err := r.YieldRaw([]float64{1, 0}, make([]float64, r.M()+1), 0); err == nil {
		t.Error("wrong pprime length accepted")
	}
}

func TestSensitivities(t *testing.T) {
	// Series system: Y = Q'_0(P_L) — every component's sensitivity is
	// the same and strictly negative (more lethality, less yield).
	sys := seriesSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	r, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	ps := []float64{0.2, 0.15, 0.15}
	sens, err := r.Sensitivities(ps, dist, 0)
	if err != nil {
		t.Fatalf("Sensitivities: %v", err)
	}
	for i, s := range sens {
		if s >= 0 {
			t.Errorf("component %d: sensitivity %v, want < 0", i, s)
		}
	}
	// In a series system the structure treats components identically,
	// so sensitivities must be (numerically) equal.
	if math.Abs(sens[0]-sens[1]) > 1e-6 || math.Abs(sens[1]-sens[2]) > 1e-6 {
		t.Errorf("series sensitivities differ: %v", sens)
	}
	// Validate against a direct finite difference through Evaluate.
	const d = 1e-5
	bump := &System{Name: "s", FaultTree: sys.FaultTree, Components: []Component{
		{Name: "c1", P: 0.2 + d}, {Name: "c2", P: 0.15}, {Name: "c3", P: 0.15},
	}}
	down := &System{Name: "s", FaultTree: sys.FaultTree, Components: []Component{
		{Name: "c1", P: 0.2 - d}, {Name: "c2", P: 0.15}, {Name: "c3", P: 0.15},
	}}
	o := Options{Defects: dist, Epsilon: 5e-3, ForceM: r.M(), ForceMSet: true}
	hi, err := Evaluate(bump, o)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	lo, err := Evaluate(down, o)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := (hi.Yield - lo.Yield) / (2 * d)
	if math.Abs(sens[0]-want) > 1e-3*math.Abs(want) {
		t.Errorf("sensitivity %v vs direct %v", sens[0], want)
	}
	// Error paths.
	if _, err := r.Sensitivities([]float64{0.1}, dist, 0); err == nil {
		t.Error("short ps accepted")
	}
	if _, err := r.Sensitivities(ps, dist, -1); err == nil {
		t.Error("negative step accepted")
	}
}
