package yield

import (
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/obs"
)

// livePublishInterval is how often the live publisher mirrors the
// build's atomic state into registry gauges. It only needs to outpace
// the flight-recorder sampler (default 100ms as well); the work per
// tick is a dozen atomic loads and stores.
const livePublishInterval = 100 * time.Millisecond

// liveSource hands the build's concurrent arena to the publisher once
// it exists: Evaluate starts the publisher before any engine is
// created (so the start/stop cost stays outside the measured phase
// spans), and buildModelConcurrent stores the Shared here when it
// allocates one. The serial engine never registers — its live-node
// count arrives via BuildState.SetLive instead.
type liveSource struct {
	shared atomic.Pointer[bdd.Shared]
}

func (l *liveSource) setShared(s *bdd.Shared) {
	if l != nil {
		l.shared.Store(s)
	}
}

// startLivePublisher launches a goroutine that mirrors the running
// build into registry gauges so the flight-recorder sampler (which
// only reads instruments) sees mid-build values: live/arena node
// counts, the ITE-cache hit rate, lock contention so far, and the
// phase-weighted progress of the BuildState. Everything it reads is
// atomic — BuildState fields, and bdd.Shared.LiveStats once src holds
// the concurrent arena — so the publisher is race-free against the
// build workers.
//
// The returned stop function halts the goroutine; it performs no final
// flush (end-of-run gauge values come from EngineStats.publish). With
// a nil registry nothing starts and stop is a no-op.
func startLivePublisher(rec *obs.Registry, bs *obs.BuildState, src *liveSource) (stop func()) {
	if rec == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var (
			gLive       = rec.Gauge("bdd.live")
			gArena      = rec.Gauge("bdd.arena_nodes")
			gHitRate    = rec.FloatGauge("bdd.ite_hit_rate")
			gShardCont  = rec.Gauge("bdd.shard_contention_live")
			gCacheCont  = rec.Gauge("bdd.cache_contention_live")
			gPhase      = rec.Gauge("build.phase")
			gPhaseDone  = rec.Gauge("build.phase_done")
			gPhaseTotal = rec.Gauge("build.phase_total")
			gProgress   = rec.FloatGauge("build.progress")
		)
		flush := func() {
			st := bs.Snapshot()
			gPhase.Set(int64(bs.Phase()))
			gPhaseDone.Set(st.PhaseDone)
			gPhaseTotal.Set(st.PhaseTotal)
			gProgress.Set(st.Progress)
			if s := src.shared.Load(); s != nil {
				ls := s.LiveStats()
				gLive.Set(int64(ls.Live))
				gArena.Set(int64(ls.ArenaNodes))
				gShardCont.Set(ls.ShardContention)
				gCacheCont.Set(ls.CacheContention)
				if lookups := ls.ApplyCacheHits + ls.ApplyCacheMisses; lookups > 0 {
					gHitRate.Set(float64(ls.ApplyCacheHits) / float64(lookups))
				}
			} else if st.LiveNodes > 0 {
				gLive.Set(st.LiveNodes)
			}
		}
		tick := time.NewTicker(livePublishInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				flush()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
