package yield

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/order"
)

// tmrSystem returns a triple-modular-redundant block: 3 components,
// system fails when at least 2 have failed.
func tmrSystem(p1, p2, p3 float64) *System {
	f := logic.New()
	a, b, c := f.Input("m1"), f.Input("m2"), f.Input("m3")
	f.SetOutput(f.Or(f.And(a, b), f.And(a, c), f.And(b, c)))
	return &System{
		Name: "tmr",
		Components: []Component{
			{Name: "m1", P: p1}, {Name: "m2", P: p2}, {Name: "m3", P: p3},
		},
		FaultTree: f,
	}
}

func seriesSystem(ps ...float64) *System {
	f := logic.New()
	ids := make([]logic.GateID, len(ps))
	comps := make([]Component, len(ps))
	for i, p := range ps {
		ids[i] = f.Input(fmt.Sprintf("c%d", i+1))
		comps[i] = Component{Name: fmt.Sprintf("c%d", i+1), P: p}
	}
	f.SetOutput(f.Or(ids...))
	return &System{Name: "series", Components: comps, FaultTree: f}
}

func parallelSystem(ps ...float64) *System {
	f := logic.New()
	ids := make([]logic.GateID, len(ps))
	comps := make([]Component, len(ps))
	for i, p := range ps {
		ids[i] = f.Input(fmt.Sprintf("c%d", i+1))
		comps[i] = Component{Name: fmt.Sprintf("c%d", i+1), P: p}
	}
	f.SetOutput(f.And(ids...))
	return &System{Name: "parallel", Components: comps, FaultTree: f}
}

func nb(lambda, alpha float64) defects.Distribution {
	d, err := defects.NewNegativeBinomial(lambda, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

func TestSeriesSystemClosedForm(t *testing.T) {
	// In a series system any lethal defect is fatal: Y_M = Q'_0.
	sys := seriesSystem(0.2, 0.2, 0.1)
	dist := nb(2, 2)
	res, err := Evaluate(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	lethal, _ := defects.Thin(dist, 0.5)
	want := lethal.PMF(0)
	if math.Abs(res.Yield-want) > 1e-12 {
		t.Errorf("series yield = %v, want Q'_0 = %v", res.Yield, want)
	}
	if res.PL != 0.5 {
		t.Errorf("PL = %v, want 0.5", res.PL)
	}
	if math.Abs(res.LambdaPrime-1) > 1e-12 {
		t.Errorf("λ' = %v, want 1", res.LambdaPrime)
	}
	if res.ErrorBound <= 0 || res.ErrorBound > 5e-3 {
		t.Errorf("ErrorBound = %v", res.ErrorBound)
	}
	if res.M != 6 {
		t.Errorf("M = %d, want 6 (calibration)", res.M)
	}
}

func TestParallelSystemHandComputed(t *testing.T) {
	// Exactly 2 lethal defects on a 2-component parallel system with
	// P'_1 = P'_2 = 1/2: the system fails iff the defects hit both
	// components, so Y = 1/2.
	sys := parallelSystem(0.5, 0.5)
	res, err := Evaluate(sys, Options{Defects: defects.Deterministic{N: 2}, Epsilon: 1e-9})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(res.Yield-0.5) > 1e-12 {
		t.Errorf("yield = %v, want 0.5", res.Yield)
	}
	if res.ErrorBound > 1e-9 {
		t.Errorf("ErrorBound = %v for a finite-support distribution", res.ErrorBound)
	}
}

func TestTMRAgainstBruteForce(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	for _, dist := range []defects.Distribution{
		nb(2, 0.25), nb(4, 2), defects.Poisson{Lambda: 1.5}, defects.Geometric{Lambda: 1},
	} {
		res, err := Evaluate(sys, Options{Defects: dist, Epsilon: 1e-5})
		if err != nil {
			t.Fatalf("%v: Evaluate: %v", dist, err)
		}
		ref, err := BruteForce(sys, Options{Defects: dist, Epsilon: 1e-5})
		if err != nil {
			t.Fatalf("%v: BruteForce: %v", dist, err)
		}
		if math.Abs(res.Yield-ref.Yield) > 1e-10 {
			t.Errorf("%v: method %v vs brute force %v", dist, res.Yield, ref.Yield)
		}
		if res.M != ref.M {
			t.Errorf("%v: M %d vs %d", dist, res.M, ref.M)
		}
	}
}

func TestAllRoutesAgree(t *testing.T) {
	sys := tmrSystem(0.25, 0.15, 0.1)
	opts := Options{Defects: nb(2, 2), Epsilon: 5e-3}
	a, err := Evaluate(sys, opts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	b, err := EvaluateOnCodedROBDD(sys, opts)
	if err != nil {
		t.Fatalf("EvaluateOnCodedROBDD: %v", err)
	}
	c, err := EvaluateDirectMDD(sys, opts)
	if err != nil {
		t.Fatalf("EvaluateDirectMDD: %v", err)
	}
	d, err := BruteForce(sys, opts)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	for name, r := range map[string]*Result{"coded": b, "direct-mdd": c, "brute": d} {
		if math.Abs(r.Yield-a.Yield) > 1e-10 {
			t.Errorf("%s route yield %v differs from main %v", name, r.Yield, a.Yield)
		}
	}
	// Canonical ROMDD: the direct-MDD route must build the identical
	// diagram, hence the identical node count.
	if a.ROMDDSize != c.ROMDDSize {
		t.Errorf("converted ROMDD size %d != directly built %d (canonicity violated)", a.ROMDDSize, c.ROMDDSize)
	}
	if a.CodedROBDDSize != b.CodedROBDDSize || a.ROBDDPeak <= 0 {
		t.Errorf("ROBDD stats inconsistent: %d/%d, peak %d", a.CodedROBDDSize, b.CodedROBDDSize, a.ROBDDPeak)
	}
}

func TestYieldMonotoneInM(t *testing.T) {
	// Y_M is non-decreasing in M (each added term is ≥ 0), so forcing
	// a smaller M must give a smaller-or-equal (more pessimistic)
	// yield.
	sys := tmrSystem(0.2, 0.2, 0.1)
	opts := Options{Defects: nb(2, 2), Epsilon: 1e-6}
	prev := -1.0
	for m := 0; m <= 8; m++ {
		o := opts
		o.ForceM, o.ForceMSet = m, true
		res, err := Evaluate(sys, o)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if res.Yield < prev-1e-14 {
			t.Errorf("yield decreased with M: %v at M=%d after %v", res.Yield, m, prev)
		}
		if res.M != m {
			t.Errorf("forced M not honoured: %d", res.M)
		}
		prev = res.Yield
		// The bracketing invariant Y_M ≤ Y ≤ Y_M + tail must hold.
		if res.Yield < 0 || res.Yield+res.ErrorBound > 1+1e-12 {
			t.Errorf("M=%d: bracket [%v, %v] out of range", m, res.Yield, res.Yield+res.ErrorBound)
		}
	}
}

func TestEpsilonControlsM(t *testing.T) {
	sys := tmrSystem(0.2, 0.2, 0.1)
	mOf := func(eps float64) int {
		res, err := Evaluate(sys, Options{Defects: nb(2, 2), Epsilon: eps})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if res.ErrorBound > eps {
			t.Errorf("eps=%v: ErrorBound %v exceeds it", eps, res.ErrorBound)
		}
		return res.M
	}
	if m1, m2 := mOf(1e-2), mOf(1e-6); m1 >= m2 {
		t.Errorf("tighter eps did not increase M: %d vs %d", m1, m2)
	}
}

func TestOptionsValidation(t *testing.T) {
	sys := tmrSystem(0.2, 0.2, 0.1)
	if _, err := Evaluate(sys, Options{}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := Evaluate(sys, Options{Defects: nb(1, 1), Epsilon: 2}); err == nil {
		t.Error("eps ≥ 1 accepted")
	}
	if _, err := Evaluate(sys, Options{Defects: nb(1, 1), MVOrder: order.MVWV, BitOrder: order.BitWeight}); err == nil {
		t.Error("incompatible ordering combination accepted")
	}
	if _, err := Evaluate(sys, Options{Defects: nb(1, 1), NodeLimit: -1}); err == nil {
		t.Error("negative node limit accepted")
	}
	o := Options{Defects: nb(1, 1), ForceM: -1, ForceMSet: true}
	if _, err := Evaluate(sys, o); err == nil {
		t.Error("negative forced M accepted")
	}
}

func TestSystemValidation(t *testing.T) {
	good := tmrSystem(0.2, 0.2, 0.1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	var nilSys *System
	if err := nilSys.Validate(); err == nil {
		t.Error("nil system accepted")
	}
	oneComp := &System{Name: "x", Components: []Component{{P: 0.1}}, FaultTree: logic.New()}
	if err := oneComp.Validate(); err == nil {
		t.Error("single-component system accepted")
	}
	noTree := &System{Name: "x", Components: []Component{{P: 0.1}, {P: 0.1}}}
	if err := noTree.Validate(); err == nil {
		t.Error("missing fault tree accepted")
	}
	// Mismatched inputs.
	f := logic.New()
	f.SetOutput(f.Input("only"))
	mismatch := &System{Name: "x", Components: []Component{{P: 0.1}, {P: 0.1}}, FaultTree: f}
	if err := mismatch.Validate(); err == nil {
		t.Error("input/component mismatch accepted")
	}
	bad := tmrSystem(0.2, -0.1, 0.1)
	if err := bad.Validate(); err == nil {
		t.Error("negative P accepted")
	}
	zero := tmrSystem(0, 0, 0)
	if err := zero.Validate(); err == nil {
		t.Error("P_L = 0 accepted")
	}
	over := tmrSystem(0.5, 0.4, 0.3)
	if err := over.Validate(); err == nil {
		t.Error("P_L > 1 accepted")
	}
}

func TestNodeLimitPropagates(t *testing.T) {
	sys := tmrSystem(0.2, 0.2, 0.1)
	res, err := Evaluate(sys, Options{Defects: nb(4, 0.25), Epsilon: 1e-6, NodeLimit: 16})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
	if res == nil || res.ROBDDPeak == 0 {
		t.Error("failed evaluation must still report the peak reached")
	}
}

func TestBruteForceLimits(t *testing.T) {
	// 21 components exceeds the brute-force bound.
	ps := make([]float64, 21)
	for i := range ps {
		ps[i] = 0.01
	}
	sys := seriesSystem(ps...)
	if _, err := BruteForce(sys, Options{Defects: nb(1, 1)}); err == nil {
		t.Error("brute force over 21 components accepted")
	}
}

func TestPhasesPopulated(t *testing.T) {
	sys := tmrSystem(0.2, 0.2, 0.1)
	res, err := Evaluate(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Phases.Total() <= 0 {
		t.Error("phase timings not populated")
	}
	if res.GGates <= 0 || res.BinaryVars <= 0 {
		t.Errorf("G stats not populated: %d gates, %d vars", res.GGates, res.BinaryVars)
	}
	if res.CodedROBDDSize <= 0 || res.ROMDDSize <= 0 || res.ROBDDPeak < res.CodedROBDDSize {
		t.Errorf("size stats implausible: robdd=%d peak=%d romdd=%d",
			res.CodedROBDDSize, res.ROBDDPeak, res.ROMDDSize)
	}
}

// randomSystem builds a random monotone system with ≤ 6 components.
func randomSystem(rng *rand.Rand) *System {
	c := 3 + rng.Intn(4)
	f := logic.New()
	pool := make([]logic.GateID, 0, 32)
	comps := make([]Component, c)
	total := 0.0
	for i := 0; i < c; i++ {
		pool = append(pool, f.Input(fmt.Sprintf("x%d", i+1)))
		comps[i].Name = fmt.Sprintf("x%d", i+1)
		comps[i].P = 0.02 + 0.1*rng.Float64()
		total += comps[i].P
	}
	// Normalize to a random P_L in (0.2, 0.8).
	target := 0.2 + 0.6*rng.Float64()
	for i := range comps {
		comps[i].P *= target / total
	}
	for i := 0; i < 5+rng.Intn(8); i++ {
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			pool = append(pool, f.And(a, b))
		} else {
			pool = append(pool, f.Or(a, b))
		}
	}
	f.SetOutput(pool[len(pool)-1])
	return &System{Name: "random", Components: comps, FaultTree: f}
}

// Property: on random monotone systems the method equals brute force
// and all routes agree, for random orderings.
func TestQuickMethodMatchesBruteForce(t *testing.T) {
	mvKinds := []order.MVKind{order.MVWV, order.MVWVR, order.MVVW, order.MVVRW, order.MVTopology, order.MVWeight, order.MVH4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng)
		opts := Options{
			Defects: nb(0.5+2*rng.Float64(), 0.5+3*rng.Float64()),
			Epsilon: 1e-3,
			MVOrder: mvKinds[rng.Intn(len(mvKinds))],
		}
		res, err := Evaluate(sys, opts)
		if err != nil {
			return false
		}
		ref, err := BruteForce(sys, opts)
		if err != nil {
			return false
		}
		if math.Abs(res.Yield-ref.Yield) > 1e-9 {
			return false
		}
		direct, err := EvaluateDirectMDD(sys, opts)
		if err != nil {
			return false
		}
		return math.Abs(direct.Yield-res.Yield) < 1e-9 && direct.ROMDDSize == res.ROMDDSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: yield bracket is always within [0,1] and ErrorBound ≤ eps.
func TestQuickBracketSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng)
		eps := math.Pow(10, -2-2*rng.Float64())
		res, err := Evaluate(sys, Options{Defects: nb(1+rng.Float64()*2, 1+rng.Float64()*2), Epsilon: eps})
		if err != nil {
			return false
		}
		return res.Yield >= -1e-12 && res.Yield+res.ErrorBound <= 1+1e-9 && res.ErrorBound <= eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
