package yield

import (
	"testing"

	"socyield/internal/defects"
	"socyield/internal/order"
)

func TestModelKeyStability(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	opts := Options{Defects: nb(2, 2), Epsilon: 5e-3}
	k1, m1, err := ModelKey(sys, opts)
	if err != nil {
		t.Fatalf("ModelKey: %v", err)
	}
	k2, m2, err := ModelKey(sys, opts)
	if err != nil {
		t.Fatalf("ModelKey (repeat): %v", err)
	}
	if k1 != k2 || m1 != m2 {
		t.Errorf("key not deterministic: (%s, %d) vs (%s, %d)", k1, m1, k2, m2)
	}
	// The resolved M must be the one Evaluate uses.
	res, err := Evaluate(sys, opts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m1 != res.M {
		t.Errorf("ModelKey M=%d, Evaluate M=%d", m1, res.M)
	}
	// A structurally identical rebuild (different gate-construction
	// history is not possible here, but fresh netlist objects are)
	// hashes identically.
	k3, _, err := ModelKey(tmrSystem(0.2, 0.15, 0.15), opts)
	if err != nil {
		t.Fatalf("ModelKey (rebuild): %v", err)
	}
	if k1 != k3 {
		t.Error("identical structure hashed differently")
	}
}

func TestModelKeyIgnoresLethalitiesAndNames(t *testing.T) {
	base := tmrSystem(0.2, 0.15, 0.15)
	opts := Options{Defects: nb(2, 2), Epsilon: 5e-3}
	k1, m1, err := ModelKey(base, opts)
	if err != nil {
		t.Fatalf("ModelKey: %v", err)
	}
	// Different P_i and different component names, same structure, a
	// distribution that resolves to the same M: same compiled model.
	other := tmrSystem(0.19, 0.16, 0.15)
	for i := range other.Components {
		other.Components[i].Name = other.Components[i].Name + "-renamed"
	}
	k2, m2, err := ModelKey(other, opts)
	if err != nil {
		t.Fatalf("ModelKey (perturbed): %v", err)
	}
	if m1 != m2 {
		t.Skipf("perturbation moved M (%d → %d); key comparison not meaningful", m1, m2)
	}
	if k1 != k2 {
		t.Error("key depends on lethalities or names; it must only depend on structure, orderings, ε and M")
	}
}

func TestModelKeyDiscriminates(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	base := Options{Defects: nb(2, 2), Epsilon: 5e-3}
	k0, _, err := ModelKey(sys, base)
	if err != nil {
		t.Fatalf("ModelKey: %v", err)
	}
	variants := map[string]func() (string, error){
		"epsilon": func() (string, error) {
			k, _, err := ModelKey(sys, Options{Defects: nb(2, 2), Epsilon: 4e-3})
			return k, err
		},
		"mv order": func() (string, error) {
			k, _, err := ModelKey(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3, MVOrder: order.MVWV})
			return k, err
		},
		"bit order": func() (string, error) {
			k, _, err := ModelKey(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3, MVOrder: order.MVTopology, BitOrder: order.BitTopology})
			return k, err
		},
		"node limit": func() (string, error) {
			k, _, err := ModelKey(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3, NodeLimit: 1 << 20})
			return k, err
		},
		"truncation point": func() (string, error) {
			k, _, err := ModelKey(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3, ForceM: 3, ForceMSet: true})
			return k, err
		},
		"structure": func() (string, error) {
			other := tmrSystem(0.2, 0.15, 0.15)
			out := other.FaultTree.MustOutput()
			other.FaultTree.SetOutput(other.FaultTree.Not(out))
			k, _, err := ModelKey(other, Options{Defects: nb(2, 2), Epsilon: 5e-3})
			return k, err
		},
	}
	for name, fn := range variants {
		k, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k0 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestModelKeyValidates(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	if _, _, err := ModelKey(sys, Options{}); err == nil {
		t.Error("expected error for missing distribution")
	}
	if _, _, err := ModelKey(nil, Options{Defects: defects.Poisson{Lambda: 1}}); err == nil {
		t.Error("expected error for nil system")
	}
	if _, _, err := ModelKey(sys, Options{Defects: defects.Poisson{Lambda: 1}, ForceM: -1, ForceMSet: true}); err == nil {
		t.Error("expected error for negative forced M")
	}
}
