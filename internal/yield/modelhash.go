package yield

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"socyield/internal/defects"
	"socyield/internal/logic"
)

// ModelKey canonically identifies the compiled decision diagrams of an
// evaluation: two (system, options) pairs with equal keys compile
// bit-identical coded ROBDDs and ROMDDs, so one Reevaluator built for
// either serves both. The returned m is the truncation point the
// options resolve to — the M a shared Reevaluator must be constructed
// with (Options.ForceM/ForceMSet) so cache hits reproduce the
// uncached pipeline exactly.
//
// The key hashes everything the diagram structure depends on:
//
//   - the fault-tree structure: the output cone in a canonical
//     numbering (gate kinds, fan-in edges, input ordinals) plus the
//     declared component count C — input and component names are
//     excluded, they never reach the diagrams;
//   - the truncation point M (resolved from the defect model, ε and
//     P_L, or forced);
//   - the two ordering heuristics and the node budget;
//   - ε itself, so an entry's error-bound contract is part of its
//     identity.
//
// The per-component lethalities P_i and the defect distribution are
// deliberately NOT part of the key beyond their effect on M: the ROMDD
// is independent of them, which is exactly what makes a compiled-model
// cache effective for (λ, α) exploration against a fixed structure.
// BuildWorkers is likewise excluded: the serial and concurrent build
// engines produce bit-identical models for every worker count, so the
// worker count is a throughput knob, not part of the model identity.
func ModelKey(sys *System, opts Options) (key string, m int, err error) {
	o, err := opts.withDefaults()
	if err != nil {
		return "", 0, err
	}
	if err := sys.Validate(); err != nil {
		return "", 0, err
	}
	lethal, err := defects.Thin(o.Defects, sys.PL())
	if err != nil {
		return "", 0, err
	}
	m, _, err = defects.TruncationPoint(lethal, o.Epsilon)
	if err != nil {
		return "", 0, err
	}
	if o.ForceMSet {
		if o.ForceM < 0 {
			return "", 0, errNegativeForceM(o.ForceM)
		}
		m = o.ForceM
	}
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("socyield-model-v1"))
	wu(uint64(len(sys.Components)))
	wu(uint64(m))
	wu(uint64(o.MVOrder))
	wu(uint64(o.BitOrder))
	wu(uint64(o.NodeLimit))
	wu(math.Float64bits(o.Epsilon))
	if err := hashCone(h.Write, sys.FaultTree); err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), m, nil
}

type errNegativeForceM int

func (e errNegativeForceM) Error() string { return "yield: forced M < 0" }

// hashCone feeds a canonical encoding of the output cone of f to
// write: reachable gates renumbered in depth-first post-order (the
// deterministic order VisitDepthFirst defines), each emitted as
// (kind, payload, fan-in...) with fan-in in stored order. Two
// netlists hash equal iff their output cones are structurally
// identical with identical input ordinals — the precise condition for
// the downstream pipeline to behave identically.
func hashCone(write func([]byte) (int, error), f *logic.Netlist) error {
	renum := make(map[logic.GateID]uint64, f.NumNodes())
	var buf [8]byte
	emit := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		write(buf[:])
	}
	return f.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		renum[id] = uint64(len(renum))
		emit(uint64(g.Kind))
		switch g.Kind {
		case logic.InputKind:
			emit(uint64(g.Ord))
		case logic.ConstKind:
			if g.Value {
				emit(1)
			} else {
				emit(0)
			}
		default:
			emit(uint64(len(g.Fanin)))
			for _, fid := range g.Fanin {
				emit(renum[fid])
			}
		}
	})
}
