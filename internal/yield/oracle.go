package yield

import (
	"fmt"

	"socyield/internal/encode"
)

// Bounds on the exact-enumeration oracle: the number of components and
// the total number of (w, v_1..v_w) assignments it will enumerate.
const (
	maxOracleComponents  = 12
	maxOracleAssignments = 1 << 24
)

// oracleBudget returns the number of assignments ExactYield will
// visit: Σ_{w=0..m} c^w (the v_l beyond w are marginalized — they sum
// to one — so enumerating them would only rescale each term by 1).
func oracleBudget(c, m int) (int, bool) {
	total := 0
	pw := 1
	for w := 0; w <= m; w++ {
		total += pw
		if total > maxOracleAssignments {
			return total, false
		}
		if pw > maxOracleAssignments/c {
			// c^(w+1) alone would blow the budget on the next round.
			if w < m {
				return maxOracleAssignments + 1, false
			}
			break
		}
		pw *= c
	}
	return total, true
}

// ExactYield computes Y_M by direct summation over all assignments of
// the generalized function G(w, v_1..v_M) of Theorem 1 — no decision
// diagrams, no inclusion–exclusion:
//
//	Y_M = Σ_{w=0}^{M} Q'_w Σ_{(v_1..v_w)} (Π_{l≤w} P'_{v_l}) · [F(x(v)) = 0]
//
// where x(v)_i = 1 iff some lethal defect l ≤ w hit component i, and
// the saturated value w = M+1 (probability = the tail mass) always has
// G = 1. The v_l with l > w are marginalized: G does not depend on
// them, so their enumeration would multiply each term by Σ P' = 1.
//
// Every visited assignment is additionally checked against the
// synthesized binary netlist of G (encode.BuildG + DecodeAssignment),
// so a run of ExactYield is also an exhaustive differential test of
// the encoding itself; a disagreement is reported as an error rather
// than silently folded into the sum.
//
// The enumeration is exponential — (C^(M+1)−1)/(C−1) netlist
// evaluations — and is restricted to C ≤ 12 components within an
// assignment budget of 2^24. It exists as the exact oracle the ROMDD
// pipeline is differentially tested against.
func ExactYield(sys *System, opts Options) (*Result, error) {
	p, err := prepare(sys, opts)
	if err != nil {
		return nil, err
	}
	c := len(sys.Components)
	if c > maxOracleComponents {
		return nil, fmt.Errorf("yield: exact oracle limited to %d components, system has %d", maxOracleComponents, c)
	}
	if n, ok := oracleBudget(c, p.m); !ok {
		return nil, fmt.Errorf("yield: exact oracle budget exceeded: > %d assignments for C=%d, M=%d (have %d)", maxOracleAssignments, c, p.m, n)
	}
	g, err := encode.BuildG(sys.FaultTree, p.m)
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)

	f := sys.FaultTree
	var fScratch, gScratch []bool
	failed := make([]bool, c)
	hits := make([]int, c) // defects per component, to undo sharing
	v := make([]int, p.m)  // v_1..v_w as 0-based component ordinals
	mv := make([]int, 1+p.m)

	// Kahan-compensated accumulation: the enumeration can sum millions
	// of terms, and the oracle's value is the reference a 1e-12
	// differential tolerance is measured against.
	yield, comp := 0.0, 0.0
	add := func(term float64) {
		y := term - comp
		t := yield + y
		comp = (t - yield) - y
		yield = t
	}
	for w := 0; w <= p.m; w++ {
		qw := p.qprime[w]
		if qw == 0 {
			continue
		}
		// Odometer over (v_1..v_w) ∈ {0..c-1}^w, maintaining the failed
		// set and the product of P' incrementally is not worth the
		// bookkeeping at these sizes — recompute per assignment.
		for i := range v {
			v[i] = 0
		}
		for {
			prod := 1.0
			for l := 0; l < w; l++ {
				prod *= p.pprime[v[l]]
				hits[v[l]]++
			}
			for i := 0; i < c; i++ {
				failed[i] = hits[i] > 0
				hits[i] = 0
			}
			if prod != 0 {
				down, err := f.EvalWith(failed, &fScratch)
				if err != nil {
					return nil, err
				}
				// Differential check of the encoding on this assignment.
				mv[0] = w
				for l := 0; l < p.m; l++ {
					mv[1+l] = v[l]
				}
				assign, err := g.DecodeAssignment(mv)
				if err != nil {
					return nil, err
				}
				gDown, err := g.Netlist.EvalWith(assign, &gScratch)
				if err != nil {
					return nil, err
				}
				if gDown != down {
					return nil, fmt.Errorf("yield: encoded G disagrees with fault tree at w=%d v=%v: G=%v, F=%v", w, v[:w], gDown, down)
				}
				if !down {
					add(qw * prod)
				}
			}
			// Advance the odometer over the first w positions.
			l := 0
			for ; l < w; l++ {
				v[l]++
				if v[l] < c {
					break
				}
				v[l] = 0
			}
			if l == w {
				break
			}
		}
	}
	res.Yield = yield
	return res, nil
}
