package yield

import (
	"math"
	"sync"
	"testing"

	"socyield/internal/defects"
)

// sweepGrid builds a 24-point (λ', α) × P_i grid over the TMR system:
// enough points to exercise the pool, small enough for -race runs.
func sweepGrid(t *testing.T) (*Reevaluator, []SweepPoint) {
	t.Helper()
	sys := tmrSystem(0.2, 0.15, 0.15)
	r, err := NewReevaluator(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	var points []SweepPoint
	for _, lambda := range []float64{0.5, 1, 2, 4} {
		for _, alpha := range []float64{0.25, 1, 3.4} {
			d, err := defects.NewNegativeBinomial(lambda, alpha)
			if err != nil {
				t.Fatalf("NewNegativeBinomial: %v", err)
			}
			points = append(points,
				SweepPoint{PS: []float64{0.2, 0.15, 0.15}, Dist: d},
				SweepPoint{PS: []float64{0.1, 0.3, 0.05}, Dist: d},
			)
		}
	}
	return r, points
}

// TestSweepDeterministicAcrossWorkers is the determinism contract: a
// ≥20-point sweep must be bit-identical under Workers 1, 3 and 8.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	r, points := sweepGrid(t)
	if len(points) < 20 {
		t.Fatalf("grid has %d points, want ≥ 20", len(points))
	}
	serial := r.Sweep(points, SweepOptions{Workers: 1})
	for _, workers := range []int{3, 8} {
		parallel := r.Sweep(points, SweepOptions{Workers: workers})
		for i := range serial {
			if serial[i].Err != nil || parallel[i].Err != nil {
				t.Fatalf("point %d: errs %v / %v", i, serial[i].Err, parallel[i].Err)
			}
			if serial[i].Yield != parallel[i].Yield || serial[i].ErrorBound != parallel[i].ErrorBound {
				t.Errorf("point %d: workers=1 %v±%v, workers=%d %v±%v",
					i, serial[i].Yield, serial[i].ErrorBound, workers, parallel[i].Yield, parallel[i].ErrorBound)
			}
		}
	}
}

// TestSweepMatchesYield checks every sweep result against the serial
// Yield path — they share the evaluation core, so exact equality.
func TestSweepMatchesYield(t *testing.T) {
	r, points := sweepGrid(t)
	results := r.Sweep(points, SweepOptions{})
	for i, p := range points {
		y, bound, err := r.Yield(p.PS, p.Dist)
		if err != nil {
			t.Fatalf("Yield(%d): %v", i, err)
		}
		if results[i].Err != nil {
			t.Fatalf("sweep point %d: %v", i, results[i].Err)
		}
		if results[i].Yield != y || results[i].ErrorBound != bound {
			t.Errorf("point %d: sweep %v±%v, serial %v±%v", i, results[i].Yield, results[i].ErrorBound, y, bound)
		}
	}
}

func TestSweepDefaultsAndErrors(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	r, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	// Empty sweep.
	if got := r.Sweep(nil, SweepOptions{}); len(got) != 0 {
		t.Errorf("empty sweep returned %d results", len(got))
	}
	// Default distribution from options; per-point override; missing
	// distribution and invalid PS reported per point.
	points := []SweepPoint{
		{PS: []float64{0.2, 0.15, 0.15}},
		{PS: []float64{0.2, 0.15, 0.15}, Dist: defects.Poisson{Lambda: 1}},
		{PS: []float64{0.5}},                       // wrong length
		{PS: []float64{0.9, 0.9, 0.9}, Dist: dist}, // P_L > 1
	}
	res := r.Sweep(points, SweepOptions{Dist: dist})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("valid points errored: %v, %v", res[0].Err, res[1].Err)
	}
	y0, _, _ := r.Yield(points[0].PS, dist)
	if res[0].Yield != y0 {
		t.Errorf("default-dist point: %v, want %v", res[0].Yield, y0)
	}
	y1, _, _ := r.Yield(points[1].PS, defects.Poisson{Lambda: 1})
	if res[1].Yield != y1 {
		t.Errorf("override-dist point: %v, want %v", res[1].Yield, y1)
	}
	if res[2].Err == nil || res[3].Err == nil {
		t.Errorf("invalid points accepted: %+v, %+v", res[2], res[3])
	}
	// No distribution anywhere.
	res = r.Sweep(points[:1], SweepOptions{})
	if res[0].Err == nil {
		t.Error("point with no distribution accepted")
	}
}

func TestLambdaGrid(t *testing.T) {
	ps := []float64{0.2, 0.15, 0.15}
	dists := []defects.Distribution{nb(1, 2), nb(2, 2), defects.Poisson{Lambda: 1}}
	points := LambdaGrid(ps, dists)
	if len(points) != len(dists) {
		t.Fatalf("%d points for %d dists", len(points), len(dists))
	}
	for i, p := range points {
		if &p.PS[0] != &ps[0] || p.Dist != dists[i] {
			t.Errorf("point %d not wired to inputs", i)
		}
	}
}

// TestReevaluatorConcurrentHammer drives one shared Reevaluator from 8
// goroutines mixing Yield, YieldRaw, Sensitivities and Sweep; run
// under -race this is the concurrency contract test for the yield
// layer. Every result is compared against the serial baseline.
func TestReevaluatorConcurrentHammer(t *testing.T) {
	sys := tmrSystem(0.2, 0.15, 0.15)
	dist := nb(2, 2)
	r, err := NewReevaluator(sys, Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	type baseline struct {
		ps    []float64
		yield float64
		bound float64
		sens  []float64
	}
	grids := [][]float64{
		{0.2, 0.15, 0.15},
		{0.1, 0.1, 0.1},
		{0.3, 0.1, 0.05},
		{0.05, 0.25, 0.2},
	}
	bases := make([]baseline, len(grids))
	for i, ps := range grids {
		y, bound, err := r.Yield(ps, dist)
		if err != nil {
			t.Fatalf("baseline Yield(%v): %v", ps, err)
		}
		sens, err := r.Sensitivities(ps, dist, 0)
		if err != nil {
			t.Fatalf("baseline Sensitivities(%v): %v", ps, err)
		}
		bases[i] = baseline{ps: ps, yield: y, bound: bound, sens: sens}
	}
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				b := bases[(g+it)%len(bases)]
				y, bound, err := r.Yield(b.ps, dist)
				if err != nil || y != b.yield || bound != b.bound {
					errs <- "Yield mismatch under concurrency"
					return
				}
				if it%5 == 0 {
					sens, err := r.Sensitivities(b.ps, dist, 0)
					if err != nil {
						errs <- "Sensitivities error under concurrency"
						return
					}
					for i := range sens {
						if math.Abs(sens[i]-b.sens[i]) != 0 {
							errs <- "Sensitivities mismatch under concurrency"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
