package yield

import (
	"fmt"
	"time"

	"socyield/internal/defects"
	"socyield/internal/encode"
	"socyield/internal/mdd"
	"socyield/internal/obs"
	"socyield/internal/order"
)

// Reevaluator holds the ROMDD of a system built once for a fixed
// truncation point M, and reevaluates the yield for different defect
// models without rebuilding any decision diagram. The probability
// traversal is linear in the ROMDD size, so what-if sweeps over
// per-component lethalities P_i (e.g. from successive layout
// iterations) or over defect distributions cost microseconds instead
// of the full pipeline.
//
// The truncation point is fixed at construction: reevaluations supply
// their own Q'-table truncated at the same M.
//
// After construction the Reevaluator is immutable — the ROMDD lives in
// a frozen snapshot and every evaluation allocates its own scratch
// state — so Yield, YieldRaw and Sensitivities may be called
// concurrently from any number of goroutines on one shared instance.
// Sweep fans a whole grid of evaluation points out over a worker pool.
type Reevaluator struct {
	sys      *System
	m        int
	frozen   *mdd.Frozen
	groupSeq []int
	// Stats of the one-time build.
	Result *Result
}

// NewReevaluator runs the construction phases of Evaluate (using
// opts.Defects only to fix M) and retains the ROMDD. The one-time
// build's per-phase wall times, structural statistics and engine
// counters are retained in Result (and stream into Options.Recorder
// when set).
func NewReevaluator(sys *System, opts Options) (*Reevaluator, error) {
	rec := opts.Recorder
	bs := opts.BuildState
	// As in Evaluate: publisher start/stop stays outside the root span.
	src := &liveSource{}
	stopLive := startLivePublisher(rec, bs, src)
	defer stopLive()
	buildSpan := rec.Span("reevaluator-build")
	defer buildSpan.End()
	bs.StartPhase(obs.BuildPrepare, 0)
	defer bs.Finish()

	sp := buildSpan.Child("prepare")
	t0 := time.Now()
	p, err := prepare(sys, opts)
	prepDur := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.live = src
	sp = buildSpan.Child("encode")
	t0 = time.Now()
	g, err := encode.BuildG(sys.FaultTree, p.m)
	encDur := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	res := p.baseResult(g)
	res.Phases.Prepare = prepDur
	res.Phases.Encode = encDur

	sp = buildSpan.Child("order")
	t0 = time.Now()
	plan, err := order.Assemble(g.Netlist, g.Groups, p.opts.MVOrder, p.opts.BitOrder)
	res.Phases.Order = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}

	mm, mroot, err := p.buildModel(buildSpan, g, plan, res)
	if err != nil {
		return nil, err
	}

	// Freeze the ROMDD into an immutable compact snapshot: the manager
	// (with its construction hash tables) becomes garbage, and every
	// later evaluation is a goroutine-safe linear pass.
	bs.StartPhase(obs.BuildEval, 0)
	sp = buildSpan.Child("eval")
	t0 = time.Now()
	frozen := mm.Freeze(mroot)
	// Fill the default model's yield for convenience.
	pg1, err := frozen.Prob(p.probTable(plan.GroupSeq))
	res.Phases.Eval = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Yield = 1 - pg1
	res.Stats.publish(rec)
	publishResult(rec, res)
	return &Reevaluator{
		sys:      sys,
		m:        p.m,
		frozen:   frozen,
		groupSeq: plan.GroupSeq,
		Result:   res,
	}, nil
}

// M returns the truncation point the ROMDD was built for.
func (r *Reevaluator) M() int { return r.m }

// NumComponents returns the component count of the system the ROMDD
// was built for — the length Yield/YieldRaw/Sensitivities inputs must
// have. Callers sharing a Reevaluator through a keyed cache use it to
// cross-check a request against the compiled model.
func (r *Reevaluator) NumComponents() int { return len(r.sys.Components) }

// YieldRaw reevaluates with explicit lethal-model inputs: pprime is
// P'_1..P'_C (must sum to ≈1), qprime is Q'_0..Q'_M and tail the
// remaining mass (qprime must have exactly M+1 entries).
func (r *Reevaluator) YieldRaw(pprime, qprime []float64, tail float64) (float64, error) {
	return r.yieldRawWith(pprime, qprime, tail, nil)
}

// yieldRawWith is YieldRaw with optional caller-owned scratch space
// for the ROMDD pass (nil allocates per call). The arithmetic is
// identical either way, so buffered and unbuffered calls are
// bit-identical.
func (r *Reevaluator) yieldRawWith(pprime, qprime []float64, tail float64, buf *mdd.ProbBuffer) (float64, error) {
	if len(pprime) != len(r.sys.Components) {
		return 0, fmt.Errorf("yield: pprime has %d entries, want %d", len(pprime), len(r.sys.Components))
	}
	if len(qprime) != r.m+1 {
		return 0, fmt.Errorf("yield: qprime has %d entries, want %d", len(qprime), r.m+1)
	}
	wRow := make([]float64, r.m+2)
	copy(wRow, qprime)
	wRow[r.m+1] = tail
	probs := make([][]float64, len(r.groupSeq))
	for mvLevel, gi := range r.groupSeq {
		if gi == 0 {
			probs[mvLevel] = wRow
		} else {
			probs[mvLevel] = pprime
		}
	}
	var pg1 float64
	var err error
	if buf != nil {
		pg1, err = r.frozen.ProbWith(probs, buf)
	} else {
		pg1, err = r.frozen.Prob(probs)
	}
	if err != nil {
		return 0, err
	}
	return 1 - pg1, nil
}

// Sensitivities returns ∂Y/∂P_i for every component by central finite
// differences on the ROMDD (two traversals per component, no diagram
// rebuilding). The derivative is taken with respect to the component's
// absolute lethality P_i, everything else fixed — the quantity a
// designer trades layout area against. delta is the relative step
// (default 1e-4 of P_L when 0).
func (r *Reevaluator) Sensitivities(ps []float64, dist defects.Distribution, delta float64) ([]float64, error) {
	if len(ps) != len(r.sys.Components) {
		return nil, fmt.Errorf("yield: ps has %d entries, want %d", len(ps), len(r.sys.Components))
	}
	pl := 0.0
	for _, p := range ps {
		pl += p
	}
	if delta == 0 {
		delta = 1e-4 * pl
	}
	if !(delta > 0) {
		return nil, fmt.Errorf("yield: non-positive step %v", delta)
	}
	out := make([]float64, len(ps))
	work := make([]float64, len(ps))
	var buf mdd.ProbBuffer
	for i := range ps {
		copy(work, ps)
		lo := ps[i] - delta
		hi := ps[i] + delta
		if lo < 0 {
			lo = 0
		}
		work[i] = hi
		yHi, _, err := r.yieldWith(work, dist, &buf)
		if err != nil {
			return nil, err
		}
		work[i] = lo
		yLo, _, err := r.yieldWith(work, dist, &buf)
		if err != nil {
			return nil, err
		}
		out[i] = (yHi - yLo) / (hi - lo)
	}
	return out, nil
}

// Yield reevaluates for new per-component lethalities ps (the paper's
// P_i, summing to the new P_L) and a new defect distribution,
// performing the lethal transform internally. The truncation point
// stays at the construction-time M; the returned error bound is the
// new tail mass beyond it.
func (r *Reevaluator) Yield(ps []float64, dist defects.Distribution) (yield, errorBound float64, err error) {
	return r.yieldWith(ps, dist, nil)
}

// yieldWith is Yield with optional reusable scratch space; it is the
// shared core of the serial and the parallel (Sweep) paths, which
// keeps their results bit-identical by construction.
func (r *Reevaluator) yieldWith(ps []float64, dist defects.Distribution, buf *mdd.ProbBuffer) (yield, errorBound float64, err error) {
	if len(ps) != len(r.sys.Components) {
		return 0, 0, fmt.Errorf("yield: ps has %d entries, want %d", len(ps), len(r.sys.Components))
	}
	pl := 0.0
	for i, p := range ps {
		if !(p >= 0) {
			return 0, 0, fmt.Errorf("yield: component %d has P = %v", i, p)
		}
		pl += p
	}
	if !(pl > 0 && pl <= 1+1e-12) {
		return 0, 0, fmt.Errorf("yield: P_L = %v outside (0,1]", pl)
	}
	lethal, err := defects.Thin(dist, pl)
	if err != nil {
		return 0, 0, err
	}
	qprime, tail, err := defects.PMFTable(lethal, r.m)
	if err != nil {
		return 0, 0, err
	}
	pprime := make([]float64, len(ps))
	for i, p := range ps {
		pprime[i] = p / pl
	}
	y, err := r.yieldRawWith(pprime, qprime, tail, buf)
	if err != nil {
		return 0, 0, err
	}
	return y, tail, nil
}
