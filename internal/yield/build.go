package yield

import (
	"fmt"
	"time"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/convert"
	"socyield/internal/encode"
	"socyield/internal/mdd"
	"socyield/internal/obs"
	"socyield/internal/order"
)

// buildModel runs the one-time build — coded-ROBDD compilation and
// ROMDD conversion — on the engine the resolved BuildWorkers selects,
// filling res's phase timings, engine statistics and structural sizes
// in place. It is the shared core of Evaluate and NewReevaluator.
//
// BuildWorkers == 1 uses the serial reference engine, byte for byte
// the pipeline the paper's numbers were reproduced on; ≥ 2 uses the
// concurrent engine (bdd.Shared + compile.NetlistParallel +
// convert.ToMDDParallel). Both build the same canonical diagrams for
// the same variable order, so every result derived from them — yield,
// M, error bound, diagram sizes — is bit-identical across worker
// counts; the equivalence tests enforce this with exact comparisons.
// Test-only bdd options (e.g. WithoutComplementEdges) exist only on
// the serial engine and pin it regardless of BuildWorkers.
//
// parent is the enclosing metrics span (nil-safe). On error res is
// still consistently filled up to the failing phase; callers decide
// whether to publish it.
func (p *prepared) buildModel(parent *obs.Span, g *encode.GFunc, plan *order.Plan, res *Result) (*mdd.Manager, mdd.Node, error) {
	workers := p.opts.BuildWorkers
	if workers < 1 || len(p.opts.bddOptions) > 0 {
		workers = 1
	}
	res.Stats.BuildWorkers = workers
	groupOf, bitOf := groupMeta(g)
	spec, specErr := convert.SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())

	if workers > 1 {
		return p.buildModelConcurrent(parent, g, plan, res, spec, specErr, workers)
	}

	p.opts.BuildState.StartPhase(obs.BuildCompile, 0)
	sp := parent.Child("compile")
	t0 := time.Now()
	bm := bdd.New(g.Netlist.NumInputs(), p.opts.bddManagerOptions()...)
	broot, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels,
		compile.WithBuildState(p.opts.BuildState), compile.WithTracer(p.opts.Tracer))
	res.Phases.Compile = time.Since(t0)
	sp.End()
	res.Stats.BDD = bm.Stats()
	res.Stats.CompilePeakLive = bm.ResetPeakLive()
	res.ROBDDPeak = res.Stats.CompilePeakLive
	if err != nil {
		return nil, mdd.False, fmt.Errorf("yield: compiling coded ROBDD: %w", err)
	}
	res.CodedROBDDSize = bm.Size(broot)
	if specErr != nil {
		return nil, mdd.False, specErr
	}

	p.opts.BuildState.StartPhase(obs.BuildConvert, 0)
	sp = parent.Child("convert")
	t0 = time.Now()
	mm, err := mdd.New(spec.Domains, mdd.WithNodeLimit(p.opts.NodeLimit))
	if err != nil {
		sp.End()
		return nil, mdd.False, err
	}
	mroot, err := convert.ToMDDWithStats(bm, broot, mm, spec, &res.Stats.Convert,
		convert.WithBuildState(p.opts.BuildState), convert.WithTracer(p.opts.Tracer))
	res.Phases.Convert = time.Since(t0)
	sp.End()
	res.Stats.MDD = mm.BuildStats()
	res.Stats.ConvertPeakLive = bm.PeakLive()
	res.ROBDDPeak = max(res.ROBDDPeak, res.Stats.ConvertPeakLive)
	if err != nil {
		return nil, mdd.False, fmt.Errorf("yield: converting to ROMDD: %w", err)
	}
	finishModelStats(res, mm, mroot)
	return mm, mroot, nil
}

// buildModelConcurrent is the BuildWorkers ≥ 2 arm of buildModel, on
// the concurrent engine. It mirrors the serial arm phase for phase.
func (p *prepared) buildModelConcurrent(parent *obs.Span, g *encode.GFunc, plan *order.Plan, res *Result, spec convert.Spec, specErr error, workers int) (*mdd.Manager, mdd.Node, error) {
	s := bdd.NewShared(g.Netlist.NumInputs(), p.opts.NodeLimit)
	p.live.setShared(s)

	p.opts.BuildState.StartPhase(obs.BuildCompile, 0)
	sp := parent.Child("compile")
	t0 := time.Now()
	broot, cst, err := compile.NetlistParallel(s, g.Netlist, plan.BinaryLevels, workers,
		compile.WithBuildState(p.opts.BuildState), compile.WithTracer(p.opts.Tracer))
	res.Phases.Compile = time.Since(t0)
	sp.End()
	res.Stats.BDD = s.Stats()
	res.Stats.CompilePeakLive = s.ResetPeakLive()
	res.ROBDDPeak = res.Stats.CompilePeakLive
	res.Stats.CompileTasks = int64(cst.Tasks)
	res.Stats.CompileSteals = cst.Steals
	if err != nil {
		return nil, mdd.False, fmt.Errorf("yield: compiling coded ROBDD: %w", err)
	}
	res.CodedROBDDSize = s.Size(broot)
	if specErr != nil {
		return nil, mdd.False, specErr
	}

	p.opts.BuildState.StartPhase(obs.BuildConvert, 0)
	sp = parent.Child("convert")
	t0 = time.Now()
	mm, err := mdd.New(spec.Domains, mdd.WithNodeLimit(p.opts.NodeLimit))
	if err != nil {
		sp.End()
		return nil, mdd.False, err
	}
	mroot, err := convert.ToMDDParallel(s, broot, mm, spec, workers, &res.Stats.Convert,
		convert.WithBuildState(p.opts.BuildState), convert.WithTracer(p.opts.Tracer))
	res.Phases.Convert = time.Since(t0)
	sp.End()
	res.Stats.MDD = mm.BuildStats()
	res.Stats.ConvertPeakLive = s.PeakLive()
	res.ROBDDPeak = max(res.ROBDDPeak, res.Stats.ConvertPeakLive)
	if err != nil {
		return nil, mdd.False, fmt.Errorf("yield: converting to ROMDD: %w", err)
	}
	finishModelStats(res, mm, mroot)
	return mm, mroot, nil
}

func finishModelStats(res *Result, mm *mdd.Manager, mroot mdd.Node) {
	ms := mm.ComputeStats(mroot)
	res.ROMDDSize = ms.Nodes
	res.Stats.ROMDDPerLevel = ms.PerLevel
	res.Stats.ROMDDMaxWidth = ms.MaxWidth
	if res.ROMDDSize > 0 {
		res.Stats.ROBDDToROMDDRatio = float64(res.CodedROBDDSize) / float64(res.ROMDDSize)
	}
}
