package yield

import (
	"fmt"

	"socyield/internal/mdd"
)

// EngineRevision identifies the diagram-construction pipeline. Two
// builds with equal ModelKey produce bit-identical compiled models
// only within one engine revision: the key hashes the *inputs* of the
// build (structure, M, ordering kinds, ε, node budget), while the
// revision pins the *algorithms* that turn those inputs into diagrams
// (ordering heuristic implementations, reduction rules, the canonical
// form itself). Persisted compiled models carry the revision and are
// rejected — and rebuilt — on mismatch, so a store can never serve a
// model the current engine would not have built.
//
// Bump this whenever a change could alter the compiled diagrams or
// their evaluation semantics for an unchanged ModelKey. Revision 6
// corresponds to the complement-edge + parallel-build engine
// (PR 5/PR 6 lineage).
const EngineRevision uint32 = 6

// Snapshot is the portable state of one compiled model — everything a
// Reevaluator needs beyond the caller-supplied per-request inputs. It
// decouples the expensive one-time build from the process that ran it:
// internal/store serializes snapshots to disk, and
// RestoreReevaluator turns a decoded snapshot back into a live,
// concurrency-safe Reevaluator without touching the build pipeline.
type Snapshot struct {
	// EngineRevision is the pipeline revision that built the model
	// (EngineRevision at build time).
	EngineRevision uint32
	// ModelKey is the canonical identity of the compiled model (the
	// yield.ModelKey of the system/options it was built from). Filled
	// by the caller that computed it; "" when unknown.
	ModelKey string
	// SystemName labels the system the model was built for
	// (diagnostics only — it is excluded from ModelKey).
	SystemName string
	// Components is the component count C; per-request lethality
	// vectors must have exactly this length.
	Components int
	// M is the truncation point the ROMDD was built for.
	M int
	// GroupSeq maps MV level → group index (0 = the defect-count
	// variable w, l ≥ 1 = the lethal-defect variable v_l), exactly as
	// the order plan produced it.
	GroupSeq []int
	// Frozen is the compiled ROMDD.
	Frozen *mdd.Frozen
	// Build pins the provenance scalars of the one-time build.
	Build BuildSummary
}

// BuildSummary carries the structural outcome of the one-time build —
// the scalars reports print and the bit-identity tests compare. All
// fields are exact integers or exactly-reproducible float64s, so a
// loaded model can be asserted `==` against a fresh build.
type BuildSummary struct {
	// Yield and ErrorBound are the build-time defaults: the yield under
	// the distribution the model was compiled with, and the tail mass
	// beyond M.
	Yield      float64
	ErrorBound float64
	// PL and LambdaPrime echo the build-time lethal model.
	PL          float64
	LambdaPrime float64
	// GGates/BinaryVars size the synthesized G function;
	// CodedROBDDSize/ROMDDSize the diagrams.
	GGates         int
	BinaryVars     int
	CodedROBDDSize int
	ROMDDSize      int
}

// Snapshot extracts the Reevaluator's persistable state. The snapshot
// shares the (immutable) frozen ROMDD with the Reevaluator and copies
// everything else, so it is safe to use concurrently with ongoing
// evaluations.
func (r *Reevaluator) Snapshot() *Snapshot {
	return &Snapshot{
		EngineRevision: EngineRevision,
		SystemName:     r.sys.Name,
		Components:     len(r.sys.Components),
		M:              r.m,
		GroupSeq:       append([]int(nil), r.groupSeq...),
		Frozen:         r.frozen,
		Build: BuildSummary{
			Yield:          r.Result.Yield,
			ErrorBound:     r.Result.ErrorBound,
			PL:             r.Result.PL,
			LambdaPrime:    r.Result.LambdaPrime,
			GGates:         r.Result.GGates,
			BinaryVars:     r.Result.BinaryVars,
			CodedROBDDSize: r.Result.CodedROBDDSize,
			ROMDDSize:      r.Result.ROMDDSize,
		},
	}
}

// Validate cross-checks the snapshot's metadata against its frozen
// ROMDD: engine revision, component count, truncation point, the
// group sequence (a permutation of {0..M} with exactly one w), and the
// per-level domains the evaluation's probability tables will be sized
// to. A snapshot that passes cannot make Yield/YieldRaw/Sweep read out
// of bounds — decoders call this before handing a snapshot out.
func (s *Snapshot) Validate() error {
	if s.EngineRevision != EngineRevision {
		return fmt.Errorf("yield: snapshot built by engine revision %d, this engine is revision %d", s.EngineRevision, EngineRevision)
	}
	if s.Frozen == nil {
		return fmt.Errorf("yield: snapshot has no ROMDD")
	}
	if s.Components < 2 {
		return fmt.Errorf("yield: snapshot has %d components, need ≥ 2", s.Components)
	}
	if s.M < 0 {
		return fmt.Errorf("yield: snapshot has M = %d < 0", s.M)
	}
	if len(s.GroupSeq) != s.M+1 {
		return fmt.Errorf("yield: snapshot GroupSeq has %d entries, want M+1 = %d", len(s.GroupSeq), s.M+1)
	}
	if got := s.Frozen.NumVars(); got != s.M+1 {
		return fmt.Errorf("yield: snapshot ROMDD has %d variables, want M+1 = %d", got, s.M+1)
	}
	seen := make([]bool, len(s.GroupSeq))
	for mvLevel, gi := range s.GroupSeq {
		if gi < 0 || gi > s.M {
			return fmt.Errorf("yield: snapshot GroupSeq[%d] = %d outside [0,%d]", mvLevel, gi, s.M)
		}
		if seen[gi] {
			return fmt.Errorf("yield: snapshot GroupSeq repeats group %d", gi)
		}
		seen[gi] = true
		want := s.Components
		if gi == 0 {
			want = s.M + 2
		}
		if got := s.Frozen.Domain(mvLevel); got != want {
			return fmt.Errorf("yield: snapshot ROMDD level %d (group %d) has domain %d, want %d", mvLevel, gi, got, want)
		}
	}
	if got := s.Frozen.Size(); got != s.Build.ROMDDSize {
		return fmt.Errorf("yield: snapshot declares %d ROMDD nodes, arena has %d", s.Build.ROMDDSize, got)
	}
	return nil
}

// RestoreReevaluator turns a snapshot back into a live Reevaluator.
// The restored instance evaluates bit-identically to the one the
// snapshot was taken from: it shares the same frozen ROMDD arena and
// the same group sequence, and Yield/YieldRaw/Sweep/Sensitivities are
// pure functions of those. Result carries the build provenance (phase
// timings are zero — the build did not run here); the ROMDD structural
// stats are recomputed from the arena.
//
// The snapshot is validated first; a snapshot from a hostile or
// corrupted source fails here rather than during evaluation.
func RestoreReevaluator(snap *Snapshot) (*Reevaluator, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	stats := snap.Frozen.ComputeStats()
	res := &Result{
		Yield:          snap.Build.Yield,
		ErrorBound:     snap.Build.ErrorBound,
		M:              snap.M,
		PL:             snap.Build.PL,
		LambdaPrime:    snap.Build.LambdaPrime,
		GGates:         snap.Build.GGates,
		BinaryVars:     snap.Build.BinaryVars,
		CodedROBDDSize: snap.Build.CodedROBDDSize,
		ROMDDSize:      snap.Build.ROMDDSize,
	}
	res.Stats.ROMDDPerLevel = stats.PerLevel
	res.Stats.ROMDDMaxWidth = stats.MaxWidth
	if res.ROMDDSize > 0 {
		res.Stats.ROBDDToROMDDRatio = float64(res.CodedROBDDSize) / float64(res.ROMDDSize)
	}
	// The stub system carries exactly what evaluation consults: the
	// component count (input-length checks) and the name (reports).
	// Lethalities and the fault tree live only in the build pipeline.
	sys := &System{Name: snap.SystemName, Components: make([]Component, snap.Components)}
	return &Reevaluator{
		sys:      sys,
		m:        snap.M,
		frozen:   snap.Frozen,
		groupSeq: append([]int(nil), snap.GroupSeq...),
		Result:   res,
	}, nil
}
