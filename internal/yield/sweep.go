package yield

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"socyield/internal/defects"
	"socyield/internal/mdd"
	"socyield/internal/obs"
)

// SweepPoint is one evaluation request of a sweep: per-component
// lethalities PS (the paper's P_i) under defect distribution Dist.
// When Dist is nil the point inherits SweepOptions.Dist.
type SweepPoint struct {
	PS   []float64
	Dist defects.Distribution
}

// SweepResult is the outcome for the sweep point at the same index.
type SweepResult struct {
	// Yield is the pessimistic estimate Y_M for the point's model; the
	// true yield lies in [Yield, Yield+ErrorBound].
	Yield      float64
	ErrorBound float64
	// Err is non-nil when the point's inputs were invalid (results for
	// other points are unaffected).
	Err error
}

// SweepOptions configure a sweep.
type SweepOptions struct {
	// Workers is the number of evaluation goroutines; ≤ 0 means
	// runtime.GOMAXPROCS(0). The results are independent of the worker
	// count: every point's arithmetic is self-contained, so a sweep
	// with Workers: 8 is bit-identical to Workers: 1.
	Workers int
	// Dist is the default defect distribution for points that leave
	// SweepPoint.Dist nil.
	Dist defects.Distribution
	// Recorder, when non-nil, receives sweep instrumentation: a
	// "sweep.point_ns" latency histogram, "sweep.points" and
	// "sweep.errors" counters, per-pool busy time ("sweep.busy_ns") and
	// a "sweep.utilization" gauge (busy time / workers × wall time).
	// Leaving it nil keeps the per-point loop free of clock reads.
	Recorder *obs.Registry
	// Progress, when non-nil, is advanced by one per completed point
	// (one atomic add; safe to share with other phases).
	Progress *obs.Progress
}

func (o SweepOptions) workers(points int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep evaluates a grid of (P_i, distribution) points on the shared
// frozen ROMDD with a bounded worker pool. Results are order-stable:
// out[i] always corresponds to points[i]. Cost per point is one
// lethal-model transform plus one linear ROMDD pass, so sweeps of
// thousands of points are routine; the worker pool exists to use every
// core, not to hide expensive rebuilds — nothing is rebuilt.
//
// Points with invalid inputs report through SweepResult.Err instead of
// failing the whole sweep, so a grid that brushes P_L = 0 or P_L > 1
// at its edges still returns every interior value.
func (r *Reevaluator) Sweep(points []SweepPoint, opts SweepOptions) []SweepResult {
	out := make([]SweepResult, len(points))
	if len(points) == 0 {
		return out
	}
	workers := opts.workers(len(points))
	rec := opts.Recorder
	// Resolve instruments once, outside the point loop; nil stays nil
	// and the loop takes the uninstrumented branch.
	var pointNS *obs.Histogram
	var pointCnt, errCnt, busyNS *obs.Counter
	var sweepStart time.Time
	if rec != nil {
		pointNS = rec.Histogram("sweep.point_ns")
		pointCnt = rec.Counter("sweep.points")
		errCnt = rec.Counter("sweep.errors")
		busyNS = rec.Counter("sweep.busy_ns")
		rec.Gauge("sweep.workers").Set(int64(workers))
		sweepStart = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-goroutine scratch space: the frozen ROMDD itself is
			// shared read-only, everything mutable is local.
			var buf mdd.ProbBuffer
			var localBusy time.Duration
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					break
				}
				dist := points[i].Dist
				if dist == nil {
					dist = opts.Dist
				}
				if dist == nil {
					out[i] = SweepResult{Err: errNoDist}
					errCnt.Inc()
					opts.Progress.Add(1)
					continue
				}
				var t0 time.Time
				if rec != nil {
					t0 = time.Now()
				}
				y, bound, err := r.yieldWith(points[i].PS, dist, &buf)
				if rec != nil {
					d := time.Since(t0)
					localBusy += d
					pointNS.Observe(int64(d))
					pointCnt.Inc()
					if err != nil {
						errCnt.Inc()
					}
				}
				out[i] = SweepResult{Yield: y, ErrorBound: bound, Err: err}
				opts.Progress.Add(1)
			}
			busyNS.Add(int64(localBusy))
		}()
	}
	wg.Wait()
	if rec != nil {
		wall := time.Since(sweepStart)
		if denom := wall.Nanoseconds() * int64(workers); denom > 0 {
			rec.FloatGauge("sweep.utilization").Set(float64(busyNS.Load()) / float64(denom))
		}
	}
	return out
}

// errNoDist reports a sweep point with no distribution anywhere.
var errNoDist = errNoDistribution{}

type errNoDistribution struct{}

func (errNoDistribution) Error() string {
	return "yield: sweep point has no distribution (set SweepPoint.Dist or SweepOptions.Dist)"
}

// LambdaGrid is a convenience builder for the most common sweep: fixed
// per-component lethalities ps evaluated against one distribution per
// entry of dists (e.g. negative binomials over a λ×α grid).
func LambdaGrid(ps []float64, dists []defects.Distribution) []SweepPoint {
	points := make([]SweepPoint, len(dists))
	for i, d := range dists {
		points[i] = SweepPoint{PS: ps, Dist: d}
	}
	return points
}
