package yield

import (
	"fmt"
	"math/rand"
	"testing"

	"socyield/internal/bdd"
	"socyield/internal/order"
)

// TestComplementEdgeEquivalence runs the full pipeline on randomized
// fault trees twice — once with the default complement-edge ROBDD
// engine and once with bdd.WithoutComplementEdges — and asserts the
// results are identical to the last bit. Both engines are canonical
// for the same variable order, so the coded ROBDDs denote the same
// function, the conversion discovers the same ROMDD in the same
// order, and every float64 operation of the probability traversal
// happens in the same sequence: Y_M must match under ==, not a
// tolerance.
func TestComplementEdgeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	mvKinds := []order.MVKind{order.MVWeight, order.MVWV, order.MVVW, order.MVTopology, order.MVH4}
	trees := 50
	if testing.Short() {
		trees = 12
	}
	for i := 0; i < trees; i++ {
		c := 3 + rng.Intn(5) // 3..7 components
		sys := randomOracleSystem(rng, c)
		dist := randomDistribution(rng)
		eps := []float64{5e-2, 1e-2, 2e-3}[rng.Intn(3)]
		opts := Options{
			Defects: dist,
			Epsilon: eps,
			MVOrder: mvKinds[rng.Intn(len(mvKinds))],
		}
		name := fmt.Sprintf("tree %d (C=%d, %v, ε=%g, mv=%v)", i, c, dist, eps, opts.MVOrder)

		ce, err := Evaluate(sys, opts)
		if err != nil {
			t.Fatalf("%s: complement-edge evaluate: %v", name, err)
		}
		classic := opts
		classic.bddOptions = []bdd.Option{bdd.WithoutComplementEdges()}
		cl, err := Evaluate(sys, classic)
		if err != nil {
			t.Fatalf("%s: classic evaluate: %v", name, err)
		}

		if ce.M != cl.M {
			t.Errorf("%s: truncation point differs: %d vs %d", name, ce.M, cl.M)
		}
		if ce.Yield != cl.Yield {
			t.Errorf("%s: Y_M differs: %.17g (complement edges) vs %.17g (classic)", name, ce.Yield, cl.Yield)
		}
		if ce.ErrorBound != cl.ErrorBound {
			t.Errorf("%s: error bound differs: %.17g vs %.17g", name, ce.ErrorBound, cl.ErrorBound)
		}
		// The ROMDD is canonical for the MV order, so its size cannot
		// depend on the binary engine's node representation.
		if ce.ROMDDSize != cl.ROMDDSize {
			t.Errorf("%s: ROMDD size differs: %d vs %d", name, ce.ROMDDSize, cl.ROMDDSize)
		}
		// Complement edges merge the terminals and share a function
		// with its negation, so the stored diagram can only be smaller.
		if ce.CodedROBDDSize > cl.CodedROBDDSize {
			t.Errorf("%s: complement-edge ROBDD larger than classic: %d vs %d", name, ce.CodedROBDDSize, cl.CodedROBDDSize)
		}
	}
}
