package yield

import (
	"math/rand"
	"strings"
	"testing"

	"socyield/internal/defects"
)

// TestSnapshotRestoreBitIdentical: a restored Reevaluator evaluates
// exactly (==) like the one it was snapshotted from, across
// distributions, raw inputs and sweeps.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		sys := randomSystem(rng)
		opts := Options{Defects: nb(0.5+2*rng.Float64(), 0.5+3*rng.Float64()), Epsilon: 1e-3}
		re, err := NewReevaluator(sys, opts)
		if err != nil {
			t.Fatalf("trial %d: NewReevaluator: %v", trial, err)
		}
		snap := re.Snapshot()
		if snap.EngineRevision != EngineRevision {
			t.Fatalf("trial %d: snapshot revision %d", trial, snap.EngineRevision)
		}
		got, err := RestoreReevaluator(snap)
		if err != nil {
			t.Fatalf("trial %d: RestoreReevaluator: %v", trial, err)
		}
		if got.M() != re.M() || got.NumComponents() != re.NumComponents() {
			t.Fatalf("trial %d: M/C differ: %d/%d vs %d/%d", trial, got.M(), got.NumComponents(), re.M(), re.NumComponents())
		}
		if got.Result.Yield != re.Result.Yield || got.Result.ErrorBound != re.Result.ErrorBound ||
			got.Result.ROMDDSize != re.Result.ROMDDSize {
			t.Fatalf("trial %d: build summary differs", trial)
		}
		ps := make([]float64, len(sys.Components))
		for i, c := range sys.Components {
			ps[i] = c.P
		}
		dists := []defects.Distribution{
			nb(1.5, 2.5), mustPoisson(t, 0.8), defects.Geometric{Lambda: 1.2}, defects.Deterministic{N: 2},
		}
		for _, dist := range dists {
			y1, b1, err1 := re.Yield(ps, dist)
			y2, b2, err2 := got.Yield(ps, dist)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: error mismatch: %v vs %v", trial, err1, err2)
			}
			if y1 != y2 || b1 != b2 {
				t.Fatalf("trial %d: %v: yield %v/%v vs %v/%v", trial, dist, y2, b2, y1, b1)
			}
		}
		points := LambdaGrid(ps, dists)
		r1 := re.Sweep(points, SweepOptions{Workers: 2})
		r2 := got.Sweep(points, SweepOptions{Workers: 3})
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("trial %d: sweep point %d differs: %+v vs %+v", trial, i, r2[i], r1[i])
			}
		}
	}
}

func mustPoisson(t *testing.T, lambda float64) defects.Distribution {
	t.Helper()
	d, err := defects.NewPoisson(lambda)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	return d
}

// TestSnapshotValidateRejects exercises every cross-check.
func TestSnapshotValidateRejects(t *testing.T) {
	sys := tmrSystem(0.2, 0.2, 0.1)
	re, err := NewReevaluator(sys, Options{Defects: nb(2, 2), Epsilon: 5e-3})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		errPart string
	}{
		{"wrong revision", func(s *Snapshot) { s.EngineRevision++ }, "engine revision"},
		{"nil frozen", func(s *Snapshot) { s.Frozen = nil }, "no ROMDD"},
		{"too few components", func(s *Snapshot) { s.Components = 1 }, "components"},
		{"negative M", func(s *Snapshot) { s.M = -1 }, "M = -1"},
		{"short group seq", func(s *Snapshot) { s.GroupSeq = s.GroupSeq[:1] }, "GroupSeq"},
		{"group out of range", func(s *Snapshot) { s.GroupSeq[0] = s.M + 1 }, "outside"},
		{"repeated group", func(s *Snapshot) { s.GroupSeq[1] = s.GroupSeq[0] }, "repeats"},
		{"component mismatch", func(s *Snapshot) { s.Components += 3 }, "domain"},
		{"size mismatch", func(s *Snapshot) { s.Build.ROMDDSize++ }, "nodes"},
	}
	for _, tc := range cases {
		snap := re.Snapshot()
		tc.mutate(snap)
		_, err := RestoreReevaluator(snap)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}
