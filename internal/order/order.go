// Package order implements the variable-ordering heuristics of the
// paper: the static gate-level heuristics topology (Nikolskaïa, Rauzy &
// Sherman), weight (Minato, Ishiura & Yajima) and H4 (Bouissou, Bruyère
// & Rauzy), and their assembly into orderings of the multiple-valued
// variables w, v_1..v_M and of the groups of binary variables encoding
// each multiple-valued variable.
package order

import (
	"fmt"
	"math"
	"sort"

	"socyield/internal/logic"
)

// Heuristic selects a gate-level input-ordering heuristic.
type Heuristic uint8

// The three heuristics of Section 2 of the paper.
const (
	// Topology orders inputs as discovered by a depth-first leftmost
	// traversal of the gate description.
	Topology Heuristic = iota + 1
	// Weight assigns weight 1 to inputs and the fan-in weight sum to
	// gates, stably reorders every fan-in by increasing weight, and
	// then orders inputs by depth-first leftmost traversal.
	Weight
	// H4 performs a depth-first leftmost traversal in which the fan-in
	// of a gate is sorted, when the gate is first visited, by (1) the
	// number of not-yet-visited inputs in its dependency cone and (2)
	// the sum of the indices already assigned to visited inputs in its
	// cone, preserving the original order on ties.
	H4
)

// String returns the paper's short name for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case Topology:
		return "t"
	case Weight:
		return "w"
	case H4:
		return "h"
	default:
		return fmt.Sprintf("heuristic(%d)", uint8(h))
	}
}

// InputRanks runs the heuristic on the netlist and returns the rank
// (0-based position in the computed order) of every declared input,
// indexed by input declaration ordinal. Inputs outside the output cone
// are ranked after all reachable inputs, in declaration order.
func InputRanks(n *logic.Netlist, h Heuristic) ([]int, error) {
	var seq []logic.GateID
	var err error
	switch h {
	case Topology:
		seq, err = n.ReachableInputs()
	case Weight:
		seq, err = weightOrder(n)
	case H4:
		seq, err = h4Order(n)
	default:
		return nil, fmt.Errorf("order: unknown heuristic %v", h)
	}
	if err != nil {
		return nil, err
	}
	ranks := make([]int, n.NumInputs())
	for i := range ranks {
		ranks[i] = -1
	}
	next := 0
	for _, id := range seq {
		ranks[n.InputOrdinal(id)] = next
		next++
	}
	for ord, r := range ranks {
		if r == -1 {
			ranks[ord] = next
			next++
		}
	}
	return ranks, nil
}

// weightOrder implements the weight heuristic: compute DAG weights
// bottom-up, then traverse depth-first leftmost with each gate's fan-in
// stably re-sorted by increasing weight.
func weightOrder(n *logic.Netlist) ([]logic.GateID, error) {
	out, ok := n.Output()
	if !ok {
		return nil, logic.ErrNoOutput
	}
	weights := make([]float64, n.NumNodes())
	if err := n.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		switch g.Kind {
		case logic.InputKind:
			weights[id] = 1
		case logic.ConstKind:
			weights[id] = 0
		default:
			var w float64
			for _, f := range g.Fanin {
				w += weights[f]
			}
			weights[id] = w
		}
	}); err != nil {
		return nil, err
	}
	var inputs []logic.GateID
	seen := make([]bool, n.NumNodes())
	var walk func(id logic.GateID)
	walk = func(id logic.GateID) {
		if seen[id] {
			return
		}
		seen[id] = true
		g := n.Gate(id)
		if g.Kind == logic.InputKind {
			inputs = append(inputs, id)
			return
		}
		fanin := make([]logic.GateID, len(g.Fanin))
		copy(fanin, g.Fanin)
		sort.SliceStable(fanin, func(a, b int) bool {
			return weights[fanin[a]] < weights[fanin[b]]
		})
		for _, f := range fanin {
			walk(f)
		}
	}
	walk(out)
	return inputs, nil
}

// bitset is a fixed-capacity bitset over input ordinals.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// h4Order implements the H4 heuristic.
func h4Order(n *logic.Netlist) ([]logic.GateID, error) {
	out, ok := n.Output()
	if !ok {
		return nil, logic.ErrNoOutput
	}
	// Dependency cones as input-ordinal bitsets, bottom-up.
	cones := make([]bitset, n.NumNodes())
	if err := n.VisitDepthFirst(func(id logic.GateID, g logic.Gate) {
		c := newBitset(n.NumInputs())
		if g.Kind == logic.InputKind {
			c.set(n.InputOrdinal(id))
		}
		for _, f := range g.Fanin {
			c.orInto(cones[f])
		}
		cones[id] = c
	}); err != nil {
		return nil, err
	}
	visited := make([]bool, n.NumInputs()) // by input ordinal
	index := make([]int, n.NumInputs())    // assigned order index
	var inputs []logic.GateID
	seen := make([]bool, n.NumNodes())
	var walk func(id logic.GateID)
	walk = func(id logic.GateID) {
		if seen[id] {
			return
		}
		seen[id] = true
		g := n.Gate(id)
		if g.Kind == logic.InputKind {
			ord := n.InputOrdinal(id)
			if !visited[ord] {
				visited[ord] = true
				index[ord] = len(inputs)
				inputs = append(inputs, id)
			}
			return
		}
		fanin := make([]logic.GateID, len(g.Fanin))
		copy(fanin, g.Fanin)
		// Criteria are evaluated now, at first visit of this gate.
		type key struct{ nonVisited, sumIdx int }
		keys := make(map[logic.GateID]key, len(fanin))
		for _, f := range fanin {
			if _, done := keys[f]; done {
				continue
			}
			var k key
			c := cones[f]
			for ord := 0; ord < n.NumInputs(); ord++ {
				if !c.get(ord) {
					continue
				}
				if visited[ord] {
					k.sumIdx += index[ord]
				} else {
					k.nonVisited++
				}
			}
			keys[f] = k
		}
		sort.SliceStable(fanin, func(a, b int) bool {
			ka, kb := keys[fanin[a]], keys[fanin[b]]
			if ka.nonVisited != kb.nonVisited {
				return ka.nonVisited < kb.nonVisited
			}
			return ka.sumIdx < kb.sumIdx
		})
		for _, f := range fanin {
			walk(f)
		}
	}
	walk(out)
	return inputs, nil
}

// MVKind selects the ordering of the multiple-valued variables
// w, v_1..v_M (Section 2 of the paper).
type MVKind uint8

// The seven orderings the paper experiments with.
const (
	// MVWV is w, v_1, …, v_M.
	MVWV MVKind = iota + 1
	// MVWVR is w, v_M, …, v_1.
	MVWVR
	// MVVW is v_1, …, v_M, w.
	MVVW
	// MVVRW is v_M, …, v_1, w.
	MVVRW
	// MVTopology sorts the multiple-valued variables by increasing
	// average topology-heuristic index over their bit groups.
	MVTopology
	// MVWeight does the same with the weight heuristic.
	MVWeight
	// MVH4 does the same with the H4 heuristic.
	MVH4
)

// String returns the paper's name of the ordering.
func (k MVKind) String() string {
	switch k {
	case MVWV:
		return "wv"
	case MVWVR:
		return "wvr"
	case MVVW:
		return "vw"
	case MVVRW:
		return "vrw"
	case MVTopology:
		return "t"
	case MVWeight:
		return "w"
	case MVH4:
		return "h"
	default:
		return fmt.Sprintf("mv(%d)", uint8(k))
	}
}

// ParseMVKind parses the paper's name of an MV ordering.
func ParseMVKind(s string) (MVKind, error) {
	for _, k := range []MVKind{MVWV, MVWVR, MVVW, MVVRW, MVTopology, MVWeight, MVH4} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("order: unknown MV ordering %q", s)
}

// BitKind selects the ordering of the binary variables inside each
// group encoding one multiple-valued variable.
type BitKind uint8

// The five bit-group orderings the paper experiments with.
const (
	// BitML orders most to least significant bit.
	BitML BitKind = iota + 1
	// BitLM orders least to most significant bit.
	BitLM
	// BitTopology sorts the group's bits by increasing
	// topology-heuristic index.
	BitTopology
	// BitWeight does the same with the weight heuristic.
	BitWeight
	// BitH4 does the same with the H4 heuristic.
	BitH4
)

// String returns the paper's name of the ordering.
func (k BitKind) String() string {
	switch k {
	case BitML:
		return "ml"
	case BitLM:
		return "lm"
	case BitTopology:
		return "t"
	case BitWeight:
		return "w"
	case BitH4:
		return "h"
	default:
		return fmt.Sprintf("bit(%d)", uint8(k))
	}
}

// ParseBitKind parses the paper's name of a bit-group ordering.
func ParseBitKind(s string) (BitKind, error) {
	for _, k := range []BitKind{BitML, BitLM, BitTopology, BitWeight, BitH4} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("order: unknown bit ordering %q", s)
}

// Group describes the binary encoding of one multiple-valued variable:
// the input ordinals (in the G netlist) of its bits, most significant
// first.
type Group struct {
	Name string
	Bits []int // input declaration ordinals, MSB first
}

// Plan is a complete variable-ordering decision: which group occupies
// which region of levels and which bit occupies which level.
type Plan struct {
	// GroupSeq[i] is the index (into the natural w,v_1..v_M slice)
	// of the multiple-valued variable at MV level i.
	GroupSeq []int
	// BinaryLevels[ord] is the BDD level assigned to the input with
	// declaration ordinal ord. Groups occupy contiguous level ranges
	// following GroupSeq.
	BinaryLevels []int
	// BitAtLevel[level] is the input ordinal placed at that level
	// (the inverse of BinaryLevels).
	BitAtLevel []int
}

// heuristicOf maps matching MV and bit orderings onto the underlying
// gate-level heuristic.
func heuristicOf(mv MVKind, bits BitKind) (Heuristic, bool) {
	switch {
	case mv == MVTopology || bits == BitTopology:
		return Topology, true
	case mv == MVWeight || bits == BitWeight:
		return Weight, true
	case mv == MVH4 || bits == BitH4:
		return H4, true
	}
	return 0, false
}

// Compatible reports whether the paper allows combining the given MV
// and bit orderings: ml and lm combine with everything, while a
// heuristic bit ordering must match the heuristic MV ordering.
func Compatible(mv MVKind, bits BitKind) bool {
	switch bits {
	case BitML, BitLM:
		return true
	case BitTopology:
		return mv == MVTopology
	case BitWeight:
		return mv == MVWeight
	case BitH4:
		return mv == MVH4
	default:
		return false
	}
}

// Assemble computes the variable-ordering plan for the G netlist whose
// multiple-valued variables are encoded by the given groups (natural
// order: groups[0] = w, groups[1..M] = v_1..v_M). The netlist is
// consulted only for the heuristic orderings.
func Assemble(n *logic.Netlist, groups []Group, mv MVKind, bits BitKind) (*Plan, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("order: no variable groups")
	}
	var ranks []int
	if h, need := heuristicOf(mv, bits); need {
		var err error
		ranks, err = InputRanks(n, h)
		if err != nil {
			return nil, err
		}
	}
	seq, err := groupSequence(groups, mv, ranks)
	if err != nil {
		return nil, err
	}
	nbits := 0
	for _, g := range groups {
		nbits += len(g.Bits)
	}
	plan := &Plan{
		GroupSeq:     seq,
		BinaryLevels: make([]int, n.NumInputs()),
		BitAtLevel:   make([]int, 0, nbits),
	}
	for i := range plan.BinaryLevels {
		plan.BinaryLevels[i] = -1
	}
	for _, gi := range seq {
		ordered, err := groupBits(groups[gi], bits, ranks)
		if err != nil {
			return nil, err
		}
		for _, ord := range ordered {
			if ord < 0 || ord >= n.NumInputs() {
				return nil, fmt.Errorf("order: group %q references input ordinal %d outside netlist (%d inputs)", groups[gi].Name, ord, n.NumInputs())
			}
			if plan.BinaryLevels[ord] != -1 {
				return nil, fmt.Errorf("order: input ordinal %d appears in more than one group", ord)
			}
			plan.BinaryLevels[ord] = len(plan.BitAtLevel)
			plan.BitAtLevel = append(plan.BitAtLevel, ord)
		}
	}
	return plan, nil
}

func groupSequence(groups []Group, mv MVKind, ranks []int) ([]int, error) {
	m := len(groups) - 1 // groups[0] is w
	seq := make([]int, 0, len(groups))
	switch mv {
	case MVWV:
		for i := 0; i <= m; i++ {
			seq = append(seq, i)
		}
	case MVWVR:
		seq = append(seq, 0)
		for i := m; i >= 1; i-- {
			seq = append(seq, i)
		}
	case MVVW:
		for i := 1; i <= m; i++ {
			seq = append(seq, i)
		}
		seq = append(seq, 0)
	case MVVRW:
		for i := m; i >= 1; i-- {
			seq = append(seq, i)
		}
		seq = append(seq, 0)
	case MVTopology, MVWeight, MVH4:
		if ranks == nil {
			return nil, fmt.Errorf("order: heuristic MV ordering %v without computed ranks", mv)
		}
		type ga struct {
			idx int
			avg float64
		}
		avgs := make([]ga, len(groups))
		for i, g := range groups {
			sum := 0.0
			for _, ord := range g.Bits {
				if ord < 0 || ord >= len(ranks) {
					return nil, fmt.Errorf("order: group %q bit ordinal %d out of range", g.Name, ord)
				}
				sum += float64(ranks[ord])
			}
			avg := math.Inf(1)
			if len(g.Bits) > 0 {
				avg = sum / float64(len(g.Bits))
			}
			avgs[i] = ga{idx: i, avg: avg}
		}
		sort.SliceStable(avgs, func(a, b int) bool { return avgs[a].avg < avgs[b].avg })
		for _, a := range avgs {
			seq = append(seq, a.idx)
		}
	default:
		return nil, fmt.Errorf("order: unknown MV ordering %v", mv)
	}
	return seq, nil
}

func groupBits(g Group, bits BitKind, ranks []int) ([]int, error) {
	out := make([]int, len(g.Bits))
	copy(out, g.Bits)
	switch bits {
	case BitML:
		// as stored: MSB first
	case BitLM:
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	case BitTopology, BitWeight, BitH4:
		if ranks == nil {
			return nil, fmt.Errorf("order: heuristic bit ordering %v without computed ranks", bits)
		}
		sort.SliceStable(out, func(a, b int) bool { return ranks[out[a]] < ranks[out[b]] })
	default:
		return nil, fmt.Errorf("order: unknown bit ordering %v", bits)
	}
	return out, nil
}
