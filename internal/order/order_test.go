package order

import (
	"testing"

	"socyield/internal/logic"
)

// buildSkewed returns a netlist out = OR(AND(a,b,c), d) with inputs
// declared a,b,c,d. Weight puts d (weight 1) before the AND (weight 3).
func buildSkewed() *logic.Netlist {
	n := logic.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	n.SetOutput(n.Or(n.And(a, b, c), d))
	return n
}

func ranksToSeq(t *testing.T, n *logic.Netlist, ranks []int) []string {
	t.Helper()
	names := n.InputNames()
	out := make([]string, len(ranks))
	for ord, r := range ranks {
		if r < 0 || r >= len(out) {
			t.Fatalf("rank %d of ordinal %d out of range", r, ord)
		}
		if out[r] != "" {
			t.Fatalf("duplicate rank %d", r)
		}
		out[r] = names[ord]
	}
	return out
}

func TestTopologyOrder(t *testing.T) {
	n := buildSkewed()
	ranks, err := InputRanks(n, Topology)
	if err != nil {
		t.Fatalf("InputRanks: %v", err)
	}
	seq := ranksToSeq(t, n, ranks)
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("topology order = %v, want %v", seq, want)
		}
	}
}

func TestWeightOrderPrefersLightFanin(t *testing.T) {
	n := buildSkewed()
	ranks, err := InputRanks(n, Weight)
	if err != nil {
		t.Fatalf("InputRanks: %v", err)
	}
	seq := ranksToSeq(t, n, ranks)
	// OR's fan-in re-sorted by weight: d (1) before AND (3).
	want := []string{"d", "a", "b", "c"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("weight order = %v, want %v", seq, want)
		}
	}
}

func TestWeightOrderStableOnTies(t *testing.T) {
	n := logic.New()
	a, b := n.Input("a"), n.Input("b")
	n.SetOutput(n.Or(a, b)) // equal weights: original order kept
	ranks, _ := InputRanks(n, Weight)
	seq := ranksToSeq(t, n, ranks)
	if seq[0] != "a" || seq[1] != "b" {
		t.Errorf("tie not stable: %v", seq)
	}
}

func TestH4PrefersFewUnvisitedAndVisitedReuse(t *testing.T) {
	// out = OR( AND(a,b), AND(b,c,d) ). At the OR, both fan-ins have
	// only unvisited inputs: AND(a,b) has 2, AND(b,c,d) has 3 → visit
	// AND(a,b) first (a,b), then AND(b,c,d) adds c,d.
	n := logic.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	left := n.And(b, c, d)
	right := n.And(a, b)
	n.SetOutput(n.Or(left, right)) // declared with the big cone first
	ranks, err := InputRanks(n, H4)
	if err != nil {
		t.Fatalf("InputRanks: %v", err)
	}
	seq := ranksToSeq(t, n, ranks)
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("H4 order = %v, want %v", seq, want)
		}
	}
}

func TestH4SecondCriterionSumOfVisitedIndices(t *testing.T) {
	// Criteria are evaluated when a gate is first visited, so a tie on
	// criterion 1 deeper in the circuit is broken by the sum of the
	// indices of already-visited inputs.
	// out = AND( OR(a,b), AND(OR(b,z), OR(a,x)) ).
	// Visiting OR(a,b) assigns a→0, b→1. At the inner AND, both
	// fan-ins have one unvisited input; visited-index sums are 1 (b)
	// vs 0 (a), so OR(a,x) is visited first despite being listed last.
	n := logic.New()
	a, b := n.Input("a"), n.Input("b")
	z, x := n.Input("z"), n.Input("x")
	inner := n.And(n.Or(b, z), n.Or(a, x))
	n.SetOutput(n.And(n.Or(a, b), inner))
	ranks, err := InputRanks(n, H4)
	if err != nil {
		t.Fatalf("InputRanks: %v", err)
	}
	seq := ranksToSeq(t, n, ranks)
	want := []string{"a", "b", "x", "z"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("H4 order = %v, want %v", seq, want)
		}
	}
}

func TestUnreachableInputsRankedLast(t *testing.T) {
	n := logic.New()
	a := n.Input("a")
	n.Input("dead1")
	b := n.Input("b")
	n.Input("dead2")
	n.SetOutput(n.And(b, a))
	for _, h := range []Heuristic{Topology, Weight, H4} {
		ranks, err := InputRanks(n, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		seq := ranksToSeq(t, n, ranks)
		if seq[0] != "b" || seq[1] != "a" {
			t.Errorf("%v: reachable prefix = %v", h, seq[:2])
		}
		if seq[2] != "dead1" || seq[3] != "dead2" {
			t.Errorf("%v: unreachable tail = %v, want [dead1 dead2]", h, seq[2:])
		}
	}
}

func TestInputRanksErrors(t *testing.T) {
	n := logic.New()
	n.Input("a")
	if _, err := InputRanks(n, Topology); err == nil {
		t.Error("no-output netlist accepted")
	}
	n.SetOutput(n.Input("a"))
	if _, err := InputRanks(n, Heuristic(99)); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

// groupsFixture builds a netlist with 3 groups: w (2 bits), v1 (2
// bits), v2 (2 bits), output touching them in a deterministic order,
// and returns it with natural groups.
func groupsFixture() (*logic.Netlist, []Group) {
	n := logic.New()
	// Declare in natural MSB-first order per group.
	w1, w0 := n.Input("w.1"), n.Input("w.0")
	a1, a0 := n.Input("v1.1"), n.Input("v1.0")
	b1, b0 := n.Input("v2.1"), n.Input("v2.0")
	// Touch v2 before v1 so topology ranks v2's bits earlier.
	n.SetOutput(n.Or(n.And(w1, b0, b1), n.And(w0, a0, a1)))
	groups := []Group{
		{Name: "w", Bits: []int{0, 1}},
		{Name: "v1", Bits: []int{2, 3}},
		{Name: "v2", Bits: []int{4, 5}},
	}
	return n, groups
}

func levelsOf(t *testing.T, n *logic.Netlist, p *Plan) []string {
	t.Helper()
	names := n.InputNames()
	out := make([]string, len(p.BitAtLevel))
	for lv, ord := range p.BitAtLevel {
		out[lv] = names[ord]
	}
	return out
}

func seqEquals(a []string, b ...string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAssembleFixedMVOrderings(t *testing.T) {
	n, groups := groupsFixture()
	cases := []struct {
		mv   MVKind
		want []string
	}{
		{MVWV, []string{"w.1", "w.0", "v1.1", "v1.0", "v2.1", "v2.0"}},
		{MVWVR, []string{"w.1", "w.0", "v2.1", "v2.0", "v1.1", "v1.0"}},
		{MVVW, []string{"v1.1", "v1.0", "v2.1", "v2.0", "w.1", "w.0"}},
		{MVVRW, []string{"v2.1", "v2.0", "v1.1", "v1.0", "w.1", "w.0"}},
	}
	for _, tc := range cases {
		p, err := Assemble(n, groups, tc.mv, BitML)
		if err != nil {
			t.Fatalf("%v: %v", tc.mv, err)
		}
		got := levelsOf(t, n, p)
		if !seqEquals(got, tc.want...) {
			t.Errorf("%v: levels = %v, want %v", tc.mv, got, tc.want)
		}
	}
}

func TestAssembleBitLM(t *testing.T) {
	n, groups := groupsFixture()
	p, err := Assemble(n, groups, MVWV, BitLM)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	got := levelsOf(t, n, p)
	if !seqEquals(got, "w.0", "w.1", "v1.0", "v1.1", "v2.0", "v2.1") {
		t.Errorf("lm levels = %v", got)
	}
}

func TestAssembleHeuristicMV(t *testing.T) {
	n, groups := groupsFixture()
	// Topology discovery: w.1, v2.0, v2.1, w.0, v1.0, v1.1.
	// Average ranks: w = (0+3)/2 = 1.5, v2 = (1+2)/2 = 1.5, v1 = 4.5.
	// Stable sort keeps w before v2 on the tie; v1 last.
	p, err := Assemble(n, groups, MVTopology, BitML)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	got := levelsOf(t, n, p)
	if !seqEquals(got, "w.1", "w.0", "v2.1", "v2.0", "v1.1", "v1.0") {
		t.Errorf("t/ml levels = %v", got)
	}
	if p.GroupSeq[0] != 0 || p.GroupSeq[1] != 2 || p.GroupSeq[2] != 1 {
		t.Errorf("GroupSeq = %v, want [0 2 1]", p.GroupSeq)
	}
	// With heuristic bit ordering t, bits follow discovery order within
	// each group: w.1 before w.0, v2.0 before v2.1, v1.0 before v1.1.
	p2, err := Assemble(n, groups, MVTopology, BitTopology)
	if err != nil {
		t.Fatalf("Assemble t/t: %v", err)
	}
	got2 := levelsOf(t, n, p2)
	if !seqEquals(got2, "w.1", "w.0", "v2.0", "v2.1", "v1.0", "v1.1") {
		t.Errorf("t/t levels = %v", got2)
	}
}

func TestAssembleInvariants(t *testing.T) {
	n, groups := groupsFixture()
	for _, mv := range []MVKind{MVWV, MVWVR, MVVW, MVVRW, MVTopology, MVWeight, MVH4} {
		for _, bits := range []BitKind{BitML, BitLM} {
			p, err := Assemble(n, groups, mv, bits)
			if err != nil {
				t.Fatalf("%v/%v: %v", mv, bits, err)
			}
			// BinaryLevels and BitAtLevel must be inverse bijections.
			if len(p.BitAtLevel) != n.NumInputs() {
				t.Fatalf("%v/%v: %d levels, want %d", mv, bits, len(p.BitAtLevel), n.NumInputs())
			}
			for lv, ord := range p.BitAtLevel {
				if p.BinaryLevels[ord] != lv {
					t.Fatalf("%v/%v: inverse mismatch at level %d", mv, bits, lv)
				}
			}
			// Groups must occupy contiguous level ranges.
			groupAt := make([]int, n.NumInputs())
			for gi, g := range groups {
				for _, ord := range g.Bits {
					groupAt[ord] = gi
				}
			}
			for i := 1; i < len(p.BitAtLevel); i++ {
				prev, cur := groupAt[p.BitAtLevel[i-1]], groupAt[p.BitAtLevel[i]]
				if prev != cur {
					// A group change: cur must not reappear later as prev.
					for j := i + 1; j < len(p.BitAtLevel); j++ {
						if groupAt[p.BitAtLevel[j]] == prev {
							t.Fatalf("%v/%v: group %d split across levels", mv, bits, prev)
						}
					}
				}
			}
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	n, groups := groupsFixture()
	if _, err := Assemble(n, nil, MVWV, BitML); err == nil {
		t.Error("empty groups accepted")
	}
	bad := []Group{{Name: "w", Bits: []int{0, 99}}}
	if _, err := Assemble(n, bad, MVWV, BitML); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	dup := []Group{{Name: "w", Bits: []int{0, 1}}, {Name: "v1", Bits: []int{1, 2}}}
	if _, err := Assemble(n, dup, MVWV, BitML); err == nil {
		t.Error("duplicated ordinal accepted")
	}
	if _, err := Assemble(n, groups, MVKind(99), BitML); err == nil {
		t.Error("unknown MV kind accepted")
	}
	if _, err := Assemble(n, groups, MVWV, BitKind(99)); err == nil {
		t.Error("unknown bit kind accepted")
	}
}

func TestCompatible(t *testing.T) {
	cases := []struct {
		mv   MVKind
		bits BitKind
		want bool
	}{
		{MVWV, BitML, true},
		{MVVRW, BitLM, true},
		{MVWeight, BitML, true},
		{MVWeight, BitWeight, true},
		{MVWeight, BitTopology, false},
		{MVTopology, BitTopology, true},
		{MVTopology, BitH4, false},
		{MVH4, BitH4, true},
		{MVWV, BitWeight, false},
	}
	for _, tc := range cases {
		if got := Compatible(tc.mv, tc.bits); got != tc.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", tc.mv, tc.bits, got, tc.want)
		}
	}
}

func TestParseNames(t *testing.T) {
	for _, s := range []string{"wv", "wvr", "vw", "vrw", "t", "w", "h"} {
		k, err := ParseMVKind(s)
		if err != nil {
			t.Errorf("ParseMVKind(%q): %v", s, err)
		}
		if k.String() != s {
			t.Errorf("round-trip %q -> %v", s, k)
		}
	}
	for _, s := range []string{"ml", "lm", "t", "w", "h"} {
		k, err := ParseBitKind(s)
		if err != nil {
			t.Errorf("ParseBitKind(%q): %v", s, err)
		}
		if k.String() != s {
			t.Errorf("round-trip %q -> %v", s, k)
		}
	}
	if _, err := ParseMVKind("nope"); err == nil {
		t.Error("bad MV name accepted")
	}
	if _, err := ParseBitKind("nope"); err == nil {
		t.Error("bad bit name accepted")
	}
}
