package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sample is one point of the flight recorder's time series: the value
// of every counter, gauge and float gauge in the registry at one
// instant. Histograms and spans are deliberately excluded — they are
// cumulative structures whose trajectory the scalar series already
// implies, and copying them per tick would make sampling expensive.
type Sample struct {
	// UnixNano is the wall-clock sample time; OffsetSeconds the time
	// since the sampler started (convenient for plotting).
	UnixNano      int64              `json:"t_unix_nano"`
	OffsetSeconds float64            `json:"offset_seconds"`
	Counters      map[string]int64   `json:"counters,omitempty"`
	Gauges        map[string]int64   `json:"gauges,omitempty"`
	FloatGauges   map[string]float64 `json:"float_gauges,omitempty"`
}

// sampleScalars reads every scalar instrument. The mutex only guards
// the name maps; the values themselves are atomic loads, so sampling
// never blocks instrument updates.
func (r *Registry) sampleScalars(start time.Time) Sample {
	now := time.Now()
	s := Sample{UnixNano: now.UnixNano(), OffsetSeconds: now.Sub(start).Seconds()}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Load()
		}
	}
	if len(r.floats) > 0 {
		s.FloatGauges = make(map[string]float64, len(r.floats))
		for k, g := range r.floats {
			s.FloatGauges[k] = g.Load()
		}
	}
	return s
}

// Sampler is the flight recorder's time-series collector: a background
// goroutine that snapshots a registry's scalar instruments at a fixed
// interval into a bounded ring buffer. When the ring is full the
// oldest samples are overwritten, so a crash or a late dump always has
// the most recent window of the build — the flight-recorder
// discipline — and memory stays bounded no matter how long the process
// runs.
//
// All methods are safe for concurrent use and no-ops on a nil
// receiver; NewSampler on a nil registry returns nil, so a disabled
// recorder costs nothing.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu      sync.Mutex
	ring    []Sample
	next    int   // ring slot the next sample lands in
	count   int64 // total samples taken
	stopped bool

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

// DefaultSampleInterval is the sampling period used when NewSampler is
// given a non-positive interval: fine enough to resolve GC pauses and
// phase transitions of multi-minute builds, coarse enough to cost
// nothing (~10 map copies per second).
const DefaultSampleInterval = 100 * time.Millisecond

// defaultSampleCapacity bounds the ring when NewSampler is given a
// non-positive capacity: 8192 samples ≈ 13 minutes at the default
// interval.
const defaultSampleCapacity = 8192

// NewSampler creates a sampler over reg. interval ≤ 0 selects
// DefaultSampleInterval; capacity ≤ 0 selects the default ring size.
// The sampler does not run until Start. A nil registry yields a nil
// (fully inert) sampler.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = defaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		ring:     make([]Sample, 0, capacity),
		stop:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine (idempotent). The first
// sample is taken immediately, so even runs shorter than one interval
// record a point.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		s.sampleNow()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			tick := time.NewTicker(s.interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					s.sampleNow()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Stop halts sampling and records one final sample, so the series
// always ends with the run's terminal state. Idempotent; safe to call
// without Start.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		s.sampleNow()
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
	})
}

// Interval returns the sampling period (0 on a nil receiver).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

func (s *Sampler) sampleNow() {
	sample := s.reg.sampleScalars(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sample)
	} else {
		s.ring[s.next] = sample
	}
	s.next = (s.next + 1) % cap(s.ring)
	s.count++
}

// Samples returns the retained samples in chronological order. Safe
// to call at any time, including while sampling continues. Nil on a
// nil receiver.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		return append(out, s.ring...)
	}
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// Dropped returns how many samples were overwritten because the ring
// was full — the amount of history the recording is missing.
func (s *Sampler) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count - int64(len(s.ring))
}

// WriteJSONL writes the retained samples as JSON Lines: one Sample
// object per line, chronological. The format streams into any
// time-series tooling (jq, pandas) without holding the whole file.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sample := range s.Samples() {
		if err := enc.Encode(sample); err != nil {
			return err
		}
	}
	return nil
}
