package obs

import (
	"sync"
	"time"
)

// Span is one timed phase of a run. Spans nest into a tree: the
// pipeline opens a root span per evaluation and a child span per phase
// (prepare, encode, order, compile, convert, eval), so a snapshot shows
// where the wall time went. Timing uses the monotonic clock carried by
// time.Time, so spans are immune to wall-clock adjustments.
//
// All methods are safe for concurrent use and no-ops on a nil
// receiver, so un-instrumented runs pay nothing.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a sub-span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span and returns its duration. Repeated End calls keep
// the first duration. On a nil receiver it returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the span's duration — final if ended, elapsed so
// far otherwise. 0 on a nil receiver.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's name ("" on a nil receiver).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SpanSnapshot is the exported state of one span subtree.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Seconds is the span duration (elapsed so far when still running).
	Seconds float64 `json:"seconds"`
	// StartUnixNano is the wall-clock start of the span, for exports
	// that place spans on an absolute timeline (the Chrome trace
	// writer).
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
	// Running marks spans that had not ended at snapshot time.
	Running  bool           `json:"running,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	dur := s.dur
	ended := s.ended
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !ended {
		dur = time.Since(s.start)
	}
	out := SpanSnapshot{Name: s.name, Seconds: dur.Seconds(), StartUnixNano: s.start.UnixNano(), Running: !ended}
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}
