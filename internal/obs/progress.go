package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports the advance of a long batch (a sweep, a simulation)
// as periodic single-line status reports: items done, percentage,
// throughput, and ETA. A background goroutine owns the printing; the
// workers only call Add, which is one atomic addition, so progress
// reporting never serializes the work it observes.
//
// All methods are no-ops on a nil receiver, so call sites can thread a
// Progress through unconditionally and leave it nil when -progress is
// off.
type Progress struct {
	w        io.Writer
	label    string
	total    int64
	done     atomic.Int64
	start    time.Time
	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup
	closed   sync.Once
}

// NewProgress starts a reporter writing to w every interval (default
// 1s when ≤ 0). total ≤ 0 means the item count is unknown: percentages
// and ETA are omitted. Close must be called to stop the background
// goroutine and emit the final line.
func NewProgress(w io.Writer, label string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{
		w:        w,
		label:    label,
		total:    int64(total),
		start:    time.Now(),
		interval: interval,
		stop:     make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.report(false)
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Add records n completed items. No-op on a nil receiver.
func (p *Progress) Add(n int) {
	if p != nil {
		p.done.Add(int64(n))
	}
}

// Done returns the number of items recorded so far.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// Close stops the reporter and emits one final line. Safe to call more
// than once; no-op on a nil receiver.
func (p *Progress) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.report(true)
	})
}

func (p *Progress) report(final bool) {
	done := p.done.Load()
	elapsed := time.Since(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	switch {
	case final:
		fmt.Fprintf(p.w, "%s: %d done in %s (%.1f/s)\n",
			p.label, done, elapsed.Round(time.Millisecond), rate)
	case p.total > 0:
		// ETA guards against the zero-rate/zero-elapsed edge cases at
		// the start of a long run and clamps overshoot (done > total)
		// to zero instead of a negative estimate.
		eta := "?"
		if d, ok := ETA(done, p.total, elapsed); ok {
			eta = d.Round(time.Second).String()
		}
		fmt.Fprintf(p.w, "%s: %d/%d (%.1f%%)  %.1f/s  ETA %s\n",
			p.label, done, p.total, 100*float64(done)/float64(p.total), rate, eta)
	default:
		fmt.Fprintf(p.w, "%s: %d done  %.1f/s\n", p.label, done, rate)
	}
}
