package obs

import (
	"sync/atomic"
	"time"
)

// BuildPhase identifies where in the one-time model build a
// BuildState currently is. The values follow the pipeline order, so
// phase comparisons are meaningful.
type BuildPhase int32

const (
	// BuildPending: created but no phase started yet.
	BuildPending BuildPhase = iota
	// BuildPrepare covers model preparation, G synthesis and variable
	// ordering (cheap relative to the diagram phases).
	BuildPrepare
	// BuildCompile is the coded-ROBDD compilation.
	BuildCompile
	// BuildConvert is the ROBDD → ROMDD conversion.
	BuildConvert
	// BuildEval is the probability evaluation on the finished ROMDD.
	BuildEval
	// BuildDone: the build finished (successfully or not).
	BuildDone
)

// String returns the phase name used in JSON reports and metrics.
func (p BuildPhase) String() string {
	switch p {
	case BuildPending:
		return "pending"
	case BuildPrepare:
		return "prepare"
	case BuildCompile:
		return "compile"
	case BuildConvert:
		return "convert"
	case BuildEval:
		return "eval"
	case BuildDone:
		return "done"
	default:
		return "unknown"
	}
}

// buildPhaseStart[p] is the phase-weighted overall progress at the
// moment phase p begins; the weight of phase p is the distance to the
// next entry. The weights reflect the measured cost split of large
// builds (BENCH_5/BENCH_6: compile dominates, conversion is the
// second-largest phase, everything else is noise): prepare 1%,
// compile 75%, convert 22%, eval 2%.
var buildPhaseStart = [...]float64{
	BuildPending: 0,
	BuildPrepare: 0,
	BuildCompile: 0.01,
	BuildConvert: 0.76,
	BuildEval:    0.98,
	BuildDone:    1,
}

// BuildState is the live progress of one model build — the unit the
// flight recorder samples and the /v1/builds endpoint lists. The
// build pipeline updates it with single atomic operations (phase
// transitions, work-unit counts, live-node gauge); any goroutine may
// Snapshot it concurrently.
//
// Every method is a no-op on a nil receiver, so the pipeline threads
// a BuildState through unconditionally and un-instrumented builds pay
// only nil checks.
type BuildState struct {
	startNanos atomic.Int64
	phase      atomic.Int32
	phaseStart atomic.Int64 // unix nanos of the current phase start
	done       atomic.Int64 // work units finished in the current phase
	total      atomic.Int64 // work units expected (0 = unknown)
	live       atomic.Int64 // live decision-diagram nodes
}

// NewBuildState returns a tracker with the clock started.
func NewBuildState() *BuildState {
	b := &BuildState{}
	now := time.Now().UnixNano()
	b.startNanos.Store(now)
	b.phaseStart.Store(now)
	return b
}

// StartPhase transitions to phase p and resets the per-phase work
// counters; total ≤ 0 means the phase's unit count is not known (yet —
// SetTotal may follow once it is).
func (b *BuildState) StartPhase(p BuildPhase, total int64) {
	if b == nil {
		return
	}
	b.done.Store(0)
	if total < 0 {
		total = 0
	}
	b.total.Store(total)
	b.phaseStart.Store(time.Now().UnixNano())
	b.phase.Store(int32(p))
}

// Finish marks the build done.
func (b *BuildState) Finish() { b.StartPhase(BuildDone, 0) }

// SetTotal publishes the current phase's expected work-unit count once
// it becomes known (e.g. after the compile task DAG is built).
func (b *BuildState) SetTotal(total int64) {
	if b != nil && total > 0 {
		b.total.Store(total)
	}
}

// Add records n finished work units in the current phase.
func (b *BuildState) Add(n int64) {
	if b != nil {
		b.done.Add(n)
	}
}

// SetLive records the current live decision-diagram node count.
func (b *BuildState) SetLive(n int64) {
	if b != nil {
		b.live.Store(n)
	}
}

// Phase returns the current phase (BuildPending on a nil receiver).
func (b *BuildState) Phase() BuildPhase {
	if b == nil {
		return BuildPending
	}
	return BuildPhase(b.phase.Load())
}

// BuildStatus is a point-in-time snapshot of a BuildState, shaped for
// JSON reporting.
type BuildStatus struct {
	// Phase is the current pipeline phase name.
	Phase string `json:"phase"`
	// ElapsedSeconds is the wall time since the build started;
	// PhaseSeconds since the current phase started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	PhaseSeconds   float64 `json:"phase_seconds"`
	// PhaseDone/PhaseTotal are the work units of the current phase
	// (gate tasks for compile, layer entry nodes for convert);
	// PhaseTotal 0 means the count is unknown.
	PhaseDone  int64 `json:"phase_done"`
	PhaseTotal int64 `json:"phase_total,omitempty"`
	// LiveNodes is the most recently reported live decision-diagram
	// node count.
	LiveNodes int64 `json:"live_nodes,omitempty"`
	// Progress is the phase-weighted overall completion in [0,1].
	Progress float64 `json:"progress"`
	// ETASeconds extrapolates the remaining time from Progress and
	// ElapsedSeconds; negative when no estimate is possible (phase
	// start, unknown totals).
	ETASeconds float64 `json:"eta_seconds"`
}

// Snapshot returns the current status. Safe to call from any
// goroutine; the zero status on a nil receiver.
func (b *BuildState) Snapshot() BuildStatus {
	if b == nil {
		return BuildStatus{Phase: BuildPending.String(), ETASeconds: -1}
	}
	now := time.Now().UnixNano()
	phase := BuildPhase(b.phase.Load())
	done, total := b.done.Load(), b.total.Load()
	st := BuildStatus{
		Phase:          phase.String(),
		ElapsedSeconds: float64(now-b.startNanos.Load()) / 1e9,
		PhaseSeconds:   float64(now-b.phaseStart.Load()) / 1e9,
		PhaseDone:      done,
		PhaseTotal:     total,
		LiveNodes:      b.live.Load(),
		Progress:       buildProgress(phase, done, total),
		ETASeconds:     -1,
	}
	if eta, ok := progressETA(st.Progress, time.Duration(now-b.startNanos.Load())); ok {
		st.ETASeconds = eta.Seconds()
	}
	return st
}

// buildProgress maps (phase, done/total) to the phase-weighted overall
// fraction. An unknown total contributes nothing beyond the phase
// start — progress never overstates.
func buildProgress(p BuildPhase, done, total int64) float64 {
	if p <= BuildPending {
		return 0
	}
	if p >= BuildDone {
		return 1
	}
	start := buildPhaseStart[p]
	width := buildPhaseStart[p+1] - start
	frac := 0.0
	if total > 0 && done > 0 {
		frac = float64(done) / float64(total)
		if frac > 1 {
			frac = 1
		}
	}
	return start + width*frac
}

// progressETA is ETA over a fractional progress: it scales the
// fraction to a fixed unit grid so the same guards (zero rate, zero
// elapsed, clamped negative remainder) apply.
func progressETA(progress float64, elapsed time.Duration) (time.Duration, bool) {
	const grid = 1 << 20
	if !(progress > 0) || progress > 1 {
		if progress > 1 {
			return 0, true
		}
		return 0, false
	}
	return ETA(int64(progress*grid), grid, elapsed)
}
