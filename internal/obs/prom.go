package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes an instrument name into a legal Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*), mapping the registry's dotted names
// onto underscores and prefixing the namespace: "bdd.apply_cache_hits"
// → "socyield_bdd_apply_cache_hits".
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes every instrument in the registry in the
// Prometheus text exposition format (version 0.0.4). Counters export
// as `counter`, gauges and float gauges as `gauge`, and the log2
// histograms as cumulative `le`-bucketed `histogram` series with the
// conventional `_sum`/`_count` pair. Output is sorted by metric name,
// so the format is deterministic and golden-testable. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	snap := r.Snapshot()

	type metric struct {
		typ   string
		lines []string
	}
	metrics := make(map[string]metric)

	for name, v := range snap.Counters {
		n := promName(namespace, name)
		metrics[n] = metric{typ: "counter", lines: []string{
			fmt.Sprintf("%s %d", n, v),
		}}
	}
	for name, v := range snap.Gauges {
		n := promName(namespace, name)
		metrics[n] = metric{typ: "gauge", lines: []string{
			fmt.Sprintf("%s %d", n, v),
		}}
	}
	for name, v := range snap.FloatGauges {
		n := promName(namespace, name)
		metrics[n] = metric{typ: "gauge", lines: []string{
			fmt.Sprintf("%s %s", n, strconv.FormatFloat(v, 'g', -1, 64)),
		}}
	}
	for name, h := range snap.Histograms {
		n := promName(namespace, name)
		lines := make([]string, 0, len(h.Buckets)+3)
		// The registry's buckets are [Lo, Hi) over integers, so the
		// inclusive Prometheus bound is Hi-1; buckets are already in
		// ascending order, which makes the cumulative sum a single pass.
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := strconv.FormatInt(b.Hi-1, 10)
			if b.Hi-1 >= 1<<62 {
				continue // tail bucket: covered by +Inf below
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{le=\"%s\"} %d", n, le, cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", n, h.Count),
			fmt.Sprintf("%s_sum %d", n, h.Sum),
			fmt.Sprintf("%s_count %d", n, h.Count),
		)
		metrics[n] = metric{typ: "histogram", lines: lines}
	}

	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := metrics[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, m.typ); err != nil {
			return err
		}
		for _, line := range m.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler serves the registry in the Prometheus text format,
// suitable for mounting at /metrics and scraping with a standard
// prometheus.yml target. Works (serving an empty body) on a nil
// registry.
func (r *Registry) PrometheusHandler(namespace string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w, namespace)
	})
}
