package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3) // lower: no effect
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Errorf("gauge after SetMax = %d, want 9", got)
	}
	f := r.FloatGauge("f")
	f.Set(0.75)
	if got := f.Load(); got != 0.75 {
		t.Errorf("float gauge = %v, want 0.75", got)
	}
}

// TestNilReceivers exercises the disabled-metrics path: every method of
// every type must be a safe no-op on nil.
func TestNilReceivers(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	if r.Counter("x").Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	r.Gauge("x").Set(1)
	r.Gauge("x").SetMax(1)
	if r.Gauge("x").Load() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	r.FloatGauge("x").Set(1)
	if r.FloatGauge("x").Load() != 0 {
		t.Error("nil float gauge loaded nonzero")
	}
	r.Histogram("x").Observe(1)
	r.Histogram("x").ObserveSince(time.Now())
	if r.Histogram("x").Count() != 0 || r.Histogram("x").Sum() != 0 {
		t.Error("nil histogram counted")
	}
	sp := r.Span("x")
	child := sp.Child("y")
	child.End()
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Error("nil span reported state")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	r.Publish("never")

	var p *Progress
	p.Add(3)
	if p.Done() != 0 {
		t.Error("nil progress counted")
	}
	p.Close()
}

// TestHistogramBucketBoundaries pins the log2 bucket layout: bucket i
// holds [2^i, 2^(i+1)), bucket 0 additionally absorbs v < 1, the last
// bucket absorbs everything beyond 2^47.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 1},
		{4, 2}, {7, 2},
		{8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
		{1 << 46, 46},
		{1<<47 - 1, 46},
		{1 << 47, 47},
		{math.MaxInt64, 47},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		lo, hi := BucketBounds(tc.bucket)
		v := tc.v
		if v < 0 {
			v = 0
		}
		// hi is exclusive except for the last bucket, which absorbs
		// everything up to and including MaxInt64.
		if v < lo || (v >= hi && tc.bucket != histBuckets-1) {
			t.Errorf("value %d outside its bucket bounds [%d, %d)", tc.v, lo, hi)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 2 {
		t.Errorf("BucketBounds(0) = [%d, %d), want [0, 2)", lo, hi)
	}
	if _, hi := BucketBounds(histBuckets - 1); hi != math.MaxInt64 {
		t.Errorf("last bucket hi = %d, want MaxInt64", hi)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %d, want 106", h.Sum())
	}
	if got := h.max.Load(); got != 100 {
		t.Errorf("max = %d, want 100", got)
	}
	snap := snapshotHistogram(&h)
	if snap.Mean != 106.0/4 {
		t.Errorf("mean = %v, want %v", snap.Mean, 106.0/4)
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}
}

// snapshotHistogram snapshots one histogram through a registry, so the
// test exercises the exported path.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	r := NewRegistry()
	r.mu.Lock()
	r.hists["h"] = h
	r.mu.Unlock()
	return r.Snapshot().Histograms["h"]
}

// TestRegistryConcurrency hammers one registry from many goroutines
// (lookups, updates, snapshots, spans) — run under -race this is the
// concurrency-safety proof for sharing a recorder across sweep workers.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").SetMax(int64(i))
				r.FloatGauge("ratio").Set(float64(i))
				r.Histogram("lat").Observe(int64(i))
				if i%128 == 0 {
					sp := r.Span("work")
					sp.Child("inner").End()
					sp.End()
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != goroutines*iters {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iters)
	}
	snap := r.Snapshot()
	if snap.Histograms["lat"].Count != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", snap.Histograms["lat"].Count, goroutines*iters)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.Span("evaluate")
	a := root.Child("compile")
	time.Sleep(time.Millisecond)
	if a.End() <= 0 {
		t.Error("ended child has non-positive duration")
	}
	b := root.Child("convert")
	bb := b.Child("layer")
	bb.End()
	b.End()
	// Leave root running: snapshot must report it in flight with
	// elapsed-so-far.
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(snap.Spans))
	}
	rs := snap.Spans[0]
	if rs.Name != "evaluate" || !rs.Running {
		t.Errorf("root span = %+v, want running 'evaluate'", rs)
	}
	if len(rs.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(rs.Children))
	}
	if rs.Children[0].Name != "compile" || rs.Children[0].Running {
		t.Errorf("child 0 = %+v, want ended 'compile'", rs.Children[0])
	}
	if rs.Children[1].Children[0].Name != "layer" {
		t.Errorf("grandchild = %+v, want 'layer'", rs.Children[1].Children[0])
	}
	if rs.Seconds < rs.Children[0].Seconds {
		t.Error("running root shorter than its finished child")
	}
	d := root.End()
	if again := root.End(); again != d {
		t.Errorf("second End returned %v, want first duration %v", again, d)
	}
}

func TestRootSpanCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxRootSpans+10; i++ {
		r.Span("s").End()
	}
	if n := len(r.Snapshot().Spans); n != maxRootSpans {
		t.Errorf("retained %d root spans, want cap %d", n, maxRootSpans)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("bdd.apply_cache_hits").Add(10)
	r.Gauge("yield.m").Set(6)
	r.FloatGauge("yield.value").Set(0.934)
	r.Histogram("sweep.point_ns").Observe(1500)
	r.Span("evaluate").End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if snap.Counters["bdd.apply_cache_hits"] != 10 {
		t.Errorf("counter roundtrip = %d, want 10", snap.Counters["bdd.apply_cache_hits"])
	}
	if snap.Gauges["yield.m"] != 6 {
		t.Errorf("gauge roundtrip = %d, want 6", snap.Gauges["yield.m"])
	}
	if snap.FloatGauges["yield.value"] != 0.934 {
		t.Errorf("float gauge roundtrip = %v, want 0.934", snap.FloatGauges["yield.value"])
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "evaluate" {
		t.Errorf("span roundtrip = %+v", snap.Spans)
	}
	keys := SortedBucketKeys(snap.Counters)
	if len(keys) != 1 || keys[0] != "bdd.apply_cache_hits" {
		t.Errorf("SortedBucketKeys = %v", keys)
	}
}

func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := lockedWriter{mu: &mu, w: &buf}
	p := NewProgress(w, "sweep", 10, time.Hour) // ticker never fires; final line only
	p.Add(4)
	p.Add(6)
	if p.Done() != 10 {
		t.Errorf("done = %d, want 10", p.Done())
	}
	p.Close()
	p.Close() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "sweep: 10 done in") {
		t.Errorf("final line missing, got %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("want exactly one line, got %q", out)
	}
}

// lockedWriter serializes writes so the test can read the buffer after
// Close without racing the reporter goroutine.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
