package obs

import "time"

// ETA estimates the time remaining for a task that has completed done
// of total work units in elapsed wall time, by linear extrapolation of
// the observed rate. The second return value reports whether an
// estimate is possible at all; it is false when
//
//   - total is unknown or non-positive,
//   - nothing has completed yet (the rate is zero — the long-build
//     edge case right at a phase start), or
//   - no time has elapsed (the rate would divide by zero).
//
// When done has reached or passed total (totals are sometimes
// estimates themselves), the remaining time is clamped to zero rather
// than going negative, and any overflow of the extrapolation likewise
// clamps to zero.
func ETA(done, total int64, elapsed time.Duration) (time.Duration, bool) {
	if total <= 0 || done <= 0 || elapsed <= 0 {
		return 0, false
	}
	if done >= total {
		return 0, true
	}
	// remaining = elapsed * (total-done)/done, in float to avoid
	// intermediate overflow on long builds with large unit counts.
	rem := float64(elapsed) * float64(total-done) / float64(done)
	if !(rem > 0) || rem > float64(1<<62) {
		return 0, true
	}
	return time.Duration(rem), true
}
