// Package obs is the instrumentation layer of the yield pipeline: a
// lightweight metrics registry (atomic counters, gauges, histograms
// with fixed log-scale buckets, and a monotonic phase timer producing a
// span tree) that the BDD → MDD → yield phases report into, plus
// progress reporting for long sweeps and export as JSON or through
// expvar.
//
// # Overhead discipline
//
// The registry is designed so that instrumented code stays fast and
// un-instrumented code stays free:
//
//   - Every method of every type is a no-op on a nil receiver, so call
//     sites may hold nil handles when metrics are disabled and still
//     call them unconditionally.
//   - Hot paths (per-point sweep evaluation, per-chunk simulation)
//     additionally guard on `rec != nil` so that the disabled path costs
//     one predictable branch and no time.Now() calls.
//   - Counter/Gauge/Histogram updates are single atomic operations with
//     no allocation; name lookup (the only map access) happens once per
//     phase, never per operation — callers resolve their instruments up
//     front and hold the pointers.
//
// The decision-diagram engines themselves (package bdd, mdd) count with
// plain non-atomic fields, because construction is single-threaded by
// contract; the pipeline flushes those totals into a Registry at phase
// boundaries.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (atomic; n may be negative). No-op on a
// nil receiver. Use for gauges tracking a fluctuating population
// (in-flight requests, queue depths).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n is larger (atomic high-water mark).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 value (ratios, rates).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *FloatGauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: bucket i
// counts observations v with 2^i ≤ v < 2^(i+1) (bucket 0 also takes
// v < 1, the last bucket takes everything above). 48 buckets cover
// nanosecond durations up to ~3.2 days.
const histBuckets = 48

// Histogram accumulates an integer-valued distribution into fixed
// powers-of-two buckets. All updates are lock-free atomics.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its log2 bucket index.
func bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1 // floor(log2 v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketBounds returns the [lo, hi) range of bucket i; the last
// bucket's hi is math.MaxInt64.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 2
	}
	if i >= histBuckets-1 {
		return 1 << (histBuckets - 1), math.MaxInt64
	}
	return 1 << i, 2 << i
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of instruments plus the root of the
// span tree. Instruments are created on first use and live for the
// registry's lifetime; resolving one is a mutex-guarded map lookup, so
// callers should resolve once per phase and reuse the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	hists    map[string]*Histogram
	spans    []*Span
}

// maxRootSpans bounds the retained root spans so that a registry shared
// across an unbounded run loop cannot grow without limit; spans beyond
// the cap still function but are not retained in snapshots.
const maxRootSpans = 256

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floats[name]
	if !ok {
		g = &FloatGauge{}
		r.floats[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Span starts a new root span. Returns nil on a nil registry. Once
// maxRootSpans roots are retained, further spans still time their
// phase normally but are not kept for snapshots; every such drop is
// counted on the "obs.spans_dropped" counter so a long-running
// registry reports how much of its span history is missing instead of
// losing it silently.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	s := newSpan(name)
	r.mu.Lock()
	dropped := len(r.spans) >= maxRootSpans
	if !dropped {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
	if dropped {
		// Outside r.mu: Counter takes the same lock.
		r.Counter("obs.spans_dropped").Inc()
	}
	return s
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets lists only the non-empty buckets.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket: values in [Lo, Hi).
type BucketSnapshot struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// It marshals to the JSON document -metrics-json emits.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans       []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot copies the current state of every instrument. Safe to call
// concurrently with updates (values are read atomically; in-flight
// spans report their elapsed time so far). A nil registry snapshots to
// the zero value.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	floats := make(map[string]*FloatGauge, len(r.floats))
	for k, v := range r.floats {
		floats[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := append([]*Span(nil), r.spans...)
	r.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			snap.Counters[k] = v.Load()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for k, v := range gauges {
			snap.Gauges[k] = v.Load()
		}
	}
	if len(floats) > 0 {
		snap.FloatGauges = make(map[string]float64, len(floats))
		for k, v := range floats {
			snap.FloatGauges[k] = v.Load()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
			if hs.Count > 0 {
				hs.Mean = float64(hs.Sum) / float64(hs.Count)
			}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					lo, hi := BucketBounds(i)
					hs.Buckets = append(hs.Buckets, BucketSnapshot{Lo: lo, Hi: hi, Count: n})
				}
			}
			snap.Histograms[k] = hs
		}
	}
	for _, s := range spans {
		snap.Spans = append(snap.Spans, s.snapshot())
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Publish registers the registry under the given expvar name, so an
// http server with the expvar handler (/debug/vars) exposes a live
// snapshot. Like expvar.Publish it must be called at most once per
// name per process. No-op on a nil registry.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// SortedBucketKeys returns the keys of an int64-valued metric map in
// sorted order — a convenience for deterministic textual dumps.
func SortedBucketKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
