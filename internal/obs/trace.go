package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceEvent is one timed slice of work attributed to a worker: a
// compile chunk, a conversion layer range, an eval pass. Events land
// on per-worker tracks in the Chrome trace export, which is what makes
// parallel-build utilization visible.
type TraceEvent struct {
	Name   string        `json:"name"`
	Cat    string        `json:"cat,omitempty"`
	Worker int           `json:"worker"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
}

// Tracer collects TraceEvents into a bounded ring buffer, overwriting
// the oldest when full (same flight-recorder discipline as Sampler).
// Recording is one short mutex-guarded slot write, and every method is
// a no-op on a nil receiver, so disabled tracing costs only a nil
// check on the hot path.
type Tracer struct {
	mu    sync.Mutex
	ring  []TraceEvent
	next  int
	count int64
}

// defaultTraceCapacity bounds the event ring when NewTracer is given a
// non-positive capacity. 1<<16 events ≈ 5 MB retained — enough for
// every chunk of an ESEN-scale build.
const defaultTraceCapacity = 1 << 16

// NewTracer returns a tracer with the given ring capacity (≤ 0 selects
// the default).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{ring: make([]TraceEvent, 0, capacity)}
}

// Event records one work slice. No-op on a nil receiver.
func (t *Tracer) Event(name, cat string, worker int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	ev := TraceEvent{Name: name, Cat: cat, Worker: worker, Start: start, Dur: dur}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.count++
	t.mu.Unlock()
}

// Events returns the retained events in recording order. Nil on a nil
// receiver.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Dropped returns how many events were overwritten because the ring
// was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count - int64(len(t.ring))
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the subset Perfetto and chrome://tracing load): "M" metadata, "X"
// complete events, "C" counter series. ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the synthetic process id all trace rows share; spans go
// on tid 0 ("phases"), worker w on tid w+1.
const tracePid = 1

// WriteChromeTrace assembles a flight recording — the span tree of a
// registry snapshot, the sampler's gauge time series, and the tracer's
// per-worker events — into one Chrome trace-event JSON document
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Phase spans appear as nested slices on the "phases" track, worker
// events on one track per worker, and sampled gauges as counter plots.
// Any of the three inputs may be empty.
func WriteChromeTrace(w io.Writer, snap Snapshot, samples []Sample, events []TraceEvent) error {
	// The timeline is relative to the earliest timestamp anywhere in
	// the recording, so ts values stay small and positive.
	base := int64(0)
	consider := func(ns int64) {
		if ns > 0 && (base == 0 || ns < base) {
			base = ns
		}
	}
	var walk func(s SpanSnapshot)
	walk = func(s SpanSnapshot) {
		consider(s.StartUnixNano)
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range snap.Spans {
		walk(s)
	}
	for _, s := range samples {
		consider(s.UnixNano)
	}
	for _, e := range events {
		consider(e.Start.UnixNano())
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	out := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "socyield"},
	}, {
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": "phases"},
	}}

	workers := map[int]bool{}
	for _, e := range events {
		workers[e.Worker] = true
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: id + 1,
			Args: map[string]any{"name": "worker " + strconv.Itoa(id)},
		})
	}

	var emit func(s SpanSnapshot)
	emit = func(s SpanSnapshot) {
		ev := chromeEvent{
			Name: s.Name, Ph: "X", Cat: "phase",
			Ts: us(s.StartUnixNano), Dur: s.Seconds * 1e6,
			Pid: tracePid, Tid: 0,
		}
		if s.Running {
			ev.Args = map[string]any{"running": true}
		}
		out = append(out, ev)
		for _, c := range s.Children {
			emit(c)
		}
	}
	for _, s := range snap.Spans {
		emit(s)
	}

	for _, e := range events {
		cat := e.Cat
		if cat == "" {
			cat = "work"
		}
		out = append(out, chromeEvent{
			Name: e.Name, Ph: "X", Cat: cat,
			Ts: us(e.Start.UnixNano()), Dur: float64(e.Dur) / 1e3,
			Pid: tracePid, Tid: e.Worker + 1,
		})
	}

	// Gauges and float gauges become counter plots; monotone counters
	// are omitted (their derivative is rarely what you want to eyeball,
	// and including them would double the event count).
	for _, s := range samples {
		names := make([]string, 0, len(s.Gauges)+len(s.FloatGauges))
		for name := range s.Gauges {
			names = append(names, name)
		}
		for name := range s.FloatGauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			var v any
			if g, ok := s.Gauges[name]; ok {
				v = g
			} else {
				v = s.FloatGauges[name]
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "C", Ts: us(s.UnixNano), Pid: tracePid,
				Args: map[string]any{"value": v},
			})
		}
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
