package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerCollectsSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work.done")
	g := r.Gauge("work.live")
	f := r.FloatGauge("work.rate")

	s := NewSampler(r, time.Millisecond, 64)
	s.Start()
	s.Start() // idempotent
	for i := 0; i < 5; i++ {
		c.Inc()
		g.Set(int64(i))
		f.Set(float64(i) / 2)
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent

	samples := s.Samples()
	// Start takes one immediately and Stop appends a final one, so even
	// instant runs have ≥ 2 points.
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want at least 2", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].UnixNano < samples[i-1].UnixNano {
			t.Fatalf("samples out of order at %d: %d after %d", i, samples[i].UnixNano, samples[i-1].UnixNano)
		}
		if samples[i].OffsetSeconds < samples[i-1].OffsetSeconds {
			t.Fatalf("offsets out of order at %d", i)
		}
	}
	last := samples[len(samples)-1]
	if last.Counters["work.done"] != 5 {
		t.Errorf("final sample counter = %d, want 5", last.Counters["work.done"])
	}
	if last.Gauges["work.live"] != 4 {
		t.Errorf("final sample gauge = %d, want 4", last.Gauges["work.live"])
	}
	if last.FloatGauges["work.rate"] != 2 {
		t.Errorf("final sample float gauge = %v, want 2", last.FloatGauges["work.rate"])
	}
}

func TestSamplerRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	s := NewSampler(r, time.Hour, 4) // manual sampling only
	for i := 1; i <= 10; i++ {
		c.Inc()
		s.sampleNow()
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("retained %d samples, want ring capacity 4", len(samples))
	}
	// The oldest six were overwritten; the window holds counts 7..10.
	for i, want := range []int64{7, 8, 9, 10} {
		if got := samples[i].Counters["n"]; got != want {
			t.Errorf("sample %d: counter = %d, want %d", i, got, want)
		}
	}
	if d := s.Dropped(); d != 6 {
		t.Errorf("Dropped() = %d, want 6", d)
	}
}

func TestSamplerConcurrentWithUpdates(t *testing.T) {
	// Run instrument updates, snapshots and sample reads concurrently
	// with the sampling goroutine; the race detector is the assertion.
	r := NewRegistry()
	s := NewSampler(r, time.Millisecond, 128)
	s.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("w.count")
			g := r.Gauge("w.gauge")
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Samples()
			_ = s.Dropped()
			_ = r.Snapshot()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop()
	if len(s.Samples()) == 0 {
		t.Fatal("no samples collected")
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	if s.Samples() != nil || s.Dropped() != 0 || s.Interval() != 0 {
		t.Error("nil sampler not inert")
	}
	if got := NewSampler(nil, 0, 0); got != nil {
		t.Errorf("NewSampler(nil registry) = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
}

func TestSamplerWriteJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	s := NewSampler(r, time.Hour, 8)
	s.sampleNow()
	r.Counter("a").Add(4)
	s.sampleNow()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var lines []Sample
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var sample Sample
		if err := json.Unmarshal(sc.Bytes(), &sample); err != nil {
			t.Fatalf("line %d is not a JSON Sample: %v", len(lines), err)
		}
		lines = append(lines, sample)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].Counters["a"] != 3 || lines[1].Counters["a"] != 7 {
		t.Errorf("counter series = %d, %d; want 3, 7", lines[0].Counters["a"], lines[1].Counters["a"])
	}
}

func TestTracerRingAndNilSafety(t *testing.T) {
	var nilT *Tracer
	nilT.Event("x", "y", 0, time.Now(), time.Second) // must not panic
	if nilT.Events() != nil || nilT.Dropped() != 0 {
		t.Error("nil tracer not inert")
	}

	tr := NewTracer(3)
	base := time.Now()
	for i := 0; i < 5; i++ {
		tr.Event("ev", "cat", i, base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []int{2, 3, 4} {
		if evs[i].Worker != want {
			t.Errorf("event %d: worker = %d, want %d (oldest overwritten)", i, evs[i].Worker, want)
		}
	}
	if d := tr.Dropped(); d != 2 {
		t.Errorf("Dropped() = %d, want 2", d)
	}
}

// chromeDoc mirrors the trace-event JSON for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRegistry()
	root := r.Span("evaluate")
	root.Child("compile").End()
	root.Child("convert").End()
	root.End()
	r.Gauge("bdd.live").Set(42)

	tr := NewTracer(16)
	now := time.Now()
	tr.Event("gate", "compile", 0, now, time.Millisecond)
	tr.Event("layer 1", "convert", 2, now.Add(time.Millisecond), time.Millisecond)

	s := NewSampler(r, time.Hour, 8)
	s.sampleNow()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Snapshot(), s.Samples(), tr.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var phaseNames, threadNames []string
	counters := 0
	workerTids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Errorf("event %q has negative ts %v", ev.Name, ev.Ts)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames = append(threadNames, ev.Args["name"].(string))
		case ev.Ph == "X" && ev.Cat == "phase":
			phaseNames = append(phaseNames, ev.Name)
		case ev.Ph == "X":
			workerTids[ev.Tid] = true
		case ev.Ph == "C":
			counters++
		}
	}
	for _, want := range []string{"evaluate", "compile", "convert"} {
		found := false
		for _, got := range phaseNames {
			found = found || got == want
		}
		if !found {
			t.Errorf("phase span %q missing from trace (have %v)", want, phaseNames)
		}
	}
	// Worker 0 is tid 1, worker 2 is tid 3; both need thread_name rows.
	if !workerTids[1] || !workerTids[3] {
		t.Errorf("worker events on tids %v, want tids 1 and 3", workerTids)
	}
	joined := strings.Join(threadNames, ",")
	for _, want := range []string{"phases", "worker 0", "worker 2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("thread_name %q missing (have %q)", want, joined)
		}
	}
	if counters == 0 {
		t.Error("no counter (\"C\") events for the sampled gauge")
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(7)
	r.Gauge("bdd.live").Set(1234)
	r.FloatGauge("yield.value").Set(0.5)
	h := r.Histogram("http.latency_ns.evaluate")
	h.Observe(1) // bucket [1,2) → le 1
	h.Observe(1)
	h.Observe(3) // bucket [2,4) → le 3

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "socyield"); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE socyield_bdd_live gauge
socyield_bdd_live 1234
# TYPE socyield_cache_hits counter
socyield_cache_hits 7
# TYPE socyield_http_latency_ns_evaluate histogram
socyield_http_latency_ns_evaluate_bucket{le="1"} 2
socyield_http_latency_ns_evaluate_bucket{le="3"} 3
socyield_http_latency_ns_evaluate_bucket{le="+Inf"} 3
socyield_http_latency_ns_evaluate_sum 5
socyield_http_latency_ns_evaluate_count 3
# TYPE socyield_yield_value gauge
socyield_yield_value 0.5
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	cases := []struct{ ns, in, want string }{
		{"socyield", "bdd.apply_cache_hits", "socyield_bdd_apply_cache_hits"},
		{"", "a.b-c", "a_b_c"},
		{"", "0abc", "_0abc"},
		{"ns", "x:y", "ns_x:y"},
	}
	for _, c := range cases {
		if got := promName(c.ns, c.in); got != c.want {
			t.Errorf("promName(%q, %q) = %q, want %q", c.ns, c.in, got, c.want)
		}
	}
}

func TestPrometheusHandlerNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "socyield"); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestSpansDroppedCounter(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxRootSpans+25; i++ {
		r.Span("s").End()
	}
	snap := r.Snapshot()
	if n := len(snap.Spans); n != maxRootSpans {
		t.Errorf("retained %d root spans, want %d", n, maxRootSpans)
	}
	if got := snap.Counters["obs.spans_dropped"]; got != 25 {
		t.Errorf("obs.spans_dropped = %d, want 25", got)
	}
}

func TestBuildStateLifecycle(t *testing.T) {
	var nilB *BuildState
	nilB.StartPhase(BuildCompile, 10)
	nilB.Add(1)
	nilB.SetTotal(5)
	nilB.SetLive(100)
	nilB.Finish()
	if nilB.Phase() != BuildPending {
		t.Error("nil BuildState phase != pending")
	}
	st := nilB.Snapshot()
	if st.Phase != "pending" || st.ETASeconds != -1 {
		t.Errorf("nil snapshot = %+v", st)
	}

	b := NewBuildState()
	if b.Phase() != BuildPending {
		t.Errorf("initial phase = %v", b.Phase())
	}
	b.StartPhase(BuildCompile, 100)
	b.Add(50)
	b.SetLive(4242)
	st = b.Snapshot()
	if st.Phase != "compile" || st.PhaseDone != 50 || st.PhaseTotal != 100 {
		t.Errorf("compile snapshot = %+v", st)
	}
	if st.LiveNodes != 4242 {
		t.Errorf("live nodes = %d", st.LiveNodes)
	}
	// Compile spans [0.01, 0.76); half done → 0.01 + 0.75/2.
	if want := 0.01 + 0.75*0.5; st.Progress < want-1e-9 || st.Progress > want+1e-9 {
		t.Errorf("progress = %v, want %v", st.Progress, want)
	}
	if st.ETASeconds < 0 {
		t.Errorf("ETA = %v, want an estimate at 38.5%% progress", st.ETASeconds)
	}

	// StartPhase resets the per-phase counters.
	b.StartPhase(BuildConvert, 0)
	st = b.Snapshot()
	if st.Phase != "convert" || st.PhaseDone != 0 || st.PhaseTotal != 0 {
		t.Errorf("convert snapshot = %+v", st)
	}
	// Unknown total: progress sits at the phase start, never overstated.
	if st.Progress != buildPhaseStart[BuildConvert] {
		t.Errorf("progress with unknown total = %v, want %v", st.Progress, buildPhaseStart[BuildConvert])
	}
	b.SetTotal(10)
	b.Add(20) // done past total: fraction clamps to 1
	if p := b.Snapshot().Progress; p != buildPhaseStart[BuildEval] {
		t.Errorf("overshot progress = %v, want next phase start %v", p, buildPhaseStart[BuildEval])
	}

	b.Finish()
	st = b.Snapshot()
	if st.Phase != "done" || st.Progress != 1 {
		t.Errorf("done snapshot = %+v", st)
	}
}

func TestETAGuards(t *testing.T) {
	if _, ok := ETA(0, 100, time.Second); ok {
		t.Error("ETA with zero done should have no estimate")
	}
	if _, ok := ETA(10, 0, time.Second); ok {
		t.Error("ETA with unknown total should have no estimate")
	}
	if _, ok := ETA(10, 100, 0); ok {
		t.Error("ETA with zero elapsed should have no estimate")
	}
	if d, ok := ETA(100, 100, time.Second); !ok || d != 0 {
		t.Errorf("ETA at completion = %v, %v; want 0, true", d, ok)
	}
	if d, ok := ETA(150, 100, time.Second); !ok || d != 0 {
		t.Errorf("ETA past total = %v, %v; want clamp to 0", d, ok)
	}
	if d, ok := ETA(25, 100, time.Minute); !ok || d != 3*time.Minute {
		t.Errorf("ETA(25/100 in 1m) = %v, %v; want 3m", d, ok)
	}
	// Overflow of the extrapolation clamps instead of going negative.
	if d, ok := ETA(1, 1<<62, time.Duration(1<<62)); !ok || d < 0 {
		t.Errorf("overflowing ETA = %v, %v; want non-negative", d, ok)
	}
}
