package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Gauge("inflight").Set(1)

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests"] != 3 || snap.Gauges["inflight"] != 1 {
		t.Errorf("snapshot %+v", snap)
	}

	post, err := ts.Client().Post(ts.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status %d, want 405", post.StatusCode)
	}

	// A nil registry serves the empty snapshot rather than crashing.
	var nilReg *Registry
	rec := httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Errorf("nil registry: status %d", rec.Code)
	}
}
