package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler that serves the registry's live
// snapshot as JSON — the body of a /metrics endpoint. Each request
// takes a fresh Snapshot, so concurrent updates are reflected
// immediately. A nil registry serves the empty snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(append(data, '\n'))
	})
}
