package socyield_test

import (
	"errors"
	"math"
	"testing"

	"socyield"
)

func tmr(t *testing.T) *socyield.System {
	t.Helper()
	f := socyield.NewFaultTree()
	m1, m2, m3 := f.Input("m1"), f.Input("m2"), f.Input("m3")
	f.SetOutput(f.AtLeast(2, m1, m2, m3))
	return &socyield.System{
		Name: "tmr",
		Components: []socyield.Component{
			{Name: "m1", P: 0.20}, {Name: "m2", P: 0.15}, {Name: "m3", P: 0.15},
		},
		FaultTree: f,
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := tmr(t)
	dist, err := socyield.NewNegativeBinomial(2, 0.25)
	if err != nil {
		t.Fatalf("NewNegativeBinomial: %v", err)
	}
	res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Yield <= 0 || res.Yield >= 1 {
		t.Fatalf("yield = %v", res.Yield)
	}
	if res.ErrorBound > 1e-4 {
		t.Errorf("ErrorBound %v exceeds epsilon", res.ErrorBound)
	}
	// Against the exact reference.
	ref, err := socyield.BruteForce(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if math.Abs(res.Yield-ref.Yield) > 1e-10 {
		t.Errorf("method %v vs brute force %v", res.Yield, ref.Yield)
	}
	// Against simulation.
	mc, err := socyield.MonteCarlo(sys, socyield.MonteCarloOptions{
		Defects: dist, Samples: 100000, Seed: 1,
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if diff := math.Abs(mc.Yield - res.Yield); diff > 5*mc.StdErr+1e-4 {
		t.Errorf("MC %v vs method %v (5σ = %v)", mc.Yield, res.Yield, 5*mc.StdErr)
	}
}

// TestPublicImportanceSampling drives the rare-event exports end to
// end: a hierarchical clustered defect model at low intensity, where
// the IS estimate must bracket the combinatorial interval while naive
// simulation at the same budget would certify nothing.
func TestPublicImportanceSampling(t *testing.T) {
	sys := tmr(t)
	dist, err := socyield.NewHierarchical(0.05, 2, 3)
	if err != nil {
		t.Fatalf("NewHierarchical: %v", err)
	}
	res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-10})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	is, err := socyield.MonteCarloImportance(sys, socyield.ImportanceOptions{
		Defects: dist, Samples: 60000, Seed: 20030622,
	})
	if err != nil {
		t.Fatalf("MonteCarloImportance: %v", err)
	}
	if is.Degenerate {
		t.Fatal("IS run degenerate")
	}
	lo, hi := is.Yield-is.CI(3), is.Yield+is.CI(3)
	if res.Yield+res.ErrorBound < lo || res.Yield > hi {
		t.Errorf("combinatorial [%.10f, %.10f] outside IS 3σ [%.10f, %.10f]",
			res.Yield, res.Yield+res.ErrorBound, lo, hi)
	}
	if is.ESS <= 0 || is.Tilt <= 0 {
		t.Errorf("diagnostics: ESS %v, tilt %v", is.ESS, is.Tilt)
	}
	// The multilevel family with one level degenerates to the negative
	// binomial; pin the aliasing through the root exports.
	ml, err := socyield.NewMultilevel(2, 0.25)
	if err != nil {
		t.Fatalf("NewMultilevel: %v", err)
	}
	nb, _ := socyield.NewNegativeBinomial(2, 0.25)
	for k := 0; k <= 10; k++ {
		if diff := math.Abs(ml.PMF(k) - nb.PMF(k)); diff > 1e-12 {
			t.Errorf("Multilevel(2;0.25).PMF(%d) = %v, NB = %v", k, ml.PMF(k), nb.PMF(k))
		}
	}
}

func TestPublicBenchmarkGenerators(t *testing.T) {
	ms, err := socyield.MS(2)
	if err != nil {
		t.Fatalf("MS: %v", err)
	}
	if len(ms.Components) != 18 {
		t.Errorf("MS2 C = %d, want 18", len(ms.Components))
	}
	esen, err := socyield.ESEN(4, 2)
	if err != nil {
		t.Fatalf("ESEN: %v", err)
	}
	if len(esen.Components) != 26 {
		t.Errorf("ESEN4x2 C = %d, want 26", len(esen.Components))
	}
	if _, err := socyield.ESEN(3, 1); err == nil {
		t.Error("ESEN(3,1) accepted")
	}
}

func TestPublicOrderingOptions(t *testing.T) {
	sys := tmr(t)
	dist := socyield.Poisson{Lambda: 1}
	base, err := socyield.Evaluate(sys, socyield.Options{
		Defects: dist, Epsilon: 1e-4,
		MVOrder: socyield.MVOrderWV, BitOrder: socyield.BitOrderLM,
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	alt, err := socyield.Evaluate(sys, socyield.Options{
		Defects: dist, Epsilon: 1e-4,
		MVOrder: socyield.MVOrderVRW, BitOrder: socyield.BitOrderML,
	})
	if err != nil {
		t.Fatalf("Evaluate vrw: %v", err)
	}
	if math.Abs(base.Yield-alt.Yield) > 1e-12 {
		t.Errorf("ordering changed the yield: %v vs %v", base.Yield, alt.Yield)
	}
	if _, err := socyield.Evaluate(sys, socyield.Options{
		Defects: dist, MVOrder: socyield.MVOrderWV, BitOrder: socyield.BitOrderWeight,
	}); err == nil {
		t.Error("incompatible ordering combination accepted")
	}
}

func TestPublicNodeLimit(t *testing.T) {
	sys, err := socyield.MS(2)
	if err != nil {
		t.Fatalf("MS: %v", err)
	}
	dist, _ := socyield.NewNegativeBinomial(2, 2)
	_, err = socyield.Evaluate(sys, socyield.Options{
		Defects: dist, Epsilon: 5e-3, NodeLimit: 100,
	})
	if !errors.Is(err, socyield.ErrNodeLimit) {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
}

func TestPublicReevaluator(t *testing.T) {
	sys := tmr(t)
	dist, _ := socyield.NewNegativeBinomial(2, 1)
	re, err := socyield.NewReevaluator(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		t.Fatalf("NewReevaluator: %v", err)
	}
	y, bound, err := re.Yield([]float64{0.1, 0.1, 0.1}, dist)
	if err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if y <= 0 || y >= 1 || bound < 0 {
		t.Errorf("y=%v bound=%v", y, bound)
	}
	// Smaller P_i must not lower the yield.
	y2, _, err := re.Yield([]float64{0.01, 0.01, 0.01}, dist)
	if err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if y2 < y {
		t.Errorf("smaller lethalities lowered yield: %v -> %v", y, y2)
	}
}

func TestPublicReliability(t *testing.T) {
	sys := tmr(t)
	dist, _ := socyield.NewNegativeBinomial(2, 1)
	lts := []socyield.Lifetime{
		socyield.Exponential{Rate: 0.01},
		socyield.Exponential{Rate: 0.01},
		socyield.Weibull{Scale: 100, Shape: 1.5},
	}
	curve, err := socyield.ReliabilityCurve(sys, socyield.ReliabilityOptions{
		Defects: dist, Epsilon: 1e-4, Lifetimes: lts,
	}, []float64{0, 10, 100})
	if err != nil {
		t.Fatalf("ReliabilityCurve: %v", err)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	y, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(curve.Points[0].Reliability-y.Yield) > 1e-12 {
		t.Errorf("R(0) = %v, yield = %v", curve.Points[0].Reliability, y.Yield)
	}
	if curve.Points[2].Reliability >= curve.Points[0].Reliability {
		t.Error("reliability did not decrease")
	}
}

// TestPaperFigure2 is the golden test for the paper's worked example:
// F = x1·x2 + x3, M = 2, ordering v1, v2, w. The canonical ROMDD has
// six internal nodes (one v1, two v2, three w — the thresholds w≥1,
// w≥2, w≥3); the figure in the archival copy draws seven, one of which
// is redundant under the reduction rule.
func TestPaperFigure2(t *testing.T) {
	f := socyield.NewFaultTree()
	x1, x2, x3 := f.Input("x1"), f.Input("x2"), f.Input("x3")
	f.SetOutput(f.Or(f.And(x1, x2), x3))
	sys := &socyield.System{
		Name: "fig2",
		Components: []socyield.Component{
			{Name: "x1", P: 0.15}, {Name: "x2", P: 0.15}, {Name: "x3", P: 0.2},
		},
		FaultTree: f,
	}
	dist, _ := socyield.NewNegativeBinomial(1, 1)
	res, err := socyield.Evaluate(sys, socyield.Options{
		Defects: dist, MVOrder: socyield.MVOrderVW, BitOrder: socyield.BitOrderML,
		Epsilon: 0.05, // forces M = 2 for the illustration
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.M != 2 {
		t.Fatalf("M = %d, want 2 (the figure's truncation)", res.M)
	}
	// 6 internal nodes + 2 terminals.
	if res.ROMDDSize != 8 {
		t.Errorf("ROMDD size = %d, want 8", res.ROMDDSize)
	}
	ref, err := socyield.BruteForce(sys, socyield.Options{
		Defects: dist, Epsilon: 0.05,
	})
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if math.Abs(res.Yield-ref.Yield) > 1e-12 {
		t.Errorf("yield %v vs exact %v", res.Yield, ref.Yield)
	}
}
