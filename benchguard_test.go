package socyield_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"socyield"
	"socyield/internal/benchmarks"
)

// benchBaseline is the checked-in record the CI benchmark-regression
// job guards against (results/bench_baseline.json). BuildSeconds is
// the reference one-time ROMDD build time for the benchmark measured
// on the machine named in Machine; MaxRegression is the tolerated
// fractional slowdown before the guard fails (noise on shared runners
// stays well under it, a pathological compile-path regression does
// not). Refresh the file with the measurement printed by this test
// whenever the reference hardware changes or the build gets faster.
type benchBaseline struct {
	Benchmark     string  `json:"benchmark"`
	LambdaPrime   int     `json:"lambda_prime"`
	Epsilon       float64 `json:"epsilon"`
	BuildSeconds  float64 `json:"build_seconds"`
	MaxRegression float64 `json:"max_regression"`
	Machine       string  `json:"machine"`
	Recorded      string  `json:"recorded"`
	// BuildWorkers is the worker count the reference build ran with. It
	// is pinned explicitly (a missing field means 1, the serial engine)
	// so the guarded measurement never silently changes meaning with
	// the runner's core count: the guard compares serial against
	// serial, and a parallel baseline would be compared against the
	// same worker count.
	BuildWorkers int `json:"build_workers"`
}

// TestCompileBenchGuard is the benchmark-regression smoke gate: it
// rebuilds the baseline benchmark's ROMDD (best of two runs, so a cold
// first run doesn't trip it) and fails when the build takes more than
// (1+MaxRegression)× the checked-in reference. It only runs when
// SOCYIELD_BENCH_GUARD=1 — wall-clock assertions don't belong in the
// default `go test ./...`.
func TestCompileBenchGuard(t *testing.T) {
	if os.Getenv("SOCYIELD_BENCH_GUARD") != "1" {
		t.Skip("set SOCYIELD_BENCH_GUARD=1 to run the build-time regression guard")
	}
	data, err := os.ReadFile("results/bench_baseline.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	if base.BuildSeconds <= 0 || base.MaxRegression <= 0 || base.BuildWorkers < 0 {
		t.Fatalf("implausible baseline %+v", base)
	}
	if base.BuildWorkers == 0 {
		base.BuildWorkers = 1 // legacy baselines predate the field: serial
	}
	sys, err := benchmarks.ByName(base.Benchmark)
	if err != nil {
		t.Fatalf("loading %s: %v", base.Benchmark, err)
	}
	dist, err := socyield.NewNegativeBinomial(2*float64(base.LambdaPrime), 3.4)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for run := 0; run < 2; run++ {
		t0 := time.Now()
		// The guarded build runs uninstrumented — nil Recorder, Tracer
		// and BuildState. Their nil-receiver no-op checks sit on the
		// compile and convert hot loops, so this guard also bounds the
		// cost of the disabled flight recorder: instrumentation that
		// slows the uninstrumented build trips it like any other
		// compile-path regression.
		re, err := socyield.NewReevaluator(sys, socyield.Options{
			Defects: dist, Epsilon: base.Epsilon, BuildWorkers: base.BuildWorkers,
			Recorder: nil, Tracer: nil, BuildState: nil,
		})
		sec := time.Since(t0).Seconds()
		if err != nil {
			t.Fatalf("building %s: %v", base.Benchmark, err)
		}
		if re.Result.Yield <= 0 || re.Result.Yield >= 1 {
			t.Fatalf("implausible yield %v", re.Result.Yield)
		}
		if run == 0 || sec < best {
			best = sec
		}
	}
	limit := base.BuildSeconds * (1 + base.MaxRegression)
	fmt.Printf("bench guard: %s build %.3fs at %d worker(s) (baseline %.3fs on %s, limit %.3fs)\n",
		base.Benchmark, best, base.BuildWorkers, base.BuildSeconds, base.Machine, limit)
	if best > limit {
		t.Errorf("%s build took %.3fs, more than %.0f%% over the %.3fs baseline — compile-path regression (or refresh results/bench_baseline.json after a hardware change)",
			base.Benchmark, best, 100*base.MaxRegression, base.BuildSeconds)
	}
}
