package socyield_test

import (
	"fmt"
	"log"

	"socyield"
)

// ExampleEvaluate computes the yield of a duplex block with a shared
// voter: the system works while the voter and at least one of the two
// channels are defect-free.
func ExampleEvaluate() {
	f := socyield.NewFaultTree()
	ch1, ch2, voter := f.Input("ch1"), f.Input("ch2"), f.Input("voter")
	working := f.And(f.Not(voter), f.Or(f.Not(ch1), f.Not(ch2)))
	f.SetOutput(f.Not(working))

	sys := &socyield.System{
		Name: "duplex",
		Components: []socyield.Component{
			{Name: "ch1", P: 0.2}, {Name: "ch2", P: 0.2}, {Name: "voter", P: 0.05},
		},
		FaultTree: f,
	}
	dist := socyield.Poisson{Lambda: 1}
	res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield = %.4f (error ≤ %.0e, %d lethal defects analyzed)\n",
		res.Yield, res.ErrorBound, res.M)
	// Output:
	// yield = 0.9200 (error ≤ 5e-07, 6 lethal defects analyzed)
}

// ExampleReevaluator_Yield sweeps a layout parameter without
// rebuilding the decision diagrams.
func ExampleReevaluator_Yield() {
	f := socyield.NewFaultTree()
	a, b := f.Input("a"), f.Input("b")
	f.SetOutput(f.And(a, b)) // redundant pair: down only if both fail

	sys := &socyield.System{
		Name:       "pair",
		Components: []socyield.Component{{Name: "a", P: 0.25}, {Name: "b", P: 0.25}},
		FaultTree:  f,
	}
	dist := socyield.Geometric{Lambda: 1}
	re, err := socyield.NewReevaluator(sys, socyield.Options{Defects: dist, Epsilon: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.2, 0.3} {
		y, _, err := re.Yield([]float64{p, p}, dist)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P_i = %.1f: yield = %.4f\n", p, y)
	}
	// Output:
	// P_i = 0.1: yield = 0.9848
	// P_i = 0.2: yield = 0.9524
	// P_i = 0.3: yield = 0.9135
}
