// Command yieldd serves the combinatorial yield method over HTTP/JSON.
//
// Clients POST a system — an ftdsl description or a named benchmark —
// together with a defect model and receive the yield, its error bound
// and optionally per-component sensitivities. Compiled models (the
// expensive ROMDD builds) are kept in a keyed LRU cache with
// single-flight deduplication, so repeated and concurrent requests for
// the same model cost one linear traversal each.
//
//	yieldd -addr :8344
//
//	curl -s localhost:8344/v1/evaluate -d '{
//	  "bench": "MS2",
//	  "defects": {"lambda": 2, "alpha": 0.25},
//	  "epsilon": 1e-4
//	}'
//
//	curl -s localhost:8344/v1/sweep -d '{
//	  "bench": "ESEN4x2",
//	  "defects": {"alpha": 2},
//	  "lambdas": [0.5, 1, 2, 4]
//	}'
//
// With -store-dir the server adds a persistent second cache tier:
// compiled models are written to disk (atomically, keyed by their
// model key), tried there before any rebuild, and preloaded into the
// in-memory cache at boot — restarts and sibling replicas sharing the
// directory skip the compile entirely. -store-max-bytes caps the
// directory as an on-disk LRU. Files saved by yieldsoc -save-model
// into the same directory are served the same way.
//
// GET /healthz is a liveness probe; GET /metrics exposes the live
// request/cache/evaluation instruments in Prometheus text format;
// GET /metrics.json returns the same registry as a JSON snapshot;
// GET /v1/builds lists the model builds in flight (phase, progress,
// ETA); GET /debug/vars serves the registry through expvar.
// SIGINT/SIGTERM drain in-flight requests before exiting; with
// -trace-out the whole lifetime is then written as a Chrome
// trace-event file (load it at ui.perfetto.dev).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"socyield/internal/cliutil"
	"socyield/internal/obs"
	"socyield/internal/server"
	"socyield/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		cacheSize  = flag.Int("cache", 32, "compiled models kept in the LRU cache")
		nodeLimit  = flag.Int("nodelimit", 0, "decision-diagram node budget per model (0 = default 8M, <0 = unlimited)")
		maxConc    = flag.Int("max-concurrent", 0, "concurrent evaluations (0 = 2×GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		sweepWork  = flag.Int("sweep-workers", 0, "worker cap for /v1/sweep (0 = all cores)")
		buildWork  = flag.Int("build-workers", 0, "workers for model compiles (0 = all cores, 1 = serial engine)")
		gracePer   = flag.Duration("grace", 10*time.Second, "shutdown drain period")
		logJSON    = flag.Bool("log-json", false, "log one JSON object per request instead of text")
		quiet      = flag.Bool("quiet", false, "disable request logging")
		slowReq    = flag.Duration("slow-request", 0, "log requests slower than this as warnings (0 = 10s default, <0 = off)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of the server's lifetime on shutdown (Perfetto-loadable)")
		samplesOut = flag.String("samples-out", "", "write the sampled metrics time series as JSONL on shutdown")
		sampleInt  = flag.Duration("sample-interval", 0, "flight-recorder sampling interval (0 = 100ms default)")
		storeDir   = flag.String("store-dir", "", "persist compiled models to this directory (second cache tier, shared across restarts and replicas)")
		storeMax   = flag.Int64("store-max-bytes", 0, "on-disk LRU size cap for -store-dir (0 = unlimited)")
	)
	flag.Parse()

	var handler slog.Handler
	switch {
	case *quiet:
		handler = nil
	case *logJSON:
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	var logger *slog.Logger
	if handler != nil {
		logger = slog.New(handler)
	}

	metrics := obs.NewRegistry()
	metrics.Publish("socyield") // live snapshot on /debug/vars

	// The flight recorder samples the registry for the server's whole
	// lifetime; the artifacts are written after the drain, so the trace
	// covers every build the server ran.
	flight := cliutil.StartFlightRecorder(metrics, *traceOut, *samplesOut, *sampleInt)

	var modelStore *store.Store
	if *storeDir != "" {
		var err error
		if modelStore, err = store.Open(*storeDir, *storeMax, metrics); err != nil {
			fmt.Fprintln(os.Stderr, "yieldd:", err)
			os.Exit(1)
		}
	} else if *storeMax != 0 {
		fmt.Fprintln(os.Stderr, "yieldd: -store-max-bytes requires -store-dir")
		os.Exit(1)
	}

	srv := server.New(server.Config{
		Addr:                 *addr,
		CacheEntries:         *cacheSize,
		NodeLimit:            *nodeLimit,
		MaxConcurrent:        *maxConc,
		RequestTimeout:       *timeout,
		SweepWorkers:         *sweepWork,
		BuildWorkers:         *buildWork,
		Store:                modelStore,
		Metrics:              metrics,
		Tracer:               flight.Tracer(),
		Logger:               logger,
		ShutdownGrace:        *gracePer,
		SlowRequestThreshold: *slowReq,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := srv.ListenAndServe(ctx)
	if ferr := flight.Close(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldd:", err)
		os.Exit(1)
	}
}
