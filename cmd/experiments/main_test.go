package main

import "testing"

func TestParseCases(t *testing.T) {
	cs, err := parseCases("MS6:1, ESEN4x4:2")
	if err != nil {
		t.Fatalf("parseCases: %v", err)
	}
	if len(cs) != 2 || cs[0].Benchmark != "MS6" || cs[0].LambdaPrime != 1 ||
		cs[1].Benchmark != "ESEN4x4" || cs[1].LambdaPrime != 2 {
		t.Errorf("parsed %v", cs)
	}
	if _, err := parseCases("MS6"); err == nil {
		t.Error("missing λ' accepted")
	}
	if _, err := parseCases("MS6:x"); err == nil {
		t.Error("bad λ' accepted")
	}
}
