package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"socyield/internal/experiments"
)

// updateGolden rewrites the committed golden tables from the current
// code:  go test ./cmd/experiments -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden table files under results/golden")

// goldenCases is the fixed row subset the golden tables are generated
// for — small enough that all four tables regenerate in seconds on one
// core, while still covering both benchmark families.
const goldenCases = "MS2:1,ESEN4x1:1"

// goldenDir is the committed location of the golden tables, relative
// to this package's directory.
var goldenDir = filepath.Join("..", "..", "results", "golden")

// goldenTables enumerates the tables under regression guard. Columns
// named in skip hold wall-clock measurements and are excluded from the
// comparison; everything else must match (numerically within
// tolerance, exactly otherwise).
var goldenTables = []struct {
	name string
	file string
	skip []string
	gen  func(w io.Writer, cases []experiments.Case, cfg experiments.Config) error
}{
	{
		name: "table1",
		file: "table1.txt",
		gen: func(w io.Writer, _ []experiments.Case, _ experiments.Config) error {
			return printTable1(w)
		},
	},
	{name: "table2", file: "table2.txt", gen: printTable2},
	{name: "table3", file: "table3.txt", gen: printTable3},
	{name: "table4", file: "table4.txt", skip: []string{"cpu"}, gen: printTable4},
}

// TestGoldenTables regenerates Tables 1–4 for the golden row subset
// and diffs them against the committed outputs in results/golden: a
// change in any reported size, yield or truncation point fails the
// default `go test ./...`. Timing columns are skipped; numeric cells
// compare within tolerance so formatting-preserving float jitter (if
// any platform produced it) does not flag.
func TestGoldenTables(t *testing.T) {
	cases, err := parseCases(goldenCases)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{} // calibrated reproduction defaults
	for _, tbl := range goldenTables {
		t.Run(tbl.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tbl.gen(&buf, cases, cfg); err != nil {
				t.Fatalf("generating %s: %v", tbl.name, err)
			}
			path := filepath.Join(goldenDir, tbl.file)
			if *updateGolden {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
			}
			compareTables(t, tbl.name, string(want), buf.String(), tbl.skip)
		})
	}
}

// columnSplit separates the cells of one FormatTable row. Cells may
// contain single spaces ("MS2, λ'=1"); columns are padded with at
// least two.
var columnSplit = regexp.MustCompile(`\s{2,}`)

func splitRow(line string) []string {
	return columnSplit.Split(strings.TrimRight(line, " \t"), -1)
}

// compareTables diffs two rendered tables cell by cell. Columns whose
// header is listed in skip are ignored; cells that parse as numbers on
// both sides compare within a relative tolerance of 1e-6 (absolute
// 1e-9); all other cells must match exactly.
func compareTables(t *testing.T, name, want, got string, skip []string) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("%s: %d lines, golden has %d\n-- got --\n%s\n-- want --\n%s",
			name, len(gotLines), len(wantLines), got, want)
	}
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	var skipIdx map[int]bool
	for li := range wantLines {
		wCells, gCells := splitRow(wantLines[li]), splitRow(gotLines[li])
		if li == 0 {
			skipIdx = make(map[int]bool)
			for i, h := range wCells {
				if skipSet[h] {
					skipIdx[i] = true
				}
			}
		}
		if len(wCells) != len(gCells) {
			t.Errorf("%s line %d: %d cells, golden has %d\ngot:  %q\nwant: %q",
				name, li+1, len(gCells), len(wCells), gotLines[li], wantLines[li])
			continue
		}
		for i := range wCells {
			if skipIdx[i] {
				continue
			}
			if cellsEqual(wCells[i], gCells[i]) {
				continue
			}
			t.Errorf("%s line %d, column %d (%s): got %q, golden %q",
				name, li+1, i+1, headerOf(wantLines[0], i), gCells[i], wCells[i])
		}
	}
}

func headerOf(headerLine string, i int) string {
	cells := splitRow(headerLine)
	if i < len(cells) {
		return cells[i]
	}
	return fmt.Sprintf("#%d", i)
}

// ruleLine matches FormatTable's horizontal separator, whose length
// tracks the (skipped, run-dependent) timing column widths.
var ruleLine = regexp.MustCompile(`^-+$`)

func cellsEqual(want, got string) bool {
	if want == got {
		return true
	}
	if ruleLine.MatchString(want) && ruleLine.MatchString(got) {
		return true
	}
	wv, werr := strconv.ParseFloat(want, 64)
	gv, gerr := strconv.ParseFloat(got, 64)
	if werr != nil || gerr != nil {
		return false
	}
	diff := math.Abs(wv - gv)
	return diff <= 1e-9 || diff <= 1e-6*math.Max(math.Abs(wv), math.Abs(gv))
}
