// Command experiments regenerates the evaluation artifacts of the
// paper (Tables 1–4) plus the reproduction ablations, printing measured
// values next to the published ones.
//
// Usage:
//
//	experiments -table 1            # benchmark inventory
//	experiments -table 2            # ROMDD size vs MV ordering
//	experiments -table 3            # coded-ROBDD size vs bit ordering
//	experiments -table 4            # end-to-end method performance
//	experiments -ablation direct-mdd
//	experiments -baseline mc -samples 200000
//	experiments -all                # everything the paper reports
//
// By default only the quick row subset runs; -full selects all fifteen
// rows of the paper's tables (minutes to an hour on one core).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"socyield/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 1-4")
		ablation  = flag.String("ablation", "", `ablation to run ("direct-mdd")`)
		baseline  = flag.String("baseline", "", `baseline to run ("mc")`)
		samples   = flag.Int("samples", 200000, "Monte-Carlo samples per case")
		full      = flag.Bool("full", false, "run all fifteen paper rows (slow)")
		caseList  = flag.String("cases", "", `explicit row list, e.g. "MS6:1,ESEN4x4:1" (overrides -full)`)
		all       = flag.Bool("all", false, "run every table and ablation")
		nodeLimit = flag.Int("nodelimit", 0, "decision-diagram node budget (0 = default 30M)")
		epsilon   = flag.Float64("eps", 0, "yield error requirement (0 = default 5e-3)")
		alpha     = flag.Float64("alpha", 0, "NB clustering parameter (0 = default 2)")
	)
	flag.Parse()
	cfg := experiments.Config{Alpha: *alpha, Epsilon: *epsilon, NodeLimit: *nodeLimit}
	cases := experiments.QuickCases()
	if *full || *all {
		cases = experiments.PaperCases()
	}
	if *caseList != "" {
		parsed, err := parseCases(*caseList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cases = parsed
	}
	ran := false
	run := func(name string, fn func() error) {
		ran = true
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *table == 1 || *all {
		run("Table 1: benchmark inventory", func() error { return printTable1() })
	}
	if *table == 2 || *all {
		run("Table 2: ROMDD size vs MV-variable ordering", func() error { return printTable2(cases, cfg) })
	}
	if *table == 3 || *all {
		run("Table 3: coded-ROBDD size vs bit-group ordering", func() error { return printTable3(cases, cfg) })
	}
	if *table == 4 || *all {
		run("Table 4: method performance (w + ml)", func() error { return printTable4(cases, cfg) })
	}
	if *ablation == "direct-mdd" || *all {
		run("Ablation: coded-ROBDD route vs direct MDD apply", func() error { return printAblation(cases, cfg) })
	}
	if *baseline == "mc" || *all {
		run("Baseline: Monte-Carlo simulation", func() error { return printBaseline(cases, *samples, cfg) })
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func parseCases(s string) ([]experiments.Case, error) {
	var out []experiments.Case
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		bench, lp, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad case %q, want <bench>:<lambda-prime>", part)
		}
		n, err := strconv.Atoi(lp)
		if err != nil {
			return nil, fmt.Errorf("bad λ' in %q: %v", part, err)
		}
		out = append(out, experiments.Case{Benchmark: bench, LambdaPrime: n})
	}
	return out, nil
}

func printTable1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark,
			strconv.Itoa(r.Components), strconv.Itoa(r.PaperC),
			strconv.Itoa(r.Gates), strconv.Itoa(r.PaperGates),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"benchmark", "C", "C(paper)", "gates", "gates(paper)"}, out))
	return nil
}

func printTable2(cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table2(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case"}
	for _, mv := range experiments.Table2MVOrderings() {
		header = append(header, mv.String(), mv.String()+"(paper)")
	}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		for _, mv := range experiments.Table2MVOrderings() {
			line = append(line, r.Sizes[mv.String()].String(), paperCell(r.Paper, mv.String()))
		}
		out = append(out, line)
	}
	fmt.Print(experiments.FormatTable(header, out))
	return nil
}

func printTable3(cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table3(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case"}
	for _, bk := range experiments.Table3BitOrderings() {
		header = append(header, bk.String(), bk.String()+"(paper)")
	}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		for _, bk := range experiments.Table3BitOrderings() {
			line = append(line, r.Sizes[bk.String()].String(), paperCell(r.Paper, bk.String()))
		}
		out = append(out, line)
	}
	fmt.Print(experiments.FormatTable(header, out))
	return nil
}

func printTable4(cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table4(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case", "cpu", "cpu(paper)", "peak", "peak(paper)",
		"robdd", "robdd(paper)", "romdd", "romdd(paper)", "yield", "yield(paper)", "M"}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		if r.Failed {
			line = append(line, "—", paperSec(r), strconv.Itoa(r.Peak), paperInt(r.PaperRow.Peak, r.HavePaper),
				"—", paperInt(r.PaperRow.ROBDD, r.HavePaper), "—", paperInt(r.PaperRow.ROMDD, r.HavePaper),
				"—", paperYield(r), strconv.Itoa(r.M))
		} else {
			line = append(line,
				r.CPU.Round(10*time.Millisecond).String(), paperSec(r),
				strconv.Itoa(r.Peak), paperInt(r.PaperRow.Peak, r.HavePaper),
				strconv.Itoa(r.ROBDD), paperInt(r.PaperRow.ROBDD, r.HavePaper),
				strconv.Itoa(r.ROMDD), paperInt(r.PaperRow.ROMDD, r.HavePaper),
				fmt.Sprintf("%.4f", r.Yield), paperYield(r),
				strconv.Itoa(r.M))
		}
		out = append(out, line)
	}
	fmt.Print(experiments.FormatTable(header, out))
	return nil
}

func printAblation(cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.AblationDirectMDD(cases, cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		direct := r.DirectTime.Round(time.Millisecond).String()
		agree := fmt.Sprintf("%v/%v", r.SizesAgree, r.YieldsAgree)
		if r.DirectFailed {
			direct, agree = "—", "—"
		}
		out = append(out, []string{
			r.Case.String(),
			r.CodedTime.Round(time.Millisecond).String(),
			direct,
			strconv.Itoa(r.ROMDD),
			agree,
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"case", "coded-robdd route", "direct-mdd route", "romdd", "size/yield agree"}, out))
	return nil
}

func printBaseline(cases []experiments.Case, samples int, cfg experiments.Config) error {
	rows, err := experiments.BaselineMonteCarlo(cases, samples, cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Case.String(),
			fmt.Sprintf("%.4f", r.Exact),
			r.ExactTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f±%.4f", r.MC, 1.96*r.MCStdErr),
			r.MCTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%v", r.WithinThree),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"case", "combinatorial", "time", "monte-carlo (95% CI)", "time", "consistent"}, out))
	return nil
}

func paperCell(m map[string]experiments.Cell, key string) string {
	if m == nil {
		return "?"
	}
	c, ok := m[key]
	if !ok {
		return "?"
	}
	return c.String()
}

func paperInt(v int, have bool) string {
	if !have {
		return "?"
	}
	return strconv.Itoa(v)
}

func paperSec(r experiments.Table4Row) string {
	if !r.HavePaper {
		return "?"
	}
	return fmt.Sprintf("%.2fs", r.PaperRow.CPUSeconds)
}

func paperYield(r experiments.Table4Row) string {
	if !r.HavePaper {
		return "?"
	}
	return fmt.Sprintf("%.3f", r.PaperRow.Yield)
}
