// Command experiments regenerates the evaluation artifacts of the
// paper (Tables 1–4) plus the reproduction ablations, printing measured
// values next to the published ones.
//
// Usage:
//
//	experiments -table 1            # benchmark inventory
//	experiments -table 2            # ROMDD size vs MV ordering
//	experiments -table 3            # coded-ROBDD size vs bit ordering
//	experiments -table 4            # end-to-end method performance
//	experiments -ablation direct-mdd
//	experiments -baseline mc -samples 200000
//	experiments -baseline is -samples 200000   # importance sampling
//	experiments -all                # everything the paper reports
//	experiments -workers 8 -table 4 -full
//	experiments -bench-json BENCH_1.json
//
// By default only the quick row subset runs; -full selects all fifteen
// rows of the paper's tables (minutes to an hour on one core —
// -workers fans independent rows out across cores).
//
// -bench-json runs the batch-sweep scaling benchmark (one shared
// ROMDD, a (λ', α) grid of evaluation points, serial vs parallel) and
// writes the timing trajectory to the given file.
//
// -build-json runs the build-engine scaling benchmark (the full
// decision-diagram build of each case at increasing BuildWorkers
// counts, serial engine as the reference) and writes per-phase worker
// scaling rows to the given file (the BENCH_6.json format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"socyield/internal/cliutil"
	"socyield/internal/defects"
	"socyield/internal/experiments"
	"socyield/internal/obs"
	"socyield/internal/store"
	"socyield/internal/yield"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate table 1-4")
		ablation   = flag.String("ablation", "", `ablation to run ("direct-mdd")`)
		baseline   = flag.String("baseline", "", `baseline to run ("mc" naive, "is" importance sampling)`)
		samples    = flag.Int("samples", 200000, "Monte-Carlo samples per case")
		full       = flag.Bool("full", false, "run all fifteen paper rows (slow)")
		caseList   = flag.String("cases", "", `explicit row list, e.g. "MS6:1,ESEN4x4:1" (overrides -full)`)
		all        = flag.Bool("all", false, "run every table and ablation")
		nodeLimit  = flag.Int("nodelimit", 0, "decision-diagram node budget (0 = default 30M)")
		epsilon    = flag.Float64("eps", 0, "yield error requirement (0 = default 5e-3)")
		alpha      = flag.Float64("alpha", 0, "NB clustering parameter (0 = default 2)")
		workers    = flag.Int("workers", 0, "cases evaluated concurrently (0 = all cores)")
		buildWork  = flag.Int("build-workers", 0, "workers for each decision-diagram build (0 = all cores, 1 = serial engine)")
		buildJSON  = flag.String("build-json", "", "write the build-engine worker scaling benchmark to this file (BENCH_6 format)")
		benchJSON  = flag.String("bench-json", "", "write the sweep scaling benchmark trajectory to this file")
		benchCase  = flag.String("bench-case", "ESEN8x2:1", `benchmark rows for -bench-json, e.g. "ESEN8x2:1,MS19:1"`)
		benchPts   = flag.Int("bench-points", 64, "sweep grid size for -bench-json")
		metricsJS  = flag.String("metrics-json", "", "write collected metrics as JSON to this file (\"-\" = stdout)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of the run to this file (Perfetto-loadable)")
		samplesOut = flag.String("samples-out", "", "write the sampled metrics time series as JSONL to this file (\"-\" = stdout)")
		sampleInt  = flag.Duration("sample-interval", 0, "flight-recorder sampling interval (0 = 100ms default)")
		progress   = flag.Bool("progress", false, "print periodic progress lines for sweeps")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and an expvar metrics dump on this address")
		storeDir   = flag.String("store-dir", "", "persistent compiled-model store for -bench-json builds (shared with yieldd -store-dir)")
	)
	flag.Parse()
	var rec *obs.Registry
	if *metricsJS != "" || *pprofAddr != "" || *traceOut != "" || *samplesOut != "" {
		rec = obs.NewRegistry()
	}
	if *pprofAddr != "" {
		cliutil.ServeDebug("experiments", *pprofAddr, rec)
	}
	flight := cliutil.StartFlightRecorder(rec, *traceOut, *samplesOut, *sampleInt)
	cfg := experiments.Config{Alpha: *alpha, Epsilon: *epsilon, NodeLimit: *nodeLimit, Workers: *workers, BuildWorkers: *buildWork, Recorder: rec, Tracer: flight.Tracer()}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	cases := experiments.QuickCases()
	if *full || *all {
		cases = experiments.PaperCases()
	}
	if *caseList != "" {
		parsed, err := parseCases(*caseList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cases = parsed
	}
	ran := false
	run := func(name string, fn func() error) {
		ran = true
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *table == 1 || *all {
		run("Table 1: benchmark inventory", func() error { return printTable1(os.Stdout) })
	}
	if *table == 2 || *all {
		run("Table 2: ROMDD size vs MV-variable ordering", func() error { return printTable2(os.Stdout, cases, cfg) })
	}
	if *table == 3 || *all {
		run("Table 3: coded-ROBDD size vs bit-group ordering", func() error { return printTable3(os.Stdout, cases, cfg) })
	}
	if *table == 4 || *all {
		run("Table 4: method performance (w + ml)", func() error { return printTable4(os.Stdout, cases, cfg) })
	}
	if *ablation == "direct-mdd" || *all {
		run("Ablation: coded-ROBDD route vs direct MDD apply", func() error { return printAblation(os.Stdout, cases, cfg) })
	}
	if *baseline == "mc" || *all {
		run("Baseline: Monte-Carlo simulation", func() error { return printBaseline(os.Stdout, cases, *samples, cfg) })
	}
	if *baseline == "is" || *all {
		run("Baseline: importance-sampling simulation", func() error { return printBaselineIS(os.Stdout, cases, *samples, cfg) })
	}
	if *benchJSON != "" {
		run("Benchmark: batch sweep serial vs parallel", func() error {
			return runSweepBench(*benchJSON, *benchCase, *benchPts, *workers, *progress, cfg)
		})
	}
	if *buildJSON != "" {
		run("Benchmark: decision-diagram build serial vs parallel", func() error {
			return runBuildBench(*buildJSON, *benchCase, *buildWork, cfg)
		})
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if err := flight.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *metricsJS != "" {
		if err := cliutil.WriteMetrics(rec, *metricsJS); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// sweepBench is the JSON record of one -bench-json run: the one-time
// ROMDD build, then the same sweep grid timed at increasing worker
// counts (the timing trajectory).
type sweepBench struct {
	Benchmark   string `json:"benchmark"`
	LambdaPrime int    `json:"lambda_prime"`
	Points      int    `json:"points"`
	Cores       int    `json:"cores"`
	ROMDDNodes  int    `json:"romdd_nodes"`
	// ModelFromStore reports that -store-dir served the compiled model,
	// so BuildSec measures a decode + restore, not a compile.
	ModelFromStore bool    `json:"model_from_store,omitempty"`
	BuildSec       float64 `json:"build_seconds"`
	// Compile-path statistics of the one-time build: final coded-ROBDD
	// node count, the live-node high-water mark split by phase (the
	// compile peak is the paper's "ROBDD peak"), and the ITE operation
	// cache hit rate during compilation.
	CodedROBDDNodes  int     `json:"coded_robdd_nodes"`
	ROBDDPeakCompile int     `json:"robdd_peak_compile"`
	ROBDDPeakConvert int     `json:"robdd_peak_convert"`
	ITECacheHitRate  float64 `json:"ite_cache_hit_rate"`
	// BuildPhases splits BuildSec into the pipeline's phases, from the
	// one-time ROMDD construction (seconds per phase).
	BuildPhases struct {
		Prepare float64 `json:"prepare"`
		Encode  float64 `json:"encode"`
		Order   float64 `json:"order"`
		Compile float64 `json:"compile"`
		Convert float64 `json:"convert"`
		Eval    float64 `json:"eval"`
	} `json:"build_phases"`
	Trajectory []struct {
		Workers int     `json:"workers"`
		Seconds float64 `json:"seconds"`
		Speedup float64 `json:"speedup_vs_serial"`
	} `json:"trajectory"`
	Identical bool `json:"parallel_identical_to_serial"`
}

// runSweepBench runs benchOneCase for every case in caseSpec and
// writes the records as JSON: a single object for one case (the
// BENCH_1.json format), an array for several.
func runSweepBench(path, caseSpec string, points, maxWorkers int, progress bool, cfg experiments.Config) error {
	parsed, err := parseCases(caseSpec)
	if err != nil || len(parsed) == 0 {
		return fmt.Errorf("bad -bench-case %q: %v", caseSpec, err)
	}
	records := make([]sweepBench, 0, len(parsed))
	for _, cs := range parsed {
		rec, err := benchOneCase(cs, points, maxWorkers, progress, cfg)
		if err != nil {
			return err
		}
		records = append(records, rec)
	}
	var data []byte
	if len(records) == 1 {
		data, err = json.MarshalIndent(records[0], "", "  ")
	} else {
		data, err = json.MarshalIndent(records, "", "  ")
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchOneCase builds one shared ROMDD, evaluates a (λ', α) grid of
// points serially and at doubling worker counts, and verifies the
// results are bit-identical.
func benchOneCase(cs experiments.Case, points, maxWorkers int, progress bool, cfg experiments.Config) (sweepBench, error) {
	sys, err := cliutil.LoadSystem(cs.Benchmark, "")
	if err != nil {
		return sweepBench{}, err
	}
	alpha, eps := cfg.Alpha, cfg.Epsilon
	if alpha == 0 {
		alpha = 3.4
	}
	if eps == 0 {
		eps = 2e-3
	}
	dist, err := defects.NewNegativeBinomial(2*float64(cs.LambdaPrime), alpha)
	if err != nil {
		return sweepBench{}, err
	}
	t0 := time.Now()
	re, fromStore, err := store.LoadOrBuild(cfg.Store, sys, yield.Options{Defects: dist, Epsilon: eps, Recorder: cfg.Recorder})
	if err != nil {
		return sweepBench{}, err
	}
	out := sweepBench{
		Benchmark:        cs.Benchmark,
		LambdaPrime:      cs.LambdaPrime,
		Points:           points,
		Cores:            runtime.NumCPU(),
		ROMDDNodes:       re.Result.ROMDDSize,
		ModelFromStore:   fromStore,
		BuildSec:         time.Since(t0).Seconds(),
		CodedROBDDNodes:  re.Result.CodedROBDDSize,
		ROBDDPeakCompile: re.Result.Stats.CompilePeakLive,
		ROBDDPeakConvert: re.Result.Stats.ConvertPeakLive,
		Identical:        true,
	}
	if hits, misses := re.Result.Stats.BDD.ApplyCacheHits, re.Result.Stats.BDD.ApplyCacheMisses; hits+misses > 0 {
		out.ITECacheHitRate = float64(hits) / float64(hits+misses)
	}
	ph := re.Result.Phases
	out.BuildPhases.Prepare = ph.Prepare.Seconds()
	out.BuildPhases.Encode = ph.Encode.Seconds()
	out.BuildPhases.Order = ph.Order.Seconds()
	out.BuildPhases.Compile = ph.Compile.Seconds()
	out.BuildPhases.Convert = ph.Convert.Seconds()
	out.BuildPhases.Eval = ph.Eval.Seconds()
	ps := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		ps[i] = c.P
	}
	grid := sweepGrid(ps, points)
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	serial := re.Sweep(grid, yield.SweepOptions{Workers: 1}) // warm-up and reference
	var serialSec float64
	for w := 1; w <= maxWorkers; w *= 2 {
		var meter *obs.Progress
		if progress {
			meter = obs.NewProgress(os.Stderr, fmt.Sprintf("sweep w=%d", w), len(grid), 0)
		}
		t0 = time.Now()
		res := re.Sweep(grid, yield.SweepOptions{Workers: w, Recorder: cfg.Recorder, Progress: meter})
		sec := time.Since(t0).Seconds()
		meter.Close()
		if w == 1 {
			serialSec = sec
		}
		for i := range res {
			if res[i] != serial[i] {
				out.Identical = false
			}
		}
		out.Trajectory = append(out.Trajectory, struct {
			Workers int     `json:"workers"`
			Seconds float64 `json:"seconds"`
			Speedup float64 `json:"speedup_vs_serial"`
		}{Workers: w, Seconds: sec, Speedup: serialSec / sec})
		fmt.Printf("workers=%-3d %8.3fs  speedup %.2fx  identical %v\n", w, sec, serialSec/sec, out.Identical)
	}
	return out, nil
}

// buildBench is the JSON record of one -build-json run: the full
// decision-diagram build (prepare through eval) of one case at
// increasing BuildWorkers counts, with the serial engine (workers=1)
// as the timing reference and the equality oracle. One row per worker
// count carries the per-phase seconds — compile and convert are the
// phases the concurrent engine parallelizes — plus the engine's
// contention counters, so a scaling regression is attributable to a
// phase and a lock family. The BENCH_6.json artifact is one of these
// per benchmark case.
type buildBench struct {
	Benchmark   string  `json:"benchmark"`
	LambdaPrime int     `json:"lambda_prime"`
	Epsilon     float64 `json:"epsilon"`
	Cores       int     `json:"cores"`
	M           int     `json:"m"`
	Yield       float64 `json:"yield"`
	// Identical reports the acceptance invariant: every worker count
	// produced exactly the serial yield, M, error bound and both
	// diagram sizes (== on float64 bits, no tolerance).
	Identical bool            `json:"parallel_identical_to_serial"`
	Scaling   []buildBenchRow `json:"build_scaling"`
}

// buildBenchRow is one worker count's build timing.
type buildBenchRow struct {
	Workers         int     `json:"workers"`
	CompileSec      float64 `json:"compile_seconds"`
	ConvertSec      float64 `json:"convert_seconds"`
	TotalSec        float64 `json:"total_seconds"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	CodedROBDDNodes int     `json:"coded_robdd_nodes"`
	ROMDDNodes      int     `json:"romdd_nodes"`
	CompileTasks    int64   `json:"compile_tasks"`
	CompileSteals   int64   `json:"compile_steals"`
	ShardContention int64   `json:"shard_contention"`
	CacheContention int64   `json:"cache_contention"`
}

// runBuildBench times the one-time model build of every case in
// caseSpec at worker counts 1, 2, 4, … up to maxWorkers (at least 4,
// so the scaling shape is visible even on small boxes), checking each
// parallel build bit-identical against the serial one, and writes the
// records as JSON (single object for one case, array for several).
func runBuildBench(path, caseSpec string, maxWorkers int, cfg experiments.Config) error {
	parsed, err := parseCases(caseSpec)
	if err != nil || len(parsed) == 0 {
		return fmt.Errorf("bad -bench-case %q: %v", caseSpec, err)
	}
	records := make([]buildBench, 0, len(parsed))
	for _, cs := range parsed {
		rec, err := buildBenchOneCase(cs, maxWorkers, cfg)
		if err != nil {
			return err
		}
		records = append(records, rec)
	}
	var data []byte
	if len(records) == 1 {
		data, err = json.MarshalIndent(records[0], "", "  ")
	} else {
		data, err = json.MarshalIndent(records, "", "  ")
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func buildBenchOneCase(cs experiments.Case, maxWorkers int, cfg experiments.Config) (buildBench, error) {
	sys, err := cliutil.LoadSystem(cs.Benchmark, "")
	if err != nil {
		return buildBench{}, err
	}
	alpha, eps := cfg.Alpha, cfg.Epsilon
	if alpha == 0 {
		alpha = 3.4
	}
	if eps == 0 {
		eps = 2e-3
	}
	dist, err := defects.NewNegativeBinomial(2*float64(cs.LambdaPrime), alpha)
	if err != nil {
		return buildBench{}, err
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	out := buildBench{
		Benchmark:   cs.Benchmark,
		LambdaPrime: cs.LambdaPrime,
		Epsilon:     eps,
		Cores:       runtime.NumCPU(),
		Identical:   true,
	}
	// Untimed warm-up build: the first build in a process pays the Go
	// heap's growth from its small initial size, which would inflate
	// whichever row runs first (the serial reference) and overstate the
	// parallel speedup.
	if _, err := yield.Evaluate(sys, yield.Options{
		Defects: dist, Epsilon: eps, NodeLimit: 100_000_000, BuildWorkers: 1,
	}); err != nil {
		return buildBench{}, fmt.Errorf("%v warm-up: %w", cs, err)
	}
	var serial *yield.Result
	for w := 1; w <= maxWorkers; w *= 2 {
		opts := yield.Options{
			Defects: dist, Epsilon: eps,
			NodeLimit: 100_000_000, BuildWorkers: w,
			Recorder: cfg.Recorder,
		}
		t0 := time.Now()
		res, err := yield.Evaluate(sys, opts)
		total := time.Since(t0).Seconds()
		if err != nil {
			return buildBench{}, fmt.Errorf("%v workers=%d: %w", cs, w, err)
		}
		if w == 1 {
			serial = res
			out.M = res.M
			out.Yield = res.Yield
		} else if res.Yield != serial.Yield || res.M != serial.M ||
			res.ErrorBound != serial.ErrorBound ||
			res.CodedROBDDSize != serial.CodedROBDDSize ||
			res.ROMDDSize != serial.ROMDDSize {
			out.Identical = false
		}
		speedup := 1.0
		if w > 1 && total > 0 {
			speedup = out.Scaling[0].TotalSec / total
		}
		row := buildBenchRow{
			Workers:         w,
			CompileSec:      res.Phases.Compile.Seconds(),
			ConvertSec:      res.Phases.Convert.Seconds(),
			TotalSec:        total,
			SpeedupVsSerial: speedup,
			CodedROBDDNodes: res.CodedROBDDSize,
			ROMDDNodes:      res.ROMDDSize,
			CompileTasks:    res.Stats.CompileTasks,
			CompileSteals:   res.Stats.CompileSteals,
			ShardContention: res.Stats.BDD.ShardContention,
			CacheContention: res.Stats.BDD.CacheContention,
		}
		out.Scaling = append(out.Scaling, row)
		fmt.Printf("%s workers=%-3d compile %7.3fs  convert %7.3fs  total %7.3fs  speedup %.2fx  identical %v\n",
			cs.Benchmark, w, row.CompileSec, row.ConvertSec, total, row.SpeedupVsSerial, out.Identical)
	}
	return out, nil
}

// sweepGrid builds an n-point (λ', α) grid around the case's model.
func sweepGrid(ps []float64, n int) []yield.SweepPoint {
	grid := make([]yield.SweepPoint, 0, n)
	for i := 0; len(grid) < n; i++ {
		lambda := 0.5 + 0.25*float64(i%16)
		alpha := []float64{0.25, 1, 2, 3.4}[(i/16)%4]
		d, err := defects.NewNegativeBinomial(lambda, alpha)
		if err != nil {
			continue
		}
		grid = append(grid, yield.SweepPoint{PS: ps, Dist: d})
	}
	return grid
}

func parseCases(s string) ([]experiments.Case, error) {
	var out []experiments.Case
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		bench, lp, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad case %q, want <bench>:<lambda-prime>", part)
		}
		n, err := strconv.Atoi(lp)
		if err != nil {
			return nil, fmt.Errorf("bad λ' in %q: %v", part, err)
		}
		out = append(out, experiments.Case{Benchmark: bench, LambdaPrime: n})
	}
	return out, nil
}

func printTable1(w io.Writer) error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark,
			strconv.Itoa(r.Components), strconv.Itoa(r.PaperC),
			strconv.Itoa(r.Gates), strconv.Itoa(r.PaperGates),
		})
	}
	fmt.Fprint(w, experiments.FormatTable(
		[]string{"benchmark", "C", "C(paper)", "gates", "gates(paper)"}, out))
	return nil
}

func printTable2(w io.Writer, cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table2(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case"}
	for _, mv := range experiments.Table2MVOrderings() {
		header = append(header, mv.String(), mv.String()+"(paper)")
	}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		for _, mv := range experiments.Table2MVOrderings() {
			line = append(line, r.Sizes[mv.String()].String(), paperCell(r.Paper, mv.String()))
		}
		out = append(out, line)
	}
	fmt.Fprint(w, experiments.FormatTable(header, out))
	return nil
}

func printTable3(w io.Writer, cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table3(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case"}
	for _, bk := range experiments.Table3BitOrderings() {
		header = append(header, bk.String(), bk.String()+"(paper)")
	}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		for _, bk := range experiments.Table3BitOrderings() {
			line = append(line, r.Sizes[bk.String()].String(), paperCell(r.Paper, bk.String()))
		}
		out = append(out, line)
	}
	fmt.Fprint(w, experiments.FormatTable(header, out))
	return nil
}

func printTable4(w io.Writer, cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.Table4(cases, cfg)
	if err != nil {
		return err
	}
	header := []string{"case", "cpu", "cpu(paper)", "peak", "peak(paper)",
		"robdd", "robdd(paper)", "romdd", "romdd(paper)", "yield", "yield(paper)", "M"}
	var out [][]string
	for _, r := range rows {
		line := []string{r.Case.String()}
		if r.Failed {
			line = append(line, "—", paperSec(r), strconv.Itoa(r.Peak), paperInt(r.PaperRow.Peak, r.HavePaper),
				"—", paperInt(r.PaperRow.ROBDD, r.HavePaper), "—", paperInt(r.PaperRow.ROMDD, r.HavePaper),
				"—", paperYield(r), strconv.Itoa(r.M))
		} else {
			line = append(line,
				r.CPU.Round(10*time.Millisecond).String(), paperSec(r),
				strconv.Itoa(r.Peak), paperInt(r.PaperRow.Peak, r.HavePaper),
				strconv.Itoa(r.ROBDD), paperInt(r.PaperRow.ROBDD, r.HavePaper),
				strconv.Itoa(r.ROMDD), paperInt(r.PaperRow.ROMDD, r.HavePaper),
				fmt.Sprintf("%.4f", r.Yield), paperYield(r),
				strconv.Itoa(r.M))
		}
		out = append(out, line)
	}
	fmt.Fprint(w, experiments.FormatTable(header, out))
	return nil
}

func printAblation(w io.Writer, cases []experiments.Case, cfg experiments.Config) error {
	rows, err := experiments.AblationDirectMDD(cases, cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		direct := r.DirectTime.Round(time.Millisecond).String()
		agree := fmt.Sprintf("%v/%v", r.SizesAgree, r.YieldsAgree)
		if r.DirectFailed {
			direct, agree = "—", "—"
		}
		out = append(out, []string{
			r.Case.String(),
			r.CodedTime.Round(time.Millisecond).String(),
			direct,
			strconv.Itoa(r.ROMDD),
			agree,
		})
	}
	fmt.Fprint(w, experiments.FormatTable(
		[]string{"case", "coded-robdd route", "direct-mdd route", "romdd", "size/yield agree"}, out))
	return nil
}

func printBaseline(w io.Writer, cases []experiments.Case, samples int, cfg experiments.Config) error {
	rows, err := experiments.BaselineMonteCarlo(cases, samples, cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Case.String(),
			fmt.Sprintf("%.4f", r.Exact),
			r.ExactTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f±%.4f", r.MC, 1.96*r.MCStdErr),
			r.MCTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%v", r.WithinThree),
		})
	}
	fmt.Fprint(w, experiments.FormatTable(
		[]string{"case", "combinatorial", "time", "monte-carlo (95% CI)", "time", "consistent"}, out))
	return nil
}

func printBaselineIS(w io.Writer, cases []experiments.Case, samples int, cfg experiments.Config) error {
	rows, err := experiments.BaselineImportance(cases, samples, cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Case.String(),
			fmt.Sprintf("%.4f", r.Exact),
			r.ExactTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f±%.4f", r.IS, 1.96*r.ISStdErr),
			fmt.Sprintf("%.2f", r.Tilt),
			fmt.Sprintf("%.0f", r.ESS),
			fmt.Sprintf("%.3g", r.RelErr),
			r.ISTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%v", r.WithinThree),
		})
	}
	fmt.Fprint(w, experiments.FormatTable(
		[]string{"case", "combinatorial", "time", "importance-sampling (95% CI)", "tilt", "ess", "rel-err", "time", "consistent"}, out))
	return nil
}

func paperCell(m map[string]experiments.Cell, key string) string {
	if m == nil {
		return "?"
	}
	c, ok := m[key]
	if !ok {
		return "?"
	}
	return c.String()
}

func paperInt(v int, have bool) string {
	if !have {
		return "?"
	}
	return strconv.Itoa(v)
}

func paperSec(r experiments.Table4Row) string {
	if !r.HavePaper {
		return "?"
	}
	return fmt.Sprintf("%.2fs", r.PaperRow.CPUSeconds)
}

func paperYield(r experiments.Table4Row) string {
	if !r.HavePaper {
		return "?"
	}
	return fmt.Sprintf("%.3f", r.PaperRow.Yield)
}
