// Command benchgen generates the paper's benchmark systems and prints
// their inventories, structure statistics, or Graphviz renderings.
//
// Examples:
//
//	benchgen                      # Table 1 inventory
//	benchgen -bench MS4 -stats    # structural statistics
//	benchgen -bench ESEN4x2 -dot  # fault tree in Graphviz dot
//	benchgen -bench MS2 -ftdsl    # components in ftdsl stub form
package main

import (
	"flag"
	"fmt"
	"os"

	"socyield/internal/benchmarks"
	"socyield/internal/logic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench = flag.String("bench", "", "benchmark to generate (default: print the whole inventory)")
		dot   = flag.Bool("dot", false, "print the fault tree in Graphviz dot")
		stats = flag.Bool("stats", false, "print structural statistics")
		dsl   = flag.Bool("ftdsl", false, "print component declarations in ftdsl form")
	)
	flag.Parse()
	if *bench == "" {
		fmt.Printf("%-10s %5s %7s %7s %6s\n", "benchmark", "C", "gates", "inputs", "depth")
		for _, e := range benchmarks.PaperBenchmarks() {
			sys, err := e.Build()
			if err != nil {
				return err
			}
			s, err := sys.FaultTree.ComputeStats()
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %5d %7d %7d %6d\n", e.Name, len(sys.Components), s.Gates, s.Inputs, s.Depth)
		}
		return nil
	}
	for _, e := range benchmarks.PaperBenchmarks() {
		if e.Name != *bench {
			continue
		}
		sys, err := e.Build()
		if err != nil {
			return err
		}
		switch {
		case *dot:
			out, err := sys.FaultTree.DOT(sys.Name)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case *dsl:
			fmt.Printf("system %s\n", sys.Name)
			for _, c := range sys.Components {
				fmt.Printf("component %s %.6g\n", c.Name, c.P)
			}
			fmt.Println("# fails = <structure function is generated programmatically; see internal/benchmarks>")
		case *stats:
			s, err := sys.FaultTree.ComputeStats()
			if err != nil {
				return err
			}
			fmt.Printf("benchmark   %s\n", sys.Name)
			fmt.Printf("components  %d (P_L = %.4g)\n", len(sys.Components), sys.PL())
			fmt.Printf("gates       %d (reachable %d, depth %d, max fan-in %d)\n",
				s.Gates, s.Reachable, s.Depth, s.MaxFanin)
			for _, k := range []logic.Kind{logic.AndKind, logic.OrKind, logic.NotKind} {
				fmt.Printf("  %-5v %d\n", k, s.ByKind[k])
			}
		default:
			for _, c := range sys.Components {
				fmt.Printf("%-12s P=%.6g\n", c.Name, c.P)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown benchmark %q", *bench)
}
