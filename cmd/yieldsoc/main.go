// Command yieldsoc evaluates the manufacturing yield of a
// fault-tolerant system-on-chip with the combinatorial method.
//
// The system is either one of the paper's benchmarks (-bench MS4,
// -bench ESEN8x2) or a description file in the ftdsl format (-f
// system.ft). The defect model is a negative binomial with mean
// -lambda and clustering -alpha (use -poisson for the Poisson model,
// or -alphas a1,a2,... for the multilevel clustered model with one
// gamma-distributed scale factor per hierarchy level).
//
// Examples:
//
//	yieldsoc -bench MS4 -lambda 2 -alpha 0.25
//	yieldsoc -f tmr.ft -lambda 1 -alpha 2 -eps 1e-5
//	yieldsoc -bench ESEN4x2 -lambda 2 -alpha 2 -mv wvr -bits lm
//	yieldsoc -bench MS2 -lambda 2 -alpha 2 -reliability 0,10,100 -frate 1e-3
//	yieldsoc -bench MS4 -lambda 2 -alpha 2 -sweep 0.5,1,2,4 -workers 8
//	yieldsoc -bench MS3 -lambda 0.02 -alpha 2 -mc-is 100000
//
// -mc runs a naive Monte-Carlo cross-check; -mc-is runs the
// importance-sampling estimator instead, which stays sharp in the
// rare-event regime (near-certain yield) where the naive sampler
// degenerates to an all-pass sample. -mc-tilt fixes the exponential
// tilt; by default an untilted pilot phase picks it adaptively.
//
// -sweep evaluates the yield for each listed λ on one shared ROMDD
// (built once), fanning the points out over -workers goroutines.
//
// -save-model FILE persists the compiled model (the expensive build
// artifact) in the versioned binary format of internal/store;
// -load-model FILE restores it in milliseconds and evaluates
// bit-identically to a fresh build. Saving into a directory stores the
// model as <model-key>.scm — the layout yieldd -store-dir serves —
// so a fleet's models can be pre-compiled offline.
//
// Instrumentation: -metrics-json FILE dumps every counter, gauge,
// histogram and phase span collected during the run as JSON ("-" for
// stdout); -trace-out FILE records the run as a Chrome trace-event
// file (open it at ui.perfetto.dev) with phase spans, per-worker build
// tracks and sampled counters; -samples-out FILE dumps the sampled
// metrics time series as JSONL (-sample-interval sets the cadence);
// -progress prints periodic completion lines for sweeps and
// Monte-Carlo runs; -pprof ADDR serves net/http/pprof and an expvar
// dump of the live metrics on ADDR for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"socyield/internal/cliutil"
	"socyield/internal/defects"
	"socyield/internal/montecarlo"
	"socyield/internal/obs"
	"socyield/internal/order"
	"socyield/internal/reliability"
	"socyield/internal/store"
	"socyield/internal/yield"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "yieldsoc:", err)
		os.Exit(1)
	}
}

// loadCompiled restores a model saved by -save-model (or by a yieldd
// store). The model's key must match the key of this run's flags —
// a compiled model is only valid for the exact structure, orderings,
// ε and truncation point it was built from.
func loadCompiled(path, key string) (*yield.Reevaluator, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := store.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.ModelKey != key {
		return nil, fmt.Errorf("%s holds model %.12s… (system %q), these flags describe model %.12s… — rebuild with -save-model or match the original flags",
			path, snap.ModelKey, snap.SystemName, key)
	}
	return yield.RestoreReevaluator(snap)
}

// saveCompiled persists the compiled model. A directory destination
// stores it content-addressed (<key>.scm) — pointing -save-model at a
// yieldd -store-dir pre-compiles models for the server. A file
// destination writes atomically via a sibling temp file.
func saveCompiled(path, key string, re *yield.Reevaluator) error {
	snap := re.Snapshot()
	snap.ModelKey = key
	data, err := store.Encode(snap)
	if err != nil {
		return err
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		st, err := store.Open(path, 0, nil)
		if err != nil {
			return err
		}
		if err := st.Put(key, data); err != nil {
			return err
		}
		fmt.Printf("model saved %s (%d bytes, key %s)\n", filepath.Join(path, key+".scm"), len(data), key[:12])
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".save-model-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	fmt.Printf("model saved %s (%d bytes, key %s)\n", path, len(data), key[:12])
	return nil
}

func run() error {
	var (
		benchName  = flag.String("bench", "", "benchmark system (MS<n> or ESEN<n>x<m>)")
		file       = flag.String("f", "", "system description file (ftdsl format)")
		lambda     = flag.Float64("lambda", 2, "expected number of manufacturing defects")
		alpha      = flag.Float64("alpha", 2, "negative binomial clustering parameter")
		poisson    = flag.Bool("poisson", false, "use a Poisson defect model instead")
		alphas     = flag.String("alphas", "", "comma-separated per-level clustering parameters for the multilevel model (innermost first; overrides -alpha/-poisson)")
		eps        = flag.Float64("eps", 5e-3, "absolute yield error requirement")
		mvName     = flag.String("mv", "w", "MV-variable ordering: wv wvr vw vrw t w h")
		bitName    = flag.String("bits", "ml", "bit-group ordering: ml lm t w h")
		nodeLimit  = flag.Int("nodelimit", 0, "decision-diagram node budget (0 = unlimited)")
		mcSamples  = flag.Int("mc", 0, "also run a Monte-Carlo cross-check with this many samples")
		mcIS       = flag.Int("mc-is", 0, "also run an importance-sampling Monte-Carlo cross-check with this many samples (pilot included)")
		mcTilt     = flag.Float64("mc-tilt", -1, "fixed exponential tilt for -mc-is (negative = adaptive pilot)")
		sens       = flag.Bool("sensitivity", false, "print per-component yield sensitivities ∂Y/∂P_i")
		relTimes   = flag.String("reliability", "", "comma-separated mission times for a reliability curve")
		fRate      = flag.Float64("frate", 1e-3, "field failure rate per component (with -reliability)")
		sweep      = flag.String("sweep", "", "comma-separated λ values for a batch sweep on the shared ROMDD")
		workers    = flag.Int("workers", 0, "parallel workers for -sweep and -mc (0 = all cores)")
		buildWork  = flag.Int("build-workers", 0, "workers for the decision-diagram build (0 = all cores, 1 = serial engine)")
		verbose    = flag.Bool("v", false, "print per-phase statistics")
		metricsJS  = flag.String("metrics-json", "", "write collected metrics as JSON to this file (\"-\" = stdout)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of the run to this file (Perfetto-loadable)")
		samplesOut = flag.String("samples-out", "", "write the sampled metrics time series as JSONL to this file (\"-\" = stdout)")
		sampleInt  = flag.Duration("sample-interval", 0, "flight-recorder sampling interval (0 = 100ms default)")
		progress   = flag.Bool("progress", false, "print periodic progress lines for sweeps and Monte-Carlo runs")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and an expvar metrics dump on this address")
		saveModel  = flag.String("save-model", "", "write the compiled model to this file after the build (an existing directory stores it under <model-key>.scm, yieldd -store-dir compatible)")
		loadModel  = flag.String("load-model", "", "load a compiled model saved by -save-model instead of building (the flags must describe the model it was compiled from)")
	)
	flag.Parse()

	// One registry instruments the whole run. It is created whenever any
	// export path wants it; a nil registry records nothing.
	var rec *obs.Registry
	if *metricsJS != "" || *pprofAddr != "" || *traceOut != "" || *samplesOut != "" {
		rec = obs.NewRegistry()
	}
	if *pprofAddr != "" {
		cliutil.ServeDebug("yieldsoc", *pprofAddr, rec)
	}
	flight := cliutil.StartFlightRecorder(rec, *traceOut, *samplesOut, *sampleInt)

	sys, err := cliutil.LoadSystem(*benchName, *file)
	if err != nil {
		return err
	}
	// makeDist builds the defect model for a given λ so the headline
	// run and each -sweep point share one family-selection rule.
	makeDist := func(l float64) (defects.Distribution, error) {
		if *alphas != "" {
			as, err := cliutil.ParseFloats(*alphas)
			if err != nil {
				return nil, fmt.Errorf("-alphas: %w", err)
			}
			return defects.NewMultilevel(l, as...)
		}
		if *poisson {
			return defects.NewPoisson(l)
		}
		return defects.NewNegativeBinomial(l, *alpha)
	}
	dist, err := makeDist(*lambda)
	if err != nil {
		return err
	}
	mv, err := order.ParseMVKind(*mvName)
	if err != nil {
		return err
	}
	bits, err := order.ParseBitKind(*bitName)
	if err != nil {
		return err
	}
	opts := yield.Options{
		Defects: dist, Epsilon: *eps,
		MVOrder: mv, BitOrder: bits, NodeLimit: *nodeLimit,
		BuildWorkers: *buildWork,
		Recorder:     rec,
		Tracer:       flight.Tracer(),
	}
	ps := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		ps[i] = c.P
	}

	// One Reevaluator carries the whole run: the headline evaluation,
	// -sensitivity, -sweep, and -save-model all share the same compiled
	// model, built (or loaded) exactly once. ModelKey pins the
	// truncation point so the compiled artifact is the one the key
	// addresses — the same identity yieldd's store uses.
	key, m, err := yield.ModelKey(sys, opts)
	if err != nil {
		return err
	}
	start := time.Now()
	var re *yield.Reevaluator
	if *loadModel != "" {
		if re, err = loadCompiled(*loadModel, key); err != nil {
			return err
		}
	} else {
		buildOpts := opts
		buildOpts.ForceM, buildOpts.ForceMSet = m, true
		if re, err = yield.NewReevaluator(sys, buildOpts); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	res := *re.Result
	if *loadModel != "" {
		// The loaded model's stored summary reflects its build-time
		// inputs; reevaluate under this run's flags (bit-identical to a
		// fresh build — the store test battery holds the codec to that).
		if res.Yield, res.ErrorBound, err = re.Yield(ps, dist); err != nil {
			return err
		}
		pl := 0.0
		for _, p := range ps {
			pl += p
		}
		lethal, err := defects.Thin(dist, pl)
		if err != nil {
			return err
		}
		res.PL, res.LambdaPrime = pl, lethal.Mean()
	}
	if *saveModel != "" {
		if err := saveCompiled(*saveModel, key, re); err != nil {
			return err
		}
	}

	fmt.Printf("system      %s (C=%d components, %d gates)\n", sys.Name, len(sys.Components), sys.FaultTree.NumGates())
	fmt.Printf("defects     %v, P_L=%.4g, λ'=%.4g\n", dist, res.PL, res.LambdaPrime)
	fmt.Printf("truncation  M=%d (ε=%g)\n", res.M, *eps)
	fmt.Printf("error bound %.3g (tail mass beyond M=%d; Y_true - Y_M ≤ bound)\n", res.ErrorBound, res.M)
	fmt.Printf("yield       %.6f  (true yield in [%.6f, %.6f])\n", res.Yield, res.Yield, res.Yield+res.ErrorBound)
	if *verbose {
		fmt.Printf("G function  %d gates over %d binary variables\n", res.GGates, res.BinaryVars)
		fmt.Printf("coded ROBDD %d nodes (peak %d live)\n", res.CodedROBDDSize, res.ROBDDPeak)
		fmt.Printf("ROMDD       %d nodes (max level width %d)\n", res.ROMDDSize, res.Stats.ROMDDMaxWidth)
		fmt.Printf("apply cache %d hits / %d misses; unique table %d hits, %d nodes created\n",
			res.Stats.BDD.ApplyCacheHits, res.Stats.BDD.ApplyCacheMisses,
			res.Stats.BDD.UniqueTableHits, res.Stats.BDD.NodesCreated)
		fmt.Printf("time        %v (prepare %v, encode %v, order %v, compile %v, convert %v, eval %v)\n",
			elapsed.Round(time.Millisecond),
			res.Phases.Prepare.Round(time.Millisecond),
			res.Phases.Encode.Round(time.Millisecond),
			res.Phases.Order.Round(time.Millisecond),
			res.Phases.Compile.Round(time.Millisecond),
			res.Phases.Convert.Round(time.Millisecond),
			res.Phases.Eval.Round(time.Millisecond))
	}
	if *sens {
		ds, err := re.Sensitivities(ps, dist, 0)
		if err != nil {
			return err
		}
		type sc struct {
			name string
			d    float64
		}
		ranked := make([]sc, len(ds))
		for i, d := range ds {
			ranked[i] = sc{sys.Components[i].Name, d}
		}
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].d < ranked[b].d })
		fmt.Println("yield sensitivity ∂Y/∂P_i (most critical first):")
		limit := 10
		if len(ranked) < limit {
			limit = len(ranked)
		}
		for _, r := range ranked[:limit] {
			fmt.Printf("  %-14s %+.4f\n", r.name, r.d)
		}
	}
	if *sweep != "" {
		lambdas, err := cliutil.ParseFloats(*sweep)
		if err != nil {
			return err
		}
		dists := make([]defects.Distribution, len(lambdas))
		for i, l := range lambdas {
			if dists[i], err = makeDist(l); err != nil {
				return err
			}
		}
		var meter *obs.Progress
		if *progress {
			meter = obs.NewProgress(os.Stderr, "sweep", len(lambdas), 0)
		}
		start := time.Now()
		results := re.Sweep(yield.LambdaGrid(ps, dists), yield.SweepOptions{
			Workers: *workers, Recorder: rec, Progress: meter,
		})
		meter.Close()
		fmt.Printf("sweep over %d λ values (ROMDD built once, %d nodes, %v for all points):\n",
			len(lambdas), re.Result.ROMDDSize, time.Since(start).Round(time.Microsecond))
		for i, sr := range results {
			if sr.Err != nil {
				fmt.Printf("  λ=%-8g error: %v\n", lambdas[i], sr.Err)
				continue
			}
			fmt.Printf("  λ=%-8g yield %.6f  (true yield ≤ %.6f)\n", lambdas[i], sr.Yield, sr.Yield+sr.ErrorBound)
		}
	}
	if *mcSamples > 0 {
		var meter *obs.Progress
		if *progress {
			chunks := (*mcSamples + 4095) / 4096
			meter = obs.NewProgress(os.Stderr, "monte-carlo", chunks, 0)
		}
		mc, err := montecarlo.Estimate(sys, montecarlo.Options{
			Defects: dist, Samples: *mcSamples, Seed: 1, Workers: *workers,
			Recorder: rec, Progress: meter,
		})
		meter.Close()
		if err != nil {
			return err
		}
		fmt.Printf("monte-carlo %.6f ± %.6f (95%% CI, %d samples)\n", mc.Yield, mc.CI(1.96), mc.Samples)
		if mc.Degenerate {
			lo, hi := mc.Wilson(1.96)
			fmt.Printf("monte-carlo sample is degenerate (every die %s); Wilson 95%% interval [%.6f, %.6f] — consider -mc-is\n",
				map[bool]string{true: "passed", false: "failed"}[mc.Yield == 1], lo, hi)
		}
	}
	if *mcIS > 0 {
		isOpts := montecarlo.ISOptions{
			Defects: dist, Samples: *mcIS, Seed: 1, Workers: *workers,
			Recorder: rec,
		}
		if *mcTilt >= 0 {
			isOpts.Tilt, isOpts.TiltSet = *mcTilt, true
		}
		if *progress {
			// Mirror EstimateIS's budget split: an adaptive run spends
			// min(Samples/4, 8192) on the untilted pilot, a fixed-tilt run
			// skips the pilot entirely; one progress tick per 4096-die chunk.
			pilot := 0
			if !isOpts.TiltSet {
				pilot = *mcIS / 4
				if pilot > 8192 {
					pilot = 8192
				}
			}
			chunks := (pilot+4095)/4096 + (*mcIS-pilot+4095)/4096
			isOpts.Progress = obs.NewProgress(os.Stderr, "monte-carlo-is", chunks, 0)
		}
		is, err := montecarlo.EstimateIS(sys, isOpts)
		isOpts.Progress.Close()
		if err != nil {
			return err
		}
		fmt.Printf("mc-is       %.6f ± %.6f (95%% CI, %d samples, %d pilot)\n",
			is.Yield, is.CI(1.96), is.Samples, is.PilotSamples)
		fmt.Printf("mc-is       tilt %.3f, ESS %.0f, rel-err %.3g on failure probability %.4g\n",
			is.Tilt, is.ESS, is.RelErr, is.FailProb)
		if is.Degenerate {
			fmt.Println("mc-is       sample is degenerate — no failures even under the tilted proposal")
		}
	}
	if *relTimes != "" {
		times, err := cliutil.ParseFloats(*relTimes)
		if err != nil {
			return err
		}
		lts := make([]reliability.Lifetime, len(sys.Components))
		for i := range lts {
			lts[i] = reliability.Exponential{Rate: *fRate}
		}
		curve, err := reliability.Curve(sys, reliability.Options{
			Defects: dist, Epsilon: *eps, Lifetimes: lts,
			MVOrder: mv, BitOrder: bits, NodeLimit: *nodeLimit,
		}, times)
		if err != nil {
			return err
		}
		fmt.Printf("reliability (exponential field failures, rate %g):\n", *fRate)
		for _, pt := range curve.Points {
			fmt.Printf("  R(%g) = %.6f\n", pt.T, pt.Reliability)
		}
	}
	// The flight recorder closes after the instrumented work so the
	// trace carries the complete phase spans.
	if err := flight.Close(); err != nil {
		return err
	}
	if *metricsJS != "" {
		if err := cliutil.WriteMetrics(rec, *metricsJS); err != nil {
			return err
		}
	}
	return nil
}
