package main

import "testing"

func TestLoadSystem(t *testing.T) {
	if _, err := loadSystem("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadSystem("MS2", "x.ft"); err == nil {
		t.Error("both sources accepted")
	}
	sys, err := loadSystem("MS2", "")
	if err != nil || sys.Name != "MS2" {
		t.Errorf("MS2: %v, %v", sys, err)
	}
	// Generalized names beyond Table 1.
	sys, err = loadSystem("MS3", "")
	if err != nil || len(sys.Components) != 24 {
		t.Errorf("MS3: %v, %v", sys, err)
	}
	sys, err = loadSystem("ESEN16x2", "")
	if err != nil || sys.Name != "ESEN16x2" {
		t.Errorf("ESEN16x2: %v", err)
	}
	if _, err := loadSystem("ESEN16", ""); err == nil {
		t.Error("malformed ESEN name accepted")
	}
	if _, err := loadSystem("FOO9", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := loadSystem("", "/nonexistent.ft"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseTimes(t *testing.T) {
	ts, err := parseTimes("0, 1.5,3e2")
	if err != nil || len(ts) != 3 || ts[1] != 1.5 || ts[2] != 300 {
		t.Errorf("parseTimes: %v, %v", ts, err)
	}
	if _, err := parseTimes("1,x"); err == nil {
		t.Error("bad time accepted")
	}
}

func TestParseSuffix(t *testing.T) {
	if n, ok := parseSuffix("MS12", "MS"); !ok || n != 12 {
		t.Errorf("parseSuffix: %d, %v", n, ok)
	}
	if _, ok := parseSuffix("XS12", "MS"); ok {
		t.Error("wrong prefix accepted")
	}
	if _, ok := parseSuffix("MSx", "MS"); ok {
		t.Error("non-numeric suffix accepted")
	}
}
