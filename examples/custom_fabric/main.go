// Custom fabric: a user-defined irregular SoC — the kind of design the
// paper motivates, where no "ad-hoc" regular-structure formula applies.
// Two processor tiles with private caches share a memory controller
// that has a cold spare; an accelerator is optional for degraded-mode
// operation. The example builds the fault tree with the public API,
// evaluates yield under several clustering regimes, and runs the
// reliability extension.
package main

import (
	"fmt"
	"log"

	"socyield"
)

func main() {
	f := socyield.NewFaultTree()
	cpu0, l2c0 := f.Input("cpu0"), f.Input("l2c0")
	cpu1, l2c1 := f.Input("cpu1"), f.Input("l2c1")
	mc, mcSpare := f.Input("mc"), f.Input("mc_spare")
	noc := f.Input("noc")
	acc := f.Input("acc")

	// A tile works if its CPU and its cache work.
	tile0 := f.And(f.Not(cpu0), f.Not(l2c0))
	tile1 := f.And(f.Not(cpu1), f.Not(l2c1))
	// Memory path works if either controller copy works.
	mem := f.Or(f.Not(mc), f.Not(mcSpare))
	// The chip ships if the NoC works, memory works, at least one tile
	// works, and — for the premium bin — the accelerator works too.
	// Here we model the sellable (degraded-allowed) configuration:
	operational := f.And(f.Not(noc), mem, f.Or(tile0, tile1))
	_ = acc // the accelerator does not gate the sellable bin
	f.SetOutput(f.Not(operational))

	sys := &socyield.System{
		Name: "custom-fabric",
		Components: []socyield.Component{
			{Name: "cpu0", P: 0.09}, {Name: "l2c0", P: 0.05},
			{Name: "cpu1", P: 0.09}, {Name: "l2c1", P: 0.05},
			{Name: "mc", P: 0.04}, {Name: "mc_spare", P: 0.04},
			{Name: "noc", P: 0.08},
			{Name: "acc", P: 0.06},
		},
		FaultTree: f,
	}

	fmt.Println("yield vs defect clustering (mean λ = 2 defects):")
	for _, alpha := range []float64{0.25, 1, 2, 10} {
		dist, err := socyield.NewNegativeBinomial(2, alpha)
		if err != nil {
			log.Fatal(err)
		}
		res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α=%-5g  yield ∈ [%.5f, %.5f]  (M=%d)\n",
			alpha, res.Yield, res.Yield+res.ErrorBound, res.M)
	}
	// Stronger clustering (small α) concentrates defects on few dies:
	// more dies escape defect-free, so yield rises — the classic
	// negative-binomial effect the paper's model family captures.

	// Exact cross-check (C = 8 is small enough for inclusion–exclusion).
	dist, _ := socyield.NewNegativeBinomial(2, 0.25)
	exact, err := socyield.BruteForce(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	method, _ := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	fmt.Printf("\nbrute-force check at α=0.25: |Δ| = %.2e\n", abs(exact.Yield-method.Yield))

	// Mission reliability of the sellable bin over 5 years.
	lts := make([]socyield.Lifetime, len(sys.Components))
	for i := range lts {
		lts[i] = socyield.Exponential{Rate: 2e-6} // per hour
	}
	curve, err := socyield.ReliabilityCurve(sys, socyield.ReliabilityOptions{
		Defects: dist, Epsilon: 1e-4, Lifetimes: lts,
	}, []float64{0, 8760, 26280, 43800}) // 0, 1y, 3y, 5y
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noperational reliability (exponential field failures, 2e-6/h):")
	for _, pt := range curve.Points {
		fmt.Printf("  R(%6g h) = %.5f\n", pt.T, pt.Reliability)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
