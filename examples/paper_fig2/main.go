// Figure 2 of the paper, regenerated: the small ROMDD for the
// fault-tree function F(x1,x2,x3) = x1·x2 + x3 with M = 2 under the
// multiple-valued ordering v1, v2, w, and the depth-first probability
// traversal that computes P(G(W,V1,V2) = 1).
//
// This example deliberately reaches into the library internals to show
// the machinery the paper illustrates; the other examples stick to the
// public API.
package main

import (
	"fmt"
	"log"

	"socyield/internal/bdd"
	"socyield/internal/compile"
	"socyield/internal/convert"
	"socyield/internal/encode"
	"socyield/internal/logic"
	"socyield/internal/mdd"
	"socyield/internal/order"
)

func main() {
	// F = x1·x2 + x3 — the system is down if component 3 fails or if
	// both 1 and 2 fail.
	f := logic.New()
	x1, x2, x3 := f.Input("x1"), f.Input("x2"), f.Input("x3")
	f.SetOutput(f.Or(f.And(x1, x2), x3))

	// Synthesize G for M = 2: variables w ∈ {0,1,2,3}, v1, v2 ∈ {1,2,3}.
	g, err := encode.BuildG(f, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G(w, v1, v2): %d gates over %d binary variables (w: %d bits, v: %d bits each)\n",
		g.Netlist.NumGates(), g.Netlist.NumInputs(), g.WBits, g.VBits)

	// The figure uses the ordering v1, v2, w (the paper's "vw").
	plan, err := order.Assemble(g.Netlist, g.Groups, order.MVVW, order.BitML)
	if err != nil {
		log.Fatal(err)
	}
	bm := bdd.New(g.Netlist.NumInputs())
	root, err := compile.Netlist(bm, g.Netlist, plan.BinaryLevels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coded ROBDD: %d nodes\n", bm.Size(root))

	groupOf := make([]int, g.Netlist.NumInputs())
	bitOf := make([]uint, g.Netlist.NumInputs())
	for gi, grp := range g.Groups {
		nb := len(grp.Bits)
		for j, ord := range grp.Bits {
			groupOf[ord] = gi
			bitOf[ord] = uint(nb - 1 - j)
		}
	}
	spec, err := convert.SpecFromPlanLevels(plan.BinaryLevels, groupOf, bitOf, plan.GroupSeq, g.Domains())
	if err != nil {
		log.Fatal(err)
	}
	mm := mdd.MustNew(spec.Domains)
	mroot, err := convert.ToMDD(bm, root, mm, spec)
	if err != nil {
		log.Fatal(err)
	}
	stats := mm.ComputeStats(mroot)
	fmt.Printf("ROMDD: %d nodes (%d internal; per level v1=%d v2=%d w=%d)\n",
		stats.Nodes, stats.Nodes-2, stats.PerLevel[0], stats.PerLevel[1], stats.PerLevel[2])

	// Graphviz rendering of the diagram in the figure. Values of v
	// variables are 0-based here: value i means "component i+1".
	names := make([]string, len(plan.GroupSeq))
	for mvLevel, gi := range plan.GroupSeq {
		names[mvLevel] = g.Groups[gi].Name
	}
	fmt.Println("\nGraphviz (compare with Figure 2):")
	fmt.Print(mm.DOT(mroot, "figure2", names))

	// The probability traversal with an illustrative lethal-defect
	// model: Q'_0..Q'_2 and tail Q'_{≥3}; P'_i per component.
	qprime := []float64{0.55, 0.25, 0.12}
	tail := 1 - (qprime[0] + qprime[1] + qprime[2])
	pprime := []float64{0.3, 0.3, 0.4}
	probs := make([][]float64, 3)
	for mvLevel, gi := range plan.GroupSeq {
		if gi == 0 {
			probs[mvLevel] = append(append([]float64{}, qprime...), tail)
		} else {
			probs[mvLevel] = pprime
		}
	}
	pg1, err := mm.Prob(mroot, probs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(G=1) = %.6f  ⇒  Y_M = %.6f  (error ≤ Q'_tail = %.3f)\n", pg1, 1-pg1, tail)

	// Independent check: evaluate the same probability directly on the
	// coded ROBDD (no ROMDD at all) — the two must agree exactly.
	direct, err := convert.Prob(bm, root, spec, probs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same traversal on the coded ROBDD: P(G=1) = %.6f\n", direct)
}
