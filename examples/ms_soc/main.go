// MS SoC study: reproduce the paper's master–slave benchmark trend —
// with the total lethality budget P_L fixed, adding redundant slave
// clusters *raises* yield (each component gets a smaller share of the
// defects and the architecture tolerates more of them), while stronger
// defect clustering (λ' = 2) lowers it across the board.
package main

import (
	"fmt"
	"log"

	"socyield"
)

func main() {
	fmt.Println("MSn yield vs number of slave clusters (negative binomial, α=2, P_L=0.5, λ'=1)")
	fmt.Printf("%-6s %-10s %-8s\n", "n", "yield", "ROMDD")
	for n := 1; n <= 5; n++ {
		sys, err := socyield.MS(n)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := socyield.NewNegativeBinomial(2, 2) // P_L=0.5 ⇒ λ' = 1
		if err != nil {
			log.Fatal(err)
		}
		res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 5e-3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MS%-4d %.4f     %d\n", n, res.Yield, res.ROMDDSize)
	}

	// What-if sweep on MS2: how does the yield react if the layout
	// revision changes the communication modules' defect sensitivity?
	// The Reevaluator reuses the ROMDD, so each point is microseconds.
	fmt.Println("\nMS2 what-if: scaling the communication modules' P_i (λ'=1)")
	sys, err := socyield.MS(2)
	if err != nil {
		log.Fatal(err)
	}
	dist, _ := socyield.NewNegativeBinomial(2, 2)
	re, err := socyield.NewReevaluator(sys, socyield.Options{Defects: dist, Epsilon: 5e-3})
	if err != nil {
		log.Fatal(err)
	}
	base := make([]float64, len(sys.Components))
	for i, c := range sys.Components {
		base[i] = c.P
	}
	for _, scale := range []float64{0.5, 1.0, 2.0, 4.0} {
		ps := make([]float64, len(base))
		for i, c := range sys.Components {
			ps[i] = base[i]
			if len(c.Name) > 1 && c.Name[0] == 'C' { // CM_* and CS_* modules
				ps[i] *= scale
			}
		}
		y, bound, err := re.Yield(ps, dist)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  modules ×%-4g yield ∈ [%.4f, %.4f]\n", scale, y, y+bound)
	}
}
