// ESEN NoC study: the paper's second benchmark family — IP cores
// around a fault-tolerant multistage interconnection network (SEN+
// with duplicated first/last-stage switches). Unlike the MS family,
// yield *decreases* as the fabric grows: the network's full-access
// requirement ANDs over every port pair, so more switches means more
// single points whose pair must survive. The example also exercises
// the operational-reliability extension on one instance.
package main

import (
	"fmt"
	"log"

	"socyield"
)

func main() {
	fmt.Println("ESEN yield (negative binomial, α=2, P_L=0.5)")
	fmt.Printf("%-10s %-4s %-8s %-8s\n", "system", "C", "λ'", "yield")
	for _, cs := range []struct {
		n, m   int
		lambda float64
	}{
		{4, 1, 2}, {4, 2, 2}, {4, 4, 2}, // λ' = 1 across the family
		{4, 1, 4}, {4, 2, 4}, // λ' = 2: deeper truncation, lower yield
	} {
		sys, err := socyield.ESEN(cs.n, cs.m)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := socyield.NewNegativeBinomial(cs.lambda, 2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 5e-3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-4d %-8.3g %.4f\n", sys.Name, len(sys.Components), res.LambdaPrime, res.Yield)
	}

	// Operational reliability of ESEN4x2: manufacturing defects plus
	// exponential field failures (switches age faster than IP cores in
	// this scenario).
	sys, err := socyield.ESEN(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	dist, _ := socyield.NewNegativeBinomial(2, 2)
	lifetimes := make([]socyield.Lifetime, len(sys.Components))
	for i, c := range sys.Components {
		switch c.Name[0] {
		case 'S': // switching elements: wear-out
			lifetimes[i] = socyield.Weibull{Scale: 8000, Shape: 2}
		default: // IP cores and concentrators
			lifetimes[i] = socyield.Exponential{Rate: 1e-5}
		}
	}
	curve, err := socyield.ReliabilityCurve(sys, socyield.ReliabilityOptions{
		Defects: dist, Epsilon: 5e-3, Lifetimes: lifetimes,
	}, []float64{0, 1000, 2000, 4000, 8000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nESEN4x2 operational reliability (defects + field failures):")
	for _, pt := range curve.Points {
		fmt.Printf("  R(%6g h) = %.4f\n", pt.T, pt.Reliability)
	}
	fmt.Printf("R(0) equals the manufacturing yield: %.4f\n", curve.YieldAtZero)
}
