// Quickstart: evaluate the manufacturing yield of a triple-modular-
// redundant block with the combinatorial method of the paper.
package main

import (
	"fmt"
	"log"

	"socyield"
)

func main() {
	// 1. Describe the structure function as a fault tree: output 1
	//    means the system is NOT functioning. TMR fails when at least
	//    two of its three modules have failed.
	f := socyield.NewFaultTree()
	m1, m2, m3 := f.Input("m1"), f.Input("m2"), f.Input("m3")
	f.SetOutput(f.AtLeast(2, m1, m2, m3))

	// 2. Attach per-component defect-lethality probabilities P_i: the
	//    probability that a given manufacturing defect lands on the
	//    component and kills it (estimated from layout in practice).
	sys := &socyield.System{
		Name: "tmr",
		Components: []socyield.Component{
			{Name: "m1", P: 0.20},
			{Name: "m2", P: 0.15},
			{Name: "m3", P: 0.15},
		},
		FaultTree: f,
	}

	// 3. Pick a defect model: the negative binomial with mean λ and
	//    clustering α is the standard compound-Poisson yield model.
	dist, err := socyield.NewNegativeBinomial(2, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate. Epsilon is a strict absolute error bound: the true
	//    yield lies in [res.Yield, res.Yield+res.ErrorBound].
	res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield ∈ [%.6f, %.6f]  (M=%d lethal defects analyzed)\n",
		res.Yield, res.Yield+res.ErrorBound, res.M)

	// 5. Cross-check with simulation — slower and only statistically
	//    bounded, which is exactly why the combinatorial method exists.
	mc, err := socyield.MonteCarlo(sys, socyield.MonteCarloOptions{
		Defects: dist, Samples: 100000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte-carlo %.6f ± %.6f (95%% CI)\n", mc.Yield, mc.CI(1.96))
}
