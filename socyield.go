// Package socyield evaluates the manufacturing yield (and operational
// reliability) of fault-tolerant systems-on-chip with the combinatorial
// method of Munteanu, Suñé, Rodríguez-Montañés and Carrasco (DSN 2003):
// the yield is expressed as 1 − P(G = 1) for a boolean function G of
// independent multiple-valued random variables, and that probability is
// computed on a ROMDD obtained from a coded ROBDD of G.
//
// # Quick start
//
//	f := socyield.NewFaultTree()
//	a, b, c := f.Input("m1"), f.Input("m2"), f.Input("m3")
//	f.SetOutput(f.Or(f.And(a, b), f.And(a, c), f.And(b, c))) // TMR: down if ≥ 2 fail
//
//	sys := &socyield.System{
//		Name: "tmr",
//		Components: []socyield.Component{
//			{Name: "m1", P: 0.2}, {Name: "m2", P: 0.15}, {Name: "m3", P: 0.15},
//		},
//		FaultTree: f,
//	}
//	dist, _ := socyield.NewNegativeBinomial(2, 0.25) // λ defects, clustering α
//	res, err := socyield.Evaluate(sys, socyield.Options{Defects: dist, Epsilon: 1e-4})
//	// res.Yield ≤ true yield ≤ res.Yield + res.ErrorBound
//
// Fault trees are gate-level netlists (AND/OR/NOT/XOR/threshold) whose
// inputs are the components' failed-state variables; the function value
// 1 means the system is NOT functioning. Defect distributions include
// the negative binomial (the standard clustered yield model), Poisson,
// geometric, deterministic counts, the compound Poisson, and the
// hierarchical/multilevel clustered models (nested gamma-modulated
// Poisson intensities); arbitrary distributions are supported through
// the Distribution interface and are thinned to the lethal-defect
// model numerically.
//
// The benchmark generators of the paper (MSn master–slave SoCs and
// ESENnxm interconnection-network SoCs), the ordering heuristics, the
// Monte-Carlo baseline and the reliability extension are exposed
// through the sub-APIs re-exported here.
package socyield

import (
	"io"
	"time"

	"socyield/internal/benchmarks"
	"socyield/internal/defects"
	"socyield/internal/logic"
	"socyield/internal/montecarlo"
	"socyield/internal/obs"
	"socyield/internal/order"
	"socyield/internal/reliability"
	"socyield/internal/server"
	"socyield/internal/store"
	"socyield/internal/yield"
)

// FaultTree is a combinational gate-level netlist describing the
// structure function of a system: output 1 ⇔ system not functioning.
type FaultTree = logic.Netlist

// NewFaultTree returns an empty fault tree ready for construction.
func NewFaultTree() *FaultTree { return logic.New() }

// System describes a fault-tolerant system-on-chip.
type System = yield.System

// Component is one component with its defect-lethality probability.
type Component = yield.Component

// Options configure Evaluate.
type Options = yield.Options

// Result reports a yield estimate and the method's structural
// statistics.
type Result = yield.Result

// ErrNodeLimit is returned when the decision diagrams exceed the
// configured node budget.
var ErrNodeLimit = yield.ErrNodeLimit

// Evaluate runs the combinatorial yield method end to end.
func Evaluate(sys *System, opts Options) (*Result, error) { return yield.Evaluate(sys, opts) }

// Metrics is a registry of counters, gauges, histograms and phase
// spans. Set Options.Recorder (or the sweep / Monte-Carlo equivalents)
// to one instance to instrument a run; its Snapshot and WriteJSON
// methods export everything collected. A nil *Metrics is valid
// everywhere and records nothing.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time JSON-marshalable copy of a
// Metrics registry.
type MetricsSnapshot = obs.Snapshot

// EngineStats aggregates the decision-diagram engine counters of one
// evaluation (ROBDD apply cache and unique table, ROMDD construction,
// conversion work). Every Result carries one in Result.Stats.
type EngineStats = yield.EngineStats

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Sampler is the flight recorder's time-series collector: a background
// goroutine snapshotting a Metrics registry's scalar instruments at a
// fixed interval into a bounded ring (oldest samples overwritten). A
// nil *Sampler is valid everywhere and records nothing.
type Sampler = obs.Sampler

// Sample is one point of a Sampler's time series.
type Sample = obs.Sample

// NewSampler creates a sampler over reg; interval ≤ 0 selects the
// 100ms default, capacity ≤ 0 the default ring size. Call Start to
// begin and Stop before exporting.
func NewSampler(reg *Metrics, interval time.Duration, capacity int) *Sampler {
	return obs.NewSampler(reg, interval, capacity)
}

// Tracer collects per-work-unit build events (compile gate tasks,
// conversion layer ranges) into a bounded ring for the Chrome trace
// export. Set Options.Tracer to record a build; a nil *Tracer is valid
// everywhere and records nothing.
type Tracer = obs.Tracer

// TraceEvent is one timed work slice attributed to a build worker.
type TraceEvent = obs.TraceEvent

// NewTracer returns a tracer with the given event-ring capacity (≤ 0
// selects the default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// WriteChromeTrace assembles a flight recording — the phase-span tree
// of a metrics snapshot, a sampler's time series and a tracer's
// per-worker events — into one Chrome trace-event JSON document
// loadable at https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, snap MetricsSnapshot, samples []Sample, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, snap, samples, events)
}

// BuildState tracks the live progress of one model build (phase,
// work-unit counts, live nodes); Options.BuildState threads it through
// the pipeline and Snapshot reads it from any goroutine. The yieldd
// /v1/builds endpoint serves these. A nil *BuildState is valid
// everywhere and records nothing.
type BuildState = obs.BuildState

// BuildStatus is a point-in-time snapshot of a BuildState.
type BuildStatus = obs.BuildStatus

// NewBuildState returns a build tracker with the clock started.
func NewBuildState() *BuildState { return obs.NewBuildState() }

// ProgressMeter periodically prints completion lines ("done/total,
// rate, ETA") for long sweeps or simulations. A nil *ProgressMeter is
// valid everywhere and prints nothing.
type ProgressMeter = obs.Progress

// NewProgressMeter starts a progress meter writing to w every interval
// (≤ 0 means 1s); total ≤ 0 means the total is unknown. Call Close
// when the work is done.
func NewProgressMeter(w io.Writer, label string, total int, interval time.Duration) *ProgressMeter {
	return obs.NewProgress(w, label, total, interval)
}

// BruteForce computes the same estimate exactly by inclusion–exclusion
// (exponential in the component count; C ≤ 20).
func BruteForce(sys *System, opts Options) (*Result, error) { return yield.BruteForce(sys, opts) }

// ExactYield computes Y_M by direct summation over every assignment of
// the generalized function G — the exact-enumeration oracle the ROMDD
// pipeline is differentially tested against (C ≤ 12, small M).
func ExactYield(sys *System, opts Options) (*Result, error) { return yield.ExactYield(sys, opts) }

// ModelKey returns a collision-resistant key identifying the compiled
// model Evaluate would build for (sys, opts) — the fault-tree
// structure, the orderings, ε, the node budget and the resolved
// truncation point M (also returned). Component names and lethality
// values do not enter the key: the same compiled model serves any P_i.
// The yieldd service uses it to cache Reevaluators across requests.
func ModelKey(sys *System, opts Options) (key string, m int, err error) {
	return yield.ModelKey(sys, opts)
}

// ServerConfig configures the yieldd HTTP evaluation service (listen
// address, compiled-model cache size, node budget, concurrency limit,
// request timeout, metrics registry, request logger).
type ServerConfig = server.Config

// EvaluationServer is the yieldd HTTP/JSON service: POST /v1/evaluate
// and /v1/sweep evaluate systems against defect models on a keyed LRU
// cache of compiled models with single-flight deduplication; GET
// /healthz and /metrics expose liveness and the live counters. Use
// Handler to mount it into an existing server or ListenAndServe to run
// it standalone with graceful shutdown on context cancellation.
type EvaluationServer = server.Server

// NewEvaluationServer returns a ready-to-serve evaluation service.
func NewEvaluationServer(cfg ServerConfig) *EvaluationServer { return server.New(cfg) }

// Reevaluator reevaluates the yield of one system for many defect
// models without rebuilding decision diagrams. It is immutable after
// construction, so one shared instance serves concurrent Yield,
// YieldRaw, Sensitivities and Sweep calls from any number of
// goroutines.
type Reevaluator = yield.Reevaluator

// NewReevaluator builds the system's ROMDD once for later sweeps.
func NewReevaluator(sys *System, opts Options) (*Reevaluator, error) {
	return yield.NewReevaluator(sys, opts)
}

// ModelSnapshot is a self-contained, serializable copy of a compiled
// model: the frozen ROMDD plus the metadata needed to restore a
// Reevaluator and to detect staleness (engine revision, model key).
type ModelSnapshot = yield.Snapshot

// RestoreReevaluator rebuilds a ready-to-evaluate Reevaluator from a
// snapshot — no compilation, typically milliseconds.
func RestoreReevaluator(snap *ModelSnapshot) (*Reevaluator, error) {
	return yield.RestoreReevaluator(snap)
}

// EncodeModel serializes a compiled-model snapshot into the versioned,
// checksummed binary format of the persistent store.
func EncodeModel(snap *ModelSnapshot) ([]byte, error) { return store.Encode(snap) }

// DecodeModel parses and validates an encoded compiled model. It
// returns typed errors (e.g. ErrModelChecksum, ErrModelRevision) for
// every corruption class and never panics on hostile input.
func DecodeModel(data []byte) (*ModelSnapshot, error) { return store.Decode(data) }

// Typed failure classes of DecodeModel, testable with errors.Is.
var (
	ErrModelTruncated = store.ErrTruncated
	ErrModelChecksum  = store.ErrChecksum
	ErrModelVersion   = store.ErrVersion
	ErrModelRevision  = store.ErrEngineRevision
	ErrModelCorrupt   = store.ErrCorrupt
)

// ModelStore is a size-capped on-disk LRU of encoded compiled models,
// keyed by ModelKey. It is the persistent second tier of the yieldd
// cache and the artifact behind yieldsoc -save-model/-load-model.
type ModelStore = store.Store

// OpenModelStore opens (creating if needed) a model store rooted at
// dir. maxBytes 0 means unlimited; metrics may be nil.
func OpenModelStore(dir string, maxBytes int64, metrics *Metrics) (*ModelStore, error) {
	return store.Open(dir, maxBytes, metrics)
}

// LoadOrBuild returns a Reevaluator for (sys, opts), served from the
// store when a current-revision entry exists and compiled (then
// written through) otherwise. A nil store always compiles.
func LoadOrBuild(st *ModelStore, sys *System, opts Options) (re *Reevaluator, fromStore bool, err error) {
	return store.LoadOrBuild(st, sys, opts)
}

// SweepPoint is one (per-component lethalities, defect distribution)
// evaluation request of a batch sweep.
type SweepPoint = yield.SweepPoint

// SweepResult is the yield estimate for the sweep point at the same
// index.
type SweepResult = yield.SweepResult

// SweepOptions configure Reevaluator.Sweep: the worker count (default
// GOMAXPROCS; results are bit-identical for every worker count) and an
// optional default distribution.
type SweepOptions = yield.SweepOptions

// LambdaGrid builds the sweep points for fixed lethalities ps against
// one distribution per entry of dists — the (λ, α) grid workload.
func LambdaGrid(ps []float64, dists []Distribution) []SweepPoint {
	return yield.LambdaGrid(ps, dists)
}

// Distribution is a distribution of the number of manufacturing
// defects.
type Distribution = defects.Distribution

// NegativeBinomial is the standard clustered defect model.
type NegativeBinomial = defects.NegativeBinomial

// NewNegativeBinomial validates and returns a negative binomial
// distribution with mean lambda and clustering parameter alpha.
func NewNegativeBinomial(lambda, alpha float64) (NegativeBinomial, error) {
	return defects.NewNegativeBinomial(lambda, alpha)
}

// Poisson is the unclustered defect model.
type Poisson = defects.Poisson

// Geometric is the negative binomial with clustering parameter 1.
type Geometric = defects.Geometric

// Deterministic places all probability on an exact defect count.
type Deterministic = defects.Deterministic

// CompoundPoisson is the general clustered defect family (Poisson
// cluster arrivals, arbitrary cluster sizes).
type CompoundPoisson = defects.CompoundPoisson

// NewCompoundPoisson validates and returns a compound Poisson defect
// model.
func NewCompoundPoisson(rate float64, clusterSize Distribution) (CompoundPoisson, error) {
	return defects.NewCompoundPoisson(rate, clusterSize)
}

// Logarithmic is the cluster-size law under which a compound Poisson
// is exactly negative binomial.
type Logarithmic = defects.Logarithmic

// Hierarchical is the two-level clustered defect model: Poisson defect
// counts whose intensity is modulated by two nested gamma-distributed
// scale factors (die within wafer within lot).
type Hierarchical = defects.Hierarchical

// NewHierarchical validates and returns a two-level hierarchical model
// with mean lambda and per-level clustering parameters alpha and beta.
func NewHierarchical(lambda, alpha, beta float64) (Hierarchical, error) {
	return defects.NewHierarchical(lambda, alpha, beta)
}

// Multilevel is the general L-level clustered defect model with one
// gamma-distributed scale factor per hierarchy level; one level is
// exactly the negative binomial.
type Multilevel = defects.Multilevel

// NewMultilevel validates and returns an L-level model with mean
// lambda and one clustering parameter per level, innermost first.
func NewMultilevel(lambda float64, alphas ...float64) (Multilevel, error) {
	return defects.NewMultilevel(lambda, alphas...)
}

// MVOrdering selects the ordering of the multiple-valued variables
// (paper names: wv, wvr, vw, vrw, t, w, h).
type MVOrdering = order.MVKind

// BitOrdering selects the ordering of the bits encoding each
// multiple-valued variable (paper names: ml, lm, t, w, h).
type BitOrdering = order.BitKind

// The multiple-valued variable orderings of the paper.
const (
	MVOrderWV       = order.MVWV
	MVOrderWVR      = order.MVWVR
	MVOrderVW       = order.MVVW
	MVOrderVRW      = order.MVVRW
	MVOrderTopology = order.MVTopology
	MVOrderWeight   = order.MVWeight
	MVOrderH4       = order.MVH4
)

// The bit-group orderings of the paper.
const (
	BitOrderML       = order.BitML
	BitOrderLM       = order.BitLM
	BitOrderTopology = order.BitTopology
	BitOrderWeight   = order.BitWeight
	BitOrderH4       = order.BitH4
)

// MS builds the paper's master–slave benchmark SoC with n slave
// clusters.
func MS(n int) (*System, error) { return benchmarks.MS(n) }

// ESEN builds the paper's interconnection-network benchmark SoC with
// n network ports and multiplexing factor m.
func ESEN(n, m int) (*System, error) { return benchmarks.ESEN(n, m) }

// MonteCarloOptions configure the simulation baseline.
type MonteCarloOptions = montecarlo.Options

// MonteCarloResult is a simulation estimate with confidence interval.
type MonteCarloResult = montecarlo.Result

// MonteCarlo estimates the yield by simulation — the error-bar-free
// alternative the combinatorial method improves on.
func MonteCarlo(sys *System, opts MonteCarloOptions) (MonteCarloResult, error) {
	return montecarlo.Estimate(sys, opts)
}

// ImportanceOptions configure the rare-event importance-sampling
// simulator (sample budget, adaptive or fixed exponential tilt).
type ImportanceOptions = montecarlo.ISOptions

// ImportanceResult is an importance-sampling estimate with its
// diagnostics (chosen tilt, effective sample size, relative error on
// the failure probability).
type ImportanceResult = montecarlo.ISResult

// MonteCarloImportance estimates the yield by importance-sampled
// simulation under an exponentially tilted defect-count proposal —
// sharp in the near-certain-yield regime where naive simulation
// degenerates to an all-pass sample.
func MonteCarloImportance(sys *System, opts ImportanceOptions) (ImportanceResult, error) {
	return montecarlo.EstimateIS(sys, opts)
}

// Lifetime models a component's field-failure process for the
// reliability extension.
type Lifetime = reliability.Lifetime

// Exponential is a constant-failure-rate lifetime.
type Exponential = reliability.Exponential

// Weibull is a shape-parameterized lifetime.
type Weibull = reliability.Weibull

// ReliabilityOptions configure ReliabilityCurve.
type ReliabilityOptions = reliability.Options

// ReliabilityResult is a reliability-over-time curve.
type ReliabilityResult = reliability.Result

// ReliabilityCurve evaluates operational reliability (manufacturing
// defects plus field failures) at the given time points.
func ReliabilityCurve(sys *System, opts ReliabilityOptions, times []float64) (*ReliabilityResult, error) {
	return reliability.Curve(sys, opts, times)
}
