package socyield_test

// One benchmark per evaluation artifact of the paper (Tables 1–4 of
// Munteanu et al., DSN 2003) plus the reproduction ablations. The
// benchmarks run the fast row subset so `go test -bench=.` completes in
// minutes; `cmd/experiments -full` regenerates the complete tables and
// EXPERIMENTS.md records a full run.

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"socyield"
	"socyield/internal/experiments"
)

// benchCases is the sub-second row subset used by the Go benchmarks.
func benchCases() []experiments.Case {
	return []experiments.Case{{Benchmark: "MS2", LambdaPrime: 1}, {Benchmark: "ESEN4x1", LambdaPrime: 1}}
}

// BenchmarkTable1Inventory regenerates Table 1: the benchmark systems
// and their component/gate counts.
func BenchmarkTable1Inventory(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("%d rows, want 11", len(rows))
		}
		for _, r := range rows {
			if r.Components != r.PaperC {
				b.Fatalf("%s: C=%d, paper %d", r.Benchmark, r.Components, r.PaperC)
			}
		}
	}
}

// BenchmarkTable2MVOrderings regenerates Table 2 rows: ROMDD size under
// the seven multiple-valued variable orderings.
func BenchmarkTable2MVOrderings(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table2(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			w, vrw := r.Sizes["w"], r.Sizes["vrw"]
			if w.Failed {
				b.Fatalf("%v: weight ordering failed", r.Case)
			}
			if !vrw.Failed && vrw.Size <= w.Size {
				b.Fatalf("%v: vrw (%d) not worse than w (%d)", r.Case, vrw.Size, w.Size)
			}
		}
	}
}

// BenchmarkTable3BitOrderings regenerates Table 3 rows: coded-ROBDD
// size under the bit-group orderings ml, lm, w.
func BenchmarkTable3BitOrderings(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table3(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Sizes["lm"] != r.Sizes["w"] {
				b.Fatalf("%v: lm and w differ (%v vs %v) — paper finds them identical",
					r.Case, r.Sizes["lm"], r.Sizes["w"])
			}
		}
	}
}

// BenchmarkTable4Method regenerates Table 4 rows: the end-to-end method
// with the paper's chosen heuristics (w + ml).
func BenchmarkTable4Method(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table4(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Failed {
				b.Fatalf("%v failed", r.Case)
			}
			if r.ROBDD <= r.ROMDD {
				b.Fatalf("%v: coded ROBDD (%d) not larger than ROMDD (%d)", r.Case, r.ROBDD, r.ROMDD)
			}
		}
	}
}

// BenchmarkAblationDirectMDD compares building the ROMDD through the
// coded ROBDD against direct MDD apply construction.
func BenchmarkAblationDirectMDD(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.AblationDirectMDD(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.DirectFailed && (!r.SizesAgree || !r.YieldsAgree) {
				b.Fatalf("%v: routes disagree", r.Case)
			}
		}
	}
}

// sweepSetup builds the ESEN8x2 Reevaluator (a ~300k-node ROMDD, a few
// seconds of construction) once for both sweep sub-benchmarks.
var sweepSetup struct {
	once sync.Once
	re   *socyield.Reevaluator
	grid []socyield.SweepPoint
	err  error
}

// BenchmarkSweepSerialVsParallel times a 64-point (λ, α) batch sweep on
// one shared ESEN8x2 ROMDD with one worker and with all cores, and
// checks the parallel results are bit-identical to the serial ones.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	s := &sweepSetup
	s.once.Do(func() {
		var sys *socyield.System
		if sys, s.err = socyield.ESEN(8, 2); s.err != nil {
			return
		}
		var dist socyield.Distribution
		if dist, s.err = socyield.NewNegativeBinomial(2, 3.4); s.err != nil {
			return
		}
		if s.re, s.err = socyield.NewReevaluator(sys, socyield.Options{Defects: dist, Epsilon: 2e-3}); s.err != nil {
			return
		}
		ps := make([]float64, len(sys.Components))
		for i, c := range sys.Components {
			ps[i] = c.P
		}
		var dists []socyield.Distribution
		for i := 0; i < 16; i++ {
			for _, alpha := range []float64{0.25, 1, 2, 3.4} {
				d, err := socyield.NewNegativeBinomial(0.5+0.25*float64(i), alpha)
				if err != nil {
					s.err = err
					return
				}
				dists = append(dists, d)
			}
		}
		s.grid = socyield.LambdaGrid(ps, dists)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	serial := s.re.Sweep(s.grid, socyield.SweepOptions{Workers: 1})
	for _, r := range serial {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.Run("serial", func(b *testing.B) {
		for b.Loop() {
			s.re.Sweep(s.grid, socyield.SweepOptions{Workers: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for b.Loop() {
			res := s.re.Sweep(s.grid, socyield.SweepOptions{Workers: workers})
			for i := range res {
				if res[i] != serial[i] {
					b.Fatalf("point %d: parallel %v differs from serial %v", i, res[i], serial[i])
				}
			}
		}
	})
	// instrumented repeats the serial sweep with a live recorder — the
	// delta against "serial" is the measured instrumentation overhead.
	b.Run("instrumented", func(b *testing.B) {
		rec := socyield.NewMetrics()
		for b.Loop() {
			s.re.Sweep(s.grid, socyield.SweepOptions{Workers: 1, Recorder: rec})
		}
		writeBenchMetrics(b, rec)
	})
}

// writeBenchMetrics dumps the recorder to $SOCYIELD_BENCH_METRICS when
// that is set — the CI benchmark-smoke job uploads the file as an
// artifact.
func writeBenchMetrics(b *testing.B, rec *socyield.Metrics) {
	path := os.Getenv("SOCYIELD_BENCH_METRICS")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatalf("metrics dump: %v", err)
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		b.Fatalf("metrics dump: %v", err)
	}
	if err := f.Close(); err != nil {
		b.Fatalf("metrics dump: %v", err)
	}
	b.Logf("metrics written to %s", path)
}

// buildESEN8x2 runs the full model build (prepare through eval) of
// ESEN8x2 at the given worker count and returns the build Result —
// the shared core of the two build-engine microbenchmarks.
func buildESEN8x2(b *testing.B, workers int) *socyield.Result {
	b.Helper()
	sys, err := socyield.ESEN(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := socyield.NewNegativeBinomial(2, 3.4)
	if err != nil {
		b.Fatal(err)
	}
	re, err := socyield.NewReevaluator(sys, socyield.Options{
		Defects: dist, Epsilon: 2e-3, BuildWorkers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return re.Result
}

// BenchmarkCompileParallel times the coded-ROBDD compile phase of the
// ESEN8x2 build with the serial engine and with the concurrent engine
// at all cores, reporting compile seconds and the parallel speedup as
// benchmark metrics. The whole pipeline runs each iteration (the
// compile cannot be isolated from its inputs), but only the compile
// phase is reported, so the two sub-benchmarks compare exactly the
// phase the work-stealing pool parallelizes.
func BenchmarkCompileParallel(b *testing.B) {
	var serialSec float64
	b.Run("serial", func(b *testing.B) {
		var total float64
		for b.Loop() {
			res := buildESEN8x2(b, 1)
			total += res.Phases.Compile.Seconds()
		}
		serialSec = total / float64(b.N)
		b.ReportMetric(serialSec, "compile-s/op")
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		var total float64
		for b.Loop() {
			res := buildESEN8x2(b, workers)
			total += res.Phases.Compile.Seconds()
		}
		sec := total / float64(b.N)
		b.ReportMetric(sec, "compile-s/op")
		b.ReportMetric(float64(workers), "workers")
		if serialSec > 0 && sec > 0 {
			b.ReportMetric(serialSec/sec, "speedup-vs-serial")
		}
	})
}

// BenchmarkToMDDParallel is the same comparison for the layer-parallel
// ROBDD→ROMDD conversion phase.
func BenchmarkToMDDParallel(b *testing.B) {
	var serialSec float64
	b.Run("serial", func(b *testing.B) {
		var total float64
		for b.Loop() {
			res := buildESEN8x2(b, 1)
			total += res.Phases.Convert.Seconds()
		}
		serialSec = total / float64(b.N)
		b.ReportMetric(serialSec, "convert-s/op")
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		var total float64
		for b.Loop() {
			res := buildESEN8x2(b, workers)
			total += res.Phases.Convert.Seconds()
		}
		sec := total / float64(b.N)
		b.ReportMetric(sec, "convert-s/op")
		b.ReportMetric(float64(workers), "workers")
		if serialSec > 0 && sec > 0 {
			b.ReportMetric(serialSec/sec, "speedup-vs-serial")
		}
	})
}

// BenchmarkBaselineMonteCarlo runs the simulation baseline the paper's
// introduction argues against.
func BenchmarkBaselineMonteCarlo(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.BaselineMonteCarlo(benchCases(), 20000, experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.WithinThree {
				b.Fatalf("%v: MC %v vs exact %v beyond 3σ", r.Case, r.MC, r.Exact)
			}
		}
	}
}
