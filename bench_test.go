package socyield_test

// One benchmark per evaluation artifact of the paper (Tables 1–4 of
// Munteanu et al., DSN 2003) plus the reproduction ablations. The
// benchmarks run the fast row subset so `go test -bench=.` completes in
// minutes; `cmd/experiments -full` regenerates the complete tables and
// EXPERIMENTS.md records a full run.

import (
	"testing"

	"socyield/internal/experiments"
)

// benchCases is the sub-second row subset used by the Go benchmarks.
func benchCases() []experiments.Case {
	return []experiments.Case{{Benchmark: "MS2", LambdaPrime: 1}, {Benchmark: "ESEN4x1", LambdaPrime: 1}}
}

// BenchmarkTable1Inventory regenerates Table 1: the benchmark systems
// and their component/gate counts.
func BenchmarkTable1Inventory(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("%d rows, want 11", len(rows))
		}
		for _, r := range rows {
			if r.Components != r.PaperC {
				b.Fatalf("%s: C=%d, paper %d", r.Benchmark, r.Components, r.PaperC)
			}
		}
	}
}

// BenchmarkTable2MVOrderings regenerates Table 2 rows: ROMDD size under
// the seven multiple-valued variable orderings.
func BenchmarkTable2MVOrderings(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table2(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			w, vrw := r.Sizes["w"], r.Sizes["vrw"]
			if w.Failed {
				b.Fatalf("%v: weight ordering failed", r.Case)
			}
			if !vrw.Failed && vrw.Size <= w.Size {
				b.Fatalf("%v: vrw (%d) not worse than w (%d)", r.Case, vrw.Size, w.Size)
			}
		}
	}
}

// BenchmarkTable3BitOrderings regenerates Table 3 rows: coded-ROBDD
// size under the bit-group orderings ml, lm, w.
func BenchmarkTable3BitOrderings(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table3(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Sizes["lm"] != r.Sizes["w"] {
				b.Fatalf("%v: lm and w differ (%v vs %v) — paper finds them identical",
					r.Case, r.Sizes["lm"], r.Sizes["w"])
			}
		}
	}
}

// BenchmarkTable4Method regenerates Table 4 rows: the end-to-end method
// with the paper's chosen heuristics (w + ml).
func BenchmarkTable4Method(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.Table4(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Failed {
				b.Fatalf("%v failed", r.Case)
			}
			if r.ROBDD <= r.ROMDD {
				b.Fatalf("%v: coded ROBDD (%d) not larger than ROMDD (%d)", r.Case, r.ROBDD, r.ROMDD)
			}
		}
	}
}

// BenchmarkAblationDirectMDD compares building the ROMDD through the
// coded ROBDD against direct MDD apply construction.
func BenchmarkAblationDirectMDD(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.AblationDirectMDD(benchCases(), experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.DirectFailed && (!r.SizesAgree || !r.YieldsAgree) {
				b.Fatalf("%v: routes disagree", r.Case)
			}
		}
	}
}

// BenchmarkBaselineMonteCarlo runs the simulation baseline the paper's
// introduction argues against.
func BenchmarkBaselineMonteCarlo(b *testing.B) {
	for b.Loop() {
		rows, err := experiments.BaselineMonteCarlo(benchCases(), 20000, experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.WithinThree {
				b.Fatalf("%v: MC %v vs exact %v beyond 3σ", r.Case, r.MC, r.Exact)
			}
		}
	}
}
