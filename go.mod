module socyield

go 1.24
